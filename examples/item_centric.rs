//! Item-centric bellwether prediction: build a bellwether tree and a
//! bellwether cube over the mail-order items, inspect them, and compare
//! prediction quality against the single-region baseline (a miniature
//! of Figure 8 plus the §6.2 rollup/drilldown view).
//!
//! Run with: `cargo run --release --example item_centric`

use bellwether::prelude::*;
use std::collections::HashMap;

fn main() {
    // The heterogeneous variant plants *different* bellwether states per
    // category (electronics → MD, apparel → WI), the regime where
    // item-centric methods pay off.
    let mut cfg = RetailConfig::mail_order_heterogeneous(240, 7);
    cfg.months = 8;
    cfg.converge_month = 6;
    println!("generating mail-order dataset ({} items)…", cfg.n_items);
    let data = generate_retail(&cfg);

    let targets: HashMap<i64, f64> =
        global_target(&data.db, "profit", AggFunc::Sum).unwrap();
    let cube_input = build_cube_input(&data.db, &data.space, &data.feature_queries).unwrap();
    let cube_result = cube_pass(&data.space, &cube_input);

    // Store only the regions affordable under the acquisition budget —
    // with no budget, the region covering the whole period and area
    // contains the target itself and prediction is vacuous (the "very
    // high cost" extreme of §3.1).
    let budget = 40.0;
    let regions: Vec<RegionId> = data
        .space
        .all_regions()
        .into_iter()
        .filter(|r| data.cost.cost(&data.space, r) <= budget)
        .collect();
    println!(
        "{} of {} regions affordable under budget {budget}",
        regions.len(),
        data.space.num_regions()
    );
    let source = build_memory_source(&cube_result, &regions, &data.items, &targets);

    let problem = BellwetherConfig::builder(f64::INFINITY)
        .min_coverage(0.0)
        .min_examples(20)
        .error_measure(ErrorMeasure::TrainingSet)
        .build()
        .unwrap();

    // ---- a bellwether tree (RF algorithm) over the item features.
    let tree_cfg = TreeConfig {
        min_node_items: 60,
        max_numeric_splits: 8,
        ..TreeConfig::default()
    };
    let tree =
        build_rainforest(&source, &data.space, &data.items, None, &problem, &tree_cfg)
            .unwrap();
    println!("bellwether tree ({} leaves):", tree.num_leaves());
    println!("{}", tree.describe(&data.items));

    // ---- a bellwether cube over the category hierarchy.
    let cube_cfg = CubeConfig {
        min_subset_size: 30,
    };
    let cube = build_single_scan_cube(
        &source,
        &data.space,
        &data.item_space,
        &data.item_coords,
        &problem,
        &cube_cfg,
    )
    .unwrap();
    println!("bellwether cube, drilldown to categories:");
    println!("{}", render_cross_tab(&cube, &[1]));
    println!("rolled up to [Any]:");
    println!("{}", render_cross_tab(&cube, &[0]));

    // ---- cube prediction for one item: which ancestor subset wins?
    let some_item = *data.items.ids().first().unwrap();
    if let Some(cell) = select_cell_for_item(&cube, some_item, 0.95) {
        println!(
            "item {some_item} predicts through subset {} → region {} (err {:.1})",
            cell.label, cell.region_label, cell.error.value
        );
    }

    // ---- 10-fold comparison of the three methods.
    let eval = ItemCentricEval {
        folds: 10,
        seed: 99,
    };
    let ctx = EvalContext {
        source: &source,
        region_space: &data.space,
        items: &data.items,
        targets: &targets,
        item_space: Some(&data.item_space),
        item_coords: Some(&data.item_coords),
    };
    println!("\n10-fold item-centric prediction RMSE:");
    for method in [
        Method::Basic,
        Method::Tree(tree_cfg),
        Method::Cube(cube_cfg, 0.95),
    ] {
        let rmse = evaluate_method(&ctx, &problem, &method, &eval)
            .unwrap()
            .unwrap_or(f64::NAN);
        println!("  {:<6} {rmse:.1}", method.name());
    }
}
