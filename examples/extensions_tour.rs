//! A tour of the §3.4 extensions implemented beyond the paper's core
//! algorithms: automatic feature generation, the linear optimization
//! criterion, greedy combinatorial region selection, tree pruning, and
//! the algebraic cross-validated cube.
//!
//! Run with: `cargo run --release --example extensions_tour`

use bellwether::prelude::*;
use std::collections::HashMap;

fn main() {
    // Heterogeneous variant: electronics' bellwether is MD, apparel's is
    // WI — so trees/cubes have real structure to find (and to prune).
    let mut cfg = RetailConfig::mail_order_heterogeneous(160, 5);
    cfg.months = 6;
    cfg.converge_month = 4;
    cfg.states = Some(vec!["MD", "WI", "CA", "TX", "NY", "IL", "FL", "OH"]);
    let data = generate_retail(&cfg);
    let targets: HashMap<i64, f64> =
        global_target(&data.db, "profit", AggFunc::Sum).unwrap();

    // ---- 1. automatic feature generation straight from the schema.
    let fk_of: HashMap<String, String> =
        [("catalogs".to_string(), "catalog".to_string())].into();
    let queries = auto_generate_queries(&data.db, &fk_of).unwrap();
    println!("auto-generated {} feature queries:", queries.len());
    for q in &queries {
        println!("  {}", q.name());
    }

    let cube_input = build_cube_input(&data.db, &data.space, &queries).unwrap();
    let cube = cube_pass(&data.space, &cube_input);
    let problem = BellwetherConfig::builder(25.0)
        .min_coverage(0.5)
        .min_examples(20)
        .error_measure(ErrorMeasure::TrainingSet)
        .build()
        .unwrap();
    // The linear-criterion sweep trades cost off explicitly, so it sees
    // every region; the tree/cube sections get only affordable regions
    // (the whole-period/whole-area region contains the target itself and
    // would win vacuously).
    let all_regions = data.space.all_regions();
    let source = build_memory_source(&cube, &all_regions, &data.items, &targets);
    let affordable: Vec<RegionId> = all_regions
        .iter()
        .filter(|r| {
            bellwether_cube::CostModel::cost(&data.cost, &data.space, r) <= problem.budget
        })
        .cloned()
        .collect();
    let budget_source = build_memory_source(&cube, &affordable, &data.items, &targets);

    // ---- 2. linear optimization criterion: error + w1·cost − w2·coverage.
    println!("\nlinear criterion sweep (cost weight ↑ → cheaper regions):");
    for w1 in [0.0, 5.0, 50.0] {
        let found = basic_search_linear(
            &source,
            &data.space,
            &data.cost,
            &problem,
            data.items.len(),
            LinearCriterion {
                cost_weight: w1,
                coverage_weight: 100.0,
            },
        )
        .unwrap();
        if let Some(report) = found.report() {
            println!(
                "  w1={w1:<4} → {:<14} err {:>8.1} score {:.1}",
                report.label, report.error, report.score
            );
        }
    }

    // ---- 3. combinatorial bellwether: a *set* of regions under budget.
    let combo = greedy_combinatorial_search(
        &data.space,
        &cube_input,
        &data.items,
        &targets,
        &data.cost,
        &problem,
        3,
    )
    .unwrap();
    if let Some(c) = combo {
        println!(
            "\ncombinatorial pick (budget {}): {:?} — cost {:.1}, err {:.1}",
            problem.budget, c.labels, c.total_cost, c.error.value
        );
        println!("  error after each greedy addition: {:?}", c.error_trace);
    }

    // ---- 4. tree pruning.
    let tree_cfg = TreeConfig {
        min_node_items: 20,
        max_numeric_splits: 8,
        ..TreeConfig::default()
    };
    let mut tree = build_rainforest(
        &budget_source,
        &data.space,
        &data.items,
        None,
        &problem,
        &tree_cfg,
    )
    .unwrap();
    let before = tree.num_leaves();
    let root_report = tree.report().unwrap();
    let penalty = 0.05 * root_report.error * tree.root().item_rows.len() as f64;
    let removed = prune_tree(&mut tree, penalty);
    println!(
        "\ntree pruning: {before} leaves → {} (removed {removed} splits at 5% penalty)",
        tree.num_leaves()
    );

    // ---- 5. algebraic cross-validated cube (Theorem 1 extended to CV).
    let cv_cube = build_optimized_cube_cv(
        &budget_source,
        &data.space,
        &data.item_space,
        &data.item_coords,
        &problem,
        &CubeConfig {
            min_subset_size: 30,
        },
        5,
        42,
    )
    .unwrap();
    println!("\ncross-validated cube cells (errors are CV estimates ± spread):");
    for cell in cv_cube.cells.values() {
        let (lo, hi) = cell.error.interval(0.95);
        println!(
            "  {:<14} → {:<12} err {:>8.1} [{:.1}, {:.1}]",
            cell.label, cell.region_label, cell.error.value, lo, hi
        );
    }
}
