//! Basic bellwether analysis of the synthetic mail-order dataset: a
//! miniature of Figure 7. Sweeps the budget, reports the bellwether
//! region, its error, the feasible-region average, and how unique the
//! bellwether is.
//!
//! Run with: `cargo run --release --example mail_order_analysis`

use bellwether::prelude::*;
use std::collections::HashMap;

fn main() {
    let mut cfg = RetailConfig::mail_order(250, 42);
    cfg.months = 10;
    cfg.converge_month = 8;
    println!("generating mail-order dataset ({} items)…", cfg.n_items);
    let data = generate_retail(&cfg);
    println!("fact rows: {}", data.db.fact.num_rows());
    println!("candidate regions: {}", data.space.num_regions());

    let targets: HashMap<i64, f64> =
        global_target(&data.db, "profit", AggFunc::Sum).unwrap();
    let cube_input = build_cube_input(&data.db, &data.space, &data.feature_queries).unwrap();
    let cube = cube_pass(&data.space, &cube_input);
    let regions = data.space.all_regions();
    let source = build_memory_source(&cube, &regions, &data.items, &targets);

    println!("\n{:>8} {:>16} {:>12} {:>12} {:>8}", "budget", "bellwether", "Bel Err", "Avg Err", "95% ind");
    for budget in [15.0, 25.0, 35.0, 45.0, 55.0, 65.0, 75.0] {
        let config = BellwetherConfig::builder(budget)
            .min_coverage(0.5)
            .min_examples(20)
            .build()
            .unwrap();
        let result =
            basic_search(&source, &data.space, &data.cost, &config, data.items.len()).unwrap();
        match result.report() {
            Some(best) => println!(
                "{budget:>8} {:>16} {:>12.1} {:>12.1} {:>8.3}",
                best.label,
                best.error,
                result.average_error().unwrap_or(f64::NAN),
                result.indistinguishable_fraction(0.95).unwrap_or(f64::NAN),
            ),
            None => println!("{budget:>8} {:>16} (no feasible region)", "-"),
        }
    }

    println!(
        "\nThe planted bellwether is the tight state MD, whose cumulative \
         signal converges at month {}: once the budget affords [1-{}, MD], \
         the error plateaus and the bellwether becomes nearly unique.",
        cfg.converge_month, cfg.converge_month
    );
}
