//! Disk-resident training data and scan accounting: stream a §7.4-style
//! workload to disk, run the three cube algorithms against the file
//! with no caching, and show that the IO counters verify the paper's
//! scan lemmas: the naive cube performs one full scan *per subset*,
//! while single-scan/optimized perform a single full scan (plus one
//! targeted region read per produced cell, to fit its final model).
//!
//! Run with: `cargo run --release --example disk_scan`

use bellwether::prelude::*;

fn main() {
    let cfg = ScaleConfig {
        n_items: 500,
        fact_dim_leaves: [5, 5],
        item_hierarchy_leaves: [3, 3, 3],
        n_numeric_attrs: 2,
        regional_features: 4,
        bellwether_noise: 0.05,
        seed: 2024,
    };
    let w = build_scale_workload(&cfg);
    let path = std::env::temp_dir().join("bw_disk_scan_example.bwtd");
    w.write_to_disk(&path).expect("write workload");
    let src = DiskSource::open(&path).expect("open workload");
    println!(
        "workload: {} regions × {} items = {} examples ({} bytes on disk)",
        src.num_regions(),
        cfg.n_items,
        w.total_examples(),
        src.data_bytes()
    );

    let problem = BellwetherConfig::builder(f64::INFINITY)
        .min_coverage(0.0)
        .min_examples(10)
        .error_measure(ErrorMeasure::TrainingSet)
        .build()
        .unwrap();
    let cube_cfg = CubeConfig {
        min_subset_size: 25,
    };
    let regions = src.num_regions();

    type Builder<'a> = Box<dyn Fn() -> BellwetherCube + 'a>;
    let algorithms: Vec<(&str, Builder)> = vec![
        (
            "naive cube",
            Box::new(|| {
                build_naive_cube(
                    &src,
                    &w.region_space,
                    &w.item_space,
                    &w.item_coords,
                    &problem,
                    &cube_cfg,
                )
                .unwrap()
            }),
        ),
        (
            "single-scan cube",
            Box::new(|| {
                build_single_scan_cube(
                    &src,
                    &w.region_space,
                    &w.item_space,
                    &w.item_coords,
                    &problem,
                    &cube_cfg,
                )
                .unwrap()
            }),
        ),
        (
            "optimized cube",
            Box::new(|| {
                build_optimized_cube(
                    &src,
                    &w.region_space,
                    &w.item_space,
                    &w.item_coords,
                    &problem,
                    &cube_cfg,
                )
                .unwrap()
            }),
        ),
    ];

    for (name, build) in &algorithms {
        src.stats().reset();
        let start = std::time::Instant::now();
        let cube = build();
        let secs = start.elapsed().as_secs_f64();
        let snap = src.snapshot();
        println!(
            "{name:<18} {:>6.2}s  {:>6} region reads  ({:.1} full scans)  {} cells",
            secs,
            snap.regions_read(),
            snap.scan_equivalents(regions),
            cube.cells.len()
        );
    }

    std::fs::remove_file(&path).ok();
}
