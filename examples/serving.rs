//! Serving: train once, snapshot, answer predictions over HTTP.
//!
//! The bellwether economics are train-once / predict-many: one scan of
//! the entire training data buys a model that then answers item-level
//! predictions indefinitely. This example walks that full arc — build
//! all three method families on the mail-order workload, write one
//! versioned checksummed snapshot, load it back as an immutable model,
//! and serve batched predictions over a real TCP socket.
//!
//! Run with: `cargo run --release --example serving`

use bellwether::prelude::*;
use std::collections::HashMap;
use std::io::{BufRead, BufReader, Read, Write};
use std::net::TcpStream;

fn main() {
    // ---- train once: the heterogeneous mail-order workload, so the
    // tree and cube have real per-category structure to find.
    let mut cfg = RetailConfig::mail_order_heterogeneous(120, 7);
    cfg.months = 6;
    cfg.converge_month = 4;
    cfg.states = Some(vec!["MD", "WI", "CA", "TX", "NY", "IL"]);
    let data = generate_retail(&cfg);
    let targets: HashMap<i64, f64> =
        global_target(&data.db, "profit", AggFunc::Sum).unwrap();
    let cube_input = build_cube_input(&data.db, &data.space, &data.feature_queries).unwrap();
    let pass = cube_pass(&data.space, &cube_input);
    let problem = BellwetherConfig::builder(25.0)
        .min_coverage(0.0)
        .min_examples(20)
        .error_measure(ErrorMeasure::TrainingSet)
        .build()
        .unwrap();
    // Only affordable regions: the whole-period/whole-area region
    // contains the target itself and would win vacuously.
    let affordable: Vec<RegionId> = data
        .space
        .all_regions()
        .into_iter()
        .filter(|r| CostModel::cost(&data.cost, &data.space, r) <= problem.budget)
        .collect();
    let source = build_memory_source(&pass, &affordable, &data.items, &targets);

    let search =
        basic_search(&source, &data.space, &data.cost, &problem, data.items.len()).unwrap();
    let report = search.report().expect("a bellwether exists");
    println!("trained: {}", report.summary());
    let tree = build_rainforest(
        &source,
        &data.space,
        &data.items,
        None,
        &problem,
        &TreeConfig::default(),
    )
    .unwrap();
    let cube = build_single_scan_cube(
        &source,
        &data.space,
        &data.item_space,
        &data.item_coords,
        &problem,
        &CubeConfig {
            min_subset_size: 20,
        },
    )
    .unwrap();

    // ---- snapshot: versioned, checksummed, written atomically. The
    // model bundles the chosen regions' feature blocks, so predictions
    // after load are bit-identical to predictions before save.
    let ids = data.items.ids().to_vec();
    let model = ModelBuilder::new(&source, data.items)
        .basic(report)
        .tree(tree)
        .cube(cube, 0.95)
        .build()
        .unwrap();
    let path = std::env::temp_dir().join("bellwether_serving_example.bwsn");
    model.save(&path).unwrap();
    println!(
        "snapshot: {} bytes at {}",
        std::fs::metadata(&path).unwrap().len(),
        path.display()
    );
    let model = BellwetherModel::load(&path).expect("snapshot loads");

    // ---- serve the loaded model on a real socket.
    let registry = Registry::shared();
    let config = ServeConfig::builder()
        .workers(2)
        .registry(registry.clone())
        .build()
        .unwrap();
    let handle = Server::bind("127.0.0.1:0", model, config).unwrap();
    println!("serving on http://{}/predict", handle.local_addr());

    // ---- a keep-alive client sends one batch per method family.
    let mut conn = TcpStream::connect(handle.local_addr()).unwrap();
    let health = request(&mut conn, "GET", "/health", "");
    println!("health: {health}");
    for method in ["basic", "tree", "cube"] {
        let body = format!(
            "{{\"method\":\"{method}\",\"ids\":[{},{},{},-1]}}",
            ids[0], ids[1], ids[2]
        );
        let resp = request(&mut conn, "POST", "/predict", &body);
        println!("{method:>5}: {resp}");
        assert!(resp.contains("\"count\":4"), "{resp}");
    }

    // ---- the serving counters, from the same shared registry.
    let metrics = request(&mut conn, "GET", "/metrics", "");
    assert!(metrics.contains("serve/requests"), "{metrics}");
    let snap = registry.snapshot();
    println!(
        "served {} requests / {} predictions",
        snap.counter("serve/requests").unwrap_or(0),
        snap.counter("serve/predictions").unwrap_or(0)
    );
    handle.shutdown();
    std::fs::remove_file(&path).ok();
}

/// Minimal HTTP/1.1 client: one request, one JSON body back.
fn request(conn: &mut TcpStream, method: &str, path: &str, body: &str) -> String {
    write!(
        conn,
        "{method} {path} HTTP/1.1\r\nhost: example\r\ncontent-length: {}\r\n\r\n{body}",
        body.len()
    )
    .unwrap();
    conn.flush().unwrap();
    let mut reader = BufReader::new(conn);
    let mut line = String::new();
    reader.read_line(&mut line).unwrap();
    assert!(line.contains("200"), "unexpected status: {line}");
    let mut len = 0usize;
    loop {
        let mut header = String::new();
        reader.read_line(&mut header).unwrap();
        let header = header.trim_end();
        if header.is_empty() {
            break;
        }
        if let Some(v) = header
            .to_ascii_lowercase()
            .strip_prefix("content-length:")
            .map(str::trim)
            .and_then(|v| v.parse().ok())
        {
            len = v;
        }
    }
    let mut body = vec![0u8; len];
    reader.read_exact(&mut body).unwrap();
    String::from_utf8(body).unwrap()
}
