//! Observability tour: run the mail-order pipeline end to end with one
//! metrics [`Registry`] attached to every layer — the CUBE pass, the
//! disk storage reader/writer, the basic search, the RainForest tree
//! builder (one span per level scan, the empirical Lemma 1 witness) and
//! the optimized cube builder — then print the resulting span-tree
//! profile and counters.
//!
//! The same run is repeated with the legacy `CubeStats`/`IoStats`
//! bundles to show the counts agree exactly: the old stats structs are
//! now views over the same counter machinery.
//!
//! The registry also carries the fault-tolerance counters —
//! `storage/retries` (transient reads absorbed by `RetryingSource`),
//! `storage/corrupt_blocks` (CRC-32 mismatches on decode),
//! `storage/faults_injected` (faults served by a test `FaultySource`)
//! and `scan/regions_skipped` (regions dropped by a
//! `ScanPolicy::SkipUnreadable` scan). They stay zero on this healthy
//! run; `examples/fault_tolerance.rs` exercises all four.
//!
//! Run with: `cargo run --release --example observability`

use bellwether::prelude::*;
use std::collections::HashMap;

fn main() {
    let reg = Registry::shared();

    // ---- the retail workload (the quickstart's bigger sibling).
    let mut cfg = RetailConfig::mail_order_heterogeneous(240, 7);
    cfg.months = 8;
    cfg.converge_month = 6;
    println!("generating mail-order dataset ({} items)…", cfg.n_items);
    let data = generate_retail(&cfg);
    let targets: HashMap<i64, f64> =
        global_target(&data.db, "profit", AggFunc::Sum).unwrap();
    let cube_input =
        build_cube_input(&data.db, &data.space, &data.feature_queries).unwrap();

    // ---- CUBE pass, reporting phases + counters into the registry.
    let cube_result =
        cube_pass_traced(&data.space, &cube_input, Parallelism::default(), reg.as_ref());

    // Legacy cross-check: the same pass through the old CubeStats API
    // must count exactly the same work.
    let legacy_cube = bellwether::storage::CubeStats::shared();
    let _ = bellwether::cube::cube_pass_with(
        &data.space,
        &cube_input,
        Parallelism::default(),
        Some(&legacy_cube),
    );
    let snap = reg.snapshot();
    let legacy_snap = legacy_cube.snapshot();
    for name in [
        "cube_pass/rows_scanned",
        "cube_pass/base_cells",
        "cube_pass/cell_merges",
        "cube_pass/regions_emitted",
    ] {
        assert_eq!(
            snap.counter(name),
            legacy_snap.counter(name),
            "registry and legacy CubeStats disagree on {name}"
        );
    }
    println!(
        "CUBE pass: {} rows scanned, {} regions emitted (matches legacy CubeStats)",
        snap.rows_scanned(),
        snap.regions_emitted()
    );

    // ---- entire training data on disk, written and read through the
    // registry-bound storage layer.
    let budget = 40.0;
    let regions: Vec<RegionId> = data
        .space
        .all_regions()
        .into_iter()
        .filter(|r| data.cost.cost(&data.space, r) <= budget)
        .collect();
    let path = std::env::temp_dir().join("bellwether_observability.btd");
    write_disk_source_in_registry(
        &path,
        &cube_result,
        &regions,
        &data.space,
        &data.items,
        &targets,
        &reg,
    )
    .unwrap();
    let source = DiskSource::open_with_registry(&path, &reg).unwrap();

    let problem = BellwetherConfig::builder(f64::INFINITY)
        .min_coverage(0.0)
        .min_examples(20)
        .error_measure(ErrorMeasure::TrainingSet)
        .recorder(reg.clone())
        .build()
        .unwrap();

    // ---- basic search, tree and cube, all profiled.
    let search =
        basic_search(&source, &data.space, &data.cost, &problem, data.items.len()).unwrap();
    println!(
        "basic search: {} regions evaluated, bellwether {}",
        search.reports.len(),
        search.report().map_or("-".into(), |r| r.label)
    );

    // ---- the algebraic CV engine's work counters: the same search
    // under 10-fold cross-validation, read back through the snapshot
    // accessors. Every fold is fit by downdating shared sufficient
    // statistics, so `linreg/fits` counts Cholesky solves, not data
    // passes — and a warm per-worker scratch means evaluations reuse
    // buffers instead of allocating (`linreg/scratch_reuses`).
    let cv_problem = BellwetherConfig::builder(f64::INFINITY)
        .min_coverage(0.0)
        .min_examples(20)
        .error_measure(ErrorMeasure::cv10())
        .recorder(reg.clone())
        .build()
        .unwrap();
    let _ = basic_search(&source, &data.space, &data.cost, &cv_problem, data.items.len())
        .unwrap();
    let snap = reg.snapshot();
    println!(
        "CV-10 search: {} model fits, {} CV folds evaluated, {} ridge rescues",
        snap.fits(),
        snap.cv_folds_evaluated(),
        snap.ridge_rescues(),
    );
    println!(
        "engine scratch: {} reuses / {} grows (allocation-free once warm)",
        snap.counter("linreg/scratch_reuses").unwrap_or(0),
        snap.counter("linreg/scratch_grows").unwrap_or(0),
    );

    let tree_cfg = TreeConfig {
        min_node_items: 60,
        max_numeric_splits: 8,
        ..TreeConfig::default()
    };
    let tree =
        build_rainforest(&source, &data.space, &data.items, None, &problem, &tree_cfg)
            .unwrap();
    println!("RF tree: {} nodes, depth {}", tree.nodes.len(), tree.depth());

    let cube_cfg = CubeConfig {
        min_subset_size: 30,
    };
    let cube = build_optimized_cube(
        &source,
        &data.space,
        &data.item_space,
        &data.item_coords,
        &problem,
        &cube_cfg,
    )
    .unwrap();
    println!("optimized cube: {} cells", cube.cells.len());

    // Legacy cross-check for storage I/O: replay the tree build on a
    // plain DiskSource and compare its IoStats-backed snapshot against
    // the registry's running counters.
    let before = reg.snapshot().regions_read();
    let _ = build_rainforest(&source, &data.space, &data.items, None, &problem, &tree_cfg)
        .unwrap();
    let tree_reads = reg.snapshot().regions_read() - before;
    let plain = DiskSource::open(&path).unwrap();
    let _ = build_rainforest(&plain, &data.space, &data.items, None, &problem, &tree_cfg)
        .unwrap();
    assert_eq!(
        plain.snapshot().regions_read(),
        tree_reads,
        "registry and legacy IoStats disagree on regions read"
    );
    println!("tree build: {tree_reads} region reads (matches legacy IoStats)");

    // ---- decoded-block cache: the RF tree reads the entire training
    // data once per level, so everything after the first level-scan is
    // served from memory. Hits bypass the inner source (real reads stay
    // honest); the cache's own counters land in the same registry.
    let cached =
        CachedSource::with_registry(DiskSource::open(&path).unwrap(), 16 << 20, &reg);
    let _ = build_rainforest(&cached, &data.space, &data.items, None, &problem, &tree_cfg)
        .unwrap();
    let snap = reg.snapshot();
    assert!(snap.cache_hits() > 0, "level re-scans should hit the cache");
    println!(
        "cached tree build: {} hits / {} misses ({:.1}% hit rate), {} evictions",
        snap.cache_hits(),
        snap.cache_misses(),
        snap.cache_hit_rate() * 100.0,
        snap.cache_evictions()
    );

    // ---- one span per RainForest level scan (Lemma 1, observed).
    let snap = reg.snapshot();
    for d in 0..=tree.depth() {
        assert!(
            snap.span(&format!("tree/rainforest/level{d}")).is_some(),
            "missing level {d} scan span"
        );
    }

    println!("\n==== span-tree profile ====");
    print!("{}", snap.render_span_tree());
    println!("\n==== counters ====");
    for (name, value) in &snap.counters {
        println!("{name:<32} {value}");
    }

    std::fs::remove_file(&path).ok();
}
