//! Distributed training tour: shard a workload to disk, then train
//! through the multi-process coordinator — one OS worker process per
//! shard, speaking the CRC-framed protocol over stdin/stdout — while a
//! seeded fault campaign crashes and hangs workers mid-run. The
//! coordinator restarts them against a bounded backoff budget and the
//! final model comes out byte-identical to a clean in-process run; the
//! `coord/*` counter snapshot at the end proves the faults happened.
//!
//! Run with: `cargo run --release --example distributed`

use bellwether::prelude::*;
use std::time::Duration;

fn main() {
    // This same binary doubles as the shard worker: the coordinator
    // re-invokes it as `distributed --worker --shard <file> ...`, and
    // this call serves one shard over stdin/stdout then exits.
    bellwether::coord::maybe_run_worker();

    // 1. Build a planted workload and shard it to disk.
    let cfg = ScaleConfig {
        n_items: 300,
        fact_dim_leaves: [5, 5],
        item_hierarchy_leaves: [3, 3, 3],
        n_numeric_attrs: 2,
        regional_features: 4,
        bellwether_noise: 0.05,
        seed: 7171,
    };
    let w = build_scale_workload(&cfg);
    let shards = 4;
    let dir = std::env::temp_dir().join("bw_distributed_example");
    let _ = std::fs::remove_dir_all(&dir);
    std::fs::create_dir_all(&dir).expect("create dataset dir");
    let manifest = w.write_sharded(&dir, shards).expect("write shards");
    println!(
        "dataset: {} regions × {} items over {} shards in {}",
        manifest.total_regions(),
        cfg.n_items,
        manifest.shards.len(),
        dir.display()
    );

    let problem = BellwetherConfig::builder(f64::INFINITY)
        .min_coverage(0.0)
        .min_examples(10)
        .error_measure(ErrorMeasure::TrainingSet)
        .build()
        .unwrap();
    let cost = UniformCellCost { rate: 1.0 };

    // 2. Clean in-process reference run over the same shard files.
    let sharded = ShardedSource::open(&dir).expect("open sharded");
    let reference = basic_search(&sharded, &w.region_space, &cost, &problem, cfg.n_items)
        .expect("clean search")
        .report()
        .expect("a bellwether exists");

    // 3. The same search through real worker processes under a seeded
    //    crash + hang campaign: the first incarnation of every worker
    //    crashes mid-protocol, the second hangs until the 500 ms
    //    deadline kills it, the third runs clean.
    let plan = WorkerFaultPlan::new(99).with_crashes(1).with_hangs(1);
    let config = CoordinatorConfig::new()
        .deadline(Duration::from_millis(500))
        .expect("nonzero deadline")
        .restart_policy(
            RetryPolicy::builder()
                .max_attempts(6)
                .base_backoff(Duration::from_millis(2))
                .jitter_seed(99)
                .build()
                .unwrap(),
        );
    let bin = std::env::current_exe().expect("own binary path");
    let registry = Registry::new();
    let coord = Coordinator::spawn_processes_with_registry(&dir, &bin, plan, config, &registry)
        .expect("spawn worker fleet");
    println!(
        "\ncoordinator: {} worker processes, crash+hang campaign seed 99",
        coord.num_workers()
    );

    let report = basic_search(&coord, &w.region_space, &cost, &problem, cfg.n_items)
        .expect("distributed search")
        .report()
        .expect("a bellwether exists");

    // 4. The merged report is identical to the in-process run.
    println!("\nbellwether (distributed): {}", report.label);
    println!("  error      : {:.6}", report.error);
    println!("  n_examples : {}", report.n_examples);
    assert_eq!(report.region, reference.region, "same bellwether region");
    assert_eq!(
        report.model.coefficients(),
        reference.model.coefficients(),
        "bit-identical model through the process fleet"
    );
    println!("  == clean in-process result: bit-identical");

    // 5. Shut the fleet down and show the lifecycle counters.
    let exits = coord.shutdown();
    println!("\nworker exits:");
    for e in &exits {
        println!(
            "  worker {}: {} spawn(s){}",
            e.worker,
            e.spawns,
            match e.peak_rss_bytes {
                Some(rss) => format!(", peak RSS {:.1} MiB", rss as f64 / (1024.0 * 1024.0)),
                None => String::new(),
            }
        );
    }

    let snap = registry.snapshot();
    println!("\ncoord/* counters:");
    for (name, value) in &snap.counters {
        if name.starts_with("coord/") {
            println!("  {name:<24} {value}");
        }
    }
    let restarts = snap.counter("coord/worker_restarts").unwrap_or(0);
    assert!(restarts > 0, "the campaign must have forced restarts");
    println!("\n{restarts} worker restart(s) absorbed without changing a bit of the result.");

    let _ = std::fs::remove_dir_all(&dir);
}
