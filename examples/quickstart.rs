//! Quickstart: the paper's motivating example in miniature.
//!
//! A company wants to predict each item's first-period worldwide profit
//! from data bought in one small region. We build the Figure-1 star
//! schema by hand, label the items with an aggregate query, create
//! every region's training set in one CUBE pass, and run the basic
//! bellwether search.
//!
//! Run with: `cargo run --example quickstart`

use bellwether::prelude::*;
use std::collections::HashMap;

fn main() {
    // ---- the historical database (Figure 1): OrderTable + AdTable.
    // 8 items, 4 weeks, 3 states. Item demand is driven by a latent
    // factor that Wisconsin's first two weeks expose almost perfectly.
    let mut fact = bellwether::table::TableBuilder::new(
        Schema::from_pairs(&[
            ("item", DataType::Int),
            ("week", DataType::Int),
            ("state", DataType::Str),
            ("profit", DataType::Float),
            ("ad", DataType::Int),
        ])
        .unwrap(),
    );
    let states = ["WI", "MD", "CA"];
    for item in 0..8i64 {
        let demand = 10.0 + 7.0 * item as f64;
        for week in 1..=4i64 {
            for (si, state) in states.iter().enumerate() {
                // WI tracks demand exactly; MD and CA are noisy echoes.
                let wobble = if si == 0 {
                    1.0
                } else {
                    1.0 + 0.4 * (((item * 13 + week * 7 + si as i64 * 29) % 10) as f64 - 4.5)
                        / 4.5
                };
                let profit = demand * wobble * (0.2 + 0.1 * week as f64);
                fact.push_row(vec![
                    Value::Int(item),
                    Value::Int(week),
                    Value::from(*state),
                    Value::Float(profit),
                    Value::Int(item % 3),
                ])
                .unwrap();
            }
        }
    }
    let ads = Table::new(
        Schema::from_pairs(&[("ad", DataType::Int), ("ad_size", DataType::Float)]).unwrap(),
        vec![
            Column::from_ints(vec![0, 1, 2]),
            Column::from_floats(vec![1.0, 2.0, 4.0]),
        ],
    )
    .unwrap();
    let mut refs = HashMap::new();
    refs.insert("ads".to_string(), (ads, "ad".to_string()));
    let db = StarDatabase {
        fact: fact.finish().unwrap(),
        refs,
        item_col: "item".into(),
        dim_cols: vec!["week".into(), "state".into()],
    };

    // ---- dimensions (Figure 2): weeks 1..4 × {WI, MD, CA} under All.
    let location = Hierarchy::flat("Location", "All", &states);
    let space = RegionSpace::new(vec![
        Dimension::Interval {
            name: "Week".into(),
            max_t: 4,
        },
        Dimension::Hierarchy(location),
    ]);

    // ---- the queries: features per region, target = total profit.
    let queries = vec![
        FeatureQuery::FactAgg {
            name: "regional_profit".into(),
            column: "profit".into(),
            func: AggFunc::Sum,
        },
        FeatureQuery::DistinctJoinAgg {
            name: "max_ad_size".into(),
            table: "ads".into(),
            fk: "ad".into(),
            column: "ad_size".into(),
            func: AggFunc::Max,
        },
    ];
    let targets = global_target(&db, "profit", AggFunc::Sum).unwrap();

    // ---- one CUBE pass builds every region's training set.
    let cube_input = build_cube_input(&db, &space, &queries).unwrap();
    let cube = cube_pass(&space, &cube_input);
    let items = ItemTable::from_table(
        &Table::new(
            Schema::from_pairs(&[("id", DataType::Int)]).unwrap(),
            vec![Column::from_ints((0..8).collect())],
        )
        .unwrap(),
        "id",
        &[],
        &[],
    )
    .unwrap();
    let regions = space.all_regions();
    let source = build_memory_source(&cube, &regions, &items, &targets);

    // ---- the basic bellwether search under a budget.
    let cost = UniformCellCost { rate: 1.0 }; // 1 unit per (week, state) cell
    let config = BellwetherConfig::builder(3.0) // at most 3 cells
        .min_coverage(0.9)
        .min_examples(5)
        .error_measure(ErrorMeasure::TrainingSet)
        .build()
        .unwrap();
    let result = basic_search(&source, &space, &cost, &config, 8).unwrap();

    println!("feasible regions under budget 3.0:");
    for report in &result.reports {
        println!(
            "  {:>12}  cost {:>4}  rmse {:.4}",
            report.label, report.cost, report.error.value
        );
    }
    let report = result.report().expect("a bellwether exists");
    println!("\n{}", report.summary());
    println!(
        "model coefficients (intercept, regional_profit, max_ad_size): {:?}",
        report.model.coefficients()
    );
    assert!(report.label.contains("WI"), "the planted bellwether is in WI");
}
