//! Fault-tolerance tour: the checksummed on-disk format, deterministic
//! fault injection, retry/backoff, and the two scan policies — with
//! every fault and recovery counted in one metrics [`Registry`].
//!
//! The walk-through:
//!
//! 1. write the mail-order training data to disk (format v2: every
//!    block carries a CRC-32 trailer);
//! 2. inject seeded transient IO failures with [`FaultySource`] and
//!    absorb them with [`RetryingSource`] — the search result is
//!    bit-identical to the clean run;
//! 3. flip one byte on disk: a `Strict` scan fails with a structured
//!    `RegionRead` error naming the corrupt region, while
//!    `SkipUnreadable` completes degraded and reports exactly which
//!    region it dropped;
//! 4. print the `MetricsSnapshot` JSON, which now carries
//!    `storage/retries`, `storage/corrupt_blocks`,
//!    `storage/faults_injected` and `scan/regions_skipped`.
//!
//! Run with: `cargo run --release --example fault_tolerance`

use bellwether::prelude::*;
use std::collections::HashMap;
use std::time::Duration;

fn main() {
    let reg = Registry::shared();

    // ---- a small mail-order workload, written to disk in format v2.
    let mut cfg = RetailConfig::mail_order(120, 11);
    cfg.months = 6;
    cfg.converge_month = 4;
    println!("generating mail-order dataset ({} items)…", cfg.n_items);
    let data = generate_retail(&cfg);
    let targets: HashMap<i64, f64> =
        global_target(&data.db, "profit", AggFunc::Sum).unwrap();
    let cube_input =
        build_cube_input(&data.db, &data.space, &data.feature_queries).unwrap();
    let cube_result = cube_pass(&data.space, &cube_input);

    let budget = 40.0;
    let regions: Vec<RegionId> = data
        .space
        .all_regions()
        .into_iter()
        .filter(|r| data.cost.cost(&data.space, r) <= budget)
        .collect();
    let path = std::env::temp_dir().join("bellwether_fault_tolerance.btd");
    write_disk_source_in_registry(
        &path,
        &cube_result,
        &regions,
        &data.space,
        &data.items,
        &targets,
        &reg,
    )
    .unwrap();
    let clean = DiskSource::open(&path).unwrap();
    println!(
        "wrote {} checksummed regions (format v{})",
        regions.len(),
        clean.format_version()
    );

    let problem = BellwetherConfig::builder(budget)
        .min_coverage(0.5)
        .min_examples(20)
        .error_measure(ErrorMeasure::TrainingSet)
        .recorder(reg.clone())
        .build()
        .unwrap();

    // ---- clean baseline.
    let baseline =
        basic_search(&clean, &data.space, &data.cost, &problem, data.items.len()).unwrap();
    println!(
        "clean search: {} regions evaluated, bellwether {}",
        baseline.reports.len(),
        baseline.report().map_or("-".into(), |r| r.label)
    );

    // ---- seeded transient faults, absorbed by retries: every region
    // read fails once before succeeding, and the retry layer (4
    // attempts, exponential backoff with deterministic jitter) makes
    // the whole thing invisible to the search.
    let plan = FaultPlan::new(42).transient_every(1, 1);
    let policy = RetryPolicy::builder()
        .max_attempts(4)
        .base_backoff(Duration::from_micros(50))
        .max_backoff(Duration::from_millis(2))
        .build()
        .unwrap();
    let flaky = RetryingSource::with_registry(
        FaultySource::with_registry(DiskSource::open_with_registry(&path, &reg).unwrap(), plan, &reg),
        policy,
        &reg,
    );
    let retried =
        basic_search(&flaky, &data.space, &data.cost, &problem, data.items.len()).unwrap();
    assert_eq!(
        format!("{retried:?}"),
        format!("{baseline:?}"),
        "retried faults must not change the result"
    );
    println!(
        "faulty search: {} transients injected, {} retries — result bit-identical to clean run",
        flaky.inner().faults_injected(),
        flaky.retries()
    );

    // ---- corruption: flip one byte of the first block on disk.
    let mut bytes = std::fs::read(&path).unwrap();
    let flip_at = bellwether::storage::format::HEADER_LEN + 24;
    bytes[flip_at] ^= 0x01;
    std::fs::write(&path, &bytes).unwrap();
    println!("\nflipped one bit at byte {flip_at} on disk");

    // Strict (the default): the checksum catches the flip and the scan
    // fails fast with the region index attached — no panic, no silently
    // wrong aggregate.
    let corrupt = DiskSource::open_with_registry(&path, &reg).unwrap();
    match basic_search(&corrupt, &data.space, &data.cost, &problem, data.items.len()) {
        Err(BellwetherError::RegionRead { index, source }) => {
            assert!(is_corrupt(&source), "expected a classified corrupt block");
            println!("strict scan: failed region {index} — {source}");
        }
        other => panic!("expected a RegionRead error, got {other:?}"),
    }

    // SkipUnreadable: the search completes without the corrupt region
    // and says exactly what it dropped.
    let degraded_cfg = BellwetherConfig::builder(budget)
        .min_coverage(0.5)
        .min_examples(20)
        .error_measure(ErrorMeasure::TrainingSet)
        .scan_policy(ScanPolicy::SkipUnreadable { max_skipped: 2 })
        .recorder(reg.clone())
        .build()
        .unwrap();
    let degraded = basic_search(
        &corrupt,
        &data.space,
        &data.cost,
        &degraded_cfg,
        data.items.len(),
    )
    .unwrap();
    println!(
        "skip-unreadable scan: {} regions evaluated, skipped {:?}, bellwether {}",
        degraded.reports.len(),
        degraded.skipped_regions,
        degraded.report().map_or("-".into(), |r| r.label)
    );
    assert_eq!(degraded.skipped_regions.len(), 1);

    // ---- the fault-tolerance counters, in the snapshot JSON.
    let snap = reg.snapshot();
    assert!(snap.retries() > 0, "retries should have been counted");
    assert!(snap.corrupt_blocks() > 0, "corruption should have been counted");
    assert!(snap.faults_injected() > 0);
    assert!(snap.regions_skipped() > 0);
    println!(
        "\ncounters: {} retries, {} corrupt blocks, {} faults injected, {} regions skipped",
        snap.retries(),
        snap.corrupt_blocks(),
        snap.faults_injected(),
        snap.regions_skipped()
    );
    println!("\n==== metrics snapshot (JSON) ====");
    println!("{}", snap.to_json());

    std::fs::remove_file(&path).ok();
}
