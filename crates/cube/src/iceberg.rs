//! Iceberg pruning of the candidate-region lattice (§4.2).
//!
//! Feasible regions satisfy `cost(r) ≤ B` and `coverage(r) ≥ C`. Cost is
//! monotone in region containment (a bigger region never costs less), so
//! the cost-feasible set is *downward closed*: we explore the lattice
//! bottom-up from the finest regions, never expanding past a region whose
//! cost already exceeds the budget — the BUC-style pruning of the iceberg
//! cube literature the paper cites [1, 9]. Coverage (monotone the other
//! way) is then applied as a filter on the survivors.

use crate::cost::CostModel;
use crate::dimension::Dimension;
use crate::region::{RegionId, RegionSpace};
use std::collections::{HashMap, HashSet, VecDeque};

/// The feasibility constraints of the constrained-optimization criterion.
#[derive(Debug, Clone, Copy)]
pub struct Constraints {
    /// Budget B: maximum region cost.
    pub budget: f64,
    /// Coverage threshold C ∈ [0, 1]: minimum fraction of training items
    /// with data in the region.
    pub min_coverage: f64,
    /// Total number of training items |I| (the coverage denominator).
    pub total_items: usize,
}

impl Constraints {
    /// Minimum item count a region must cover: `⌈C·|I|⌉`.
    pub fn min_items(&self) -> usize {
        (self.min_coverage * self.total_items as f64).ceil() as usize
    }
}

/// The coarsening neighbours of `r`: one dimension stepped to its parent
/// (hierarchy) or extended by one period (interval). Every region is
/// reachable from a base region through these steps.
pub fn coarser_neighbours(space: &RegionSpace, r: &RegionId) -> Vec<RegionId> {
    let mut out = Vec::new();
    for (d, dim) in space.dims().iter().enumerate() {
        let v = r.coord(d);
        let up = match dim {
            Dimension::Interval { max_t, .. } => (v + 1 < *max_t).then_some(v + 1),
            Dimension::Hierarchy(h) => h.node(v).parent,
        };
        if let Some(nv) = up {
            let mut coords = r.0.clone();
            coords[d] = nv;
            out.push(RegionId(coords));
        }
    }
    out
}

/// Bottom-up enumeration of all regions with `cost ≤ budget`, pruning the
/// upward cone of any region that exceeds it. Requires the cost model's
/// documented monotonicity.
pub fn cost_feasible_regions(
    space: &RegionSpace,
    cost: &dyn CostModel,
    budget: f64,
) -> Vec<RegionId> {
    let mut feasible = Vec::new();
    let mut seen: HashSet<RegionId> = HashSet::new();
    let mut queue: VecDeque<RegionId> = VecDeque::new();
    for base in space.base_regions() {
        if seen.insert(base.clone()) {
            queue.push_back(base);
        }
    }
    while let Some(r) = queue.pop_front() {
        if cost.cost(space, &r) > budget {
            continue; // prune: everything coarser is at least as costly
        }
        for up in coarser_neighbours(space, &r) {
            if seen.insert(up.clone()) {
                queue.push_back(up);
            }
        }
        feasible.push(r);
    }
    feasible.sort();
    feasible
}

/// All regions satisfying both constraints. `coverage_counts` maps each
/// region to `|I_r|` (regions with no data may be absent = zero).
pub fn feasible_regions(
    space: &RegionSpace,
    cost: &dyn CostModel,
    constraints: &Constraints,
    coverage_counts: &HashMap<RegionId, usize>,
) -> Vec<RegionId> {
    let min_items = constraints.min_items();
    cost_feasible_regions(space, cost, constraints.budget)
        .into_iter()
        .filter(|r| coverage_counts.get(r).copied().unwrap_or(0) >= min_items)
        .collect()
}

/// Reference implementation: test every region directly. Used by tests
/// and the pruning ablation bench to validate [`feasible_regions`].
pub fn feasible_regions_naive(
    space: &RegionSpace,
    cost: &dyn CostModel,
    constraints: &Constraints,
    coverage_counts: &HashMap<RegionId, usize>,
) -> Vec<RegionId> {
    let min_items = constraints.min_items();
    space
        .all_regions()
        .into_iter()
        .filter(|r| {
            cost.cost(space, r) <= constraints.budget
                && coverage_counts.get(r).copied().unwrap_or(0) >= min_items
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::cost::UniformCellCost;
    use crate::dimension::Hierarchy;

    fn space() -> RegionSpace {
        let mut loc = Hierarchy::new("Loc", "All");
        let us = loc.add_child(0, "US");
        loc.add_child(us, "WI");
        loc.add_child(us, "MD");
        loc.add_child(0, "KR");
        RegionSpace::new(vec![
            Dimension::Interval {
                name: "Time".into(),
                max_t: 5,
            },
            Dimension::Hierarchy(loc),
        ])
    }

    fn full_coverage(space: &RegionSpace, n: usize) -> HashMap<RegionId, usize> {
        space.all_regions().into_iter().map(|r| (r, n)).collect()
    }

    #[test]
    fn pruned_matches_naive() {
        let s = space();
        let cost = UniformCellCost { rate: 1.0 };
        let cov = full_coverage(&s, 10);
        for budget in [0.5, 1.0, 3.0, 7.0, 100.0] {
            let cons = Constraints {
                budget,
                min_coverage: 0.0,
                total_items: 10,
            };
            let mut pruned = feasible_regions(&s, &cost, &cons, &cov);
            let mut naive = feasible_regions_naive(&s, &cost, &cons, &cov);
            pruned.sort();
            naive.sort();
            assert_eq!(pruned, naive, "budget {budget}");
        }
    }

    #[test]
    fn budget_zero_prunes_everything() {
        let s = space();
        let cost = UniformCellCost { rate: 1.0 };
        let cons = Constraints {
            budget: 0.5,
            min_coverage: 0.0,
            total_items: 1,
        };
        assert!(feasible_regions(&s, &cost, &cons, &full_coverage(&s, 1)).is_empty());
    }

    #[test]
    fn coverage_filters_survivors() {
        let s = space();
        let cost = UniformCellCost { rate: 1.0 };
        let mut cov = HashMap::new();
        // Only [1-1, WI] (coords [0, 2]) covers enough items.
        cov.insert(RegionId(vec![0, 2]), 8);
        cov.insert(RegionId(vec![0, 3]), 3);
        let cons = Constraints {
            budget: 100.0,
            min_coverage: 0.5,
            total_items: 10,
        };
        let feas = feasible_regions(&s, &cost, &cons, &cov);
        assert_eq!(feas, vec![RegionId(vec![0, 2])]);
        assert_eq!(cons.min_items(), 5);
    }

    #[test]
    fn coarser_neighbours_step_one_dim() {
        let s = space();
        // [1-2, WI]: coarsen time → [1-3, WI]; coarsen loc → [1-2, US]
        let ups = coarser_neighbours(&s, &RegionId(vec![1, 2]));
        assert_eq!(ups.len(), 2);
        assert!(ups.contains(&RegionId(vec![2, 2])));
        assert!(ups.contains(&RegionId(vec![1, 1])));
        // root/max coords have no ups
        let top = coarser_neighbours(&s, &RegionId(vec![4, 0]));
        assert!(top.is_empty());
    }

    #[test]
    fn every_region_reachable_from_base() {
        // With an infinite budget the BFS must enumerate the full space.
        let s = space();
        let cost = UniformCellCost { rate: 0.0 };
        let all = cost_feasible_regions(&s, &cost, 1.0);
        assert_eq!(all.len() as u64, s.num_regions());
    }
}
