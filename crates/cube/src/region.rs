//! Candidate regions: points of the product space of dimension values.
//!
//! A region (or, on the item side, a *cube subset* of items) is one value
//! per dimension, e.g. `[1-8, MD]`. `RegionSpace` owns the dimensions and
//! provides enumeration, containment, labels, and the containing-region
//! expansion used by the CUBE pass.

use crate::dimension::Dimension;

/// One value per dimension. Doubles as a *subset id* for item
/// hierarchies (§6.1) — the machinery is identical.
#[derive(Debug, Clone, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct RegionId(pub Vec<u32>);

impl RegionId {
    /// The coordinate along dimension `d`.
    pub fn coord(&self, d: usize) -> u32 {
        self.0[d]
    }

    /// Number of dimensions.
    pub fn arity(&self) -> usize {
        self.0.len()
    }
}

impl From<Vec<u32>> for RegionId {
    fn from(v: Vec<u32>) -> Self {
        RegionId(v)
    }
}

/// The product space of all candidate regions over a set of dimensions.
#[derive(Debug, Clone)]
pub struct RegionSpace {
    dims: Vec<Dimension>,
}

impl RegionSpace {
    /// Build a space over the given dimensions (at least one).
    pub fn new(dims: Vec<Dimension>) -> Self {
        assert!(!dims.is_empty(), "a region space needs at least one dimension");
        RegionSpace { dims }
    }

    /// The dimensions.
    pub fn dims(&self) -> &[Dimension] {
        &self.dims
    }

    /// Number of dimensions.
    pub fn arity(&self) -> usize {
        self.dims.len()
    }

    /// Total number of candidate regions (product of per-dim value counts).
    pub fn num_regions(&self) -> u64 {
        self.dims.iter().map(|d| d.num_values() as u64).product()
    }

    /// Human-readable region label, e.g. `[1-8, MD]`.
    pub fn label(&self, r: &RegionId) -> String {
        let parts: Vec<String> = self
            .dims
            .iter()
            .zip(&r.0)
            .map(|(d, &v)| d.label(v))
            .collect();
        format!("[{}]", parts.join(", "))
    }

    /// Enumerate every region, in lexicographic coordinate order.
    pub fn all_regions(&self) -> Vec<RegionId> {
        let mut out = Vec::with_capacity(self.num_regions() as usize);
        let mut coords = vec![0u32; self.arity()];
        loop {
            out.push(RegionId(coords.clone()));
            // odometer increment
            let mut d = self.arity();
            loop {
                if d == 0 {
                    return out;
                }
                d -= 1;
                coords[d] += 1;
                if coords[d] < self.dims[d].num_values() {
                    break;
                }
                coords[d] = 0;
            }
        }
    }

    /// True if region `a` spatially contains region `b` on every dimension.
    pub fn contains(&self, a: &RegionId, b: &RegionId) -> bool {
        self.dims
            .iter()
            .zip(a.0.iter().zip(&b.0))
            .all(|(d, (&av, &bv))| d.value_contains(av, bv))
    }

    /// All regions containing the fact-level cell `leaf_coords` (one leaf
    /// coordinate per dimension): the cartesian product of each
    /// dimension's containing values. This is the CUBE expansion set of
    /// one fact row.
    pub fn containing_regions(&self, leaf_coords: &[u32]) -> Vec<RegionId> {
        assert_eq!(leaf_coords.len(), self.arity(), "coordinate arity mismatch");
        let per_dim: Vec<Vec<u32>> = self
            .dims
            .iter()
            .zip(leaf_coords)
            .map(|(d, &leaf)| d.containing_values(leaf))
            .collect();
        let mut out = Vec::with_capacity(per_dim.iter().map(Vec::len).product());
        let mut idx = vec![0usize; self.arity()];
        loop {
            out.push(RegionId(
                idx.iter()
                    .zip(&per_dim)
                    .map(|(&i, vals)| vals[i])
                    .collect(),
            ));
            let mut d = self.arity();
            loop {
                if d == 0 {
                    return out;
                }
                d -= 1;
                idx[d] += 1;
                if idx[d] < per_dim[d].len() {
                    break;
                }
                idx[d] = 0;
            }
        }
    }

    /// Number of finest-grained cells inside a region (product across
    /// dimensions) — the denominator of cell-sum cost models.
    pub fn finest_cell_count(&self, r: &RegionId) -> u64 {
        self.dims
            .iter()
            .zip(&r.0)
            .map(|(d, &v)| d.finest_cell_count(v) as u64)
            .product()
    }

    /// The base (finest) regions: leaf/shortest-prefix coordinates only.
    /// For item-subset spaces these are the *base subsets* of §6.1.
    pub fn base_regions(&self) -> Vec<RegionId> {
        let per_dim: Vec<Vec<u32>> = self
            .dims
            .iter()
            .map(|d| match d {
                Dimension::Interval { .. } => vec![0], // only [1..1] is "base"
                Dimension::Hierarchy(h) => h.leaves(),
            })
            .collect();
        let mut out = Vec::new();
        let mut idx = vec![0usize; self.arity()];
        loop {
            out.push(RegionId(
                idx.iter()
                    .zip(&per_dim)
                    .map(|(&i, vals)| vals[i])
                    .collect(),
            ));
            let mut d = self.arity();
            loop {
                if d == 0 {
                    return out;
                }
                d -= 1;
                idx[d] += 1;
                if idx[d] < per_dim[d].len() {
                    break;
                }
                idx[d] = 0;
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::dimension::Hierarchy;

    fn space() -> RegionSpace {
        let mut loc = Hierarchy::new("Location", "All");
        let us = loc.add_child(0, "US");
        loc.add_child(us, "WI");
        loc.add_child(us, "MD");
        RegionSpace::new(vec![
            Dimension::Interval {
                name: "Time".into(),
                max_t: 3,
            },
            Dimension::Hierarchy(loc),
        ])
    }

    #[test]
    fn enumeration_counts() {
        let s = space();
        assert_eq!(s.num_regions(), 3 * 4);
        let all = s.all_regions();
        assert_eq!(all.len(), 12);
        assert_eq!(all[0], RegionId(vec![0, 0]));
        assert_eq!(all[11], RegionId(vec![2, 3]));
        // all distinct
        let set: std::collections::HashSet<_> = all.iter().collect();
        assert_eq!(set.len(), 12);
    }

    #[test]
    fn labels() {
        let s = space();
        assert_eq!(s.label(&RegionId(vec![1, 2])), "[1-2, WI]");
        assert_eq!(s.label(&RegionId(vec![2, 0])), "[1-3, All]");
    }

    #[test]
    fn containment_is_componentwise() {
        let s = space();
        let big = RegionId(vec![2, 0]); // [1-3, All]
        let small = RegionId(vec![0, 2]); // [1-1, WI]
        assert!(s.contains(&big, &small));
        assert!(!s.contains(&small, &big));
        let other = RegionId(vec![2, 3]); // [1-3, MD]
        assert!(!s.contains(&other, &small));
    }

    #[test]
    fn containing_regions_of_a_fact_cell() {
        let s = space();
        // fact at time point 2 (coord 1), leaf WI (node 2)
        let regions = s.containing_regions(&[1, 2]);
        // times {1-2, 1-3} × locations {WI, US, All} = 6 regions
        assert_eq!(regions.len(), 6);
        assert!(regions.contains(&RegionId(vec![1, 2])));
        assert!(regions.contains(&RegionId(vec![2, 0])));
        assert!(!regions.contains(&RegionId(vec![0, 2])));
        // every returned region indeed contains the base cell
        for r in &regions {
            assert!(s.contains(r, &RegionId(vec![1, 2])));
        }
    }

    #[test]
    fn finest_cell_counts_multiply() {
        let s = space();
        // [1-2, US] = 2 time points × 2 states = 4 cells
        assert_eq!(s.finest_cell_count(&RegionId(vec![1, 1])), 4);
        assert_eq!(s.finest_cell_count(&RegionId(vec![0, 2])), 1);
    }

    #[test]
    fn base_regions_are_finest() {
        let s = space();
        let base = s.base_regions();
        // interval contributes [1-1]; hierarchy leaves WI, MD
        assert_eq!(base.len(), 2);
        assert!(base.contains(&RegionId(vec![0, 2])));
        assert!(base.contains(&RegionId(vec![0, 3])));
    }
}
