//! Memory-budgeted external CUBE pass: the `cube_pass` kernel for fact
//! tables whose phase-1 state does not fit in RAM.
//!
//! # Run discipline
//!
//! Fact rows are folded in the usual fixed [`ROW_CHUNK`] chunks, but
//! instead of keeping every chunk table alive until one global merge,
//! chunks are grouped into **runs** of a fixed [`RUN_CHUNKS`] chunks
//! (the last run may be short). Each completed run is merged with the
//! in-memory kernel's own `merge_chunks` into a key-sorted state run.
//! The byte budget then decides only *where* completed runs live: when
//! the resident runs exceed the budget, the oldest ones are serialized
//! to temp files (a `shard/spills` counter per run, `shard/spill_bytes`
//! for volume) until the budget holds again. Finally all runs — spilled
//! and resident alike, in formation order — are k-way merged by key
//! into sorted output segments and rolled up by the ordinary
//! `expand_rollup`.
//!
//! # Determinism
//!
//! Run boundaries are a function of the input alone ([`RUN_CHUNKS`]
//! chunks each), never of the budget or thread count. The budget picks
//! between two bit-exact representations of the same run — the
//! in-memory [`StateTable`]s or their serialized form, which round-trips
//! every accumulator exactly (`f64` bits, integer counts, the
//! key-sorted distinct pair lists) — so the k-way merge consumes
//! identical per-run state sequences either way. Per output key the
//! merge folds contributions in ascending run order (copy the first,
//! merge the rest), the same copy-first, earlier-chunks-first order the
//! in-memory kernel uses, and distinct lanes restore their keep-last
//! dedup invariant per closed segment. Hence the acceptance property:
//! **a spill-forced pass (tiny budget) and an unlimited-budget pass are
//! bit-identical**, at any thread count.
//!
//! The budget bounds the *aggregation state* (completed runs). Two
//! allocations are intentionally outside it: the transient chunk tables
//! of the run being folded (at most `RUN_CHUNKS × ROW_CHUNK` rows of
//! state — the floor any streaming pass pays) and the final merged
//! base-cell table handed to the rollup, whose size is bounded by
//! `#finest-cells × #items` — the aggregate itself, which must fit to
//! be useful, independent of how many fact rows collapsed into it.

use crate::cube_pass::{
    chunk_range, cube_pass_reference, expand_rollup, fold_chunk, merge_chunks, CubeInput,
    CubeResult, KeySpace, Measure, StateCol, StateTable, ROW_CHUNK,
};
use crate::parallel::Parallelism;
use crate::region::RegionSpace;
use bellwether_obs::{names, span, Recorder};
use bellwether_table::ops::AggFunc;
use std::collections::HashMap;
use std::fs::{self, File};
use std::io::{self, BufReader, BufWriter, Read, Write};
use std::path::PathBuf;
use std::sync::atomic::{AtomicU64, Ordering};

/// Chunks per run. Fixed — never derived from the budget or thread
/// count — so every budget produces the same run structure and the
/// spill-vs-resident choice cannot change a single output bit.
pub const RUN_CHUNKS: usize = 64;

/// Cells per serialized spill frame.
const FRAME_CELLS: usize = 4096;

/// Cells per output segment of the final k-way merge (the rollup
/// tolerates any ascending segmentation).
const SEGMENT_CELLS: usize = 1 << 16;

/// Pass with no byte budget: nothing ever spills.
pub const UNLIMITED_BUDGET: usize = usize::MAX;

fn invalid<T>(msg: String) -> io::Result<T> {
    Err(io::Error::new(io::ErrorKind::InvalidData, msg))
}

// ---------------------------------------------------------------------
// Spill-file format (temp scratch, process-private):
//   header:  u32 n_cols, then per column u8 kind tag + u8 func tag
//   frames:  u32 cell count (0 terminates), count × u64 keys, then per
//            column its lanes for those cells
// All integers and floats little-endian; `f64` via `to_bits`, so the
// round trip is bit-exact.
// ---------------------------------------------------------------------

fn func_tag(f: AggFunc) -> u8 {
    match f {
        AggFunc::Sum => 0,
        AggFunc::Min => 1,
        AggFunc::Max => 2,
        AggFunc::Avg => 3,
        AggFunc::Count => 4,
        AggFunc::CountDistinct => 5,
    }
}

fn func_from(tag: u8) -> io::Result<AggFunc> {
    Ok(match tag {
        0 => AggFunc::Sum,
        1 => AggFunc::Min,
        2 => AggFunc::Max,
        3 => AggFunc::Avg,
        4 => AggFunc::Count,
        5 => AggFunc::CountDistinct,
        other => return invalid(format!("bad func tag {other} in spill run")),
    })
}

fn col_tags(c: &StateCol) -> (u8, u8) {
    match c {
        StateCol::Sum { .. } => (0, 0),
        StateCol::Count(_) => (1, 0),
        StateCol::Avg { .. } => (2, 0),
        StateCol::Min { .. } => (3, 0),
        StateCol::Max { .. } => (4, 0),
        StateCol::Distinct { func, .. } => (5, func_tag(*func)),
    }
}

fn put_u32(out: &mut Vec<u8>, v: u32) {
    out.extend_from_slice(&v.to_le_bytes());
}

fn put_u64(out: &mut Vec<u8>, v: u64) {
    out.extend_from_slice(&v.to_le_bytes());
}

fn put_f64(out: &mut Vec<u8>, v: f64) {
    out.extend_from_slice(&v.to_bits().to_le_bytes());
}

fn put_i64(out: &mut Vec<u8>, v: i64) {
    out.extend_from_slice(&v.to_le_bytes());
}

/// Append one column's lanes for cells `lo..hi` to the frame buffer.
fn encode_lanes(col: &StateCol, lo: usize, hi: usize, out: &mut Vec<u8>) {
    match col {
        StateCol::Sum { totals, seen }
        | StateCol::Min { vals: totals, seen }
        | StateCol::Max { vals: totals, seen } => {
            for &v in &totals[lo..hi] {
                put_f64(out, v);
            }
            out.extend(seen[lo..hi].iter().map(|&b| b as u8));
        }
        StateCol::Count(c) => {
            for &v in &c[lo..hi] {
                put_u64(out, v);
            }
        }
        StateCol::Avg { totals, counts } => {
            for &v in &totals[lo..hi] {
                put_f64(out, v);
            }
            for &v in &counts[lo..hi] {
                put_u64(out, v);
            }
        }
        StateCol::Distinct { pairs, .. } => {
            for list in &pairs[lo..hi] {
                put_u32(out, list.len() as u32);
                for &(k, v) in list {
                    put_i64(out, k);
                    put_f64(out, v);
                }
            }
        }
    }
}

/// Serialize a run (tables with ascending disjoint key ranges) to
/// `path`; returns bytes written.
fn write_run(path: &PathBuf, shards: &[StateTable]) -> io::Result<u64> {
    let mut w = BufWriter::new(File::create(path)?);
    let mut bytes = 0u64;
    let mut buf = Vec::new();

    let cols = shards.first().map(|t| t.cols.as_slice()).unwrap_or(&[]);
    put_u32(&mut buf, cols.len() as u32);
    for c in cols {
        let (kind, func) = col_tags(c);
        buf.push(kind);
        buf.push(func);
    }
    w.write_all(&buf)?;
    bytes += buf.len() as u64;

    for table in shards {
        let mut lo = 0;
        while lo < table.len() {
            let hi = (lo + FRAME_CELLS).min(table.len());
            buf.clear();
            put_u32(&mut buf, (hi - lo) as u32);
            for &k in &table.keys[lo..hi] {
                put_u64(&mut buf, k);
            }
            for col in &table.cols {
                encode_lanes(col, lo, hi, &mut buf);
            }
            w.write_all(&buf)?;
            bytes += buf.len() as u64;
            lo = hi;
        }
    }
    buf.clear();
    put_u32(&mut buf, 0);
    w.write_all(&buf)?;
    bytes += buf.len() as u64;
    w.flush()?;
    Ok(bytes)
}

struct FrameReader {
    r: BufReader<File>,
    schema: Vec<(u8, u8)>,
}

impl FrameReader {
    fn u32(&mut self) -> io::Result<u32> {
        let mut b = [0u8; 4];
        self.r.read_exact(&mut b)?;
        Ok(u32::from_le_bytes(b))
    }

    fn bytes(&mut self, n: usize) -> io::Result<Vec<u8>> {
        let mut v = vec![0u8; n];
        self.r.read_exact(&mut v)?;
        Ok(v)
    }

    fn u64s(&mut self, n: usize) -> io::Result<Vec<u64>> {
        let raw = self.bytes(n * 8)?;
        Ok(raw
            .chunks_exact(8)
            .map(|c| u64::from_le_bytes(c.try_into().expect("8-byte chunk")))
            .collect())
    }

    fn f64s(&mut self, n: usize) -> io::Result<Vec<f64>> {
        Ok(self.u64s(n)?.into_iter().map(f64::from_bits).collect())
    }

    fn bools(&mut self, n: usize) -> io::Result<Vec<bool>> {
        Ok(self.bytes(n)?.into_iter().map(|b| b != 0).collect())
    }

    fn open(path: &PathBuf) -> io::Result<FrameReader> {
        let mut fr = FrameReader {
            r: BufReader::new(File::open(path)?),
            schema: Vec::new(),
        };
        let n_cols = fr.u32()? as usize;
        let raw = fr.bytes(n_cols * 2)?;
        fr.schema = raw.chunks_exact(2).map(|c| (c[0], c[1])).collect();
        Ok(fr)
    }

    /// Read the next frame as a small [`StateTable`]; `None` at the
    /// terminator.
    fn next_frame(&mut self) -> io::Result<Option<StateTable>> {
        let n = self.u32()? as usize;
        if n == 0 {
            return Ok(None);
        }
        let keys = self.u64s(n)?;
        let schema = self.schema.clone();
        let mut cols = Vec::with_capacity(schema.len());
        for &(kind, func) in &schema {
            let col = match kind {
                0 | 3 | 4 => {
                    let vals = self.f64s(n)?;
                    let seen = self.bools(n)?;
                    match kind {
                        0 => StateCol::Sum { totals: vals, seen },
                        3 => StateCol::Min { vals, seen },
                        _ => StateCol::Max { vals, seen },
                    }
                }
                1 => StateCol::Count(self.u64s(n)?),
                2 => StateCol::Avg {
                    totals: self.f64s(n)?,
                    counts: self.u64s(n)?,
                },
                5 => {
                    let mut pairs = Vec::with_capacity(n);
                    for _ in 0..n {
                        let len = self.u32()? as usize;
                        let raw = self.bytes(len * 16)?;
                        pairs.push(
                            raw.chunks_exact(16)
                                .map(|c| {
                                    (
                                        i64::from_le_bytes(c[..8].try_into().expect("8 bytes")),
                                        f64::from_bits(u64::from_le_bytes(
                                            c[8..].try_into().expect("8 bytes"),
                                        )),
                                    )
                                })
                                .collect(),
                        );
                    }
                    StateCol::Distinct {
                        func: func_from(func)?,
                        pairs,
                    }
                }
                other => return invalid(format!("bad column tag {other} in spill run")),
            };
            cols.push(col);
        }
        Ok(Some(StateTable { keys, cols }))
    }
}

// ---------------------------------------------------------------------
// Runs and cursors
// ---------------------------------------------------------------------

/// One completed run: merged, key-sorted state, either in memory or in
/// a spill file.
enum Run {
    Resident { shards: Vec<StateTable>, bytes: usize },
    Spilled { path: PathBuf },
}

/// Approximate resident size of one table (budget accounting).
fn table_bytes(t: &StateTable) -> usize {
    let n = t.len();
    let mut b = n * 8;
    for col in &t.cols {
        b += match col {
            StateCol::Sum { .. } | StateCol::Min { .. } | StateCol::Max { .. } => n * 9,
            StateCol::Count(_) => n * 8,
            StateCol::Avg { .. } => n * 16,
            StateCol::Distinct { pairs, .. } => {
                n * 24 + pairs.iter().map(|p| p.capacity() * 16).sum::<usize>()
            }
        }
    }
    b
}

/// Temp directory for this pass's spill files; removed on drop.
struct SpillDir {
    dir: Option<PathBuf>,
    seq: usize,
}

impl SpillDir {
    fn new() -> SpillDir {
        SpillDir { dir: None, seq: 0 }
    }

    fn next_path(&mut self) -> io::Result<PathBuf> {
        if self.dir.is_none() {
            static PASS_SEQ: AtomicU64 = AtomicU64::new(0);
            let d = std::env::temp_dir().join(format!(
                "bw_spill_{}_{}",
                std::process::id(),
                PASS_SEQ.fetch_add(1, Ordering::Relaxed)
            ));
            fs::create_dir_all(&d)?;
            self.dir = Some(d);
        }
        let path = self
            .dir
            .as_ref()
            .expect("created above")
            .join(format!("run-{:04}.bwrun", self.seq));
        self.seq += 1;
        Ok(path)
    }
}

impl Drop for SpillDir {
    fn drop(&mut self) {
        if let Some(dir) = &self.dir {
            let _ = fs::remove_dir_all(dir);
        }
    }
}

/// Streaming view of one run's cells in ascending key order, uniform
/// over resident and spilled runs.
struct RunCursor {
    source: CursorSource,
    frame: Option<StateTable>,
    pos: usize,
}

enum CursorSource {
    Resident(std::vec::IntoIter<StateTable>),
    Spilled(FrameReader),
}

impl RunCursor {
    fn open(run: Run) -> io::Result<RunCursor> {
        let source = match run {
            Run::Resident { shards, .. } => CursorSource::Resident(shards.into_iter()),
            Run::Spilled { path } => CursorSource::Spilled(FrameReader::open(&path)?),
        };
        let mut cur = RunCursor {
            source,
            frame: None,
            pos: 0,
        };
        cur.load_frame()?;
        Ok(cur)
    }

    /// Pull frames until one is non-empty or the run is exhausted.
    fn load_frame(&mut self) -> io::Result<()> {
        self.pos = 0;
        loop {
            let next = match &mut self.source {
                CursorSource::Resident(it) => it.next(),
                CursorSource::Spilled(r) => r.next_frame()?,
            };
            match next {
                Some(t) if t.len() == 0 => continue,
                other => {
                    self.frame = other;
                    return Ok(());
                }
            }
        }
    }

    fn peek(&self) -> Option<u64> {
        self.frame.as_ref().map(|t| t.keys[self.pos])
    }

    fn advance(&mut self) -> io::Result<()> {
        self.pos += 1;
        if let Some(t) = &self.frame {
            if self.pos >= t.len() {
                self.load_frame()?;
            }
        }
        Ok(())
    }
}

/// Append cell `i` of `src` as a fresh last slot of `dst` (the
/// copy-first contribution).
fn push_slot(dst: &mut StateCol, src: &StateCol, i: usize) {
    match (dst, src) {
        (StateCol::Sum { totals, seen }, StateCol::Sum { totals: st, seen: ss })
        | (StateCol::Min { vals: totals, seen }, StateCol::Min { vals: st, seen: ss })
        | (StateCol::Max { vals: totals, seen }, StateCol::Max { vals: st, seen: ss }) => {
            totals.push(st[i]);
            seen.push(ss[i]);
        }
        (StateCol::Count(c), StateCol::Count(sc)) => c.push(sc[i]),
        (StateCol::Avg { totals, counts }, StateCol::Avg { totals: st, counts: sc }) => {
            totals.push(st[i]);
            counts.push(sc[i]);
        }
        (StateCol::Distinct { pairs, .. }, StateCol::Distinct { pairs: sp, .. }) => {
            pairs.push(sp[i].clone());
        }
        _ => unreachable!("runs disagree on column kinds"),
    }
}

/// Merge cell `i` of `src` into the last slot of `dst` (a later run's
/// contribution to the same key).
fn merge_slot_into_last(dst: &mut StateCol, src: &StateCol, i: usize) {
    match (dst, src) {
        (StateCol::Sum { totals, seen }, StateCol::Sum { totals: st, seen: ss }) => {
            *totals.last_mut().expect("slot pushed") += st[i];
            let s = seen.last_mut().expect("slot pushed");
            *s |= ss[i];
        }
        (StateCol::Count(c), StateCol::Count(sc)) => {
            *c.last_mut().expect("slot pushed") += sc[i];
        }
        (StateCol::Avg { totals, counts }, StateCol::Avg { totals: st, counts: sc }) => {
            *totals.last_mut().expect("slot pushed") += st[i];
            *counts.last_mut().expect("slot pushed") += sc[i];
        }
        (StateCol::Min { vals, seen }, StateCol::Min { vals: sv, seen: ss }) => {
            if ss[i] {
                let v = vals.last_mut().expect("slot pushed");
                let s = seen.last_mut().expect("slot pushed");
                *v = if *s { v.min(sv[i]) } else { sv[i] };
                *s = true;
            }
        }
        (StateCol::Max { vals, seen }, StateCol::Max { vals: sv, seen: ss }) => {
            if ss[i] {
                let v = vals.last_mut().expect("slot pushed");
                let s = seen.last_mut().expect("slot pushed");
                *v = if *s { v.max(sv[i]) } else { sv[i] };
                *s = true;
            }
        }
        (StateCol::Distinct { pairs, .. }, StateCol::Distinct { pairs: sp, .. }) => {
            pairs.last_mut().expect("slot pushed").extend_from_slice(&sp[i]);
        }
        _ => unreachable!("runs disagree on column kinds"),
    }
}

// ---------------------------------------------------------------------
// Input validation and fallback
// ---------------------------------------------------------------------

/// The (name, kind, func) shape of a measure, for schema equality.
fn measure_shape(m: &Measure) -> (&str, u8, AggFunc) {
    match m {
        Measure::Numeric { name, func, .. } => (name, 0, *func),
        Measure::DistinctKeyed { name, func, .. } => (name, 1, *func),
    }
}

/// Concatenate fact inputs row-wise (the reference-kernel fallback; not
/// out-of-core).
fn concat_inputs(inputs: &[CubeInput]) -> CubeInput {
    let mut out = CubeInput {
        item_ids: Vec::new(),
        coords: Vec::new(),
        measures: inputs[0]
            .measures
            .iter()
            .map(|m| match m {
                Measure::Numeric { name, func, .. } => Measure::Numeric {
                    name: name.clone(),
                    func: *func,
                    values: Vec::new(),
                },
                Measure::DistinctKeyed { name, func, .. } => Measure::DistinctKeyed {
                    name: name.clone(),
                    func: *func,
                    keys: Vec::new(),
                    values: Vec::new(),
                },
            })
            .collect(),
    };
    for input in inputs {
        out.item_ids.extend_from_slice(&input.item_ids);
        out.coords.extend_from_slice(&input.coords);
        for (dst, src) in out.measures.iter_mut().zip(&input.measures) {
            match (dst, src) {
                (
                    Measure::Numeric { values, .. },
                    Measure::Numeric { values: sv, .. },
                ) => values.extend_from_slice(sv),
                (
                    Measure::DistinctKeyed { keys, values, .. },
                    Measure::DistinctKeyed {
                        keys: sk,
                        values: sv,
                        ..
                    },
                ) => {
                    keys.extend_from_slice(sk);
                    values.extend_from_slice(sv);
                }
                _ => unreachable!("schema checked by caller"),
            }
        }
    }
    out
}

/// Fold chunks `chunks` of `input` in parallel; tables return in chunk
/// order (identical to a sequential fold).
fn fold_chunks_range<K>(
    input: &CubeInput,
    arity: usize,
    chunks: std::ops::Range<usize>,
    threads: usize,
    key_of: &K,
) -> Vec<StateTable>
where
    K: Fn(usize, &[u32]) -> Option<u64> + Sync,
{
    let n = input.item_ids.len();
    if threads <= 1 || chunks.len() <= 1 {
        return chunks
            .map(|c| fold_chunk(input, arity, chunk_range(c, n), key_of))
            .collect();
    }
    let lo = chunks.start;
    let count = chunks.len();
    std::thread::scope(|s| {
        let handles: Vec<_> = (0..threads)
            .map(|w| {
                let a = lo + count * w / threads;
                let b = lo + count * (w + 1) / threads;
                s.spawn(move || {
                    (a..b)
                        .map(|c| fold_chunk(input, arity, chunk_range(c, n), key_of))
                        .collect::<Vec<_>>()
                })
            })
            .collect();
        handles
            .into_iter()
            .flat_map(|h| h.join().expect("external cube fold worker panicked"))
            .collect()
    })
}

// ---------------------------------------------------------------------
// The pass
// ---------------------------------------------------------------------

/// Run the CUBE pass over one or more fact inputs under a byte budget
/// for resident aggregation state, spilling completed runs to temp
/// files when the budget is exceeded. `budget_bytes == usize::MAX`
/// ([`UNLIMITED_BUDGET`]) never spills.
///
/// For a fixed input partition the result is bit-identical at any
/// budget × thread combination (see the module docs for the argument).
/// Different partitions of the same rows may differ in float grouping —
/// compare like with like.
///
/// Inputs must share one measure schema (names, kinds, functions, in
/// order). When the dense key encoding overflows (`KeySpace` fails) the
/// pass falls back to the tuple-keyed reference kernel over the
/// concatenated input, which is *not* out-of-core — callers at scale
/// should keep their key spaces within `u64` (the normal case).
pub fn cube_pass_external(
    space: &RegionSpace,
    inputs: &[CubeInput],
    par: Parallelism,
    budget_bytes: usize,
    rec: &dyn Recorder,
) -> io::Result<CubeResult> {
    cube_pass_external_opts(space, inputs, par, budget_bytes, RUN_CHUNKS, rec)
}

/// [`cube_pass_external`] with an explicit run length (chunks per run).
/// Production uses [`RUN_CHUNKS`]; tests shrink it to exercise
/// multi-run merges on small inputs. Results are comparable only across
/// passes with the *same* run length.
pub(crate) fn cube_pass_external_opts(
    space: &RegionSpace,
    inputs: &[CubeInput],
    par: Parallelism,
    budget_bytes: usize,
    run_chunks: usize,
    rec: &dyn Recorder,
) -> io::Result<CubeResult> {
    assert!(run_chunks > 0, "run_chunks must be positive");
    let arity = space.arity();
    let Some(first) = inputs.first() else {
        return Ok(CubeResult {
            measure_names: Vec::new(),
            regions: HashMap::new(),
        });
    };
    let shape: Vec<(&str, u8, AggFunc)> = first.measures.iter().map(measure_shape).collect();
    let mut total_rows = 0usize;
    for (idx, input) in inputs.iter().enumerate() {
        let n = input.item_ids.len();
        assert_eq!(
            input.coords.len(),
            n * arity,
            "input {idx}: coords length mismatch"
        );
        for m in &input.measures {
            m.check_len(n);
        }
        let got: Vec<(&str, u8, AggFunc)> = input.measures.iter().map(measure_shape).collect();
        assert_eq!(got, shape, "input {idx}: measure schema mismatch");
        total_rows += n;
    }
    let measure_names: Vec<String> = first.measures.iter().map(|m| m.name().to_string()).collect();
    if total_rows == 0 {
        return Ok(CubeResult {
            measure_names,
            regions: HashMap::new(),
        });
    }

    // Item domain over all inputs, deduplicated incrementally so the
    // working set stays `O(#distinct items)`, not `O(rows)`.
    let mut uniq: Vec<i64> = Vec::new();
    for input in inputs {
        uniq.extend_from_slice(&input.item_ids);
        uniq.sort_unstable();
        uniq.dedup();
    }
    let Some(ks) = KeySpace::build(space, &uniq) else {
        return Ok(cube_pass_reference(space, &concat_inputs(inputs)));
    };
    drop(uniq);
    let key_space = ks.cell_space * ks.n_items;
    let threads = par.threads_for(total_rows.div_ceil(ROW_CHUNK));

    // Phase 1: fold chunks into fixed-size runs, spilling the oldest
    // resident runs whenever the budget is exceeded.
    let mut spill_dir = SpillDir::new();
    let mut runs: Vec<Run> = Vec::new();
    let mut resident_bytes = 0usize;
    let mut run_merges = 0u64;
    {
        let _t = span!(rec, "cube_pass/external_phase1");
        let mut pending: Vec<StateTable> = Vec::new();
        let mut close_run = |pending: &mut Vec<StateTable>,
                             runs: &mut Vec<Run>,
                             resident_bytes: &mut usize,
                             run_merges: &mut u64|
         -> io::Result<()> {
            let (shards, merges) = merge_chunks(pending, key_space, threads);
            pending.clear();
            *run_merges += merges;
            let bytes = shards.iter().map(table_bytes).sum::<usize>();
            runs.push(Run::Resident { shards, bytes });
            *resident_bytes += bytes;
            if *resident_bytes > budget_bytes {
                for run in runs.iter_mut() {
                    if *resident_bytes <= budget_bytes {
                        break;
                    }
                    if let Run::Resident { shards, bytes } = run {
                        let path = spill_dir.next_path()?;
                        let written = write_run(&path, shards)?;
                        rec.add(names::SHARD_SPILLS, 1);
                        rec.add(names::SHARD_SPILL_BYTES, written);
                        *resident_bytes -= *bytes;
                        *run = Run::Spilled { path };
                    }
                }
            }
            Ok(())
        };

        for input in inputs {
            let n = input.item_ids.len();
            let key_of = |row: usize, coords: &[u32]| -> Option<u64> {
                for (d, (&c, &nv)) in coords.iter().zip(&ks.num_values).enumerate() {
                    assert!(
                        (c as u64) < nv,
                        "coordinate {c} out of range on dimension {d}"
                    );
                }
                let item_idx = ks.item_index[&input.item_ids[row]];
                Some(ks.cell_key(coords) * ks.n_items + item_idx as u64)
            };
            let n_chunks = n.div_ceil(ROW_CHUNK);
            let mut c = 0;
            while c < n_chunks {
                let take = (run_chunks - pending.len()).min(n_chunks - c);
                let mut tables = fold_chunks_range(input, arity, c..c + take, threads, &key_of);
                pending.append(&mut tables);
                c += take;
                if pending.len() == run_chunks {
                    close_run(&mut pending, &mut runs, &mut resident_bytes, &mut run_merges)?;
                }
            }
        }
        if !pending.is_empty() {
            close_run(&mut pending, &mut runs, &mut resident_bytes, &mut run_merges)?;
        }
    }

    // Final merge: one sorted base-cell table from all runs, in run
    // formation order. A single resident run needs no merge at all —
    // it *is* the in-memory kernel's phase-1 output.
    let mut final_merges = 0u64;
    let shards: Vec<StateTable> = if runs.len() == 1
        && matches!(runs[0], Run::Resident { .. })
    {
        match runs.pop().expect("one run") {
            Run::Resident { shards, .. } => shards,
            Run::Spilled { .. } => unreachable!("matched resident above"),
        }
    } else {
        let _t = span!(rec, "cube_pass/external_merge");
        rec.add(names::SHARD_RUNS_MERGED, runs.len() as u64);
        let mut cursors = runs
            .drain(..)
            .map(RunCursor::open)
            .collect::<io::Result<Vec<_>>>()?;
        let template: Vec<StateCol> = cursors
            .iter()
            .find_map(|c| c.frame.as_ref())
            .map(|t| t.cols.iter().map(|col| col.new_like(0)).collect())
            .unwrap_or_default();
        let fresh = |template: &[StateCol]| StateTable {
            keys: Vec::new(),
            cols: template.iter().map(|c| c.new_like(0)).collect(),
        };
        let mut segments: Vec<StateTable> = Vec::new();
        let mut cur = fresh(&template);
        loop {
            let mut min: Option<u64> = None;
            for c in &cursors {
                if let Some(k) = c.peek() {
                    min = Some(min.map_or(k, |m| m.min(k)));
                }
            }
            let Some(key) = min else { break };
            let mut first = true;
            for c in cursors.iter_mut() {
                while c.peek() == Some(key) {
                    {
                        let t = c.frame.as_ref().expect("peek returned Some");
                        if first {
                            cur.keys.push(key);
                            for (dst, src) in cur.cols.iter_mut().zip(&t.cols) {
                                push_slot(dst, src, c.pos);
                            }
                            first = false;
                        } else {
                            final_merges += 1;
                            for (dst, src) in cur.cols.iter_mut().zip(&t.cols) {
                                merge_slot_into_last(dst, src, c.pos);
                            }
                        }
                    }
                    c.advance()?;
                }
            }
            if cur.len() >= SEGMENT_CELLS {
                for col in &mut cur.cols {
                    col.dedup_distinct();
                }
                segments.push(std::mem::replace(&mut cur, fresh(&template)));
            }
        }
        if cur.len() > 0 {
            for col in &mut cur.cols {
                col.dedup_distinct();
            }
            segments.push(cur);
        }
        segments
    };
    let base_cells: u64 = shards.iter().map(|s| s.len() as u64).sum();

    // Phase 2: the ordinary rollup (segmentation-tolerant).
    let (regions, merges_2) = {
        let _t = span!(rec, "cube_pass/phase2_rollup");
        expand_rollup(space, &ks, &shards, threads, None)
    };

    rec.add(names::CUBE_PASS_ROWS_SCANNED, total_rows as u64);
    rec.add(names::CUBE_PASS_BASE_CELLS, base_cells);
    rec.add(
        names::CUBE_PASS_CELL_MERGES,
        run_merges + final_merges + merges_2,
    );
    rec.add(names::CUBE_PASS_REGIONS_EMITTED, regions.len() as u64);
    Ok(CubeResult {
        measure_names,
        regions,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::cube_pass::cube_pass_with;
    use crate::dimension::{Dimension, Hierarchy};
    use bellwether_obs::{NoopRecorder, Registry};

    /// Tiny deterministic generator (xorshift) for fact rows.
    struct Lcg(u64);

    impl Lcg {
        fn next(&mut self) -> u64 {
            let mut x = self.0;
            x ^= x << 13;
            x ^= x >> 7;
            x ^= x << 17;
            self.0 = x;
            x
        }

        fn below(&mut self, n: u64) -> u64 {
            self.next() % n
        }

        fn f64(&mut self) -> f64 {
            // Awkward floats on purpose: sums must not be exactly
            // representable, so any merge-order deviation shows.
            (self.next() as f64 / u64::MAX as f64) * 10.0 - 5.0 + 1.0 / 3.0
        }
    }

    fn space() -> RegionSpace {
        let mut loc = Hierarchy::new("L", "All");
        let a = loc.add_child(0, "A");
        loc.add_child(a, "A1");
        loc.add_child(a, "A2");
        let b = loc.add_child(0, "B");
        loc.add_child(b, "B1");
        RegionSpace::new(vec![
            Dimension::Interval {
                name: "T".into(),
                max_t: 4,
            },
            Dimension::Hierarchy(loc),
        ])
    }

    /// `rows` fact rows over the space's leaves with every measure kind.
    fn input(rows: usize, seed: u64) -> CubeInput {
        let leaves = [2u32, 3, 5];
        let mut g = Lcg(seed | 1);
        let mut item_ids = Vec::with_capacity(rows);
        let mut coords = Vec::with_capacity(rows * 2);
        let mut sums = Vec::with_capacity(rows);
        let mut mins = Vec::with_capacity(rows);
        let mut avgs = Vec::with_capacity(rows);
        let mut fks = Vec::with_capacity(rows);
        let mut fkv = Vec::with_capacity(rows);
        for _ in 0..rows {
            item_ids.push(g.below(7) as i64 * 3);
            coords.push(g.below(4) as u32);
            coords.push(leaves[g.below(3) as usize]);
            sums.push((g.below(10) > 0).then(|| g.f64()));
            mins.push((g.below(10) > 1).then(|| g.f64()));
            avgs.push(Some(g.f64()));
            fks.push((g.below(4) > 0).then(|| g.below(5) as i64));
            fkv.push(g.f64());
        }
        CubeInput {
            item_ids,
            coords,
            measures: vec![
                Measure::Numeric {
                    name: "s".into(),
                    func: AggFunc::Sum,
                    values: sums,
                },
                Measure::Numeric {
                    name: "m".into(),
                    func: AggFunc::Min,
                    values: mins,
                },
                Measure::Numeric {
                    name: "a".into(),
                    func: AggFunc::Avg,
                    values: avgs.clone(),
                },
                Measure::Numeric {
                    name: "c".into(),
                    func: AggFunc::Count,
                    values: avgs,
                },
                Measure::DistinctKeyed {
                    name: "d".into(),
                    func: AggFunc::Sum,
                    keys: fks.clone(),
                    values: fkv.clone(),
                },
                Measure::DistinctKeyed {
                    name: "cd".into(),
                    func: AggFunc::CountDistinct,
                    keys: fks,
                    values: fkv,
                },
            ],
        }
    }

    /// Bit-level comparison of two results (NaN-safe).
    fn assert_bit_identical(a: &CubeResult, b: &CubeResult, what: &str) {
        assert_eq!(a.measure_names, b.measure_names, "{what}: names");
        assert_eq!(a.regions.len(), b.regions.len(), "{what}: region count");
        for (r, items) in &a.regions {
            let other = b.regions.get(r).unwrap_or_else(|| {
                panic!("{what}: region {r:?} missing")
            });
            assert_eq!(items.len(), other.len(), "{what}: {r:?} item count");
            for (id, vals) in items {
                let ovals = &other[id];
                let bits: Vec<Option<u64>> =
                    vals.iter().map(|v| v.map(f64::to_bits)).collect();
                let obits: Vec<Option<u64>> =
                    ovals.iter().map(|v| v.map(f64::to_bits)).collect();
                assert_eq!(bits, obits, "{what}: {r:?} item {id}");
            }
        }
    }

    fn par(threads: usize) -> Parallelism {
        Parallelism::fixed(threads).with_min_chunk(1)
    }

    #[test]
    fn single_run_matches_in_memory_kernel_exactly() {
        let sp = space();
        let inp = input(3000, 42);
        let expect = cube_pass_with(&sp, &inp, par(1), None);
        for threads in [1, 2, 4] {
            let got = cube_pass_external(
                &sp,
                std::slice::from_ref(&inp),
                par(threads),
                UNLIMITED_BUDGET,
                &NoopRecorder,
            )
            .unwrap();
            assert_bit_identical(&got, &expect, &format!("threads={threads}"));
        }
    }

    #[test]
    fn forced_spill_is_bit_identical_to_unlimited() {
        let sp = space();
        // Three inputs of 9000 rows at run_chunks=2: the 9 chunks form
        // 5 runs, so budget 0 spills several runs and the final pass is
        // a genuine multi-run k-way merge on both sides.
        let inputs: Vec<CubeInput> = (0..3).map(|i| input(9000, 7 + i)).collect();
        let reg = Registry::shared();
        let unlimited = cube_pass_external_opts(
            &sp,
            &inputs,
            par(2),
            UNLIMITED_BUDGET,
            2,
            &NoopRecorder,
        )
        .unwrap();
        let spilled =
            cube_pass_external_opts(&sp, &inputs, par(4), 0, 2, reg.as_ref()).unwrap();
        assert_bit_identical(&spilled, &unlimited, "spilled vs unlimited");
        let snap = reg.snapshot();
        let get = |name: &str| {
            snap.counters
                .iter()
                .find(|(n, _)| n == name)
                .map(|&(_, v)| v)
                .unwrap_or(0)
        };
        assert!(get(names::SHARD_SPILLS) > 0, "budget 0 must spill");
        assert!(get(names::SHARD_SPILL_BYTES) > 0);
        assert!(get(names::SHARD_RUNS_MERGED) > 0);
        assert_eq!(get(names::CUBE_PASS_ROWS_SCANNED), 27000);
    }

    #[test]
    fn multi_input_partition_is_stable_across_threads_and_budgets() {
        let sp = space();
        let inputs: Vec<CubeInput> = (0..2).map(|i| input(5000, 100 + i)).collect();
        let base = cube_pass_external_opts(
            &sp,
            &inputs,
            par(1),
            UNLIMITED_BUDGET,
            3,
            &NoopRecorder,
        )
        .unwrap();
        for threads in [2, 4] {
            for budget in [0usize, 1 << 20, UNLIMITED_BUDGET] {
                let got = cube_pass_external_opts(
                    &sp,
                    &inputs,
                    par(threads),
                    budget,
                    3,
                    &NoopRecorder,
                )
                .unwrap();
                assert_bit_identical(
                    &got,
                    &base,
                    &format!("threads={threads} budget={budget}"),
                );
            }
        }
    }

    #[test]
    fn integer_sums_match_the_reference_kernel() {
        // Exactly-representable arithmetic: external, in-memory and
        // reference kernels must all agree regardless of grouping.
        let sp = space();
        let mut inp = input(4000, 9);
        for m in &mut inp.measures {
            if let Measure::Numeric { values, .. } = m {
                for v in values.iter_mut().flatten() {
                    *v = v.round();
                }
            }
            // T.A is functional per key (the join contract); the
            // reference kernel's hash-order merge relies on it.
            if let Measure::DistinctKeyed { keys, values, .. } = m {
                for (v, k) in values.iter_mut().zip(keys) {
                    *v = k.map_or(0.0, |k| (k * 3) as f64);
                }
            }
        }
        let reference = cube_pass_reference(&sp, &inp);
        let external =
            cube_pass_external(&sp, std::slice::from_ref(&inp), par(2), 0, &NoopRecorder)
                .unwrap();
        assert_bit_identical(&external, &reference, "external vs reference");
    }

    #[test]
    fn empty_inputs_yield_empty_results() {
        let sp = space();
        let got = cube_pass_external(&sp, &[], par(1), 0, &NoopRecorder).unwrap();
        assert!(got.regions.is_empty());
        assert!(got.measure_names.is_empty());
        let empty = CubeInput {
            item_ids: vec![],
            coords: vec![],
            measures: vec![Measure::Numeric {
                name: "s".into(),
                func: AggFunc::Sum,
                values: vec![],
            }],
        };
        let got = cube_pass_external(&sp, &[empty], par(1), 0, &NoopRecorder).unwrap();
        assert!(got.regions.is_empty());
        assert_eq!(got.measure_names, vec!["s".to_string()]);
    }

    #[test]
    fn run_roundtrip_is_bit_exact() {
        // Serialize + reload one run and compare every lane.
        let sp = space();
        let inp = input(2000, 77);
        let ks = KeySpace::build(&sp, &inp.item_ids).unwrap();
        let key_of = |row: usize, coords: &[u32]| -> Option<u64> {
            Some(ks.cell_key(coords) * ks.n_items + ks.item_index[&inp.item_ids[row]] as u64)
        };
        let tables: Vec<StateTable> = (0..inp.item_ids.len().div_ceil(ROW_CHUNK))
            .map(|c| {
                fold_chunk(&inp, 2, chunk_range(c, inp.item_ids.len()), &key_of)
            })
            .collect();
        let (shards, _) = merge_chunks(&tables, ks.cell_space * ks.n_items, 2);
        let dir = std::env::temp_dir().join(format!("bw_run_rt_{}", std::process::id()));
        fs::create_dir_all(&dir).unwrap();
        let path = dir.join("run.bwrun");
        write_run(&path, &shards).unwrap();

        let mut from_disk =
            RunCursor::open(Run::Spilled { path: path.clone() }).unwrap();
        let mut from_mem = RunCursor::open(Run::Resident {
            shards,
            bytes: 0,
        })
        .unwrap();
        let mut cells = 0usize;
        loop {
            match (from_mem.peek(), from_disk.peek()) {
                (None, None) => break,
                (Some(a), Some(b)) => {
                    assert_eq!(a, b, "key order diverged at cell {cells}");
                    let ta = from_mem.frame.as_ref().unwrap();
                    let tb = from_disk.frame.as_ref().unwrap();
                    for (ca, cb) in ta.cols.iter().zip(&tb.cols) {
                        assert_eq!(col_tags(ca), col_tags(cb), "column kinds diverged");
                        let mut probe_a = ca.new_like(0);
                        let mut probe_b = cb.new_like(0);
                        push_slot(&mut probe_a, ca, from_mem.pos);
                        push_slot(&mut probe_b, cb, from_disk.pos);
                        assert_eq!(
                            format!("{probe_a:?}"),
                            format!("{probe_b:?}"),
                            "cell {cells} state diverged"
                        );
                    }
                    from_mem.advance().unwrap();
                    from_disk.advance().unwrap();
                    cells += 1;
                }
                other => panic!("cursor lengths diverged at {cells}: {other:?}"),
            }
        }
        assert!(cells > 0);
        fs::remove_dir_all(&dir).ok();
    }
}
