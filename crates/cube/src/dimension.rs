//! Dimension structures (§4.1 of the paper).
//!
//! Two kinds of dimensions define candidate regions:
//!
//! * **Interval dimensions** — values are the incremental prefixes
//!   `[1..1], [1..2], …, [1..T]`; the fact table records time *points*.
//!   A point `p` belongs to interval `[1..t]` iff `p ≤ t`.
//! * **Hierarchical dimensions** — values are the nodes of a tree (e.g.
//!   State → Division → Region → All); the fact table records *leaf*
//!   values. A leaf belongs to every ancestor-or-self node.
//!
//! The same `Hierarchy` type doubles as an *item hierarchy* (§6.1): item
//! subsets are regions of the item-attribute space.

use std::collections::HashMap;

/// One node of a hierarchy tree.
#[derive(Debug, Clone)]
pub struct HierNode {
    /// Display label, unique within the hierarchy.
    pub label: String,
    /// Parent node id; `None` for the root.
    pub parent: Option<u32>,
    /// Depth from the root (root = 0).
    pub depth: u32,
}

/// A rooted tree of values; fact/item rows carry leaf labels.
#[derive(Debug, Clone)]
pub struct Hierarchy {
    name: String,
    nodes: Vec<HierNode>,
    children: Vec<Vec<u32>>,
    label_index: HashMap<String, u32>,
    /// Number of leaf descendants per node (a leaf counts itself).
    leaf_counts: Vec<u32>,
}

impl Hierarchy {
    /// Start building a hierarchy whose root is labelled `root_label`.
    pub fn new(name: impl Into<String>, root_label: impl Into<String>) -> Self {
        let root_label = root_label.into();
        let mut label_index = HashMap::new();
        label_index.insert(root_label.clone(), 0);
        Hierarchy {
            name: name.into(),
            nodes: vec![HierNode {
                label: root_label,
                parent: None,
                depth: 0,
            }],
            children: vec![Vec::new()],
            label_index,
            leaf_counts: vec![1],
        }
    }

    /// Add a child node under `parent`; returns its id.
    /// Panics on duplicate labels (labels key fact/item data).
    pub fn add_child(&mut self, parent: u32, label: impl Into<String>) -> u32 {
        let label = label.into();
        assert!(
            !self.label_index.contains_key(&label),
            "duplicate hierarchy label {label:?}"
        );
        let id = self.nodes.len() as u32;
        let depth = self.nodes[parent as usize].depth + 1;
        self.nodes.push(HierNode {
            label: label.clone(),
            parent: Some(parent),
            depth,
        });
        self.children.push(Vec::new());
        self.children[parent as usize].push(id);
        self.label_index.insert(label, id);
        self.leaf_counts.push(1);
        self.recount_leaves();
        id
    }

    /// Build a two-level hierarchy: root plus the given leaves.
    pub fn flat(name: impl Into<String>, root: &str, leaves: &[&str]) -> Self {
        let mut h = Hierarchy::new(name, root);
        for leaf in leaves {
            h.add_child(0, *leaf);
        }
        h
    }

    fn recount_leaves(&mut self) {
        // Recompute bottom-up; nodes are created parent-before-child so a
        // reverse pass sees children first.
        for i in (0..self.nodes.len()).rev() {
            self.leaf_counts[i] = if self.children[i].is_empty() {
                1
            } else {
                self.children[i]
                    .iter()
                    .map(|&c| self.leaf_counts[c as usize])
                    .sum()
            };
        }
    }

    /// Hierarchy name.
    pub fn name(&self) -> &str {
        &self.name
    }

    /// Total number of nodes (values).
    pub fn num_nodes(&self) -> u32 {
        self.nodes.len() as u32
    }

    /// Root node id (always 0).
    pub fn root(&self) -> u32 {
        0
    }

    /// Node accessor.
    pub fn node(&self, id: u32) -> &HierNode {
        &self.nodes[id as usize]
    }

    /// Children of a node.
    pub fn children(&self, id: u32) -> &[u32] {
        &self.children[id as usize]
    }

    /// True if `id` has no children.
    pub fn is_leaf(&self, id: u32) -> bool {
        self.children[id as usize].is_empty()
    }

    /// Node id for a label.
    pub fn id_of(&self, label: &str) -> Option<u32> {
        self.label_index.get(label).copied()
    }

    /// Ids of all leaves, in creation order.
    pub fn leaves(&self) -> Vec<u32> {
        (0..self.num_nodes()).filter(|&i| self.is_leaf(i)).collect()
    }

    /// Number of leaf descendants (a leaf counts itself).
    pub fn leaf_count(&self, id: u32) -> u32 {
        self.leaf_counts[id as usize]
    }

    /// `node` and its ancestors up to the root, nearest first.
    pub fn ancestors_or_self(&self, node: u32) -> Vec<u32> {
        let mut out = vec![node];
        let mut cur = node;
        while let Some(p) = self.nodes[cur as usize].parent {
            out.push(p);
            cur = p;
        }
        out
    }

    /// True if `ancestor` is `node` or one of its ancestors.
    pub fn contains(&self, ancestor: u32, node: u32) -> bool {
        let mut cur = node;
        loop {
            if cur == ancestor {
                return true;
            }
            match self.nodes[cur as usize].parent {
                Some(p) => cur = p,
                None => return false,
            }
        }
    }

    /// Maximum depth over all nodes.
    pub fn max_depth(&self) -> u32 {
        self.nodes.iter().map(|n| n.depth).max().unwrap_or(0)
    }
}

/// A dimension of the region space.
#[derive(Debug, Clone)]
pub enum Dimension {
    /// Incremental intervals `[1..t]`, `t ∈ 1..=max_t`. Value id `v`
    /// denotes the interval `[1 ..= v+1]`.
    Interval {
        /// Dimension name (e.g. "Time").
        name: String,
        /// Largest prefix length `T`.
        max_t: u32,
    },
    /// A hierarchy; value ids are node ids.
    Hierarchy(Hierarchy),
}

impl Dimension {
    /// Dimension name.
    pub fn name(&self) -> &str {
        match self {
            Dimension::Interval { name, .. } => name,
            Dimension::Hierarchy(h) => h.name(),
        }
    }

    /// Number of values (candidate coordinates) along this dimension.
    pub fn num_values(&self) -> u32 {
        match self {
            Dimension::Interval { max_t, .. } => *max_t,
            Dimension::Hierarchy(h) => h.num_nodes(),
        }
    }

    /// Human-readable label of a value.
    pub fn label(&self, value: u32) -> String {
        match self {
            Dimension::Interval { .. } => format!("1-{}", value + 1),
            Dimension::Hierarchy(h) => h.node(value).label.clone(),
        }
    }

    /// All values of this dimension that contain the fact-level
    /// coordinate `leaf` (a time point `1..=max_t` encoded as `leaf`,
    /// or a hierarchy leaf node id).
    ///
    /// Interval: point `p` (passed as `p-1`) is inside `[1..t]` for all
    /// `t ≥ p`. Hierarchy: ancestors-or-self.
    pub fn containing_values(&self, leaf: u32) -> Vec<u32> {
        match self {
            Dimension::Interval { max_t, .. } => {
                assert!(leaf < *max_t, "time point {} out of range {max_t}", leaf + 1);
                (leaf..*max_t).collect()
            }
            Dimension::Hierarchy(h) => h.ancestors_or_self(leaf),
        }
    }

    /// True if value `a` contains value `b` (used for lattice order).
    pub fn value_contains(&self, a: u32, b: u32) -> bool {
        match self {
            Dimension::Interval { .. } => a >= b,
            Dimension::Hierarchy(h) => h.contains(a, b),
        }
    }

    /// Number of finest-grained cells covered by a value: interval
    /// `[1..t]` covers `t` points; a hierarchy node covers its leaves.
    pub fn finest_cell_count(&self, value: u32) -> u32 {
        match self {
            Dimension::Interval { .. } => value + 1,
            Dimension::Hierarchy(h) => h.leaf_count(value),
        }
    }

    /// The "level" of a value, used for lattice displays: for intervals,
    /// the prefix length; for hierarchies, depth *below* the root counted
    /// upward so that coarser = higher (root has the highest level).
    pub fn coarseness(&self, value: u32) -> u32 {
        match self {
            Dimension::Interval { .. } => value,
            Dimension::Hierarchy(h) => h.max_depth() - h.node(value).depth,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn location() -> Hierarchy {
        // All -> US -> {WI, MD}; All -> KR
        let mut h = Hierarchy::new("Location", "All");
        let us = h.add_child(0, "US");
        h.add_child(us, "WI");
        h.add_child(us, "MD");
        h.add_child(0, "KR");
        h
    }

    #[test]
    fn hierarchy_structure() {
        let h = location();
        assert_eq!(h.num_nodes(), 5);
        assert_eq!(h.id_of("WI"), Some(2));
        assert!(h.is_leaf(2));
        assert!(!h.is_leaf(1));
        assert_eq!(h.leaves(), vec![2, 3, 4]);
        assert_eq!(h.node(2).depth, 2);
        assert_eq!(h.max_depth(), 2);
    }

    #[test]
    fn ancestors_and_containment() {
        let h = location();
        let wi = h.id_of("WI").unwrap();
        let us = h.id_of("US").unwrap();
        assert_eq!(h.ancestors_or_self(wi), vec![wi, us, 0]);
        assert!(h.contains(us, wi));
        assert!(h.contains(0, wi));
        assert!(!h.contains(wi, us));
        assert!(!h.contains(h.id_of("KR").unwrap(), wi));
    }

    #[test]
    fn leaf_counts() {
        let h = location();
        assert_eq!(h.leaf_count(0), 3);
        assert_eq!(h.leaf_count(h.id_of("US").unwrap()), 2);
        assert_eq!(h.leaf_count(h.id_of("KR").unwrap()), 1);
    }

    #[test]
    #[should_panic(expected = "duplicate hierarchy label")]
    fn duplicate_labels_rejected() {
        let mut h = Hierarchy::new("H", "All");
        h.add_child(0, "x");
        h.add_child(0, "x");
    }

    #[test]
    fn interval_dimension() {
        let d = Dimension::Interval {
            name: "Time".into(),
            max_t: 4,
        };
        assert_eq!(d.num_values(), 4);
        assert_eq!(d.label(0), "1-1");
        assert_eq!(d.label(3), "1-4");
        // time point 3 (leaf id 2) is inside [1-3] and [1-4]
        assert_eq!(d.containing_values(2), vec![2, 3]);
        assert!(d.value_contains(3, 1));
        assert!(!d.value_contains(1, 3));
        assert_eq!(d.finest_cell_count(2), 3);
    }

    #[test]
    fn hierarchy_dimension_wrapping() {
        let d = Dimension::Hierarchy(location());
        assert_eq!(d.num_values(), 5);
        assert_eq!(d.label(1), "US");
        assert_eq!(d.containing_values(2), vec![2, 1, 0]);
        assert_eq!(d.finest_cell_count(0), 3);
        assert_eq!(d.coarseness(0), 2); // root is coarsest
        assert_eq!(d.coarseness(2), 0); // leaf is finest
    }

    #[test]
    fn flat_hierarchy() {
        let h = Hierarchy::flat("Cat", "Any", &["a", "b"]);
        assert_eq!(h.num_nodes(), 3);
        assert_eq!(h.leaves().len(), 2);
    }

    #[test]
    #[should_panic(expected = "out of range")]
    fn interval_point_range_checked() {
        let d = Dimension::Interval {
            name: "T".into(),
            max_t: 2,
        };
        d.containing_values(2);
    }
}
