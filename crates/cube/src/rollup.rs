//! Generic lattice rollup for algebraic aggregates (§6.4).
//!
//! Given a value per *base* cell of a product-of-hierarchies space (e.g.
//! the Theorem-1 sufficient statistic per base item subset), compute the
//! merged value for **every** cell of the lattice by rolling up one
//! dimension at a time. With `D` hierarchies of depth `h`, each cell's
//! value is built from its children in `O(D·h)` merges total per base
//! cell — this is the data-cube computation the optimized bellwether
//! cube replaces per-subset model refits with.
//!
//! The merge operation must be associative and commutative and the base
//! cells disjoint, which is exactly the "distributive or algebraic
//! aggregate" condition of Observation 1.

use crate::dimension::Dimension;
use crate::region::{RegionId, RegionSpace};
use std::collections::HashMap;

/// Roll base-cell values up to every lattice cell.
///
/// `space` must consist of hierarchy dimensions only (item hierarchies);
/// base keys must sit at leaf coordinates. Returns a map containing every
/// cell that has at least one base descendant.
pub fn rollup_lattice<T: Clone>(
    space: &RegionSpace,
    base: HashMap<RegionId, T>,
    mut merge: impl FnMut(&mut T, &T),
) -> HashMap<RegionId, T> {
    for dim in space.dims() {
        assert!(
            matches!(dim, Dimension::Hierarchy(_)),
            "rollup_lattice requires hierarchy dimensions"
        );
    }
    let mut current = base;
    for (d, dim) in space.dims().iter().enumerate() {
        let Dimension::Hierarchy(h) = dim else { unreachable!() };
        let mut next: HashMap<RegionId, T> = HashMap::with_capacity(current.len() * 2);
        for (key, value) in current {
            // After processing dims 0..d, the key's coordinate along d is
            // still a leaf; expand it to every ancestor-or-self.
            for anc in h.ancestors_or_self(key.coord(d)) {
                let mut coords = key.0.clone();
                coords[d] = anc;
                let k = RegionId(coords);
                match next.get_mut(&k) {
                    Some(existing) => merge(existing, &value),
                    None => {
                        next.insert(k, value.clone());
                    }
                }
            }
        }
        current = next;
    }
    current
}

/// Reference implementation for tests: for every lattice cell, merge the
/// base cells it contains, straight from the definition.
pub fn rollup_naive<T: Clone>(
    space: &RegionSpace,
    base: &HashMap<RegionId, T>,
    mut merge: impl FnMut(&mut T, &T),
) -> HashMap<RegionId, T> {
    let mut out: HashMap<RegionId, T> = HashMap::new();
    for cell in space.all_regions() {
        let mut acc: Option<T> = None;
        for (bk, bv) in base {
            if space.contains(&cell, bk) {
                match &mut acc {
                    Some(a) => merge(a, bv),
                    None => acc = Some(bv.clone()),
                }
            }
        }
        if let Some(a) = acc {
            out.insert(cell, a);
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::dimension::Hierarchy;

    /// Two item hierarchies mirroring Fig. 5: Category and RDExpense.
    fn item_space() -> RegionSpace {
        let mut cat = Hierarchy::new("Category", "Any");
        let hw = cat.add_child(0, "Hardware");
        cat.add_child(hw, "Desktop");
        cat.add_child(hw, "Laptop");
        let sw = cat.add_child(0, "Software");
        cat.add_child(sw, "Others");

        let mut exp = Hierarchy::new("RDExpense", "AnyExp");
        let low = exp.add_child(0, "Low");
        exp.add_child(low, "100K");
        let hi = exp.add_child(0, "High");
        exp.add_child(hi, "1M");
        RegionSpace::new(vec![
            Dimension::Hierarchy(cat),
            Dimension::Hierarchy(exp),
        ])
    }

    fn base_counts(space: &RegionSpace) -> HashMap<RegionId, u64> {
        // one base cell per (leaf, leaf) combination with a distinct count
        let mut base = HashMap::new();
        for (i, r) in space.base_regions().into_iter().enumerate() {
            base.insert(r, i as u64 + 1);
        }
        base
    }

    #[test]
    fn rollup_matches_naive_on_counts() {
        let s = item_space();
        let base = base_counts(&s);
        let fast = rollup_lattice(&s, base.clone(), |a, b| *a += *b);
        let slow = rollup_naive(&s, &base, |a, b| *a += *b);
        assert_eq!(fast.len(), slow.len());
        for (k, v) in &slow {
            assert_eq!(fast.get(k), Some(v), "cell {k:?}");
        }
    }

    #[test]
    fn root_cell_is_grand_total() {
        let s = item_space();
        let base = base_counts(&s);
        let total: u64 = base.values().sum();
        let rolled = rollup_lattice(&s, base, |a, b| *a += *b);
        // [Any, AnyExp] = coords [0, 0]
        assert_eq!(rolled.get(&RegionId(vec![0, 0])), Some(&total));
    }

    #[test]
    fn intermediate_cells_partial_sums() {
        let s = item_space();
        // base subsets: leaves of cat = {Desktop(2), Laptop(3), Others(5)},
        // leaves of exp = {100K(2), 1M(4)}
        let mut base = HashMap::new();
        base.insert(RegionId(vec![2, 2]), 1u64); // Desktop, 100K
        base.insert(RegionId(vec![3, 4]), 10u64); // Laptop, 1M
        let rolled = rollup_lattice(&s, base, |a, b| *a += *b);
        // [Hardware, AnyExp] = coords [1, 0] contains both
        assert_eq!(rolled.get(&RegionId(vec![1, 0])), Some(&11));
        // [Hardware, Low] = [1, 1] contains only Desktop/100K
        assert_eq!(rolled.get(&RegionId(vec![1, 1])), Some(&1));
        // [Software, AnyExp] = [4, 0] contains nothing → absent
        assert!(!rolled.contains_key(&RegionId(vec![4, 0])));
    }

    #[test]
    fn cell_count_matches_membership() {
        // Every produced key must contain at least one base key.
        let s = item_space();
        let base = base_counts(&s);
        let rolled = rollup_lattice(&s, base.clone(), |a, b| *a += *b);
        for k in rolled.keys() {
            assert!(base.keys().any(|b| s.contains(k, b)));
        }
    }

    #[test]
    #[should_panic(expected = "hierarchy dimensions")]
    fn interval_dims_rejected() {
        let s = RegionSpace::new(vec![Dimension::Interval {
            name: "T".into(),
            max_t: 3,
        }]);
        rollup_lattice(&s, HashMap::<RegionId, u64>::new(), |a, b| *a += *b);
    }
}
