//! Shared parallelism configuration.
//!
//! One small knob consumed by every multi-threaded code path in the
//! workspace — the CUBE-pass kernel, the basic bellwether search, and
//! training-data materialisation — so thread budgets are decided in one
//! place instead of per-call-site hardcoded caps.
//!
//! **Determinism policy:** no algorithm in this workspace may let the
//! thread count influence its output. Work is split into fixed-size
//! chunks whose partial results are combined in a fixed order, so any
//! `Parallelism` produces bit-identical results (see `cube_pass`).

/// Thread-budget configuration for parallel kernels.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Parallelism {
    /// Upper bound on worker threads; `None` uses the hardware
    /// parallelism reported by the OS.
    pub max_threads: Option<usize>,
    /// Minimum number of work items (rows-chunks, regions, …) each
    /// worker must receive before an extra thread is worth spawning.
    pub min_work_per_thread: usize,
}

impl Default for Parallelism {
    /// Hardware parallelism, honouring a `BW_THREADS` environment
    /// override (useful for benchmarking thread-scaling matrices).
    fn default() -> Self {
        let max_threads = std::env::var("BW_THREADS")
            .ok()
            .and_then(|v| v.parse::<usize>().ok())
            .filter(|&n| n > 0);
        Parallelism {
            max_threads,
            min_work_per_thread: 1,
        }
    }
}

impl Parallelism {
    /// Force single-threaded execution.
    pub fn sequential() -> Self {
        Parallelism {
            max_threads: Some(1),
            min_work_per_thread: 1,
        }
    }

    /// Exactly `n` worker threads (clamped to ≥ 1), regardless of the
    /// hardware count. Used by the thread-scaling benches.
    pub fn fixed(n: usize) -> Self {
        Parallelism {
            max_threads: Some(n.max(1)),
            min_work_per_thread: 1,
        }
    }

    /// Builder-style minimum work per thread.
    pub fn with_min_work_per_thread(mut self, n: usize) -> Self {
        self.min_work_per_thread = n.max(1);
        self
    }

    /// The number of worker threads to use for `work_items` independent
    /// pieces of work: capped by hardware, by `max_threads`, and by the
    /// work available. Always at least 1.
    pub fn threads_for(&self, work_items: usize) -> usize {
        let hw = std::thread::available_parallelism().map_or(1, |p| p.get());
        let cap = self.max_threads.map_or(hw, |m| m.max(1));
        let by_work = work_items / self.min_work_per_thread.max(1);
        cap.min(by_work).max(1)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn sequential_is_one_thread() {
        assert_eq!(Parallelism::sequential().threads_for(1_000_000), 1);
    }

    #[test]
    fn fixed_overrides_hardware() {
        assert_eq!(Parallelism::fixed(4).threads_for(1_000_000), 4);
        assert_eq!(Parallelism::fixed(0).threads_for(10), 1);
    }

    #[test]
    fn work_bounds_threads() {
        let p = Parallelism::fixed(8);
        assert_eq!(p.threads_for(3), 3);
        assert_eq!(p.threads_for(0), 1);
    }

    #[test]
    fn min_work_per_thread_throttles() {
        let p = Parallelism::fixed(8).with_min_work_per_thread(100);
        assert_eq!(p.threads_for(250), 2);
        assert_eq!(p.threads_for(99), 1);
    }
}
