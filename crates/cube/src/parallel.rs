//! Shared parallelism configuration.
//!
//! One small knob consumed by every multi-threaded code path in the
//! workspace — the CUBE-pass kernel, the basic bellwether search, the
//! tree/cube builders' region scans, and training-data materialisation —
//! so thread budgets are decided in one place instead of per-call-site
//! hardcoded caps.
//!
//! **Determinism policy:** no algorithm in this workspace may let the
//! thread count influence its output. Work is split into fixed-size
//! chunks whose partial results are combined in a fixed order, so any
//! `Parallelism` produces bit-identical results (see `cube_pass` and
//! `bellwether_core`'s `scan_regions`).
//!
//! **Small-input fallback:** spawning a thread costs tens of
//! microseconds; on inputs where each extra worker would own fewer than
//! [`Parallelism::min_chunk`] work items the kernels run sequentially
//! instead. This is what keeps `threads=4` from being *slower* than
//! `threads=1` on tiny benches (the committed `BENCH_cube_pass.json`
//! regression this knob was introduced to fix).

/// Default [`Parallelism::min_chunk`]: each extra worker must own at
/// least this many work items (row chunks, regions, …) before a thread
/// is worth spawning.
pub const DEFAULT_MIN_CHUNK: usize = 16;

/// Thread-budget configuration for parallel kernels.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Parallelism {
    /// Upper bound on worker threads; `None` uses the hardware
    /// parallelism reported by the OS.
    pub max_threads: Option<usize>,
    /// Minimum number of work items (rows-chunks, regions, …) each
    /// worker must receive before an extra thread is worth spawning.
    /// Inputs with fewer than `2 * min_chunk` items always run
    /// sequentially — the small-input fallback. Must be ≥ 1; config
    /// builders reject 0.
    pub min_chunk: usize,
}

impl Default for Parallelism {
    /// Hardware parallelism, honouring a `BW_THREADS` environment
    /// override (useful for benchmarking thread-scaling matrices).
    fn default() -> Self {
        let max_threads = std::env::var("BW_THREADS")
            .ok()
            .and_then(|v| v.parse::<usize>().ok())
            .filter(|&n| n > 0);
        Parallelism {
            max_threads,
            min_chunk: DEFAULT_MIN_CHUNK,
        }
    }
}

impl Parallelism {
    /// Force single-threaded execution.
    pub fn sequential() -> Self {
        Parallelism {
            max_threads: Some(1),
            min_chunk: DEFAULT_MIN_CHUNK,
        }
    }

    /// Exactly `n` worker threads (clamped to ≥ 1), regardless of the
    /// hardware count, still subject to the small-input fallback. Used
    /// by the thread-scaling benches.
    pub fn fixed(n: usize) -> Self {
        Parallelism {
            max_threads: Some(n.max(1)),
            min_chunk: DEFAULT_MIN_CHUNK,
        }
    }

    /// Builder-style minimum work items per worker (the sequential
    /// fallback threshold). Tests that must exercise real threading on
    /// tiny fixtures set this to 1.
    ///
    /// # Panics
    ///
    /// Panics if `n == 0` — a zero threshold would divide work into
    /// nothing; [`crate::Parallelism::min_chunk`] is validated again by
    /// the config builders for the field-assignment path.
    pub fn with_min_chunk(mut self, n: usize) -> Self {
        assert!(n > 0, "Parallelism::min_chunk must be >= 1");
        self.min_chunk = n;
        self
    }

    /// The number of worker threads to use for `work_items` independent
    /// pieces of work: capped by hardware, by `max_threads`, and by the
    /// work available (`work_items / min_chunk`). Always at least 1.
    pub fn threads_for(&self, work_items: usize) -> usize {
        let hw = std::thread::available_parallelism().map_or(1, |p| p.get());
        let cap = self.max_threads.map_or(hw, |m| m.max(1));
        let by_work = work_items / self.min_chunk.max(1);
        cap.min(by_work).max(1)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn sequential_is_one_thread() {
        assert_eq!(Parallelism::sequential().threads_for(1_000_000), 1);
    }

    #[test]
    fn fixed_overrides_hardware() {
        assert_eq!(Parallelism::fixed(4).threads_for(1_000_000), 4);
        assert_eq!(Parallelism::fixed(0).threads_for(10 * DEFAULT_MIN_CHUNK), 1);
    }

    #[test]
    fn work_bounds_threads() {
        let p = Parallelism::fixed(8).with_min_chunk(1);
        assert_eq!(p.threads_for(3), 3);
        assert_eq!(p.threads_for(0), 1);
    }

    #[test]
    fn min_chunk_throttles() {
        let p = Parallelism::fixed(8).with_min_chunk(100);
        assert_eq!(p.threads_for(250), 2);
        assert_eq!(p.threads_for(99), 1);
    }

    #[test]
    fn default_min_chunk_is_sequential_fallback() {
        // Fewer than 2*min_chunk items → a second worker would own less
        // than min_chunk → sequential, even at fixed(4).
        let p = Parallelism::fixed(4);
        assert_eq!(p.threads_for(DEFAULT_MIN_CHUNK * 2 - 1), 1);
        assert_eq!(p.threads_for(DEFAULT_MIN_CHUNK * 2), 2);
        assert_eq!(p.threads_for(DEFAULT_MIN_CHUNK * 64), 4);
    }

    #[test]
    #[should_panic(expected = "min_chunk must be >= 1")]
    fn zero_min_chunk_rejected() {
        let _ = Parallelism::fixed(2).with_min_chunk(0);
    }
}
