//! Incremental (delta) CUBE maintenance: `O(Δ)` appends instead of
//! full rebuilds.
//!
//! [`StreamingCube`] retains the phase-1 base-cell state of the
//! in-memory kernel ([`crate::cube_pass`]) between batches of fact
//! rows. An append folds **only the new rows** into chunk tables,
//! merges them into the retained state in the kernel's own
//! deterministic chunk order, and re-rolls up **only the regions whose
//! sufficient statistics changed** (the *dirty set*) through the
//! region-key-filtered phase 2.
//!
//! # Delta algebra
//!
//! Theorem 1's sufficient statistic is mergeable, and the kernel's
//! accumulators are exactly that statistic in columnar form. The
//! retained `complete` table is the left fold of every *completed*
//! [`ROW_CHUNK`]-row chunk of the concatenated stream, merged in
//! ascending chunk order with the same copy-first semantics as the
//! cold `merge_chunks`; rows past the last chunk boundary wait in a
//! `pending` tail (< one chunk) and are folded as the partial final
//! chunk of each rollup. Per `(cell, item)` slot the update sequence is
//! therefore *identical* to a cold pass over the concatenated data —
//! which is what makes stream-then-update **bit-identical** to a cold
//! rebuild, not merely close.
//!
//! # Dirty-set semantics
//!
//! A base cell is dirty iff a row of the current append touched it;
//! a region is dirty iff it contains a dirty cell. Cells that merely
//! *move* from the pending tail into `complete` when a chunk boundary
//! is crossed re-fold to bit-equal values (same rows, same order), so
//! they are not dirty and their regions keep their previous values
//! verbatim. The filtered rollup walks all base cells in full key
//! order, so a dirty region's recomputed value is bit-identical to the
//! same region in an unfiltered rollup.
//!
//! # Pinned item universe
//!
//! The dense key encoding needs the item domain up front, so the
//! universe of item ids is pinned at construction (a superset of the
//! base input's items is fine). A superset universe never changes the
//! output: keys order by `(cell, item-rank)` either way, and items
//! without data are never emitted. Appending a row whose item is
//! outside the universe is an error.

use crate::cube_pass::{
    ancestor_key_tables, chunk_range, dedup_pairs, expand_rollup, expansion_keys, fold_chunk,
    CubeInput, CubeResult, KeySpace, Measure, StateCol, StateTable, ROW_CHUNK,
};
use crate::parallel::Parallelism;
use crate::region::{RegionId, RegionSpace};
use std::collections::HashMap;

/// Merge every entry of the key-sorted `src` table into `dst` in one
/// pass: existing keys merge in place (binary search against the
/// pre-merge key array), new keys append. Copy-first semantics match
/// the cold merge exactly, and only the touched distinct slots are
/// re-deduplicated, so the work is `O(src + log dst)` per entry.
fn merge_delta_into(dst: &mut StateTable, src: &StateTable) {
    if src.len() == 0 {
        return;
    }
    if dst.cols.is_empty() && dst.keys.is_empty() {
        dst.cols = src.cols.iter().map(|c| c.new_like(0)).collect();
    }
    let old_len = dst.keys.len();
    let mut dsts: Vec<u32> = Vec::with_capacity(src.len());
    let mut was: Vec<bool> = Vec::with_capacity(src.len());
    for &k in &src.keys {
        match dst.keys[..old_len].binary_search(&k) {
            Ok(i) => {
                dsts.push(i as u32);
                was.push(true);
            }
            Err(_) => {
                dsts.push(dst.keys.len() as u32);
                dst.keys.push(k);
                was.push(false);
            }
        }
    }
    let new_len = dst.keys.len();
    for (col, src_col) in dst.cols.iter_mut().zip(&src.cols) {
        col.resize_default(new_len);
        col.merge_from(src_col, 0..src.len(), &dsts, &was);
        if let StateCol::Distinct { pairs, .. } = col {
            // Keep-last dedup composes: dedup(dedup(a) ++ b) ==
            // dedup(a ++ b), so restoring the invariant per append is
            // bit-equal to the cold single dedup at the end.
            for &d in &dsts {
                dedup_pairs(&mut pairs[d as usize]);
            }
        }
    }
    // New keys interleave with old ones only when an append back-fills
    // an earlier part of the key space; `sort_by_key` is an O(n)
    // is-sorted check in the common append-at-the-end case.
    dst.sort_by_key();
}

/// Append every row of `src` onto `dst` (same arity, same measure
/// shape — validated by the caller).
fn extend_input(dst: &mut CubeInput, src: &CubeInput) {
    dst.item_ids.extend_from_slice(&src.item_ids);
    dst.coords.extend_from_slice(&src.coords);
    for (dm, sm) in dst.measures.iter_mut().zip(&src.measures) {
        match (dm, sm) {
            (Measure::Numeric { values, .. }, Measure::Numeric { values: sv, .. }) => {
                values.extend_from_slice(sv);
            }
            (
                Measure::DistinctKeyed { keys, values, .. },
                Measure::DistinctKeyed {
                    keys: sk,
                    values: sv,
                    ..
                },
            ) => {
                keys.extend_from_slice(sk);
                values.extend_from_slice(sv);
            }
            _ => unreachable!("measure shapes validated before extend"),
        }
    }
}

/// Drop the first `rows` rows of `input` in place.
fn drain_rows(input: &mut CubeInput, rows: usize, arity: usize) {
    input.item_ids.drain(..rows);
    input.coords.drain(..rows * arity);
    for m in &mut input.measures {
        match m {
            Measure::Numeric { values, .. } => {
                values.drain(..rows);
            }
            Measure::DistinctKeyed { keys, values, .. } => {
                keys.drain(..rows);
                values.drain(..rows);
            }
        }
    }
}

/// An empty input with the same arity and measure shape as `like`.
fn empty_like(like: &CubeInput) -> CubeInput {
    CubeInput {
        item_ids: Vec::new(),
        coords: Vec::new(),
        measures: like
            .measures
            .iter()
            .map(|m| match m {
                Measure::Numeric { name, func, .. } => Measure::Numeric {
                    name: name.clone(),
                    func: *func,
                    values: Vec::new(),
                },
                Measure::DistinctKeyed { name, func, .. } => Measure::DistinctKeyed {
                    name: name.clone(),
                    func: *func,
                    keys: Vec::new(),
                    values: Vec::new(),
                },
            })
            .collect(),
    }
}

/// `Err` with a shape description unless `delta`'s measures line up
/// with `base`'s (same count, names, kinds and functions).
fn check_measure_shape(base: &CubeInput, delta: &CubeInput) -> Result<(), String> {
    if base.measures.len() != delta.measures.len() {
        return Err(format!(
            "append has {} measures, stream has {}",
            delta.measures.len(),
            base.measures.len()
        ));
    }
    for (b, d) in base.measures.iter().zip(&delta.measures) {
        let ok = match (b, d) {
            (
                Measure::Numeric { name, func, .. },
                Measure::Numeric {
                    name: dn, func: df, ..
                },
            ) => name == dn && func == df,
            (
                Measure::DistinctKeyed { name, func, .. },
                Measure::DistinctKeyed {
                    name: dn, func: df, ..
                },
            ) => name == dn && func == df,
            _ => false,
        };
        if !ok {
            return Err(format!("measure {:?} does not match the stream", d.name()));
        }
    }
    Ok(())
}

/// The outcome of one [`StreamingCube::append`]: which regions changed.
#[derive(Debug, Clone)]
pub struct DeltaUpdate {
    /// The dirty regions, ascending by dense region key. Every region
    /// whose aggregates changed is listed; listed regions whose value
    /// happens to be unchanged are possible (a row can merge a value
    /// identical to the old one) but the kernel does not chase that.
    pub dirty_regions: Vec<RegionId>,
    /// Rows in the append.
    pub rows_appended: usize,
    /// Distinct base cells the append touched.
    pub cells_dirtied: usize,
}

/// Incrementally maintained CUBE state — see the [module docs](self).
///
/// ```
/// use bellwether_cube::{CubeInput, Dimension, Measure, Parallelism, RegionSpace, StreamingCube};
/// use bellwether_table::ops::AggFunc;
///
/// let space = RegionSpace::new(vec![Dimension::Interval { name: "T".into(), max_t: 4 }]);
/// let input = CubeInput {
///     item_ids: vec![1, 2],
///     coords: vec![0, 1],
///     measures: vec![Measure::Numeric {
///         name: "sales".into(),
///         func: AggFunc::Sum,
///         values: vec![Some(10.0), Some(20.0)],
///     }],
/// };
/// let mut stream =
///     StreamingCube::new(&space, &input, &[1, 2, 3], Parallelism::default()).unwrap();
/// let mut delta = input.clone();
/// delta.item_ids = vec![3];
/// delta.coords = vec![2];
/// delta.measures = vec![Measure::Numeric {
///     name: "sales".into(),
///     func: AggFunc::Sum,
///     values: vec![Some(5.0)],
/// }];
/// let update = stream.append(&delta).unwrap();
/// assert_eq!(update.rows_appended, 1);
/// assert!(!update.dirty_regions.is_empty());
/// ```
#[derive(Clone)]
pub struct StreamingCube {
    space: RegionSpace,
    ks: KeySpace,
    anc_keys: Vec<Vec<Vec<u64>>>,
    /// Merged state of every completed chunk, key-sorted.
    complete: StateTable,
    /// Rows past the last chunk boundary (always < [`ROW_CHUNK`]).
    pending: CubeInput,
    rows_total: usize,
    par: Parallelism,
    result: CubeResult,
}

impl StreamingCube {
    /// Build the stream from its base input and a pinned item
    /// universe (must contain every item id the stream will ever see;
    /// a superset never changes any output bit). Returns `None` when
    /// the dense key encoding cannot cover `space` × universe — the
    /// caller then stays on cold rebuilds.
    pub fn new(
        space: &RegionSpace,
        input: &CubeInput,
        item_universe: &[i64],
        par: Parallelism,
    ) -> Option<StreamingCube> {
        let ks = KeySpace::build(space, item_universe)?;
        let anc_keys = ancestor_key_tables(space, &ks);
        let measure_names = input.measures.iter().map(|m| m.name().to_string()).collect();
        let mut stream = StreamingCube {
            space: space.clone(),
            ks,
            anc_keys,
            complete: StateTable {
                keys: Vec::new(),
                cols: Vec::new(),
            },
            pending: empty_like(input),
            rows_total: 0,
            par,
            result: CubeResult {
                measure_names,
                regions: HashMap::new(),
            },
        };
        stream.ingest(input).ok()?;
        if !input.item_ids.is_empty() {
            let table = stream.rollup_table();
            let (regions, _) = expand_rollup(
                &stream.space,
                &stream.ks,
                std::slice::from_ref(&table),
                stream.threads(),
                None,
            );
            stream.result.regions = regions;
        }
        Some(stream)
    }

    /// Append a batch of fact rows and patch the retained result.
    /// `O(Δ)` in the new rows plus the dirty regions' rollup — never a
    /// rescan of old chunks. Errors (shape mismatch, unknown item,
    /// out-of-range coordinate) leave the stream unchanged.
    pub fn append(&mut self, delta: &CubeInput) -> Result<DeltaUpdate, String> {
        let rows = delta.item_ids.len();
        let dirty_cells = self.validate(delta)?;
        if rows == 0 {
            return Ok(DeltaUpdate {
                dirty_regions: Vec::new(),
                rows_appended: 0,
                cells_dirtied: 0,
            });
        }
        self.ingest(delta).map_err(|e| e.to_string())?;

        // Expand dirty cells to dirty region keys.
        let mut dirty_keys: Vec<u64> = Vec::new();
        let mut expansion: Vec<u64> = Vec::new();
        for &cell in &dirty_cells {
            expansion_keys(
                cell,
                &self.ks,
                &self.anc_keys,
                0,
                self.ks.cell_space,
                &mut expansion,
            );
            dirty_keys.extend_from_slice(&expansion);
        }
        dirty_keys.sort_unstable();
        dirty_keys.dedup();

        let table = self.rollup_table();
        let (mut patched, _) = expand_rollup(
            &self.space,
            &self.ks,
            std::slice::from_ref(&table),
            self.threads(),
            Some(&dirty_keys),
        );
        let mut dirty_regions = Vec::with_capacity(dirty_keys.len());
        for &rk in &dirty_keys {
            let id = RegionId(self.ks.decode_region(rk));
            match patched.remove(&id) {
                Some(items) => {
                    self.result.regions.insert(id.clone(), items);
                }
                None => {
                    self.result.regions.remove(&id);
                }
            }
            dirty_regions.push(id);
        }
        Ok(DeltaUpdate {
            dirty_regions,
            rows_appended: rows,
            cells_dirtied: dirty_cells.len(),
        })
    }

    /// The current result — bit-identical to [`crate::cube_pass`] over
    /// the concatenation of the base input and every appended batch.
    pub fn result(&self) -> &CubeResult {
        &self.result
    }

    /// Total fact rows folded so far (base + appends).
    pub fn rows(&self) -> usize {
        self.rows_total
    }

    /// The pinned item universe, ascending.
    pub fn item_universe(&self) -> &[i64] {
        &self.ks.items
    }

    fn threads(&self) -> usize {
        self.par.threads_for(self.rows_total.div_ceil(ROW_CHUNK).max(1))
    }

    /// Validate a batch and return its distinct dirty cell keys.
    fn validate(&self, delta: &CubeInput) -> Result<Vec<u64>, String> {
        let arity = self.space.arity();
        let rows = delta.item_ids.len();
        if delta.coords.len() != rows * arity {
            return Err("append coords length mismatch".to_string());
        }
        check_measure_shape(&self.pending, delta)?;
        for m in &delta.measures {
            m.check_len(rows);
        }
        let mut cells: Vec<u64> = Vec::with_capacity(rows);
        for row in 0..rows {
            let id = delta.item_ids[row];
            if !self.ks.item_index.contains_key(&id) {
                return Err(format!("item {id} is outside the pinned item universe"));
            }
            let coords = &delta.coords[row * arity..(row + 1) * arity];
            for (d, (&c, &nv)) in coords.iter().zip(&self.ks.num_values).enumerate() {
                if c as u64 >= nv {
                    return Err(format!("coordinate {c} out of range on dimension {d}"));
                }
            }
            cells.push(self.ks.cell_key(coords));
        }
        cells.sort_unstable();
        cells.dedup();
        Ok(cells)
    }

    /// Fold `delta` into the stream: extend the pending tail, then
    /// extract every completed chunk into `complete` in chunk order.
    fn ingest(&mut self, delta: &CubeInput) -> Result<(), String> {
        extend_input(&mut self.pending, delta);
        self.rows_total += delta.item_ids.len();
        let arity = self.space.arity();
        while self.pending.item_ids.len() >= ROW_CHUNK {
            let chunk = self.fold_pending(chunk_range(0, ROW_CHUNK));
            merge_delta_into(&mut self.complete, &chunk);
            drain_rows(&mut self.pending, ROW_CHUNK, arity);
        }
        Ok(())
    }

    /// Fold a row range of the pending tail into a chunk table.
    fn fold_pending(&self, rows: std::ops::Range<usize>) -> StateTable {
        let ks = &self.ks;
        let pending = &self.pending;
        let key_of = |row: usize, coords: &[u32]| -> Option<u64> {
            let item_idx = ks.item_index[&pending.item_ids[row]];
            Some(ks.cell_key(coords) * ks.n_items + item_idx as u64)
        };
        fold_chunk(pending, self.space.arity(), rows, &key_of)
    }

    /// The base-cell table to roll up: `complete` plus the pending
    /// tail folded as the partial final chunk — exactly the chunk
    /// sequence a cold pass over the concatenated data merges.
    fn rollup_table(&self) -> StateTable {
        if self.pending.item_ids.is_empty() {
            return self.complete.clone();
        }
        let tail = self.fold_pending(0..self.pending.item_ids.len());
        let mut table = self.complete.clone();
        merge_delta_into(&mut table, &tail);
        table
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::cube_pass::cube_pass_with;
    use crate::dimension::{Dimension, Hierarchy};
    use bellwether_table::ops::AggFunc;

    fn space() -> RegionSpace {
        let mut loc = Hierarchy::new("Loc", "All");
        let us = loc.add_child(0, "US");
        loc.add_child(us, "WI");
        loc.add_child(us, "CA");
        RegionSpace::new(vec![
            Dimension::Interval {
                name: "T".into(),
                max_t: 6,
            },
            Dimension::Hierarchy(loc),
        ])
    }

    /// Deterministic pseudo-random input: `rows` facts over the leaf
    /// cells of [`space`], with every measure kind represented.
    fn gen_input(seed: u64, rows: usize, items: &[i64]) -> CubeInput {
        let mut s = seed.wrapping_mul(0x9e3779b97f4a7c15).wrapping_add(1);
        let mut next = move || {
            s ^= s << 13;
            s ^= s >> 7;
            s ^= s << 17;
            s
        };
        let mut item_ids = Vec::with_capacity(rows);
        let mut coords = Vec::with_capacity(rows * 2);
        let mut sales = Vec::with_capacity(rows);
        let mut temps = Vec::with_capacity(rows);
        let mut fks = Vec::with_capacity(rows);
        let mut fkv = Vec::with_capacity(rows);
        for _ in 0..rows {
            item_ids.push(items[(next() % items.len() as u64) as usize]);
            coords.push((next() % 6) as u32);
            coords.push(2 + (next() % 2) as u32); // leaves WI/CA
            sales.push((next() % 7 != 0).then(|| (next() % 1000) as f64 / 8.0));
            temps.push(Some((next() % 500) as f64 / 16.0 - 10.0));
            fks.push((next() % 5 != 0).then(|| (next() % 40) as i64));
            fkv.push((next() % 300) as f64 / 4.0);
        }
        CubeInput {
            item_ids,
            coords,
            measures: vec![
                Measure::Numeric {
                    name: "sum_sales".into(),
                    func: AggFunc::Sum,
                    values: sales.clone(),
                },
                Measure::Numeric {
                    name: "avg_temp".into(),
                    func: AggFunc::Avg,
                    values: temps,
                },
                Measure::Numeric {
                    name: "min_sales".into(),
                    func: AggFunc::Min,
                    values: sales,
                },
                Measure::DistinctKeyed {
                    name: "distinct_stores".into(),
                    func: AggFunc::CountDistinct,
                    keys: fks.clone(),
                    values: fkv.clone(),
                },
                Measure::DistinctKeyed {
                    name: "sum_store_size".into(),
                    func: AggFunc::Sum,
                    keys: fks,
                    values: fkv,
                },
            ],
        }
    }

    fn assert_same(a: &CubeResult, b: &CubeResult) {
        assert_eq!(a.measure_names, b.measure_names);
        assert_eq!(a.regions.len(), b.regions.len(), "region count differs");
        for (r, items) in &a.regions {
            let other = b.regions.get(r).unwrap_or_else(|| panic!("missing {r:?}"));
            assert_eq!(items.len(), other.len(), "item count differs in {r:?}");
            for (item, feats) in items {
                let of = &other[item];
                assert_eq!(feats.len(), of.len());
                for (x, y) in feats.iter().zip(of) {
                    // Bit-level comparison, not approximate.
                    assert_eq!(
                        x.map(f64::to_bits),
                        y.map(f64::to_bits),
                        "feature bits differ for {r:?}/{item}"
                    );
                }
            }
        }
    }

    #[test]
    fn appends_match_cold_rebuild_bit_for_bit() {
        let space = space();
        let items: Vec<i64> = (0..48).map(|i| i * 3 + 1).collect();
        let base = gen_input(7, 700, &items);
        for threads in [1usize, 2, 4] {
            let par = Parallelism::fixed(threads);
            let mut stream = StreamingCube::new(&space, &base, &items, par).unwrap();
            let mut concat = base.clone();
            // Uneven batches that straddle the 4096-row chunk boundary
            // several times.
            for (i, rows) in [900usize, 3000, 1, 650, 4096, 77].iter().enumerate() {
                let delta = gen_input(100 + i as u64, *rows, &items);
                let update = stream.append(&delta).unwrap();
                assert_eq!(update.rows_appended, *rows);
                extend_input(&mut concat, &delta);
                let cold = cube_pass_with(&space, &concat, par, None);
                assert_same(stream.result(), &cold);
            }
            assert_eq!(stream.rows(), 700 + 900 + 3000 + 1 + 650 + 4096 + 77);
        }
    }

    #[test]
    fn superset_universe_never_changes_bits() {
        let space = space();
        let items: Vec<i64> = (0..20).collect();
        let universe: Vec<i64> = (-5..40).collect(); // strict superset
        let base = gen_input(3, 300, &items);
        let par = Parallelism::fixed(1);
        let mut stream = StreamingCube::new(&space, &base, &universe, par).unwrap();
        let cold = cube_pass_with(&space, &base, par, None);
        assert_same(stream.result(), &cold);
        let delta = gen_input(4, 500, &items);
        stream.append(&delta).unwrap();
        let mut concat = base.clone();
        extend_input(&mut concat, &delta);
        assert_same(stream.result(), &cube_pass_with(&space, &concat, par, None));
    }

    #[test]
    fn dirty_set_is_exactly_the_touched_regions() {
        let space = space();
        let items: Vec<i64> = (0..8).collect();
        let base = gen_input(11, 200, &items);
        let mut stream =
            StreamingCube::new(&space, &base, &items, Parallelism::fixed(1)).unwrap();
        // One row in week 2 at leaf WI (coords [2, 2]): dirty regions
        // are exactly (intervals containing week 2) × {WI, US, All}.
        let mut delta = empty_like(&base);
        delta.item_ids.push(3);
        delta.coords.extend_from_slice(&[2, 2]);
        for m in &mut delta.measures {
            match m {
                Measure::Numeric { values, .. } => values.push(Some(1.0)),
                Measure::DistinctKeyed { keys, values, .. } => {
                    keys.push(Some(1));
                    values.push(2.0);
                }
            }
        }
        let update = stream.append(&delta).unwrap();
        assert_eq!(update.cells_dirtied, 1);
        let containing_intervals = space.dims()[0].containing_values(2).len();
        assert_eq!(update.dirty_regions.len(), containing_intervals * 3);
        for r in &update.dirty_regions {
            assert!(space.dims()[0].containing_values(2).contains(&r.0[0]));
            assert!([0, 1, 2].contains(&r.0[1]));
        }
    }

    #[test]
    fn appends_are_validated_and_leave_state_unchanged() {
        let space = space();
        let items: Vec<i64> = (0..8).collect();
        let base = gen_input(13, 100, &items);
        let mut stream =
            StreamingCube::new(&space, &base, &items, Parallelism::fixed(1)).unwrap();
        let before = stream.result().regions.len();

        let mut bad = gen_input(14, 5, &items);
        bad.item_ids[0] = 999; // outside the universe
        assert!(stream.append(&bad).unwrap_err().contains("universe"));

        let mut bad = gen_input(14, 5, &items);
        bad.coords[0] = 6; // out of range on T
        assert!(stream.append(&bad).unwrap_err().contains("out of range"));

        let mut bad = gen_input(14, 5, &items);
        bad.measures.pop();
        assert!(stream.append(&bad).unwrap_err().contains("measures"));

        assert_eq!(stream.result().regions.len(), before);
        assert_eq!(stream.rows(), 100);
    }

    #[test]
    fn empty_base_then_appends() {
        let space = space();
        let items: Vec<i64> = (0..8).collect();
        let empty = empty_like(&gen_input(0, 1, &items));
        let par = Parallelism::fixed(2);
        let mut stream = StreamingCube::new(&space, &empty, &items, par).unwrap();
        assert!(stream.result().regions.is_empty());
        let delta = gen_input(21, 450, &items);
        stream.append(&delta).unwrap();
        assert_same(stream.result(), &cube_pass_with(&space, &delta, par, None));
    }
}
