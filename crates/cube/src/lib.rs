//! # bellwether-cube
//!
//! The OLAP substrate of the bellwether reproduction:
//!
//! * [`dimension`] — interval and hierarchical dimensions (§4.1), also
//!   used as item hierarchies (§6.1);
//! * [`region`] — the product space of candidate regions / cube subsets,
//!   with containment, enumeration and CUBE expansion;
//! * [`cost`] — monotone cost models (the κ query);
//! * [`mod@cube_pass`] — one-pass computation of every `(region, item)`
//!   aggregate, the §4.2 query rewrite, as a parallel allocation-lean
//!   kernel with a bit-identical-for-any-thread-count guarantee;
//! * [`parallel`] — the shared [`Parallelism`] thread-budget knob
//!   consumed by every multi-threaded code path in the workspace;
//! * [`iceberg`] — BUC-style bottom-up pruning to the feasible regions
//!   (cost ≤ B, coverage ≥ C);
//! * [`rollup`] — generic algebraic-aggregate rollup over the item
//!   hierarchy lattice (Observation 1 / §6.4).
//!
//! ```
//! use bellwether_cube::{Dimension, Hierarchy, RegionSpace, RegionId};
//!
//! let mut loc = Hierarchy::new("Location", "All");
//! let us = loc.add_child(0, "US");
//! loc.add_child(us, "WI");
//! let space = RegionSpace::new(vec![
//!     Dimension::Interval { name: "Time".into(), max_t: 52 },
//!     Dimension::Hierarchy(loc),
//! ]);
//! assert_eq!(space.num_regions(), 52 * 3);
//! assert_eq!(space.label(&RegionId(vec![0, 2])), "[1-1, WI]");
//! ```

#![warn(missing_docs)]

pub mod cost;
pub mod cube_pass;
pub mod delta;
pub mod dimension;
pub mod external;
mod fxhash;
pub mod iceberg;
pub mod parallel;
pub mod region;
pub mod rollup;

pub use bellwether_obs::{NoopRecorder, Recorder, Registry};
pub use bellwether_storage::CubeStats;
pub use cost::{CellTableCost, CostModel, ProductCost, UniformCellCost};
pub use cube_pass::{
    aggregate_filtered, aggregate_filtered_traced, aggregate_filtered_with, cube_pass,
    cube_pass_reference, cube_pass_traced, cube_pass_with, CubeInput, CubeResult, Measure,
};
pub use delta::{DeltaUpdate, StreamingCube};
pub use external::{cube_pass_external, RUN_CHUNKS, UNLIMITED_BUDGET};
pub use parallel::{Parallelism, DEFAULT_MIN_CHUNK};
pub use dimension::{Dimension, HierNode, Hierarchy};
pub use iceberg::{
    coarser_neighbours, cost_feasible_regions, feasible_regions, feasible_regions_naive,
    Constraints,
};
pub use region::{RegionId, RegionSpace};
pub use rollup::{rollup_lattice, rollup_naive};
