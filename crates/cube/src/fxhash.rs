//! Deterministic multiply-xor hasher for the kernel's internal maps.
//!
//! The default `RandomState` SipHash is both slower than needed for
//! small integer keys and — more importantly — randomly seeded, which
//! makes `HashMap` iteration order vary run to run. The CUBE kernel's
//! determinism guarantee requires every internal map to iterate in a
//! reproducible order, so its maps use this fixed-seed FxHash-style
//! hasher instead. (Public result maps keep `RandomState`; callers only
//! ever look keys up in those.)

use std::collections::HashMap;
use std::hash::{BuildHasherDefault, Hasher};

const SEED: u64 = 0x51_7c_c1_b7_27_22_0a_95;

/// One-word multiply-xor hasher (the rustc-internal "Fx" construction).
#[derive(Default)]
pub(crate) struct FxHasher {
    hash: u64,
}

impl FxHasher {
    #[inline]
    fn add(&mut self, word: u64) {
        self.hash = (self.hash.rotate_left(5) ^ word).wrapping_mul(SEED);
    }
}

impl Hasher for FxHasher {
    #[inline]
    fn write(&mut self, bytes: &[u8]) {
        for chunk in bytes.chunks(8) {
            let mut buf = [0u8; 8];
            buf[..chunk.len()].copy_from_slice(chunk);
            self.add(u64::from_le_bytes(buf));
        }
    }

    #[inline]
    fn write_u64(&mut self, v: u64) {
        self.add(v);
    }

    #[inline]
    fn write_i64(&mut self, v: i64) {
        self.add(v as u64);
    }

    #[inline]
    fn write_usize(&mut self, v: usize) {
        self.add(v as u64);
    }

    #[inline]
    fn finish(&self) -> u64 {
        self.hash
    }
}

/// A `HashMap` with the deterministic hasher.
pub(crate) type FxMap<K, V> = HashMap<K, V, BuildHasherDefault<FxHasher>>;

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn iteration_order_is_reproducible() {
        let build = || {
            let mut m: FxMap<u64, u64> = FxMap::default();
            for k in [9u64, 2, 55, 13, 1, 40, 7] {
                m.insert(k, k * 10);
            }
            m.into_iter().collect::<Vec<_>>()
        };
        assert_eq!(build(), build());
    }

    #[test]
    fn distinct_keys_hash_distinctly() {
        let mut m: FxMap<i64, ()> = FxMap::default();
        for k in -1000i64..1000 {
            m.insert(k, ());
        }
        assert_eq!(m.len(), 2000);
    }
}
