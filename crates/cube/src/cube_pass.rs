//! The CUBE pass (§4.2): compute every `(region, item)` aggregate in one
//! sweep over the fact data.
//!
//! The paper rewrites each feature query `α_f σ_{ID=i, Z∈r} F` into a
//! single grouped aggregation `α_{Z, ID, f} F` whose aggregate operator
//! "performs the CUBE operation on the dimension attributes". We realise
//! it in two phases:
//!
//! 1. **Base aggregation** — fact rows collapse into *base cells* keyed
//!    by (finest dimension coordinates, item). This is an ordinary
//!    group-by and shrinks the data from `#rows` to at most
//!    `#items × #finest-cells`.
//! 2. **Rollup expansion** — each base cell is merged into every region
//!    that contains it (the cartesian product of per-dimension
//!    ancestors). All numeric aggregates here are distributive; the
//!    distinct-FK form keeps the key→value map so set-union dedups
//!    exactly as `π_FK` requires.
//!
//! # Kernel layout
//!
//! The hot path is allocation-lean, columnar and parallel:
//!
//! * Coordinates and item id encode into one dense `u64` **cell key**
//!   (per-dimension strides over `Dimension::num_values`, times a dense
//!   item index), so phase 1 groups by a machine word instead of a
//!   `(Vec<u32>, i64)` tuple.
//! * Aggregation state lives in **structure-of-arrays tables**
//!   ([`StateTable`]): one sorted key vector plus one [`StateCol`] per
//!   measure, each a flat lane of primitive accumulators. Cells never
//!   own per-cell state vectors, so folding and merging are branch-lean
//!   slice walks (the measure-kind `match` is hoisted out of the
//!   per-cell loop) with no per-cell heap allocation.
//! * Fact rows are cut into fixed [`ROW_CHUNK`]-row chunks. Workers fold
//!   chunks into small key-sorted tables (phase 1a) — one slot-assignment
//!   pass over the rows, then one columnar update pass per measure —
//!   then own disjoint contiguous key ranges and merge every chunk's
//!   slice of their range **in chunk order** (phase 1b), into a flat
//!   dense table when the key space is small, a hash-indexed one
//!   otherwise.
//! * Phase 2 rolls base cells up with precomputed per-dimension ancestor
//!   key tables; workers own disjoint region-key ranges, so no locks and
//!   no duplicated work. Each region accumulates into a dense
//!   item-indexed [`RegionTable`] (the same columnar lanes), and each
//!   output cell accumulates contributions in ascending base-key order.
//!
//! Because chunk boundaries and merge order are fixed properties of the
//! *input* — never of the worker count — the result is **bit-identical
//! for every thread count**, floating-point and all. Merging preserves
//! copy-first semantics: the first contribution to a slot is written,
//! not merged into a zero-initialised accumulator, so even signed-zero
//! corner cases match the retained row-at-a-time oracle. (The
//! [`cube_pass_reference`] kernel predates the determinism guarantee: it
//! merges in hash-iteration order, which is stable only for
//! exactly-representable arithmetic.)
//!
//! The result maps every region to its per-item feature vectors, plus
//! coverage counts — everything basic bellwether search needs.

use crate::fxhash::FxMap;
use crate::parallel::Parallelism;
use crate::region::{RegionId, RegionSpace};
use bellwether_obs::{names, span, NoopRecorder, Recorder};
use bellwether_storage::CubeStats;
use bellwether_table::ops::AggFunc;
use std::collections::hash_map::Entry;
use std::collections::HashMap;
use std::ops::Range;

/// Fixed scan granularity: fact rows are folded in chunks of this many
/// rows regardless of thread count, which is what makes the parallel
/// merge order (and hence every floating-point sum) reproducible.
pub const ROW_CHUNK: usize = 4096;

/// Largest combined key space for which phase-1b merging uses a flat
/// dense table (per-worker slice of a `Vec`) instead of a hash index.
const DENSE_SLOTS_MAX: u64 = 1 << 20;

/// Largest item domain for which phase-2 rollup keeps one dense
/// item-indexed table per region (memory `O(regions × items)`); above
/// this it falls back to a `(region, item)`-keyed hash table.
const DENSE_ITEMS_MAX: u64 = 1 << 16;

/// Slot marker for rows the key function filtered out.
const NO_SLOT: u32 = u32::MAX;

/// One measure (feature column) to compute per `(region, item)`.
#[derive(Debug, Clone)]
pub enum Measure {
    /// `α_f(column)` over the fact rows of the cell: the paper's first
    /// two query forms (`f(F.A)` and `f(T.A)` after a fact-side join,
    /// which the caller performs by materialising the joined column).
    /// `func` must be Sum, Min, Max, Avg or Count.
    Numeric {
        /// Output feature name.
        name: String,
        /// Aggregate function.
        func: AggFunc,
        /// Per-fact-row input; `None` = SQL NULL (skipped).
        values: Vec<Option<f64>>,
    },
    /// `α_f(T.A)((π_FK F) ⋈ T)`: aggregate over *distinct* foreign keys,
    /// each key contributing its (functional) reference-table value once.
    /// `func` may be Sum, Min, Max, Avg or CountDistinct.
    DistinctKeyed {
        /// Output feature name.
        name: String,
        /// Aggregate function over the distinct keys' values.
        func: AggFunc,
        /// Per-fact-row foreign key; `None` never joins.
        keys: Vec<Option<i64>>,
        /// Per-fact-row joined value `T.A` (ignored for CountDistinct).
        values: Vec<f64>,
    },
}

impl Measure {
    /// Output feature name.
    pub fn name(&self) -> &str {
        match self {
            Measure::Numeric { name, .. } | Measure::DistinctKeyed { name, .. } => name,
        }
    }

    pub(crate) fn check_len(&self, n: usize) {
        let len = match self {
            Measure::Numeric { values, .. } => values.len(),
            Measure::DistinctKeyed { keys, .. } => keys.len(),
        };
        assert_eq!(len, n, "measure {} length mismatch", self.name());
    }
}

/// Fact-side input to the CUBE pass.
#[derive(Debug, Clone)]
pub struct CubeInput {
    /// Item id per fact row.
    pub item_ids: Vec<i64>,
    /// Flattened `n × arity` finest-grained coordinates per fact row
    /// (time points 0-based, hierarchy leaf node ids).
    pub coords: Vec<u32>,
    /// The measures to aggregate.
    pub measures: Vec<Measure>,
}

/// Reduce the distinct-key map of one cell in key order, so the float
/// result does not depend on hash-map iteration (part of the
/// determinism policy). Shared by the columnar kernel and the
/// row-at-a-time reference states.
fn finish_distinct(func: AggFunc, keys: &FxMap<i64, f64>) -> Option<f64> {
    if func == AggFunc::CountDistinct {
        return Some(keys.len() as f64);
    }
    if keys.is_empty() {
        return None;
    }
    let mut pairs: Vec<(i64, f64)> = keys.iter().map(|(&k, &v)| (k, v)).collect();
    pairs.sort_unstable_by_key(|&(k, _)| k);
    let vals = pairs.iter().map(|&(_, v)| v);
    Some(match func {
        AggFunc::Sum => vals.sum(),
        AggFunc::Avg => vals.sum::<f64>() / pairs.len() as f64,
        AggFunc::Min => vals.fold(f64::INFINITY, f64::min),
        AggFunc::Max => vals.fold(f64::NEG_INFINITY, f64::max),
        AggFunc::Count | AggFunc::CountDistinct => unreachable!(),
    })
}

/// Mergeable per-cell state of one measure: the row-at-a-time (AoS)
/// representation, retained for [`cube_pass_reference`] and as the
/// per-entry form of the huge-item-domain rollup fallback.
#[derive(Debug, Clone)]
enum CellState {
    Sum { total: f64, seen: bool },
    Count(u64),
    Avg { total: f64, count: u64 },
    Min(Option<f64>),
    Max(Option<f64>),
    Distinct { func: AggFunc, keys: FxMap<i64, f64> },
}

impl CellState {
    fn new(measure: &Measure) -> CellState {
        match measure {
            Measure::Numeric { func, .. } => match func {
                AggFunc::Sum => CellState::Sum {
                    total: 0.0,
                    seen: false,
                },
                AggFunc::Count => CellState::Count(0),
                AggFunc::Avg => CellState::Avg {
                    total: 0.0,
                    count: 0,
                },
                AggFunc::Min => CellState::Min(None),
                AggFunc::Max => CellState::Max(None),
                AggFunc::CountDistinct => {
                    panic!("CountDistinct requires Measure::DistinctKeyed")
                }
            },
            Measure::DistinctKeyed { func, .. } => CellState::Distinct {
                func: *func,
                keys: FxMap::default(),
            },
        }
    }

    fn update(&mut self, measure: &Measure, row: usize) {
        match (self, measure) {
            (CellState::Sum { total, seen }, Measure::Numeric { values, .. }) => {
                if let Some(v) = values[row] {
                    *total += v;
                    *seen = true;
                }
            }
            (CellState::Count(c), Measure::Numeric { values, .. }) => {
                if values[row].is_some() {
                    *c += 1;
                }
            }
            (CellState::Avg { total, count }, Measure::Numeric { values, .. }) => {
                if let Some(v) = values[row] {
                    *total += v;
                    *count += 1;
                }
            }
            (CellState::Min(best), Measure::Numeric { values, .. }) => {
                if let Some(v) = values[row] {
                    *best = Some(best.map_or(v, |b| b.min(v)));
                }
            }
            (CellState::Max(best), Measure::Numeric { values, .. }) => {
                if let Some(v) = values[row] {
                    *best = Some(best.map_or(v, |b| b.max(v)));
                }
            }
            (CellState::Distinct { keys, .. }, Measure::DistinctKeyed { keys: ks, values, .. }) => {
                if let Some(k) = ks[row] {
                    keys.insert(k, values[row]);
                }
            }
            _ => unreachable!("state/measure kind mismatch"),
        }
    }

    fn merge(&mut self, other: &CellState) {
        match (self, other) {
            (CellState::Sum { total, seen }, CellState::Sum { total: t2, seen: s2 }) => {
                *total += t2;
                *seen |= s2;
            }
            (CellState::Count(a), CellState::Count(b)) => *a += b,
            (
                CellState::Avg { total, count },
                CellState::Avg {
                    total: t2,
                    count: c2,
                },
            ) => {
                *total += t2;
                *count += c2;
            }
            (CellState::Min(a), CellState::Min(b)) => {
                if let Some(bv) = b {
                    *a = Some(a.map_or(*bv, |av| av.min(*bv)));
                }
            }
            (CellState::Max(a), CellState::Max(b)) => {
                if let Some(bv) = b {
                    *a = Some(a.map_or(*bv, |av| av.max(*bv)));
                }
            }
            (CellState::Distinct { keys, .. }, CellState::Distinct { keys: k2, .. }) => {
                for (k, v) in k2 {
                    keys.insert(*k, *v);
                }
            }
            _ => unreachable!("merging mismatched states"),
        }
    }

    fn finish(&self) -> Option<f64> {
        match self {
            CellState::Sum { total, seen } => seen.then_some(*total),
            CellState::Count(c) => Some(*c as f64),
            CellState::Avg { total, count } => (*count > 0).then(|| total / *count as f64),
            CellState::Min(v) | CellState::Max(v) => *v,
            CellState::Distinct { func, keys } => finish_distinct(*func, keys),
        }
    }
}

/// One measure's aggregation state over a table of cells, structure-of-
/// arrays: flat primitive lanes indexed by cell slot. Fold, merge and
/// finish all hoist the measure-kind `match` out of the per-cell loop.
///
/// Every variant distinguishes "never contributed" from its accumulator
/// value (`seen` lanes / counts), so merging can preserve **copy-first**
/// semantics: the first contribution to a slot assigns, later ones
/// merge. That keeps e.g. a `-0.0` sum bit-identical to the AoS oracle,
/// which clones the first contribution instead of adding it to `0.0`.
/// The distinct-FK lanes hold append-only `(key, value)` pair lists
/// instead of hash maps: updates and merges are pushes, and the
/// map-overwrite semantics ("last insert wins per key") are recovered by
/// a stable sort-by-key + keep-last dedup, applied at fold/merge
/// boundaries (to bound carried size) and again at finish.
#[derive(Debug, Clone)]
pub(crate) enum StateCol {
    Sum { totals: Vec<f64>, seen: Vec<bool> },
    Count(Vec<u64>),
    Avg { totals: Vec<f64>, counts: Vec<u64> },
    Min { vals: Vec<f64>, seen: Vec<bool> },
    Max { vals: Vec<f64>, seen: Vec<bool> },
    Distinct { func: AggFunc, pairs: Vec<Vec<(i64, f64)>> },
}

/// Stable-sort `pairs` by key and keep the **last** occurrence of each
/// key (= hash-map insert order semantics). The result is key-sorted.
pub(crate) fn dedup_pairs(pairs: &mut Vec<(i64, f64)>) {
    if pairs.len() < 2 {
        return;
    }
    // Stable sort by key; the lists are almost always tiny (one entry
    // per contributing cell), where a hand-rolled insertion sort beats
    // the general sort's dispatch overhead.
    if pairs.len() <= 32 {
        for i in 1..pairs.len() {
            let mut j = i;
            while j > 0 && pairs[j - 1].0 > pairs[j].0 {
                pairs.swap(j - 1, j);
                j -= 1;
            }
        }
    } else {
        pairs.sort_by_key(|&(k, _)| k); // stable: preserves arrival order per key
    }
    let mut w = 0;
    let mut i = 0;
    while i < pairs.len() {
        let k = pairs[i].0;
        let mut j = i;
        while j + 1 < pairs.len() && pairs[j + 1].0 == k {
            j += 1;
        }
        pairs[w] = pairs[j];
        w += 1;
        i = j + 1;
    }
    pairs.truncate(w);
}

/// Reduce one cell's deduplicated, key-sorted distinct pairs — the
/// columnar counterpart of [`finish_distinct`], bit-identical to it.
fn finish_distinct_pairs(func: AggFunc, sorted: &[(i64, f64)]) -> Option<f64> {
    if func == AggFunc::CountDistinct {
        return Some(sorted.len() as f64);
    }
    if sorted.is_empty() {
        return None;
    }
    let vals = sorted.iter().map(|&(_, v)| v);
    Some(match func {
        AggFunc::Sum => vals.sum(),
        AggFunc::Avg => vals.sum::<f64>() / sorted.len() as f64,
        AggFunc::Min => vals.fold(f64::INFINITY, f64::min),
        AggFunc::Max => vals.fold(f64::NEG_INFINITY, f64::max),
        AggFunc::Count | AggFunc::CountDistinct => unreachable!(),
    })
}

/// `idx.map(|i| v[i])` for `Copy` lanes.
fn gather_copy<T: Copy>(v: &[T], idx: &[u32]) -> Vec<T> {
    idx.iter().map(|&i| v[i as usize]).collect()
}

/// `idx.map(|i| take(v[i]))` for owned lanes (indices must be distinct).
fn gather_take<T: Default>(v: &mut [T], idx: &[u32]) -> Vec<T> {
    idx.iter()
        .map(|&i| std::mem::take(&mut v[i as usize]))
        .collect()
}

impl StateCol {
    fn new(measure: &Measure, len: usize) -> StateCol {
        match measure {
            Measure::Numeric { func, .. } => match func {
                AggFunc::Sum => StateCol::Sum {
                    totals: vec![0.0; len],
                    seen: vec![false; len],
                },
                AggFunc::Count => StateCol::Count(vec![0; len]),
                AggFunc::Avg => StateCol::Avg {
                    totals: vec![0.0; len],
                    counts: vec![0; len],
                },
                AggFunc::Min => StateCol::Min {
                    vals: vec![0.0; len],
                    seen: vec![false; len],
                },
                AggFunc::Max => StateCol::Max {
                    vals: vec![0.0; len],
                    seen: vec![false; len],
                },
                AggFunc::CountDistinct => {
                    panic!("CountDistinct requires Measure::DistinctKeyed")
                }
            },
            Measure::DistinctKeyed { func, .. } => StateCol::Distinct {
                func: *func,
                pairs: vec![Vec::new(); len],
            },
        }
    }

    /// A fresh column of the same measure kind with `len` empty slots.
    pub(crate) fn new_like(&self, len: usize) -> StateCol {
        match self {
            StateCol::Sum { .. } => StateCol::Sum {
                totals: vec![0.0; len],
                seen: vec![false; len],
            },
            StateCol::Count(_) => StateCol::Count(vec![0; len]),
            StateCol::Avg { .. } => StateCol::Avg {
                totals: vec![0.0; len],
                counts: vec![0; len],
            },
            StateCol::Min { .. } => StateCol::Min {
                vals: vec![0.0; len],
                seen: vec![false; len],
            },
            StateCol::Max { .. } => StateCol::Max {
                vals: vec![0.0; len],
                seen: vec![false; len],
            },
            StateCol::Distinct { func, .. } => StateCol::Distinct {
                func: *func,
                pairs: vec![Vec::new(); len],
            },
        }
    }

    /// Grow to `len` slots (new slots empty).
    pub(crate) fn resize_default(&mut self, len: usize) {
        match self {
            StateCol::Sum { totals, seen }
            | StateCol::Min { vals: totals, seen }
            | StateCol::Max { vals: totals, seen } => {
                totals.resize(len, 0.0);
                seen.resize(len, false);
            }
            StateCol::Count(c) => c.resize(len, 0),
            StateCol::Avg { totals, counts } => {
                totals.resize(len, 0.0);
                counts.resize(len, 0);
            }
            StateCol::Distinct { pairs, .. } => pairs.resize_with(len, Vec::new),
        }
    }

    /// Fold the rows of one chunk into this column: `slots[row - rows.start]`
    /// is the row's cell slot ([`NO_SLOT`] = filtered out). One `match`,
    /// then a single pass over the chunk's rows in row order.
    fn update_rows(&mut self, measure: &Measure, rows: Range<usize>, slots: &[u32]) {
        match (self, measure) {
            (StateCol::Sum { totals, seen }, Measure::Numeric { values, .. }) => {
                for (row, &slot) in rows.zip(slots) {
                    if slot == NO_SLOT {
                        continue;
                    }
                    if let Some(v) = values[row] {
                        totals[slot as usize] += v;
                        seen[slot as usize] = true;
                    }
                }
            }
            (StateCol::Count(counts), Measure::Numeric { values, .. }) => {
                for (row, &slot) in rows.zip(slots) {
                    if slot != NO_SLOT && values[row].is_some() {
                        counts[slot as usize] += 1;
                    }
                }
            }
            (StateCol::Avg { totals, counts }, Measure::Numeric { values, .. }) => {
                for (row, &slot) in rows.zip(slots) {
                    if slot == NO_SLOT {
                        continue;
                    }
                    if let Some(v) = values[row] {
                        totals[slot as usize] += v;
                        counts[slot as usize] += 1;
                    }
                }
            }
            (StateCol::Min { vals, seen }, Measure::Numeric { values, .. }) => {
                for (row, &slot) in rows.zip(slots) {
                    if slot == NO_SLOT {
                        continue;
                    }
                    if let Some(v) = values[row] {
                        let s = slot as usize;
                        vals[s] = if seen[s] { vals[s].min(v) } else { v };
                        seen[s] = true;
                    }
                }
            }
            (StateCol::Max { vals, seen }, Measure::Numeric { values, .. }) => {
                for (row, &slot) in rows.zip(slots) {
                    if slot == NO_SLOT {
                        continue;
                    }
                    if let Some(v) = values[row] {
                        let s = slot as usize;
                        vals[s] = if seen[s] { vals[s].max(v) } else { v };
                        seen[s] = true;
                    }
                }
            }
            (
                StateCol::Distinct { pairs, .. },
                Measure::DistinctKeyed { keys: ks, values, .. },
            ) => {
                for (row, &slot) in rows.zip(slots) {
                    if slot == NO_SLOT {
                        continue;
                    }
                    if let Some(k) = ks[row] {
                        pairs[slot as usize].push((k, values[row]));
                    }
                }
            }
            _ => unreachable!("state/measure kind mismatch"),
        }
    }

    /// Merge entries `range` of `src` into this column: entry `i` lands
    /// in destination slot `dsts[i - range.start]`, with
    /// `was[i - range.start]` saying whether that slot was occupied
    /// before this source table's contribution (false ⇒ copy, true ⇒
    /// merge). One `match`, then lock-step slice walks — the source
    /// lanes, `dsts` and `was` are iterated zipped so the only indexed
    /// (bounds-checked) accesses left are the destination-lane scatters.
    pub(crate) fn merge_from(&mut self, src: &StateCol, range: Range<usize>, dsts: &[u32], was: &[bool]) {
        debug_assert_eq!(dsts.len(), range.len());
        debug_assert_eq!(was.len(), range.len());
        match (self, src) {
            (StateCol::Sum { totals, seen }, StateCol::Sum { totals: st, seen: ss }) => {
                let lanes = st[range.clone()].iter().zip(&ss[range]);
                for ((&v, &b), (&d, &w)) in lanes.zip(dsts.iter().zip(was)) {
                    let d = d as usize;
                    if w {
                        totals[d] += v;
                        seen[d] |= b;
                    } else {
                        totals[d] = v;
                        seen[d] = b;
                    }
                }
            }
            (StateCol::Count(counts), StateCol::Count(sc)) => {
                for (&c, (&d, &w)) in sc[range].iter().zip(dsts.iter().zip(was)) {
                    let d = d as usize;
                    if w {
                        counts[d] += c;
                    } else {
                        counts[d] = c;
                    }
                }
            }
            (
                StateCol::Avg { totals, counts },
                StateCol::Avg {
                    totals: st,
                    counts: sc,
                },
            ) => {
                let lanes = st[range.clone()].iter().zip(&sc[range]);
                for ((&v, &c), (&d, &w)) in lanes.zip(dsts.iter().zip(was)) {
                    let d = d as usize;
                    if w {
                        totals[d] += v;
                        counts[d] += c;
                    } else {
                        totals[d] = v;
                        counts[d] = c;
                    }
                }
            }
            (StateCol::Min { vals, seen }, StateCol::Min { vals: sv, seen: ss }) => {
                let lanes = sv[range.clone()].iter().zip(&ss[range]);
                for ((&v, &b), (&d, &w)) in lanes.zip(dsts.iter().zip(was)) {
                    let d = d as usize;
                    if !w {
                        vals[d] = v;
                        seen[d] = b;
                    } else if b {
                        vals[d] = if seen[d] { vals[d].min(v) } else { v };
                        seen[d] = true;
                    }
                }
            }
            (StateCol::Max { vals, seen }, StateCol::Max { vals: sv, seen: ss }) => {
                let lanes = sv[range.clone()].iter().zip(&ss[range]);
                for ((&v, &b), (&d, &w)) in lanes.zip(dsts.iter().zip(was)) {
                    let d = d as usize;
                    if !w {
                        vals[d] = v;
                        seen[d] = b;
                    } else if b {
                        vals[d] = if seen[d] { vals[d].max(v) } else { v };
                        seen[d] = true;
                    }
                }
            }
            (StateCol::Distinct { pairs, .. }, StateCol::Distinct { pairs: sp, .. }) => {
                for (sl, (&d, &w)) in sp[range].iter().zip(dsts.iter().zip(was)) {
                    let d = d as usize;
                    if !w {
                        pairs[d].clear();
                        // A slot typically accumulates one pair per
                        // contributing cell; skipping the doubling
                        // ladder saves most of the reallocations.
                        if pairs[d].capacity() < 8 {
                            pairs[d].reserve(8);
                        }
                    }
                    pairs[d].extend_from_slice(sl);
                }
            }
            _ => unreachable!("merging mismatched state columns"),
        }
    }

    /// Reorder into `idx` order (indices distinct), consuming the lanes.
    fn gather(&mut self, idx: &[u32]) -> StateCol {
        match self {
            StateCol::Sum { totals, seen } => StateCol::Sum {
                totals: gather_copy(totals, idx),
                seen: gather_copy(seen, idx),
            },
            StateCol::Count(c) => StateCol::Count(gather_copy(c, idx)),
            StateCol::Avg { totals, counts } => StateCol::Avg {
                totals: gather_copy(totals, idx),
                counts: gather_copy(counts, idx),
            },
            StateCol::Min { vals, seen } => StateCol::Min {
                vals: gather_copy(vals, idx),
                seen: gather_copy(seen, idx),
            },
            StateCol::Max { vals, seen } => StateCol::Max {
                vals: gather_copy(vals, idx),
                seen: gather_copy(seen, idx),
            },
            StateCol::Distinct { func, pairs } => StateCol::Distinct {
                func: *func,
                pairs: gather_take(pairs, idx),
            },
        }
    }

    /// Restore the per-slot "last insert wins, unique keys, key-sorted"
    /// invariant on distinct lanes after a round of appends; no-op for
    /// the numeric kinds. Must run before [`StateCol::finish_at`].
    pub(crate) fn dedup_distinct(&mut self) {
        if let StateCol::Distinct { pairs, .. } = self {
            for list in pairs {
                dedup_pairs(list);
            }
        }
    }

    /// Finalize slot `i` into the output value (`None` = SQL NULL).
    /// Distinct lanes must have been deduplicated (see
    /// [`StateCol::dedup_distinct`]).
    pub(crate) fn finish_at(&self, i: usize) -> Option<f64> {
        match self {
            StateCol::Sum { totals, seen } => seen[i].then_some(totals[i]),
            StateCol::Count(c) => Some(c[i] as f64),
            StateCol::Avg { totals, counts } => {
                (counts[i] > 0).then(|| totals[i] / counts[i] as f64)
            }
            StateCol::Min { vals, seen } | StateCol::Max { vals, seen } => {
                seen[i].then_some(vals[i])
            }
            StateCol::Distinct { func, pairs } => finish_distinct_pairs(*func, &pairs[i]),
        }
    }

    /// Slot `i` as a standalone AoS state (huge-item-domain fallback).
    fn state_at(&self, i: usize) -> CellState {
        match self {
            StateCol::Sum { totals, seen } => CellState::Sum {
                total: totals[i],
                seen: seen[i],
            },
            StateCol::Count(c) => CellState::Count(c[i]),
            StateCol::Avg { totals, counts } => CellState::Avg {
                total: totals[i],
                count: counts[i],
            },
            StateCol::Min { vals, seen } => CellState::Min(seen[i].then_some(vals[i])),
            StateCol::Max { vals, seen } => CellState::Max(seen[i].then_some(vals[i])),
            StateCol::Distinct { func, pairs } => {
                let mut keys = FxMap::default();
                for &(k, v) in &pairs[i] {
                    keys.insert(k, v);
                }
                CellState::Distinct { func: *func, keys }
            }
        }
    }

    /// Merge slot `i` into an AoS state (huge-item-domain fallback).
    fn merge_into_state(&self, i: usize, dst: &mut CellState) {
        match (dst, self) {
            (CellState::Sum { total, seen }, StateCol::Sum { totals, seen: ss }) => {
                *total += totals[i];
                *seen |= ss[i];
            }
            (CellState::Count(c), StateCol::Count(sc)) => *c += sc[i],
            (CellState::Avg { total, count }, StateCol::Avg { totals, counts }) => {
                *total += totals[i];
                *count += counts[i];
            }
            (CellState::Min(best), StateCol::Min { vals, seen }) => {
                if seen[i] {
                    *best = Some(best.map_or(vals[i], |a| a.min(vals[i])));
                }
            }
            (CellState::Max(best), StateCol::Max { vals, seen }) => {
                if seen[i] {
                    *best = Some(best.map_or(vals[i], |a| a.max(vals[i])));
                }
            }
            (CellState::Distinct { keys, .. }, StateCol::Distinct { pairs: sp, .. }) => {
                for &(k, v) in &sp[i] {
                    keys.insert(k, v);
                }
            }
            _ => unreachable!("merging mismatched states"),
        }
    }
}

/// A key-sorted table of cells in structure-of-arrays layout: `keys[i]`
/// is cell `i`'s dense key, `cols[m]` holds measure `m`'s accumulator
/// lanes for every cell.
#[derive(Debug, Clone)]
pub(crate) struct StateTable {
    pub(crate) keys: Vec<u64>,
    pub(crate) cols: Vec<StateCol>,
}

impl StateTable {
    pub(crate) fn len(&self) -> usize {
        self.keys.len()
    }

    /// Index range of the keys in `[lo, hi)` (keys must be sorted).
    pub(crate) fn range_of(&self, lo: u64, hi: u64) -> Range<usize> {
        let a = self.keys.partition_point(|&k| k < lo);
        let b = self.keys.partition_point(|&k| k < hi);
        a..b
    }

    /// Sort by key via one permutation applied to every lane.
    pub(crate) fn sort_by_key(&mut self) {
        if self.keys.is_sorted() {
            return;
        }
        let mut perm: Vec<u32> = (0..self.keys.len() as u32).collect();
        perm.sort_unstable_by_key(|&i| self.keys[i as usize]);
        self.keys = gather_copy(&self.keys, &perm);
        for col in &mut self.cols {
            *col = col.gather(&perm);
        }
    }
}

/// Per-item feature vectors of one region.
pub(crate) type ItemFeatures = HashMap<i64, Vec<Option<f64>>>;

/// Per-region, per-item aggregate vectors produced by [`cube_pass`].
#[derive(Debug, Clone)]
pub struct CubeResult {
    /// Feature names, in measure order.
    pub measure_names: Vec<String>,
    /// `region → item → feature values` (`None` = NULL aggregate).
    pub regions: HashMap<RegionId, HashMap<i64, Vec<Option<f64>>>>,
}

impl CubeResult {
    /// Number of distinct items with data in `r` (the coverage
    /// numerator `|I_r|`).
    pub fn coverage_count(&self, r: &RegionId) -> usize {
        self.regions.get(r).map_or(0, HashMap::len)
    }

    /// The feature vector of `item` in region `r`, if the item has data.
    pub fn features(&self, r: &RegionId, item: i64) -> Option<&Vec<Option<f64>>> {
        self.regions.get(r)?.get(&item)
    }

    /// Coverage counts for every region (input to iceberg pruning).
    pub fn coverage_counts(&self) -> HashMap<RegionId, usize> {
        self.regions
            .iter()
            .map(|(r, items)| (r.clone(), items.len()))
            .collect()
    }
}

/// Dense `u64` encoding of `(finest coords, item)` keys.
///
/// Cell coordinates use per-dimension strides over `num_values` (so the
/// *same* encoding covers both finest cells and region coordinates);
/// the item id maps through a dense index over the distinct ids. `build`
/// returns `None` when the combined key space cannot fit a `u64` with
/// headroom — callers then fall back to [`cube_pass_reference`].
#[derive(Clone)]
pub(crate) struct KeySpace {
    pub(crate) strides: Vec<u64>,
    pub(crate) num_values: Vec<u64>,
    pub(crate) cell_space: u64,
    /// Dense item index → item id, sorted ascending.
    pub(crate) items: Vec<i64>,
    pub(crate) item_index: FxMap<i64, u32>,
    pub(crate) n_items: u64,
}

impl KeySpace {
    pub(crate) fn build(space: &RegionSpace, item_ids: &[i64]) -> Option<KeySpace> {
        let num_values: Vec<u64> = space
            .dims()
            .iter()
            .map(|d| d.num_values() as u64)
            .collect();
        if num_values.contains(&0) {
            return None;
        }
        let mut strides = vec![1u64; num_values.len()];
        let mut acc: u128 = 1;
        for d in (0..num_values.len()).rev() {
            strides[d] = u64::try_from(acc).ok()?;
            acc *= num_values[d] as u128;
        }
        let cell_space = u64::try_from(acc).ok()?;
        let mut items: Vec<i64> = item_ids.to_vec();
        items.sort_unstable();
        items.dedup();
        if items.len() > u32::MAX as usize {
            return None;
        }
        let n_items = items.len() as u64;
        if (cell_space as u128) * (n_items as u128) > (1u128 << 62) {
            return None;
        }
        let item_index = items.iter().enumerate().map(|(i, &id)| (id, i as u32)).collect();
        Some(KeySpace {
            strides,
            num_values,
            cell_space,
            items,
            item_index,
            n_items,
        })
    }

    #[inline]
    pub(crate) fn cell_key(&self, coords: &[u32]) -> u64 {
        coords
            .iter()
            .zip(&self.strides)
            .map(|(&c, &s)| c as u64 * s)
            .sum()
    }

    pub(crate) fn decode_region(&self, key: u64) -> Vec<u32> {
        let mut rem = key;
        self.strides
            .iter()
            .map(|&s| {
                let v = rem / s;
                rem %= s;
                v as u32
            })
            .collect()
    }
}

pub(crate) fn chunk_range(chunk: usize, n: usize) -> Range<usize> {
    chunk * ROW_CHUNK..((chunk + 1) * ROW_CHUNK).min(n)
}

/// Even split point `w` of `space` into `t` contiguous ranges.
fn split_point(space: u64, w: usize, t: usize) -> u64 {
    ((space as u128 * w as u128) / t as u128) as u64
}

/// Phase 1a for one chunk: fold its rows into a key-sorted table. Pass
/// one walks the rows assigning cell slots (first-seen order); pass two
/// updates each measure column over the whole chunk with the measure
/// kind matched once. Per (cell, measure) the update sequence is
/// row-ascending either way, so every accumulated scalar is bit-equal
/// to a row-at-a-time fold.
pub(crate) fn fold_chunk<K>(input: &CubeInput, arity: usize, rows: Range<usize>, key_of: &K) -> StateTable
where
    K: Fn(usize, &[u32]) -> Option<u64>,
{
    let mut index: FxMap<u64, u32> = FxMap::default();
    let mut keys: Vec<u64> = Vec::new();
    let mut slots: Vec<u32> = Vec::with_capacity(rows.len());
    for row in rows.clone() {
        let coords = &input.coords[row * arity..(row + 1) * arity];
        let slot = match key_of(row, coords) {
            Some(key) => *index.entry(key).or_insert_with(|| {
                keys.push(key);
                (keys.len() - 1) as u32
            }),
            None => NO_SLOT,
        };
        slots.push(slot);
    }
    let cols = input
        .measures
        .iter()
        .map(|m| {
            let mut col = StateCol::new(m, keys.len());
            col.update_rows(m, rows.clone(), &slots);
            col
        })
        .collect();
    let mut table = StateTable { keys, cols };
    for col in &mut table.cols {
        col.dedup_distinct();
    }
    table.sort_by_key();
    table
}

/// Phase 1a: fold all rows chunk by chunk, sharding chunks over
/// `threads` workers. The returned tables are in chunk order — the
/// partition of chunks onto workers never shows in the output.
fn scan_chunks<K>(input: &CubeInput, arity: usize, threads: usize, key_of: &K) -> Vec<StateTable>
where
    K: Fn(usize, &[u32]) -> Option<u64> + Sync,
{
    let n = input.item_ids.len();
    let n_chunks = n.div_ceil(ROW_CHUNK);
    if threads <= 1 {
        return (0..n_chunks)
            .map(|c| fold_chunk(input, arity, chunk_range(c, n), key_of))
            .collect();
    }
    std::thread::scope(|s| {
        let handles: Vec<_> = (0..threads)
            .map(|w| {
                let lo = n_chunks * w / threads;
                let hi = n_chunks * (w + 1) / threads;
                s.spawn(move || {
                    (lo..hi)
                        .map(|c| fold_chunk(input, arity, chunk_range(c, n), key_of))
                        .collect::<Vec<_>>()
                })
            })
            .collect();
        handles
            .into_iter()
            .flat_map(|h| h.join().expect("cube scan worker panicked"))
            .collect()
    })
}

/// Phase 1b for one key range: merge every chunk's slice of `[lo, hi)`
/// in chunk order, column by column. Per source table the occupancy
/// pre-state of every touched slot is captured first, so each column
/// merge knows copy vs merge without re-deriving it. Returns the
/// range's base cells sorted by key.
fn merge_range(
    tables: &[StateTable],
    lo: u64,
    hi: u64,
    dense: bool,
    merges: &mut u64,
) -> StateTable {
    let mut was: Vec<bool> = Vec::new();
    let mut dsts: Vec<u32> = Vec::new();
    if dense {
        let n_slots = (hi - lo) as usize;
        let mut occupied = vec![false; n_slots];
        let mut cols: Vec<StateCol> = tables
            .first()
            .map(|t| t.cols.iter().map(|c| c.new_like(n_slots)).collect())
            .unwrap_or_default();
        for t in tables {
            let r = t.range_of(lo, hi);
            if r.is_empty() {
                continue;
            }
            was.clear();
            dsts.clear();
            for &k in &t.keys[r.clone()] {
                let s = (k - lo) as usize;
                *merges += occupied[s] as u64;
                was.push(occupied[s]);
                dsts.push(s as u32);
                occupied[s] = true;
            }
            for (dst, src) in cols.iter_mut().zip(&t.cols) {
                dst.merge_from(src, r.clone(), &dsts, &was);
            }
        }
        let idx: Vec<u32> = occupied
            .iter()
            .enumerate()
            .filter_map(|(i, &o)| o.then_some(i as u32))
            .collect();
        let keys: Vec<u64> = idx.iter().map(|&i| lo + i as u64).collect();
        for col in &mut cols {
            *col = col.gather(&idx);
            col.dedup_distinct();
        }
        StateTable { keys, cols }
    } else {
        let mut index: FxMap<u64, u32> = FxMap::default();
        let mut keys: Vec<u64> = Vec::new();
        let mut cols: Vec<StateCol> = tables
            .first()
            .map(|t| t.cols.iter().map(|c| c.new_like(0)).collect())
            .unwrap_or_default();
        let mut slots: Vec<u32> = Vec::new();
        for t in tables {
            let r = t.range_of(lo, hi);
            if r.is_empty() {
                continue;
            }
            slots.clear();
            was.clear();
            for &k in &t.keys[r.clone()] {
                match index.entry(k) {
                    Entry::Occupied(e) => {
                        slots.push(*e.get());
                        was.push(true);
                    }
                    Entry::Vacant(e) => {
                        let s = keys.len() as u32;
                        keys.push(k);
                        e.insert(s);
                        slots.push(s);
                        was.push(false);
                    }
                }
            }
            *merges += was.iter().filter(|&&w| w).count() as u64; // sparse path: cold
            for col in &mut cols {
                col.resize_default(keys.len());
            }
            for (dst, src) in cols.iter_mut().zip(&t.cols) {
                dst.merge_from(src, r.clone(), &slots, &was);
            }
        }
        let mut table = StateTable { keys, cols };
        for col in &mut table.cols {
            col.dedup_distinct();
        }
        table.sort_by_key();
        table
    }
}

/// Phase 1b: merge chunk tables into per-worker shards of contiguous
/// key ranges. Concatenating the shards in order yields all base cells
/// sorted by key — for every worker count.
pub(crate) fn merge_chunks(
    tables: &[StateTable],
    key_space: u64,
    threads: usize,
) -> (Vec<StateTable>, u64) {
    let dense = key_space <= DENSE_SLOTS_MAX;
    if threads <= 1 {
        let mut merges = 0;
        let shard = merge_range(tables, 0, key_space, dense, &mut merges);
        return (vec![shard], merges);
    }
    std::thread::scope(|s| {
        let handles: Vec<_> = (0..threads)
            .map(|w| {
                let lo = split_point(key_space, w, threads);
                let hi = split_point(key_space, w + 1, threads);
                s.spawn(move || {
                    let mut merges = 0;
                    let shard = merge_range(tables, lo, hi, dense, &mut merges);
                    (shard, merges)
                })
            })
            .collect();
        let mut shards = Vec::with_capacity(threads);
        let mut merges = 0;
        for h in handles {
            let (shard, m) = h.join().expect("cube merge worker panicked");
            shards.push(shard);
            merges += m;
        }
        (shards, merges)
    })
}

/// The region keys containing `cell_key` that fall in `[lo, hi)`,
/// written into `out`: an odometer over the per-dimension ancestor key
/// contributions, maintaining the key sum incrementally.
pub(crate) fn expansion_keys(
    cell_key: u64,
    ks: &KeySpace,
    anc_keys: &[Vec<Vec<u64>>],
    lo: u64,
    hi: u64,
    out: &mut Vec<u64>,
) {
    out.clear();
    let arity = ks.strides.len();
    let mut lists: Vec<&[u64]> = Vec::with_capacity(arity);
    let mut rem = cell_key;
    for (&stride, anc_d) in ks.strides.iter().zip(anc_keys) {
        let v = (rem / stride) as usize;
        rem %= stride;
        lists.push(&anc_d[v]);
    }
    let mut idx = vec![0usize; arity];
    let mut sum: u64 = lists.iter().map(|l| l[0]).sum();
    loop {
        if (lo..hi).contains(&sum) {
            out.push(sum);
        }
        let mut d = arity;
        loop {
            if d == 0 {
                return;
            }
            d -= 1;
            sum -= lists[d][idx[d]];
            idx[d] += 1;
            if idx[d] < lists[d].len() {
                sum += lists[d][idx[d]];
                break;
            }
            idx[d] = 0;
            sum += lists[d][0];
        }
    }
}

/// One region's dense item-indexed aggregation state: `occupied[i]` says
/// whether item slot `i` has data; `cols[m]` holds measure `m`'s lanes
/// over all item slots.
struct RegionTable {
    occupied: Vec<bool>,
    cols: Vec<StateCol>,
}

/// Reusable per-run scratch for [`flush_run`].
#[derive(Default)]
struct RunScratch {
    /// Dense item slot of each run entry — one `% n_items` per entry,
    /// computed once and shared across every region key and column.
    items: Vec<u32>,
    /// Occupancy pre-state per entry for the current region table.
    was: Vec<bool>,
}

/// Merge one cell's run of shard entries (`run`, a contiguous index
/// range of `shard` sharing a cell key) into the region tables of every
/// key in `expansion`. Runs arrive in ascending cell-key order, so each
/// `(region, item)` output accumulates its contributions in the same
/// order for any sharding — a run split at a shard boundary flushes as
/// two segments, which preserves that per-output order.
fn flush_run(
    expansion: &[u64],
    shard: &StateTable,
    run: Range<usize>,
    n_items: u64,
    out: &mut FxMap<u64, RegionTable>,
    scratch: &mut RunScratch,
    merges: &mut u64,
) {
    if expansion.is_empty() {
        // Filtered rollups prune most cells; don't pay the per-entry
        // item decode for a run no region will consume.
        return;
    }
    let RunScratch { items, was } = scratch;
    items.clear();
    items.extend(shard.keys[run.clone()].iter().map(|&k| (k % n_items) as u32));
    for &rk in expansion {
        let table = out.entry(rk).or_insert_with(|| RegionTable {
            occupied: vec![false; n_items as usize],
            cols: shard
                .cols
                .iter()
                .map(|c| c.new_like(n_items as usize))
                .collect(),
        });
        was.clear();
        for &it in items.iter() {
            let w = table.occupied[it as usize];
            *merges += w as u64;
            was.push(w);
            table.occupied[it as usize] = true;
        }
        for (dst, src) in table.cols.iter_mut().zip(&shard.cols) {
            dst.merge_from(src, run.clone(), items, was);
        }
    }
}

/// Per-dimension ancestor tables: `anc_keys[d][v]` lists the key
/// contribution (ancestor value × stride) of every value containing
/// `v`, replacing the per-cell `containing_regions` materialisation.
pub(crate) fn ancestor_key_tables(space: &RegionSpace, ks: &KeySpace) -> Vec<Vec<Vec<u64>>> {
    space
        .dims()
        .iter()
        .enumerate()
        .map(|(d, dim)| {
            (0..dim.num_values())
                .map(|v| {
                    dim.containing_values(v)
                        .into_iter()
                        .map(|a| a as u64 * ks.strides[d])
                        .collect()
                })
                .collect()
        })
        .collect()
}

/// Phase 2: roll base cells up into every containing region. Workers own
/// disjoint region-key ranges; every worker walks all base cells in key
/// order, so each output cell accumulates its contributions in a fixed
/// order and no two workers ever touch the same output cell.
///
/// When `filter` is given (a **sorted** list of region keys), only those
/// regions are expanded and emitted — the delta pass uses this to roll
/// up just its dirty set. Because each kept region still accumulates
/// every base cell in full key order, a filtered region's value is
/// bit-identical to the same region in an unfiltered rollup.
pub(crate) fn expand_rollup(
    space: &RegionSpace,
    ks: &KeySpace,
    shards: &[StateTable],
    threads: usize,
    filter: Option<&[u64]>,
) -> (HashMap<RegionId, ItemFeatures>, u64) {
    let anc_keys = ancestor_key_tables(space, ks);

    let worker = |lo: u64, hi: u64| -> (Vec<(RegionId, ItemFeatures)>, u64) {
        // Base cells with the same coordinates are adjacent in key
        // order, so the expansion list is memoised per distinct cell
        // and the cell's items are batched into one columnar run,
        // hashing each region key once per run instead of once per
        // (region, item).
        if ks.n_items <= DENSE_ITEMS_MAX {
            let mut out: FxMap<u64, RegionTable> = FxMap::default();
            let mut merges = 0u64;
            let mut cur_cell = u64::MAX;
            let mut expansion: Vec<u64> = Vec::new();
            let mut scratch = RunScratch::default();
            for shard in shards {
                let mut i = 0;
                while i < shard.len() {
                    let cell_key = shard.keys[i] / ks.n_items;
                    let mut j = i + 1;
                    while j < shard.len() && shard.keys[j] / ks.n_items == cell_key {
                        j += 1;
                    }
                    if cell_key != cur_cell {
                        cur_cell = cell_key;
                        expansion_keys(cell_key, ks, &anc_keys, lo, hi, &mut expansion);
                        if let Some(keep) = filter {
                            expansion.retain(|k| keep.binary_search(k).is_ok());
                        }
                    }
                    flush_run(
                        &expansion,
                        shard,
                        i..j,
                        ks.n_items,
                        &mut out,
                        &mut scratch,
                        &mut merges,
                    );
                    i = j;
                }
            }
            let finished = out
                .into_iter()
                .map(|(rk, mut table)| {
                    for col in &mut table.cols {
                        col.dedup_distinct();
                    }
                    let n_occ = table.occupied.iter().filter(|&&o| o).count();
                    let mut items: ItemFeatures = HashMap::with_capacity(n_occ);
                    for (i, &occ) in table.occupied.iter().enumerate() {
                        if occ {
                            items.insert(
                                ks.items[i],
                                table.cols.iter().map(|c| c.finish_at(i)).collect(),
                            );
                        }
                    }
                    (RegionId(ks.decode_region(rk)), items)
                })
                .collect();
            return (finished, merges);
        }

        // Huge item domains: dense per-region item tables would cost
        // O(regions × items) memory, so key the map by (region, item)
        // and keep per-entry AoS states.
        let mut out: FxMap<u64, Vec<CellState>> = FxMap::default();
        let mut merges = 0u64;
        let mut cur_cell = u64::MAX;
        let mut expansion: Vec<u64> = Vec::new();
        for shard in shards {
            for (i, &key) in shard.keys.iter().enumerate() {
                let cell_key = key / ks.n_items;
                let item_part = key % ks.n_items;
                if cell_key != cur_cell {
                    cur_cell = cell_key;
                    expansion_keys(cell_key, ks, &anc_keys, lo, hi, &mut expansion);
                    if let Some(keep) = filter {
                        expansion.retain(|k| keep.binary_search(k).is_ok());
                    }
                }
                for &rk in &expansion {
                    match out.entry(rk * ks.n_items + item_part) {
                        Entry::Occupied(mut e) => {
                            for (state, col) in e.get_mut().iter_mut().zip(&shard.cols) {
                                col.merge_into_state(i, state);
                            }
                            merges += 1;
                        }
                        Entry::Vacant(e) => {
                            e.insert(shard.cols.iter().map(|c| c.state_at(i)).collect());
                        }
                    }
                }
            }
        }
        let mut per_region: FxMap<u64, HashMap<i64, Vec<Option<f64>>>> = FxMap::default();
        for (combined, states) in out {
            let region_key = combined / ks.n_items;
            let item = ks.items[(combined % ks.n_items) as usize];
            per_region
                .entry(region_key)
                .or_default()
                .insert(item, states.iter().map(CellState::finish).collect());
        }
        let finished = per_region
            .into_iter()
            .map(|(rk, items)| (RegionId(ks.decode_region(rk)), items))
            .collect();
        (finished, merges)
    };

    let mut regions = HashMap::new();
    let mut merges = 0;
    if threads <= 1 {
        let (finished, m) = worker(0, ks.cell_space);
        regions.extend(finished);
        merges += m;
    } else {
        std::thread::scope(|s| {
            let handles: Vec<_> = (0..threads)
                .map(|w| {
                    let lo = split_point(ks.cell_space, w, threads);
                    let hi = split_point(ks.cell_space, w + 1, threads);
                    let worker = &worker;
                    s.spawn(move || worker(lo, hi))
                })
                .collect();
            for h in handles {
                let (finished, m) = h.join().expect("cube rollup worker panicked");
                regions.extend(finished);
                merges += m;
            }
        });
    }
    (regions, merges)
}

/// Run the CUBE pass over fact data with default [`Parallelism`].
pub fn cube_pass(space: &RegionSpace, input: &CubeInput) -> CubeResult {
    cube_pass_with(space, input, Parallelism::default(), None)
}

/// Run the CUBE pass with an explicit thread budget and optional
/// counters. The result is bit-identical for every `Parallelism`.
///
/// `CubeStats` implements `Recorder` (counters only), so this is a thin
/// shim over [`cube_pass_traced`] — both entry points share one
/// instrumentation path.
pub fn cube_pass_with(
    space: &RegionSpace,
    input: &CubeInput,
    par: Parallelism,
    stats: Option<&CubeStats>,
) -> CubeResult {
    match stats {
        Some(st) => cube_pass_traced(space, input, par, st),
        None => cube_pass_traced(space, input, par, &NoopRecorder),
    }
}

/// Run the CUBE pass reporting into a [`Recorder`]: phase counters under
/// the canonical `cube_pass/*` names plus one span per phase
/// (`phase1_scan`, `phase1_merge`, `phase2_rollup`). With a disabled
/// recorder (e.g. [`NoopRecorder`]) the kernel pays one branch per phase
/// and nothing per row; the result is bit-identical either way.
pub fn cube_pass_traced(
    space: &RegionSpace,
    input: &CubeInput,
    par: Parallelism,
    rec: &dyn Recorder,
) -> CubeResult {
    let n = input.item_ids.len();
    let arity = space.arity();
    assert_eq!(input.coords.len(), n * arity, "coords length mismatch");
    for m in &input.measures {
        m.check_len(n);
    }

    let measure_names: Vec<String> = input.measures.iter().map(|m| m.name().to_string()).collect();
    if n == 0 {
        return CubeResult {
            measure_names,
            regions: HashMap::new(),
        };
    }
    let Some(ks) = KeySpace::build(space, &input.item_ids) else {
        // Key space too large for dense u64 encoding — use the
        // tuple-keyed reference kernel.
        return cube_pass_reference(space, input);
    };

    let threads = par.threads_for(n.div_ceil(ROW_CHUNK));

    // Phase 1a: chunked base-cell aggregation.
    let key_of = |row: usize, coords: &[u32]| -> Option<u64> {
        for (d, (&c, &nv)) in coords.iter().zip(&ks.num_values).enumerate() {
            assert!((c as u64) < nv, "coordinate {c} out of range on dimension {d}");
        }
        let item_idx = ks.item_index[&input.item_ids[row]];
        Some(ks.cell_key(coords) * ks.n_items + item_idx as u64)
    };
    let tables = {
        let _t = span!(rec, "cube_pass/phase1_scan");
        scan_chunks(input, arity, threads, &key_of)
    };

    // Phase 1b: merge chunks into key-range shards.
    let (shards, merges_1b) = {
        let _t = span!(rec, "cube_pass/phase1_merge");
        merge_chunks(&tables, ks.cell_space * ks.n_items, threads)
    };
    drop(tables);
    let base_cells: u64 = shards.iter().map(|s| s.len() as u64).sum();

    // Phase 2: rollup expansion.
    let (regions, merges_2) = {
        let _t = span!(rec, "cube_pass/phase2_rollup");
        expand_rollup(space, &ks, &shards, threads, None)
    };

    rec.add(names::CUBE_PASS_ROWS_SCANNED, n as u64);
    rec.add(names::CUBE_PASS_BASE_CELLS, base_cells);
    rec.add(names::CUBE_PASS_CELL_MERGES, merges_1b + merges_2);
    rec.add(names::CUBE_PASS_REGIONS_EMITTED, regions.len() as u64);
    CubeResult {
        measure_names,
        regions,
    }
}

/// The original tuple-keyed, single-threaded CUBE pass, retained as the
/// differential-testing reference and as the fallback when the dense
/// key encoding would overflow a `u64`.
///
/// Unlike [`cube_pass`], its phase-2 merge order follows hash-map
/// iteration, so floating-point aggregates are only reproducible when
/// the arithmetic is exact (e.g. integer-valued sums).
pub fn cube_pass_reference(space: &RegionSpace, input: &CubeInput) -> CubeResult {
    let n = input.item_ids.len();
    let arity = space.arity();
    assert_eq!(input.coords.len(), n * arity, "coords length mismatch");
    for m in &input.measures {
        m.check_len(n);
    }

    // Phase 1: base-cell aggregation keyed by (finest coords, item).
    let mut base: HashMap<(Vec<u32>, i64), Vec<CellState>> = HashMap::new();
    for row in 0..n {
        let coords = input.coords[row * arity..(row + 1) * arity].to_vec();
        let key = (coords, input.item_ids[row]);
        let states = base
            .entry(key)
            .or_insert_with(|| input.measures.iter().map(CellState::new).collect());
        for (state, measure) in states.iter_mut().zip(&input.measures) {
            state.update(measure, row);
        }
    }

    // Phase 2: expand base cells into all containing regions.
    let mut regions: HashMap<RegionId, HashMap<i64, Vec<CellState>>> = HashMap::new();
    for ((coords, item), states) in &base {
        for region in space.containing_regions(coords) {
            let items = regions.entry(region).or_default();
            match items.get_mut(item) {
                Some(existing) => {
                    for (a, b) in existing.iter_mut().zip(states) {
                        a.merge(b);
                    }
                }
                None => {
                    items.insert(*item, states.clone());
                }
            }
        }
    }

    // Finalize.
    let measure_names = input.measures.iter().map(|m| m.name().to_string()).collect();
    let regions = regions
        .into_iter()
        .map(|(r, items)| {
            let items = items
                .into_iter()
                .map(|(i, states)| (i, states.iter().map(CellState::finish).collect()))
                .collect();
            (r, items)
        })
        .collect();
    CubeResult {
        measure_names,
        regions,
    }
}

/// Aggregate the measures per item over the fact rows whose finest-cell
/// coordinates pass `row_filter`, with no cube expansion, using default
/// [`Parallelism`].
///
/// This evaluates the same feature queries over an *arbitrary* union of
/// cells — the shape the random-sampling baseline of Figure 7(a) buys,
/// which "may not correspond to any OLAP-style region".
pub fn aggregate_filtered(
    input: &CubeInput,
    arity: usize,
    row_filter: impl Fn(&[u32]) -> bool + Sync,
) -> HashMap<i64, Vec<Option<f64>>> {
    aggregate_filtered_with(input, arity, row_filter, Parallelism::default(), None)
}

/// [`aggregate_filtered`] with an explicit thread budget and optional
/// counters. Runs on the same chunked phase-1 kernel as [`cube_pass`]
/// (keyed by dense item index alone), so it inherits the bit-identical
/// determinism guarantee.
pub fn aggregate_filtered_with(
    input: &CubeInput,
    arity: usize,
    row_filter: impl Fn(&[u32]) -> bool + Sync,
    par: Parallelism,
    stats: Option<&CubeStats>,
) -> HashMap<i64, Vec<Option<f64>>> {
    match stats {
        Some(st) => aggregate_filtered_traced(input, arity, row_filter, par, st),
        None => aggregate_filtered_traced(input, arity, row_filter, par, &NoopRecorder),
    }
}

/// [`aggregate_filtered_with`] reporting into a [`Recorder`] (same
/// `cube_pass/*` counter names; the scan+merge is timed under the
/// `cube_pass/phase1_scan` and `cube_pass/phase1_merge` spans).
pub fn aggregate_filtered_traced(
    input: &CubeInput,
    arity: usize,
    row_filter: impl Fn(&[u32]) -> bool + Sync,
    par: Parallelism,
    rec: &dyn Recorder,
) -> HashMap<i64, Vec<Option<f64>>> {
    let n = input.item_ids.len();
    assert_eq!(input.coords.len(), n * arity, "coords length mismatch");
    for m in &input.measures {
        m.check_len(n);
    }
    if n == 0 {
        return HashMap::new();
    }

    let mut items: Vec<i64> = input.item_ids.clone();
    items.sort_unstable();
    items.dedup();
    let item_index: FxMap<i64, u64> = items
        .iter()
        .enumerate()
        .map(|(i, &id)| (id, i as u64))
        .collect();

    let threads = par.threads_for(n.div_ceil(ROW_CHUNK));
    let key_of = |row: usize, coords: &[u32]| -> Option<u64> {
        row_filter(coords).then(|| item_index[&input.item_ids[row]])
    };
    let tables = {
        let _t = span!(rec, "cube_pass/phase1_scan");
        scan_chunks(input, arity, threads, &key_of)
    };
    let (shards, merges) = {
        let _t = span!(rec, "cube_pass/phase1_merge");
        merge_chunks(&tables, items.len() as u64, threads)
    };
    let base_cells: u64 = shards.iter().map(|s| s.len() as u64).sum();
    rec.add(names::CUBE_PASS_ROWS_SCANNED, n as u64);
    rec.add(names::CUBE_PASS_BASE_CELLS, base_cells);
    rec.add(names::CUBE_PASS_CELL_MERGES, merges);
    let mut out = HashMap::new();
    for t in &shards {
        for (i, &k) in t.keys.iter().enumerate() {
            out.insert(
                items[k as usize],
                t.cols.iter().map(|c| c.finish_at(i)).collect(),
            );
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::dimension::{Dimension, Hierarchy};

    fn space() -> RegionSpace {
        let mut loc = Hierarchy::new("Loc", "All");
        let us = loc.add_child(0, "US");
        loc.add_child(us, "WI"); // id 2
        loc.add_child(us, "MD"); // id 3
        RegionSpace::new(vec![
            Dimension::Interval {
                name: "Time".into(),
                max_t: 2,
            },
            Dimension::Hierarchy(loc),
        ])
    }

    /// Four fact rows:
    ///   (item 1, t1, WI, profit 10, ad 7→size 3.0)
    ///   (item 1, t2, WI, profit 20, ad 7→size 3.0)   -- same ad twice
    ///   (item 1, t1, MD, profit  5, ad 8→size 9.0)
    ///   (item 2, t2, MD, profit  1, no ad)
    fn input() -> CubeInput {
        CubeInput {
            item_ids: vec![1, 1, 1, 2],
            coords: vec![0, 2, 1, 2, 0, 3, 1, 3],
            measures: vec![
                Measure::Numeric {
                    name: "profit".into(),
                    func: AggFunc::Sum,
                    values: vec![Some(10.0), Some(20.0), Some(5.0), Some(1.0)],
                },
                Measure::Numeric {
                    name: "orders".into(),
                    func: AggFunc::Count,
                    values: vec![Some(1.0), Some(1.0), Some(1.0), Some(1.0)],
                },
                Measure::DistinctKeyed {
                    name: "ad_size_total".into(),
                    func: AggFunc::Sum,
                    keys: vec![Some(7), Some(7), Some(8), None],
                    values: vec![3.0, 3.0, 9.0, 0.0],
                },
            ],
        }
    }

    fn get(result: &CubeResult, r: Vec<u32>, item: i64) -> Vec<Option<f64>> {
        result
            .features(&RegionId(r), item)
            .cloned()
            .unwrap_or_else(|| panic!("missing cell"))
    }

    #[test]
    fn sums_roll_up_over_time_and_space() {
        let r = cube_pass(&space(), &input());
        // [1-1, WI] item 1: only the first row
        assert_eq!(get(&r, vec![0, 2], 1)[0], Some(10.0));
        // [1-2, WI] item 1: rows 1+2
        assert_eq!(get(&r, vec![1, 2], 1)[0], Some(30.0));
        // [1-2, US] item 1: all three rows
        assert_eq!(get(&r, vec![1, 1], 1)[0], Some(35.0));
        // [1-2, All] item 2
        assert_eq!(get(&r, vec![1, 0], 2)[0], Some(1.0));
        // counts
        assert_eq!(get(&r, vec![1, 1], 1)[1], Some(3.0));
    }

    #[test]
    fn distinct_fk_deduplicates_across_cells() {
        let r = cube_pass(&space(), &input());
        // [1-2, WI] item 1: ad 7 appears twice but counts once → 3.0
        assert_eq!(get(&r, vec![1, 2], 1)[2], Some(3.0));
        // [1-2, US] item 1: ads {7, 8} → 3 + 9 = 12
        assert_eq!(get(&r, vec![1, 1], 1)[2], Some(12.0));
        // item 2 has no ads → NULL
        assert_eq!(get(&r, vec![1, 0], 2)[2], None);
    }

    #[test]
    fn coverage_counts() {
        let r = cube_pass(&space(), &input());
        assert_eq!(r.coverage_count(&RegionId(vec![1, 0])), 2); // both items
        assert_eq!(r.coverage_count(&RegionId(vec![0, 2])), 1); // only item 1
    }

    #[test]
    fn coverage_t1_excludes_late_items() {
        let r = cube_pass(&space(), &input());
        // [1-1, All]: item 2's only row is at t2
        assert_eq!(r.coverage_count(&RegionId(vec![0, 0])), 1);
    }

    #[test]
    fn absent_cells_are_none() {
        let r = cube_pass(&space(), &input());
        assert!(r.features(&RegionId(vec![0, 3]), 2).is_none()); // item 2 not in [1-1, MD]
        assert_eq!(r.coverage_count(&RegionId(vec![99, 99])), 0);
    }

    #[test]
    fn min_max_avg_states() {
        let s = space();
        let inp = CubeInput {
            item_ids: vec![1, 1, 1],
            coords: vec![0, 2, 1, 2, 1, 3],
            measures: vec![
                Measure::Numeric {
                    name: "mn".into(),
                    func: AggFunc::Min,
                    values: vec![Some(5.0), Some(2.0), None],
                },
                Measure::Numeric {
                    name: "mx".into(),
                    func: AggFunc::Max,
                    values: vec![Some(5.0), Some(2.0), None],
                },
                Measure::Numeric {
                    name: "av".into(),
                    func: AggFunc::Avg,
                    values: vec![Some(5.0), Some(2.0), None],
                },
            ],
        };
        let r = cube_pass(&s, &inp);
        let v = get(&r, vec![1, 0], 1); // [1-2, All]
        assert_eq!(v[0], Some(2.0));
        assert_eq!(v[1], Some(5.0));
        assert_eq!(v[2], Some(3.5));
        // the all-NULL cell [1-2, MD] row only: min/max/avg = NULL
        let v2 = get(&r, vec![1, 3], 1);
        assert_eq!(v2[0], None);
        assert_eq!(v2[2], None);
    }

    #[test]
    fn count_distinct_counts_keys() {
        let s = space();
        let inp = CubeInput {
            item_ids: vec![1, 1],
            coords: vec![0, 2, 0, 3],
            measures: vec![Measure::DistinctKeyed {
                name: "n_ads".into(),
                func: AggFunc::CountDistinct,
                keys: vec![Some(4), Some(4)],
                values: vec![0.0, 0.0],
            }],
        };
        let r = cube_pass(&s, &inp);
        assert_eq!(get(&r, vec![0, 1], 1)[0], Some(1.0)); // US: same ad in both states
    }

    #[test]
    fn filtered_aggregation_matches_cube_cell() {
        let s = space();
        let inp = input();
        // Filter = the region [1-2, US]: time ≤ 1 (always true here) and
        // location under US (nodes 2 or 3).
        let filtered = aggregate_filtered(&inp, 2, |c| c[0] <= 1 && (c[1] == 2 || c[1] == 3));
        let cube = cube_pass(&s, &inp);
        let want = cube.features(&RegionId(vec![1, 1]), 1).unwrap();
        assert_eq!(filtered.get(&1).unwrap(), want);
    }

    #[test]
    fn filtered_aggregation_empty_filter() {
        let filtered = aggregate_filtered(&input(), 2, |_| false);
        assert!(filtered.is_empty());
    }

    #[test]
    #[should_panic(expected = "length mismatch")]
    fn shape_mismatch_panics() {
        let s = space();
        let inp = CubeInput {
            item_ids: vec![1],
            coords: vec![0], // should be 2 coords
            measures: vec![],
        };
        cube_pass(&s, &inp);
    }

    fn assert_results_identical(a: &CubeResult, b: &CubeResult) {
        assert_eq!(a.measure_names, b.measure_names);
        assert_eq!(a.regions.len(), b.regions.len());
        for (region, items) in &a.regions {
            let other = b.regions.get(region).expect("region missing");
            assert_eq!(items.len(), other.len(), "item count in {region:?}");
            for (item, values) in items {
                let ov = other.get(item).expect("item missing");
                assert_eq!(values.len(), ov.len());
                for (x, y) in values.iter().zip(ov) {
                    match (x, y) {
                        (None, None) => {}
                        (Some(a), Some(b)) => {
                            assert_eq!(a.to_bits(), b.to_bits(), "bits differ in {region:?}")
                        }
                        _ => panic!("NULL mismatch in {region:?} item {item}"),
                    }
                }
            }
        }
    }

    #[test]
    fn thread_count_never_changes_bits() {
        let s = space();
        let inp = input();
        let base = cube_pass_with(&s, &inp, Parallelism::sequential(), None);
        for t in 2..=8 {
            let par = cube_pass_with(&s, &inp, Parallelism::fixed(t), None);
            assert_results_identical(&base, &par);
        }
    }

    #[test]
    fn matches_reference_kernel() {
        let s = space();
        let inp = input(); // integer-valued, so the reference is exact
        let fast = cube_pass(&s, &inp);
        let reference = cube_pass_reference(&s, &inp);
        assert_results_identical(&fast, &reference);
    }

    #[test]
    fn sparse_key_space_matches_reference() {
        // Two interval dimensions whose combined key space exceeds
        // DENSE_SLOTS_MAX force the hash-indexed phase-1b merge path.
        // Coordinates sit near the top of each interval so every cell
        // expands into only a few regions.
        let max_t = 1200u32; // 1200 × 1200 × 2 items > 2^20 keys
        let s = RegionSpace::new(vec![
            Dimension::Interval {
                name: "T1".into(),
                max_t,
            },
            Dimension::Interval {
                name: "T2".into(),
                max_t,
            },
        ]);
        let (a, b) = (max_t - 2, max_t - 1);
        let inp = CubeInput {
            item_ids: vec![1, 2, 1, 1],
            coords: vec![a, b, a, a, b, b, a, b],
            measures: vec![
                Measure::Numeric {
                    name: "s".into(),
                    func: AggFunc::Sum,
                    // Exactly representable sums in any order, so the
                    // reference comparison is bitwise.
                    values: vec![Some(0.5), Some(2.0), Some(4.0), Some(0.25)],
                },
                Measure::Numeric {
                    name: "m".into(),
                    func: AggFunc::Min,
                    values: vec![Some(3.0), None, Some(1.0), Some(5.0)],
                },
            ],
        };
        let reference = cube_pass_reference(&s, &inp);
        for t in 1..=4 {
            let fast = cube_pass_with(&s, &inp, Parallelism::fixed(t), None);
            assert_results_identical(&fast, &reference);
        }
    }

    #[test]
    fn huge_item_domain_matches_reference() {
        // More distinct items than DENSE_ITEMS_MAX forces the
        // (region, item)-keyed rollup fallback. One fact row per item,
        // so every aggregate is exact and the reference is bitwise.
        let n = (DENSE_ITEMS_MAX + 2) as usize;
        let s = RegionSpace::new(vec![Dimension::Interval {
            name: "Time".into(),
            max_t: 2,
        }]);
        let inp = CubeInput {
            item_ids: (0..n as i64).collect(),
            coords: (0..n).map(|i| (i % 2) as u32).collect(),
            measures: vec![Measure::Numeric {
                name: "s".into(),
                func: AggFunc::Sum,
                values: (0..n).map(|i| Some(i as f64 * 0.5)).collect(),
            }],
        };
        let reference = cube_pass_reference(&s, &inp);
        for t in [1usize, 3] {
            let fast = cube_pass_with(&s, &inp, Parallelism::fixed(t), None);
            assert_results_identical(&fast, &reference);
        }
    }

    #[test]
    fn empty_input_yields_empty_result() {
        let s = space();
        let inp = CubeInput {
            item_ids: vec![],
            coords: vec![],
            measures: vec![Measure::Numeric {
                name: "m".into(),
                func: AggFunc::Sum,
                values: vec![],
            }],
        };
        let r = cube_pass(&s, &inp);
        assert_eq!(r.measure_names, vec!["m".to_string()]);
        assert!(r.regions.is_empty());
    }

    #[test]
    fn stats_counters_are_recorded() {
        let s = space();
        let inp = input();
        let stats = CubeStats::shared();
        let r = cube_pass_with(&s, &inp, Parallelism::fixed(2), Some(&stats));
        let snap = stats.snapshot();
        assert_eq!(snap.rows_scanned(), 4);
        // 4 rows in 4 distinct (cell, item) combinations → no phase-1
        // merges, 4 base cells.
        assert_eq!(snap.base_cells(), 4);
        assert_eq!(snap.regions_emitted(), r.regions.len() as u64);
        assert!(snap.cell_merges() > 0); // rollup merges cells
    }

    #[test]
    fn traced_records_spans_and_matches_cube_stats() {
        let s = space();
        let inp = input();
        let reg = bellwether_obs::Registry::shared();
        let r = cube_pass_traced(&s, &inp, Parallelism::fixed(2), reg.as_ref());
        let stats = CubeStats::shared();
        let legacy = cube_pass_with(&s, &inp, Parallelism::fixed(2), Some(&stats));
        assert_results_identical(&r, &legacy);
        let snap = reg.snapshot();
        let legacy_snap = stats.snapshot();
        assert_eq!(snap.rows_scanned(), legacy_snap.rows_scanned());
        assert_eq!(snap.base_cells(), legacy_snap.base_cells());
        assert_eq!(snap.cell_merges(), legacy_snap.cell_merges());
        assert_eq!(snap.regions_emitted(), legacy_snap.regions_emitted());
        for phase in ["phase1_scan", "phase1_merge", "phase2_rollup"] {
            let span = snap
                .span(&format!("cube_pass/{phase}"))
                .unwrap_or_else(|| panic!("missing span {phase}"));
            assert_eq!(span.calls, 1);
        }
    }

    #[test]
    fn filtered_aggregation_stats_and_threads() {
        let inp = input();
        let stats = CubeStats::shared();
        let seq = aggregate_filtered_with(
            &inp,
            2,
            |c| c[1] == 2 || c[1] == 3,
            Parallelism::sequential(),
            None,
        );
        let par = aggregate_filtered_with(
            &inp,
            2,
            |c| c[1] == 2 || c[1] == 3,
            Parallelism::fixed(4),
            Some(&stats),
        );
        assert_eq!(seq.len(), par.len());
        for (item, values) in &seq {
            assert_eq!(par.get(item), Some(values));
        }
        let snap = stats.snapshot();
        assert_eq!(snap.rows_scanned(), 4);
        assert_eq!(snap.base_cells(), 2); // two items survive the filter
    }
}
