//! The CUBE pass (§4.2): compute every `(region, item)` aggregate in one
//! sweep over the fact data.
//!
//! The paper rewrites each feature query `α_f σ_{ID=i, Z∈r} F` into a
//! single grouped aggregation `α_{Z, ID, f} F` whose aggregate operator
//! "performs the CUBE operation on the dimension attributes". We realise
//! it in two phases:
//!
//! 1. **Base aggregation** — fact rows collapse into *base cells* keyed
//!    by (finest dimension coordinates, item). This is an ordinary
//!    group-by and shrinks the data from `#rows` to at most
//!    `#items × #finest-cells`.
//! 2. **Rollup expansion** — each base cell is merged into every region
//!    that contains it (the cartesian product of per-dimension
//!    ancestors). All numeric aggregates here are distributive; the
//!    distinct-FK form keeps the key→value map so set-union dedups
//!    exactly as `π_FK` requires.
//!
//! The result maps every region to its per-item feature vectors, plus
//! coverage counts — everything basic bellwether search needs.

use crate::region::{RegionId, RegionSpace};
use bellwether_table::ops::AggFunc;
use std::collections::HashMap;

/// One measure (feature column) to compute per `(region, item)`.
#[derive(Debug, Clone)]
pub enum Measure {
    /// `α_f(column)` over the fact rows of the cell: the paper's first
    /// two query forms (`f(F.A)` and `f(T.A)` after a fact-side join,
    /// which the caller performs by materialising the joined column).
    /// `func` must be Sum, Min, Max, Avg or Count.
    Numeric {
        /// Output feature name.
        name: String,
        /// Aggregate function.
        func: AggFunc,
        /// Per-fact-row input; `None` = SQL NULL (skipped).
        values: Vec<Option<f64>>,
    },
    /// `α_f(T.A)((π_FK F) ⋈ T)`: aggregate over *distinct* foreign keys,
    /// each key contributing its (functional) reference-table value once.
    /// `func` may be Sum, Min, Max, Avg or CountDistinct.
    DistinctKeyed {
        /// Output feature name.
        name: String,
        /// Aggregate function over the distinct keys' values.
        func: AggFunc,
        /// Per-fact-row foreign key; `None` never joins.
        keys: Vec<Option<i64>>,
        /// Per-fact-row joined value `T.A` (ignored for CountDistinct).
        values: Vec<f64>,
    },
}

impl Measure {
    /// Output feature name.
    pub fn name(&self) -> &str {
        match self {
            Measure::Numeric { name, .. } | Measure::DistinctKeyed { name, .. } => name,
        }
    }

    fn check_len(&self, n: usize) {
        let len = match self {
            Measure::Numeric { values, .. } => values.len(),
            Measure::DistinctKeyed { keys, .. } => keys.len(),
        };
        assert_eq!(len, n, "measure {} length mismatch", self.name());
    }
}

/// Fact-side input to the CUBE pass.
#[derive(Debug, Clone)]
pub struct CubeInput {
    /// Item id per fact row.
    pub item_ids: Vec<i64>,
    /// Flattened `n × arity` finest-grained coordinates per fact row
    /// (time points 0-based, hierarchy leaf node ids).
    pub coords: Vec<u32>,
    /// The measures to aggregate.
    pub measures: Vec<Measure>,
}

/// Mergeable per-cell state of one measure.
#[derive(Debug, Clone)]
enum CellState {
    Sum { total: f64, seen: bool },
    Count(u64),
    Avg { total: f64, count: u64 },
    Min(Option<f64>),
    Max(Option<f64>),
    Distinct { func: AggFunc, keys: HashMap<i64, f64> },
}

impl CellState {
    fn new(measure: &Measure) -> CellState {
        match measure {
            Measure::Numeric { func, .. } => match func {
                AggFunc::Sum => CellState::Sum {
                    total: 0.0,
                    seen: false,
                },
                AggFunc::Count => CellState::Count(0),
                AggFunc::Avg => CellState::Avg {
                    total: 0.0,
                    count: 0,
                },
                AggFunc::Min => CellState::Min(None),
                AggFunc::Max => CellState::Max(None),
                AggFunc::CountDistinct => {
                    panic!("CountDistinct requires Measure::DistinctKeyed")
                }
            },
            Measure::DistinctKeyed { func, .. } => CellState::Distinct {
                func: *func,
                keys: HashMap::new(),
            },
        }
    }

    fn update(&mut self, measure: &Measure, row: usize) {
        match (self, measure) {
            (CellState::Sum { total, seen }, Measure::Numeric { values, .. }) => {
                if let Some(v) = values[row] {
                    *total += v;
                    *seen = true;
                }
            }
            (CellState::Count(c), Measure::Numeric { values, .. }) => {
                if values[row].is_some() {
                    *c += 1;
                }
            }
            (CellState::Avg { total, count }, Measure::Numeric { values, .. }) => {
                if let Some(v) = values[row] {
                    *total += v;
                    *count += 1;
                }
            }
            (CellState::Min(best), Measure::Numeric { values, .. }) => {
                if let Some(v) = values[row] {
                    *best = Some(best.map_or(v, |b| b.min(v)));
                }
            }
            (CellState::Max(best), Measure::Numeric { values, .. }) => {
                if let Some(v) = values[row] {
                    *best = Some(best.map_or(v, |b| b.max(v)));
                }
            }
            (CellState::Distinct { keys, .. }, Measure::DistinctKeyed { keys: ks, values, .. }) => {
                if let Some(k) = ks[row] {
                    keys.insert(k, values[row]);
                }
            }
            _ => unreachable!("state/measure kind mismatch"),
        }
    }

    fn merge(&mut self, other: &CellState) {
        match (self, other) {
            (CellState::Sum { total, seen }, CellState::Sum { total: t2, seen: s2 }) => {
                *total += t2;
                *seen |= s2;
            }
            (CellState::Count(a), CellState::Count(b)) => *a += b,
            (
                CellState::Avg { total, count },
                CellState::Avg {
                    total: t2,
                    count: c2,
                },
            ) => {
                *total += t2;
                *count += c2;
            }
            (CellState::Min(a), CellState::Min(b)) => {
                if let Some(bv) = b {
                    *a = Some(a.map_or(*bv, |av| av.min(*bv)));
                }
            }
            (CellState::Max(a), CellState::Max(b)) => {
                if let Some(bv) = b {
                    *a = Some(a.map_or(*bv, |av| av.max(*bv)));
                }
            }
            (CellState::Distinct { keys, .. }, CellState::Distinct { keys: k2, .. }) => {
                for (k, v) in k2 {
                    keys.insert(*k, *v);
                }
            }
            _ => unreachable!("merging mismatched states"),
        }
    }

    fn finish(&self) -> Option<f64> {
        match self {
            CellState::Sum { total, seen } => seen.then_some(*total),
            CellState::Count(c) => Some(*c as f64),
            CellState::Avg { total, count } => (*count > 0).then(|| total / *count as f64),
            CellState::Min(v) | CellState::Max(v) => *v,
            CellState::Distinct { func, keys } => {
                if *func == AggFunc::CountDistinct {
                    return Some(keys.len() as f64);
                }
                if keys.is_empty() {
                    return None;
                }
                let vals = keys.values();
                Some(match func {
                    AggFunc::Sum => vals.sum(),
                    AggFunc::Avg => vals.sum::<f64>() / keys.len() as f64,
                    AggFunc::Min => vals.fold(f64::INFINITY, |a, &b| a.min(b)),
                    AggFunc::Max => vals.fold(f64::NEG_INFINITY, |a, &b| a.max(b)),
                    AggFunc::Count | AggFunc::CountDistinct => unreachable!(),
                })
            }
        }
    }
}

/// Per-region, per-item aggregate vectors produced by [`cube_pass`].
#[derive(Debug, Clone)]
pub struct CubeResult {
    /// Feature names, in measure order.
    pub measure_names: Vec<String>,
    /// `region → item → feature values` (`None` = NULL aggregate).
    pub regions: HashMap<RegionId, HashMap<i64, Vec<Option<f64>>>>,
}

impl CubeResult {
    /// Number of distinct items with data in `r` (the coverage
    /// numerator `|I_r|`).
    pub fn coverage_count(&self, r: &RegionId) -> usize {
        self.regions.get(r).map_or(0, HashMap::len)
    }

    /// The feature vector of `item` in region `r`, if the item has data.
    pub fn features(&self, r: &RegionId, item: i64) -> Option<&Vec<Option<f64>>> {
        self.regions.get(r)?.get(&item)
    }

    /// Coverage counts for every region (input to iceberg pruning).
    pub fn coverage_counts(&self) -> HashMap<RegionId, usize> {
        self.regions
            .iter()
            .map(|(r, items)| (r.clone(), items.len()))
            .collect()
    }
}

/// Run the CUBE pass over fact data.
pub fn cube_pass(space: &RegionSpace, input: &CubeInput) -> CubeResult {
    let n = input.item_ids.len();
    let arity = space.arity();
    assert_eq!(input.coords.len(), n * arity, "coords length mismatch");
    for m in &input.measures {
        m.check_len(n);
    }

    // Phase 1: base-cell aggregation keyed by (finest coords, item).
    let mut base: HashMap<(Vec<u32>, i64), Vec<CellState>> = HashMap::new();
    for row in 0..n {
        let coords = input.coords[row * arity..(row + 1) * arity].to_vec();
        let key = (coords, input.item_ids[row]);
        let states = base
            .entry(key)
            .or_insert_with(|| input.measures.iter().map(CellState::new).collect());
        for (state, measure) in states.iter_mut().zip(&input.measures) {
            state.update(measure, row);
        }
    }

    // Phase 2: expand base cells into all containing regions.
    let mut regions: HashMap<RegionId, HashMap<i64, Vec<CellState>>> = HashMap::new();
    for ((coords, item), states) in &base {
        for region in space.containing_regions(coords) {
            let items = regions.entry(region).or_default();
            match items.get_mut(item) {
                Some(existing) => {
                    for (a, b) in existing.iter_mut().zip(states) {
                        a.merge(b);
                    }
                }
                None => {
                    items.insert(*item, states.clone());
                }
            }
        }
    }

    // Finalize.
    let measure_names = input.measures.iter().map(|m| m.name().to_string()).collect();
    let regions = regions
        .into_iter()
        .map(|(r, items)| {
            let items = items
                .into_iter()
                .map(|(i, states)| (i, states.iter().map(CellState::finish).collect()))
                .collect();
            (r, items)
        })
        .collect();
    CubeResult {
        measure_names,
        regions,
    }
}

/// Aggregate the measures per item over the fact rows whose finest-cell
/// coordinates pass `row_filter`, with no cube expansion.
///
/// This evaluates the same feature queries over an *arbitrary* union of
/// cells — the shape the random-sampling baseline of Figure 7(a) buys,
/// which "may not correspond to any OLAP-style region".
pub fn aggregate_filtered(
    input: &CubeInput,
    arity: usize,
    mut row_filter: impl FnMut(&[u32]) -> bool,
) -> HashMap<i64, Vec<Option<f64>>> {
    let n = input.item_ids.len();
    assert_eq!(input.coords.len(), n * arity, "coords length mismatch");
    for m in &input.measures {
        m.check_len(n);
    }
    let mut items: HashMap<i64, Vec<CellState>> = HashMap::new();
    for row in 0..n {
        let coords = &input.coords[row * arity..(row + 1) * arity];
        if !row_filter(coords) {
            continue;
        }
        let states = items
            .entry(input.item_ids[row])
            .or_insert_with(|| input.measures.iter().map(CellState::new).collect());
        for (state, measure) in states.iter_mut().zip(&input.measures) {
            state.update(measure, row);
        }
    }
    items
        .into_iter()
        .map(|(i, states)| (i, states.iter().map(CellState::finish).collect()))
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::dimension::{Dimension, Hierarchy};

    fn space() -> RegionSpace {
        let mut loc = Hierarchy::new("Loc", "All");
        let us = loc.add_child(0, "US");
        loc.add_child(us, "WI"); // id 2
        loc.add_child(us, "MD"); // id 3
        RegionSpace::new(vec![
            Dimension::Interval {
                name: "Time".into(),
                max_t: 2,
            },
            Dimension::Hierarchy(loc),
        ])
    }

    /// Four fact rows:
    ///   (item 1, t1, WI, profit 10, ad 7→size 3.0)
    ///   (item 1, t2, WI, profit 20, ad 7→size 3.0)   -- same ad twice
    ///   (item 1, t1, MD, profit  5, ad 8→size 9.0)
    ///   (item 2, t2, MD, profit  1, no ad)
    fn input() -> CubeInput {
        CubeInput {
            item_ids: vec![1, 1, 1, 2],
            coords: vec![0, 2, 1, 2, 0, 3, 1, 3],
            measures: vec![
                Measure::Numeric {
                    name: "profit".into(),
                    func: AggFunc::Sum,
                    values: vec![Some(10.0), Some(20.0), Some(5.0), Some(1.0)],
                },
                Measure::Numeric {
                    name: "orders".into(),
                    func: AggFunc::Count,
                    values: vec![Some(1.0), Some(1.0), Some(1.0), Some(1.0)],
                },
                Measure::DistinctKeyed {
                    name: "ad_size_total".into(),
                    func: AggFunc::Sum,
                    keys: vec![Some(7), Some(7), Some(8), None],
                    values: vec![3.0, 3.0, 9.0, 0.0],
                },
            ],
        }
    }

    fn get(result: &CubeResult, r: Vec<u32>, item: i64) -> Vec<Option<f64>> {
        result
            .features(&RegionId(r), item)
            .cloned()
            .unwrap_or_else(|| panic!("missing cell"))
    }

    #[test]
    fn sums_roll_up_over_time_and_space() {
        let r = cube_pass(&space(), &input());
        // [1-1, WI] item 1: only the first row
        assert_eq!(get(&r, vec![0, 2], 1)[0], Some(10.0));
        // [1-2, WI] item 1: rows 1+2
        assert_eq!(get(&r, vec![1, 2], 1)[0], Some(30.0));
        // [1-2, US] item 1: all three rows
        assert_eq!(get(&r, vec![1, 1], 1)[0], Some(35.0));
        // [1-2, All] item 2
        assert_eq!(get(&r, vec![1, 0], 2)[0], Some(1.0));
        // counts
        assert_eq!(get(&r, vec![1, 1], 1)[1], Some(3.0));
    }

    #[test]
    fn distinct_fk_deduplicates_across_cells() {
        let r = cube_pass(&space(), &input());
        // [1-2, WI] item 1: ad 7 appears twice but counts once → 3.0
        assert_eq!(get(&r, vec![1, 2], 1)[2], Some(3.0));
        // [1-2, US] item 1: ads {7, 8} → 3 + 9 = 12
        assert_eq!(get(&r, vec![1, 1], 1)[2], Some(12.0));
        // item 2 has no ads → NULL
        assert_eq!(get(&r, vec![1, 0], 2)[2], None);
    }

    #[test]
    fn coverage_counts() {
        let r = cube_pass(&space(), &input());
        assert_eq!(r.coverage_count(&RegionId(vec![1, 0])), 2); // both items
        assert_eq!(r.coverage_count(&RegionId(vec![0, 2])), 1); // only item 1
    }

    #[test]
    fn coverage_t1_excludes_late_items() {
        let r = cube_pass(&space(), &input());
        // [1-1, All]: item 2's only row is at t2
        assert_eq!(r.coverage_count(&RegionId(vec![0, 0])), 1);
    }

    #[test]
    fn absent_cells_are_none() {
        let r = cube_pass(&space(), &input());
        assert!(r.features(&RegionId(vec![0, 3]), 2).is_none()); // item 2 not in [1-1, MD]
        assert_eq!(r.coverage_count(&RegionId(vec![99, 99])), 0);
    }

    #[test]
    fn min_max_avg_states() {
        let s = space();
        let inp = CubeInput {
            item_ids: vec![1, 1, 1],
            coords: vec![0, 2, 1, 2, 1, 3],
            measures: vec![
                Measure::Numeric {
                    name: "mn".into(),
                    func: AggFunc::Min,
                    values: vec![Some(5.0), Some(2.0), None],
                },
                Measure::Numeric {
                    name: "mx".into(),
                    func: AggFunc::Max,
                    values: vec![Some(5.0), Some(2.0), None],
                },
                Measure::Numeric {
                    name: "av".into(),
                    func: AggFunc::Avg,
                    values: vec![Some(5.0), Some(2.0), None],
                },
            ],
        };
        let r = cube_pass(&s, &inp);
        let v = get(&r, vec![1, 0], 1); // [1-2, All]
        assert_eq!(v[0], Some(2.0));
        assert_eq!(v[1], Some(5.0));
        assert_eq!(v[2], Some(3.5));
        // the all-NULL cell [1-2, MD] row only: min/max/avg = NULL
        let v2 = get(&r, vec![1, 3], 1);
        assert_eq!(v2[0], None);
        assert_eq!(v2[2], None);
    }

    #[test]
    fn count_distinct_counts_keys() {
        let s = space();
        let inp = CubeInput {
            item_ids: vec![1, 1],
            coords: vec![0, 2, 0, 3],
            measures: vec![Measure::DistinctKeyed {
                name: "n_ads".into(),
                func: AggFunc::CountDistinct,
                keys: vec![Some(4), Some(4)],
                values: vec![0.0, 0.0],
            }],
        };
        let r = cube_pass(&s, &inp);
        assert_eq!(get(&r, vec![0, 1], 1)[0], Some(1.0)); // US: same ad in both states
    }

    #[test]
    fn filtered_aggregation_matches_cube_cell() {
        let s = space();
        let inp = input();
        // Filter = the region [1-2, US]: time ≤ 1 (always true here) and
        // location under US (nodes 2 or 3).
        let filtered = aggregate_filtered(&inp, 2, |c| c[0] <= 1 && (c[1] == 2 || c[1] == 3));
        let cube = cube_pass(&s, &inp);
        let want = cube.features(&RegionId(vec![1, 1]), 1).unwrap();
        assert_eq!(filtered.get(&1).unwrap(), want);
    }

    #[test]
    fn filtered_aggregation_empty_filter() {
        let filtered = aggregate_filtered(&input(), 2, |_| false);
        assert!(filtered.is_empty());
    }

    #[test]
    #[should_panic(expected = "length mismatch")]
    fn shape_mismatch_panics() {
        let s = space();
        let inp = CubeInput {
            item_ids: vec![1],
            coords: vec![0], // should be 2 coords
            measures: vec![],
        };
        cube_pass(&s, &inp);
    }
}
