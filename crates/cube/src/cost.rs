//! Cost models for data acquisition (the κ query of Definition 1).
//!
//! The paper assumes a cost table `C(Z, Cost)` over finest-grained
//! regions, with a larger region costing an aggregate (e.g. the sum) of
//! its cells; the mail-order experiment uses the product form
//! `months × zip_areas/100`. Both are *monotone*: a region containing
//! another never costs less. Monotonicity is what lets iceberg pruning
//! cut the search space, so the trait documents and tests it.

use crate::region::{RegionId, RegionSpace};
use std::collections::HashMap;

/// A cost model over candidate regions. Implementations must be monotone
/// w.r.t. region containment: `a ⊇ b ⇒ cost(a) ≥ cost(b)`.
///
/// `Send + Sync` so searches can evaluate regions from worker threads.
pub trait CostModel: Send + Sync {
    /// Cost of collecting data for a new item from region `r`.
    fn cost(&self, space: &RegionSpace, r: &RegionId) -> f64;
}

/// Uniform per-cell cost: `cost(r) = rate × (#finest cells in r)`.
#[derive(Debug, Clone)]
pub struct UniformCellCost {
    /// Cost of one finest-grained cell.
    pub rate: f64,
}

impl CostModel for UniformCellCost {
    fn cost(&self, space: &RegionSpace, r: &RegionId) -> f64 {
        self.rate * space.finest_cell_count(r) as f64
    }
}

/// Per-dimension-value weights multiplied together, the mail-order form:
/// `cost([1-m, loc]) = m × weight(loc)` with `weight` supplied per value
/// (e.g. zip-code areas / 100). Missing weights default to the number of
/// finest cells of the value.
#[derive(Debug, Clone, Default)]
pub struct ProductCost {
    /// `weights[d]` maps dimension `d`'s value id to its factor.
    pub weights: Vec<HashMap<u32, f64>>,
}

impl ProductCost {
    /// Product cost with explicit per-dimension weight tables.
    pub fn new(weights: Vec<HashMap<u32, f64>>) -> Self {
        ProductCost { weights }
    }
}

impl CostModel for ProductCost {
    fn cost(&self, space: &RegionSpace, r: &RegionId) -> f64 {
        space
            .dims()
            .iter()
            .enumerate()
            .map(|(d, dim)| {
                let v = r.coord(d);
                self.weights
                    .get(d)
                    .and_then(|w| w.get(&v))
                    .copied()
                    .unwrap_or_else(|| dim.finest_cell_count(v) as f64)
            })
            .product()
    }
}

/// Cell-sum cost from an explicit table over finest cells (the paper's
/// `α_sum(Cost) σ_{Z∈r} C`). Cells absent from the table cost `default`.
#[derive(Debug, Clone)]
pub struct CellTableCost {
    /// Cost per finest-grained cell, keyed by leaf coordinates.
    pub cells: HashMap<RegionId, f64>,
    /// Cost of unlisted cells.
    pub default: f64,
}

impl CostModel for CellTableCost {
    fn cost(&self, space: &RegionSpace, r: &RegionId) -> f64 {
        // Sum costs of the finest cells inside r by enumerating the
        // per-dimension leaf sets. Fine for the spaces we use (≤ 1e4 cells).
        let per_dim: Vec<Vec<u32>> = space
            .dims()
            .iter()
            .enumerate()
            .map(|(d, dim)| leaf_values_under(dim, r.coord(d)))
            .collect();
        let mut total = 0.0;
        let mut idx = vec![0usize; space.arity()];
        loop {
            let cell = RegionId(
                idx.iter()
                    .zip(&per_dim)
                    .map(|(&i, vals)| vals[i])
                    .collect(),
            );
            total += self.cells.get(&cell).copied().unwrap_or(self.default);
            let mut d = space.arity();
            loop {
                if d == 0 {
                    return total;
                }
                d -= 1;
                idx[d] += 1;
                if idx[d] < per_dim[d].len() {
                    break;
                }
                idx[d] = 0;
            }
        }
    }
}

/// Finest-cell coordinates covered by one dimension value.
fn leaf_values_under(dim: &crate::dimension::Dimension, value: u32) -> Vec<u32> {
    use crate::dimension::Dimension;
    match dim {
        Dimension::Interval { .. } => (0..=value).collect(),
        Dimension::Hierarchy(h) => {
            let mut out = Vec::new();
            let mut stack = vec![value];
            while let Some(n) = stack.pop() {
                if h.is_leaf(n) {
                    out.push(n);
                } else {
                    stack.extend_from_slice(h.children(n));
                }
            }
            out.sort_unstable();
            out
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::dimension::{Dimension, Hierarchy};

    fn space() -> RegionSpace {
        let mut loc = Hierarchy::new("Loc", "All");
        let us = loc.add_child(0, "US");
        loc.add_child(us, "WI");
        loc.add_child(us, "MD");
        loc.add_child(0, "KR");
        RegionSpace::new(vec![
            Dimension::Interval {
                name: "Time".into(),
                max_t: 3,
            },
            Dimension::Hierarchy(loc),
        ])
    }

    #[test]
    fn uniform_cost_counts_cells() {
        let s = space();
        let c = UniformCellCost { rate: 2.0 };
        // [1-2, US]: 2 points × 2 leaves = 4 cells → cost 8
        assert_eq!(c.cost(&s, &RegionId(vec![1, 1])), 8.0);
        assert_eq!(c.cost(&s, &RegionId(vec![0, 4])), 2.0);
    }

    #[test]
    fn product_cost_uses_weights_with_fallback() {
        let s = space();
        let mut loc_w = HashMap::new();
        loc_w.insert(2u32, 5.0); // WI weighs 5
        let c = ProductCost::new(vec![HashMap::new(), loc_w]);
        // time falls back to cell count (=2 for [1-2]); WI weight 5
        assert_eq!(c.cost(&s, &RegionId(vec![1, 2])), 10.0);
        // MD falls back to leaf count 1
        assert_eq!(c.cost(&s, &RegionId(vec![1, 3])), 2.0);
    }

    #[test]
    fn cell_table_cost_sums_cells() {
        let s = space();
        let mut cells = HashMap::new();
        cells.insert(RegionId(vec![0, 2]), 10.0); // (t=1, WI)
        cells.insert(RegionId(vec![1, 3]), 1.0); // (t=2, MD)
        let c = CellTableCost {
            cells,
            default: 0.5,
        };
        // [1-2, US] covers (t1,WI)(t1,MD)(t2,WI)(t2,MD) = 10 + .5 + .5 + 1
        assert_eq!(c.cost(&s, &RegionId(vec![1, 1])), 12.0);
    }

    #[test]
    fn costs_are_monotone_in_containment() {
        let s = space();
        let models: Vec<Box<dyn CostModel>> = vec![
            Box::new(UniformCellCost { rate: 1.0 }),
            Box::new(CellTableCost {
                cells: HashMap::new(),
                default: 1.0,
            }),
        ];
        let all = s.all_regions();
        for m in &models {
            for a in &all {
                for b in &all {
                    if s.contains(a, b) {
                        assert!(
                            m.cost(&s, a) >= m.cost(&s, b),
                            "cost not monotone: {:?} vs {:?}",
                            a,
                            b
                        );
                    }
                }
            }
        }
    }
}
