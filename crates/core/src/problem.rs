//! The bellwether problem definition (Definitions 1 and 2).

use crate::error::{BellwetherError, Result};
use crate::scan::ScanPolicy;
use bellwether_cube::Parallelism;
use bellwether_linreg::{ErrorEstimate, EvalScratch, RegressionData};
use bellwether_obs::{NoopRecorder, Recorder};
use std::sync::Arc;

/// How model error is estimated (§2).
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum ErrorMeasure {
    /// k-fold cross-validation RMSE (the paper uses k = 10).
    CrossValidation {
        /// Number of folds.
        folds: usize,
        /// Shuffle seed, fixed for reproducibility.
        seed: u64,
    },
    /// Training-set RMSE with `n − p` degrees of freedom. For linear
    /// models this closely tracks cross-validation (Fig. 7c) and is what
    /// makes the optimized cube's algebraic rollup possible.
    TrainingSet,
}

impl ErrorMeasure {
    /// The paper's default: 10-fold cross-validation.
    pub fn cv10() -> Self {
        ErrorMeasure::CrossValidation { folds: 10, seed: 0xBE11 }
    }

    /// Estimate the error of a WLS linear model on `data`. `None` when
    /// the data cannot support a model (too few examples).
    ///
    /// Convenience wrapper over [`ErrorMeasure::estimate_with`] that pays
    /// for a fresh [`EvalScratch`] per call; hot loops should hold a
    /// per-worker scratch and call `estimate_with` instead.
    pub fn estimate(&self, data: &RegressionData) -> Option<ErrorEstimate> {
        self.estimate_with(data, &mut EvalScratch::new())
    }

    /// Estimate through the algebraic error engine using caller-owned
    /// scratch: one statistics pass plus k downdated packed solves for
    /// cross-validation, one fit for training-set error — no dataset
    /// copies, and no heap allocation once `scratch` is warm. Values are
    /// bit-identical to the refit path (`cross_val_estimate` /
    /// `training_set_estimate`).
    pub fn estimate_with(
        &self,
        data: &RegressionData,
        scratch: &mut EvalScratch,
    ) -> Option<ErrorEstimate> {
        match *self {
            ErrorMeasure::CrossValidation { folds, seed } => {
                scratch.cv_estimate(data, folds, seed)
            }
            ErrorMeasure::TrainingSet => scratch.training_estimate(data),
        }
    }
}

/// Full configuration of a bellwether analysis run: the constrained
/// optimization criterion of Definition 1 plus estimation knobs.
#[derive(Debug, Clone)]
pub struct BellwetherConfig {
    /// Budget B: maximum acquisition cost of the chosen region.
    pub budget: f64,
    /// Coverage threshold C ∈ [0, 1]: minimum fraction of training items
    /// with data in the region.
    pub min_coverage: f64,
    /// Error measure.
    pub error_measure: ErrorMeasure,
    /// Minimum number of training examples a region must supply before a
    /// model is considered (guards meaningless fits; the cube's size
    /// threshold K plays the same role for item subsets).
    pub min_examples: usize,
    /// Thread budget shared by every parallel code path driven from this
    /// config (region evaluation, CUBE kernels). Results never depend on
    /// the chosen value — see the determinism policy in
    /// `bellwether_cube::parallel`.
    pub parallelism: Parallelism,
    /// Metrics sink every algorithm driven from this config reports into
    /// (search spans, per-level tree scans, cube-build counters). The
    /// default [`NoopRecorder`] costs one branch per phase; results are
    /// bit-identical whether or not recording is enabled.
    pub recorder: Arc<dyn Recorder>,
    /// How builders react to unreadable regions (corrupt or failing
    /// blocks): fail fast ([`ScanPolicy::Strict`], the default) or skip
    /// up to a budget with exact accounting of what was dropped
    /// ([`ScanPolicy::SkipUnreadable`]); skipped indices surface in each
    /// builder's result and under the `scan/regions_skipped` counter.
    pub scan_policy: ScanPolicy,
}

impl BellwetherConfig {
    /// Start building a config with budget `B` and the paper defaults:
    /// coverage ≥ 0.5, 10-fold CV, at least 10 examples, hardware
    /// parallelism (`BW_THREADS` overridable), no recorder.
    pub fn builder(budget: f64) -> BellwetherConfigBuilder {
        BellwetherConfigBuilder {
            budget,
            min_coverage: 0.5,
            error_measure: ErrorMeasure::cv10(),
            min_examples: 10,
            parallelism: Parallelism::default(),
            recorder: Arc::new(NoopRecorder),
            scan_policy: ScanPolicy::Strict,
        }
    }

}

/// Builder for [`BellwetherConfig`] with typed validation: invalid knob
/// combinations are rejected at [`BellwetherConfigBuilder::build`] time
/// with a `BellwetherError::Config` instead of surfacing as a confusing
/// empty search result later.
#[derive(Debug, Clone)]
pub struct BellwetherConfigBuilder {
    budget: f64,
    min_coverage: f64,
    error_measure: ErrorMeasure,
    min_examples: usize,
    parallelism: Parallelism,
    recorder: Arc<dyn Recorder>,
    scan_policy: ScanPolicy,
}

impl BellwetherConfigBuilder {
    /// Coverage threshold C ∈ [0, 1].
    pub fn min_coverage(mut self, c: f64) -> Self {
        self.min_coverage = c;
        self
    }

    /// Error measure (§2).
    pub fn error_measure(mut self, m: ErrorMeasure) -> Self {
        self.error_measure = m;
        self
    }

    /// Minimum example count before a region can fit a model (≥ 1).
    pub fn min_examples(mut self, n: usize) -> Self {
        self.min_examples = n;
        self
    }

    /// Thread budget for every parallel code path driven from the config.
    pub fn parallelism(mut self, p: Parallelism) -> Self {
        self.parallelism = p;
        self
    }

    /// Metrics sink (e.g. a shared `bellwether_obs::Registry`).
    pub fn recorder(mut self, r: Arc<dyn Recorder>) -> Self {
        self.recorder = r;
        self
    }

    /// Reaction to unreadable regions: fail fast (default) or skip up
    /// to a budget with exact accounting.
    pub fn scan_policy(mut self, p: ScanPolicy) -> Self {
        self.scan_policy = p;
        self
    }

    /// Validate and produce the config. Rejects non-positive or NaN
    /// budgets (`+inf` = unconstrained is fine), coverage outside
    /// `[0, 1]`, and `min_examples == 0`.
    pub fn build(self) -> Result<BellwetherConfig> {
        if self.budget.is_nan() || self.budget <= 0.0 {
            return Err(BellwetherError::Config(format!(
                "budget must be positive (or +inf for unconstrained), got {}",
                self.budget
            )));
        }
        if !(0.0..=1.0).contains(&self.min_coverage) {
            return Err(BellwetherError::Config(format!(
                "min_coverage must be in [0, 1], got {}",
                self.min_coverage
            )));
        }
        if self.min_examples == 0 {
            return Err(BellwetherError::Config(
                "min_examples must be at least 1".to_string(),
            ));
        }
        if let ErrorMeasure::CrossValidation { folds, .. } = self.error_measure {
            if folds < 2 {
                return Err(BellwetherError::Config(format!(
                    "cross-validation needs at least 2 folds, got {folds}"
                )));
            }
        }
        if self.parallelism.min_chunk == 0 {
            return Err(BellwetherError::Config(
                "parallelism.min_chunk must be at least 1".to_string(),
            ));
        }
        Ok(BellwetherConfig {
            budget: self.budget,
            min_coverage: self.min_coverage,
            error_measure: self.error_measure,
            min_examples: self.min_examples,
            parallelism: self.parallelism,
            recorder: self.recorder,
            scan_policy: self.scan_policy,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn line(n: usize) -> RegressionData {
        let mut d = RegressionData::new(2);
        for i in 0..n {
            d.push(&[1.0, i as f64], 5.0 + 2.0 * i as f64);
        }
        d
    }

    #[test]
    fn both_measures_agree_on_exact_data() {
        let d = line(100);
        let cv = ErrorMeasure::cv10().estimate(&d).unwrap();
        let tr = ErrorMeasure::TrainingSet.estimate(&d).unwrap();
        assert!(cv.value < 1e-6);
        assert!(tr.value < 1e-6);
    }

    #[test]
    fn degenerate_data_yields_none() {
        let d = line(1);
        assert!(ErrorMeasure::cv10().estimate(&d).is_none());
        assert!(ErrorMeasure::TrainingSet.estimate(&d).is_none());
    }

    #[test]
    fn engine_matches_refit_path_bitwise() {
        use bellwether_linreg::{cross_val_estimate, training_set_estimate, SplitMix64};
        let mut rng = SplitMix64::new(17);
        let mut d = RegressionData::new(2);
        for i in 0..120 {
            let x = i as f64 / 10.0;
            let e = (rng.next_u64() as f64 / u64::MAX as f64 - 0.5) * 2.0;
            d.push(&[1.0, x], 1.0 + 2.0 * x + e);
        }
        let mut scratch = EvalScratch::new();
        let cv = ErrorMeasure::cv10().estimate_with(&d, &mut scratch).unwrap();
        let refit_cv = cross_val_estimate(&d, 10, 0xBE11).unwrap();
        assert_eq!(cv.value.to_bits(), refit_cv.value.to_bits());
        assert_eq!(cv.std_err.to_bits(), refit_cv.std_err.to_bits());
        let tr = ErrorMeasure::TrainingSet.estimate_with(&d, &mut scratch).unwrap();
        let refit_tr = training_set_estimate(&d).unwrap();
        assert_eq!(tr.value.to_bits(), refit_tr.value.to_bits());
        assert!(scratch.stats.fits >= 11);
    }

    #[test]
    fn typed_builder_validates_and_builds() {
        let c = BellwetherConfig::builder(50.0)
            .min_coverage(0.8)
            .error_measure(ErrorMeasure::TrainingSet)
            .min_examples(5)
            .parallelism(Parallelism::fixed(3))
            .build()
            .unwrap();
        assert_eq!(c.budget, 50.0);
        assert_eq!(c.min_coverage, 0.8);
        assert_eq!(c.error_measure, ErrorMeasure::TrainingSet);
        assert_eq!(c.min_examples, 5);
        assert_eq!(c.parallelism, Parallelism::fixed(3));
        assert!(!c.recorder.enabled()); // default is the no-op recorder

        // Unconstrained budget is legal, and defaults are the paper's.
        let built = BellwetherConfig::builder(f64::INFINITY).build().unwrap();
        assert_eq!(built.budget, f64::INFINITY);
        assert_eq!(built.min_coverage, 0.5);
        assert_eq!(built.error_measure, ErrorMeasure::cv10());
        assert_eq!(built.min_examples, 10);
    }

    #[test]
    fn typed_builder_rejects_bad_knobs() {
        assert!(BellwetherConfig::builder(0.0).build().is_err());
        assert!(BellwetherConfig::builder(-1.0).build().is_err());
        assert!(BellwetherConfig::builder(f64::NAN).build().is_err());
        assert!(BellwetherConfig::builder(1.0).min_coverage(1.5).build().is_err());
        assert!(BellwetherConfig::builder(1.0).min_coverage(-0.1).build().is_err());
        assert!(BellwetherConfig::builder(1.0)
            .min_coverage(f64::NAN)
            .build()
            .is_err());
        assert!(BellwetherConfig::builder(1.0).min_examples(0).build().is_err());
        assert!(BellwetherConfig::builder(1.0)
            .error_measure(ErrorMeasure::CrossValidation { folds: 1, seed: 0 })
            .build()
            .is_err());
        // min_chunk == 0 cannot come from with_min_chunk (it panics) but
        // can from direct field assignment; the builder rejects it too.
        let mut zero = Parallelism::fixed(2);
        zero.min_chunk = 0;
        assert!(BellwetherConfig::builder(1.0)
            .parallelism(zero)
            .build()
            .is_err());
    }

    #[test]
    fn builder_sets_scan_policy() {
        let c = BellwetherConfig::builder(1.0).build().unwrap();
        assert_eq!(c.scan_policy, ScanPolicy::Strict);
        let c = BellwetherConfig::builder(1.0)
            .scan_policy(ScanPolicy::SkipUnreadable { max_skipped: 3 })
            .build()
            .unwrap();
        assert_eq!(c.scan_policy, ScanPolicy::SkipUnreadable { max_skipped: 3 });
    }

    #[test]
    fn builder_attaches_recorder() {
        let reg = bellwether_obs::Registry::shared();
        let c = BellwetherConfig::builder(1.0)
            .recorder(reg.clone())
            .build()
            .unwrap();
        assert!(c.recorder.enabled());
        c.recorder.add("probe", 2);
        assert_eq!(reg.snapshot().counter("probe"), Some(2));
    }
}
