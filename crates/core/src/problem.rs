//! The bellwether problem definition (Definitions 1 and 2).

use bellwether_cube::Parallelism;
use bellwether_linreg::{cross_val_estimate, training_set_estimate, ErrorEstimate, RegressionData};

/// How model error is estimated (§2).
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum ErrorMeasure {
    /// k-fold cross-validation RMSE (the paper uses k = 10).
    CrossValidation {
        /// Number of folds.
        folds: usize,
        /// Shuffle seed, fixed for reproducibility.
        seed: u64,
    },
    /// Training-set RMSE with `n − p` degrees of freedom. For linear
    /// models this closely tracks cross-validation (Fig. 7c) and is what
    /// makes the optimized cube's algebraic rollup possible.
    TrainingSet,
}

impl ErrorMeasure {
    /// The paper's default: 10-fold cross-validation.
    pub fn cv10() -> Self {
        ErrorMeasure::CrossValidation { folds: 10, seed: 0xBE11 }
    }

    /// Estimate the error of a WLS linear model on `data`. `None` when
    /// the data cannot support a model (too few examples).
    pub fn estimate(&self, data: &RegressionData) -> Option<ErrorEstimate> {
        match *self {
            ErrorMeasure::CrossValidation { folds, seed } => {
                cross_val_estimate(data, folds, seed)
            }
            ErrorMeasure::TrainingSet => training_set_estimate(data),
        }
    }
}

/// Full configuration of a bellwether analysis run: the constrained
/// optimization criterion of Definition 1 plus estimation knobs.
#[derive(Debug, Clone)]
pub struct BellwetherConfig {
    /// Budget B: maximum acquisition cost of the chosen region.
    pub budget: f64,
    /// Coverage threshold C ∈ [0, 1]: minimum fraction of training items
    /// with data in the region.
    pub min_coverage: f64,
    /// Error measure.
    pub error_measure: ErrorMeasure,
    /// Minimum number of training examples a region must supply before a
    /// model is considered (guards meaningless fits; the cube's size
    /// threshold K plays the same role for item subsets).
    pub min_examples: usize,
    /// Thread budget shared by every parallel code path driven from this
    /// config (region evaluation, CUBE kernels). Results never depend on
    /// the chosen value — see the determinism policy in
    /// `bellwether_cube::parallel`.
    pub parallelism: Parallelism,
}

impl BellwetherConfig {
    /// Defaults: coverage ≥ 0.5, 10-fold CV, at least 10 examples,
    /// hardware parallelism (`BW_THREADS` overridable).
    pub fn new(budget: f64) -> Self {
        BellwetherConfig {
            budget,
            min_coverage: 0.5,
            error_measure: ErrorMeasure::cv10(),
            min_examples: 10,
            parallelism: Parallelism::default(),
        }
    }

    /// Builder-style coverage threshold.
    pub fn with_min_coverage(mut self, c: f64) -> Self {
        self.min_coverage = c;
        self
    }

    /// Builder-style error measure.
    pub fn with_error_measure(mut self, m: ErrorMeasure) -> Self {
        self.error_measure = m;
        self
    }

    /// Builder-style minimum example count.
    pub fn with_min_examples(mut self, n: usize) -> Self {
        self.min_examples = n;
        self
    }

    /// Builder-style thread budget.
    pub fn with_parallelism(mut self, p: Parallelism) -> Self {
        self.parallelism = p;
        self
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn line(n: usize) -> RegressionData {
        let mut d = RegressionData::new(2);
        for i in 0..n {
            d.push(&[1.0, i as f64], 5.0 + 2.0 * i as f64);
        }
        d
    }

    #[test]
    fn both_measures_agree_on_exact_data() {
        let d = line(100);
        let cv = ErrorMeasure::cv10().estimate(&d).unwrap();
        let tr = ErrorMeasure::TrainingSet.estimate(&d).unwrap();
        assert!(cv.value < 1e-6);
        assert!(tr.value < 1e-6);
    }

    #[test]
    fn degenerate_data_yields_none() {
        let d = line(1);
        assert!(ErrorMeasure::cv10().estimate(&d).is_none());
        assert!(ErrorMeasure::TrainingSet.estimate(&d).is_none());
    }

    #[test]
    fn config_builder() {
        let c = BellwetherConfig::new(50.0)
            .with_min_coverage(0.8)
            .with_error_measure(ErrorMeasure::TrainingSet)
            .with_min_examples(5)
            .with_parallelism(Parallelism::fixed(3));
        assert_eq!(c.budget, 50.0);
        assert_eq!(c.min_coverage, 0.8);
        assert_eq!(c.error_measure, ErrorMeasure::TrainingSet);
        assert_eq!(c.min_examples, 5);
        assert_eq!(c.parallelism, Parallelism::fixed(3));
    }
}
