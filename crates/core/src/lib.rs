//! # bellwether-core
//!
//! A faithful reproduction of **"Bellwether Analysis: Predicting Global
//! Aggregates from Local Regions"** (Chen, Ramakrishnan, Shavlik, Tamma
//! — VLDB 2006).
//!
//! Bellwether analysis finds a *cost-bounded region* of an OLAP
//! dimension space (e.g. `[first 2 weeks, Wisconsin]`) whose
//! query-generated features best predict a global, query-generated
//! target (e.g. first-year worldwide profit) — turning unlabeled
//! historical data into supervised training sets with no human
//! labelling.
//!
//! The crate provides:
//!
//! * [`problem`] — Definitions 1 and 2 (constrained-optimization
//!   criterion, error measures);
//! * [`features`] — the stylized feature/target generation queries over
//!   a star schema and their CUBE rewrite (§4.2);
//! * [`training`] — materialisation of the entire training data;
//! * [`basic`] — basic bellwether search, plus the Avg-Err baseline and
//!   the Figure 7(b) indistinguishability analysis;
//! * [`sampling`] — the random-collection baseline (Smp Err);
//! * [`tree`] — bellwether trees: naive and RainForest-style (Lemma 1);
//! * [`cube`] — bellwether cubes: naive, single-scan (Lemma 2) and the
//!   Theorem-1 optimized algorithm, with prediction and rollup/
//!   drilldown exploration;
//! * [`predict`] — the item-centric evaluation harness comparing the
//!   basic/tree/cube methods.
//!
//! See the workspace README for an end-to-end example.

#![warn(missing_docs)]

pub mod basic;
pub mod combinatorial;
pub mod cube;
pub mod error;
pub mod eval;
pub mod features;
pub mod items;
pub mod model;
pub mod predict;
pub mod problem;
pub mod report;
pub mod retry;
pub mod sampling;
pub mod scan;
pub mod seeded;
pub mod stream;
pub mod training;
pub mod tree;

pub use basic::{
    basic_search, basic_search_linear, BasicSearchResult, LinearCriterion,
    LinearSearchResult, RegionReport,
};
pub use combinatorial::{greedy_combinatorial_search, CombinatorialResult};
pub use cube::explore::{cross_tab, render_cross_tab, CrossTabCell};
pub use cube::naive::build_naive_cube;
pub use cube::optimized::{build_optimized_cube, build_optimized_cube_cv};
pub use cube::predict::{
    candidate_cells, select_cell, select_cell_for_item, select_cells_for_items,
};
pub use cube::single_scan::build_single_scan_cube;
pub use cube::{BellwetherCube, CubeConfig, CubeConfigBuilder, SubsetCell};
pub use error::{BellwetherError, Result};
pub use eval::{record_eval_stats, PartitionScratch, RegionEvalScratch};
pub use bellwether_cube::Parallelism;
pub use bellwether_obs::{
    MetricsSnapshot, NoopRecorder, Recorder, Registry,
};
pub use features::{
    auto_generate_queries, build_cube_input, build_cube_input_with, global_target, FeatureQuery,
    StarDatabase,
};
pub use items::ItemTable;
pub use model::{BellwetherModel, MethodKind, ModelBuilder};
pub use predict::{evaluate_method, EvalContext, ItemCentricEval, Method};
pub use problem::{BellwetherConfig, BellwetherConfigBuilder, ErrorMeasure};
pub use report::BellwetherReport;
pub use retry::{RetryPolicy, RetryPolicyBuilder, RetryingSource};
pub use sampling::sampling_baseline_error;
pub use scan::{
    scan_regions, scan_regions_policy, scan_regions_where, scan_regions_where_policy,
    BestRegion, Concat, MergeableAccumulator, MinSlots, ScanPolicy, ScanScratch, Scanned,
    WithScratch,
};
pub use seeded::{hash_fold, seeded_rng};
pub use stream::{AppendOutcome, DriftEvent, StreamingBellwether};
pub use training::{
    build_memory_source, build_memory_source_with, region_block, write_disk_source,
    write_disk_source_in_registry,
};
pub use tree::naive::build_naive as build_naive_tree;
pub use tree::prune::prune_tree;
pub use tree::rainforest::build_rainforest;
pub use tree::{BellwetherTree, NodeInfo, SplitCriterion, TreeConfig, TreeConfigBuilder};
