//! Basic bellwether search (§3.2, §4): among the feasible regions, find
//! the one whose training set yields the minimum-error model.
//!
//! The search runs over an already-materialised [`TrainingSource`] (the
//! entire training data), so a *budget sweep* — the x-axis of Figures 7
//! and 9 — re-filters the same stored regions by cost instead of
//! rebuilding training sets. Regions are evaluated through the shared
//! [`scan_regions_where`] engine under the config's
//! [`bellwether_cube::Parallelism`] budget; each worker owns a
//! contiguous slice of region indices and reports merge in scan order,
//! so the output is identical for every thread count and the minimum is
//! resolved by (error, region index). Over-budget regions are filtered
//! *before* being read, so a tight budget still means little IO.

use crate::error::Result;
use crate::eval::{record_eval_stats, RegionEvalScratch};
use crate::problem::BellwetherConfig;
use crate::scan::{scan_regions_where_policy, Concat, WithScratch};
use bellwether_cube::{CostModel, RegionId, RegionSpace};
use bellwether_linreg::{ErrorEstimate, LinearModel};
use bellwether_obs::{names, span};
use bellwether_storage::{RegionBlock, TrainingSource};

/// The evaluation of one feasible region.
#[derive(Debug, Clone)]
pub struct RegionReport {
    /// Index of the region in the training source's scan order.
    pub source_index: usize,
    /// The region.
    pub region: RegionId,
    /// Display label, e.g. `[1-8, MD]`.
    pub label: String,
    /// Acquisition cost κ(r).
    pub cost: f64,
    /// Number of training examples (= items with data and targets).
    pub n_examples: usize,
    /// Estimated model error.
    pub error: ErrorEstimate,
    /// The bellwether model candidate, fit on the full region data.
    pub model: LinearModel,
}

/// Result of a basic bellwether search.
#[derive(Debug, Clone)]
pub struct BasicSearchResult {
    /// Reports for every region that passed all constraints and fit a
    /// model, in source order.
    pub reports: Vec<RegionReport>,
    /// Index into `reports` of the bellwether (minimum error), if any.
    pub best: Option<usize>,
    /// Ascending source indices of regions skipped as unreadable under a
    /// `SkipUnreadable` scan policy (empty under `Strict`). A non-empty
    /// list labels the result as degraded: those regions were never
    /// evaluated.
    pub skipped_regions: Vec<usize>,
}

impl BasicSearchResult {
    /// The bellwether region's report.
    pub fn bellwether(&self) -> Option<&RegionReport> {
        self.best.map(|i| &self.reports[i])
    }

    /// Mean error over all feasible regions — the "Avg Err" baseline of
    /// Figure 7(a).
    pub fn average_error(&self) -> Option<f64> {
        if self.reports.is_empty() {
            return None;
        }
        Some(self.reports.iter().map(|r| r.error.value).sum::<f64>() / self.reports.len() as f64)
    }

    /// Fraction of *other* feasible regions whose error lies within the
    /// bellwether's `confidence` interval — Figure 7(b). Low = the
    /// bellwether is nearly unique; high = indistinguishable from many.
    pub fn indistinguishable_fraction(&self, confidence: f64) -> Option<f64> {
        let best = self.bellwether()?;
        let others = self.reports.len().saturating_sub(1);
        if others == 0 {
            return Some(0.0);
        }
        let n = self
            .reports
            .iter()
            .enumerate()
            .filter(|(i, r)| {
                Some(*i) != self.best && best.error.contains(r.error.value, confidence)
            })
            .count();
        Some(n as f64 / others as f64)
    }
}

/// Run the basic bellwether search under `config`'s budget/coverage over
/// the stored regions. `total_items` is |I|, the coverage denominator.
pub fn basic_search(
    source: &dyn TrainingSource,
    space: &RegionSpace,
    cost_model: &dyn CostModel,
    config: &BellwetherConfig,
    total_items: usize,
) -> Result<BasicSearchResult> {
    let _timer = span!(config.recorder, "search/basic");
    let n = source.num_regions();
    let min_cov_items = (config.min_coverage * total_items as f64).ceil() as usize;

    // Evaluate a candidate region that already passed the budget filter,
    // through the worker's reusable scratch (zero allocations once warm).
    let evaluate =
        |scratch: &mut RegionEvalScratch, idx: usize, block: &RegionBlock| -> Option<RegionReport> {
            if block.n() < config.min_examples || block.n() < min_cov_items {
                return None;
            }
            scratch.gather(block, None);
            let error = scratch.estimate(config)?;
            let model = scratch.fit_model()?;
            let region = RegionId(source.region_coords(idx).to_vec());
            Some(RegionReport {
                source_index: idx,
                region: region.clone(),
                label: space.label(&region),
                cost: cost_model.cost(space, &region),
                n_examples: block.n(),
                error,
                model,
            })
        };

    let scanned = scan_regions_where_policy(
        source,
        config.parallelism,
        config.scan_policy,
        |idx| {
            let region = RegionId(source.region_coords(idx).to_vec());
            cost_model.cost(space, &region) <= config.budget
        },
        || WithScratch {
            acc: Concat::default(),
            scratch: RegionEvalScratch::new(),
        },
        |ws: &mut WithScratch<Concat<RegionReport>, RegionEvalScratch>, idx, block| {
            if let Some(report) = evaluate(&mut ws.scratch, idx, block) {
                ws.acc.0.push(report);
            }
            Ok(())
        },
    )?;
    scanned.record_skipped(config.recorder.as_ref());
    let WithScratch { acc, scratch } = scanned.acc;
    record_eval_stats(config.recorder.as_ref(), &scratch.eval.stats);
    let reports = acc.0;
    // Bellwether = min error; ties broken by source order for determinism.
    let best = reports
        .iter()
        .enumerate()
        .min_by(|(ai, a), (bi, b)| {
            a.error
                .value
                .total_cmp(&b.error.value)
                .then(ai.cmp(bi))
        })
        .map(|(i, _)| i);
    config.recorder.add(names::SEARCH_REGIONS_EVALUATED, n as u64);
    config.recorder.add(names::SEARCH_REPORTS, reports.len() as u64);
    Ok(BasicSearchResult {
        reports,
        best,
        skipped_regions: scanned.skipped,
    })
}

/// The *linear optimization criterion* of Definition 1: instead of hard
/// constraints, minimise `Error(h_r) + w₁·κ(r) − w₂·Coverage(r)`.
#[derive(Debug, Clone, Copy)]
pub struct LinearCriterion {
    /// Weight w₁ on the region cost.
    pub cost_weight: f64,
    /// Weight w₂ on the coverage fraction.
    pub coverage_weight: f64,
}

/// Result of a linear-criterion search: every modelled region with its
/// combined score, plus the minimiser.
#[derive(Debug, Clone)]
pub struct LinearSearchResult {
    /// Region reports (no budget/coverage filtering — the criterion
    /// trades those off instead).
    pub reports: Vec<RegionReport>,
    /// `Error + w₁·cost − w₂·coverage` per report.
    pub scores: Vec<f64>,
    /// Index of the minimising report.
    pub best: Option<usize>,
    /// Regions skipped as unreadable (see
    /// [`BasicSearchResult::skipped_regions`]).
    pub skipped_regions: Vec<usize>,
}

impl LinearSearchResult {
    /// The winning report and its score.
    pub fn bellwether(&self) -> Option<(&RegionReport, f64)> {
        self.best.map(|i| (&self.reports[i], self.scores[i]))
    }
}

/// Run the basic search under the linear optimization criterion. Every
/// region that can fit a model participates; the score trades error
/// against cost and coverage with the user's weights.
pub fn basic_search_linear(
    source: &dyn TrainingSource,
    space: &RegionSpace,
    cost_model: &dyn CostModel,
    config: &BellwetherConfig,
    total_items: usize,
    criterion: LinearCriterion,
) -> Result<LinearSearchResult> {
    // Reuse the constrained machinery with the constraints disarmed.
    let mut unconstrained = config.clone();
    unconstrained.budget = f64::INFINITY;
    unconstrained.min_coverage = 0.0;
    let base = basic_search(source, space, cost_model, &unconstrained, total_items)?;
    let scores: Vec<f64> = base
        .reports
        .iter()
        .map(|r| {
            let coverage = if total_items == 0 {
                0.0
            } else {
                r.n_examples as f64 / total_items as f64
            };
            r.error.value + criterion.cost_weight * r.cost
                - criterion.coverage_weight * coverage
        })
        .collect();
    let best = scores
        .iter()
        .enumerate()
        .min_by(|(ai, a), (bi, b)| a.total_cmp(b).then(ai.cmp(bi)))
        .map(|(i, _)| i);
    Ok(LinearSearchResult {
        reports: base.reports,
        scores,
        best,
        skipped_regions: base.skipped_regions,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::problem::ErrorMeasure;
    use bellwether_cube::{Dimension, Hierarchy, Parallelism, UniformCellCost};
    use bellwether_linreg::SplitMix64;
    use bellwether_storage::{MemorySource, RegionBlock};

    /// Three regions: one clean linear signal, one noisy, one tiny.
    fn fixture() -> (MemorySource, RegionSpace) {
        let space = RegionSpace::new(vec![Dimension::Hierarchy(Hierarchy::flat(
            "L",
            "All",
            &["good", "noisy"],
        ))]);
        let mut rng = SplitMix64::new(9);
        let mut noise = |amp: f64| (rng.next_u64() as f64 / u64::MAX as f64 - 0.5) * amp;

        // region "good" (node 1): y = 3 + 2x exactly
        let mut good = RegionBlock::new(vec![1], 2);
        for i in 0..40 {
            let x = i as f64;
            good.push(i, &[1.0, x], 3.0 + 2.0 * x);
        }
        // region "noisy" (node 2): heavy noise
        let mut noisy = RegionBlock::new(vec![2], 2);
        for i in 0..40 {
            let x = i as f64;
            noisy.push(i, &[1.0, x], 3.0 + 2.0 * x + noise(60.0));
        }
        // region "All" (node 0): tiny — below min_examples
        let mut all = RegionBlock::new(vec![0], 2);
        for i in 0..3 {
            all.push(i, &[1.0, i as f64], i as f64);
        }
        (MemorySource::new(vec![good, noisy, all]), space)
    }

    fn config() -> BellwetherConfig {
        BellwetherConfig::builder(1e9)
            .min_coverage(0.0)
            .min_examples(10)
            .error_measure(ErrorMeasure::cv10())
            .build()
            .unwrap()
    }

    #[test]
    fn finds_the_clean_region() {
        let (src, space) = fixture();
        let cost = UniformCellCost { rate: 1.0 };
        let result = basic_search(&src, &space, &cost, &config(), 40).unwrap();
        assert_eq!(result.reports.len(), 2); // tiny region filtered out
        let best = result.bellwether().unwrap();
        assert_eq!(best.label, "[good]");
        assert!(best.error.value < 1e-6);
        assert!(result.average_error().unwrap() > best.error.value);
    }

    #[test]
    fn budget_filters_regions() {
        let (src, space) = fixture();
        let cost = UniformCellCost { rate: 1.0 }; // leaf = 1, All = 2
        let mut cfg = config();
        cfg.budget = 0.0;
        let result = basic_search(&src, &space, &cost, &cfg, 40).unwrap();
        assert!(result.reports.is_empty());
        assert!(result.bellwether().is_none());
        assert!(result.average_error().is_none());
        assert!(result.indistinguishable_fraction(0.95).is_none());
    }

    #[test]
    fn coverage_filters_regions() {
        let (src, space) = fixture();
        let cost = UniformCellCost { rate: 1.0 };
        let mut cfg = config();
        cfg.min_coverage = 0.9; // requires 45 of 50 items
        let result = basic_search(&src, &space, &cost, &cfg, 50).unwrap();
        assert!(result.reports.is_empty());
    }

    #[test]
    fn indistinguishability_low_for_clear_bellwether() {
        let (src, space) = fixture();
        let cost = UniformCellCost { rate: 1.0 };
        let result = basic_search(&src, &space, &cost, &config(), 40).unwrap();
        // The noisy region is far outside the clean region's tiny CI.
        assert_eq!(result.indistinguishable_fraction(0.95), Some(0.0));
    }

    #[test]
    fn deterministic_across_runs() {
        let (src, space) = fixture();
        let cost = UniformCellCost { rate: 1.0 };
        let a = basic_search(&src, &space, &cost, &config(), 40).unwrap();
        let b = basic_search(&src, &space, &cost, &config(), 40).unwrap();
        assert_eq!(a.best, b.best);
        assert_eq!(a.reports.len(), b.reports.len());
        for (x, y) in a.reports.iter().zip(&b.reports) {
            assert_eq!(x.error.value, y.error.value);
        }
    }

    #[test]
    fn linear_criterion_trades_error_for_cost() {
        let (src, space) = fixture();
        let cost = UniformCellCost { rate: 1.0 }; // leaves cost 1, All costs 2
        let mut cfg = config();
        cfg.error_measure = ErrorMeasure::TrainingSet;
        // With no cost weight the clean region wins outright.
        let free = basic_search_linear(
            &src,
            &space,
            &cost,
            &cfg,
            40,
            LinearCriterion {
                cost_weight: 0.0,
                coverage_weight: 0.0,
            },
        )
        .unwrap();
        assert_eq!(free.bellwether().unwrap().0.label, "[good]");
        // With an enormous cost weight, differences in cost dominate; the
        // two leaf regions cost the same, so [good] still wins, but the
        // score now reflects the cost term.
        let costly = basic_search_linear(
            &src,
            &space,
            &cost,
            &cfg,
            40,
            LinearCriterion {
                cost_weight: 1e6,
                coverage_weight: 0.0,
            },
        )
        .unwrap();
        let (best, score) = costly.bellwether().unwrap();
        assert_eq!(best.label, "[good]");
        assert!(score > 1e6 * 0.9, "cost term must dominate the score");
        // Coverage weight rewards larger regions.
        let covered = basic_search_linear(
            &src,
            &space,
            &cost,
            &cfg,
            40,
            LinearCriterion {
                cost_weight: 0.0,
                coverage_weight: 1e9,
            },
        )
        .unwrap();
        // Both leaf regions cover all 40 items, so coverage can't
        // distinguish them; the clean region still wins on error.
        assert_eq!(covered.bellwether().unwrap().0.label, "[good]");
    }

    #[test]
    fn thread_count_does_not_change_results() {
        let (src, space) = fixture();
        let cost = UniformCellCost { rate: 1.0 };
        let mut seq_cfg = config();
        seq_cfg.parallelism = Parallelism::sequential();
        let seq = basic_search(&src, &space, &cost, &seq_cfg, 40).unwrap();
        for t in [2, 4, 8] {
            let mut par_cfg = config();
            // min_chunk 1 so real worker threads engage on 3 regions.
            par_cfg.parallelism = Parallelism::fixed(t).with_min_chunk(1);
            let par = basic_search(&src, &space, &cost, &par_cfg, 40).unwrap();
            assert_eq!(seq.best, par.best);
            assert_eq!(seq.reports.len(), par.reports.len());
            for (a, b) in seq.reports.iter().zip(&par.reports) {
                assert_eq!(a.source_index, b.source_index);
                assert_eq!(a.error.value.to_bits(), b.error.value.to_bits());
            }
        }
    }

    #[test]
    fn training_set_measure_also_works() {
        let (src, space) = fixture();
        let cost = UniformCellCost { rate: 1.0 };
        let mut cfg = config();
        cfg.error_measure = ErrorMeasure::TrainingSet;
        let result = basic_search(&src, &space, &cost, &cfg, 40).unwrap();
        assert_eq!(result.bellwether().unwrap().label, "[good]");
    }

    #[test]
    fn scan_policy_governs_unreadable_regions() {
        use crate::error::BellwetherError;
        use crate::scan::ScanPolicy;
        use bellwether_storage::{FaultPlan, FaultySource};
        let (src, space) = fixture();
        // Every region is permanently corrupt.
        let faulty = FaultySource::new(src, FaultPlan::new(21).corrupt_every(1));
        let cost = UniformCellCost { rate: 1.0 };

        // Strict (the default): the scan fails with the region index.
        let err = basic_search(&faulty, &space, &cost, &config(), 40)
            .expect_err("strict search must surface corruption");
        match err {
            BellwetherError::RegionRead { index, source } => {
                assert_eq!(index, 0);
                assert!(bellwether_storage::is_corrupt(&source), "{source}");
            }
            other => panic!("expected RegionRead, got {other}"),
        }

        // SkipUnreadable: the search completes, reports nothing, and
        // accounts for every dropped region.
        let reg = bellwether_obs::Registry::shared();
        let mut cfg = config();
        cfg.scan_policy = ScanPolicy::SkipUnreadable { max_skipped: 3 };
        cfg.recorder = reg.clone();
        let result = basic_search(&faulty, &space, &cost, &cfg, 40).unwrap();
        assert!(result.reports.is_empty());
        assert_eq!(result.skipped_regions, vec![0, 1, 2]);
        assert_eq!(reg.snapshot().regions_skipped(), 3);
    }

    #[test]
    fn scan_scratch_is_allocation_free_after_warm_up() {
        // Sequential scan → one worker, one scratch. Evaluating a region
        // touches the scratch three times (gather, estimate, model fit),
        // each of which reports grew-vs-warm. The fixture evaluates two
        // same-shaped regions (the tiny one is gated before gathering),
        // so only the first region's touches may grow; the second
        // region's must all be warm.
        let (src, space) = fixture();
        let cost = UniformCellCost { rate: 1.0 };
        let reg = bellwether_obs::Registry::shared();
        let mut cfg = config();
        cfg.parallelism = Parallelism::sequential();
        cfg.recorder = reg.clone();
        basic_search(&src, &space, &cost, &cfg, 40).unwrap();
        let snap = reg.snapshot();
        let grows = snap
            .counter(bellwether_obs::names::LINREG_SCRATCH_GROWS)
            .unwrap_or(0);
        let reuses = snap
            .counter(bellwether_obs::names::LINREG_SCRATCH_REUSES)
            .unwrap_or(0);
        assert!(grows <= 3, "hot loop allocated after warm-up: {grows} grows");
        assert!(reuses >= 3, "expected warm evaluations, got {reuses}");
        assert!(snap.fits() > 0, "engine fits must be recorded");
        assert!(snap.cv_folds_evaluated() >= 20, "2 regions x 10 folds");
    }

    #[test]
    fn search_reports_into_recorder() {
        let (src, space) = fixture();
        let cost = UniformCellCost { rate: 1.0 };
        let reg = bellwether_obs::Registry::shared();
        let cfg = BellwetherConfig::builder(1e9)
            .min_coverage(0.0)
            .min_examples(10)
            .error_measure(ErrorMeasure::TrainingSet)
            .recorder(reg.clone())
            .build()
            .unwrap();
        let result = basic_search(&src, &space, &cost, &cfg, 40).unwrap();
        let snap = reg.snapshot();
        assert_eq!(
            snap.counter(bellwether_obs::names::SEARCH_REGIONS_EVALUATED),
            Some(3)
        );
        assert_eq!(
            snap.counter(bellwether_obs::names::SEARCH_REPORTS),
            Some(result.reports.len() as u64)
        );
        assert_eq!(snap.span("search/basic").unwrap().calls, 1);
    }
}
