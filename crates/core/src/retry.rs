//! Shared retry/backoff policy, re-exported for every retry path in
//! the workspace.
//!
//! There is exactly one implementation of bounded-attempt retry with
//! exponential backoff and deterministic jitter:
//! [`bellwether_storage::retry::RetryPolicy`]. It started life as the
//! storage layer's region-read retry and is now also the shard
//! coordinator's worker-restart budget (`bellwether-coord`), which is
//! the point — the two retry paths share one policy type and one
//! backoff formula, so their semantics *cannot* drift apart.
//!
//! This module is the canonical import path for algorithm-level code
//! (`core` and above): `bellwether_core::retry::RetryPolicy`. It lives
//! in `core` as a documented façade rather than as the implementation
//! because the crate graph points the other way (`core` depends on
//! `storage`, and `coord` deliberately depends only on
//! `storage` + `obs`); hoisting the code itself into `core` would give
//! the coordinator a dependency on every algorithm in this crate.
//! Re-exporting keeps the type *identical* — a policy built through
//! this path configures storage sources and coordinators alike.
//!
//! ```
//! use bellwether_core::retry::RetryPolicy;
//! use std::time::Duration;
//!
//! let policy = RetryPolicy::builder()
//!     .max_attempts(5)
//!     .base_backoff(Duration::from_millis(2))
//!     .jitter_seed(42)
//!     .build()
//!     .unwrap();
//! // Same policy type drives storage-read retries and coordinator
//! // worker restarts; backoff_for(slot, attempt) is the one schedule.
//! assert!(policy.backoff_for(0, 1) <= policy.backoff_for(0, 4));
//! ```

pub use bellwether_storage::retry::{RetryPolicy, RetryPolicyBuilder, RetryingSource};

#[cfg(test)]
mod tests {
    use super::*;
    use std::time::Duration;

    /// The façade must stay type-identical to the storage
    /// implementation — a function taking the storage type accepts a
    /// policy built through `core::retry` with no conversion.
    #[test]
    fn facade_is_type_identical_to_storage() {
        fn takes_storage_policy(p: bellwether_storage::RetryPolicy) -> u32 {
            p.max_attempts()
        }
        let p = RetryPolicy::builder().max_attempts(7).build().unwrap();
        assert_eq!(takes_storage_policy(p), 7);
    }

    #[test]
    fn one_backoff_formula_for_all_paths() {
        let build = || {
            RetryPolicy::builder()
                .max_attempts(4)
                .base_backoff(Duration::from_millis(1))
                .max_backoff(Duration::from_millis(64))
                .jitter_seed(9)
                .build()
                .unwrap()
        };
        let a = build();
        let b = build();
        for slot in 0..4 {
            for attempt in 1..4 {
                assert_eq!(a.backoff_for(slot, attempt), b.backoff_for(slot, attempt));
            }
        }
    }
}
