//! The random-sampling baseline of Figure 7(a) ("Smp Err").
//!
//! Instead of one OLAP-style region, buy a *random collection* of
//! candidate regions whose total cost fits the budget, aggregate the
//! feature queries over the union of their cells (which "may not
//! correspond to any OLAP-style region"), and measure the model error.
//! Averaged over several trials, this shows what budget-matched
//! unstructured acquisition achieves versus the bellwether.

use crate::error::Result;
use crate::items::ItemTable;
use crate::problem::BellwetherConfig;
use crate::seeded::seeded_rng;
use bellwether_cube::{aggregate_filtered, CostModel, CubeInput, RegionId, RegionSpace};
use bellwether_linreg::{EvalScratch, RegressionData};
use std::collections::HashMap;

/// Mean error of the random-collection baseline over `trials` draws.
/// Returns `None` if no trial could afford data and fit a model.
#[allow(clippy::too_many_arguments)]
pub fn sampling_baseline_error(
    space: &RegionSpace,
    cube_input: &CubeInput,
    items: &ItemTable,
    targets: &HashMap<i64, f64>,
    cost_model: &dyn CostModel,
    config: &BellwetherConfig,
    trials: usize,
    seed: u64,
) -> Result<Option<f64>> {
    let all_regions = space.all_regions();
    let mut rng = seeded_rng(seed);
    let mut errors = Vec::new();
    // One engine scratch across trials: the per-trial estimate reuses
    // the fold/Gram buffers instead of reallocating them.
    let mut scratch = EvalScratch::new();

    for _ in 0..trials {
        // Draw a random affordable collection of regions.
        let mut order: Vec<usize> = (0..all_regions.len()).collect();
        rng.shuffle(&mut order);
        let mut chosen: Vec<&RegionId> = Vec::new();
        let mut spent = 0.0;
        for idx in order {
            let r = &all_regions[idx];
            let c = cost_model.cost(space, r);
            if spent + c <= config.budget {
                spent += c;
                chosen.push(r);
            }
        }
        if chosen.is_empty() {
            continue;
        }

        // Aggregate features over the union of the collection's cells.
        let features = aggregate_filtered(cube_input, space.arity(), |cell| {
            let cell = RegionId(cell.to_vec());
            chosen.iter().any(|r| space.contains(r, &cell))
        });

        // Assemble a training set with the standard layout.
        let n_static = items.numeric_attrs().len();
        let p = 1 + n_static + cube_input.measures.len();
        let mut data = RegressionData::with_capacity(p, features.len());
        let mut ids: Vec<i64> = features.keys().copied().collect();
        ids.sort_unstable();
        let mut x = Vec::with_capacity(p);
        for id in ids {
            let (Some(&y), Some(statics)) = (targets.get(&id), items.static_features(id)) else {
                continue;
            };
            x.clear();
            x.push(1.0);
            x.extend_from_slice(&statics);
            x.extend(features[&id].iter().map(|v| v.unwrap_or(0.0)));
            data.push(&x, y);
        }
        if data.n() < config.min_examples {
            continue;
        }
        if let Some(e) = config.error_measure.estimate_with(&data, &mut scratch) {
            errors.push(e.value);
        }
    }

    if errors.is_empty() {
        Ok(None)
    } else {
        Ok(Some(errors.iter().sum::<f64>() / errors.len() as f64))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::problem::ErrorMeasure;
    use bellwether_cube::{Dimension, Hierarchy, Measure, UniformCellCost};
    use bellwether_table::ops::AggFunc;
    use bellwether_table::{Column, DataType, Schema, Table};

    fn fixture() -> (RegionSpace, CubeInput, ItemTable, HashMap<i64, f64>) {
        let space = RegionSpace::new(vec![Dimension::Hierarchy(Hierarchy::flat(
            "L",
            "All",
            &["a", "b"],
        ))]);
        // 20 items, each with one row in 'a' and one zero-profit row in
        // 'b'; the target is 10 × (total profit), so any sampled union
        // that includes the 'a' cells predicts perfectly.
        let n = 20;
        let mut item_ids = Vec::new();
        let mut coords = Vec::new();
        let mut profits = Vec::new();
        for i in 0..n {
            item_ids.push(i);
            coords.push(1); // leaf a
            profits.push(Some(i as f64));
            item_ids.push(i);
            coords.push(2); // leaf b
            profits.push(Some(0.0));
        }
        let input = CubeInput {
            item_ids,
            coords,
            measures: vec![Measure::Numeric {
                name: "profit".into(),
                func: AggFunc::Sum,
                values: profits,
            }],
        };
        let table = Table::new(
            Schema::from_pairs(&[("id", DataType::Int)]).unwrap(),
            vec![Column::from_ints((0..n).collect())],
        )
        .unwrap();
        let items = ItemTable::from_table(&table, "id", &[], &[]).unwrap();
        let targets: HashMap<i64, f64> = (0..n).map(|i| (i, 10.0 * i as f64)).collect();
        (space, input, items, targets)
    }

    #[test]
    fn generous_budget_gets_low_error() {
        let (space, input, items, targets) = fixture();
        let cfg = BellwetherConfig::builder(100.0)
            .min_examples(5)
            .error_measure(ErrorMeasure::TrainingSet)
            .build()
            .unwrap();
        let cost = UniformCellCost { rate: 1.0 };
        let err =
            sampling_baseline_error(&space, &input, &items, &targets, &cost, &cfg, 5, 42)
                .unwrap()
                .unwrap();
        // With everything affordable the union covers 'a', whose profit
        // linearly determines the target (up to numerical noise).
        assert!(err < 1e-3, "err = {err}");
    }

    #[test]
    fn zero_budget_returns_none() {
        let (space, input, items, targets) = fixture();
        // The builder rejects a non-positive budget, which is exactly
        // what this test needs — set the field directly.
        let mut cfg = BellwetherConfig::builder(1.0).min_examples(5).build().unwrap();
        cfg.budget = 0.0;
        let cost = UniformCellCost { rate: 1.0 };
        let err = sampling_baseline_error(&space, &input, &items, &targets, &cost, &cfg, 3, 1)
            .unwrap();
        assert!(err.is_none());
    }

    #[test]
    fn deterministic_for_seed() {
        let (space, input, items, targets) = fixture();
        let cfg = BellwetherConfig::builder(3.0)
            .min_examples(5)
            .error_measure(ErrorMeasure::TrainingSet)
            .build()
            .unwrap();
        let cost = UniformCellCost { rate: 1.0 };
        let a = sampling_baseline_error(&space, &input, &items, &targets, &cost, &cfg, 4, 7)
            .unwrap();
        let b = sampling_baseline_error(&space, &input, &items, &targets, &cost, &cfg, 4, 7)
            .unwrap();
        assert_eq!(a, b);
    }
}
