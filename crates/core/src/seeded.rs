//! Shared seeded-hash utilities.
//!
//! Several code paths need deterministic pseudo-randomness that is
//! stable across machines, runs and thread counts: the sampling
//! baseline shuffles candidate regions, the CV cube assigns items to
//! folds by id. Both previously seeded their own `SplitMix64` with
//! slightly different idioms; this module is the single place that
//! policy lives, so the bit-for-bit reproducibility guarantees are easy
//! to audit.
//!
//! Note the deliberate split between **item-level** fold hashing here
//! (stateless, keyed by item id — stable no matter which regions or
//! subsets an item appears in) and **row-level** fold assignment in
//! [`bellwether_linreg::fold_assignment`] (a seeded shuffle of one
//! dataset's row indices). The error engine uses the latter because its
//! folds partition a single dataset's rows; the optimized CV cube uses
//! the former because its folds must agree across overlapping subsets.

use bellwether_linreg::SplitMix64;

/// A deterministic RNG for `seed` — the workspace-wide policy for
/// seeded shuffles and draws.
pub fn seeded_rng(seed: u64) -> SplitMix64 {
    SplitMix64::new(seed)
}

/// Deterministic fold of an item id: a SplitMix64 hash of `id ^ seed`,
/// so the assignment is stable across regions, subsets and machines.
/// Requires `folds ≥ 1`.
pub fn hash_fold(item: i64, folds: usize, seed: u64) -> usize {
    debug_assert!(folds >= 1, "hash_fold needs at least one fold");
    let mut h = seeded_rng((item as u64) ^ seed);
    (h.next_u64() % folds as u64) as usize
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn hash_fold_is_deterministic_and_in_range() {
        for item in -50i64..50 {
            for folds in 1..6usize {
                let f = hash_fold(item, folds, 99);
                assert!(f < folds);
                assert_eq!(f, hash_fold(item, folds, 99));
            }
        }
    }

    #[test]
    fn hash_fold_depends_on_seed() {
        let spread = (0..200i64)
            .filter(|&i| hash_fold(i, 10, 1) != hash_fold(i, 10, 2))
            .count();
        // Different seeds must reassign a substantial share of items.
        assert!(spread > 100, "only {spread} of 200 items moved");
    }

    #[test]
    fn hash_fold_covers_all_folds() {
        let folds = 5;
        let mut seen = vec![false; folds];
        for item in 0..100i64 {
            seen[hash_fold(item, folds, 7)] = true;
        }
        assert!(seen.iter().all(|&s| s), "{seen:?}");
    }

    #[test]
    fn hash_fold_matches_pinned_reference_values() {
        // Pinned outputs: the fold assignment is part of the on-disk /
        // cross-run contract for seeded CV cubes — changing the hash
        // silently reshuffles every cube's folds.
        let got: Vec<usize> = (0..8i64).map(|i| hash_fold(i, 3, 99)).collect();
        let reference: Vec<usize> = (0..8i64)
            .map(|i| {
                let mut h = SplitMix64::new((i as u64) ^ 99);
                (h.next_u64() % 3) as usize
            })
            .collect();
        assert_eq!(got, reference);
    }

    #[test]
    fn seeded_rng_reproduces() {
        let mut a = seeded_rng(42);
        let mut b = seeded_rng(42);
        for _ in 0..10 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
    }
}
