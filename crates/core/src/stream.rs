//! Incremental bellwether maintenance: O(Δ) streaming appends.
//!
//! [`StreamingBellwether`] keeps a live bellwether search warm across
//! fact appends without ever rebuilding the world:
//!
//! 1. the delta CUBE ([`StreamingCube`]) folds the new rows into its
//!    retained suffstat tables and reports exactly which candidate
//!    regions changed (the *dirty set*);
//! 2. only those regions' training blocks are re-assembled and written
//!    to the sharded layout as a new *generation* (an append-only
//!    overlay — clean blocks are never rewritten);
//! 3. the [`CachedSource`] evicts exactly the dirty blocks; every clean
//!    block stays cached and is never re-read;
//! 4. only the dirty candidates are re-scored, through a retained
//!    [`RegionEvalScratch`], and the argmin is recomputed over the
//!    retained per-region reports. An argmin flip is a
//!    [`DriftEvent`] — the signal a server uses to hot-swap its model.
//!
//! # Equivalence contract
//!
//! After any sequence of appends, [`StreamingBellwether::search_result`]
//! is **bit-identical** to running [`basic_search`] cold over a layout
//! built from the concatenated input: the delta cube is bit-identical
//! by construction (see `bellwether-cube`'s `delta` module), the block
//! assembly is the same [`region_block`] call, and the re-score path
//! replicates `basic_search`'s evaluation verbatim — same budget
//! prefilter (over-budget regions are never read, so they can never
//! enter the report set), same coverage/`min_examples` gates, same
//! scratch pipeline, same `(error, source index)` argmin tie-break.
//! Regions *not* in the dirty set keep their previous report, which is
//! bit-identical to what a cold pass would recompute because their
//! suffstats did not change.

use std::collections::HashMap;
use std::path::{Path, PathBuf};
use std::sync::Arc;

use bellwether_cube::{CostModel, CubeInput, RegionId, RegionSpace, StreamingCube};
use bellwether_obs::names;
use bellwether_storage::{
    even_shard_plan, CachedSource, RegionBlock, ShardAppender, ShardedSource, ShardedWriter,
    TrainingSource,
};

use crate::basic::{basic_search, BasicSearchResult, RegionReport};
use crate::error::{BellwetherError, Result};
use crate::eval::RegionEvalScratch;
use crate::items::ItemTable;
use crate::problem::BellwetherConfig;
use crate::training::region_block;

/// One argmin flip: the bellwether changed identity after an append.
#[derive(Debug, Clone, PartialEq)]
pub struct DriftEvent {
    /// 1-based sequence number of the append that caused the flip.
    pub append_seq: u64,
    /// Previous bellwether region, if any.
    pub from: Option<RegionId>,
    /// Human label of the previous bellwether.
    pub from_label: Option<String>,
    /// Previous bellwether's error estimate.
    pub from_error: Option<f64>,
    /// New bellwether region, if any.
    pub to: Option<RegionId>,
    /// Human label of the new bellwether.
    pub to_label: Option<String>,
    /// New bellwether's error estimate.
    pub to_error: Option<f64>,
}

/// What one [`StreamingBellwether::append`] did.
#[derive(Debug, Clone)]
pub struct AppendOutcome {
    /// Fact rows folded into the delta cube.
    pub rows_appended: usize,
    /// Distinct `(region, item)` cells whose suffstats changed.
    pub cells_dirtied: usize,
    /// Candidate regions whose training block was rewritten.
    pub dirty_candidates: usize,
    /// Dirty candidates actually re-scored (dirty minus over-budget).
    pub rescored: usize,
    /// Cached blocks evicted by the dirty-set invalidation.
    pub blocks_invalidated: u64,
    /// Storage generation after the append (unchanged if no candidate
    /// was dirty).
    pub generation: u64,
    /// The drift event, when the argmin flipped.
    pub drift: Option<DriftEvent>,
}

/// Incrementally maintained bellwether search over a sharded layout.
///
/// See the module docs for the maintenance pipeline and the
/// bit-identity contract.
pub struct StreamingBellwether {
    space: RegionSpace,
    cube: StreamingCube,
    items: ItemTable,
    targets: HashMap<i64, f64>,
    regions: Vec<RegionId>,
    region_index: HashMap<RegionId, usize>,
    cost_model: Arc<dyn CostModel + Send + Sync>,
    config: BellwetherConfig,
    total_items: usize,
    dir: PathBuf,
    source: CachedSource<ShardedSource>,
    /// Retained per-candidate reports, indexed by source index.
    reports: Vec<Option<RegionReport>>,
    /// Source index of the current bellwether.
    best: Option<usize>,
    /// Unreadable regions from the bootstrap scan (kept for
    /// [`Self::search_result`] parity with [`basic_search`]).
    skipped: Vec<usize>,
    scratch: RegionEvalScratch,
    appends: u64,
    drift_log: Vec<DriftEvent>,
}

impl StreamingBellwether {
    /// Build the stream: fold `base` into a fresh delta cube, write the
    /// initial sharded layout under `dir`, and bootstrap the report set
    /// with a cold [`basic_search`].
    ///
    /// `item_universe` pins the cube's item key space and must contain
    /// every item id any future append may carry (a superset is free —
    /// it never changes an output bit). `regions` is the candidate list
    /// in scan order; its order defines source indices for the lifetime
    /// of the stream. Returns [`BellwetherError::Config`] when the
    /// region × item key space is too large for dense delta keys.
    #[allow(clippy::too_many_arguments)]
    pub fn create(
        dir: &Path,
        space: &RegionSpace,
        base: &CubeInput,
        item_universe: &[i64],
        items: ItemTable,
        targets: HashMap<i64, f64>,
        regions: Vec<RegionId>,
        cost_model: Arc<dyn CostModel + Send + Sync>,
        config: BellwetherConfig,
        total_items: usize,
        n_shards: usize,
        cache_bytes: usize,
    ) -> Result<StreamingBellwether> {
        let cube = StreamingCube::new(space, base, item_universe, config.parallelism)
            .ok_or_else(|| {
                BellwetherError::Config(
                    "region × item key space too large for incremental maintenance".into(),
                )
            })?;

        std::fs::create_dir_all(dir)?;
        let n_static = items.numeric_attrs().len();
        let p = (1 + n_static + cube.result().measure_names.len()) as u32;
        let plan = even_shard_plan(regions.len(), n_shards);
        let mut writer = ShardedWriter::create(dir, p, space.arity() as u32, plan)?;
        for region in &regions {
            writer.write_region(&region_block(cube.result(), region, &items, &targets))?;
        }
        writer.finish()?;

        let source = CachedSource::new(ShardedSource::open(dir)?, cache_bytes);
        let boot = basic_search(
            &source,
            space,
            cost_model.as_ref(),
            &config,
            total_items,
        )?;
        let mut reports: Vec<Option<RegionReport>> = vec![None; regions.len()];
        for report in &boot.reports {
            reports[report.source_index] = Some(report.clone());
        }
        let best = boot.best.map(|i| boot.reports[i].source_index);

        let region_index = regions
            .iter()
            .enumerate()
            .map(|(i, r)| (r.clone(), i))
            .collect();
        Ok(StreamingBellwether {
            space: space.clone(),
            cube,
            items,
            targets,
            regions,
            region_index,
            cost_model,
            config,
            total_items,
            dir: dir.to_path_buf(),
            source,
            reports,
            best,
            skipped: boot.skipped_regions,
            scratch: RegionEvalScratch::new(),
            appends: 0,
            drift_log: Vec::new(),
        })
    }

    /// Fold `delta` into the stream: update the cube, rewrite exactly
    /// the dirty candidates' blocks as a new storage generation,
    /// invalidate their cache entries, re-score them, and recompute the
    /// argmin. A failed append (shape mismatch) leaves every layer of
    /// state unchanged.
    pub fn append(&mut self, delta: &CubeInput) -> Result<AppendOutcome> {
        let update = self.cube.append(delta).map_err(BellwetherError::Config)?;
        self.appends += 1;
        self.config.recorder.add(names::STREAM_APPENDS, 1);

        // Dirty *candidates*: the cube reports every dirty region in
        // the space; only those in our candidate list hold blocks.
        let mut dirty: Vec<usize> = update
            .dirty_regions
            .iter()
            .filter_map(|r| self.region_index.get(r).copied())
            .collect();
        dirty.sort_unstable();
        self.config
            .recorder
            .add(names::STREAM_REGIONS_DIRTIED, dirty.len() as u64);

        let old_best = self.best;
        let old_summary = old_best.and_then(|i| self.reports[i].clone());

        let mut outcome = AppendOutcome {
            rows_appended: update.rows_appended,
            cells_dirtied: update.cells_dirtied,
            dirty_candidates: dirty.len(),
            rescored: 0,
            blocks_invalidated: 0,
            generation: self.source.inner().generation(),
            drift: None,
        };
        if dirty.is_empty() {
            return Ok(outcome);
        }

        // Rewrite the dirty blocks under a new generation. Blocks must
        // be appended in ascending source order (the appender enforces
        // it); `dirty` is already sorted.
        let mut appender = ShardAppender::open(&self.dir)?;
        for &idx in &dirty {
            let block = region_block(
                self.cube.result(),
                &self.regions[idx],
                &self.items,
                &self.targets,
            );
            appender.write_region(idx, &block)?;
        }
        appender.finish()?;
        outcome.generation = self.source.inner().refresh()?;
        let evicted = self.source.invalidate_regions(&dirty);
        outcome.blocks_invalidated = evicted;
        self.config
            .recorder
            .add(names::STORAGE_CACHE_INVALIDATIONS, evicted);

        // Re-score the dirty candidates, replicating `basic_search`'s
        // evaluation exactly: budget prefilter *before* the read (an
        // over-budget region is never evaluated and stays report-less),
        // then the coverage / min-examples gates, then the shared
        // scratch pipeline.
        let min_cov_items =
            (self.config.min_coverage * self.total_items as f64).ceil() as usize;
        for &idx in &dirty {
            let region = &self.regions[idx];
            if self.cost_model.cost(&self.space, region) > self.config.budget {
                continue;
            }
            let block = self
                .source
                .read_region(idx)
                .map_err(|e| BellwetherError::RegionRead { index: idx, source: e })?;
            outcome.rescored += 1;
            self.reports[idx] = self.evaluate(idx, &block, min_cov_items);
        }
        self.config
            .recorder
            .add(names::STREAM_REGIONS_RESCORED, outcome.rescored as u64);

        let new_best = self.argmin();
        if new_best != old_best {
            let to_summary = new_best.and_then(|i| self.reports[i].as_ref());
            let event = DriftEvent {
                append_seq: self.appends,
                from: old_summary.as_ref().map(|r| r.region.clone()),
                from_label: old_summary.as_ref().map(|r| r.label.clone()),
                from_error: old_summary.as_ref().map(|r| r.error.value),
                to: to_summary.map(|r| r.region.clone()),
                to_label: to_summary.map(|r| r.label.clone()),
                to_error: to_summary.map(|r| r.error.value),
            };
            self.config.recorder.add(names::STREAM_DRIFT_EVENTS, 1);
            self.drift_log.push(event.clone());
            outcome.drift = Some(event);
        }
        self.best = new_best;
        Ok(outcome)
    }

    fn evaluate(
        &mut self,
        idx: usize,
        block: &RegionBlock,
        min_cov_items: usize,
    ) -> Option<RegionReport> {
        if block.n() < self.config.min_examples || block.n() < min_cov_items {
            return None;
        }
        self.scratch.gather(block, None);
        let error = self.scratch.estimate(&self.config)?;
        let model = self.scratch.fit_model()?;
        let region = self.regions[idx].clone();
        Some(RegionReport {
            source_index: idx,
            region: region.clone(),
            label: self.space.label(&region),
            cost: self.cost_model.cost(&self.space, &region),
            n_examples: block.n(),
            error,
            model,
        })
    }

    /// Argmin over retained reports by `(error, source index)` — the
    /// same order `basic_search` uses (its reports arrive in source
    /// order, so its positional tie-break is the source-index one).
    fn argmin(&self) -> Option<usize> {
        let mut best: Option<(usize, f64)> = None;
        for (idx, report) in self.reports.iter().enumerate() {
            let Some(r) = report else { continue };
            match best {
                Some((_, e)) if r.error.value.total_cmp(&e).is_ge() => {}
                _ => best = Some((idx, r.error.value)),
            }
        }
        best.map(|(i, _)| i)
    }

    /// The current search state, shaped exactly as a cold
    /// [`basic_search`] over the concatenated input would return it.
    pub fn search_result(&self) -> BasicSearchResult {
        let reports: Vec<RegionReport> = self.reports.iter().flatten().cloned().collect();
        let best = self
            .best
            .map(|bi| reports.iter().position(|r| r.source_index == bi).expect("best report present"));
        BasicSearchResult {
            reports,
            best,
            skipped_regions: self.skipped.clone(),
        }
    }

    /// The current bellwether's report, if any region is feasible.
    pub fn bellwether(&self) -> Option<&RegionReport> {
        self.best.and_then(|i| self.reports[i].as_ref())
    }

    /// Every argmin flip observed so far, in append order.
    pub fn drift_log(&self) -> &[DriftEvent] {
        &self.drift_log
    }

    /// Number of appends folded so far.
    pub fn appends(&self) -> u64 {
        self.appends
    }

    /// Total fact rows folded (base + all appends).
    pub fn rows(&self) -> usize {
        self.cube.rows()
    }

    /// Current storage generation of the underlying layout.
    pub fn generation(&self) -> u64 {
        self.source.inner().generation()
    }

    /// The cached sharded source serving the training blocks.
    pub fn source(&self) -> &CachedSource<ShardedSource> {
        &self.source
    }

    /// The live delta cube (e.g. for inspecting the maintained
    /// `CubeResult`).
    pub fn cube(&self) -> &StreamingCube {
        &self.cube
    }

    /// The item table backing block assembly.
    pub fn items(&self) -> &ItemTable {
        &self.items
    }

    /// The on-disk layout directory.
    pub fn dir(&self) -> &Path {
        &self.dir
    }
}
