//! Item-centric bellwether-based prediction and its evaluation (§3.3,
//! §7.1 Figure 8, §7.2 Figure 9(c), §7.3 Figure 10).
//!
//! Three methods predict a new item's target value:
//!
//! * **Basic** — one bellwether region and model for every item;
//! * **Tree** — route the item down a bellwether tree by its item-table
//!   features, use the leaf's region/model;
//! * **Cube** — among the item's ancestor cube subsets, use the cell
//!   with the lowest upper confidence bound of error.
//!
//! Evaluation is k-fold cross-validation over *items*: train the method
//! on the training fold's items, then for each held-out item simulate
//! data acquisition from the chosen region (look up its query-generated
//! features there — zero if the item genuinely has no data, matching
//! the training-time NULL → 0 policy) and score the squared error of
//! the prediction. Reported is the pooled RMSE.

use crate::cube::optimized::build_optimized_cube;
use crate::cube::predict::select_cell;
use crate::cube::single_scan::build_single_scan_cube;
use crate::cube::{BellwetherCube, CubeConfig};
use crate::error::Result;
use crate::items::ItemTable;
use crate::problem::BellwetherConfig;
use crate::tree::rainforest::build_rainforest;
use crate::tree::{subset_bellwether, BellwetherTree, TreeConfig};
use bellwether_cube::RegionSpace;
use bellwether_linreg::{fold_assignment, LinearModel};
use bellwether_obs::{names, span};
use bellwether_storage::TrainingSource;
use std::collections::{HashMap, HashSet};

/// The item-centric prediction method under evaluation.
#[derive(Debug, Clone)]
pub enum Method {
    /// Single bellwether region from basic search.
    Basic,
    /// Bellwether tree (built with the RF algorithm).
    Tree(TreeConfig),
    /// Bellwether cube with confidence level P for cell selection.
    Cube(CubeConfig, f64),
}

impl Method {
    /// Short display name.
    pub fn name(&self) -> &'static str {
        match self {
            Method::Basic => "basic",
            Method::Tree(_) => "tree",
            Method::Cube(..) => "cube",
        }
    }
}

/// Cross-validation harness parameters.
#[derive(Debug, Clone, Copy)]
pub struct ItemCentricEval {
    /// Folds over items (the paper uses 10).
    pub folds: usize,
    /// Shuffle seed.
    pub seed: u64,
}

impl Default for ItemCentricEval {
    fn default() -> Self {
        ItemCentricEval {
            folds: 10,
            seed: 0x17EB,
        }
    }
}

/// A trained item-centric predictor for one fold.
enum FoldPredictor {
    Basic {
        region_index: usize,
        model: LinearModel,
    },
    Tree(BellwetherTree),
    Cube { cube: BellwetherCube, confidence: f64 },
}

/// Per-fold cache: region index → (item id → feature vector).
struct FeatureCache<'s> {
    source: &'s dyn TrainingSource,
    cached: HashMap<usize, HashMap<i64, Vec<f64>>>,
}

impl<'s> FeatureCache<'s> {
    fn new(source: &'s dyn TrainingSource) -> Self {
        FeatureCache {
            source,
            cached: HashMap::new(),
        }
    }

    /// The stored feature vector of `item` in region `idx`, or the
    /// zero-filled regional vector when the item has no data there.
    fn features(
        &mut self,
        idx: usize,
        item: i64,
        items: &ItemTable,
    ) -> Result<Option<Vec<f64>>> {
        if !self.cached.contains_key(&idx) {
            let block = self.source.read_region(idx)?;
            let map = block
                .item_ids
                .iter()
                .enumerate()
                .map(|(i, &id)| (id, block.row(i)))
                .collect::<HashMap<_, _>>();
            self.cached.insert(idx, map);
        }
        if let Some(x) = self.cached[&idx].get(&item) {
            return Ok(Some(x.clone()));
        }
        // No data in the region: intercept + statics + zero regional
        // features, the same convention training uses for NULLs.
        let Some(statics) = items.static_features(item) else {
            return Ok(None);
        };
        let p = self.source.feature_arity();
        let mut x = Vec::with_capacity(p);
        x.push(1.0);
        x.extend_from_slice(&statics);
        x.resize(p, 0.0);
        Ok(Some(x))
    }
}

/// Inputs to [`evaluate_method`] that describe the dataset (as opposed
/// to the method/CV knobs).
pub struct EvalContext<'a> {
    /// Entire training data over the feasible (under-budget) regions.
    pub source: &'a dyn TrainingSource,
    /// The candidate-region space.
    pub region_space: &'a RegionSpace,
    /// The item table.
    pub items: &'a ItemTable,
    /// Per-item target values.
    pub targets: &'a HashMap<i64, f64>,
    /// Item-hierarchy space (required by the cube method).
    pub item_space: Option<&'a RegionSpace>,
    /// Per-item leaf coordinates in the item space (cube method).
    pub item_coords: Option<&'a HashMap<i64, Vec<u32>>>,
}

/// Evaluate one item-centric method by k-fold CV over items: pooled
/// RMSE of its predictions. `None` when no fold produced a usable
/// predictor (e.g. no region is affordable).
pub fn evaluate_method(
    ctx: &EvalContext<'_>,
    problem: &BellwetherConfig,
    method: &Method,
    eval: &ItemCentricEval,
) -> Result<Option<f64>> {
    // Items that can be scored: present in the item table with targets.
    let mut eval_ids: Vec<i64> = ctx
        .items
        .ids()
        .iter()
        .copied()
        .filter(|id| ctx.targets.contains_key(id))
        .collect();
    eval_ids.sort_unstable();
    if eval_ids.len() < 2 {
        return Ok(None);
    }

    let _timer = span!(problem.recorder, "predict/evaluate/{}", method.name());
    let assignment = fold_assignment(eval_ids.len(), eval.folds, eval.seed);
    let k = assignment.iter().copied().max().map_or(1, |m| m + 1);

    let mut sse = 0.0;
    let mut count = 0usize;
    for fold in 0..k {
        let train_ids: Vec<i64> = eval_ids
            .iter()
            .enumerate()
            .filter(|(i, _)| assignment[*i] != fold)
            .map(|(_, &id)| id)
            .collect();
        let test_ids: Vec<i64> = eval_ids
            .iter()
            .enumerate()
            .filter(|(i, _)| assignment[*i] == fold)
            .map(|(_, &id)| id)
            .collect();

        let Some(predictor) = train_fold(ctx, problem, method, &train_ids)? else {
            continue;
        };
        let mut cache = FeatureCache::new(ctx.source);
        for &id in &test_ids {
            let Some((region_index, model)) = choose_model(&predictor, ctx, id) else {
                continue;
            };
            let Some(x) = cache.features(region_index, id, ctx.items)? else {
                continue;
            };
            let pred = model.predict(&x);
            let err = pred - ctx.targets[&id];
            sse += err * err;
            count += 1;
        }
    }
    problem.recorder.add(names::PREDICT_FOLDS, k as u64);
    problem.recorder.add(names::PREDICT_PREDICTIONS, count as u64);
    if count == 0 {
        return Ok(None);
    }
    Ok(Some((sse / count as f64).sqrt()))
}

/// Train one fold's predictor on the training items.
fn train_fold(
    ctx: &EvalContext<'_>,
    problem: &BellwetherConfig,
    method: &Method,
    train_ids: &[i64],
) -> Result<Option<FoldPredictor>> {
    match method {
        Method::Basic => {
            let ids: HashSet<i64> = train_ids.iter().copied().collect();
            let info = subset_bellwether(ctx.source, ctx.region_space, &ids, problem)?;
            Ok(info.map(|i| FoldPredictor::Basic {
                region_index: i.region_index,
                model: i.model,
            }))
        }
        Method::Tree(tree_cfg) => {
            let rows: Vec<usize> = train_ids
                .iter()
                .filter_map(|&id| ctx.items.row_of(id))
                .collect();
            let mut tree = build_rainforest(
                ctx.source,
                ctx.region_space,
                ctx.items,
                Some(rows),
                problem,
                tree_cfg,
            )?;
            let Some(root_info) = tree.root().info.as_ref() else {
                return Ok(None);
            };
            if tree_cfg.prune_frac > 0.0 {
                let penalty = tree_cfg.prune_frac
                    * root_info.error
                    * tree.root().item_rows.len() as f64;
                crate::tree::prune::prune_tree(&mut tree, penalty);
            }
            Ok(Some(FoldPredictor::Tree(tree)))
        }
        Method::Cube(cube_cfg, confidence) => {
            let (Some(item_space), Some(item_coords)) = (ctx.item_space, ctx.item_coords)
            else {
                return Err(crate::error::BellwetherError::Config(
                    "cube method requires item_space and item_coords".into(),
                ));
            };
            let train_set: HashSet<i64> = train_ids.iter().copied().collect();
            let train_coords: HashMap<i64, Vec<u32>> = item_coords
                .iter()
                .filter(|(id, _)| train_set.contains(id))
                .map(|(id, c)| (*id, c.clone()))
                .collect();
            if train_coords.is_empty() {
                return Ok(None);
            }
            // Theorem 1 makes the optimized construction available (and
            // much faster on many subsets) whenever the error measure is
            // training-set; otherwise fall back to the single scan.
            let cube = if problem.error_measure == crate::problem::ErrorMeasure::TrainingSet {
                build_optimized_cube(
                    ctx.source,
                    ctx.region_space,
                    item_space,
                    &train_coords,
                    problem,
                    cube_cfg,
                )?
            } else {
                build_single_scan_cube(
                    ctx.source,
                    ctx.region_space,
                    item_space,
                    &train_coords,
                    problem,
                    cube_cfg,
                )?
            };
            if cube.cells.is_empty() {
                return Ok(None);
            }
            Ok(Some(FoldPredictor::Cube {
                cube,
                confidence: *confidence,
            }))
        }
    }
}

/// Resolve the (region, model) the predictor uses for one test item.
fn choose_model<'p>(
    predictor: &'p FoldPredictor,
    ctx: &EvalContext<'_>,
    id: i64,
) -> Option<(usize, &'p LinearModel)> {
    match predictor {
        FoldPredictor::Basic {
            region_index,
            model,
        } => Some((*region_index, model)),
        FoldPredictor::Tree(tree) => {
            let info = tree.predicting_info(ctx.items, id)?;
            Some((info.region_index, &info.model))
        }
        FoldPredictor::Cube { cube, confidence } => {
            let coords = ctx.item_coords?.get(&id)?;
            let cell = select_cell(cube, coords, *confidence)?;
            Some((cell.region_index, &cell.model))
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::cube::tests_support::cube_fixture;
    use crate::problem::ErrorMeasure;

    fn problem() -> BellwetherConfig {
        BellwetherConfig::builder(1e9)
            .min_coverage(0.0)
            .min_examples(4)
            .error_measure(ErrorMeasure::TrainingSet)
            .build()
            .unwrap()
    }

    #[test]
    fn cube_and_tree_beat_basic_on_heterogeneous_items() {
        let (src, region_space, items, item_space, coords) = cube_fixture();
        let ctx = EvalContext {
            source: &src,
            region_space: &region_space,
            items: &items,
            targets: &(0..24)
                .map(|i| {
                    let is_a = i < 12;
                    let t = if is_a {
                        2.0 * (3 * i + 1) as f64
                    } else {
                        -4.0 * (i + 7) as f64
                    };
                    (i, t)
                })
                .collect(),
            item_space: Some(&item_space),
            item_coords: Some(&coords),
        };
        let eval = ItemCentricEval {
            folds: 4,
            seed: 3,
        };
        let basic = evaluate_method(&ctx, &problem(), &Method::Basic, &eval)
            .unwrap()
            .unwrap();
        let cube = evaluate_method(
            &ctx,
            &problem(),
            &Method::Cube(CubeConfig { min_subset_size: 5 }, 0.95),
            &eval,
        )
        .unwrap()
        .unwrap();
        let tree = evaluate_method(
            &ctx,
            &problem(),
            &Method::Tree(TreeConfig {
                min_node_items: 8,
                ..TreeConfig::default()
            }),
            &eval,
        )
        .unwrap()
        .unwrap();
        // The fixture's two groups need different regions: item-centric
        // methods must clearly beat the single-region basic method.
        assert!(cube < basic, "cube {cube} vs basic {basic}");
        assert!(tree < basic, "tree {tree} vs basic {basic}");
    }

    #[test]
    fn cube_method_requires_item_space() {
        let (src, region_space, items, _item_space, _coords) = cube_fixture();
        let targets = (0..24).map(|i| (i, i as f64)).collect();
        let ctx = EvalContext {
            source: &src,
            region_space: &region_space,
            items: &items,
            targets: &targets,
            item_space: None,
            item_coords: None,
        };
        let err = evaluate_method(
            &ctx,
            &problem(),
            &Method::Cube(CubeConfig::default(), 0.95),
            &ItemCentricEval::default(),
        );
        assert!(err.is_err());
    }

    #[test]
    fn too_few_items_yields_none() {
        let (src, region_space, items, _is, _c) = cube_fixture();
        let targets: HashMap<i64, f64> = [(0, 1.0)].into_iter().collect();
        let ctx = EvalContext {
            source: &src,
            region_space: &region_space,
            items: &items,
            targets: &targets,
            item_space: None,
            item_coords: None,
        };
        let out = evaluate_method(
            &ctx,
            &problem(),
            &Method::Basic,
            &ItemCentricEval::default(),
        )
        .unwrap();
        assert!(out.is_none());
    }

    #[test]
    fn method_names() {
        assert_eq!(Method::Basic.name(), "basic");
        assert_eq!(Method::Tree(TreeConfig::default()).name(), "tree");
        assert_eq!(Method::Cube(CubeConfig::default(), 0.9).name(), "cube");
    }
}
