//! Unified error type for bellwether analysis.

use std::fmt;

/// Errors surfaced by bellwether search, trees and cubes.
#[derive(Debug)]
pub enum BellwetherError {
    /// Relational substrate error.
    Table(bellwether_table::TableError),
    /// Storage IO error.
    Io(std::io::Error),
    /// Problem configuration is invalid.
    Config(String),
    /// A referenced item, region or attribute does not exist.
    NotFound(String),
    /// No feasible region satisfied the constraints.
    NoFeasibleRegion,
}

impl fmt::Display for BellwetherError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            BellwetherError::Table(e) => write!(f, "table error: {e}"),
            BellwetherError::Io(e) => write!(f, "io error: {e}"),
            BellwetherError::Config(msg) => write!(f, "invalid configuration: {msg}"),
            BellwetherError::NotFound(what) => write!(f, "not found: {what}"),
            BellwetherError::NoFeasibleRegion => {
                write!(f, "no feasible region satisfies the constraints")
            }
        }
    }
}

impl std::error::Error for BellwetherError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            BellwetherError::Table(e) => Some(e),
            BellwetherError::Io(e) => Some(e),
            _ => None,
        }
    }
}

impl From<bellwether_table::TableError> for BellwetherError {
    fn from(e: bellwether_table::TableError) -> Self {
        BellwetherError::Table(e)
    }
}

impl From<std::io::Error> for BellwetherError {
    fn from(e: std::io::Error) -> Self {
        BellwetherError::Io(e)
    }
}

/// Crate-wide result alias.
pub type Result<T> = std::result::Result<T, BellwetherError>;

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn displays_are_informative() {
        let e = BellwetherError::Config("budget must be positive".into());
        assert!(e.to_string().contains("budget"));
        let e = BellwetherError::NoFeasibleRegion;
        assert!(e.to_string().contains("feasible"));
        let e: BellwetherError =
            bellwether_table::TableError::UnknownColumn("x".into()).into();
        assert!(e.to_string().contains("unknown column"));
    }
}
