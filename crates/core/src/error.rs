//! Unified error type for bellwether analysis.

use std::fmt;

/// Errors surfaced by bellwether search, trees and cubes.
#[derive(Debug)]
pub enum BellwetherError {
    /// Relational substrate error.
    Table(bellwether_table::TableError),
    /// Storage IO error.
    Io(std::io::Error),
    /// Problem configuration is invalid.
    Config(String),
    /// A referenced item, region or attribute does not exist.
    NotFound(String),
    /// No feasible region satisfied the constraints.
    NoFeasibleRegion,
    /// Reading one region's training set failed; carries the failing
    /// region index so operators know *which* block to inspect.
    RegionRead {
        /// Index of the region whose read failed.
        index: usize,
        /// The underlying storage error (corruption, truncation, IO).
        source: std::io::Error,
    },
    /// A scan worker thread panicked. The panic is caught and isolated —
    /// the process keeps running; only this computation fails.
    WorkerPanic {
        /// Index of the panicking worker (its chunk position).
        worker: usize,
        /// The panic payload's message, when it was a string.
        message: String,
    },
    /// A `SkipUnreadable` scan exceeded its skip budget.
    TooManyUnreadable {
        /// Number of unreadable regions encountered.
        skipped: usize,
        /// The configured maximum.
        max_skipped: usize,
    },
}

impl fmt::Display for BellwetherError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            BellwetherError::Table(e) => write!(f, "table error: {e}"),
            BellwetherError::Io(e) => write!(f, "io error: {e}"),
            BellwetherError::Config(msg) => write!(f, "invalid configuration: {msg}"),
            BellwetherError::NotFound(what) => write!(f, "not found: {what}"),
            BellwetherError::NoFeasibleRegion => {
                write!(f, "no feasible region satisfies the constraints")
            }
            BellwetherError::RegionRead { index, source } => {
                write!(f, "failed to read region {index}: {source}")
            }
            BellwetherError::WorkerPanic { worker, message } => {
                write!(f, "scan worker {worker} panicked: {message}")
            }
            BellwetherError::TooManyUnreadable {
                skipped,
                max_skipped,
            } => {
                write!(
                    f,
                    "{skipped} unreadable regions exceed the skip budget of {max_skipped}"
                )
            }
        }
    }
}

impl std::error::Error for BellwetherError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            BellwetherError::Table(e) => Some(e),
            BellwetherError::Io(e) => Some(e),
            BellwetherError::RegionRead { source, .. } => Some(source),
            _ => None,
        }
    }
}

impl From<bellwether_table::TableError> for BellwetherError {
    fn from(e: bellwether_table::TableError) -> Self {
        BellwetherError::Table(e)
    }
}

impl From<std::io::Error> for BellwetherError {
    fn from(e: std::io::Error) -> Self {
        BellwetherError::Io(e)
    }
}

/// Crate-wide result alias.
pub type Result<T> = std::result::Result<T, BellwetherError>;

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn displays_are_informative() {
        let e = BellwetherError::Config("budget must be positive".into());
        assert!(e.to_string().contains("budget"));
        let e = BellwetherError::NoFeasibleRegion;
        assert!(e.to_string().contains("feasible"));
        let e: BellwetherError =
            bellwether_table::TableError::UnknownColumn("x".into()).into();
        assert!(e.to_string().contains("unknown column"));
    }

    #[test]
    fn fault_variants_carry_their_context() {
        let e = BellwetherError::RegionRead {
            index: 17,
            source: std::io::Error::new(std::io::ErrorKind::InvalidData, "corrupt block"),
        };
        assert!(e.to_string().contains("region 17"));
        assert!(e.to_string().contains("corrupt block"));
        assert!(std::error::Error::source(&e).is_some());

        let e = BellwetherError::WorkerPanic {
            worker: 2,
            message: "index out of bounds".into(),
        };
        assert!(e.to_string().contains("worker 2"));
        assert!(e.to_string().contains("index out of bounds"));

        let e = BellwetherError::TooManyUnreadable {
            skipped: 5,
            max_skipped: 3,
        };
        assert!(e.to_string().contains('5'));
        assert!(e.to_string().contains('3'));
    }
}
