//! Construction of the *entire training data* (§4.2, §5.2): the training
//! sets of all feasible regions, materialised once via the CUBE pass and
//! stored behind a [`TrainingSource`].
//!
//! Each example's feature vector is laid out as
//! `[1 (intercept), item-table numeric features…, regional features…]`,
//! so every region's training set shares one design-matrix shape and the
//! scan algorithms can mix blocks freely. NULL regional aggregates
//! become 0 — an item with no sales in a region genuinely had zero
//! profit/orders there — a policy documented here once and applied
//! uniformly.

use crate::error::Result;
use crate::items::ItemTable;
use crate::problem::ErrorMeasure;
use bellwether_cube::{CubeResult, Parallelism, RegionId, RegionSpace};
use bellwether_linreg::{ErrorEstimate, RegressionData};
use bellwether_storage::{MemorySource, RegionBlock, TrainingSource, TrainingWriter};
use std::collections::{HashMap, HashSet};
use std::path::Path;

/// Assemble one region's training block from the cube result.
///
/// Items included are those with data in the region *and* a known target
/// (the paper's `I_r`, intersected with τ's domain).
pub fn region_block(
    cube: &CubeResult,
    region: &RegionId,
    items: &ItemTable,
    targets: &HashMap<i64, f64>,
) -> RegionBlock {
    let n_static = items.numeric_attrs().len();
    let n_regional = cube.measure_names.len();
    let p = (1 + n_static + n_regional) as u32;
    let mut block = RegionBlock::new(region.0.clone(), p);

    let Some(region_items) = cube.regions.get(region) else {
        return block;
    };
    // Deterministic example order: sort by item id.
    let mut ids: Vec<i64> = region_items.keys().copied().collect();
    ids.sort_unstable();

    let mut x = Vec::with_capacity(p as usize);
    for id in ids {
        let Some(&target) = targets.get(&id) else { continue };
        let Some(statics) = items.static_features(id) else { continue };
        let regional = &region_items[&id];
        x.clear();
        x.push(1.0);
        x.extend_from_slice(&statics);
        x.extend(regional.iter().map(|v| v.unwrap_or(0.0)));
        block.push(id, &x, target);
    }
    block
}

/// Build an in-memory entire-training-data source over `regions`
/// (typically the feasible regions, in a fixed scan order), with default
/// [`Parallelism`].
pub fn build_memory_source(
    cube: &CubeResult,
    regions: &[RegionId],
    items: &ItemTable,
    targets: &HashMap<i64, f64>,
) -> MemorySource {
    build_memory_source_with(cube, regions, items, targets, Parallelism::default())
}

/// [`build_memory_source`] with an explicit thread budget: region blocks
/// are independent, so they shard across workers. Block order is always
/// `regions` order — the scan order every algorithm depends on.
pub fn build_memory_source_with(
    cube: &CubeResult,
    regions: &[RegionId],
    items: &ItemTable,
    targets: &HashMap<i64, f64>,
    par: Parallelism,
) -> MemorySource {
    let threads = par.threads_for(regions.len());
    let blocks = if threads <= 1 {
        regions
            .iter()
            .map(|r| region_block(cube, r, items, targets))
            .collect()
    } else {
        std::thread::scope(|s| {
            let handles: Vec<_> = (0..threads)
                .map(|w| {
                    let lo = regions.len() * w / threads;
                    let hi = regions.len() * (w + 1) / threads;
                    s.spawn(move || {
                        regions[lo..hi]
                            .iter()
                            .map(|r| region_block(cube, r, items, targets))
                            .collect::<Vec<_>>()
                    })
                })
                .collect();
            handles
                .into_iter()
                .flat_map(|h| h.join().expect("block worker panicked"))
                .collect()
        })
    };
    MemorySource::new(blocks)
}

/// Write the entire training data to disk (for the efficiency
/// experiments, where every region request must hit the file).
pub fn write_disk_source(
    path: &Path,
    cube: &CubeResult,
    regions: &[RegionId],
    space: &RegionSpace,
    items: &ItemTable,
    targets: &HashMap<i64, f64>,
) -> Result<()> {
    let n_static = items.numeric_attrs().len();
    let p = (1 + n_static + cube.measure_names.len()) as u32;
    let mut writer = TrainingWriter::create(path, p, space.arity() as u32)?;
    for r in regions {
        writer.write_region(&region_block(cube, r, items, targets))?;
    }
    writer.finish()?;
    Ok(())
}

/// Like [`write_disk_source`], but the writer reports
/// `storage/regions_written` and `storage/bytes_written` into
/// `registry`.
pub fn write_disk_source_in_registry(
    path: &Path,
    cube: &CubeResult,
    regions: &[RegionId],
    space: &RegionSpace,
    items: &ItemTable,
    targets: &HashMap<i64, f64>,
    registry: &bellwether_obs::Registry,
) -> Result<()> {
    let n_static = items.numeric_attrs().len();
    let p = (1 + n_static + cube.measure_names.len()) as u32;
    let mut writer =
        TrainingWriter::create_with_registry(path, p, space.arity() as u32, registry)?;
    for r in regions {
        writer.write_region(&region_block(cube, r, items, targets))?;
    }
    writer.finish()?;
    Ok(())
}

/// View a block as a regression dataset (weights 1). Lane-by-lane
/// copies of the block's feature columns — no per-row work.
pub fn block_to_data(block: &RegionBlock) -> RegressionData {
    let mut d = RegressionData::with_capacity(block.p as usize, block.n());
    d.extend_from_cols(block.cols(), &block.targets);
    d
}

/// View the subset of a block whose items are in `keep` as a dataset.
pub fn block_subset_data(block: &RegionBlock, keep: &HashSet<i64>) -> RegressionData {
    let mut d = RegressionData::new(block.p as usize);
    let rows: Vec<usize> = (0..block.n())
        .filter(|&i| keep.contains(&block.item_ids[i]))
        .collect();
    d.extend_from_cols_gather(block.cols(), &block.targets, &rows);
    d
}

/// Estimate the error of the model a region induces for an item subset:
/// `Error(h_r | S)` — the quantity minimised everywhere in the paper.
/// `None` if the subset has too few examples in the region.
pub fn region_subset_error(
    source: &dyn TrainingSource,
    region_idx: usize,
    keep: Option<&HashSet<i64>>,
    measure: ErrorMeasure,
    min_examples: usize,
) -> Result<Option<ErrorEstimate>> {
    let block = source.read_region(region_idx)?;
    let data = match keep {
        Some(keep) => block_subset_data(&block, keep),
        None => block_to_data(&block),
    };
    if data.n() < min_examples {
        return Ok(None);
    }
    Ok(measure.estimate(&data))
}

#[cfg(test)]
mod tests {
    use super::*;
    use bellwether_cube::{cube_pass, CubeInput, Dimension, Hierarchy, Measure};
    use bellwether_table::ops::AggFunc;
    use bellwether_table::{Column, DataType, Schema, Table};

    fn items() -> ItemTable {
        let t = Table::new(
            Schema::from_pairs(&[("id", DataType::Int), ("rd", DataType::Float)]).unwrap(),
            vec![
                Column::from_ints(vec![1, 2, 3]),
                Column::from_floats(vec![0.5, 1.5, 2.5]),
            ],
        )
        .unwrap();
        ItemTable::from_table(&t, "id", &["rd"], &[]).unwrap()
    }

    fn space() -> RegionSpace {
        RegionSpace::new(vec![
            Dimension::Interval {
                name: "T".into(),
                max_t: 2,
            },
            Dimension::Hierarchy(Hierarchy::flat("L", "All", &["a", "b"])),
        ])
    }

    fn cube() -> CubeResult {
        // items 1 and 2 have rows; item 3 has none.
        let input = CubeInput {
            item_ids: vec![1, 1, 2],
            coords: vec![0, 1, 1, 1, 0, 2],
            measures: vec![Measure::Numeric {
                name: "profit".into(),
                func: AggFunc::Sum,
                values: vec![Some(4.0), Some(6.0), Some(8.0)],
            }],
        };
        cube_pass(&space(), &input)
    }

    fn targets() -> HashMap<i64, f64> {
        [(1, 100.0), (2, 200.0)].into_iter().collect()
    }

    #[test]
    fn block_layout_and_membership() {
        let c = cube();
        let it = items();
        let t = targets();
        // [1-2, All] (coords [1, 0]) covers both items.
        let b = region_block(&c, &RegionId(vec![1, 0]), &it, &t);
        assert_eq!(b.p, 3); // intercept + rd + profit
        assert_eq!(b.n(), 2);
        assert_eq!(b.item_ids, vec![1, 2]); // sorted
        assert_eq!(b.row(0), &[1.0, 0.5, 10.0]); // item 1: profit 4+6
        assert_eq!(b.row(1), &[1.0, 1.5, 8.0]);
        assert_eq!(b.y(1), 200.0);
        // [1-1, a] covers only item 1.
        let b = region_block(&c, &RegionId(vec![0, 1]), &it, &t);
        assert_eq!(b.n(), 1);
        assert_eq!(b.row(0), &[1.0, 0.5, 4.0]);
    }

    #[test]
    fn items_without_targets_are_skipped() {
        let c = cube();
        let it = items();
        let mut t = targets();
        t.remove(&2);
        let b = region_block(&c, &RegionId(vec![1, 0]), &it, &t);
        assert_eq!(b.item_ids, vec![1]);
    }

    #[test]
    fn memory_source_preserves_region_order() {
        let c = cube();
        let regions = vec![RegionId(vec![0, 1]), RegionId(vec![1, 0])];
        let src = build_memory_source(&c, &regions, &items(), &targets());
        assert_eq!(src.num_regions(), 2);
        assert_eq!(src.region_coords(0), &[0, 1]);
        assert_eq!(src.region_coords(1), &[1, 0]);
    }

    #[test]
    fn disk_round_trip_matches_memory() {
        let c = cube();
        let regions = vec![RegionId(vec![0, 1]), RegionId(vec![1, 0])];
        let it = items();
        let t = targets();
        let mem = build_memory_source(&c, &regions, &it, &t);
        let path = std::env::temp_dir().join("bw_training_rt.bwtd");
        write_disk_source(&path, &c, &regions, &space(), &it, &t).unwrap();
        let disk = bellwether_storage::DiskSource::open(&path).unwrap();
        for i in 0..2 {
            assert_eq!(disk.read_region(i).unwrap(), mem.read_region(i).unwrap());
        }
        std::fs::remove_file(&path).ok();
    }

    #[test]
    fn subset_filtering() {
        let c = cube();
        let b = region_block(&c, &RegionId(vec![1, 0]), &items(), &targets());
        let keep: HashSet<i64> = [2].into_iter().collect();
        let d = block_subset_data(&b, &keep);
        assert_eq!(d.n(), 1);
        assert_eq!(d.y(0), 200.0);
        let full = block_to_data(&b);
        assert_eq!(full.n(), 2);
    }
}
