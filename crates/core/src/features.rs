//! Feature and target generation queries (§3.2, §4.1).
//!
//! The historical database is a star schema `DB = {F, T₁, …, Tₙ}`. Three
//! stylized aggregate-select-join query forms generate one regional
//! feature each:
//!
//! * `α_f(F.A) σ_{ID=i, Z∈r} F` — aggregate a fact column;
//! * `α_f(T.A) ((σ_{ID=i, Z∈r} F) ⋈ T)` — aggregate a reference-table
//!   column once per matching fact row;
//! * `α_f(T.A) ((π_FK σ_{ID=i, Z∈r} F) ⋈ T)` — aggregate a reference
//!   column once per *distinct* foreign key.
//!
//! [`build_cube_input`] applies the §4.2 rewrite, turning the per-region
//! per-item selections into inputs for one CUBE pass.

use crate::error::{BellwetherError, Result};
use bellwether_cube::{CubeInput, Dimension, Measure, Parallelism, RegionSpace};
use bellwether_table::ops::AggFunc;
use bellwether_table::{Table, Value};
use std::collections::HashMap;

/// One regional feature, defined by a stylized query form.
#[derive(Debug, Clone)]
pub enum FeatureQuery {
    /// `α_func(F.column)` over the item's fact rows in the region.
    FactAgg {
        /// Output feature name.
        name: String,
        /// Fact column to aggregate.
        column: String,
        /// Aggregate function (Sum, Min, Max, Avg or Count).
        func: AggFunc,
    },
    /// `α_func(T.column)` over the reference rows matched by the item's
    /// fact rows in the region (one contribution per fact row).
    JoinAgg {
        /// Output feature name.
        name: String,
        /// Reference table name.
        table: String,
        /// Foreign-key column in the fact table.
        fk: String,
        /// Reference-table column to aggregate.
        column: String,
        /// Aggregate function.
        func: AggFunc,
    },
    /// `α_func(T.column)` over the *distinct* foreign keys of the item's
    /// fact rows in the region (each reference row counted once).
    DistinctJoinAgg {
        /// Output feature name.
        name: String,
        /// Reference table name.
        table: String,
        /// Foreign-key column in the fact table.
        fk: String,
        /// Reference-table column to aggregate (ignored for
        /// CountDistinct).
        column: String,
        /// Aggregate function (Sum, Min, Max, Avg or CountDistinct).
        func: AggFunc,
    },
}

impl FeatureQuery {
    /// The output feature name.
    pub fn name(&self) -> &str {
        match self {
            FeatureQuery::FactAgg { name, .. }
            | FeatureQuery::JoinAgg { name, .. }
            | FeatureQuery::DistinctJoinAgg { name, .. } => name,
        }
    }
}

/// Per-fact-row `(foreign key, joined reference value)` columns.
type JoinedValues = (Vec<Option<i64>>, Vec<Option<f64>>);

/// The historical star-schema database.
#[derive(Debug, Clone)]
pub struct StarDatabase {
    /// The fact table `F` (e.g. OrderTable).
    pub fact: Table,
    /// Reference tables by name, each with its primary-key column.
    pub refs: HashMap<String, (Table, String)>,
    /// Name of the item-id column in the fact table.
    pub item_col: String,
    /// Names of the fact columns carrying the dimension coordinates, in
    /// region-space dimension order. Interval dimensions expect Int time
    /// points (1-based); hierarchical dimensions expect Str leaf labels.
    pub dim_cols: Vec<String>,
}

impl StarDatabase {
    /// Load a star database from CSV readers: `(schema, reader)` for the
    /// fact table and `(name, schema, pk, reader)` per reference table.
    /// Headers must match the schemas. This is the adoption path for
    /// real exported data — see `examples/quickstart.rs` for the
    /// in-memory route.
    pub fn from_csv<F: std::io::BufRead, R: std::io::BufRead>(
        fact: (bellwether_table::Schema, F),
        item_col: impl Into<String>,
        dim_cols: Vec<String>,
        references: Vec<(String, bellwether_table::Schema, String, R)>,
    ) -> Result<Self> {
        let fact = bellwether_table::csv::read_csv(fact.0, fact.1)?;
        let mut refs = HashMap::new();
        for (name, schema, pk, reader) in references {
            let table = bellwether_table::csv::read_csv(schema, reader)?;
            refs.insert(name, (table, pk));
        }
        Ok(StarDatabase {
            fact,
            refs,
            item_col: item_col.into(),
            dim_cols,
        })
    }

    /// Look up a reference table.
    fn reference(&self, name: &str) -> Result<&(Table, String)> {
        self.refs
            .get(name)
            .ok_or_else(|| BellwetherError::NotFound(format!("reference table {name}")))
    }

    /// Item ids of all fact rows.
    pub fn fact_item_ids(&self) -> Result<Vec<i64>> {
        let col = self.fact.column_by_name(&self.item_col)?;
        let data = col.as_int(&self.item_col)?;
        Ok(data.values.clone())
    }

    /// Dimension coordinates of all fact rows, flattened row-major, using
    /// the space's dimensions to map raw values to coordinate ids.
    pub fn fact_coords(&self, space: &RegionSpace) -> Result<Vec<u32>> {
        if space.arity() != self.dim_cols.len() {
            return Err(BellwetherError::Config(format!(
                "space arity {} != dim_cols {}",
                space.arity(),
                self.dim_cols.len()
            )));
        }
        let n = self.fact.num_rows();
        let mut coords = vec![0u32; n * space.arity()];
        for (d, (dim, col_name)) in space.dims().iter().zip(&self.dim_cols).enumerate() {
            let col = self.fact.column_by_name(col_name)?;
            match dim {
                Dimension::Interval { max_t, name } => {
                    let data = col.as_int(col_name)?;
                    for row in 0..n {
                        let t = data.values[row];
                        if t < 1 || t as u32 > *max_t {
                            return Err(BellwetherError::Config(format!(
                                "time point {t} out of range 1..={max_t} in dimension {name}"
                            )));
                        }
                        coords[row * space.arity() + d] = (t - 1) as u32;
                    }
                }
                Dimension::Hierarchy(h) => {
                    let data = col.as_str(col_name)?;
                    // memoize label → node lookups (states repeat heavily)
                    let mut cache: HashMap<&str, u32> = HashMap::new();
                    for row in 0..n {
                        let label: &str = &data.values[row];
                        let node = match cache.get(label) {
                            Some(&v) => v,
                            None => {
                                let v = h.id_of(label).ok_or_else(|| {
                                    BellwetherError::NotFound(format!(
                                        "hierarchy {} leaf {label:?}",
                                        h.name()
                                    ))
                                })?;
                                if !h.is_leaf(v) {
                                    return Err(BellwetherError::Config(format!(
                                        "fact row {row} references non-leaf {label:?}"
                                    )));
                                }
                                cache.insert(label, v);
                                v
                            }
                        };
                        coords[row * space.arity() + d] = node;
                    }
                }
            }
        }
        Ok(coords)
    }

    /// Per-fact-row numeric values of a fact column (`None` = NULL).
    fn fact_values(&self, column: &str) -> Result<Vec<Option<f64>>> {
        let col = self.fact.column_by_name(column)?;
        Ok((0..self.fact.num_rows()).map(|r| col.float_at(r)).collect())
    }

    /// Per-fact-row foreign keys and their joined reference values.
    fn joined_values(&self, table: &str, fk: &str, column: &str) -> Result<JoinedValues> {
        let (ref_table, pk) = self.reference(table)?;
        let pk_col = ref_table.column_by_name(pk)?.as_int(pk)?;
        let val_col = ref_table.column_by_name(column)?;
        let mut lut: HashMap<i64, Option<f64>> = HashMap::with_capacity(ref_table.num_rows());
        for row in 0..ref_table.num_rows() {
            if pk_col.is_valid(row)
                && lut
                    .insert(pk_col.values[row], val_col.float_at(row))
                    .is_some()
                {
                    return Err(BellwetherError::Config(format!(
                        "duplicate primary key in reference table {table}"
                    )));
                }
        }
        let fk_col = self.fact.column_by_name(fk)?.as_int(fk)?;
        let n = self.fact.num_rows();
        let mut keys = Vec::with_capacity(n);
        let mut values = Vec::with_capacity(n);
        for row in 0..n {
            if fk_col.is_valid(row) {
                let k = fk_col.values[row];
                match lut.get(&k) {
                    Some(v) => {
                        keys.push(Some(k));
                        values.push(*v);
                    }
                    None => {
                        // dangling FK: never joins (inner-join semantics)
                        keys.push(None);
                        values.push(None);
                    }
                }
            } else {
                keys.push(None);
                values.push(None);
            }
        }
        Ok((keys, values))
    }
}

/// Apply the §4.2 rewrite: compile feature queries into one CUBE input,
/// with default [`Parallelism`].
pub fn build_cube_input(
    db: &StarDatabase,
    space: &RegionSpace,
    queries: &[FeatureQuery],
) -> Result<CubeInput> {
    build_cube_input_with(db, space, queries, Parallelism::default())
}

/// [`build_cube_input`] with an explicit thread budget: measure columns
/// are materialised query-by-query, so independent queries shard across
/// workers. Output order is query order regardless of thread count.
pub fn build_cube_input_with(
    db: &StarDatabase,
    space: &RegionSpace,
    queries: &[FeatureQuery],
    par: Parallelism,
) -> Result<CubeInput> {
    let item_ids = db.fact_item_ids()?;
    let coords = db.fact_coords(space)?;
    let build_measure = |q: &FeatureQuery| -> Result<Measure> {
        Ok(match q {
            FeatureQuery::FactAgg { name, column, func } => Measure::Numeric {
                name: name.clone(),
                func: *func,
                values: db.fact_values(column)?,
            },
            FeatureQuery::JoinAgg {
                name,
                table,
                fk,
                column,
                func,
            } => {
                let (_, values) = db.joined_values(table, fk, column)?;
                Measure::Numeric {
                    name: name.clone(),
                    func: *func,
                    values,
                }
            }
            FeatureQuery::DistinctJoinAgg {
                name,
                table,
                fk,
                column,
                func,
            } => {
                let (keys, values) = db.joined_values(table, fk, column)?;
                // A NULL reference value cannot contribute to the distinct
                // aggregate: drop the key too.
                let (keys, values): (Vec<_>, Vec<_>) = keys
                    .into_iter()
                    .zip(values)
                    .map(|(k, v)| match (k, v) {
                        (Some(k), Some(v)) => (Some(k), v),
                        _ => (None, 0.0),
                    })
                    .unzip();
                Measure::DistinctKeyed {
                    name: name.clone(),
                    func: *func,
                    keys,
                    values,
                }
            }
        })
    };

    let threads = par.threads_for(queries.len());
    let results: Vec<Result<Measure>> = if threads <= 1 {
        queries.iter().map(build_measure).collect()
    } else {
        std::thread::scope(|s| {
            let handles: Vec<_> = (0..threads)
                .map(|w| {
                    let lo = queries.len() * w / threads;
                    let hi = queries.len() * (w + 1) / threads;
                    let build_measure = &build_measure;
                    s.spawn(move || queries[lo..hi].iter().map(build_measure).collect::<Vec<_>>())
                })
                .collect();
            handles
                .into_iter()
                .flat_map(|h| h.join().expect("measure worker panicked"))
                .collect()
        })
    };
    let measures = results.into_iter().collect::<Result<Vec<Measure>>>()?;
    Ok(CubeInput {
        item_ids,
        coords,
        measures,
    })
}

/// Automatic feature generation (§3.4): enumerate a sensible default
/// set of stylized feature queries straight from the star schema, so an
/// analyst can run bellwether analysis without hand-writing queries.
///
/// For every numeric fact column that is not the item id or a dimension
/// coordinate: `sum`, `avg`, `max` and one `count`. For every reference
/// table and each of its numeric non-key columns: a fact-side `max`
/// (`JoinAgg`) and a distinct-FK `sum` (`DistinctJoinAgg`), plus one
/// `count_distinct` of the foreign key per reference table.
///
/// `fk_of` maps each reference-table name to its foreign-key column in
/// the fact table (schemas don't record this relationship).
pub fn auto_generate_queries(
    db: &StarDatabase,
    fk_of: &HashMap<String, String>,
) -> Result<Vec<FeatureQuery>> {
    use bellwether_table::DataType;
    let mut out = Vec::new();

    let excluded: Vec<&str> = std::iter::once(db.item_col.as_str())
        .chain(db.dim_cols.iter().map(String::as_str))
        .chain(fk_of.values().map(String::as_str))
        .collect();

    let mut counted = false;
    for field in db.fact.schema().fields() {
        if excluded.contains(&field.name.as_str()) {
            continue;
        }
        let numeric = matches!(field.dtype, DataType::Int | DataType::Float);
        if !numeric {
            continue;
        }
        for func in [AggFunc::Sum, AggFunc::Avg, AggFunc::Max] {
            out.push(FeatureQuery::FactAgg {
                name: format!("{}_{}", func.name(), field.name),
                column: field.name.clone(),
                func,
            });
        }
        if !counted {
            out.push(FeatureQuery::FactAgg {
                name: format!("count_{}", field.name),
                column: field.name.clone(),
                func: AggFunc::Count,
            });
            counted = true;
        }
    }

    for (table_name, (table, pk)) in &db.refs {
        let fk = fk_of.get(table_name).ok_or_else(|| {
            BellwetherError::Config(format!(
                "no foreign-key mapping for reference table {table_name}"
            ))
        })?;
        // Validate the FK column exists and is an Int like the PK.
        db.fact.column_by_name(fk)?.as_int(fk)?;
        let mut first = true;
        for field in table.schema().fields() {
            if &field.name == pk
                || !matches!(field.dtype, DataType::Int | DataType::Float)
            {
                continue;
            }
            out.push(FeatureQuery::JoinAgg {
                name: format!("max_{}_{}", table_name, field.name),
                table: table_name.clone(),
                fk: fk.clone(),
                column: field.name.clone(),
                func: AggFunc::Max,
            });
            out.push(FeatureQuery::DistinctJoinAgg {
                name: format!("distinct_sum_{}_{}", table_name, field.name),
                table: table_name.clone(),
                fk: fk.clone(),
                column: field.name.clone(),
                func: AggFunc::Sum,
            });
            if first {
                out.push(FeatureQuery::DistinctJoinAgg {
                    name: format!("n_distinct_{table_name}"),
                    table: table_name.clone(),
                    fk: fk.clone(),
                    column: field.name.clone(),
                    func: AggFunc::CountDistinct,
                });
                first = false;
            }
        }
    }
    Ok(out)
}

/// The target generation query τ (§3.2): one global aggregate of a fact
/// column per item — e.g. total first-year worldwide profit. Items with
/// no fact rows are absent.
pub fn global_target(db: &StarDatabase, column: &str, func: AggFunc) -> Result<HashMap<i64, f64>> {
    use bellwether_table::ops::{aggregate, AggExpr};
    let out = aggregate(
        &db.fact,
        &[db.item_col.as_str()],
        &[AggExpr::new(func, column).with_alias("target")],
    )?;
    let ids = out.column_by_name(&db.item_col)?;
    let targets = out.column_by_name("target")?;
    let mut map = HashMap::with_capacity(out.num_rows());
    for row in 0..out.num_rows() {
        if let (Value::Int(id), Some(t)) = (ids.value(row), targets.float_at(row)) {
            map.insert(id, t);
        }
    }
    Ok(map)
}

#[cfg(test)]
mod tests {
    use super::*;
    use bellwether_cube::{cube_pass, Hierarchy, RegionId};
    use bellwether_table::{Column, DataType, Schema};

    /// The motivating example's schema in miniature: orders + ads.
    fn db() -> StarDatabase {
        let fact = Table::new(
            Schema::from_pairs(&[
                ("item", DataType::Int),
                ("week", DataType::Int),
                ("state", DataType::Str),
                ("profit", DataType::Float),
                ("ad", DataType::Int),
            ])
            .unwrap(),
            vec![
                Column::from_ints(vec![1, 1, 1, 2]),
                Column::from_ints(vec![1, 2, 1, 2]),
                Column::from_strs(&["WI", "WI", "MD", "MD"]),
                Column::from_floats(vec![10.0, 20.0, 5.0, 1.0]),
                Column::from_ints(vec![7, 7, 8, 9]),
            ],
        )
        .unwrap();
        let ads = Table::new(
            Schema::from_pairs(&[("ad", DataType::Int), ("size", DataType::Float)]).unwrap(),
            vec![
                Column::from_ints(vec![7, 8]),
                Column::from_floats(vec![3.0, 9.0]),
            ],
        )
        .unwrap();
        let mut refs = HashMap::new();
        refs.insert("ads".to_string(), (ads, "ad".to_string()));
        StarDatabase {
            fact,
            refs,
            item_col: "item".into(),
            dim_cols: vec!["week".into(), "state".into()],
        }
    }

    fn space() -> RegionSpace {
        let mut loc = Hierarchy::new("Loc", "All");
        let us = loc.add_child(0, "US");
        loc.add_child(us, "WI");
        loc.add_child(us, "MD");
        RegionSpace::new(vec![
            Dimension::Interval {
                name: "Time".into(),
                max_t: 2,
            },
            Dimension::Hierarchy(loc),
        ])
    }

    fn queries() -> Vec<FeatureQuery> {
        vec![
            FeatureQuery::FactAgg {
                name: "regional_profit".into(),
                column: "profit".into(),
                func: AggFunc::Sum,
            },
            FeatureQuery::JoinAgg {
                name: "max_ad_size".into(),
                table: "ads".into(),
                fk: "ad".into(),
                column: "size".into(),
                func: AggFunc::Max,
            },
            FeatureQuery::DistinctJoinAgg {
                name: "total_ad_size".into(),
                table: "ads".into(),
                fk: "ad".into(),
                column: "size".into(),
                func: AggFunc::Sum,
            },
        ]
    }

    #[test]
    fn end_to_end_motivating_example() {
        let db = db();
        let space = space();
        let input = build_cube_input(&db, &space, &queries()).unwrap();
        let result = cube_pass(&space, &input);

        // [1-2, WI] item 1: profit 30, max ad size 3, distinct-ad total 3
        let f = result.features(&RegionId(vec![1, 2]), 1).unwrap();
        assert_eq!(f, &vec![Some(30.0), Some(3.0), Some(3.0)]);
        // [1-2, All] item 1: profit 35, max size 9, distinct ads {7,8} → 12
        let f = result.features(&RegionId(vec![1, 0]), 1).unwrap();
        assert_eq!(f, &vec![Some(35.0), Some(9.0), Some(12.0)]);
    }

    #[test]
    fn global_target_sums_fact() {
        let t = global_target(&db(), "profit", AggFunc::Sum).unwrap();
        assert_eq!(t[&1], 35.0);
        assert_eq!(t[&2], 1.0);
    }

    #[test]
    fn dangling_fk_never_joins() {
        let db = db(); // ad 9 has no reference row
        let (keys, values) = db.joined_values("ads", "ad", "size").unwrap();
        assert_eq!(keys[3], None);
        assert_eq!(values[3], None);
        assert_eq!(keys[0], Some(7));
        assert_eq!(values[0], Some(3.0));
    }

    #[test]
    fn bad_time_point_rejected() {
        let mut db = db();
        db.dim_cols = vec!["week".into(), "state".into()];
        let space = RegionSpace::new(vec![
            Dimension::Interval {
                name: "Time".into(),
                max_t: 1, // week 2 rows now out of range
            },
            Dimension::Hierarchy(Hierarchy::flat("Loc", "All", &["WI", "MD"])),
        ]);
        assert!(db.fact_coords(&space).is_err());
    }

    #[test]
    fn star_database_loads_from_csv() {
        use bellwether_table::Schema;
        let fact_csv = "item,week,state,profit\n1,1,WI,10.5\n1,2,WI,20.0\n2,1,MD,5.0\n";
        let ads_csv = "ad,size\n7,3.0\n8,9.0\n";
        let fact_schema = Schema::from_pairs(&[
            ("item", DataType::Int),
            ("week", DataType::Int),
            ("state", DataType::Str),
            ("profit", DataType::Float),
        ])
        .unwrap();
        let ads_schema =
            Schema::from_pairs(&[("ad", DataType::Int), ("size", DataType::Float)]).unwrap();
        let db = StarDatabase::from_csv(
            (fact_schema, std::io::Cursor::new(fact_csv)),
            "item",
            vec!["week".into(), "state".into()],
            vec![(
                "ads".to_string(),
                ads_schema,
                "ad".to_string(),
                std::io::Cursor::new(ads_csv),
            )],
        )
        .unwrap();
        assert_eq!(db.fact.num_rows(), 3);
        assert_eq!(db.refs["ads"].0.num_rows(), 2);
        let targets = global_target(&db, "profit", AggFunc::Sum).unwrap();
        assert_eq!(targets[&1], 30.5);
    }

    #[test]
    fn auto_generation_covers_the_schema() {
        let db = db();
        let fk_of: HashMap<String, String> =
            [("ads".to_string(), "ad".to_string())].into();
        let queries = auto_generate_queries(&db, &fk_of).unwrap();
        let names: Vec<&str> = queries.iter().map(FeatureQuery::name).collect();
        // profit: sum/avg/max + one count
        assert!(names.contains(&"sum_profit"));
        assert!(names.contains(&"avg_profit"));
        assert!(names.contains(&"max_profit"));
        assert!(names.iter().any(|n| n.starts_with("count_")));
        // reference table: max, distinct sum, distinct count
        assert!(names.contains(&"max_ads_size"));
        assert!(names.contains(&"distinct_sum_ads_size"));
        assert!(names.contains(&"n_distinct_ads"));
        // id / dims / fk excluded from fact aggregates
        assert!(!names.contains(&"sum_item"));
        assert!(!names.contains(&"sum_week"));
        assert!(!names.contains(&"sum_ad"));
        // And the generated queries actually run through the CUBE pass.
        let input = build_cube_input(&db, &space(), &queries).unwrap();
        let result = cube_pass(&space(), &input);
        assert!(result.coverage_count(&RegionId(vec![1, 0])) >= 2);
    }

    #[test]
    fn auto_generation_requires_fk_mapping() {
        let db = db();
        let err = auto_generate_queries(&db, &HashMap::new());
        assert!(err.is_err());
    }

    #[test]
    fn unknown_reference_table_errors() {
        let db = db();
        let bad = vec![FeatureQuery::JoinAgg {
            name: "x".into(),
            table: "nope".into(),
            fk: "ad".into(),
            column: "size".into(),
            func: AggFunc::Max,
        }];
        assert!(build_cube_input(&db, &space(), &bad).is_err());
    }

    #[test]
    fn arity_mismatch_rejected() {
        let db = db();
        let one_dim = RegionSpace::new(vec![Dimension::Interval {
            name: "T".into(),
            max_t: 2,
        }]);
        assert!(db.fact_coords(&one_dim).is_err());
    }
}
