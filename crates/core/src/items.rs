//! The item table `I` (§5): per-item attributes that are always known —
//! before any regional data is bought — and therefore usable for tree
//! splits, item hierarchies and static model features.

use crate::error::{BellwetherError, Result};
use bellwether_cube::Hierarchy;
use bellwether_table::{DataType, Table};
use std::collections::HashMap;

/// A numeric item attribute.
#[derive(Debug, Clone)]
pub struct NumericAttr {
    /// Attribute name.
    pub name: String,
    /// One value per item, in item order.
    pub values: Vec<f64>,
}

/// A categorical item attribute, dictionary-encoded.
#[derive(Debug, Clone)]
pub struct CategoricalAttr {
    /// Attribute name.
    pub name: String,
    /// Dictionary code per item.
    pub codes: Vec<u32>,
    /// Code → label.
    pub labels: Vec<String>,
}

impl CategoricalAttr {
    /// Label of one item's value.
    pub fn label_of(&self, item_idx: usize) -> &str {
        &self.labels[self.codes[item_idx] as usize]
    }
}

/// The item table: ids plus typed attributes with O(1) id lookup.
#[derive(Debug, Clone, Default)]
pub struct ItemTable {
    ids: Vec<i64>,
    index: HashMap<i64, usize>,
    numeric: Vec<NumericAttr>,
    categorical: Vec<CategoricalAttr>,
}

impl ItemTable {
    /// Build from a relational table: `id_col` must be Int and unique;
    /// `numeric_cols` become numeric attributes (NULL → error) and
    /// `categorical_cols` become dictionary-encoded attributes.
    pub fn from_table(
        table: &Table,
        id_col: &str,
        numeric_cols: &[&str],
        categorical_cols: &[&str],
    ) -> Result<Self> {
        let n = table.num_rows();
        let id_data = table.column_by_name(id_col)?.as_int(id_col)?;
        let mut ids = Vec::with_capacity(n);
        let mut index = HashMap::with_capacity(n);
        for row in 0..n {
            if !id_data.is_valid(row) {
                return Err(BellwetherError::Config(format!(
                    "NULL item id at row {row}"
                )));
            }
            let id = id_data.values[row];
            if index.insert(id, row).is_some() {
                return Err(BellwetherError::Config(format!("duplicate item id {id}")));
            }
            ids.push(id);
        }

        let mut numeric = Vec::with_capacity(numeric_cols.len());
        for &name in numeric_cols {
            let col = table.column_by_name(name)?;
            let mut values = Vec::with_capacity(n);
            for row in 0..n {
                match col.float_at(row) {
                    Some(v) => values.push(v),
                    None => {
                        return Err(BellwetherError::Config(format!(
                            "NULL or non-numeric value in item attribute {name} at row {row}"
                        )))
                    }
                }
            }
            numeric.push(NumericAttr {
                name: name.to_string(),
                values,
            });
        }

        let mut categorical = Vec::with_capacity(categorical_cols.len());
        for &name in categorical_cols {
            let col = table.column_by_name(name)?;
            if col.dtype() != DataType::Str {
                return Err(BellwetherError::Config(format!(
                    "categorical item attribute {name} must be a string column"
                )));
            }
            let data = col.as_str(name)?;
            let mut labels: Vec<String> = Vec::new();
            let mut dict: HashMap<&str, u32> = HashMap::new();
            let mut codes = Vec::with_capacity(n);
            for row in 0..n {
                if !data.is_valid(row) {
                    return Err(BellwetherError::Config(format!(
                        "NULL value in item attribute {name} at row {row}"
                    )));
                }
                let label: &str = &data.values[row];
                let code = *dict.entry(label).or_insert_with(|| {
                    labels.push(label.to_string());
                    (labels.len() - 1) as u32
                });
                codes.push(code);
            }
            categorical.push(CategoricalAttr {
                name: name.to_string(),
                codes,
                labels,
            });
        }

        Ok(ItemTable {
            ids,
            index,
            numeric,
            categorical,
        })
    }

    /// Reassemble an item table from its parts — the model-snapshot
    /// decode path. Validates what [`ItemTable::from_table`] would have:
    /// unique ids and one attribute value per item.
    pub fn from_parts(
        ids: Vec<i64>,
        numeric: Vec<NumericAttr>,
        categorical: Vec<CategoricalAttr>,
    ) -> Result<Self> {
        let n = ids.len();
        let mut index = HashMap::with_capacity(n);
        for (row, &id) in ids.iter().enumerate() {
            if index.insert(id, row).is_some() {
                return Err(BellwetherError::Config(format!("duplicate item id {id}")));
            }
        }
        for a in &numeric {
            if a.values.len() != n {
                return Err(BellwetherError::Config(format!(
                    "item attribute {} has {} values for {n} items",
                    a.name,
                    a.values.len()
                )));
            }
        }
        for a in &categorical {
            if a.codes.len() != n {
                return Err(BellwetherError::Config(format!(
                    "item attribute {} has {} codes for {n} items",
                    a.name,
                    a.codes.len()
                )));
            }
            if let Some(&code) = a.codes.iter().find(|&&c| c as usize >= a.labels.len()) {
                return Err(BellwetherError::Config(format!(
                    "item attribute {} has code {code} outside its dictionary",
                    a.name
                )));
            }
        }
        Ok(ItemTable {
            ids,
            index,
            numeric,
            categorical,
        })
    }

    /// Number of items.
    pub fn len(&self) -> usize {
        self.ids.len()
    }

    /// True if empty.
    pub fn is_empty(&self) -> bool {
        self.ids.is_empty()
    }

    /// All item ids, in table order.
    pub fn ids(&self) -> &[i64] {
        &self.ids
    }

    /// Row index of an item id.
    pub fn row_of(&self, id: i64) -> Option<usize> {
        self.index.get(&id).copied()
    }

    /// Numeric attributes.
    pub fn numeric_attrs(&self) -> &[NumericAttr] {
        &self.numeric
    }

    /// Categorical attributes.
    pub fn categorical_attrs(&self) -> &[CategoricalAttr] {
        &self.categorical
    }

    /// The static numeric feature vector of an item (used as model input
    /// features alongside the query-generated regional features).
    pub fn static_features(&self, id: i64) -> Option<Vec<f64>> {
        let row = self.row_of(id)?;
        Some(self.numeric.iter().map(|a| a.values[row]).collect())
    }

    /// Map each item to its leaf coordinates in the given item
    /// hierarchies, matching categorical attribute values to hierarchy
    /// leaf labels. `attr_for_hierarchy[k]` names the categorical
    /// attribute feeding hierarchy `k`.
    pub fn leaf_coords(
        &self,
        hierarchies: &[Hierarchy],
        attr_for_hierarchy: &[&str],
    ) -> Result<HashMap<i64, Vec<u32>>> {
        assert_eq!(hierarchies.len(), attr_for_hierarchy.len());
        let attrs: Vec<&CategoricalAttr> = attr_for_hierarchy
            .iter()
            .map(|name| {
                self.categorical
                    .iter()
                    .find(|a| a.name == *name)
                    .ok_or_else(|| BellwetherError::NotFound(format!("item attribute {name}")))
            })
            .collect::<Result<Vec<_>>>()?;

        let mut out = HashMap::with_capacity(self.len());
        for (row, &id) in self.ids.iter().enumerate() {
            let mut coords = Vec::with_capacity(hierarchies.len());
            for (h, attr) in hierarchies.iter().zip(&attrs) {
                let label = attr.label_of(row);
                let node = h.id_of(label).ok_or_else(|| {
                    BellwetherError::NotFound(format!(
                        "hierarchy {} has no leaf {label:?}",
                        h.name()
                    ))
                })?;
                if !h.is_leaf(node) {
                    return Err(BellwetherError::Config(format!(
                        "item {id} maps to non-leaf node {label:?} of {}",
                        h.name()
                    )));
                }
                coords.push(node);
            }
            out.insert(id, coords);
        }
        Ok(out)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use bellwether_table::{Column, Schema};

    fn item_table() -> Table {
        let schema = Schema::from_pairs(&[
            ("id", DataType::Int),
            ("category", DataType::Str),
            ("rd_expense", DataType::Float),
        ])
        .unwrap();
        Table::new(
            schema,
            vec![
                Column::from_ints(vec![1, 2, 3]),
                Column::from_strs(&["laptop", "desktop", "laptop"]),
                Column::from_floats(vec![10.0, 20.0, 30.0]),
            ],
        )
        .unwrap()
    }

    #[test]
    fn builds_and_looks_up() {
        let it =
            ItemTable::from_table(&item_table(), "id", &["rd_expense"], &["category"]).unwrap();
        assert_eq!(it.len(), 3);
        assert_eq!(it.row_of(2), Some(1));
        assert_eq!(it.static_features(3), Some(vec![30.0]));
        assert_eq!(it.categorical_attrs()[0].label_of(1), "desktop");
        assert_eq!(it.categorical_attrs()[0].labels.len(), 2);
        assert!(it.static_features(99).is_none());
    }

    #[test]
    fn duplicate_ids_rejected() {
        let schema = Schema::from_pairs(&[("id", DataType::Int)]).unwrap();
        let t = Table::new(schema, vec![Column::from_ints(vec![1, 1])]).unwrap();
        assert!(ItemTable::from_table(&t, "id", &[], &[]).is_err());
    }

    #[test]
    fn leaf_coords_map_through_hierarchy() {
        let it = ItemTable::from_table(&item_table(), "id", &[], &["category"]).unwrap();
        let mut h = Hierarchy::new("Category", "Any");
        let hw = h.add_child(0, "hardware");
        let laptop = h.add_child(hw, "laptop");
        let desktop = h.add_child(hw, "desktop");
        let coords = it.leaf_coords(&[h], &["category"]).unwrap();
        assert_eq!(coords[&1], vec![laptop]);
        assert_eq!(coords[&2], vec![desktop]);
    }

    #[test]
    fn leaf_coords_reject_unknown_labels() {
        let it = ItemTable::from_table(&item_table(), "id", &[], &["category"]).unwrap();
        let h = Hierarchy::flat("Category", "Any", &["laptop"]); // no desktop
        assert!(it.leaf_coords(&[h], &["category"]).is_err());
    }

    #[test]
    fn leaf_coords_reject_internal_nodes() {
        let schema =
            Schema::from_pairs(&[("id", DataType::Int), ("cat", DataType::Str)]).unwrap();
        let t = Table::new(
            schema,
            vec![Column::from_ints(vec![1]), Column::from_strs(&["hardware"])],
        )
        .unwrap();
        let it = ItemTable::from_table(&t, "id", &[], &["cat"]).unwrap();
        let mut h = Hierarchy::new("Category", "Any");
        let hw = h.add_child(0, "hardware");
        h.add_child(hw, "laptop");
        assert!(it.leaf_coords(&[h], &["cat"]).is_err());
    }
}
