//! The shared region-scan engine: one scan idiom for every algorithm
//! that folds per-region statistics over the entire training data.
//!
//! Every builder in this crate — basic search, both bellwether trees,
//! all three bellwether cubes — at its core runs
//! `for idx in 0..source.num_regions() { fold(read_region(idx)) }`.
//! The statistics those folds accumulate are *mergeable* in the sense
//! of the paper's Lemma 1 / Theorem 1 and the RainForest framework:
//! `MinError[v, c, p]` merges by `min`, best-region choices merge by
//! keeping the smaller error, `RegSuffStats` merges by component-wise
//! addition. [`scan_regions`] exploits that: it shards `0..num_regions`
//! into contiguous per-worker chunks under a [`Parallelism`] budget,
//! folds each chunk into its own accumulator on a scoped thread, then
//! merges the partials **in ascending chunk order**.
//!
//! # Determinism
//!
//! The merge is exact, not approximate, and the thread count never
//! changes output bits (the workspace-wide policy of
//! `bellwether_cube::parallel`):
//!
//! * chunk boundaries depend only on `num_regions` and the thread
//!   count chosen by [`Parallelism::threads_for`] — never on timing;
//! * each worker folds its indices in ascending order, exactly as the
//!   sequential loop would;
//! * partials merge in ascending chunk order, so an accumulator whose
//!   `merge` keeps `self` on ties (strict `<` comparisons) reproduces
//!   the sequential scan's lowest-index-wins tie-breaking bit for bit.
//!
//! The sequential fallback ([`Parallelism::min_chunk`]) makes tiny
//! inputs skip thread spawning entirely; the fallback runs the very
//! same fold closure over the same indices in the same order.

use crate::error::Result;
use bellwether_cube::Parallelism;
use bellwether_storage::{RegionBlock, TrainingSource};

/// A per-scan statistic that can be merged across contiguous index
/// ranges without changing the result of a sequential fold.
///
/// Implementations must satisfy: folding regions `lo..hi` into one
/// accumulator equals folding `lo..mid` and `mid..hi` separately and
/// then calling `self.merge(later)` on the earlier accumulator. For
/// tie-broken statistics (best region by error), "equals" includes the
/// tie-breaking: `merge` receives partials from strictly later region
/// indices, so keeping `self` on ties preserves lowest-index-wins.
pub trait MergeableAccumulator: Send {
    /// Fold `later` — the accumulator of a strictly later contiguous
    /// index range — into `self`.
    fn merge(&mut self, later: Self);
}

/// Best region by error with the sequential scan's tie-breaking: the
/// *earliest* index achieving the minimum wins (strict `<` updates).
#[derive(Debug, Clone, Copy, Default, PartialEq)]
pub struct BestRegion(pub Option<(usize, f64)>);

impl BestRegion {
    /// Consider `(idx, err)`; keeps the current winner on ties (strict
    /// `<`, the sequential builders' update rule). Callers must observe
    /// indices in ascending order (as `scan_regions`' fold does).
    pub fn observe(&mut self, idx: usize, err: f64) {
        match self.0 {
            Some((_, best)) => {
                if err < best {
                    self.0 = Some((idx, err));
                }
            }
            None => self.0 = Some((idx, err)),
        }
    }
}

impl MergeableAccumulator for BestRegion {
    fn merge(&mut self, later: Self) {
        if let Some((idx, err)) = later.0 {
            match self.0 {
                Some((_, best)) if err < best => self.0 = Some((idx, err)),
                None => self.0 = Some((idx, err)),
                _ => {}
            }
        }
    }
}

/// Element-wise minimum over a fixed-width slot vector (e.g. per-
/// partition SSE totals); slots start at `+inf`.
#[derive(Debug, Clone, PartialEq)]
pub struct MinSlots(pub Vec<f64>);

impl MinSlots {
    /// `len` slots, all `+inf`.
    pub fn new(len: usize) -> Self {
        MinSlots(vec![f64::INFINITY; len])
    }

    /// Lower slot `i` to `v` if strictly smaller (NaN never replaces).
    pub fn observe(&mut self, i: usize, v: f64) {
        if v < self.0[i] {
            self.0[i] = v;
        }
    }
}

impl MergeableAccumulator for MinSlots {
    fn merge(&mut self, later: Self) {
        assert_eq!(self.0.len(), later.0.len(), "slot width mismatch");
        for (s, l) in self.0.iter_mut().zip(later.0) {
            if l < *s {
                *s = l;
            }
        }
    }
}

/// Concatenation accumulator: per-region rows collected in scan order.
/// Valid because `scan_regions` merges partials in ascending chunk
/// order, so the concatenated vector equals the sequential scan's.
#[derive(Debug, Clone, PartialEq)]
pub struct Concat<T>(pub Vec<T>);

impl<T> Default for Concat<T> {
    fn default() -> Self {
        Concat(Vec::new())
    }
}

impl<T: Send> MergeableAccumulator for Concat<T> {
    fn merge(&mut self, later: Self) {
        self.0.extend(later.0);
    }
}

impl<A: MergeableAccumulator> MergeableAccumulator for Vec<A> {
    /// Element-wise merge of parallel per-slot accumulators (e.g. one
    /// [`BestRegion`] per candidate subset). Lengths must match — every
    /// worker builds its vector from the same shared problem structure.
    fn merge(&mut self, later: Self) {
        assert_eq!(self.len(), later.len(), "accumulator arity mismatch");
        for (s, l) in self.iter_mut().zip(later) {
            s.merge(l);
        }
    }
}

/// Scan every region of `source` once, folding into accumulators
/// sharded by `par`, and return the in-order merge of the partials.
///
/// Equivalent to
/// `let mut acc = init(); for idx in 0..n { fold(&mut acc, idx, &read(idx)?)? }`
/// — bit for bit, at any thread count. `fold` observes each region
/// index exactly once, in ascending order within its chunk.
pub fn scan_regions<A, I, F>(
    source: &dyn TrainingSource,
    par: Parallelism,
    init: I,
    fold: F,
) -> Result<A>
where
    A: MergeableAccumulator,
    I: Fn() -> A + Sync,
    F: Fn(&mut A, usize, &RegionBlock) -> Result<()> + Sync,
{
    scan_regions_where(source, par, |_| true, init, fold)
}

/// [`scan_regions`] with a cheap pre-read filter: regions where
/// `keep(idx)` is false are skipped *without being read*, preserving
/// read counts (and disk IO) of callers that prune by cost before
/// touching data, like the budget check in `basic_search`.
pub fn scan_regions_where<A, K, I, F>(
    source: &dyn TrainingSource,
    par: Parallelism,
    keep: K,
    init: I,
    fold: F,
) -> Result<A>
where
    A: MergeableAccumulator,
    K: Fn(usize) -> bool + Sync,
    I: Fn() -> A + Sync,
    F: Fn(&mut A, usize, &RegionBlock) -> Result<()> + Sync,
{
    let n = source.num_regions();
    let threads = par.threads_for(n);

    let run_chunk = |lo: usize, hi: usize| -> Result<A> {
        let mut acc = init();
        for idx in lo..hi {
            if !keep(idx) {
                continue;
            }
            let block = source.read_region(idx)?;
            fold(&mut acc, idx, &block)?;
        }
        Ok(acc)
    };

    if threads <= 1 {
        return run_chunk(0, n);
    }

    let chunk = n.div_ceil(threads);
    let partials: Vec<Result<A>> = std::thread::scope(|s| {
        let handles: Vec<_> = (0..threads)
            .map(|t| {
                let lo = t * chunk;
                let hi = ((t + 1) * chunk).min(n);
                let run_chunk = &run_chunk;
                s.spawn(move || run_chunk(lo, hi))
            })
            .collect();
        handles
            .into_iter()
            .map(|h| h.join().expect("region-scan worker panicked"))
            .collect()
    });

    // Merge in ascending chunk order. Errors also surface in chunk
    // order, which is the sequential scan's first-error (the earliest
    // failing chunk holds the lowest failing index).
    let mut merged: Option<A> = None;
    for partial in partials {
        let acc = partial?;
        match merged.as_mut() {
            None => merged = Some(acc),
            Some(m) => m.merge(acc),
        }
    }
    Ok(merged.expect("threads_for returns at least 1"))
}

#[cfg(test)]
mod tests {
    use super::*;
    use bellwether_storage::MemorySource;

    fn source(n: usize) -> MemorySource {
        let blocks = (0..n as u32)
            .map(|r| {
                let mut b = RegionBlock::new(vec![r], 1);
                b.push(r as i64, &[r as f64], (r as f64) * 2.0);
                b
            })
            .collect();
        MemorySource::new(blocks)
    }

    fn par(threads: usize) -> Parallelism {
        Parallelism::fixed(threads).with_min_chunk(1)
    }

    #[test]
    fn concat_preserves_scan_order_at_any_thread_count() {
        let src = source(23);
        let seq = scan_regions(&src, par(1), Concat::default, |acc, idx, b| {
            acc.0.push((idx, b.region[0]));
            Ok(())
        })
        .unwrap();
        for threads in [2, 3, 4, 7, 23, 64] {
            let got = scan_regions(&src, par(threads), Concat::default, |acc, idx, b| {
                acc.0.push((idx, b.region[0]));
                Ok(())
            })
            .unwrap();
            assert_eq!(got, seq, "threads={threads}");
        }
    }

    #[test]
    fn best_region_ties_break_to_lowest_index() {
        let src = source(10);
        // Every region reports the same error: index 0 must win at any
        // thread count (sequential strict-< semantics).
        for threads in [1, 2, 4, 7] {
            let best = scan_regions(&src, par(threads), BestRegion::default, |acc, idx, _| {
                acc.observe(idx, 1.0);
                Ok(())
            })
            .unwrap();
            assert_eq!(best.0, Some((0, 1.0)), "threads={threads}");
        }
    }

    #[test]
    fn min_slots_merge_matches_sequential() {
        let src = source(17);
        let fold = |acc: &mut MinSlots, idx: usize, _: &RegionBlock| {
            acc.observe(idx % 3, (idx as f64 * 7.0) % 5.0);
            Ok(())
        };
        let seq = scan_regions(&src, par(1), || MinSlots::new(3), fold).unwrap();
        for threads in [2, 4, 7] {
            let got = scan_regions(&src, par(threads), || MinSlots::new(3), fold).unwrap();
            assert_eq!(got, seq, "threads={threads}");
        }
    }

    #[test]
    fn filter_skips_reads() {
        let src = source(10);
        let kept = scan_regions_where(
            &src,
            par(4),
            |idx| idx % 2 == 0,
            Concat::default,
            |acc, idx, _| {
                acc.0.push(idx);
                Ok(())
            },
        )
        .unwrap();
        assert_eq!(kept.0, vec![0, 2, 4, 6, 8]);
        // Odd regions were never read.
        assert_eq!(src.snapshot().regions_read(), 5);
    }

    #[test]
    fn errors_surface_in_scan_order() {
        let src = source(12);
        let fail_at = |bad: usize| {
            scan_regions(&src, par(4), Concat::<usize>::default, move |acc, idx, _| {
                if idx >= bad {
                    return Err(crate::error::BellwetherError::NotFound(format!(
                        "region {idx}"
                    )));
                }
                acc.0.push(idx);
                Ok(())
            })
        };
        let err = fail_at(5).unwrap_err();
        // The earliest failing index is reported even though later
        // chunks also failed.
        assert!(err.to_string().contains("region 5"), "got {err}");
    }

    #[test]
    fn sequential_fallback_engages_below_min_chunk() {
        // 10 regions at default min_chunk (16): one thread even at
        // fixed(8); results unchanged either way.
        let src = source(10);
        assert_eq!(Parallelism::fixed(8).threads_for(src.num_regions()), 1);
    }
}
