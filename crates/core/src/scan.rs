//! The shared region-scan engine: one scan idiom for every algorithm
//! that folds per-region statistics over the entire training data.
//!
//! Every builder in this crate — basic search, both bellwether trees,
//! all three bellwether cubes — at its core runs
//! `for idx in 0..source.num_regions() { fold(read_region(idx)) }`.
//! The statistics those folds accumulate are *mergeable* in the sense
//! of the paper's Lemma 1 / Theorem 1 and the RainForest framework:
//! `MinError[v, c, p]` merges by `min`, best-region choices merge by
//! keeping the smaller error, `RegSuffStats` merges by component-wise
//! addition. [`scan_regions`] exploits that: it shards `0..num_regions`
//! into contiguous per-worker chunks under a [`Parallelism`] budget,
//! folds each chunk into its own accumulator on a scoped thread, then
//! merges the partials **in ascending chunk order**.
//!
//! # Determinism
//!
//! The merge is exact, not approximate, and the thread count never
//! changes output bits (the workspace-wide policy of
//! `bellwether_cube::parallel`):
//!
//! * chunk boundaries depend only on `num_regions` and the thread
//!   count chosen by [`Parallelism::threads_for`] — never on timing;
//! * each worker folds its indices in ascending order, exactly as the
//!   sequential loop would;
//! * partials merge in ascending chunk order, so an accumulator whose
//!   `merge` keeps `self` on ties (strict `<` comparisons) reproduces
//!   the sequential scan's lowest-index-wins tie-breaking bit for bit.
//!
//! The sequential fallback ([`Parallelism::min_chunk`]) makes tiny
//! inputs skip thread spawning entirely; the fallback runs the very
//! same fold closure over the same indices in the same order.
//!
//! # Sharded sources: the two-level merge
//!
//! When the source is shard-partitioned
//! ([`TrainingSource::shard_starts`] returns the contiguous shard
//! boundaries, e.g. `bellwether_storage::ShardedSource`), the engine
//! aligns its chunks to those boundaries: shards are scanned one after
//! another in ascending order, each shard's regions are chunked across
//! the worker budget, and every partial — within-shard chunks first,
//! then whole shards — merges in ascending index order. A chunk never
//! spans a shard boundary, so each worker's reads stay inside one shard
//! file (one page-cache/fault domain at a time), while the merge is the
//! very same ascending-contiguous-range discipline as the flat scan.
//! By the [`MergeableAccumulator`] contract the result is therefore
//! bit-identical at **any shard × thread combination**, including the
//! unsharded scan of the same regions.

use crate::error::{BellwetherError, Result};
use bellwether_cube::Parallelism;
use bellwether_obs::{names, Recorder};
use bellwether_storage::{RegionBlock, TrainingSource};
use std::any::Any;
use std::panic::{catch_unwind, AssertUnwindSafe};

/// A per-scan statistic that can be merged across contiguous index
/// ranges without changing the result of a sequential fold.
///
/// Implementations must satisfy: folding regions `lo..hi` into one
/// accumulator equals folding `lo..mid` and `mid..hi` separately and
/// then calling `self.merge(later)` on the earlier accumulator. For
/// tie-broken statistics (best region by error), "equals" includes the
/// tie-breaking: `merge` receives partials from strictly later region
/// indices, so keeping `self` on ties preserves lowest-index-wins.
pub trait MergeableAccumulator: Send {
    /// Fold `later` — the accumulator of a strictly later contiguous
    /// index range — into `self`.
    fn merge(&mut self, later: Self);
}

/// Best region by error with the sequential scan's tie-breaking: the
/// *earliest* index achieving the minimum wins (strict `<` updates).
#[derive(Debug, Clone, Copy, Default, PartialEq)]
pub struct BestRegion(pub Option<(usize, f64)>);

impl BestRegion {
    /// Consider `(idx, err)`; keeps the current winner on ties (strict
    /// `<`, the sequential builders' update rule). Callers must observe
    /// indices in ascending order (as `scan_regions`' fold does).
    pub fn observe(&mut self, idx: usize, err: f64) {
        match self.0 {
            Some((_, best)) => {
                if err < best {
                    self.0 = Some((idx, err));
                }
            }
            None => self.0 = Some((idx, err)),
        }
    }
}

impl MergeableAccumulator for BestRegion {
    fn merge(&mut self, later: Self) {
        if let Some((idx, err)) = later.0 {
            match self.0 {
                Some((_, best)) if err < best => self.0 = Some((idx, err)),
                None => self.0 = Some((idx, err)),
                _ => {}
            }
        }
    }
}

/// Element-wise minimum over a fixed-width slot vector (e.g. per-
/// partition SSE totals); slots start at `+inf`.
#[derive(Debug, Clone, PartialEq)]
pub struct MinSlots(pub Vec<f64>);

impl MinSlots {
    /// `len` slots, all `+inf`.
    pub fn new(len: usize) -> Self {
        MinSlots(vec![f64::INFINITY; len])
    }

    /// Lower slot `i` to `v` if strictly smaller (NaN never replaces).
    pub fn observe(&mut self, i: usize, v: f64) {
        if v < self.0[i] {
            self.0[i] = v;
        }
    }
}

impl MergeableAccumulator for MinSlots {
    fn merge(&mut self, later: Self) {
        assert_eq!(self.0.len(), later.0.len(), "slot width mismatch");
        for (s, l) in self.0.iter_mut().zip(later.0) {
            if l < *s {
                *s = l;
            }
        }
    }
}

/// Concatenation accumulator: per-region rows collected in scan order.
/// Valid because `scan_regions` merges partials in ascending chunk
/// order, so the concatenated vector equals the sequential scan's.
#[derive(Debug, Clone, PartialEq)]
pub struct Concat<T>(pub Vec<T>);

impl<T> Default for Concat<T> {
    fn default() -> Self {
        Concat(Vec::new())
    }
}

impl<T: Send> MergeableAccumulator for Concat<T> {
    fn merge(&mut self, later: Self) {
        self.0.extend(later.0);
    }
}

impl<A: MergeableAccumulator> MergeableAccumulator for Vec<A> {
    /// Element-wise merge of parallel per-slot accumulators (e.g. one
    /// [`BestRegion`] per candidate subset). Lengths must match — every
    /// worker builds its vector from the same shared problem structure.
    fn merge(&mut self, later: Self) {
        assert_eq!(self.len(), later.len(), "accumulator arity mismatch");
        for (s, l) in self.iter_mut().zip(later) {
            s.merge(l);
        }
    }
}

/// Per-worker scratch carried alongside a scan accumulator: reusable
/// buffers whose contents never influence results, only their work
/// counters survive the merge.
pub trait ScanScratch: Send {
    /// Absorb a later worker's counters (buffers are simply dropped).
    fn absorb(&mut self, later: Self);
}

/// An accumulator bundled with per-worker [`ScanScratch`], so the fold
/// closure gets reusable evaluation buffers (zero heap allocation per
/// region after warm-up) without threading extra state through the scan
/// engine. Merging merges the accumulator exactly as before and absorbs
/// the scratch's counters in ascending chunk order — totals stay
/// deterministic at any thread count.
#[derive(Debug)]
pub struct WithScratch<A, S> {
    /// The real mergeable statistic.
    pub acc: A,
    /// Worker-local reusable buffers + work counters.
    pub scratch: S,
}

impl<A: MergeableAccumulator, S: ScanScratch> MergeableAccumulator for WithScratch<A, S> {
    fn merge(&mut self, later: Self) {
        self.acc.merge(later.acc);
        self.scratch.absorb(later.scratch);
    }
}

impl<S1: ScanScratch, S2: ScanScratch> ScanScratch for (S1, S2) {
    /// Pairs of scratches for scans that need both a whole-region buffer
    /// and a partition buffer (the RainForest level scan).
    fn absorb(&mut self, later: Self) {
        self.0.absorb(later.0);
        self.1.absorb(later.1);
    }
}

/// How a scan reacts to a region whose read fails (truncation,
/// corruption, IO error). Fold-function errors are *never* skippable —
/// only the read itself.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum ScanPolicy {
    /// Fail fast: the first unreadable region aborts the scan with a
    /// [`BellwetherError::RegionRead`] naming the failing index.
    #[default]
    Strict,
    /// Skip unreadable regions and keep scanning, up to `max_skipped`
    /// of them; exceeding the budget aborts with
    /// [`BellwetherError::TooManyUnreadable`]. Every skipped index is
    /// reported exactly in [`Scanned::skipped`] — degraded results are
    /// always labelled with *what* they are missing.
    SkipUnreadable {
        /// Maximum unreadable regions tolerated across the whole scan.
        max_skipped: usize,
    },
}

/// The outcome of a policy-aware scan: the merged accumulator plus the
/// exact accounting of regions the policy dropped.
#[derive(Debug, Clone, PartialEq)]
pub struct Scanned<A> {
    /// The merged fold result over every region that was read.
    pub acc: A,
    /// Ascending indices of regions skipped as unreadable (always empty
    /// under [`ScanPolicy::Strict`]).
    pub skipped: Vec<usize>,
}

impl<A> Scanned<A> {
    /// Record the skip count under the canonical `scan/regions_skipped`
    /// counter.
    pub fn record_skipped(&self, rec: &dyn Recorder) {
        if !self.skipped.is_empty() {
            rec.add(names::SCAN_REGIONS_SKIPPED, self.skipped.len() as u64);
        }
    }
}

/// Merge one scan's skipped-region list into a builder's running
/// account, keeping it sorted and deduplicated (builders that scan more
/// than once may skip the same region repeatedly).
pub(crate) fn merge_skipped(into: &mut Vec<usize>, scan_skipped: &[usize]) {
    if scan_skipped.is_empty() {
        return;
    }
    into.extend_from_slice(scan_skipped);
    into.sort_unstable();
    into.dedup();
}

/// The contiguous `[lo, hi)` segments a scan processes one after
/// another: the source's shard ranges when it is shard-partitioned, a
/// single whole-range segment otherwise. Empty shards are dropped; a
/// malformed `shard_starts` (not starting at 0, descending, or past the
/// region count) falls back to the flat single segment rather than
/// corrupting the scan.
fn shard_segments(starts: Option<Vec<usize>>, n: usize) -> Vec<(usize, usize)> {
    if let Some(starts) = starts {
        let valid = !starts.is_empty()
            && starts[0] == 0
            && starts.windows(2).all(|w| w[0] <= w[1])
            && *starts.last().expect("non-empty") <= n;
        if valid {
            let mut segments = Vec::with_capacity(starts.len());
            for (i, &lo) in starts.iter().enumerate() {
                let hi = starts.get(i + 1).copied().unwrap_or(n);
                if lo < hi {
                    segments.push((lo, hi));
                }
            }
            if !segments.is_empty() {
                return segments;
            }
        }
    }
    vec![(0, n)]
}

/// Best-effort extraction of a panic payload's message (`panic!` with a
/// string literal or a formatted message covers practically all of std
/// and this workspace).
fn panic_message(payload: &(dyn Any + Send)) -> String {
    if let Some(s) = payload.downcast_ref::<&str>() {
        (*s).to_string()
    } else if let Some(s) = payload.downcast_ref::<String>() {
        s.clone()
    } else {
        "non-string panic payload".to_string()
    }
}

/// Scan every region of `source` once, folding into accumulators
/// sharded by `par`, and return the in-order merge of the partials.
///
/// Equivalent to
/// `let mut acc = init(); for idx in 0..n { fold(&mut acc, idx, &read(idx)?)? }`
/// — bit for bit, at any thread count. `fold` observes each region
/// index exactly once, in ascending order within its chunk.
///
/// Read failures abort with [`BellwetherError::RegionRead`]
/// ([`ScanPolicy::Strict`] semantics); use [`scan_regions_policy`] to
/// skip unreadable regions instead. A panicking fold is isolated per
/// worker and surfaces as [`BellwetherError::WorkerPanic`] — the
/// process never aborts.
pub fn scan_regions<A, I, F>(
    source: &dyn TrainingSource,
    par: Parallelism,
    init: I,
    fold: F,
) -> Result<A>
where
    A: MergeableAccumulator,
    I: Fn() -> A + Sync,
    F: Fn(&mut A, usize, &RegionBlock) -> Result<()> + Sync,
{
    scan_regions_where(source, par, |_| true, init, fold)
}

/// [`scan_regions`] with a cheap pre-read filter: regions where
/// `keep(idx)` is false are skipped *without being read*, preserving
/// read counts (and disk IO) of callers that prune by cost before
/// touching data, like the budget check in `basic_search`.
pub fn scan_regions_where<A, K, I, F>(
    source: &dyn TrainingSource,
    par: Parallelism,
    keep: K,
    init: I,
    fold: F,
) -> Result<A>
where
    A: MergeableAccumulator,
    K: Fn(usize) -> bool + Sync,
    I: Fn() -> A + Sync,
    F: Fn(&mut A, usize, &RegionBlock) -> Result<()> + Sync,
{
    let scanned = scan_regions_where_policy(source, par, ScanPolicy::Strict, keep, init, fold)?;
    debug_assert!(scanned.skipped.is_empty(), "Strict never skips");
    Ok(scanned.acc)
}

/// [`scan_regions`] under an explicit [`ScanPolicy`], reporting exactly
/// which regions were dropped.
pub fn scan_regions_policy<A, I, F>(
    source: &dyn TrainingSource,
    par: Parallelism,
    policy: ScanPolicy,
    init: I,
    fold: F,
) -> Result<Scanned<A>>
where
    A: MergeableAccumulator,
    I: Fn() -> A + Sync,
    F: Fn(&mut A, usize, &RegionBlock) -> Result<()> + Sync,
{
    scan_regions_where_policy(source, par, policy, |_| true, init, fold)
}

/// The full engine: pre-read filter + fault policy + panic isolation.
///
/// Every other scan entry point delegates here, so the fault semantics
/// are uniform and thread-count-invariant:
///
/// * a worker panic (sequential or parallel — `catch_unwind` wraps the
///   chunk either way) surfaces as [`BellwetherError::WorkerPanic`]
///   with the worker's index and panic message;
/// * under [`ScanPolicy::Strict`], the lowest failing region index
///   aborts the scan as [`BellwetherError::RegionRead`] (errors merge
///   in ascending chunk order, and each chunk stops at its first
///   failure);
/// * under [`ScanPolicy::SkipUnreadable`], unreadable regions are
///   recorded and skipped; if more than `max_skipped` accumulate the
///   scan aborts with [`BellwetherError::TooManyUnreadable`] (a
///   parallel abort may report a higher skip count than the sequential
///   early-exit, but aborts in exactly the same situations);
/// * fold errors always abort — the policy only covers *reads*.
pub fn scan_regions_where_policy<A, K, I, F>(
    source: &dyn TrainingSource,
    par: Parallelism,
    policy: ScanPolicy,
    keep: K,
    init: I,
    fold: F,
) -> Result<Scanned<A>>
where
    A: MergeableAccumulator,
    K: Fn(usize) -> bool + Sync,
    I: Fn() -> A + Sync,
    F: Fn(&mut A, usize, &RegionBlock) -> Result<()> + Sync,
{
    let n = source.num_regions();
    let segments = shard_segments(source.shard_starts(), n);

    let run_chunk = |worker: usize, lo: usize, hi: usize| -> Result<Scanned<A>> {
        let caught = catch_unwind(AssertUnwindSafe(|| -> Result<Scanned<A>> {
            let mut acc = init();
            let mut skipped = Vec::new();
            for idx in lo..hi {
                if !keep(idx) {
                    continue;
                }
                match source.read_region(idx) {
                    Ok(block) => fold(&mut acc, idx, &block)?,
                    Err(source) => match policy {
                        ScanPolicy::Strict => {
                            return Err(BellwetherError::RegionRead { index: idx, source })
                        }
                        ScanPolicy::SkipUnreadable { max_skipped } => {
                            skipped.push(idx);
                            if skipped.len() > max_skipped {
                                return Err(BellwetherError::TooManyUnreadable {
                                    skipped: skipped.len(),
                                    max_skipped,
                                });
                            }
                        }
                    },
                }
            }
            Ok(Scanned { acc, skipped })
        }));
        caught.unwrap_or_else(|payload| {
            Err(BellwetherError::WorkerPanic {
                worker,
                message: panic_message(payload.as_ref()),
            })
        })
    };

    // Two-level merge: segments (shards, or the single whole range) are
    // scanned sequentially in ascending order; each segment's regions
    // are chunked across the worker budget and its partials merge in
    // ascending chunk order. Errors surface in the same order — the
    // earliest failing chunk of the earliest failing shard holds the
    // lowest failing index, exactly the sequential scan's first error.
    // Skipped indices concatenate ascending for the same reason.
    let mut merged: Option<A> = None;
    let mut skipped: Vec<usize> = Vec::new();
    for (seg_lo, seg_hi) in segments {
        let len = seg_hi - seg_lo;
        let threads = par.threads_for(len);
        let partials: Vec<Result<Scanned<A>>> = if threads <= 1 {
            vec![run_chunk(0, seg_lo, seg_hi)]
        } else {
            let chunk = len.div_ceil(threads);
            std::thread::scope(|s| {
                let handles: Vec<_> = (0..threads)
                    .map(|t| {
                        let lo = seg_lo + t * chunk;
                        let hi = (seg_lo + (t + 1) * chunk).min(seg_hi);
                        let run_chunk = &run_chunk;
                        s.spawn(move || run_chunk(t, lo, hi))
                    })
                    .collect();
                handles
                    .into_iter()
                    .enumerate()
                    .map(|(t, h)| {
                        // catch_unwind already confines panics inside
                        // the worker; a join error can only mean the
                        // payload escaped some other way. Still
                        // isolate it.
                        h.join().unwrap_or_else(|payload| {
                            Err(BellwetherError::WorkerPanic {
                                worker: t,
                                message: panic_message(payload.as_ref()),
                            })
                        })
                    })
                    .collect()
            })
        };
        for partial in partials {
            let part = partial?;
            skipped.extend(part.skipped);
            match merged.as_mut() {
                None => merged = Some(part.acc),
                Some(m) => m.merge(part.acc),
            }
        }
        if let ScanPolicy::SkipUnreadable { max_skipped } = policy {
            // Chunks bound their local counts; the running global
            // budget is checked after each shard, so an out-of-core
            // scan stops paying IO as soon as the budget is blown.
            if skipped.len() > max_skipped {
                return Err(BellwetherError::TooManyUnreadable {
                    skipped: skipped.len(),
                    max_skipped,
                });
            }
        }
    }
    Ok(Scanned {
        acc: merged.expect("shard_segments returns at least one segment"),
        skipped,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use bellwether_storage::MemorySource;

    fn source(n: usize) -> MemorySource {
        let blocks = (0..n as u32)
            .map(|r| {
                let mut b = RegionBlock::new(vec![r], 1);
                b.push(r as i64, &[r as f64], (r as f64) * 2.0);
                b
            })
            .collect();
        MemorySource::new(blocks)
    }

    fn par(threads: usize) -> Parallelism {
        Parallelism::fixed(threads).with_min_chunk(1)
    }

    #[test]
    fn concat_preserves_scan_order_at_any_thread_count() {
        let src = source(23);
        let seq = scan_regions(&src, par(1), Concat::default, |acc, idx, b| {
            acc.0.push((idx, b.region[0]));
            Ok(())
        })
        .unwrap();
        for threads in [2, 3, 4, 7, 23, 64] {
            let got = scan_regions(&src, par(threads), Concat::default, |acc, idx, b| {
                acc.0.push((idx, b.region[0]));
                Ok(())
            })
            .unwrap();
            assert_eq!(got, seq, "threads={threads}");
        }
    }

    #[test]
    fn best_region_ties_break_to_lowest_index() {
        let src = source(10);
        // Every region reports the same error: index 0 must win at any
        // thread count (sequential strict-< semantics).
        for threads in [1, 2, 4, 7] {
            let best = scan_regions(&src, par(threads), BestRegion::default, |acc, idx, _| {
                acc.observe(idx, 1.0);
                Ok(())
            })
            .unwrap();
            assert_eq!(best.0, Some((0, 1.0)), "threads={threads}");
        }
    }

    #[test]
    fn min_slots_merge_matches_sequential() {
        let src = source(17);
        let fold = |acc: &mut MinSlots, idx: usize, _: &RegionBlock| {
            acc.observe(idx % 3, (idx as f64 * 7.0) % 5.0);
            Ok(())
        };
        let seq = scan_regions(&src, par(1), || MinSlots::new(3), fold).unwrap();
        for threads in [2, 4, 7] {
            let got = scan_regions(&src, par(threads), || MinSlots::new(3), fold).unwrap();
            assert_eq!(got, seq, "threads={threads}");
        }
    }

    #[test]
    fn filter_skips_reads() {
        let src = source(10);
        let kept = scan_regions_where(
            &src,
            par(4),
            |idx| idx % 2 == 0,
            Concat::default,
            |acc, idx, _| {
                acc.0.push(idx);
                Ok(())
            },
        )
        .unwrap();
        assert_eq!(kept.0, vec![0, 2, 4, 6, 8]);
        // Odd regions were never read.
        assert_eq!(src.snapshot().regions_read(), 5);
    }

    #[test]
    fn errors_surface_in_scan_order() {
        let src = source(12);
        let fail_at = |bad: usize| {
            scan_regions(&src, par(4), Concat::<usize>::default, move |acc, idx, _| {
                if idx >= bad {
                    return Err(crate::error::BellwetherError::NotFound(format!(
                        "region {idx}"
                    )));
                }
                acc.0.push(idx);
                Ok(())
            })
        };
        let err = fail_at(5).unwrap_err();
        // The earliest failing index is reported even though later
        // chunks also failed.
        assert!(err.to_string().contains("region 5"), "got {err}");
    }

    #[test]
    fn worker_panics_are_isolated_at_any_thread_count() {
        let src = source(16);
        for threads in [1, 2, 4] {
            let err = scan_regions(
                &src,
                par(threads),
                Concat::<usize>::default,
                |_, idx, _| {
                    if idx == 9 {
                        panic!("fold exploded on region {idx}");
                    }
                    Ok(())
                },
            )
            .expect_err("panic must surface as an error");
            match err {
                BellwetherError::WorkerPanic { worker, message } => {
                    assert!(message.contains("fold exploded on region 9"), "{message}");
                    // Region 9 lives in the panicking worker's chunk.
                    let chunk = 16usize.div_ceil(threads.max(1));
                    if threads > 1 {
                        assert_eq!(worker, 9 / chunk);
                    } else {
                        assert_eq!(worker, 0);
                    }
                }
                other => panic!("expected WorkerPanic, got {other}"),
            }
        }
    }

    #[test]
    fn strict_policy_names_the_lowest_failing_region() {
        // Regions 5 and 11 are permanently unreadable.
        let base = source(16);
        let corrupt = [5usize, 11];
        let faulty = FailOn::new(base, &corrupt);
        for threads in [1, 2, 4] {
            let err = scan_regions(&faulty, par(threads), Concat::<usize>::default, |a, i, _| {
                a.0.push(i);
                Ok(())
            })
            .expect_err("strict scan must fail");
            match err {
                BellwetherError::RegionRead { index, .. } => {
                    assert_eq!(index, 5, "threads={threads}: lowest failing index")
                }
                other => panic!("expected RegionRead, got {other}"),
            }
        }
    }

    #[test]
    fn skip_policy_accounts_for_every_dropped_region() {
        let base = source(20);
        let corrupt = [3usize, 8, 15];
        let faulty = FailOn::new(base, &corrupt);
        let seq = scan_regions_policy(
            &faulty,
            par(1),
            ScanPolicy::SkipUnreadable { max_skipped: 5 },
            Concat::default,
            |a: &mut Concat<usize>, i, _| {
                a.0.push(i);
                Ok(())
            },
        )
        .unwrap();
        assert_eq!(seq.skipped, vec![3, 8, 15]);
        assert_eq!(seq.acc.0.len(), 17);
        assert!(!seq.acc.0.contains(&8));
        for threads in [2, 4, 7] {
            let got = scan_regions_policy(
                &faulty,
                par(threads),
                ScanPolicy::SkipUnreadable { max_skipped: 5 },
                Concat::default,
                |a: &mut Concat<usize>, i, _| {
                    a.0.push(i);
                    Ok(())
                },
            )
            .unwrap();
            assert_eq!(got, seq, "threads={threads}");
        }
    }

    #[test]
    fn skip_budget_overflow_aborts() {
        let base = source(10);
        let corrupt = [1usize, 4, 7];
        let faulty = FailOn::new(base, &corrupt);
        for threads in [1, 2, 4] {
            let err = scan_regions_policy(
                &faulty,
                par(threads),
                ScanPolicy::SkipUnreadable { max_skipped: 2 },
                Concat::default,
                |a: &mut Concat<usize>, i, _| {
                    a.0.push(i);
                    Ok(())
                },
            )
            .expect_err("three failures exceed a budget of two");
            match err {
                BellwetherError::TooManyUnreadable {
                    skipped,
                    max_skipped,
                } => {
                    assert!(skipped > 2, "threads={threads}");
                    assert_eq!(max_skipped, 2);
                }
                other => panic!("expected TooManyUnreadable, got {other}"),
            }
        }
    }

    #[test]
    fn fold_errors_are_never_skipped() {
        let src = source(8);
        let err = scan_regions_policy(
            &src,
            par(2),
            ScanPolicy::SkipUnreadable { max_skipped: 100 },
            Concat::<usize>::default,
            |_, idx, _| {
                if idx == 3 {
                    return Err(crate::error::BellwetherError::NotFound("model".into()));
                }
                Ok(())
            },
        )
        .expect_err("fold errors abort regardless of policy");
        assert!(matches!(err, BellwetherError::NotFound(_)), "{err}");
    }

    /// Test-only source failing reads of chosen indices with a
    /// transient-looking error.
    struct FailOn {
        inner: Box<dyn TrainingSource>,
        bad: Vec<usize>,
    }

    impl FailOn {
        fn new(inner: impl TrainingSource + 'static, bad: &[usize]) -> Self {
            FailOn {
                inner: Box::new(inner),
                bad: bad.to_vec(),
            }
        }
    }

    impl TrainingSource for FailOn {
        fn num_regions(&self) -> usize {
            self.inner.num_regions()
        }

        fn feature_arity(&self) -> usize {
            self.inner.feature_arity()
        }

        fn region_coords(&self, idx: usize) -> &[u32] {
            self.inner.region_coords(idx)
        }

        fn read_region(&self, idx: usize) -> std::io::Result<std::sync::Arc<RegionBlock>> {
            if self.bad.contains(&idx) {
                return Err(std::io::Error::new(
                    std::io::ErrorKind::InvalidData,
                    format!("unreadable region {idx}"),
                ));
            }
            self.inner.read_region(idx)
        }

        fn stats(&self) -> &std::sync::Arc<bellwether_storage::IoStats> {
            self.inner.stats()
        }

        fn shard_starts(&self) -> Option<Vec<usize>> {
            self.inner.shard_starts()
        }
    }

    /// Build the regions of `source(n)` split into `shards` contiguous
    /// [`MemorySource`]s behind one [`ShardedSource`].
    fn sharded_source(n: usize, shards: usize) -> bellwether_storage::ShardedSource {
        let blocks: Vec<RegionBlock> = (0..n as u32)
            .map(|r| {
                let mut b = RegionBlock::new(vec![r], 1);
                b.push(r as i64, &[r as f64], (r as f64) * 2.0);
                b
            })
            .collect();
        let mut parts: Vec<Box<dyn TrainingSource>> = Vec::new();
        let base = n / shards;
        let rem = n % shards;
        let mut it = blocks.into_iter();
        for s in 0..shards {
            let take = base + usize::from(s < rem);
            parts.push(Box::new(MemorySource::new(
                (&mut it).take(take).collect(),
            )));
        }
        bellwether_storage::ShardedSource::from_sources(parts).unwrap()
    }

    #[test]
    fn sharded_scan_is_bit_identical_to_flat_at_any_shard_thread_combo() {
        let flat = source(23);
        let fold = |acc: &mut Concat<(usize, u32)>, idx: usize, b: &RegionBlock| {
            acc.0.push((idx, b.region[0]));
            Ok(())
        };
        let expect = scan_regions(&flat, par(1), Concat::default, fold).unwrap();
        for shards in [1usize, 2, 3, 4, 7] {
            let src = sharded_source(23, shards);
            assert_eq!(src.num_regions(), 23);
            for threads in [1usize, 2, 4] {
                let got = scan_regions(&src, par(threads), Concat::default, fold).unwrap();
                assert_eq!(got, expect, "shards={shards} threads={threads}");
                let best =
                    scan_regions(&src, par(threads), BestRegion::default, |acc, idx, _| {
                        acc.observe(idx, 1.0);
                        Ok(())
                    })
                    .unwrap();
                assert_eq!(best.0, Some((0, 1.0)), "tie-break across shards");
            }
        }
    }

    #[test]
    fn skip_policy_accounts_identically_across_shards() {
        let corrupt = [3usize, 8, 15];
        let seq = {
            let faulty = FailOn::new(source(20), &corrupt);
            scan_regions_policy(
                &faulty,
                par(1),
                ScanPolicy::SkipUnreadable { max_skipped: 5 },
                Concat::default,
                |a: &mut Concat<usize>, i, _| {
                    a.0.push(i);
                    Ok(())
                },
            )
            .unwrap()
        };
        for shards in [2usize, 4] {
            for threads in [1usize, 2, 4] {
                // The fault wrapper sits *outside* the sharded view, so
                // the same global indices fail.
                let faulty = FailOn::new(sharded_source(20, shards), &corrupt);
                let got = scan_regions_policy(
                    &faulty,
                    par(threads),
                    ScanPolicy::SkipUnreadable { max_skipped: 5 },
                    Concat::default,
                    |a: &mut Concat<usize>, i, _| {
                        a.0.push(i);
                        Ok(())
                    },
                )
                .unwrap();
                assert_eq!(got, seq, "shards={shards} threads={threads}");
            }
        }
    }

    #[test]
    fn malformed_shard_starts_falls_back_to_flat() {
        assert_eq!(shard_segments(None, 10), vec![(0, 10)]);
        assert_eq!(shard_segments(Some(vec![0, 4, 8]), 10), vec![(0, 4), (4, 8), (8, 10)]);
        // Zero-width shards drop out.
        assert_eq!(shard_segments(Some(vec![0, 0, 5, 5]), 5), vec![(0, 5)]);
        // Malformed: doesn't start at 0 / descending / past n / empty.
        assert_eq!(shard_segments(Some(vec![1, 5]), 10), vec![(0, 10)]);
        assert_eq!(shard_segments(Some(vec![0, 6, 4]), 10), vec![(0, 10)]);
        assert_eq!(shard_segments(Some(vec![0, 11]), 10), vec![(0, 10)]);
        assert_eq!(shard_segments(Some(vec![]), 10), vec![(0, 10)]);
        // Empty source still yields one (empty) segment.
        assert_eq!(shard_segments(Some(vec![0]), 0), vec![(0, 0)]);
    }

    #[test]
    fn sequential_fallback_engages_below_min_chunk() {
        // 10 regions at default min_chunk (16): one thread even at
        // fixed(8); results unchanged either way.
        let src = source(10);
        assert_eq!(Parallelism::fixed(8).threads_for(src.num_regions()), 1);
    }
}
