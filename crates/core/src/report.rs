//! The unified builder answer: every bellwether construction — basic
//! search, linear-criterion search, the two trees, the three cubes —
//! reduces to one [`BellwetherReport`] describing the chosen region, its
//! fitted model and diagnostics, and the skipped-region accounting.
//!
//! Before this type each builder returned its own ad-hoc shape (result
//! struct + `bellwether()` tuples + root-node `NodeInfo` + root
//! `SubsetCell`), and every consumer — examples, the snapshot extractor,
//! the serving layer — re-implemented the "what did the build find"
//! unpacking. The richer per-builder results remain available (region
//! sweeps, per-cell tables, tree introspection); `report()` is the
//! single summary shape they all share.

use crate::basic::{BasicSearchResult, LinearSearchResult};
use crate::cube::BellwetherCube;
use crate::tree::BellwetherTree;
use bellwether_cube::RegionId;
use bellwether_linreg::{ErrorEstimate, LinearModel};

/// What a bellwether build found: the chosen region, the model fit on
/// it, error diagnostics, and which regions the scan had to skip.
#[derive(Debug, Clone)]
pub struct BellwetherReport {
    /// The bellwether region.
    pub region: RegionId,
    /// Display label, e.g. `[1-8, MD]`.
    pub label: String,
    /// Index of the region in the training source's scan order.
    pub region_index: usize,
    /// The quantity the builder minimised: the error estimate for
    /// constrained searches/trees/cubes, the combined
    /// `error + w₁·cost − w₂·coverage` for the linear criterion.
    pub score: f64,
    /// Point estimate of the bellwether model's error.
    pub error: f64,
    /// §6 confidence bounds on the error, when the builder computed them
    /// (cross-validated searches and cubes; `None` for tree nodes, whose
    /// stored error is a point estimate).
    pub error_bounds: Option<ErrorEstimate>,
    /// The fitted bellwether model.
    pub model: LinearModel,
    /// Training examples behind the model.
    pub n_examples: usize,
    /// Ascending source indices of regions skipped as unreadable during
    /// the build (empty under a `Strict` scan policy). Non-empty means
    /// the report is degraded: those regions were never considered.
    pub skipped_regions: Vec<usize>,
}

impl BellwetherReport {
    /// One-line human summary, the shape the examples print.
    pub fn summary(&self) -> String {
        let skipped = if self.skipped_regions.is_empty() {
            String::new()
        } else {
            format!(", {} regions skipped", self.skipped_regions.len())
        };
        format!(
            "bellwether {} (score {:.4}, error {:.4}, n={}{})",
            self.label, self.score, self.error, self.n_examples, skipped
        )
    }
}

impl BasicSearchResult {
    /// The unified report for this search, if a bellwether was found.
    pub fn report(&self) -> Option<BellwetherReport> {
        let best = self.bellwether()?;
        Some(BellwetherReport {
            region: best.region.clone(),
            label: best.label.clone(),
            region_index: best.source_index,
            score: best.error.value,
            error: best.error.value,
            error_bounds: Some(best.error),
            model: best.model.clone(),
            n_examples: best.n_examples,
            skipped_regions: self.skipped_regions.clone(),
        })
    }
}

impl LinearSearchResult {
    /// The unified report for this search, if a bellwether was found.
    /// `score` is the linear-criterion value, not the raw error.
    pub fn report(&self) -> Option<BellwetherReport> {
        let (best, score) = self.bellwether()?;
        Some(BellwetherReport {
            region: best.region.clone(),
            label: best.label.clone(),
            region_index: best.source_index,
            score,
            error: best.error.value,
            error_bounds: Some(best.error),
            model: best.model.clone(),
            n_examples: best.n_examples,
            skipped_regions: self.skipped_regions.clone(),
        })
    }
}

impl BellwetherTree {
    /// The unified report for this tree: the *root* node's bellwether —
    /// the single-region answer an item falls back to before any
    /// routing. Per-leaf models stay on the tree itself.
    pub fn report(&self) -> Option<BellwetherReport> {
        let info = self.root().info.as_ref()?;
        Some(BellwetherReport {
            region: info.region.clone(),
            label: info.label.clone(),
            region_index: info.region_index,
            score: info.error,
            error: info.error,
            error_bounds: None,
            model: info.model.clone(),
            n_examples: info.n_examples,
            skipped_regions: self.skipped_regions.clone(),
        })
    }
}

impl BellwetherCube {
    /// The unified report for this cube: the *root* cell's bellwether —
    /// the whole-population answer before any subset refinement. Per-cell
    /// models stay on the cube itself.
    pub fn report(&self) -> Option<BellwetherReport> {
        let cell = self.root_cell()?;
        Some(BellwetherReport {
            region: cell.region.clone(),
            label: cell.region_label.clone(),
            region_index: cell.region_index,
            score: cell.error.value,
            error: cell.error.value,
            error_bounds: Some(cell.error),
            model: cell.model.clone(),
            n_examples: cell.n_examples,
            skipped_regions: self.skipped_regions.clone(),
        })
    }
}

#[cfg(test)]
mod tests {
    use crate::cube::naive::build_naive_cube;
    use crate::cube::tests_support::cube_fixture;
    use crate::cube::CubeConfig;
    use crate::problem::{BellwetherConfig, ErrorMeasure};
    use crate::tree::rainforest::build_rainforest;
    use crate::tree::tests_support::two_group_fixture;
    use crate::tree::TreeConfig;
    use crate::basic::basic_search;
    use bellwether_cube::UniformCellCost;

    fn problem() -> BellwetherConfig {
        BellwetherConfig::builder(1e9)
            .min_coverage(0.0)
            .min_examples(4)
            .error_measure(ErrorMeasure::TrainingSet)
            .build()
            .unwrap()
    }

    #[test]
    fn basic_search_report_matches_best_region() {
        let (src, space, items) = two_group_fixture();
        let cost = UniformCellCost { rate: 1.0 };
        let result = basic_search(&src, &space, &cost, &problem(), items.len()).unwrap();
        let report = result.report().expect("bellwether found");
        let best = result.bellwether().unwrap();
        assert_eq!(report.label, best.label);
        assert_eq!(report.region_index, best.source_index);
        assert_eq!(report.score, best.error.value);
        assert_eq!(report.error_bounds.unwrap().value, best.error.value);
        assert!(report.skipped_regions.is_empty());
        assert!(report.summary().contains(&report.label));
    }

    #[test]
    fn tree_report_is_the_root_bellwether() {
        let (src, space, items) = two_group_fixture();
        let tree = build_rainforest(
            &src,
            &space,
            &items,
            None,
            &problem(),
            &TreeConfig { min_node_items: 8, ..TreeConfig::default() },
        )
        .unwrap();
        let report = tree.report().expect("root modelled");
        let info = tree.root().info.as_ref().unwrap();
        assert_eq!(report.label, info.label);
        assert_eq!(report.error, info.error);
        assert!(report.error_bounds.is_none());
        assert_eq!(report.n_examples, info.n_examples);
    }

    #[test]
    fn cube_report_is_the_root_cell() {
        let (src, region_space, items, item_space, coords) = cube_fixture();
        let cube = build_naive_cube(
            &src,
            &region_space,
            &item_space,
            &coords,
            &problem(),
            &CubeConfig { min_subset_size: 4 },
        )
        .unwrap();
        let _ = items;
        let report = cube.report().expect("root cell modelled");
        let root = cube.root_cell().unwrap();
        assert_eq!(report.label, root.region_label);
        assert_eq!(report.region_index, root.region_index);
        assert_eq!(report.score, root.error.value);
    }
}
