//! Bellwether cubes (§6): a bellwether region (and model) for **every**
//! significant cube subset of items induced by the item hierarchies.
//!
//! Three construction algorithms, in increasing sophistication:
//!
//! * [`naive::build_naive_cube`] — solve a basic bellwether problem per
//!   subset (re-scans the entire training data per subset);
//! * [`single_scan::build_single_scan_cube`] — one scan over the entire
//!   training data, keeping a `MinError` entry per subset (Lemma 2);
//! * [`optimized::build_optimized_cube`] — the single scan, but per
//!   region the per-subset models come from rolling the Theorem-1
//!   sufficient statistic up the item-hierarchy lattice instead of
//!   refitting each subset from raw rows.
//!
//! All three produce the same cube; the integration tests assert it.

pub mod explore;
pub mod naive;
pub mod optimized;
pub mod predict;
pub mod single_scan;

use crate::error::{BellwetherError, Result};
use bellwether_cube::{rollup_lattice, RegionId, RegionSpace};
use bellwether_linreg::{ErrorEstimate, LinearModel};
use std::collections::{HashMap, HashSet};

/// Construction parameters specific to cubes.
#[derive(Debug, Clone)]
pub struct CubeConfig {
    /// Size threshold K: only subsets with at least this many items get
    /// a cell (§6.2, "significant subsets").
    pub min_subset_size: usize,
}

impl Default for CubeConfig {
    fn default() -> Self {
        CubeConfig {
            min_subset_size: 30,
        }
    }
}

impl CubeConfig {
    /// Start building from the defaults, with validation at
    /// [`CubeConfigBuilder::build`] time.
    pub fn builder() -> CubeConfigBuilder {
        CubeConfigBuilder(CubeConfig::default())
    }
}

/// Builder for [`CubeConfig`] with typed validation, matching
/// `BellwetherConfig::builder` in style.
#[derive(Debug, Clone, Default)]
pub struct CubeConfigBuilder(CubeConfig);

impl CubeConfigBuilder {
    /// Size threshold K (≥ 1): only subsets with at least this many
    /// items get a cell.
    pub fn min_subset_size(mut self, k: usize) -> Self {
        self.0.min_subset_size = k;
        self
    }

    /// Validate and produce the config.
    pub fn build(self) -> Result<CubeConfig> {
        if self.0.min_subset_size == 0 {
            return Err(BellwetherError::Config(
                "min_subset_size must be at least 1".to_string(),
            ));
        }
        Ok(self.0)
    }
}

/// One cube cell: the bellwether for one item subset.
#[derive(Debug, Clone)]
pub struct SubsetCell {
    /// The cube subset (item-space coordinates).
    pub subset: RegionId,
    /// Subset display label, e.g. `[Hardware, Low]`.
    pub label: String,
    /// Number of items in the subset.
    pub size: usize,
    /// Scan index of the bellwether region.
    pub region_index: usize,
    /// The bellwether region for this subset.
    pub region: RegionId,
    /// Region display label.
    pub region_label: String,
    /// Error estimate of the bellwether model.
    pub error: ErrorEstimate,
    /// The bellwether model (trained on the subset's items in the
    /// region).
    pub model: LinearModel,
    /// Training examples behind the model.
    pub n_examples: usize,
}

/// A fitted bellwether cube.
#[derive(Debug, Clone)]
pub struct BellwetherCube {
    /// The item-hierarchy product space.
    pub item_space: RegionSpace,
    /// Leaf coordinates of every item (for prediction routing).
    pub item_coords: HashMap<i64, Vec<u32>>,
    /// One cell per significant subset that could be modelled.
    pub cells: HashMap<RegionId, SubsetCell>,
    /// Region indices skipped as unreadable during construction
    /// (sorted, deduplicated across all scans). Empty under
    /// [`crate::scan::ScanPolicy::Strict`]; non-empty marks the cube as
    /// a degraded result built without those regions.
    pub skipped_regions: Vec<usize>,
}

impl BellwetherCube {
    /// The cell of a subset, if present.
    pub fn cell(&self, subset: &RegionId) -> Option<&SubsetCell> {
        self.cells.get(subset)
    }

    /// The cube's cell for the full item set `[Any, …, Any]` (all roots).
    pub fn root_cell(&self) -> Option<&SubsetCell> {
        self.cells.get(&RegionId(vec![0; self.item_space.arity()]))
    }
}

/// Membership structures shared by all three construction algorithms.
#[derive(Debug)]
pub struct SubsetIndex {
    /// Item ids per significant subset.
    pub members: HashMap<RegionId, HashSet<i64>>,
    /// Significant subsets in deterministic order.
    pub order: Vec<RegionId>,
}

/// Select the significant subsets (|S| ≥ K) and their member sets from
/// the items' leaf coordinates — the iceberg-query step of Figure 7 in
/// the paper, computed here by a count rollup over the lattice.
pub fn significant_subsets(
    item_space: &RegionSpace,
    item_coords: &HashMap<i64, Vec<u32>>,
    config: &CubeConfig,
) -> Result<SubsetIndex> {
    if item_coords.is_empty() {
        return Err(BellwetherError::Config("no items with coordinates".into()));
    }
    // Base subsets: group items by their leaf coordinate combination.
    let mut base: HashMap<RegionId, HashSet<i64>> = HashMap::new();
    for (&id, coords) in item_coords {
        base.entry(RegionId(coords.clone()))
            .or_default()
            .insert(id);
    }
    // Roll member sets up the lattice (set union is trivially
    // distributive over the disjoint base subsets).
    let members = rollup_lattice(item_space, base, |a, b| {
        a.extend(b.iter().copied());
    });
    let mut order: Vec<RegionId> = members
        .iter()
        .filter(|(_, s)| s.len() >= config.min_subset_size)
        .map(|(k, _)| k.clone())
        .collect();
    order.sort();
    let members = members
        .into_iter()
        .filter(|(k, _)| order.binary_search(k).is_ok())
        .collect();
    Ok(SubsetIndex { members, order })
}

#[cfg(test)]
pub(crate) mod tests_support {
    use super::*;
    use crate::items::ItemTable;
    use bellwether_cube::{Dimension, Hierarchy};
    use bellwether_storage::{MemorySource, RegionBlock};
    use bellwether_table::{Column, DataType, Schema, Table};

    /// Item space: one hierarchy Any → {ga, gb}; 24 items, half per
    /// leaf. Region space: All/{ra, rb}. Group ga is perfectly
    /// predictable in ra, gb in rb, the union in neither.
    pub fn cube_fixture() -> (
        MemorySource,
        RegionSpace,
        ItemTable,
        RegionSpace,
        HashMap<i64, Vec<u32>>,
    ) {
        let region_space = RegionSpace::new(vec![Dimension::Hierarchy(Hierarchy::flat(
            "L",
            "All",
            &["ra", "rb"],
        ))]);
        let item_space = RegionSpace::new(vec![Dimension::Hierarchy(Hierarchy::flat(
            "G",
            "Any",
            &["ga", "gb"],
        ))]);

        let n = 24i64;
        let is_a = |i: i64| i < 12;
        let fa = |i: i64| (3 * i + 1) as f64;
        let fb = |i: i64| (i + 7) as f64;
        let junk = |i: i64, s: i64| ((i * 29 + s * 17) % 13) as f64;
        let target = |i: i64| if is_a(i) { 2.0 * fa(i) } else { -4.0 * fb(i) };

        let mut all = RegionBlock::new(vec![0], 2);
        let mut ra = RegionBlock::new(vec![1], 2);
        let mut rb = RegionBlock::new(vec![2], 2);
        for i in 0..n {
            let f_ra = if is_a(i) { fa(i) } else { junk(i, 1) };
            let f_rb = if is_a(i) { junk(i, 2) } else { fb(i) };
            ra.push(i, &[1.0, f_ra], target(i));
            rb.push(i, &[1.0, f_rb], target(i));
            all.push(i, &[1.0, junk(i, 3)], target(i));
        }
        let source = MemorySource::new(vec![all, ra, rb]);

        let table = Table::new(
            Schema::from_pairs(&[("id", DataType::Int), ("g", DataType::Str)]).unwrap(),
            vec![
                Column::from_ints((0..n).collect()),
                Column::from_strs(
                    &(0..n)
                        .map(|i| if is_a(i) { "ga" } else { "gb" })
                        .collect::<Vec<_>>(),
                ),
            ],
        )
        .unwrap();
        let items = ItemTable::from_table(&table, "id", &[], &["g"]).unwrap();
        let item_coords = items
            .leaf_coords(
                &[match &item_space.dims()[0] {
                    Dimension::Hierarchy(h) => h.clone(),
                    _ => unreachable!(),
                }],
                &["g"],
            )
            .unwrap();
        (source, region_space, items, item_space, item_coords)
    }
}

#[cfg(test)]
mod tests {
    use super::tests_support::cube_fixture;
    use super::*;

    #[test]
    fn significant_subsets_respect_threshold() {
        let (_, _, _, item_space, coords) = cube_fixture();
        // 24 items: Any = 24, ga = gb = 12.
        let all = significant_subsets(&item_space, &coords, &CubeConfig { min_subset_size: 1 })
            .unwrap();
        assert_eq!(all.order.len(), 3);
        let k13 = significant_subsets(
            &item_space,
            &coords,
            &CubeConfig {
                min_subset_size: 13,
            },
        )
        .unwrap();
        assert_eq!(k13.order.len(), 1); // only [Any]
        assert_eq!(k13.members[&RegionId(vec![0])].len(), 24);
    }

    #[test]
    fn member_sets_are_correct() {
        let (_, _, _, item_space, coords) = cube_fixture();
        let idx = significant_subsets(&item_space, &coords, &CubeConfig { min_subset_size: 1 })
            .unwrap();
        let ga = &idx.members[&RegionId(vec![1])];
        assert_eq!(ga.len(), 12);
        assert!(ga.contains(&0) && !ga.contains(&12));
    }

    #[test]
    fn empty_items_rejected() {
        let (_, _, _, item_space, _) = cube_fixture();
        let empty = HashMap::new();
        assert!(significant_subsets(&item_space, &empty, &CubeConfig::default()).is_err());
    }
}
