//! Optimized bellwether cube construction (§6.4): the single scan where
//! per-region, per-subset model construction is replaced by data-cube
//! computation of the Theorem-1 sufficient statistic.
//!
//! For each region block we accumulate `g(S) = ⟨Y'WY, X'WX, X'WY, n⟩`
//! once per **base** subset (each example belongs to exactly one base
//! subset), then roll the statistics up the item-hierarchy lattice with
//! `merge` — `O(#base · Σ depth)` merges — and read every subset's
//! training-set SSE straight from the merged statistic. The per-block
//! cost no longer multiplies by the number of nested subsets, which is
//! what Figures 11(b) and 12(a) measure.
//!
//! The training-set error is what Theorem 1 makes algebraic, so this
//! algorithm requires [`ErrorMeasure::TrainingSet`]; constructing with a
//! cross-validation measure is a configuration error.

use super::naive::finalize_cell;
use super::{BellwetherCube, CubeConfig};
use crate::error::{BellwetherError, Result};
use crate::eval::{record_eval_stats, RegionEvalScratch};
use crate::problem::{BellwetherConfig, ErrorMeasure};
use crate::scan::{scan_regions_policy, MergeableAccumulator, WithScratch};
use crate::seeded::hash_fold;
use bellwether_cube::{rollup_lattice, Parallelism, RegionId, RegionSpace};
use bellwether_linreg::{FoldedSuffStats, RegSuffStats};
use bellwether_obs::{names, span};
use bellwether_storage::TrainingSource;
use std::collections::hash_map::Entry;
use std::collections::HashMap;

/// Best `(region index, error)` per subset. Merges per key with strict
/// `<`, keeping the earlier chunk's winner on ties — exactly the
/// sequential scan's `or_insert + strict-<` update over ascending
/// region indices. The value carried per key is order-independent
/// except for ties, and ties resolve to the lower region index because
/// partials merge in ascending chunk order.
struct BestMap<V>(HashMap<RegionId, V>);

/// Error value a per-subset slot is ranked by.
trait Ranked {
    fn err(&self) -> f64;
}

impl Ranked for (usize, f64) {
    fn err(&self) -> f64 {
        self.1
    }
}

impl Ranked for (usize, f64, Vec<f64>) {
    fn err(&self) -> f64 {
        self.1
    }
}

impl<V: Ranked + Send> MergeableAccumulator for BestMap<V> {
    fn merge(&mut self, later: Self) {
        for (subset, slot) in later.0 {
            match self.0.entry(subset) {
                Entry::Occupied(mut o) => {
                    if slot.err() < o.get().err() {
                        o.insert(slot);
                    }
                }
                Entry::Vacant(v) => {
                    v.insert(slot);
                }
            }
        }
    }
}

/// Build a bellwether cube with the algebraic-rollup optimization.
pub fn build_optimized_cube(
    source: &dyn TrainingSource,
    region_space: &RegionSpace,
    item_space: &RegionSpace,
    item_coords: &HashMap<i64, Vec<u32>>,
    problem: &BellwetherConfig,
    cube_cfg: &CubeConfig,
) -> Result<BellwetherCube> {
    if problem.error_measure != ErrorMeasure::TrainingSet {
        return Err(BellwetherError::Config(
            "the optimized cube requires ErrorMeasure::TrainingSet (Theorem 1 \
             decomposes training-set SSE, not cross-validation error)"
                .into(),
        ));
    }
    let _timer = span!(problem.recorder, "cube/optimized");
    let index = super::significant_subsets(item_space, item_coords, cube_cfg)?;
    let p = source.feature_arity();

    let scanned = scan_regions_policy(
        source,
        problem.parallelism,
        problem.scan_policy,
        || BestMap(HashMap::new()),
        |acc: &mut BestMap<(usize, f64)>, idx, block| {
            // Base aggregation: one suffstats update per example, read
            // straight from the block's feature lanes.
            let mut base: HashMap<RegionId, RegSuffStats> = HashMap::new();
            for (i, id) in block.item_ids.iter().enumerate() {
                let Some(coords) = item_coords.get(id) else { continue };
                base.entry(RegionId(coords.clone()))
                    .or_insert_with(|| RegSuffStats::new(p))
                    .add_from_cols(block.cols(), i, block.targets[i], 1.0);
            }

            // Lattice rollup: merge statistics upward (Observation 1).
            let rolled = rollup_lattice(item_space, base, |a, b| a.merge(b));

            // Read each significant subset's error from its statistic.
            for subset in &index.order {
                let Some(stats) = rolled.get(subset) else { continue };
                if stats.n() < problem.min_examples.max(1) {
                    continue;
                }
                let Some(err) = stats.rmse() else { continue };
                let slot = acc.0.entry(subset.clone()).or_insert((idx, f64::INFINITY));
                if err < slot.1 {
                    *slot = (idx, err);
                }
            }
            Ok(())
        },
    )?;
    scanned.record_skipped(problem.recorder.as_ref());
    let best = scanned.acc.0;

    let mut cells = HashMap::new();
    for subset in &index.order {
        if let Some(cell) = finalize_cell(
            source,
            region_space,
            item_space,
            subset,
            &index.members[subset],
            problem,
            best.get(subset).copied(),
        )? {
            cells.insert(subset.clone(), cell);
        }
    }
    problem.recorder.add(names::CUBE_CELLS, cells.len() as u64);
    Ok(BellwetherCube {
        item_space: item_space.clone(),
        item_coords: item_coords.clone(),
        cells,
        skipped_regions: scanned.skipped,
    })
}

/// Per-worker state of the CV cube scan: best `(region idx, cv error,
/// fold rmses)` per subset, plus the reusable evaluation scratch.
type CvScanState = WithScratch<BestMap<(usize, f64, Vec<f64>)>, RegionEvalScratch>;

/// **Extension beyond the paper**: a *cross-validated* optimized cube.
///
/// Theorem 1 decomposes training-set SSE. The same statistic also
/// yields k-fold cross-validation error without revisiting examples:
/// keep a [`FoldedSuffStats`] per base subset (one [`RegSuffStats`] per
/// fold plus the running total, built in a single pass); fold `f`'s
/// model is fit by *downdating* the total via
/// [`RegSuffStats::subtract`], and its test SSE on fold `f` is
/// `Y'Y − 2β'X'Y + β'X'Xβ` — entirely from fold `f`'s statistic
/// ([`RegSuffStats::sse_of_model`]). The k solves run through the
/// shared [`bellwether_linreg::EvalScratch`] engine, so per-fold Gram
/// buffers are reused across subsets and regions. The per-block cost
/// gains a factor `k` in statistics but still avoids per-subset refits
/// from raw rows.
///
/// The resulting cell errors are genuine CV estimates (mean fold RMSE ±
/// spread), so confidence-bound prediction works unchanged.
#[allow(clippy::too_many_arguments)] // mirrors the other builders + CV knobs
pub fn build_optimized_cube_cv(
    source: &dyn TrainingSource,
    region_space: &RegionSpace,
    item_space: &RegionSpace,
    item_coords: &HashMap<i64, Vec<u32>>,
    problem: &BellwetherConfig,
    cube_cfg: &CubeConfig,
    folds: usize,
    seed: u64,
) -> Result<BellwetherCube> {
    use bellwether_linreg::ErrorEstimate;
    if folds < 2 {
        return Err(BellwetherError::Config("cv cube needs at least 2 folds".into()));
    }
    let _timer = span!(problem.recorder, "cube/optimized_cv");
    let index = super::significant_subsets(item_space, item_coords, cube_cfg)?;
    let p = source.feature_arity();

    // best[subset] = (region idx, cv error, fold rmses). Runs through
    // the shared scan engine for the one-idiom property, but pinned
    // sequential: this extension pass is never on the benchmarked path
    // and keeps the conservative configuration.
    let scanned = scan_regions_policy(
        source,
        Parallelism::sequential(),
        problem.scan_policy,
        || WithScratch {
            acc: BestMap(HashMap::new()),
            scratch: RegionEvalScratch::new(),
        },
        |ws: &mut CvScanState, idx, block| {
            let WithScratch { acc, scratch } = ws;
            // Base aggregation, one folded statistic per base subset.
            let mut base: HashMap<RegionId, FoldedSuffStats> = HashMap::new();
            for (i, &id) in block.item_ids.iter().enumerate() {
                let Some(coords) = item_coords.get(&id) else { continue };
                base.entry(RegionId(coords.clone()))
                    .or_insert_with(|| FoldedSuffStats::new(p, folds))
                    .add_from_cols(block.cols(), i, block.targets[i], 1.0, hash_fold(id, folds, seed));
            }

            // Rollup: merge folded statistics (total + per-fold).
            let rolled = rollup_lattice(item_space, base, |a, b| a.merge(b));

            for subset in &index.order {
                let Some(stats) = rolled.get(subset) else { continue };
                if stats.n() < problem.min_examples.max(1) {
                    continue;
                }
                // Algebraic k-fold CV: k downdate-and-solve steps, no
                // per-fold merging and no raw-row refits.
                let fold_rmses = scratch.eval.algebraic_fold_rmses(stats);
                if fold_rmses.is_empty() {
                    continue;
                }
                let est = ErrorEstimate::from_folds(fold_rmses);
                let slot = acc
                    .0
                    .entry(subset.clone())
                    .or_insert((idx, f64::INFINITY, Vec::new()));
                if est.value < slot.1 {
                    slot.0 = idx;
                    slot.1 = est.value;
                    slot.2.clear();
                    slot.2.extend_from_slice(fold_rmses);
                }
            }
            Ok(())
        },
    )?;
    scanned.record_skipped(problem.recorder.as_ref());
    let WithScratch { acc, scratch } = scanned.acc;
    record_eval_stats(problem.recorder.as_ref(), &scratch.eval.stats);
    let best = acc.0;

    // Finalize: fit the winning models; the error estimate is the
    // algebraic CV estimate gathered during the scan.
    let mut cells = HashMap::new();
    for subset in &index.order {
        let Some((region_index, _, fold_rmses)) = best.get(subset) else { continue };
        let ids = &index.members[subset];
        let block = source
            .read_region(*region_index)
            .map_err(|source| BellwetherError::RegionRead {
                index: *region_index,
                source,
            })?;
        let data = crate::training::block_subset_data(&block, ids);
        let Some(model) = bellwether_linreg::fit_wls(&data) else { continue };
        let region = RegionId(source.region_coords(*region_index).to_vec());
        cells.insert(
            subset.clone(),
            super::SubsetCell {
                label: item_space.label(subset),
                subset: subset.clone(),
                size: ids.len(),
                region_index: *region_index,
                region_label: region_space.label(&region),
                region,
                error: ErrorEstimate::from_folds(fold_rmses),
                model,
                n_examples: data.n(),
            },
        );
    }
    problem.recorder.add(names::CUBE_CELLS, cells.len() as u64);
    Ok(BellwetherCube {
        item_space: item_space.clone(),
        item_coords: item_coords.clone(),
        cells,
        skipped_regions: scanned.skipped,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::cube::single_scan::build_single_scan_cube;
    use crate::cube::tests_support::cube_fixture;

    fn problem() -> BellwetherConfig {
        BellwetherConfig::builder(1e9)
            .min_coverage(0.0)
            .min_examples(4)
            .error_measure(ErrorMeasure::TrainingSet)
            .build()
            .unwrap()
    }

    fn cfg() -> CubeConfig {
        CubeConfig {
            min_subset_size: 5,
        }
    }

    #[test]
    fn optimized_matches_single_scan() {
        let (src, region_space, _items, item_space, coords) = cube_fixture();
        let single =
            build_single_scan_cube(&src, &region_space, &item_space, &coords, &problem(), &cfg())
                .unwrap();
        let optimized =
            build_optimized_cube(&src, &region_space, &item_space, &coords, &problem(), &cfg())
                .unwrap();
        assert_eq!(single.cells.len(), optimized.cells.len());
        for (subset, scell) in &single.cells {
            let ocell = optimized.cell(subset).expect("subset present");
            assert_eq!(scell.region, ocell.region, "subset {subset:?}");
            assert!(
                (scell.error.value - ocell.error.value).abs() < 1e-6,
                "errors diverge for {subset:?}: {} vs {}",
                scell.error.value,
                ocell.error.value
            );
        }
    }

    #[test]
    fn optimized_scan_count_matches_single_scan() {
        let (src, region_space, _items, item_space, coords) = cube_fixture();
        src.stats().reset();
        let cube =
            build_optimized_cube(&src, &region_space, &item_space, &coords, &problem(), &cfg())
                .unwrap();
        assert_eq!(
            src.snapshot().regions_read(),
            src.num_regions() as u64 + cube.cells.len() as u64
        );
    }

    #[test]
    fn cv_measure_rejected() {
        let (src, region_space, _items, item_space, coords) = cube_fixture();
        let bad = BellwetherConfig::builder(1e9).build().unwrap(); // defaults to CV
        let err =
            build_optimized_cube(&src, &region_space, &item_space, &coords, &bad, &cfg());
        assert!(matches!(err, Err(BellwetherError::Config(_))));
    }

    #[test]
    fn cv_cube_matches_direct_fold_computation() {
        use crate::training::block_subset_data;
        use bellwether_linreg::RegSuffStats;
        let (src, region_space, _items, item_space, coords) = cube_fixture();
        let folds = 3;
        let seed = 99;
        let cube = build_optimized_cube_cv(
            &src,
            &region_space,
            &item_space,
            &coords,
            &problem(),
            &cfg(),
            folds,
            seed,
        )
        .unwrap();
        assert!(!cube.cells.is_empty());

        // Reference: for the [ga] subset (node 1) and its winning
        // region, recompute the fold errors from raw rows with the same
        // fold assignment.
        let cell = cube.cell(&RegionId(vec![1])).expect("ga cell");
        let block = src.read_region(cell.region_index).unwrap();
        let ids: std::collections::HashSet<i64> = (0..12).collect();
        let data = block_subset_data(&block, &ids);
        // Recompute per-fold: gather rows per fold by item id.
        let fold_of = |id: i64| crate::seeded::hash_fold(id, folds, seed);
        let mut fold_rmses = Vec::new();
        for f in 0..folds {
            let mut train = bellwether_linreg::RegressionData::new(2);
            let mut test = bellwether_linreg::RegressionData::new(2);
            for (row, &id) in block.item_ids.iter().enumerate() {
                if !ids.contains(&id) {
                    continue;
                }
                if fold_of(id) == f {
                    test.push(&block.row(row), block.y(row));
                } else {
                    train.push(&block.row(row), block.y(row));
                }
            }
            if test.n() == 0 {
                continue;
            }
            let model = RegSuffStats::from_dataset(&train).fit().unwrap();
            fold_rmses.push(model.rmse_on(&test));
        }
        let expect = bellwether_linreg::ErrorEstimate::from_folds(&fold_rmses);
        assert!(
            (cell.error.value - expect.value).abs() < 1e-6,
            "algebraic CV {} vs direct {}",
            cell.error.value,
            expect.value
        );
        let _ = data;
    }

    #[test]
    fn cv_cube_picks_the_planted_regions() {
        let (src, region_space, _items, item_space, coords) = cube_fixture();
        let cube = build_optimized_cube_cv(
            &src,
            &region_space,
            &item_space,
            &coords,
            &problem(),
            &cfg(),
            4,
            7,
        )
        .unwrap();
        assert_eq!(cube.cell(&RegionId(vec![1])).unwrap().region_label, "[ra]");
        assert_eq!(cube.cell(&RegionId(vec![2])).unwrap().region_label, "[rb]");
        // CV errors carry spread information for confidence selection.
        assert!(cube.root_cell().unwrap().error.std_err >= 0.0);
    }

    #[test]
    fn cv_cube_rejects_single_fold() {
        let (src, region_space, _items, item_space, coords) = cube_fixture();
        let err = build_optimized_cube_cv(
            &src,
            &region_space,
            &item_space,
            &coords,
            &problem(),
            &cfg(),
            1,
            0,
        );
        assert!(matches!(err, Err(BellwetherError::Config(_))));
    }

    #[test]
    fn items_without_coords_are_skipped() {
        let (src, region_space, _items, item_space, mut coords) = cube_fixture();
        // Remove one item's coordinates: it simply drops out of the cube.
        coords.remove(&0);
        let cube =
            build_optimized_cube(&src, &region_space, &item_space, &coords, &problem(), &cfg())
                .unwrap();
        assert_eq!(cube.root_cell().unwrap().size, 23);
    }
}
