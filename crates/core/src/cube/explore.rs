//! Rollup/drilldown exploration of a bellwether cube (§6.2).
//!
//! A bellwether cube supports the familiar cross-tab interface of a data
//! cube: pick one level (tree depth) per item hierarchy and view, for
//! every subset combination at those levels, the bellwether region and
//! its error. Rollup = move a hierarchy to a shallower depth; drilldown
//! = deeper.

use super::BellwetherCube;
use bellwether_cube::{Dimension, RegionId};

/// One row of a cross-tab view.
#[derive(Debug, Clone)]
pub struct CrossTabCell {
    /// The subset's coordinates.
    pub subset: RegionId,
    /// Per-hierarchy value labels, e.g. `["Hardware", "Low"]`.
    pub values: Vec<String>,
    /// The subset's bellwether region label, if modelled.
    pub region_label: Option<String>,
    /// The bellwether model error, if modelled.
    pub error: Option<f64>,
    /// Subset size, if modelled.
    pub size: Option<usize>,
}

/// Nodes of a hierarchy at a given depth.
fn nodes_at_depth(dim: &Dimension, depth: u32) -> Vec<u32> {
    match dim {
        Dimension::Hierarchy(h) => (0..h.num_nodes())
            .filter(|&n| h.node(n).depth == depth)
            .collect(),
        Dimension::Interval { .. } => unreachable!("item spaces are hierarchies"),
    }
}

/// Materialise the cross-tab at one depth per hierarchy (the "level" of
/// Fig. 6). Cells whose subset is not significant (or unmodelled) come
/// back with empty region/error so the UI can render them as gaps.
pub fn cross_tab(cube: &BellwetherCube, depths: &[u32]) -> Vec<CrossTabCell> {
    assert_eq!(
        depths.len(),
        cube.item_space.arity(),
        "one depth per item hierarchy"
    );
    let per_dim: Vec<Vec<u32>> = cube
        .item_space
        .dims()
        .iter()
        .zip(depths)
        .map(|(d, &depth)| nodes_at_depth(d, depth))
        .collect();

    let mut out = Vec::new();
    let mut idx = vec![0usize; per_dim.len()];
    if per_dim.iter().any(Vec::is_empty) {
        return out;
    }
    loop {
        let coords: Vec<u32> = idx.iter().zip(&per_dim).map(|(&i, v)| v[i]).collect();
        let subset = RegionId(coords);
        let values = cube
            .item_space
            .dims()
            .iter()
            .zip(&subset.0)
            .map(|(d, &v)| d.label(v))
            .collect();
        let cell = cube.cells.get(&subset);
        out.push(CrossTabCell {
            values,
            region_label: cell.map(|c| c.region_label.clone()),
            error: cell.map(|c| c.error.value),
            size: cell.map(|c| c.size),
            subset,
        });
        let mut d = per_dim.len();
        loop {
            if d == 0 {
                return out;
            }
            d -= 1;
            idx[d] += 1;
            if idx[d] < per_dim[d].len() {
                break;
            }
            idx[d] = 0;
        }
    }
}

/// Materialise a cross-tab as a relational [`Table`] (one row per
/// subset: value labels, bellwether region, error, size), so explore
/// results can be exported through the table crate's CSV writer or
/// post-processed with the relational operators.
pub fn cross_tab_table(
    cube: &BellwetherCube,
    depths: &[u32],
) -> bellwether_table::Result<bellwether_table::Table> {
    use bellwether_table::{DataType, Schema, TableBuilder, Value};
    let cells = cross_tab(cube, depths);
    let mut fields: Vec<(String, DataType)> = cube
        .item_space
        .dims()
        .iter()
        .map(|d| (d.name().to_string(), DataType::Str))
        .collect();
    fields.push(("bellwether_region".into(), DataType::Str));
    fields.push(("error".into(), DataType::Float));
    fields.push(("items".into(), DataType::Int));
    let schema = Schema::new(
        fields
            .into_iter()
            .map(|(n, t)| bellwether_table::Field::new(n, t))
            .collect(),
    )?;
    let mut builder = TableBuilder::new(schema);
    for c in &cells {
        let mut row: Vec<Value> = c.values.iter().map(|v| Value::from(v.as_str())).collect();
        row.push(match &c.region_label {
            Some(l) => Value::from(l.as_str()),
            None => Value::Null,
        });
        row.push(c.error.map(Value::Float).unwrap_or(Value::Null));
        row.push(
            c.size
                .map(|s| Value::Int(s as i64))
                .unwrap_or(Value::Null),
        );
        builder.push_row(row)?;
    }
    builder.finish()
}

/// Render a cross-tab as an aligned text table (for examples/CLI).
pub fn render_cross_tab(cube: &BellwetherCube, depths: &[u32]) -> String {
    let cells = cross_tab(cube, depths);
    let mut out = String::new();
    out.push_str("subset | bellwether region | error | items\n");
    for c in &cells {
        let region = c.region_label.as_deref().unwrap_or("-");
        let error = c
            .error
            .map(|e| format!("{e:.4}"))
            .unwrap_or_else(|| "-".into());
        let size = c.size.map(|s| s.to_string()).unwrap_or_else(|| "-".into());
        out.push_str(&format!(
            "[{}] | {region} | {error} | {size}\n",
            c.values.join(", ")
        ));
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::cube::naive::build_naive_cube;
    use crate::cube::tests_support::cube_fixture;
    use crate::cube::CubeConfig;
    use crate::problem::{BellwetherConfig, ErrorMeasure};

    fn cube() -> BellwetherCube {
        let (src, region_space, _items, item_space, coords) = cube_fixture();
        build_naive_cube(
            &src,
            &region_space,
            &item_space,
            &coords,
            &BellwetherConfig::builder(1e9)
                .min_coverage(0.0)
                .min_examples(4)
                .error_measure(ErrorMeasure::TrainingSet)
                .build()
                .unwrap(),
            &CubeConfig {
                min_subset_size: 5,
            },
        )
        .unwrap()
    }

    #[test]
    fn rollup_level_shows_root() {
        let c = cube();
        let cells = cross_tab(&c, &[0]);
        assert_eq!(cells.len(), 1);
        assert_eq!(cells[0].values, vec!["Any"]);
        assert!(cells[0].error.is_some());
        assert_eq!(cells[0].size, Some(24));
    }

    #[test]
    fn drilldown_level_shows_leaves() {
        let c = cube();
        let cells = cross_tab(&c, &[1]);
        assert_eq!(cells.len(), 2);
        let labels: Vec<&str> = cells.iter().map(|c| c.values[0].as_str()).collect();
        assert_eq!(labels, vec!["ga", "gb"]);
        // Leaf errors much lower than root error (the drilldown insight).
        let root = cross_tab(&c, &[0])[0].error.unwrap();
        for cell in &cells {
            assert!(cell.error.unwrap() < root);
        }
    }

    #[test]
    fn cross_tab_exports_as_relational_table() {
        let c = cube();
        let t = cross_tab_table(&c, &[1]).unwrap();
        assert_eq!(t.num_rows(), 2);
        assert_eq!(
            t.schema().names(),
            vec!["G", "bellwether_region", "error", "items"]
        );
        // And it survives a CSV round trip.
        let mut buf = Vec::new();
        bellwether_table::csv::write_csv(&t, &mut buf).unwrap();
        let back =
            bellwether_table::csv::read_csv(t.schema().clone(), std::io::Cursor::new(buf))
                .unwrap();
        assert_eq!(back.num_rows(), 2);
    }

    #[test]
    fn unmodelled_cells_render_as_gaps() {
        let mut c = cube();
        c.cells.remove(&RegionId(vec![1]));
        let rendered = render_cross_tab(&c, &[1]);
        assert!(rendered.contains("[ga] | - | - | -"));
        assert!(rendered.contains("[gb] | [rb]"));
    }
}
