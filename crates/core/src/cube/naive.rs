//! Naive bellwether cube construction (§6.2): one basic bellwether
//! search per significant subset — each re-scans the entire training
//! data, so IO grows with the number of subsets.

use super::{BellwetherCube, CubeConfig, SubsetCell};
use crate::error::{BellwetherError, Result};
use crate::eval::{record_eval_stats, RegionEvalScratch};
use crate::problem::BellwetherConfig;
use crate::scan::{merge_skipped, scan_regions_policy, BestRegion, WithScratch};
use crate::training::block_subset_data;
use bellwether_cube::{RegionId, RegionSpace};
use bellwether_linreg::fit_wls;
use bellwether_obs::{names, span};
use bellwether_storage::TrainingSource;
use std::collections::{HashMap, HashSet};

/// Build a bellwether cube naively.
pub fn build_naive_cube(
    source: &dyn TrainingSource,
    region_space: &RegionSpace,
    item_space: &RegionSpace,
    item_coords: &HashMap<i64, Vec<u32>>,
    problem: &BellwetherConfig,
    cube_cfg: &CubeConfig,
) -> Result<BellwetherCube> {
    let _timer = span!(problem.recorder, "cube/naive");
    let index = super::significant_subsets(item_space, item_coords, cube_cfg)?;
    let mut cells = HashMap::new();
    let mut skipped_regions = Vec::new();
    for subset in &index.order {
        let ids = &index.members[subset];
        let (cell, skipped) =
            subset_cell_scanned(source, region_space, item_space, subset, ids, problem)?;
        merge_skipped(&mut skipped_regions, &skipped);
        if let Some(cell) = cell {
            cells.insert(subset.clone(), cell);
        }
    }
    problem.recorder.add(names::CUBE_CELLS, cells.len() as u64);
    Ok(BellwetherCube {
        item_space: item_space.clone(),
        item_coords: item_coords.clone(),
        cells,
        skipped_regions,
    })
}

/// Solve the basic bellwether problem for one subset: scan every region
/// (through the shared [`crate::scan`] engine, honouring
/// `problem.scan_policy`), track the minimum error, then fit the
/// winning model with a targeted read. Shared by the naive algorithm
/// and by all finalisation passes.
pub fn subset_cell(
    source: &dyn TrainingSource,
    region_space: &RegionSpace,
    item_space: &RegionSpace,
    subset: &RegionId,
    ids: &HashSet<i64>,
    problem: &BellwetherConfig,
) -> Result<Option<SubsetCell>> {
    Ok(subset_cell_scanned(source, region_space, item_space, subset, ids, problem)?.0)
}

/// [`subset_cell`] that also reports which region indices the scan
/// skipped as unreadable, so cube builders can account for them.
pub(crate) fn subset_cell_scanned(
    source: &dyn TrainingSource,
    region_space: &RegionSpace,
    item_space: &RegionSpace,
    subset: &RegionId,
    ids: &HashSet<i64>,
    problem: &BellwetherConfig,
) -> Result<(Option<SubsetCell>, Vec<usize>)> {
    let scanned = scan_regions_policy(
        source,
        problem.parallelism,
        problem.scan_policy,
        || WithScratch {
            acc: BestRegion::default(),
            scratch: RegionEvalScratch::new(),
        },
        |ws: &mut WithScratch<BestRegion, RegionEvalScratch>, idx, block| {
            ws.scratch.gather(block, Some(ids));
            if ws.scratch.data.n() < problem.min_examples.max(1) {
                return Ok(());
            }
            if let Some(e) = ws.scratch.estimate(problem) {
                ws.acc.observe(idx, e.value);
            }
            Ok(())
        },
    )?;
    scanned.record_skipped(problem.recorder.as_ref());
    let WithScratch { acc, scratch } = scanned.acc;
    record_eval_stats(problem.recorder.as_ref(), &scratch.eval.stats);
    let cell = finalize_cell(
        source,
        region_space,
        item_space,
        subset,
        ids,
        problem,
        acc.0,
    )?;
    Ok((cell, scanned.skipped))
}

/// Turn a winning `(region index, error value)` into a full cell with a
/// fitted model and complete error estimate (one targeted read).
pub fn finalize_cell(
    source: &dyn TrainingSource,
    region_space: &RegionSpace,
    item_space: &RegionSpace,
    subset: &RegionId,
    ids: &HashSet<i64>,
    problem: &BellwetherConfig,
    best: Option<(usize, f64)>,
) -> Result<Option<SubsetCell>> {
    let Some((region_index, _)) = best else {
        return Ok(None);
    };
    // The region was readable during the scan, but on a faulty source
    // the targeted re-read can still fail — surface it with the region
    // index attached.
    let block = source
        .read_region(region_index)
        .map_err(|source| BellwetherError::RegionRead {
            index: region_index,
            source,
        })?;
    let data = block_subset_data(&block, ids);
    let (Some(error), Some(model)) =
        (problem.error_measure.estimate(&data), fit_wls(&data))
    else {
        return Ok(None);
    };
    let region = RegionId(source.region_coords(region_index).to_vec());
    Ok(Some(SubsetCell {
        label: item_space.label(subset),
        subset: subset.clone(),
        size: ids.len(),
        region_index,
        region_label: region_space.label(&region),
        region,
        error,
        model,
        n_examples: data.n(),
    }))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::cube::tests_support::cube_fixture;
    use crate::problem::ErrorMeasure;

    fn problem() -> BellwetherConfig {
        BellwetherConfig::builder(1e9)
            .min_coverage(0.0)
            .min_examples(4)
            .error_measure(ErrorMeasure::TrainingSet)
            .build()
            .unwrap()
    }

    #[test]
    fn per_group_bellwethers_found() {
        let (src, region_space, _items, item_space, coords) = cube_fixture();
        let cube = build_naive_cube(
            &src,
            &region_space,
            &item_space,
            &coords,
            &problem(),
            &CubeConfig {
                min_subset_size: 5,
            },
        )
        .unwrap();
        assert_eq!(cube.cells.len(), 3);
        let ga = cube.cell(&RegionId(vec![1])).unwrap();
        assert_eq!(ga.region_label, "[ra]");
        assert!(ga.error.value < 1e-6);
        let gb = cube.cell(&RegionId(vec![2])).unwrap();
        assert_eq!(gb.region_label, "[rb]");
        assert!(gb.error.value < 1e-6);
        // The union subset exists but its error is much worse.
        let any = cube.root_cell().unwrap();
        assert!(any.error.value > 1.0);
        assert_eq!(any.size, 24);
        assert_eq!(any.label, "[Any]");
    }

    #[test]
    fn threshold_drops_small_subsets() {
        let (src, region_space, _items, item_space, coords) = cube_fixture();
        let cube = build_naive_cube(
            &src,
            &region_space,
            &item_space,
            &coords,
            &problem(),
            &CubeConfig {
                min_subset_size: 13,
            },
        )
        .unwrap();
        assert_eq!(cube.cells.len(), 1);
        assert!(cube.root_cell().is_some());
    }
}
