//! Single-scan bellwether cube construction (Figure 7 in the paper;
//! §6.3): keep a `MinError[S]` entry per significant subset in memory
//! and find every subset's bellwether region in **one** scan over the
//! entire training data (Lemma 2), plus one targeted read per cell to
//! fit the final model.

use super::naive::finalize_cell;
use super::{BellwetherCube, CubeConfig};
use crate::error::Result;
use crate::eval::{record_eval_stats, PartitionScratch};
use crate::problem::BellwetherConfig;
use crate::scan::{scan_regions_policy, BestRegion, WithScratch};
use crate::tree::partition::PartitionSpec;
use bellwether_cube::RegionSpace;
use bellwether_obs::{names, span};
use bellwether_storage::TrainingSource;
use std::collections::HashMap;

/// Build a bellwether cube in a single scan.
pub fn build_single_scan_cube(
    source: &dyn TrainingSource,
    region_space: &RegionSpace,
    item_space: &RegionSpace,
    item_coords: &HashMap<i64, Vec<u32>>,
    problem: &BellwetherConfig,
    cube_cfg: &CubeConfig,
) -> Result<BellwetherCube> {
    let _timer = span!(problem.recorder, "cube/single_scan");
    let index = super::significant_subsets(item_space, item_coords, cube_cfg)?;
    // Cube subsets overlap (they are nested), so each subset gets its
    // own single-set routing table, built once for the whole scan.
    let subset_specs: Vec<PartitionSpec> = index
        .order
        .iter()
        .map(|s| PartitionSpec::new(std::slice::from_ref(&index.members[s])))
        .collect();

    // MinError[S] / BellwetherRegion[S], updated region by region via
    // the shared scan engine (one BestRegion slot per subset; slots
    // merge element-wise across worker chunks).
    let scanned = scan_regions_policy(
        source,
        problem.parallelism,
        problem.scan_policy,
        || WithScratch {
            acc: vec![BestRegion::default(); index.order.len()],
            scratch: PartitionScratch::new(),
        },
        |ws: &mut WithScratch<Vec<BestRegion>, PartitionScratch>, idx, block| {
            // Build a model h_r for every significant subset from this
            // block — the per-subset refits the optimized variant
            // eliminates.
            let WithScratch { acc, scratch } = ws;
            for (slot, spec) in subset_specs.iter().enumerate() {
                if let Some(err) = scratch.errors(spec, block, problem)[0] {
                    acc[slot].observe(idx, err);
                }
            }
            Ok(())
        },
    )?;
    scanned.record_skipped(problem.recorder.as_ref());
    let WithScratch { acc: best, scratch } = scanned.acc;
    record_eval_stats(problem.recorder.as_ref(), &scratch.eval.stats);

    let mut cells = HashMap::new();
    for (slot, subset) in index.order.iter().enumerate() {
        if let Some(cell) = finalize_cell(
            source,
            region_space,
            item_space,
            subset,
            &index.members[subset],
            problem,
            best[slot].0,
        )? {
            cells.insert(subset.clone(), cell);
        }
    }
    problem.recorder.add(names::CUBE_CELLS, cells.len() as u64);
    Ok(BellwetherCube {
        item_space: item_space.clone(),
        item_coords: item_coords.clone(),
        cells,
        skipped_regions: scanned.skipped,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::cube::naive::build_naive_cube;
    use crate::cube::tests_support::cube_fixture;
    use crate::problem::ErrorMeasure;

    fn problem() -> BellwetherConfig {
        BellwetherConfig::builder(1e9)
            .min_coverage(0.0)
            .min_examples(4)
            .error_measure(ErrorMeasure::TrainingSet)
            .build()
            .unwrap()
    }

    fn cfg() -> CubeConfig {
        CubeConfig {
            min_subset_size: 5,
        }
    }

    #[test]
    fn lemma_2_same_cube_as_naive() {
        let (src, region_space, _items, item_space, coords) = cube_fixture();
        let naive =
            build_naive_cube(&src, &region_space, &item_space, &coords, &problem(), &cfg())
                .unwrap();
        let single =
            build_single_scan_cube(&src, &region_space, &item_space, &coords, &problem(), &cfg())
                .unwrap();
        assert_eq!(naive.cells.len(), single.cells.len());
        for (subset, ncell) in &naive.cells {
            let scell = single.cell(subset).expect("subset present in both");
            assert_eq!(ncell.region, scell.region, "subset {subset:?}");
            assert!((ncell.error.value - scell.error.value).abs() < 1e-9);
            assert_eq!(ncell.size, scell.size);
        }
    }

    #[test]
    fn lemma_2_scan_counts() {
        let (src, region_space, _items, item_space, coords) = cube_fixture();
        let num_regions = src.num_regions() as u64;

        src.stats().reset();
        let single =
            build_single_scan_cube(&src, &region_space, &item_space, &coords, &problem(), &cfg())
                .unwrap();
        let single_reads = src.snapshot().regions_read();
        // One full scan + one targeted read per produced cell.
        assert_eq!(single_reads, num_regions + single.cells.len() as u64);

        src.stats().reset();
        let naive =
            build_naive_cube(&src, &region_space, &item_space, &coords, &problem(), &cfg())
                .unwrap();
        let naive_reads = src.snapshot().regions_read();
        // One full scan per subset + one targeted read per cell.
        assert_eq!(
            naive_reads,
            num_regions * 3 + naive.cells.len() as u64
        );
        assert!(naive_reads > single_reads);
    }
}
