//! Item-centric prediction with a bellwether cube (§6.2).
//!
//! A new item belongs to one cube subset per lattice level — all the
//! ancestor combinations of its leaf coordinates. Each such subset's
//! bellwether model is a candidate; the paper picks the one with the
//! **lowest upper confidence bound** of its error (at a user-specified
//! confidence P), trading error against stability.

use super::{BellwetherCube, SubsetCell};
use bellwether_cube::{Parallelism, RegionId};

/// All cube subsets containing an item with the given leaf coordinates,
/// restricted to subsets that actually have cells.
pub fn candidate_cells<'c>(
    cube: &'c BellwetherCube,
    leaf_coords: &[u32],
) -> Vec<&'c SubsetCell> {
    cube.item_space
        .containing_regions(leaf_coords)
        .into_iter()
        .filter_map(|s| cube.cells.get(&s))
        .collect()
}

/// Pick the predicting cell for an item: minimum upper confidence bound,
/// ties broken by subset id for determinism. `None` when no ancestor
/// subset has a cell.
pub fn select_cell<'c>(
    cube: &'c BellwetherCube,
    leaf_coords: &[u32],
    confidence: f64,
) -> Option<&'c SubsetCell> {
    candidate_cells(cube, leaf_coords)
        .into_iter()
        .min_by(|a, b| {
            a.error
                .upper_bound(confidence)
                .total_cmp(&b.error.upper_bound(confidence))
                .then_with(|| a.subset.cmp(&b.subset))
        })
}

/// Select the predicting cell for a known item id.
pub fn select_cell_for_item(
    cube: &BellwetherCube,
    item: i64,
    confidence: f64,
) -> Option<&SubsetCell> {
    let coords = cube.item_coords.get(&item)?.clone();
    select_cell(cube, &coords, confidence)
}

/// Batch routing: the predicting cell for every item id, in input
/// order, sharded across workers under `par`. The per-item choice is
/// exactly [`select_cell_for_item`], so the thread count never changes
/// the routing.
pub fn select_cells_for_items<'c>(
    cube: &'c BellwetherCube,
    items: &[i64],
    confidence: f64,
    par: Parallelism,
) -> Vec<Option<&'c SubsetCell>> {
    let threads = par.threads_for(items.len());
    if threads <= 1 {
        return items
            .iter()
            .map(|&i| select_cell_for_item(cube, i, confidence))
            .collect();
    }
    std::thread::scope(|s| {
        let handles: Vec<_> = (0..threads)
            .map(|w| {
                let lo = items.len() * w / threads;
                let hi = items.len() * (w + 1) / threads;
                s.spawn(move || {
                    items[lo..hi]
                        .iter()
                        .map(|&i| select_cell_for_item(cube, i, confidence))
                        .collect::<Vec<_>>()
                })
            })
            .collect();
        handles
            .into_iter()
            .flat_map(|h| h.join().expect("routing worker panicked"))
            .collect()
    })
}

/// Convenience: the subset ids of the candidates (for explanations).
pub fn candidate_subsets(cube: &BellwetherCube, leaf_coords: &[u32]) -> Vec<RegionId> {
    candidate_cells(cube, leaf_coords)
        .into_iter()
        .map(|c| c.subset.clone())
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::cube::naive::build_naive_cube;
    use crate::cube::tests_support::cube_fixture;
    use crate::cube::CubeConfig;
    use crate::problem::{BellwetherConfig, ErrorMeasure};

    fn cube() -> BellwetherCube {
        let (src, region_space, _items, item_space, coords) = cube_fixture();
        build_naive_cube(
            &src,
            &region_space,
            &item_space,
            &coords,
            &BellwetherConfig::builder(1e9)
                .min_coverage(0.0)
                .min_examples(4)
                .error_measure(ErrorMeasure::TrainingSet)
                .build()
                .unwrap(),
            &CubeConfig {
                min_subset_size: 5,
            },
        )
        .unwrap()
    }

    #[test]
    fn candidates_are_ancestors() {
        let c = cube();
        // item in leaf ga (node 1): candidates = {[ga], [Any]}
        let cands = candidate_subsets(&c, &[1]);
        assert_eq!(cands.len(), 2);
        assert!(cands.contains(&RegionId(vec![1])));
        assert!(cands.contains(&RegionId(vec![0])));
    }

    #[test]
    fn selection_prefers_precise_subset() {
        let c = cube();
        // ga's model is near-perfect; Any's is poor — ga must win.
        let cell = select_cell(&c, &[1], 0.95).unwrap();
        assert_eq!(cell.subset, RegionId(vec![1]));
        assert_eq!(cell.region_label, "[ra]");
        let cell_b = select_cell_for_item(&c, 20, 0.95).unwrap(); // item 20 ∈ gb
        assert_eq!(cell_b.subset, RegionId(vec![2]));
    }

    #[test]
    fn unknown_item_yields_none() {
        let c = cube();
        assert!(select_cell_for_item(&c, 9999, 0.95).is_none());
    }

    #[test]
    fn batch_routing_matches_single_item_routing() {
        let c = cube();
        let mut items: Vec<i64> = c.item_coords.keys().copied().collect();
        items.sort_unstable();
        items.push(9999); // unknown item routes to None
        let seq = select_cells_for_items(&c, &items, 0.95, Parallelism::sequential());
        let par = select_cells_for_items(&c, &items, 0.95, Parallelism::fixed(4));
        assert_eq!(seq.len(), items.len());
        for ((a, b), &i) in seq.iter().zip(&par).zip(&items) {
            let want = select_cell_for_item(&c, i, 0.95);
            assert_eq!(a.map(|x| &x.subset), want.map(|x| &x.subset));
            assert_eq!(b.map(|x| &x.subset), want.map(|x| &x.subset));
        }
    }

    #[test]
    fn falls_back_to_coarser_subsets() {
        let mut c = cube();
        // Remove the [ga] cell: items in ga should fall back to [Any].
        c.cells.remove(&RegionId(vec![1]));
        let cell = select_cell(&c, &[1], 0.95).unwrap();
        assert_eq!(cell.subset, RegionId(vec![0]));
    }
}
