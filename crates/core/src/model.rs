//! Serializable, versioned bellwether model snapshots: everything a
//! long-lived prediction server needs, detached from the training
//! pipeline that produced it.
//!
//! A [`BellwetherModel`] carries the fitted predictors of any subset of
//! the three item-centric methods — the basic bellwether (one region +
//! model), a [`BellwetherTree`] and a [`BellwetherCube`] with its §6
//! confidence level — plus the item table (routing features) and the
//! feature data of every region any predictor can choose, so prediction
//! needs **no** [`TrainingSource`]. Predictions are bit-identical to the
//! in-memory path in [`crate::predict`]: the same model selection
//! (`choose_model`), the same stored-features-else-NULL convention, the
//! same `f64` arithmetic.
//!
//! On disk a model is a `BWSN` snapshot (see
//! [`bellwether_storage::snapshot`]): versioned sections with CRC-32
//! trailers, written with the atomic temp+fsync+rename discipline. All
//! maps are serialized in sorted key order, so the same model always
//! produces the same bytes. [`BellwetherModel::load`] returns an
//! immutable `Arc<BellwetherModel>` ready to share across server
//! workers.

use crate::cube::predict::select_cell;
use crate::cube::{BellwetherCube, SubsetCell};
use crate::error::{BellwetherError, Result};
use crate::items::{CategoricalAttr, ItemTable, NumericAttr};
use crate::report::BellwetherReport;
use crate::tree::{BellwetherTree, Node, NodeInfo, SplitCriterion};
use bellwether_cube::{Dimension, Hierarchy, RegionId, RegionSpace};
use bellwether_linreg::{ErrorEstimate, LinearModel};
use bellwether_storage::{RegionBlock, SnapshotFile, SnapshotWriter, TrainingSource};
use std::collections::{BTreeMap, HashMap};
use std::path::Path;
use std::sync::Arc;

/// Model payload version inside the snapshot container. Bump when the
/// section encodings change; old versions must keep decoding.
pub const MODEL_VERSION: u32 = 1;

// Section kinds inside the BWSN container.
const SEC_HEADER: u32 = 1;
const SEC_ITEMS: u32 = 2;
const SEC_BASIC: u32 = 3;
const SEC_TREE: u32 = 4;
const SEC_CUBE: u32 = 5;
const SEC_BLOCKS: u32 = 6;

/// Which trained predictor a model invocation should use.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum MethodKind {
    /// The single bellwether region from basic search.
    Basic,
    /// Bellwether-tree routing by item features.
    Tree,
    /// Bellwether-cube cell selection by item coordinates.
    Cube,
}

impl MethodKind {
    /// Short display name (`basic` / `tree` / `cube`).
    pub fn name(&self) -> &'static str {
        match self {
            MethodKind::Basic => "basic",
            MethodKind::Tree => "tree",
            MethodKind::Cube => "cube",
        }
    }

    /// Parse a display name back to the kind.
    pub fn parse(s: &str) -> Option<MethodKind> {
        match s {
            "basic" => Some(MethodKind::Basic),
            "tree" => Some(MethodKind::Tree),
            "cube" => Some(MethodKind::Cube),
            _ => None,
        }
    }
}

/// An immutable, self-contained trained model: predictors + item table +
/// the referenced regions' feature data.
#[derive(Debug)]
pub struct BellwetherModel {
    feature_arity: usize,
    items: ItemTable,
    basic: Option<BellwetherReport>,
    tree: Option<BellwetherTree>,
    cube: Option<(BellwetherCube, f64)>,
    /// Feature data of every region a predictor can choose, by source
    /// scan index. BTreeMap so serialization order is deterministic.
    blocks: BTreeMap<usize, RegionBlock>,
    /// Per-block item-id → row lookup, built at construction (never
    /// serialized) so predictions don't scan blocks linearly.
    row_index: HashMap<usize, HashMap<i64, usize>>,
}

/// Assembles a [`BellwetherModel`] from builder outputs, reading the
/// referenced regions' feature data out of the training source.
pub struct ModelBuilder<'s> {
    source: &'s dyn TrainingSource,
    items: ItemTable,
    basic: Option<BellwetherReport>,
    tree: Option<BellwetherTree>,
    cube: Option<(BellwetherCube, f64)>,
}

impl<'s> ModelBuilder<'s> {
    /// Start a model over `source`'s regions with the given item table.
    pub fn new(source: &'s dyn TrainingSource, items: ItemTable) -> Self {
        ModelBuilder {
            source,
            items,
            basic: None,
            tree: None,
            cube: None,
        }
    }

    /// Install the basic predictor: the unified report of a basic (or
    /// linear-criterion) search — see [`crate::basic::BasicSearchResult::report`].
    pub fn basic(mut self, report: BellwetherReport) -> Self {
        self.basic = Some(report);
        self
    }

    /// Install a bellwether tree.
    pub fn tree(mut self, tree: BellwetherTree) -> Self {
        self.tree = Some(tree);
        self
    }

    /// Install a bellwether cube with the §6 confidence level used for
    /// cell selection (e.g. `0.95`).
    pub fn cube(mut self, cube: BellwetherCube, confidence: f64) -> Self {
        self.cube = Some((cube, confidence));
        self
    }

    /// Read every referenced region block and produce the model.
    /// Fails if no predictor was installed.
    pub fn build(self) -> Result<BellwetherModel> {
        if self.basic.is_none() && self.tree.is_none() && self.cube.is_none() {
            return Err(BellwetherError::Config(
                "model needs at least one predictor (basic, tree or cube)".into(),
            ));
        }
        let mut wanted: Vec<usize> = Vec::new();
        if let Some(b) = &self.basic {
            wanted.push(b.region_index);
        }
        if let Some(t) = &self.tree {
            // Every node with a fitted bellwether, not just leaves:
            // routing stops early on unseen categorical values and
            // predicts from the interior node it stopped at.
            wanted.extend(
                t.nodes
                    .iter()
                    .filter_map(|n| n.info.as_ref().map(|i| i.region_index)),
            );
        }
        if let Some((c, _)) = &self.cube {
            wanted.extend(c.cells.values().map(|cell| cell.region_index));
        }
        let mut blocks = BTreeMap::new();
        for idx in wanted {
            if blocks.contains_key(&idx) {
                continue;
            }
            let block = self
                .source
                .read_region(idx)
                .map_err(|source| BellwetherError::RegionRead { index: idx, source })?;
            blocks.insert(idx, (*block).clone());
        }
        Ok(BellwetherModel::assemble(
            self.source.feature_arity(),
            self.items,
            self.basic,
            self.tree,
            self.cube,
            blocks,
        ))
    }
}

impl BellwetherModel {
    fn assemble(
        feature_arity: usize,
        items: ItemTable,
        basic: Option<BellwetherReport>,
        tree: Option<BellwetherTree>,
        cube: Option<(BellwetherCube, f64)>,
        blocks: BTreeMap<usize, RegionBlock>,
    ) -> Self {
        let row_index = blocks
            .iter()
            .map(|(&idx, block)| {
                let map = block
                    .item_ids
                    .iter()
                    .enumerate()
                    .map(|(row, &id)| (id, row))
                    .collect::<HashMap<_, _>>();
                (idx, map)
            })
            .collect();
        BellwetherModel {
            feature_arity,
            items,
            basic,
            tree,
            cube,
            blocks,
            row_index,
        }
    }

    /// Shared feature arity `p` of the stored regions.
    pub fn feature_arity(&self) -> usize {
        self.feature_arity
    }

    /// The item table the model routes and backfills from.
    pub fn items(&self) -> &ItemTable {
        &self.items
    }

    /// The basic predictor's report, if installed.
    pub fn basic_report(&self) -> Option<&BellwetherReport> {
        self.basic.as_ref()
    }

    /// The tree predictor, if installed.
    pub fn tree(&self) -> Option<&BellwetherTree> {
        self.tree.as_ref()
    }

    /// The cube predictor and its confidence level, if installed.
    pub fn cube(&self) -> Option<(&BellwetherCube, f64)> {
        self.cube.as_ref().map(|(c, conf)| (c, *conf))
    }

    /// The installed method kinds, in `basic, tree, cube` order.
    pub fn methods(&self) -> Vec<MethodKind> {
        let mut out = Vec::new();
        if self.basic.is_some() {
            out.push(MethodKind::Basic);
        }
        if self.tree.is_some() {
            out.push(MethodKind::Tree);
        }
        if self.cube.is_some() {
            out.push(MethodKind::Cube);
        }
        out
    }

    /// Resolve the (region, model) `method` uses for `id` — the
    /// snapshot-side mirror of `choose_model` in [`crate::predict`].
    fn choose(&self, method: MethodKind, id: i64) -> Option<(usize, &LinearModel)> {
        match method {
            MethodKind::Basic => {
                let b = self.basic.as_ref()?;
                Some((b.region_index, &b.model))
            }
            MethodKind::Tree => {
                let info = self.tree.as_ref()?.predicting_info(&self.items, id)?;
                Some((info.region_index, &info.model))
            }
            MethodKind::Cube => {
                let (cube, confidence) = self.cube.as_ref()?;
                let coords = cube.item_coords.get(&id)?;
                let cell = select_cell(cube, coords, *confidence)?;
                Some((cell.region_index, &cell.model))
            }
        }
    }

    /// The feature vector of `id` in region `idx`: the stored row when
    /// the item has data there, else intercept + static features +
    /// zero-filled regional features (the training-time NULL → 0
    /// policy). `None` when the item is entirely unknown.
    fn features(&self, idx: usize, id: i64) -> Option<Vec<f64>> {
        if let Some(&row) = self.row_index.get(&idx).and_then(|m| m.get(&id)) {
            return Some(self.blocks[&idx].row(row));
        }
        let statics = self.items.static_features(id)?;
        let mut x = Vec::with_capacity(self.feature_arity);
        x.push(1.0);
        x.extend_from_slice(&statics);
        x.resize(self.feature_arity, 0.0);
        Some(x)
    }

    /// Predict item `id`'s target with `method`. `None` when the method
    /// is not installed, the item cannot be routed, or the item is
    /// unknown to the item table.
    pub fn predict(&self, method: MethodKind, id: i64) -> Option<f64> {
        let (region_index, model) = self.choose(method, id)?;
        let x = self.features(region_index, id)?;
        Some(model.predict(&x))
    }

    /// Predict a batch of items; one slot per input id.
    pub fn predict_batch(&self, method: MethodKind, ids: &[i64]) -> Vec<Option<f64>> {
        ids.iter().map(|&id| self.predict(method, id)).collect()
    }

    /// Write the model as a `BWSN` snapshot at `path` (atomic: readers
    /// see the old file or the complete new one, never a mix).
    pub fn save(&self, path: &Path) -> Result<()> {
        let mut w = SnapshotWriter::create(path)?;
        let mut header = Vec::new();
        header.put_u32(MODEL_VERSION);
        header.put_u64(self.feature_arity as u64);
        w.write_section(SEC_HEADER, &header)?;
        w.write_section(SEC_ITEMS, &enc_items(&self.items))?;
        if let Some(b) = &self.basic {
            w.write_section(SEC_BASIC, &enc_report(b))?;
        }
        if let Some(t) = &self.tree {
            w.write_section(SEC_TREE, &enc_tree(t))?;
        }
        if let Some((c, conf)) = &self.cube {
            let mut buf = Vec::new();
            buf.put_f64(*conf);
            enc_cube_into(&mut buf, c);
            w.write_section(SEC_CUBE, &buf)?;
        }
        w.write_section(SEC_BLOCKS, &enc_blocks(&self.blocks))?;
        w.finish()?;
        Ok(())
    }

    /// Load a model snapshot into an immutable shared handle. Corrupt
    /// files surface as structured
    /// [`CorruptBlock`](bellwether_storage::CorruptBlock)-carrying IO
    /// errors; truncated or malformed payloads as decode errors. Never
    /// panics on bad bytes.
    pub fn load(path: &Path) -> Result<Arc<BellwetherModel>> {
        let snap = SnapshotFile::read(path)?;
        Ok(Arc::new(Self::decode(&snap)?))
    }

    fn decode(snap: &SnapshotFile) -> Result<BellwetherModel> {
        let header = snap
            .section(SEC_HEADER)
            .ok_or_else(|| de("missing model header section"))?;
        let mut d = Dec::new(header);
        let version = d.u32()?;
        if version != MODEL_VERSION {
            return Err(de(&format!("unsupported model version {version}")));
        }
        let feature_arity = d.usize()?;

        let items_bytes = snap
            .section(SEC_ITEMS)
            .ok_or_else(|| de("missing item-table section"))?;
        let items = dec_items(&mut Dec::new(items_bytes))?;

        let basic = snap
            .section(SEC_BASIC)
            .map(|b| dec_report(&mut Dec::new(b)))
            .transpose()?;
        let tree = snap
            .section(SEC_TREE)
            .map(|b| dec_tree(&mut Dec::new(b)))
            .transpose()?;
        let cube = snap
            .section(SEC_CUBE)
            .map(|b| {
                let mut d = Dec::new(b);
                let conf = d.f64()?;
                let cube = dec_cube(&mut d)?;
                Ok::<_, BellwetherError>((cube, conf))
            })
            .transpose()?;

        let blocks_bytes = snap
            .section(SEC_BLOCKS)
            .ok_or_else(|| de("missing region-blocks section"))?;
        let blocks = dec_blocks(&mut Dec::new(blocks_bytes))?;

        if basic.is_none() && tree.is_none() && cube.is_none() {
            return Err(de("model snapshot holds no predictor"));
        }
        Ok(Self::assemble(
            feature_arity,
            items,
            basic,
            tree,
            cube,
            blocks,
        ))
    }
}

/// Decode-error constructor: malformed model payloads are IO
/// `InvalidData`, matching the storage crate's classification.
fn de(msg: &str) -> BellwetherError {
    BellwetherError::Io(std::io::Error::new(
        std::io::ErrorKind::InvalidData,
        format!("model snapshot: {msg}"),
    ))
}

// ---------------------------------------------------------------------
// Byte codec. Little-endian throughout; `f64` via to_bits, so values —
// including NaN payloads — round-trip exactly. Every decode is total.
// ---------------------------------------------------------------------

trait Put {
    fn put_u8(&mut self, v: u8);
    fn put_u32(&mut self, v: u32);
    fn put_u64(&mut self, v: u64);
    fn put_i64(&mut self, v: i64);
    fn put_f64(&mut self, v: f64);
    fn put_str(&mut self, s: &str);
}

impl Put for Vec<u8> {
    fn put_u8(&mut self, v: u8) {
        self.push(v);
    }
    fn put_u32(&mut self, v: u32) {
        self.extend_from_slice(&v.to_le_bytes());
    }
    fn put_u64(&mut self, v: u64) {
        self.extend_from_slice(&v.to_le_bytes());
    }
    fn put_i64(&mut self, v: i64) {
        self.extend_from_slice(&v.to_le_bytes());
    }
    fn put_f64(&mut self, v: f64) {
        self.extend_from_slice(&v.to_bits().to_le_bytes());
    }
    fn put_str(&mut self, s: &str) {
        self.put_u32(s.len() as u32);
        self.extend_from_slice(s.as_bytes());
    }
}

struct Dec<'a> {
    bytes: &'a [u8],
    at: usize,
}

impl<'a> Dec<'a> {
    fn new(bytes: &'a [u8]) -> Self {
        Dec { bytes, at: 0 }
    }

    fn take(&mut self, n: usize) -> Result<&'a [u8]> {
        let end = self
            .at
            .checked_add(n)
            .filter(|&e| e <= self.bytes.len())
            .ok_or_else(|| de("truncated payload"))?;
        let out = &self.bytes[self.at..end];
        self.at = end;
        Ok(out)
    }

    fn u8(&mut self) -> Result<u8> {
        Ok(self.take(1)?[0])
    }
    fn u32(&mut self) -> Result<u32> {
        Ok(u32::from_le_bytes(self.take(4)?.try_into().expect("4")))
    }
    fn u64(&mut self) -> Result<u64> {
        Ok(u64::from_le_bytes(self.take(8)?.try_into().expect("8")))
    }
    fn i64(&mut self) -> Result<i64> {
        Ok(i64::from_le_bytes(self.take(8)?.try_into().expect("8")))
    }
    fn f64(&mut self) -> Result<f64> {
        Ok(f64::from_bits(self.u64()?))
    }
    fn usize(&mut self) -> Result<usize> {
        usize::try_from(self.u64()?).map_err(|_| de("oversized count"))
    }

    /// A count that must be plausible against the remaining bytes, with
    /// `min_item_bytes` per element — garbage counts cannot trigger huge
    /// allocations.
    fn count(&mut self, min_item_bytes: usize) -> Result<usize> {
        let n = self.usize()?;
        let remaining = self.bytes.len() - self.at;
        if min_item_bytes > 0 && n > remaining / min_item_bytes {
            return Err(de("count exceeds payload"));
        }
        Ok(n)
    }

    fn string(&mut self) -> Result<String> {
        let len = self.u32()? as usize;
        let raw = self.take(len)?;
        String::from_utf8(raw.to_vec()).map_err(|_| de("invalid utf-8"))
    }

    fn f64_vec(&mut self) -> Result<Vec<f64>> {
        let n = self.count(8)?;
        (0..n).map(|_| self.f64()).collect()
    }

    fn u32_vec(&mut self) -> Result<Vec<u32>> {
        let n = self.count(4)?;
        (0..n).map(|_| self.u32()).collect()
    }

    fn i64_vec(&mut self) -> Result<Vec<i64>> {
        let n = self.count(8)?;
        (0..n).map(|_| self.i64()).collect()
    }

    fn usize_vec(&mut self) -> Result<Vec<usize>> {
        let n = self.count(8)?;
        (0..n).map(|_| self.usize()).collect()
    }

    fn done(&self) -> Result<()> {
        if self.at != self.bytes.len() {
            return Err(de("trailing bytes"));
        }
        Ok(())
    }
}

fn enc_f64_vec(buf: &mut Vec<u8>, v: &[f64]) {
    buf.put_u64(v.len() as u64);
    for &x in v {
        buf.put_f64(x);
    }
}

fn enc_u32_vec(buf: &mut Vec<u8>, v: &[u32]) {
    buf.put_u64(v.len() as u64);
    for &x in v {
        buf.put_u32(x);
    }
}

fn enc_i64_vec(buf: &mut Vec<u8>, v: &[i64]) {
    buf.put_u64(v.len() as u64);
    for &x in v {
        buf.put_i64(x);
    }
}

fn enc_usize_vec(buf: &mut Vec<u8>, v: &[usize]) {
    buf.put_u64(v.len() as u64);
    for &x in v {
        buf.put_u64(x as u64);
    }
}

// ---- item table ----

fn enc_items(items: &ItemTable) -> Vec<u8> {
    let mut buf = Vec::new();
    enc_i64_vec(&mut buf, items.ids());
    buf.put_u64(items.numeric_attrs().len() as u64);
    for a in items.numeric_attrs() {
        buf.put_str(&a.name);
        enc_f64_vec(&mut buf, &a.values);
    }
    buf.put_u64(items.categorical_attrs().len() as u64);
    for a in items.categorical_attrs() {
        buf.put_str(&a.name);
        enc_u32_vec(&mut buf, &a.codes);
        buf.put_u64(a.labels.len() as u64);
        for l in &a.labels {
            buf.put_str(l);
        }
    }
    buf
}

fn dec_items(d: &mut Dec<'_>) -> Result<ItemTable> {
    let ids = d.i64_vec()?;
    let n_num = d.count(5)?;
    let mut numeric = Vec::with_capacity(n_num);
    for _ in 0..n_num {
        let name = d.string()?;
        let values = d.f64_vec()?;
        numeric.push(NumericAttr { name, values });
    }
    let n_cat = d.count(5)?;
    let mut categorical = Vec::with_capacity(n_cat);
    for _ in 0..n_cat {
        let name = d.string()?;
        let codes = d.u32_vec()?;
        let n_labels = d.count(4)?;
        let labels = (0..n_labels)
            .map(|_| d.string())
            .collect::<Result<Vec<_>>>()?;
        categorical.push(CategoricalAttr {
            name,
            codes,
            labels,
        });
    }
    d.done()?;
    ItemTable::from_parts(ids, numeric, categorical)
}

// ---- linreg primitives ----

fn enc_model_into(buf: &mut Vec<u8>, m: &LinearModel) {
    enc_f64_vec(buf, m.coefficients());
}

fn dec_model(d: &mut Dec<'_>) -> Result<LinearModel> {
    Ok(LinearModel::new(d.f64_vec()?))
}

fn enc_estimate_into(buf: &mut Vec<u8>, e: &ErrorEstimate) {
    buf.put_f64(e.value);
    buf.put_f64(e.std_err);
}

fn dec_estimate(d: &mut Dec<'_>) -> Result<ErrorEstimate> {
    Ok(ErrorEstimate {
        value: d.f64()?,
        std_err: d.f64()?,
    })
}

fn enc_region_into(buf: &mut Vec<u8>, r: &RegionId) {
    enc_u32_vec(buf, &r.0);
}

fn dec_region(d: &mut Dec<'_>) -> Result<RegionId> {
    Ok(RegionId(d.u32_vec()?))
}

// ---- unified report (basic predictor) ----

fn enc_report(r: &BellwetherReport) -> Vec<u8> {
    let mut buf = Vec::new();
    enc_region_into(&mut buf, &r.region);
    buf.put_str(&r.label);
    buf.put_u64(r.region_index as u64);
    buf.put_f64(r.score);
    buf.put_f64(r.error);
    match &r.error_bounds {
        Some(e) => {
            buf.put_u8(1);
            enc_estimate_into(&mut buf, e);
        }
        None => buf.put_u8(0),
    }
    enc_model_into(&mut buf, &r.model);
    buf.put_u64(r.n_examples as u64);
    enc_usize_vec(&mut buf, &r.skipped_regions);
    buf
}

fn dec_report(d: &mut Dec<'_>) -> Result<BellwetherReport> {
    let region = dec_region(d)?;
    let label = d.string()?;
    let region_index = d.usize()?;
    let score = d.f64()?;
    let error = d.f64()?;
    let error_bounds = match d.u8()? {
        0 => None,
        1 => Some(dec_estimate(d)?),
        _ => return Err(de("bad option tag")),
    };
    let model = dec_model(d)?;
    let n_examples = d.usize()?;
    let skipped_regions = d.usize_vec()?;
    d.done()?;
    Ok(BellwetherReport {
        region,
        label,
        region_index,
        score,
        error,
        error_bounds,
        model,
        n_examples,
        skipped_regions,
    })
}

// ---- tree ----

fn enc_node_info_into(buf: &mut Vec<u8>, i: &NodeInfo) {
    buf.put_u64(i.region_index as u64);
    enc_region_into(buf, &i.region);
    buf.put_str(&i.label);
    buf.put_f64(i.error);
    enc_model_into(buf, &i.model);
    buf.put_u64(i.n_examples as u64);
}

fn dec_node_info(d: &mut Dec<'_>) -> Result<NodeInfo> {
    Ok(NodeInfo {
        region_index: d.usize()?,
        region: dec_region(d)?,
        label: d.string()?,
        error: d.f64()?,
        model: dec_model(d)?,
        n_examples: d.usize()?,
    })
}

fn enc_criterion_into(buf: &mut Vec<u8>, c: &SplitCriterion) {
    match c {
        SplitCriterion::Categorical {
            attr,
            code_children,
        } => {
            buf.put_u8(0);
            buf.put_u64(*attr as u64);
            let mut pairs: Vec<(u32, usize)> =
                code_children.iter().map(|(&k, &v)| (k, v)).collect();
            pairs.sort_unstable();
            buf.put_u64(pairs.len() as u64);
            for (code, child) in pairs {
                buf.put_u32(code);
                buf.put_u64(child as u64);
            }
        }
        SplitCriterion::Numeric { attr, threshold } => {
            buf.put_u8(1);
            buf.put_u64(*attr as u64);
            buf.put_f64(*threshold);
        }
    }
}

fn dec_criterion(d: &mut Dec<'_>) -> Result<SplitCriterion> {
    match d.u8()? {
        0 => {
            let attr = d.usize()?;
            let n = d.count(12)?;
            let mut code_children = HashMap::with_capacity(n);
            for _ in 0..n {
                let code = d.u32()?;
                let child = d.usize()?;
                code_children.insert(code, child);
            }
            Ok(SplitCriterion::Categorical {
                attr,
                code_children,
            })
        }
        1 => Ok(SplitCriterion::Numeric {
            attr: d.usize()?,
            threshold: d.f64()?,
        }),
        _ => Err(de("bad split-criterion tag")),
    }
}

fn enc_tree(t: &BellwetherTree) -> Vec<u8> {
    let mut buf = Vec::new();
    buf.put_u64(t.nodes.len() as u64);
    for node in &t.nodes {
        buf.put_u64(node.depth as u64);
        enc_usize_vec(&mut buf, &node.item_rows);
        match &node.info {
            Some(i) => {
                buf.put_u8(1);
                enc_node_info_into(&mut buf, i);
            }
            None => buf.put_u8(0),
        }
        match &node.split {
            Some((criterion, children)) => {
                buf.put_u8(1);
                enc_criterion_into(&mut buf, criterion);
                enc_usize_vec(&mut buf, children);
            }
            None => buf.put_u8(0),
        }
    }
    enc_usize_vec(&mut buf, &t.skipped_regions);
    buf
}

fn dec_tree(d: &mut Dec<'_>) -> Result<BellwetherTree> {
    let n = d.count(10)?;
    let mut nodes = Vec::with_capacity(n);
    for _ in 0..n {
        let depth = d.usize()?;
        let item_rows = d.usize_vec()?;
        let info = match d.u8()? {
            0 => None,
            1 => Some(dec_node_info(d)?),
            _ => return Err(de("bad option tag")),
        };
        let split = match d.u8()? {
            0 => None,
            1 => {
                let criterion = dec_criterion(d)?;
                let children = d.usize_vec()?;
                Some((criterion, children))
            }
            _ => return Err(de("bad option tag")),
        };
        nodes.push(Node {
            depth,
            item_rows,
            info,
            split,
        });
    }
    let skipped_regions = d.usize_vec()?;
    d.done()?;
    if nodes.is_empty() {
        return Err(de("tree has no nodes"));
    }
    // Routing walks split child ids; validate them so a malformed
    // payload cannot panic prediction later.
    for node in &nodes {
        if let Some((_, children)) = &node.split {
            if children.iter().any(|&c| c >= nodes.len()) {
                return Err(de("tree child id out of range"));
            }
        }
    }
    Ok(BellwetherTree {
        nodes,
        skipped_regions,
    })
}

// ---- dimension / space / cube ----

fn enc_hierarchy_into(buf: &mut Vec<u8>, h: &Hierarchy) {
    buf.put_str(h.name());
    let n = h.num_nodes();
    buf.put_u64(n as u64);
    for id in 0..n {
        let node = h.node(id);
        // Root's parent encodes as its own id (0); ids are assigned
        // parent-before-child, so replay reconstructs them exactly.
        buf.put_u32(node.parent.unwrap_or(id));
        buf.put_str(&node.label);
    }
}

fn dec_hierarchy(d: &mut Dec<'_>) -> Result<Hierarchy> {
    let name = d.string()?;
    let n = d.count(8)?;
    if n == 0 {
        return Err(de("hierarchy has no nodes"));
    }
    let root_parent = d.u32()?;
    if root_parent != 0 {
        return Err(de("hierarchy root must be node 0"));
    }
    let root_label = d.string()?;
    let mut h = Hierarchy::new(name, root_label);
    for id in 1..n {
        let parent = d.u32()?;
        let label = d.string()?;
        if parent as usize >= id || h.id_of(&label).is_some() {
            return Err(de("malformed hierarchy node"));
        }
        let got = h.add_child(parent, label);
        debug_assert_eq!(got as usize, id);
    }
    Ok(h)
}

fn enc_space_into(buf: &mut Vec<u8>, s: &RegionSpace) {
    buf.put_u64(s.dims().len() as u64);
    for dim in s.dims() {
        match dim {
            Dimension::Interval { name, max_t } => {
                buf.put_u8(0);
                buf.put_str(name);
                buf.put_u32(*max_t);
            }
            Dimension::Hierarchy(h) => {
                buf.put_u8(1);
                enc_hierarchy_into(buf, h);
            }
        }
    }
}

fn dec_space(d: &mut Dec<'_>) -> Result<RegionSpace> {
    let n = d.count(2)?;
    if n == 0 {
        return Err(de("region space has no dimensions"));
    }
    let mut dims = Vec::with_capacity(n);
    for _ in 0..n {
        dims.push(match d.u8()? {
            0 => {
                let name = d.string()?;
                let max_t = d.u32()?;
                if max_t == 0 {
                    return Err(de("interval dimension with no values"));
                }
                Dimension::Interval { name, max_t }
            }
            1 => Dimension::Hierarchy(dec_hierarchy(d)?),
            _ => return Err(de("bad dimension tag")),
        });
    }
    Ok(RegionSpace::new(dims))
}

fn enc_cell_into(buf: &mut Vec<u8>, c: &SubsetCell) {
    enc_region_into(buf, &c.subset);
    buf.put_str(&c.label);
    buf.put_u64(c.size as u64);
    buf.put_u64(c.region_index as u64);
    enc_region_into(buf, &c.region);
    buf.put_str(&c.region_label);
    enc_estimate_into(buf, &c.error);
    enc_model_into(buf, &c.model);
    buf.put_u64(c.n_examples as u64);
}

fn dec_cell(d: &mut Dec<'_>) -> Result<SubsetCell> {
    Ok(SubsetCell {
        subset: dec_region(d)?,
        label: d.string()?,
        size: d.usize()?,
        region_index: d.usize()?,
        region: dec_region(d)?,
        region_label: d.string()?,
        error: dec_estimate(d)?,
        model: dec_model(d)?,
        n_examples: d.usize()?,
    })
}

fn enc_cube_into(buf: &mut Vec<u8>, c: &BellwetherCube) {
    enc_space_into(buf, &c.item_space);
    let mut coords: Vec<(&i64, &Vec<u32>)> = c.item_coords.iter().collect();
    coords.sort_by_key(|(id, _)| **id);
    buf.put_u64(coords.len() as u64);
    for (id, cs) in coords {
        buf.put_i64(*id);
        enc_u32_vec(buf, cs);
    }
    let mut cells: Vec<(&RegionId, &SubsetCell)> = c.cells.iter().collect();
    cells.sort_by_key(|(subset, _)| (*subset).clone());
    buf.put_u64(cells.len() as u64);
    for (subset, cell) in cells {
        enc_region_into(buf, subset);
        enc_cell_into(buf, cell);
    }
    enc_usize_vec(buf, &c.skipped_regions);
}

fn dec_cube(d: &mut Dec<'_>) -> Result<BellwetherCube> {
    let item_space = dec_space(d)?;
    let n_coords = d.count(16)?;
    let mut item_coords = HashMap::with_capacity(n_coords);
    for _ in 0..n_coords {
        let id = d.i64()?;
        let coords = d.u32_vec()?;
        item_coords.insert(id, coords);
    }
    let n_cells = d.count(8)?;
    let mut cells = HashMap::with_capacity(n_cells);
    for _ in 0..n_cells {
        let subset = dec_region(d)?;
        let cell = dec_cell(d)?;
        cells.insert(subset, cell);
    }
    let skipped_regions = d.usize_vec()?;
    d.done()?;
    Ok(BellwetherCube {
        item_space,
        item_coords,
        cells,
        skipped_regions,
    })
}

// ---- region blocks ----

fn enc_blocks(blocks: &BTreeMap<usize, RegionBlock>) -> Vec<u8> {
    let mut buf = Vec::new();
    buf.put_u64(blocks.len() as u64);
    for (&idx, block) in blocks {
        buf.put_u64(idx as u64);
        enc_u32_vec(&mut buf, &block.region);
        buf.put_u32(block.p);
        enc_i64_vec(&mut buf, &block.item_ids);
        enc_f64_vec(&mut buf, &block.targets);
        buf.put_u64(block.cols().len() as u64);
        for col in block.cols() {
            enc_f64_vec(&mut buf, col);
        }
    }
    buf
}

fn dec_blocks(d: &mut Dec<'_>) -> Result<BTreeMap<usize, RegionBlock>> {
    let n = d.count(8)?;
    let mut out = BTreeMap::new();
    for _ in 0..n {
        let idx = d.usize()?;
        let region = d.u32_vec()?;
        let p = d.u32()?;
        let item_ids = d.i64_vec()?;
        let targets = d.f64_vec()?;
        let n_cols = d.count(8)?;
        let mut cols = Vec::with_capacity(n_cols);
        for _ in 0..n_cols {
            cols.push(d.f64_vec()?);
        }
        // Validate what RegionBlock::from_columns would assert, so
        // malformed payloads error instead of panicking.
        if targets.len() != item_ids.len() {
            return Err(de("block targets/ids length mismatch"));
        }
        if cols.len() == p as usize {
            if cols.iter().any(|c| c.len() != item_ids.len()) {
                return Err(de("ragged block feature lane"));
            }
        } else if !(cols.is_empty() && item_ids.is_empty()) {
            return Err(de("block lane count mismatch"));
        }
        out.insert(
            idx,
            RegionBlock::from_columns(region, p, item_ids, cols, targets),
        );
    }
    d.done()?;
    Ok(out)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::basic::basic_search;
    use crate::cube::single_scan::build_single_scan_cube;
    use crate::cube::tests_support::cube_fixture;
    use crate::cube::CubeConfig;
    use crate::problem::{BellwetherConfig, ErrorMeasure};
    use crate::tree::rainforest::build_rainforest;
    use crate::tree::TreeConfig;
    use bellwether_cube::UniformCellCost;
    use std::path::PathBuf;

    fn problem() -> BellwetherConfig {
        BellwetherConfig::builder(1e9)
            .min_coverage(0.0)
            .min_examples(4)
            .error_measure(ErrorMeasure::TrainingSet)
            .build()
            .unwrap()
    }

    fn tmp(name: &str) -> PathBuf {
        let dir = std::env::temp_dir().join("bw_model_test");
        std::fs::create_dir_all(&dir).unwrap();
        dir.join(name)
    }

    fn full_model() -> (BellwetherModel, Vec<i64>) {
        let (src, region_space, items, item_space, coords) = cube_fixture();
        let ids = items.ids().to_vec();
        let problem = problem();
        let cost = UniformCellCost { rate: 1.0 };
        let search = basic_search(&src, &region_space, &cost, &problem, items.len()).unwrap();
        let tree = build_rainforest(
            &src,
            &region_space,
            &items,
            None,
            &problem,
            &TreeConfig { min_node_items: 8, ..TreeConfig::default() },
        )
        .unwrap();
        let cube = build_single_scan_cube(
            &src,
            &region_space,
            &item_space,
            &coords,
            &problem,
            &CubeConfig { min_subset_size: 4 },
        )
        .unwrap();
        let model = ModelBuilder::new(&src, items)
            .basic(search.report().unwrap())
            .tree(tree)
            .cube(cube, 0.95)
            .build()
            .unwrap();
        (model, ids)
    }

    #[test]
    fn round_trip_is_bit_identical_for_all_methods() {
        let (model, ids) = full_model();
        let path = tmp("full.bwsn");
        model.save(&path).unwrap();
        let loaded = BellwetherModel::load(&path).unwrap();
        assert_eq!(loaded.feature_arity(), model.feature_arity());
        assert_eq!(loaded.methods(), model.methods());
        for method in model.methods() {
            for &id in &ids {
                let a = model.predict(method, id);
                let b = loaded.predict(method, id);
                match (a, b) {
                    (Some(x), Some(y)) => assert_eq!(
                        x.to_bits(),
                        y.to_bits(),
                        "{} id {id}: {x} vs {y}",
                        method.name()
                    ),
                    (None, None) => {}
                    _ => panic!("{} id {id}: {a:?} vs {b:?}", method.name()),
                }
            }
            // Unknown items answer None on both sides.
            assert_eq!(model.predict(method, -999), None);
            assert_eq!(loaded.predict(method, -999), None);
        }
        std::fs::remove_file(&path).ok();
    }

    #[test]
    fn save_is_deterministic() {
        let (model, _) = full_model();
        let p1 = tmp("det1.bwsn");
        let p2 = tmp("det2.bwsn");
        model.save(&p1).unwrap();
        model.save(&p2).unwrap();
        assert_eq!(std::fs::read(&p1).unwrap(), std::fs::read(&p2).unwrap());
        std::fs::remove_file(&p1).ok();
        std::fs::remove_file(&p2).ok();
    }

    #[test]
    fn empty_builder_is_rejected() {
        let (src, _rs, items, _is, _c) = cube_fixture();
        assert!(ModelBuilder::new(&src, items).build().is_err());
    }

    #[test]
    fn predict_batch_matches_singles() {
        let (model, ids) = full_model();
        let batch = model.predict_batch(MethodKind::Cube, &ids);
        for (&id, slot) in ids.iter().zip(&batch) {
            assert_eq!(*slot, model.predict(MethodKind::Cube, id));
        }
    }

    #[test]
    fn method_kind_names_round_trip() {
        for k in [MethodKind::Basic, MethodKind::Tree, MethodKind::Cube] {
            assert_eq!(MethodKind::parse(k.name()), Some(k));
        }
        assert_eq!(MethodKind::parse("nope"), None);
    }

    #[test]
    fn truncated_model_payloads_error_not_panic() {
        let (model, _) = full_model();
        let path = tmp("trunc_model.bwsn");
        model.save(&path).unwrap();
        let bytes = std::fs::read(&path).unwrap();
        // Whole-file truncations are caught by the container; also strip
        // section payload bytes to hit the model decoder's total paths.
        for len in (0..bytes.len()).step_by(7) {
            let _ = SnapshotFile::decode(&bytes[..len]);
        }
        let snap = SnapshotFile::decode(&bytes).unwrap();
        for sec in &snap.sections {
            for cut in 0..sec.payload.len().min(64) {
                let mut d = Dec::new(&sec.payload[..cut]);
                // Exercise every decoder against the truncated bytes;
                // each must return an error, never panic.
                match sec.kind {
                    SEC_ITEMS => assert!(dec_items(&mut d).is_err()),
                    SEC_BASIC => assert!(dec_report(&mut d).is_err()),
                    SEC_TREE => assert!(dec_tree(&mut d).is_err()),
                    SEC_CUBE => {
                        let r = d.f64().and_then(|_| dec_cube(&mut d));
                        assert!(r.is_err());
                    }
                    SEC_BLOCKS => assert!(dec_blocks(&mut d).is_err()),
                    _ => {}
                }
            }
        }
        std::fs::remove_file(&path).ok();
    }
}
