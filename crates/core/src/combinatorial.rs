//! Combinatorial bellwether analysis (§3.4): candidates are *sets* of
//! regions (`c ⊆ R`), features are aggregated over the union of the
//! collection's cells, and the collection's cost is the sum of its
//! members' costs.
//!
//! The full `2^R` space is intractable, so this module implements the
//! natural greedy forward selection the paper's discussion invites: at
//! each step, add the affordable region whose inclusion lowers the
//! cross-region model error the most; stop when no addition improves or
//! nothing is affordable. The result generalises the basic bellwether —
//! with `max_regions = 1` it degenerates to the (budgeted) basic search
//! over single regions.

use crate::error::Result;
use crate::items::ItemTable;
use crate::problem::BellwetherConfig;
use bellwether_cube::{aggregate_filtered, CostModel, CubeInput, RegionId, RegionSpace};
use bellwether_linreg::{ErrorEstimate, RegressionData};
use std::collections::HashMap;

/// The selected collection and its quality.
#[derive(Debug, Clone)]
pub struct CombinatorialResult {
    /// Selected regions, in selection order.
    pub selected: Vec<RegionId>,
    /// Display labels of the selected regions.
    pub labels: Vec<String>,
    /// Total cost of the collection (sum of member costs).
    pub total_cost: f64,
    /// Error of the model over the union-aggregated features.
    pub error: ErrorEstimate,
    /// Error trace: the model error after each greedy addition.
    pub error_trace: Vec<f64>,
}

/// Training data over the union of a region collection.
fn union_training_data(
    space: &RegionSpace,
    cube_input: &CubeInput,
    items: &ItemTable,
    targets: &HashMap<i64, f64>,
    collection: &[&RegionId],
) -> RegressionData {
    let features = aggregate_filtered(cube_input, space.arity(), |cell| {
        let cell = RegionId(cell.to_vec());
        collection.iter().any(|r| space.contains(r, &cell))
    });
    let n_static = items.numeric_attrs().len();
    let p = 1 + n_static + cube_input.measures.len();
    let mut data = RegressionData::with_capacity(p, features.len());
    let mut ids: Vec<i64> = features.keys().copied().collect();
    ids.sort_unstable();
    let mut x = Vec::with_capacity(p);
    for id in ids {
        let (Some(&y), Some(statics)) = (targets.get(&id), items.static_features(id)) else {
            continue;
        };
        x.clear();
        x.push(1.0);
        x.extend_from_slice(&statics);
        x.extend(features[&id].iter().map(|v| v.unwrap_or(0.0)));
        data.push(&x, y);
    }
    data
}

/// Greedy forward selection of a region collection under the budget.
///
/// Returns `None` when not even a single affordable region yields a
/// model. `max_regions` bounds the collection size (and the runtime:
/// each round evaluates every remaining affordable region).
pub fn greedy_combinatorial_search(
    space: &RegionSpace,
    cube_input: &CubeInput,
    items: &ItemTable,
    targets: &HashMap<i64, f64>,
    cost_model: &dyn CostModel,
    config: &BellwetherConfig,
    max_regions: usize,
) -> Result<Option<CombinatorialResult>> {
    let all = space.all_regions();
    let costs: Vec<f64> = all.iter().map(|r| cost_model.cost(space, r)).collect();

    let mut selected: Vec<usize> = Vec::new();
    let mut spent = 0.0;
    let mut best_err: Option<f64> = None;
    let mut error_trace = Vec::new();
    let mut final_estimate: Option<ErrorEstimate> = None;

    while selected.len() < max_regions {
        let mut round_best: Option<(usize, ErrorEstimate)> = None;
        for (idx, region) in all.iter().enumerate() {
            if selected.contains(&idx) || spent + costs[idx] > config.budget {
                continue;
            }
            let mut trial: Vec<&RegionId> = selected.iter().map(|&i| &all[i]).collect();
            trial.push(region);
            let data = union_training_data(space, cube_input, items, targets, &trial);
            if data.n() < config.min_examples {
                continue;
            }
            let Some(est) = config.error_measure.estimate(&data) else {
                continue;
            };
            if round_best
                .as_ref()
                .is_none_or(|(_, b)| est.value < b.value)
            {
                round_best = Some((idx, est));
            }
        }
        let Some((idx, est)) = round_best else { break };
        // Stop when the addition no longer strictly improves.
        if best_err.is_some_and(|b| est.value >= b) {
            break;
        }
        spent += costs[idx];
        selected.push(idx);
        best_err = Some(est.value);
        error_trace.push(est.value);
        final_estimate = Some(est);
    }

    let Some(error) = final_estimate else {
        return Ok(None);
    };
    let selected_ids: Vec<RegionId> = selected.iter().map(|&i| all[i].clone()).collect();
    let labels = selected_ids.iter().map(|r| space.label(r)).collect();
    Ok(Some(CombinatorialResult {
        selected: selected_ids,
        labels,
        total_cost: spent,
        error,
        error_trace,
    }))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::problem::ErrorMeasure;
    use bellwether_cube::{Dimension, Hierarchy, Measure, UniformCellCost};
    use bellwether_table::ops::AggFunc;
    use bellwether_table::{Column, DataType, Schema, Table};

    /// Target = profit in A + profit in B; no single leaf suffices, but
    /// the pair {A, B} is perfect. C is pure noise.
    fn fixture() -> (
        RegionSpace,
        CubeInput,
        ItemTable,
        HashMap<i64, f64>,
    ) {
        let space = RegionSpace::new(vec![Dimension::Hierarchy(Hierarchy::flat(
            "L",
            "All",
            &["A", "B", "C"],
        ))]);
        let n = 30i64;
        let mut item_ids = Vec::new();
        let mut coords = Vec::new();
        let mut profits = Vec::new();
        let mut targets = HashMap::new();
        for i in 0..n {
            let pa = (3 * i + 1) as f64;
            let pb = ((i * i) % 17) as f64;
            let pc = ((i * 7) % 5) as f64;
            for (leaf, v) in [(1u32, pa), (2, pb), (3, pc)] {
                item_ids.push(i);
                coords.push(leaf);
                profits.push(Some(v));
            }
            targets.insert(i, pa + pb);
        }
        let input = CubeInput {
            item_ids,
            coords,
            measures: vec![Measure::Numeric {
                name: "profit".into(),
                func: AggFunc::Sum,
                values: profits,
            }],
        };
        let table = Table::new(
            Schema::from_pairs(&[("id", DataType::Int)]).unwrap(),
            vec![Column::from_ints((0..n).collect())],
        )
        .unwrap();
        let items = ItemTable::from_table(&table, "id", &[], &[]).unwrap();
        (space, input, items, targets)
    }

    fn config(budget: f64) -> BellwetherConfig {
        BellwetherConfig::builder(budget)
            .min_examples(5)
            .error_measure(ErrorMeasure::TrainingSet)
            .build()
            .unwrap()
    }

    #[test]
    fn pair_beats_any_single_region() {
        let (space, input, items, targets) = fixture();
        let cost = UniformCellCost { rate: 1.0 };
        // Budget 2 affords two leaves but not [All] (cost 3).
        let result = greedy_combinatorial_search(
            &space,
            &input,
            &items,
            &targets,
            &cost,
            &config(2.0),
            4,
        )
        .unwrap()
        .unwrap();
        assert_eq!(result.selected.len(), 2);
        assert!(result.labels.contains(&"[A]".to_string()));
        assert!(result.labels.contains(&"[B]".to_string()));
        assert!(result.error.value < 1e-6, "union of A,B is exact");
        assert_eq!(result.total_cost, 2.0);
        // The trace shows the improvement from 1 to 2 regions.
        assert_eq!(result.error_trace.len(), 2);
        assert!(result.error_trace[0] > result.error_trace[1]);
    }

    #[test]
    fn max_regions_one_is_single_region_search() {
        let (space, input, items, targets) = fixture();
        let cost = UniformCellCost { rate: 1.0 };
        let result = greedy_combinatorial_search(
            &space,
            &input,
            &items,
            &targets,
            &cost,
            &config(10.0),
            1,
        )
        .unwrap()
        .unwrap();
        assert_eq!(result.selected.len(), 1);
    }

    #[test]
    fn zero_budget_returns_none() {
        let (space, input, items, targets) = fixture();
        let cost = UniformCellCost { rate: 1.0 };
        // The builder rejects a non-positive budget, which is exactly
        // what this test exercises — set the field directly.
        let mut cfg = config(1.0);
        cfg.budget = 0.0;
        let result = greedy_combinatorial_search(
            &space,
            &input,
            &items,
            &targets,
            &cost,
            &cfg,
            4,
        )
        .unwrap();
        assert!(result.is_none());
    }

    #[test]
    fn greedy_stops_when_no_improvement() {
        // With a generous budget the greedy may start from [All] (whose
        // single-region error beats any leaf) and then find that no
        // addition changes the union — it must terminate early rather
        // than padding the collection, and the trace must be strictly
        // improving.
        let (space, input, items, targets) = fixture();
        let cost = UniformCellCost { rate: 1.0 };
        let result = greedy_combinatorial_search(
            &space,
            &input,
            &items,
            &targets,
            &cost,
            &config(100.0),
            5,
        )
        .unwrap()
        .unwrap();
        assert!(result.selected.len() < 5, "greedy must stop early");
        for w in result.error_trace.windows(2) {
            assert!(w[1] < w[0], "trace must strictly improve: {:?}", result.error_trace);
        }
        assert_eq!(result.error.value, *result.error_trace.last().unwrap());
    }
}
