//! Per-worker evaluation scratch for region scans.
//!
//! Every builder's hot loop does the same thing per region block:
//! gather some rows into a dataset, estimate a model's error, sometimes
//! fit the model. Doing that with fresh allocations per region is what
//! dominated profile before the algebraic engine; these scratch types
//! carry every buffer the loop needs — the dataset, per-child datasets
//! for partition scoring, and the [`EvalScratch`] of the algebraic
//! error engine — so a warm worker evaluates regions with **zero heap
//! allocations**. Both types implement [`ScanScratch`], so they ride
//! along scan accumulators via [`crate::scan::WithScratch`] and their
//! work counters merge deterministically across worker chunks.

use crate::problem::BellwetherConfig;
use crate::scan::ScanScratch;
use crate::tree::partition::PartitionSpec;
use bellwether_linreg::{ErrorEstimate, EvalScratch, EvalStats, LinearModel, RegressionData};
use bellwether_obs::{names, Recorder};
use bellwether_storage::RegionBlock;
use std::collections::HashSet;

/// Reusable per-worker scratch for single-subset region evaluation: a
/// dataset buffer, the gathered item ids (for callers that replay rows,
/// like the RF tree), and the algebraic error engine.
#[derive(Debug)]
pub struct RegionEvalScratch {
    /// Reusable dataset buffer holding the most recent gather.
    pub data: RegressionData,
    /// Item ids of the gathered rows, parallel to `data`.
    pub ids: Vec<i64>,
    /// Row-index workspace for filtered gathers.
    rows: Vec<usize>,
    /// The algebraic error engine (owns the work counters).
    pub eval: EvalScratch,
}

impl Default for RegionEvalScratch {
    fn default() -> Self {
        RegionEvalScratch::new()
    }
}

impl RegionEvalScratch {
    /// Fresh scratch; buffers grow on first use and are then reused.
    pub fn new() -> Self {
        RegionEvalScratch {
            data: RegressionData::new(0),
            ids: Vec::new(),
            rows: Vec::new(),
            eval: EvalScratch::new(),
        }
    }

    /// Gather a block's rows — all of them, or only those whose item id
    /// is in `keep` — into the reusable dataset buffer as lane-by-lane
    /// columnar copies. Allocation-free once the buffers have seen a
    /// block of this size.
    pub fn gather(&mut self, block: &RegionBlock, keep: Option<&HashSet<i64>>) {
        // The rows are about to change — a shape collision must not let
        // the engine serve the previous region's cached totals.
        self.eval.forget_data();
        self.data.reset(block.p as usize);
        let mut grew = self.data.ensure_capacity(block.n());
        grew |= self.ids.capacity() < block.n();
        self.ids.clear();
        self.ids.reserve(block.n());
        match keep {
            None => {
                self.ids.extend_from_slice(&block.item_ids);
                self.data.extend_from_cols(block.cols(), &block.targets);
            }
            Some(k) => {
                grew |= self.rows.capacity() < block.n();
                self.rows.clear();
                self.rows.reserve(block.n());
                for (i, &id) in block.item_ids.iter().enumerate() {
                    if k.contains(&id) {
                        self.rows.push(i);
                        self.ids.push(id);
                    }
                }
                self.data
                    .extend_from_cols_gather(block.cols(), &block.targets, &self.rows);
            }
        }
        if grew {
            self.eval.stats.scratch_grows += 1;
        } else {
            self.eval.stats.scratch_reuses += 1;
        }
    }

    /// Error estimate over the currently gathered rows under `config`'s
    /// measure (no `min_examples` gate — callers apply their own).
    pub fn estimate(&mut self, config: &BellwetherConfig) -> Option<ErrorEstimate> {
        config.error_measure.estimate_with(&self.data, &mut self.eval)
    }

    /// Fit a WLS model over the currently gathered rows; coefficients
    /// are bit-identical to [`bellwether_linreg::fit_wls`]. The only
    /// allocation is the returned coefficient vector.
    pub fn fit_model(&mut self) -> Option<LinearModel> {
        self.eval.fit_model_cached(&self.data)
    }
}

impl ScanScratch for RegionEvalScratch {
    fn absorb(&mut self, later: Self) {
        self.eval.stats.absorb(&later.eval.stats);
    }
}

/// Reusable per-worker scratch for partition scoring: one dataset
/// buffer per child slot plus the error engine, so
/// [`PartitionSpec`]-routed evaluations allocate nothing when warm.
#[derive(Debug, Default)]
pub struct PartitionScratch {
    datasets: Vec<RegressionData>,
    /// Per-child row-index lists, the routing pass's output.
    rowsets: Vec<Vec<usize>>,
    errs: Vec<Option<f64>>,
    /// The algebraic error engine (owns the work counters).
    pub eval: EvalScratch,
}

impl PartitionScratch {
    /// Fresh scratch; buffers grow on first use and are then reused.
    pub fn new() -> Self {
        PartitionScratch::default()
    }

    /// Each child's model error for one region block — the reusable
    /// form of [`PartitionSpec::errors`]. The returned slice has one
    /// entry per child (`None` = too few examples / unfittable).
    pub fn errors(
        &mut self,
        spec: &PartitionSpec,
        block: &RegionBlock,
        config: &BellwetherConfig,
    ) -> &[Option<f64>] {
        self.errors_cols(
            spec,
            block.p as usize,
            block.cols(),
            &block.item_ids,
            &block.targets,
            config,
        )
    }

    /// As [`PartitionScratch::errors`], over bare feature columns (the
    /// RF tree pre-gathers each node's rows once per block and feeds
    /// only those lanes to its candidates). Two passes: route each row's
    /// id to its child slot, then gather each child's rows lane by lane.
    pub fn errors_cols(
        &mut self,
        spec: &PartitionSpec,
        p: usize,
        cols: &[Vec<f64>],
        ids: &[i64],
        ys: &[f64],
        config: &BellwetherConfig,
    ) -> &[Option<f64>] {
        let k = spec.n_children();
        let grew = self.datasets.len() < k || self.rowsets.len() < k;
        while self.datasets.len() < k {
            self.datasets.push(RegressionData::new(p));
        }
        self.rowsets.resize_with(k.max(self.rowsets.len()), Vec::new);
        for d in &mut self.datasets[..k] {
            d.reset(p);
        }
        for r in &mut self.rowsets[..k] {
            r.clear();
        }
        if grew {
            self.eval.stats.scratch_grows += 1;
        } else {
            self.eval.stats.scratch_reuses += 1;
        }
        for (i, &id) in ids.iter().enumerate() {
            if let Some(slot) = spec.slot_of(id) {
                self.rowsets[slot].push(i);
            }
        }
        for (d, rows) in self.datasets[..k].iter_mut().zip(&self.rowsets[..k]) {
            d.extend_from_cols_gather(cols, ys, rows);
        }
        self.errs.clear();
        for d in &self.datasets[..k] {
            let e = if d.n() < config.min_examples.max(1) {
                None
            } else {
                config
                    .error_measure
                    .estimate_with(d, &mut self.eval)
                    .map(|e| e.value)
            };
            self.errs.push(e);
        }
        &self.errs
    }
}

impl ScanScratch for PartitionScratch {
    fn absorb(&mut self, later: Self) {
        self.eval.stats.absorb(&later.eval.stats);
    }
}

/// Record an engine's work counters under the canonical
/// `linreg/*` metric names (builders call this once per scan with the
/// merged per-worker totals, which are thread-count invariant).
pub fn record_eval_stats(rec: &dyn Recorder, stats: &EvalStats) {
    if stats.fits > 0 {
        rec.add(names::LINREG_FITS, stats.fits);
    }
    if stats.cv_folds_evaluated > 0 {
        rec.add(names::LINREG_CV_FOLDS, stats.cv_folds_evaluated);
    }
    if stats.ridge_rescues > 0 {
        rec.add(names::LINREG_RIDGE_RESCUES, stats.ridge_rescues);
    }
    if stats.scratch_reuses > 0 {
        rec.add(names::LINREG_SCRATCH_REUSES, stats.scratch_reuses);
    }
    if stats.scratch_grows > 0 {
        rec.add(names::LINREG_SCRATCH_GROWS, stats.scratch_grows);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::problem::ErrorMeasure;

    fn block() -> RegionBlock {
        let mut b = RegionBlock::new(vec![0], 2);
        for i in 0..20i64 {
            let x = i as f64;
            let y = if i < 10 { 2.0 * x } else { -3.0 * x };
            b.push(i, &[1.0, x], y);
        }
        b
    }

    fn config() -> BellwetherConfig {
        BellwetherConfig::builder(1.0)
            .min_examples(3)
            .error_measure(ErrorMeasure::TrainingSet)
            .build()
            .unwrap()
    }

    #[test]
    fn gather_matches_block_to_data_and_subsets() {
        let b = block();
        let mut s = RegionEvalScratch::new();
        s.gather(&b, None);
        assert_eq!(s.data.n(), 20);
        assert_eq!(s.ids.len(), 20);
        let keep: HashSet<i64> = (0..10).collect();
        s.gather(&b, Some(&keep));
        assert_eq!(s.data.n(), 10);
        assert_eq!(s.ids, (0..10).collect::<Vec<i64>>());
        let direct = crate::training::block_subset_data(&b, &keep);
        for i in 0..10 {
            assert_eq!(s.data.row(i), direct.row(i));
            assert_eq!(s.data.y(i), direct.y(i));
        }
    }

    #[test]
    fn estimate_and_fit_match_one_shot_path() {
        let b = block();
        let cfg = config();
        let mut s = RegionEvalScratch::new();
        let keep: HashSet<i64> = (0..10).collect();
        s.gather(&b, Some(&keep));
        let est = s.estimate(&cfg).unwrap();
        let direct = cfg
            .error_measure
            .estimate(&crate::training::block_subset_data(&b, &keep))
            .unwrap();
        assert_eq!(est.value.to_bits(), direct.value.to_bits());
        let m = s.fit_model().unwrap();
        let direct_m =
            bellwether_linreg::fit_wls(&crate::training::block_subset_data(&b, &keep)).unwrap();
        for (a, b) in m.coefficients().iter().zip(direct_m.coefficients()) {
            assert_eq!(a.to_bits(), b.to_bits());
        }
    }

    #[test]
    fn partition_scratch_matches_partition_spec() {
        let b = block();
        let cfg = config();
        let low: HashSet<i64> = (0..10).collect();
        let high: HashSet<i64> = (10..20).collect();
        let spec = PartitionSpec::new(&[low, high]);
        let via_spec = spec.errors(&b, &cfg);
        let mut scratch = PartitionScratch::new();
        let via_scratch = scratch.errors(&spec, &b, &cfg).to_vec();
        assert_eq!(via_spec, via_scratch);
        assert!(via_scratch[0].unwrap() < 1e-6);
        assert!(via_scratch[1].unwrap() < 1e-6);
    }

    #[test]
    fn warm_scratch_stops_growing() {
        let b = block();
        let cfg = config();
        let mut s = RegionEvalScratch::new();
        s.gather(&b, None);
        s.estimate(&cfg).unwrap();
        let grows = s.eval.stats.scratch_grows;
        for _ in 0..10 {
            s.gather(&b, None);
            s.estimate(&cfg).unwrap();
        }
        assert_eq!(s.eval.stats.scratch_grows, grows, "warm gather must not grow");
        assert!(s.eval.stats.scratch_reuses >= 20);

        let low: HashSet<i64> = (0..10).collect();
        let high: HashSet<i64> = (10..20).collect();
        let spec = PartitionSpec::new(&[low, high]);
        let mut ps = PartitionScratch::new();
        ps.errors(&spec, &b, &cfg);
        let grows = ps.eval.stats.scratch_grows;
        for _ in 0..10 {
            ps.errors(&spec, &b, &cfg);
        }
        assert_eq!(ps.eval.stats.scratch_grows, grows);
    }

    #[test]
    fn absorb_sums_counters_across_workers() {
        let b = block();
        let cfg = config();
        let mut a = RegionEvalScratch::new();
        let mut c = RegionEvalScratch::new();
        a.gather(&b, None);
        a.estimate(&cfg).unwrap();
        c.gather(&b, None);
        c.estimate(&cfg).unwrap();
        let fits = a.eval.stats.fits + c.eval.stats.fits;
        a.absorb(c);
        assert_eq!(a.eval.stats.fits, fits);
    }

    #[test]
    fn record_eval_stats_reports_canonical_names() {
        let reg = bellwether_obs::Registry::new();
        let stats = EvalStats {
            fits: 3,
            cv_folds_evaluated: 30,
            ridge_rescues: 1,
            scratch_reuses: 5,
            scratch_grows: 2,
        };
        record_eval_stats(&reg, &stats);
        let snap = reg.snapshot();
        assert_eq!(snap.fits(), 3);
        assert_eq!(snap.cv_folds_evaluated(), 30);
        assert_eq!(snap.ridge_rescues(), 1);
        assert_eq!(snap.counter(names::LINREG_SCRATCH_REUSES), Some(5));
        assert_eq!(snap.counter(names::LINREG_SCRATCH_GROWS), Some(2));
    }
}
