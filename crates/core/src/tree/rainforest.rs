//! The RF (RainForest-style) bellwether tree algorithm (Figure 4,
//! bottom; §5.2).
//!
//! Instead of re-reading the entire training data for every
//! (node, criterion), the RF algorithm works level by level: one scan
//! over all feasible regions collects, for every active node `v`,
//! criterion `c` and child partition `p`, the sufficient statistic
//! `MinError[v, c, p] = min_r Error(h_r | S_p)` (together with `|S_p|`),
//! which is all the goodness computation needs. By Lemma 1 the resulting
//! tree is identical to the naive one while scanning the data once per
//! level (plus one targeted region read per node to fit its final
//! model).

use super::{
    candidate_splits, merge_skipped, BellwetherTree, CandidateSplit, Node, TreeConfig,
};
use crate::error::{BellwetherError, Result};
use crate::eval::{record_eval_stats, PartitionScratch, RegionEvalScratch};
use crate::items::ItemTable;
use crate::problem::BellwetherConfig;
use crate::scan::{scan_regions_policy, BestRegion, MergeableAccumulator, WithScratch};
use crate::tree::naive::goodness_of;
use crate::tree::partition::{child_id_sets, fit_node_model, PartitionSpec};
use bellwether_cube::{RegionId, RegionSpace};
use bellwether_obs::{names, span};
use bellwether_storage::TrainingSource;
use std::collections::HashSet;

/// Per-level bookkeeping for one node. Read-only during the level scan
/// so workers can share it; the scan's mutable state lives in
/// [`LevelAcc`].
struct LevelEntry {
    node_id: usize,
    ids: HashSet<i64>,
    /// Candidates and their routing tables (empty when inactive).
    candidates: Vec<CandidateSplit>,
    specs: Vec<PartitionSpec>,
    active: bool,
}

/// One node's share of the level statistic.
struct EntryPartial {
    /// Best (region index, error) for the node's own item set.
    node_best: BestRegion,
    /// MinError[c][p].
    min_err: Vec<Vec<f64>>,
}

/// The level's sufficient statistic (Lemma 1): per active node, the
/// `MinError[v, c, p]` table plus the node's own best region. Both
/// merge exactly — `min` over disjoint region ranges is `min` over
/// their union, and strict-`<` updates with in-order merging preserve
/// the sequential scan's lowest-region-index tie-breaking.
struct LevelAcc(Vec<EntryPartial>);

impl LevelAcc {
    fn for_entries(entries: &[LevelEntry]) -> Self {
        LevelAcc(
            entries
                .iter()
                .map(|e| EntryPartial {
                    node_best: BestRegion::default(),
                    min_err: e
                        .candidates
                        .iter()
                        .map(|c| vec![f64::INFINITY; c.partition.len()])
                        .collect(),
                })
                .collect(),
        )
    }
}

impl MergeableAccumulator for LevelAcc {
    fn merge(&mut self, later: Self) {
        for (ours, theirs) in self.0.iter_mut().zip(later.0) {
            ours.node_best.merge(theirs.node_best);
            for (oc, tc) in ours.min_err.iter_mut().zip(theirs.min_err) {
                for (ov, tv) in oc.iter_mut().zip(tc) {
                    if tv < *ov {
                        *ov = tv;
                    }
                }
            }
        }
    }
}

/// Build a bellwether tree with the RF algorithm.
pub fn build_rainforest(
    source: &dyn TrainingSource,
    space: &RegionSpace,
    items: &ItemTable,
    root_rows: Option<Vec<usize>>,
    problem: &BellwetherConfig,
    tree_cfg: &TreeConfig,
) -> Result<BellwetherTree> {
    let _timer = span!(problem.recorder, "tree/rainforest");
    let rows = root_rows.unwrap_or_else(|| (0..items.len()).collect());
    let mut tree = BellwetherTree {
        nodes: Vec::new(),
        skipped_regions: Vec::new(),
    };
    tree.nodes.push(Node {
        depth: 0,
        item_rows: rows,
        info: None,
        split: None,
    });

    let mut level: Vec<usize> = vec![0];
    let mut depth = 0usize;
    while !level.is_empty() {
        // Prepare the level: termination decides which nodes are active,
        // active nodes enumerate their candidate criteria.
        let entries: Vec<LevelEntry> = level
            .iter()
            .map(|&node_id| {
                let node = &tree.nodes[node_id];
                let active = node.depth < tree_cfg.max_depth
                    && node.item_rows.len() >= tree_cfg.min_node_items;
                let candidates = if active {
                    candidate_splits(items, &node.item_rows, tree_cfg)
                } else {
                    Vec::new()
                };
                let specs: Vec<PartitionSpec> = candidates
                    .iter()
                    .map(|c| PartitionSpec::new(&child_id_sets(items, &c.partition)))
                    .collect();
                let ids: HashSet<i64> =
                    node.item_rows.iter().map(|&r| items.ids()[r]).collect();
                LevelEntry {
                    node_id,
                    ids,
                    candidates,
                    specs,
                    active,
                }
            })
            .collect();

        // The level's single scan over the entire training data, run
        // through the shared engine (parallel under
        // `problem.parallelism`, merged in region order). For each
        // block, gather each node's rows once, then evaluate the node's
        // own error and all its candidates over just those rows — deep
        // levels must not re-route the full block per criterion. One
        // span per level scan — the empirical witness of Lemma 1's
        // "`l` scans over the entire training data" claim.
        let level_timer = span!(problem.recorder, "tree/rainforest/level{depth}");
        let p = source.feature_arity();
        let scanned = scan_regions_policy(
            source,
            problem.parallelism,
            problem.scan_policy,
            || WithScratch {
                acc: LevelAcc::for_entries(&entries),
                scratch: (RegionEvalScratch::new(), PartitionScratch::new()),
            },
            |ws: &mut WithScratch<LevelAcc, (RegionEvalScratch, PartitionScratch)>,
             idx,
             block| {
                let (region_scratch, part_scratch) = &mut ws.scratch;
                for (e, partial) in entries.iter().zip(ws.acc.0.iter_mut()) {
                    region_scratch.gather(block, Some(&e.ids));
                    // Track the node's own bellwether in the same pass.
                    if region_scratch.data.n() >= problem.min_examples.max(1) {
                        if let Some(est) = problem
                            .error_measure
                            .estimate_with(&region_scratch.data, &mut region_scratch.eval)
                        {
                            partial.node_best.observe(idx, est.value);
                        }
                    }
                    if !e.active {
                        continue;
                    }
                    let data = &region_scratch.data;
                    let ids = &region_scratch.ids;
                    for (c, spec) in e.specs.iter().enumerate() {
                        let errs =
                            part_scratch.errors_cols(spec, p, data.cols(), ids, data.ys(), problem);
                        for (p_idx, err) in errs.iter().enumerate() {
                            if let Some(err) = *err {
                                if err < partial.min_err[c][p_idx] {
                                    partial.min_err[c][p_idx] = err;
                                }
                            }
                        }
                    }
                }
                Ok(())
            },
        )?;

        drop(level_timer); // the level span covers the scan loop only
        scanned.record_skipped(problem.recorder.as_ref());
        merge_skipped(&mut tree.skipped_regions, &scanned.skipped);
        let WithScratch { acc, scratch } = scanned.acc;
        record_eval_stats(problem.recorder.as_ref(), &scratch.0.eval.stats);
        record_eval_stats(problem.recorder.as_ref(), &scratch.1.eval.stats);

        // Finalize the level: fit node models (targeted reads), pick
        // splits, spawn the next level.
        let mut next_level = Vec::new();
        for (e, partial) in entries.iter().zip(acc.0) {
            if let Some((ridx, err)) = partial.node_best.0 {
                let block = source
                    .read_region(ridx)
                    .map_err(|source| BellwetherError::RegionRead {
                        index: ridx,
                        source,
                    })?;
                let region = RegionId(source.region_coords(ridx).to_vec());
                let label = space.label(&region);
                tree.nodes[e.node_id].info =
                    fit_node_model(&block, &e.ids, ridx, region, label, err);
            }
            let Some((_, node_err)) = partial.node_best.0 else { continue };
            if !e.active
                || tree.nodes[e.node_id].info.is_none()
                || node_err <= tree_cfg.perfect_error_tol
            {
                continue;
            }

            let rows = tree.nodes[e.node_id].item_rows.clone();
            let mut best: Option<(usize, f64)> = None;
            for (ci, cand) in e.candidates.iter().enumerate() {
                if partial.min_err[ci].iter().any(|v| !v.is_finite()) {
                    continue;
                }
                let g = goodness_of(&rows, node_err, cand, &partial.min_err[ci]);
                if best.is_none_or(|(_, bg)| g > bg) {
                    best = Some((ci, g));
                }
            }
            let Some((ci, goodness)) = best else { continue };
            if tree_cfg.require_positive_goodness && goodness <= 0.0 {
                continue;
            }

            let cand = e.candidates[ci].clone();
            let depth = tree.nodes[e.node_id].depth;
            let mut children = Vec::with_capacity(cand.partition.len());
            for part in &cand.partition {
                let child_id = tree.nodes.len();
                tree.nodes.push(Node {
                    depth: depth + 1,
                    item_rows: part.clone(),
                    info: None,
                    split: None,
                });
                children.push(child_id);
                next_level.push(child_id);
            }
            tree.nodes[e.node_id].split = Some((cand.criterion, children));
        }
        level = next_level;
        depth += 1;
    }
    problem.recorder.add(names::TREE_NODES, tree.nodes.len() as u64);
    Ok(tree)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::problem::ErrorMeasure;
    use crate::tree::naive::build_naive;
    use crate::tree::tests_support::{canonical_form, two_group_fixture};
    use bellwether_storage::TrainingSource;

    fn problem() -> BellwetherConfig {
        BellwetherConfig::builder(1e9)
            .min_coverage(0.0)
            .min_examples(4)
            .error_measure(ErrorMeasure::TrainingSet)
            .build()
            .unwrap()
    }

    fn tree_cfg() -> TreeConfig {
        TreeConfig {
            min_node_items: 8,
            ..TreeConfig::default()
        }
    }

    #[test]
    fn lemma_1_same_tree_as_naive() {
        let (src, space, items) = two_group_fixture();
        let naive = build_naive(&src, &space, &items, None, &problem(), &tree_cfg()).unwrap();
        let rf =
            build_rainforest(&src, &space, &items, None, &problem(), &tree_cfg()).unwrap();
        assert_eq!(
            canonical_form(&naive, &items),
            canonical_form(&rf, &items),
            "Lemma 1: RF and naive must build the same tree"
        );
    }

    #[test]
    fn lemma_1_scan_counts() {
        let (src, space, items) = two_group_fixture();
        let num_regions = src.num_regions() as u64;

        src.stats().reset();
        let rf =
            build_rainforest(&src, &space, &items, None, &problem(), &tree_cfg()).unwrap();
        let rf_reads = src.snapshot().regions_read();

        src.stats().reset();
        let _naive =
            build_naive(&src, &space, &items, None, &problem(), &tree_cfg()).unwrap();
        let naive_reads = src.snapshot().regions_read();

        // RF: one full scan per level plus one targeted read per node.
        let levels = rf.depth() as u64 + 1;
        let nodes = rf.nodes.len() as u64;
        assert_eq!(rf_reads, levels * num_regions + nodes);
        // Naive re-scans per (node, criterion) and per node: strictly more.
        assert!(
            naive_reads > rf_reads,
            "naive {naive_reads} should exceed RF {rf_reads}"
        );
    }

    #[test]
    fn one_level_span_per_scan() {
        let (src, space, items) = two_group_fixture();
        let reg = bellwether_obs::Registry::shared();
        let mut problem = problem();
        problem.recorder = reg.clone();
        let rf =
            build_rainforest(&src, &space, &items, None, &problem, &tree_cfg()).unwrap();
        let snap = reg.snapshot();
        // Exactly one `tree/rainforest/level{d}` span per level, each
        // called once — the Lemma 1 `l`-scan claim, observed.
        let levels = rf.depth() + 1;
        for d in 0..levels {
            let s = snap
                .span(&format!("tree/rainforest/level{d}"))
                .unwrap_or_else(|| panic!("missing level {d} span"));
            assert_eq!(s.calls, 1);
        }
        assert!(snap.span(&format!("tree/rainforest/level{levels}")).is_none());
        assert_eq!(
            snap.counter(bellwether_obs::names::TREE_NODES),
            Some(rf.nodes.len() as u64)
        );
    }

    #[test]
    fn stump_when_nothing_active() {
        let (src, space, items) = two_group_fixture();
        let cfg = TreeConfig {
            max_depth: 0,
            ..tree_cfg()
        };
        let tree = build_rainforest(&src, &space, &items, None, &problem(), &cfg).unwrap();
        assert_eq!(tree.nodes.len(), 1);
        assert!(tree.root().info.is_some());
    }

    #[test]
    fn root_rows_subset_restricts_training() {
        let (src, space, items) = two_group_fixture();
        // Only group-a items (rows 0..10): no useful split remains.
        let tree = build_rainforest(
            &src,
            &space,
            &items,
            Some((0..10).collect()),
            &problem(),
            &tree_cfg(),
        )
        .unwrap();
        let info = tree.root().info.as_ref().unwrap();
        assert_eq!(info.label, "[ra]");
        assert!(info.error < 1e-6);
    }
}
