//! Bellwether trees (§5): item-centric bellwether prediction by
//! recursive partitioning on item-table features.
//!
//! A bellwether tree looks like a regression tree, but each leaf holds a
//! *bellwether region and model* for its item subset instead of a
//! constant prediction. Split quality is the reduction in total weighted
//! error, `Goodness(c) = |S|·Error(h_r|S) − Σ_p |S_p|·Error(h_{r_p}|S_p)`,
//! where each error is already minimised over feasible regions.
//!
//! Two construction algorithms produce **identical trees** (Lemma 1):
//! [`naive::build_naive`] re-reads the entire training data for every
//! (node, criterion), while [`rainforest::build_rainforest`] scans it
//! once per level, accumulating the sufficient statistic
//! `{MinError[v,c,p], Size[v,c,p]}`.

pub mod naive;
pub mod partition;
pub mod prune;
pub mod rainforest;
#[cfg(test)]
pub(crate) mod tests_support;

use crate::error::{BellwetherError, Result};
use crate::eval::{record_eval_stats, RegionEvalScratch};
use crate::items::ItemTable;
use crate::problem::BellwetherConfig;
use crate::scan::{scan_regions_policy, BestRegion, WithScratch};
use crate::training::block_subset_data;
use bellwether_cube::{RegionId, RegionSpace};
use bellwether_linreg::{fit_wls, LinearModel};
use bellwether_storage::{RegionBlock, TrainingSource};
use std::collections::{HashMap, HashSet};

/// Construction knobs for bellwether trees.
#[derive(Debug, Clone)]
pub struct TreeConfig {
    /// Maximum tree depth (root = 0). The scalability experiments use 7.
    pub max_depth: usize,
    /// Termination threshold: do not split nodes with fewer items.
    pub min_node_items: usize,
    /// Cap on numeric thresholds considered per attribute (the paper
    /// suggests ~50 percentiles when distinct values are many).
    pub max_numeric_splits: usize,
    /// Only split when the best criterion strictly reduces error
    /// (a pre-pruning stand-in for post-hoc MDL pruning).
    pub require_positive_goodness: bool,
    /// Nodes whose error is already below this RMSE are treated as
    /// (numerically) perfect and never split: on noiseless data the
    /// residual error is floating-point noise, and "improving" it grows
    /// spurious subtrees.
    pub perfect_error_tol: f64,
    /// Post-construction cost-complexity pruning strength (the paper's
    /// MDL-pruning stand-in): each extra leaf must cut at least this
    /// fraction of the root's total weighted error to survive. 0 = no
    /// pruning.
    pub prune_frac: f64,
}

impl Default for TreeConfig {
    fn default() -> Self {
        TreeConfig {
            max_depth: 7,
            min_node_items: 40,
            max_numeric_splits: 50,
            require_positive_goodness: true,
            perfect_error_tol: 1e-6,
            prune_frac: 0.0,
        }
    }
}

impl TreeConfig {
    /// Start building from the defaults, with validation at
    /// [`TreeConfigBuilder::build`] time.
    pub fn builder() -> TreeConfigBuilder {
        TreeConfigBuilder(TreeConfig::default())
    }
}

/// Builder for [`TreeConfig`] with typed validation, matching
/// `BellwetherConfig::builder` in style.
#[derive(Debug, Clone, Default)]
pub struct TreeConfigBuilder(TreeConfig);

impl TreeConfigBuilder {
    /// Maximum tree depth (root = 0).
    pub fn max_depth(mut self, d: usize) -> Self {
        self.0.max_depth = d;
        self
    }

    /// Termination threshold: do not split nodes with fewer items (≥ 1).
    pub fn min_node_items(mut self, n: usize) -> Self {
        self.0.min_node_items = n;
        self
    }

    /// Cap on numeric thresholds per attribute (≥ 1).
    pub fn max_numeric_splits(mut self, n: usize) -> Self {
        self.0.max_numeric_splits = n;
        self
    }

    /// Only split when the best criterion strictly reduces error.
    pub fn require_positive_goodness(mut self, b: bool) -> Self {
        self.0.require_positive_goodness = b;
        self
    }

    /// RMSE below which a node counts as perfect (finite, ≥ 0).
    pub fn perfect_error_tol(mut self, tol: f64) -> Self {
        self.0.perfect_error_tol = tol;
        self
    }

    /// Cost-complexity pruning strength ∈ [0, 1]; 0 = no pruning.
    pub fn prune_frac(mut self, f: f64) -> Self {
        self.0.prune_frac = f;
        self
    }

    /// Validate and produce the config.
    pub fn build(self) -> Result<TreeConfig> {
        let c = self.0;
        if c.min_node_items == 0 {
            return Err(BellwetherError::Config(
                "min_node_items must be at least 1".to_string(),
            ));
        }
        if c.max_numeric_splits == 0 {
            return Err(BellwetherError::Config(
                "max_numeric_splits must be at least 1".to_string(),
            ));
        }
        if !c.perfect_error_tol.is_finite() || c.perfect_error_tol < 0.0 {
            return Err(BellwetherError::Config(format!(
                "perfect_error_tol must be finite and non-negative, got {}",
                c.perfect_error_tol
            )));
        }
        if !(0.0..=1.0).contains(&c.prune_frac) {
            return Err(BellwetherError::Config(format!(
                "prune_frac must be in [0, 1], got {}",
                c.prune_frac
            )));
        }
        Ok(c)
    }
}

/// A splitting criterion over item-table features.
#[derive(Debug, Clone, PartialEq)]
pub enum SplitCriterion {
    /// `⟨A_k⟩`: one child per categorical value present at the node.
    Categorical {
        /// Index into `ItemTable::categorical_attrs`.
        attr: usize,
        /// Dictionary code → child slot.
        code_children: HashMap<u32, usize>,
    },
    /// `⟨A_k, b⟩`: child 0 takes `A_k < b`, child 1 takes `A_k ≥ b`.
    Numeric {
        /// Index into `ItemTable::numeric_attrs`.
        attr: usize,
        /// Split point b.
        threshold: f64,
    },
}

impl SplitCriterion {
    /// Which child slot an item-table row goes to; `None` if the value
    /// was unseen at construction (caller stops routing there).
    pub fn child_of(&self, items: &ItemTable, row: usize) -> Option<usize> {
        match self {
            SplitCriterion::Categorical {
                attr,
                code_children,
            } => {
                let code = items.categorical_attrs()[*attr].codes[row];
                code_children.get(&code).copied()
            }
            SplitCriterion::Numeric { attr, threshold } => {
                let v = items.numeric_attrs()[*attr].values[row];
                Some(if v < *threshold { 0 } else { 1 })
            }
        }
    }

    /// Human-readable form, e.g. `rd_expense >= 50000` or `category`.
    pub fn describe(&self, items: &ItemTable) -> String {
        match self {
            SplitCriterion::Categorical { attr, .. } => {
                format!("⟨{}⟩", items.categorical_attrs()[*attr].name)
            }
            SplitCriterion::Numeric { attr, threshold } => {
                format!("⟨{} ≥ {threshold}⟩", items.numeric_attrs()[*attr].name)
            }
        }
    }
}

/// A candidate split at a node: the criterion plus its induced partition
/// of the node's item rows. Both construction algorithms enumerate
/// candidates through [`candidate_splits`], so their criterion order —
/// and therefore tie-breaking — is identical.
#[derive(Debug, Clone)]
pub struct CandidateSplit {
    /// The criterion.
    pub criterion: SplitCriterion,
    /// Item rows per child (indices into the ItemTable).
    pub partition: Vec<Vec<usize>>,
}

/// Enumerate the paper's candidate criteria for a node holding the item
/// rows `rows`: one per categorical attribute (children = values present)
/// and one per numeric threshold (midpoints of sorted distinct values,
/// capped at `max_numeric_splits` percentile points).
pub fn candidate_splits(
    items: &ItemTable,
    rows: &[usize],
    config: &TreeConfig,
) -> Vec<CandidateSplit> {
    let mut out = Vec::new();

    for (attr, cat) in items.categorical_attrs().iter().enumerate() {
        let mut code_children: HashMap<u32, usize> = HashMap::new();
        let mut partition: Vec<Vec<usize>> = Vec::new();
        for &row in rows {
            let code = cat.codes[row];
            let slot = *code_children.entry(code).or_insert_with(|| {
                partition.push(Vec::new());
                partition.len() - 1
            });
            partition[slot].push(row);
        }
        if partition.len() >= 2 {
            out.push(CandidateSplit {
                criterion: SplitCriterion::Categorical {
                    attr,
                    code_children,
                },
                partition,
            });
        }
    }

    for (attr, num) in items.numeric_attrs().iter().enumerate() {
        let mut values: Vec<f64> = rows.iter().map(|&r| num.values[r]).collect();
        values.sort_by(f64::total_cmp);
        values.dedup();
        if values.len() < 2 {
            continue;
        }
        let mut thresholds: Vec<f64> = values
            .windows(2)
            .map(|w| (w[0] + w[1]) / 2.0)
            .collect();
        if thresholds.len() > config.max_numeric_splits {
            // Percentile thinning: keep max_numeric_splits evenly spaced.
            let step = thresholds.len() as f64 / config.max_numeric_splits as f64;
            thresholds = (0..config.max_numeric_splits)
                .map(|i| thresholds[(i as f64 * step) as usize])
                .collect();
        }
        for threshold in thresholds {
            let mut partition = vec![Vec::new(), Vec::new()];
            for &row in rows {
                let slot = usize::from(num.values[row] >= threshold);
                partition[slot].push(row);
            }
            if !partition[0].is_empty() && !partition[1].is_empty() {
                out.push(CandidateSplit {
                    criterion: SplitCriterion::Numeric { attr, threshold },
                    partition,
                });
            }
        }
    }
    out
}

/// The bellwether found for one node's item subset.
#[derive(Debug, Clone)]
pub struct NodeInfo {
    /// Index of the bellwether region in the training source.
    pub region_index: usize,
    /// The bellwether region.
    pub region: RegionId,
    /// Display label.
    pub label: String,
    /// `Error(h_r | S)` — minimum over feasible regions.
    pub error: f64,
    /// The bellwether model, trained on the node's items in the region.
    pub model: LinearModel,
    /// Training examples behind the model.
    pub n_examples: usize,
}

/// One tree node.
#[derive(Debug, Clone)]
pub struct Node {
    /// Depth (root = 0).
    pub depth: usize,
    /// Item-table rows of the node's item subset.
    pub item_rows: Vec<usize>,
    /// Bellwether for this subset (present on every node so routing can
    /// stop early on unseen categorical values).
    pub info: Option<NodeInfo>,
    /// Chosen split and child node ids; `None` for leaves.
    pub split: Option<(SplitCriterion, Vec<usize>)>,
}

/// A fitted bellwether tree.
#[derive(Debug, Clone)]
pub struct BellwetherTree {
    /// Nodes; index 0 is the root.
    pub nodes: Vec<Node>,
    /// Region indices skipped as unreadable during construction
    /// (sorted, deduplicated across all scans). Empty under
    /// [`crate::scan::ScanPolicy::Strict`]; non-empty marks the tree as
    /// a degraded result built without those regions.
    pub skipped_regions: Vec<usize>,
}

impl BellwetherTree {
    /// The root node.
    pub fn root(&self) -> &Node {
        &self.nodes[0]
    }

    /// Node ids reachable from the root (pruning leaves orphaned
    /// subtrees in the arena; they are not part of the logical tree).
    fn reachable(&self) -> Vec<usize> {
        let mut out = Vec::with_capacity(self.nodes.len());
        let mut stack = vec![0usize];
        while let Some(id) = stack.pop() {
            out.push(id);
            if let Some((_, children)) = &self.nodes[id].split {
                stack.extend_from_slice(children);
            }
        }
        out
    }

    /// Number of (reachable) leaves.
    pub fn num_leaves(&self) -> usize {
        self.reachable()
            .into_iter()
            .filter(|&id| self.nodes[id].split.is_none())
            .count()
    }

    /// Depth of the deepest reachable node.
    pub fn depth(&self) -> usize {
        self.reachable()
            .into_iter()
            .map(|id| self.nodes[id].depth)
            .max()
            .unwrap_or(0)
    }

    /// Route an item-table row to the deepest reachable node (a leaf, or
    /// an internal node if a categorical value was unseen below it).
    pub fn route_row(&self, items: &ItemTable, row: usize) -> usize {
        let mut at = 0;
        loop {
            let node = &self.nodes[at];
            let Some((criterion, children)) = &node.split else {
                return at;
            };
            match criterion.child_of(items, row) {
                Some(slot) => at = children[slot],
                None => return at,
            }
        }
    }

    /// Route by item id.
    pub fn route_item(&self, items: &ItemTable, id: i64) -> Option<usize> {
        Some(self.route_row(items, items.row_of(id)?))
    }

    /// The node whose bellwether model should predict for `id`: the
    /// routed node, or its nearest ancestor carrying a model.
    pub fn predicting_info(&self, items: &ItemTable, id: i64) -> Option<&NodeInfo> {
        let mut at = self.route_item(items, id)?;
        loop {
            if let Some(info) = &self.nodes[at].info {
                return Some(info);
            }
            // info is set on every constructed node; this loop guards
            // against degenerate trees where a node could not fit any
            // model — fall back toward the root.
            if at == 0 {
                return None;
            }
            at = self
                .nodes
                .iter()
                .position(|n| {
                    n.split
                        .as_ref()
                        .is_some_and(|(_, ch)| ch.contains(&at))
                })
                .unwrap_or(0);
        }
    }

    /// Render the tree as an indented outline (for examples and docs).
    pub fn describe(&self, items: &ItemTable) -> String {
        let mut out = String::new();
        self.describe_node(0, 0, items, &mut out);
        out
    }

    fn describe_node(&self, id: usize, indent: usize, items: &ItemTable, out: &mut String) {
        let node = &self.nodes[id];
        let pad = "  ".repeat(indent);
        match (&node.split, &node.info) {
            (Some((c, children)), _) => {
                out.push_str(&format!(
                    "{pad}split {} ({} items)\n",
                    c.describe(items),
                    node.item_rows.len()
                ));
                for &ch in children {
                    self.describe_node(ch, indent + 1, items, out);
                }
            }
            (None, Some(info)) => {
                out.push_str(&format!(
                    "{pad}leaf {} err={:.4} ({} items)\n",
                    info.label,
                    info.error,
                    node.item_rows.len()
                ));
            }
            (None, None) => {
                out.push_str(&format!("{pad}leaf (unfit, {} items)\n", node.item_rows.len()));
            }
        }
    }
}

/// `Error(h_r | S)`: error of the model built on region block `block`
/// restricted to items `keep`. `None` when the subset cannot support a
/// model there.
pub fn block_subset_error(
    block: &RegionBlock,
    keep: &HashSet<i64>,
    config: &BellwetherConfig,
) -> Option<f64> {
    block_subset_error_with(block, keep, config, &mut RegionEvalScratch::new())
}

/// [`block_subset_error`] through a caller-held [`RegionEvalScratch`],
/// so scan hot loops reuse the gather/engine buffers across blocks.
pub fn block_subset_error_with(
    block: &RegionBlock,
    keep: &HashSet<i64>,
    config: &BellwetherConfig,
    scratch: &mut RegionEvalScratch,
) -> Option<f64> {
    scratch.gather(block, Some(keep));
    if scratch.data.n() < config.min_examples.max(1) {
        return None;
    }
    scratch.estimate(config).map(|e| e.value)
}

/// Solve the basic bellwether problem for an item subset by scanning all
/// stored regions once (through the shared [`crate::scan`] engine, so
/// the scan parallelises under `config.parallelism` and honours
/// `config.scan_policy`): returns the min-error region and its model.
pub fn subset_bellwether(
    source: &dyn TrainingSource,
    space: &RegionSpace,
    keep: &HashSet<i64>,
    config: &BellwetherConfig,
) -> Result<Option<NodeInfo>> {
    Ok(subset_bellwether_scanned(source, space, keep, config)?.0)
}

/// [`subset_bellwether`] that also reports which region indices the scan
/// skipped as unreadable, so tree builders can account for them.
pub(crate) fn subset_bellwether_scanned(
    source: &dyn TrainingSource,
    space: &RegionSpace,
    keep: &HashSet<i64>,
    config: &BellwetherConfig,
) -> Result<(Option<NodeInfo>, Vec<usize>)> {
    let scanned = scan_regions_policy(
        source,
        config.parallelism,
        config.scan_policy,
        || WithScratch {
            acc: BestRegion::default(),
            scratch: RegionEvalScratch::new(),
        },
        |ws: &mut WithScratch<BestRegion, RegionEvalScratch>, idx, block| {
            if let Some(err) = block_subset_error_with(block, keep, config, &mut ws.scratch) {
                ws.acc.observe(idx, err);
            }
            Ok(())
        },
    )?;
    scanned.record_skipped(config.recorder.as_ref());
    let skipped = scanned.skipped;
    let WithScratch { acc, scratch } = scanned.acc;
    record_eval_stats(config.recorder.as_ref(), &scratch.eval.stats);
    let Some((region_index, error)) = acc.0 else {
        return Ok((None, skipped));
    };
    // One more read to fit the winning model (the search loop above only
    // kept the score). The region was readable moments ago, but on a
    // faulty source the targeted re-read can still fail — surface it
    // with the region index attached.
    let block = source
        .read_region(region_index)
        .map_err(|source| BellwetherError::RegionRead {
            index: region_index,
            source,
        })?;
    let data = block_subset_data(&block, keep);
    let model = fit_wls(&data).ok_or_else(|| {
        BellwetherError::Config("winning region no longer fits a model".into())
    })?;
    let region = RegionId(source.region_coords(region_index).to_vec());
    Ok((
        Some(NodeInfo {
            region_index,
            label: space.label(&region),
            region,
            error,
            model,
            n_examples: data.n(),
        }),
        skipped,
    ))
}

pub(crate) use crate::scan::merge_skipped;

#[cfg(test)]
mod tests {
    use super::*;
    use bellwether_table::{Column, DataType, Schema, Table};

    fn items() -> ItemTable {
        let t = Table::new(
            Schema::from_pairs(&[
                ("id", DataType::Int),
                ("cat", DataType::Str),
                ("x", DataType::Float),
            ])
            .unwrap(),
            vec![
                Column::from_ints(vec![1, 2, 3, 4]),
                Column::from_strs(&["a", "b", "a", "b"]),
                Column::from_floats(vec![1.0, 2.0, 3.0, 4.0]),
            ],
        )
        .unwrap();
        ItemTable::from_table(&t, "id", &["x"], &["cat"]).unwrap()
    }

    #[test]
    fn candidates_enumerate_cat_and_numeric() {
        let it = items();
        let cands = candidate_splits(&it, &[0, 1, 2, 3], &TreeConfig::default());
        // 1 categorical + 3 numeric midpoints (1.5, 2.5, 3.5)
        assert_eq!(cands.len(), 4);
        assert!(matches!(
            cands[0].criterion,
            SplitCriterion::Categorical { .. }
        ));
        assert_eq!(cands[0].partition.len(), 2);
        assert_eq!(cands[0].partition[0], vec![0, 2]); // "a"
        let numeric: Vec<f64> = cands[1..]
            .iter()
            .map(|c| match c.criterion {
                SplitCriterion::Numeric { threshold, .. } => threshold,
                _ => unreachable!(),
            })
            .collect();
        assert_eq!(numeric, vec![1.5, 2.5, 3.5]);
    }

    #[test]
    fn single_valued_attrs_produce_no_candidates() {
        let it = items();
        // rows 0 and 2 share cat "a"; x values 1 and 3 differ
        let cands = candidate_splits(&it, &[0, 2], &TreeConfig::default());
        assert_eq!(cands.len(), 1); // only the numeric midpoint 2.0
        assert!(matches!(cands[0].criterion, SplitCriterion::Numeric { .. }));
    }

    #[test]
    fn numeric_split_cap() {
        let t = Table::new(
            Schema::from_pairs(&[("id", DataType::Int), ("x", DataType::Float)]).unwrap(),
            vec![
                Column::from_ints((0..200).collect()),
                Column::from_floats((0..200).map(|i| i as f64).collect()),
            ],
        )
        .unwrap();
        let it = ItemTable::from_table(&t, "id", &["x"], &[]).unwrap();
        let rows: Vec<usize> = (0..200).collect();
        let cfg = TreeConfig {
            max_numeric_splits: 10,
            ..TreeConfig::default()
        };
        let cands = candidate_splits(&it, &rows, &cfg);
        assert_eq!(cands.len(), 10);
    }

    #[test]
    fn criterion_routing() {
        let it = items();
        let crit = SplitCriterion::Numeric {
            attr: 0,
            threshold: 2.5,
        };
        assert_eq!(crit.child_of(&it, 0), Some(0));
        assert_eq!(crit.child_of(&it, 3), Some(1));
        let mut map = HashMap::new();
        map.insert(0u32, 0usize); // code of "a"
        let cat = SplitCriterion::Categorical {
            attr: 0,
            code_children: map,
        };
        assert_eq!(cat.child_of(&it, 0), Some(0));
        assert_eq!(cat.child_of(&it, 1), None); // "b" unseen
    }
}
