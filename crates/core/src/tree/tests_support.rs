//! Shared fixtures for tree tests: a tiny dataset with *planted*
//! group-dependent bellwethers, plus a canonical tree serialisation used
//! to assert Lemma 1 (naive ≡ RF) structurally.

use super::BellwetherTree;
use crate::items::ItemTable;
use bellwether_cube::{Dimension, Hierarchy, RegionSpace};
use bellwether_storage::{MemorySource, RegionBlock};
use bellwether_table::{Column, DataType, Schema, Table};

/// 20 items in two categories. Category "a" items are perfectly
/// predictable from region `ra`, category "b" items from region `rb`;
/// every other (region, group) pairing carries junk. A bellwether tree
/// must split on the category and give each leaf its own region.
pub fn two_group_fixture() -> (MemorySource, RegionSpace, ItemTable) {
    let space = RegionSpace::new(vec![Dimension::Hierarchy(Hierarchy::flat(
        "L",
        "All",
        &["ra", "rb"],
    ))]);

    let n = 20i64;
    let is_a = |i: i64| i < 10;
    let fa = |i: i64| (i + 1) as f64;
    let fb = |i: i64| (2 * i + 3) as f64;
    let junk = |i: i64, salt: i64| ((i * 37 + salt * 13) % 11) as f64;
    let target = |i: i64| {
        if is_a(i) {
            5.0 * fa(i)
        } else {
            7.0 * fb(i)
        }
    };

    // p = 2: [intercept, regional feature]
    let mut ra = RegionBlock::new(vec![1], 2);
    let mut rb = RegionBlock::new(vec![2], 2);
    let mut all = RegionBlock::new(vec![0], 2);
    for i in 0..n {
        let f_ra = if is_a(i) { fa(i) } else { junk(i, 1) };
        let f_rb = if is_a(i) { junk(i, 2) } else { fb(i) };
        ra.push(i, &[1.0, f_ra], target(i));
        rb.push(i, &[1.0, f_rb], target(i));
        all.push(i, &[1.0, f_ra + f_rb], target(i));
    }
    let source = MemorySource::new(vec![all, ra, rb]);

    let table = Table::new(
        Schema::from_pairs(&[
            ("id", DataType::Int),
            ("cat", DataType::Str),
            ("idx", DataType::Float),
        ])
        .unwrap(),
        vec![
            Column::from_ints((0..n).collect()),
            Column::from_strs(
                &(0..n)
                    .map(|i| if is_a(i) { "a" } else { "b" })
                    .collect::<Vec<_>>(),
            ),
            Column::from_floats((0..n).map(|i| i as f64).collect()),
        ],
    )
    .unwrap();
    let items = ItemTable::from_table(&table, "id", &["idx"], &["cat"]).unwrap();
    (source, space, items)
}

/// Canonical structural form of a tree: split descriptions and leaf
/// (region, item multiset) pairs, recursively. Independent of node
/// numbering, so naive and RF outputs compare directly.
pub fn canonical_form(tree: &BellwetherTree, items: &ItemTable) -> String {
    fn rec(tree: &BellwetherTree, items: &ItemTable, id: usize, out: &mut String) {
        let node = &tree.nodes[id];
        match &node.split {
            Some((criterion, children)) => {
                out.push_str(&format!("({}", criterion.describe(items)));
                for &c in children {
                    out.push(' ');
                    rec(tree, items, c, out);
                }
                out.push(')');
            }
            None => {
                let mut ids: Vec<i64> =
                    node.item_rows.iter().map(|&r| items.ids()[r]).collect();
                ids.sort_unstable();
                let label = node
                    .info
                    .as_ref()
                    .map(|i| i.label.clone())
                    .unwrap_or_else(|| "<none>".into());
                out.push_str(&format!("[{label}:{ids:?}]"));
            }
        }
    }
    let mut out = String::new();
    rec(tree, items, 0, &mut out);
    out
}
