//! Post-construction pruning of bellwether trees.
//!
//! The paper prunes with MDL after building (§5.1, citing [16, 12]); we
//! implement the equivalent *cost-complexity* rule on the stored node
//! errors: a split survives only if the weighted error of its leaves
//! undercuts the node's own error by more than `penalty` per extra
//! leaf. `penalty = 0` keeps every strictly-improving split; larger
//! penalties progressively collapse marginal structure, which combats
//! the over-fitting the item-centric problem definition warns about.

use super::BellwetherTree;

/// Result of pruning one subtree: its weighted leaf error and leaves.
#[derive(Debug, Clone, Copy)]
struct SubtreeCost {
    weighted_error: f64,
    leaves: usize,
}

/// Prune `tree` in place with the given per-leaf penalty. Returns the
/// number of splits removed. Nodes without error info are left alone.
pub fn prune_tree(tree: &mut BellwetherTree, penalty: f64) -> usize {
    let mut removed = 0;
    prune_node(tree, 0, penalty, &mut removed);
    removed
}

fn prune_node(
    tree: &mut BellwetherTree,
    node_id: usize,
    penalty: f64,
    removed: &mut usize,
) -> SubtreeCost {
    let node_error = |tree: &BellwetherTree, id: usize| -> Option<f64> {
        tree.nodes[id]
            .info
            .as_ref()
            .map(|i| i.error * tree.nodes[id].item_rows.len() as f64)
    };

    let children = match &tree.nodes[node_id].split {
        Some((_, children)) => children.clone(),
        None => {
            return SubtreeCost {
                weighted_error: node_error(tree, node_id).unwrap_or(f64::INFINITY),
                leaves: 1,
            }
        }
    };

    // Bottom-up: prune the children first.
    let mut subtree = SubtreeCost {
        weighted_error: 0.0,
        leaves: 0,
    };
    for &c in &children {
        let cost = prune_node(tree, c, penalty, removed);
        subtree.weighted_error += cost.weighted_error;
        subtree.leaves += cost.leaves;
    }

    let own = node_error(tree, node_id);
    if let Some(own) = own {
        let allowance = penalty * (subtree.leaves.saturating_sub(1)) as f64;
        if own <= subtree.weighted_error + allowance {
            // Collapse: this node predicts at least as well as its
            // subtree once the complexity penalty is charged.
            tree.nodes[node_id].split = None;
            *removed += 1;
            return SubtreeCost {
                weighted_error: own,
                leaves: 1,
            };
        }
    }
    subtree
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::problem::{BellwetherConfig, ErrorMeasure};
    use crate::tree::rainforest::build_rainforest;
    use crate::tree::tests_support::two_group_fixture;
    use crate::tree::TreeConfig;

    fn built() -> (BellwetherTree, crate::items::ItemTable) {
        let (src, space, items) = two_group_fixture();
        let problem = BellwetherConfig::builder(1e9)
            .min_coverage(0.0)
            .min_examples(4)
            .error_measure(ErrorMeasure::TrainingSet)
            .build()
            .unwrap();
        let cfg = TreeConfig {
            min_node_items: 8,
            ..TreeConfig::default()
        };
        let tree = build_rainforest(&src, &space, &items, None, &problem, &cfg).unwrap();
        (tree, items)
    }

    #[test]
    fn zero_penalty_keeps_genuine_splits() {
        let (mut tree, _) = built();
        let leaves_before = tree.num_leaves();
        let removed = prune_tree(&mut tree, 0.0);
        assert_eq!(removed, 0, "strictly improving splits survive");
        assert_eq!(tree.num_leaves(), leaves_before);
    }

    #[test]
    fn huge_penalty_collapses_to_root() {
        let (mut tree, _) = built();
        assert!(tree.num_leaves() > 1);
        let removed = prune_tree(&mut tree, f64::INFINITY);
        assert!(removed >= 1);
        assert_eq!(tree.num_leaves(), 1);
        assert!(tree.root().split.is_none());
        assert!(tree.root().info.is_some(), "root keeps its bellwether");
    }

    #[test]
    fn pruned_tree_still_routes() {
        let (mut tree, items) = built();
        prune_tree(&mut tree, f64::INFINITY);
        for &id in items.ids() {
            assert!(tree.predicting_info(&items, id).is_some());
        }
    }

    #[test]
    fn pruning_is_idempotent() {
        let (mut tree, _) = built();
        prune_tree(&mut tree, 1.0);
        let leaves = tree.num_leaves();
        let removed_again = prune_tree(&mut tree, 1.0);
        assert_eq!(removed_again, 0);
        assert_eq!(tree.num_leaves(), leaves);
    }
}
