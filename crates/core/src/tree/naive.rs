//! The naive bellwether tree algorithm (Figure 4, top): plain recursive
//! splitting where every (node, criterion) evaluation re-reads the
//! entire training data. Correct but IO-bound: ~`l·m` full scans.

use super::{candidate_splits, BellwetherTree, CandidateSplit, Node, TreeConfig};
use crate::error::Result;
use crate::eval::{record_eval_stats, PartitionScratch};
use crate::items::ItemTable;
use crate::problem::BellwetherConfig;
use crate::scan::{scan_regions_policy, MinSlots, WithScratch};
use crate::tree::partition::{child_id_sets, PartitionSpec};
use crate::tree::{merge_skipped, subset_bellwether_scanned};
use bellwether_cube::RegionSpace;
use bellwether_obs::{names, span};
use bellwether_storage::TrainingSource;

/// Build a bellwether tree with the naive algorithm. `root_rows`
/// restricts the training items (defaults to every item).
pub fn build_naive(
    source: &dyn TrainingSource,
    space: &RegionSpace,
    items: &ItemTable,
    root_rows: Option<Vec<usize>>,
    problem: &BellwetherConfig,
    tree_cfg: &TreeConfig,
) -> Result<BellwetherTree> {
    let _timer = span!(problem.recorder, "tree/naive");
    let rows = root_rows.unwrap_or_else(|| (0..items.len()).collect());
    let mut tree = BellwetherTree {
        nodes: Vec::new(),
        skipped_regions: Vec::new(),
    };
    tree.nodes.push(Node {
        depth: 0,
        item_rows: rows,
        info: None,
        split: None,
    });
    split_node(0, source, space, items, problem, tree_cfg, &mut tree)?;
    problem.recorder.add(names::TREE_NODES, tree.nodes.len() as u64);
    Ok(tree)
}

/// Recursive SplitNode from Figure 4.
fn split_node(
    node_id: usize,
    source: &dyn TrainingSource,
    space: &RegionSpace,
    items: &ItemTable,
    problem: &BellwetherConfig,
    tree_cfg: &TreeConfig,
    tree: &mut BellwetherTree,
) -> Result<()> {
    let rows = tree.nodes[node_id].item_rows.clone();
    let depth = tree.nodes[node_id].depth;

    // Find the bellwether for this node's item subset (one full scan).
    let ids: std::collections::HashSet<i64> =
        rows.iter().map(|&r| items.ids()[r]).collect();
    let (info, skipped) = subset_bellwether_scanned(source, space, &ids, problem)?;
    merge_skipped(&mut tree.skipped_regions, &skipped);
    let node_err = info.as_ref().map(|i| i.error);
    tree.nodes[node_id].info = info;

    // Termination condition (including the numerically-perfect gate).
    if depth >= tree_cfg.max_depth
        || rows.len() < tree_cfg.min_node_items
        || node_err.is_none_or(|e| e <= tree_cfg.perfect_error_tol)
    {
        return Ok(());
    }
    let node_err = node_err.unwrap();

    // Evaluate every splitting criterion: one full scan each, computing
    // all of the criterion's child errors inside the same scan.
    let candidates = candidate_splits(items, &rows, tree_cfg);
    let mut best: Option<(usize, f64, Vec<f64>)> = None; // (cand idx, goodness, child errs)
    for (ci, cand) in candidates.iter().enumerate() {
        let spec = PartitionSpec::new(&child_id_sets(items, &cand.partition));
        let parts = cand.partition.len();
        let scanned = scan_regions_policy(
            source,
            problem.parallelism,
            problem.scan_policy,
            || WithScratch {
                acc: MinSlots::new(parts),
                scratch: PartitionScratch::new(),
            },
            |ws: &mut WithScratch<MinSlots, PartitionScratch>, _, block| {
                let WithScratch { acc, scratch } = ws;
                for (slot, e) in scratch.errors(&spec, block, problem).iter().enumerate() {
                    if let Some(e) = *e {
                        acc.observe(slot, e);
                    }
                }
                Ok(())
            },
        )?;
        scanned.record_skipped(problem.recorder.as_ref());
        merge_skipped(&mut tree.skipped_regions, &scanned.skipped);
        let WithScratch { acc, scratch } = scanned.acc;
        record_eval_stats(problem.recorder.as_ref(), &scratch.eval.stats);
        let min_err = acc.0;
        if min_err.iter().any(|e| !e.is_finite()) {
            continue; // some child cannot be modelled anywhere
        }
        let goodness = goodness_of(&rows, node_err, cand, &min_err);
        if best.as_ref().is_none_or(|(_, g, _)| goodness > *g) {
            best = Some((ci, goodness, min_err));
        }
    }

    let Some((ci, goodness, _)) = best else {
        return Ok(());
    };
    if tree_cfg.require_positive_goodness && goodness <= 0.0 {
        return Ok(());
    }
    let cand = candidates.into_iter().nth(ci).expect("candidate index");

    // Create children and recurse.
    let mut children = Vec::with_capacity(cand.partition.len());
    for part in &cand.partition {
        let child_id = tree.nodes.len();
        tree.nodes.push(Node {
            depth: depth + 1,
            item_rows: part.clone(),
            info: None,
            split: None,
        });
        children.push(child_id);
    }
    tree.nodes[node_id].split = Some((cand.criterion, children.clone()));
    for child in children {
        split_node(child, source, space, items, problem, tree_cfg, tree)?;
    }
    Ok(())
}

/// `Goodness(c) = |S|·Error(h_r|S) − Σ_p |S_p|·Error(h_{r_p}|S_p)`.
pub(crate) fn goodness_of(
    rows: &[usize],
    node_err: f64,
    cand: &CandidateSplit,
    child_errs: &[f64],
) -> f64 {
    let total = rows.len() as f64 * node_err;
    let split: f64 = cand
        .partition
        .iter()
        .zip(child_errs)
        .map(|(p, e)| p.len() as f64 * e)
        .sum();
    total - split
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::problem::ErrorMeasure;
    use crate::tree::tests_support::two_group_fixture;

    #[test]
    fn splits_items_with_different_bellwethers() {
        let (src, space, items) = two_group_fixture();
        let problem = BellwetherConfig::builder(1e9)
            .min_coverage(0.0)
            .min_examples(4)
            .error_measure(ErrorMeasure::TrainingSet)
            .build()
            .unwrap();
        let tree_cfg = TreeConfig {
            min_node_items: 8,
            ..TreeConfig::default()
        };
        let tree = build_naive(&src, &space, &items, None, &problem, &tree_cfg).unwrap();
        // The fixture plants group-dependent bellwethers: the root must
        // split on the categorical attribute and each leaf must pick its
        // group's region.
        assert!(tree.nodes[0].split.is_some(), "root should split");
        assert_eq!(tree.num_leaves(), 2);
        let leaf_regions: Vec<String> = tree
            .nodes
            .iter()
            .filter(|n| n.split.is_none())
            .map(|n| n.info.as_ref().unwrap().label.clone())
            .collect();
        assert!(leaf_regions.contains(&"[ra]".to_string()), "{leaf_regions:?}");
        assert!(leaf_regions.contains(&"[rb]".to_string()), "{leaf_regions:?}");
    }

    #[test]
    fn small_nodes_do_not_split() {
        let (src, space, items) = two_group_fixture();
        let problem = BellwetherConfig::builder(1e9)
            .min_coverage(0.0)
            .min_examples(4)
            .error_measure(ErrorMeasure::TrainingSet)
            .build()
            .unwrap();
        let tree_cfg = TreeConfig {
            min_node_items: 10_000,
            ..TreeConfig::default()
        };
        let tree = build_naive(&src, &space, &items, None, &problem, &tree_cfg).unwrap();
        assert_eq!(tree.nodes.len(), 1);
        assert!(tree.root().info.is_some());
    }

    #[test]
    fn max_depth_zero_gives_stump() {
        let (src, space, items) = two_group_fixture();
        let problem = BellwetherConfig::builder(1e9)
            .min_coverage(0.0)
            .min_examples(4)
            .error_measure(ErrorMeasure::TrainingSet)
            .build()
            .unwrap();
        let tree_cfg = TreeConfig {
            max_depth: 0,
            min_node_items: 2,
            ..TreeConfig::default()
        };
        let tree = build_naive(&src, &space, &items, None, &problem, &tree_cfg).unwrap();
        assert_eq!(tree.depth(), 0);
    }

    #[test]
    fn routing_reaches_leaves() {
        let (src, space, items) = two_group_fixture();
        let problem = BellwetherConfig::builder(1e9)
            .min_coverage(0.0)
            .min_examples(4)
            .error_measure(ErrorMeasure::TrainingSet)
            .build()
            .unwrap();
        let tree_cfg = TreeConfig {
            min_node_items: 8,
            ..TreeConfig::default()
        };
        let tree = build_naive(&src, &space, &items, None, &problem, &tree_cfg).unwrap();
        for &id in items.ids() {
            let node = tree.route_item(&items, id).unwrap();
            assert!(tree.nodes[node].split.is_none());
            assert!(tree.predicting_info(&items, id).is_some());
        }
    }
}
