//! Shared partition-error computation.
//!
//! Both tree algorithms must score a splitting criterion's children the
//! same way, or Lemma 1 (naive ≡ RainForest) breaks. This module is that
//! single code path: given one region block and a node's child
//! partition, build each child's training subset in one pass over the
//! block and estimate each child's error.

use super::NodeInfo;
use crate::items::ItemTable;
use crate::problem::BellwetherConfig;
use bellwether_linreg::fit_wls;
use bellwether_storage::RegionBlock;
use std::collections::{HashMap, HashSet};

/// Convert a partition of item-table rows into per-child item-id sets.
pub fn child_id_sets(items: &ItemTable, partition: &[Vec<usize>]) -> Vec<HashSet<i64>> {
    partition
        .iter()
        .map(|rows| rows.iter().map(|&r| items.ids()[r]).collect())
        .collect()
}

/// A reusable routing table for one child partition: maps item ids to
/// child slots. Building it is O(total items); reusing it across the
/// many region blocks of a scan avoids rebuilding the map per block,
/// which dominates at the Figure-11 scales.
#[derive(Debug, Clone)]
pub struct PartitionSpec {
    slot_of: HashMap<i64, usize>,
    n_children: usize,
}

impl PartitionSpec {
    /// Build from per-child item-id sets (disjoint).
    pub fn new(child_ids: &[HashSet<i64>]) -> Self {
        let mut slot_of =
            HashMap::with_capacity(child_ids.iter().map(HashSet::len).sum());
        for (slot, ids) in child_ids.iter().enumerate() {
            for &id in ids {
                slot_of.insert(id, slot);
            }
        }
        PartitionSpec {
            slot_of,
            n_children: child_ids.len(),
        }
    }

    /// Number of children.
    pub fn n_children(&self) -> usize {
        self.n_children
    }

    /// Child slot an item id routes to, if any.
    pub fn slot_of(&self, id: i64) -> Option<usize> {
        self.slot_of.get(&id).copied()
    }

    /// For one region block, the error of the model built for each child
    /// subset (`None` = too few examples / unfittable). One pass over
    /// the block's id lane routes each example to at most one child,
    /// then each child's dataset is gathered lane by lane and estimated
    /// independently.
    ///
    /// One-shot convenience over
    /// [`crate::eval::PartitionScratch::errors`]; scan hot loops should
    /// hold a `PartitionScratch` instead so the per-child datasets are
    /// reused across blocks.
    pub fn errors(&self, block: &RegionBlock, config: &BellwetherConfig) -> Vec<Option<f64>> {
        crate::eval::PartitionScratch::new()
            .errors(self, block, config)
            .to_vec()
    }
}

/// One-shot convenience over [`PartitionSpec`].
pub fn partition_errors(
    block: &RegionBlock,
    child_ids: &[HashSet<i64>],
    config: &BellwetherConfig,
) -> Vec<Option<f64>> {
    PartitionSpec::new(child_ids).errors(block, config)
}

/// Fit the final model of a node: its item subset restricted to the
/// winning region's block.
pub fn fit_node_model(
    block: &RegionBlock,
    ids: &HashSet<i64>,
    region_index: usize,
    region: bellwether_cube::RegionId,
    label: String,
    error: f64,
) -> Option<NodeInfo> {
    let data = crate::training::block_subset_data(block, ids);
    let model = fit_wls(&data)?;
    Some(NodeInfo {
        region_index,
        region,
        label,
        error,
        model,
        n_examples: data.n(),
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::problem::ErrorMeasure;
    use crate::training::block_subset_data;

    fn block() -> RegionBlock {
        let mut b = RegionBlock::new(vec![0], 2);
        // items 0..10: y = 2x; items 10..20: y = -3x
        for i in 0..20i64 {
            let x = i as f64;
            let y = if i < 10 { 2.0 * x } else { -3.0 * x };
            b.push(i, &[1.0, x], y);
        }
        b
    }

    fn config() -> BellwetherConfig {
        BellwetherConfig::builder(1.0)
            .min_examples(3)
            .error_measure(ErrorMeasure::TrainingSet)
            .build()
            .unwrap()
    }

    #[test]
    fn children_score_independently() {
        let b = block();
        let low: HashSet<i64> = (0..10).collect();
        let high: HashSet<i64> = (10..20).collect();
        let errs = partition_errors(&b, &[low, high], &config());
        // each side is a perfect line → ~0 error
        assert!(errs[0].unwrap() < 1e-6);
        assert!(errs[1].unwrap() < 1e-6);
        // mixed set is NOT a line → substantial error
        let all: HashSet<i64> = (0..20).collect();
        let mixed = partition_errors(&b, &[all], &config());
        assert!(mixed[0].unwrap() > 1.0);
    }

    #[test]
    fn partition_errors_match_direct_subset_computation() {
        let b = block();
        let subset: HashSet<i64> = [1, 3, 5, 7, 9].into_iter().collect();
        let direct = config()
            .error_measure
            .estimate(&block_subset_data(&b, &subset))
            .unwrap()
            .value;
        let via = partition_errors(&b, &[subset], &config())[0].unwrap();
        assert!((direct - via).abs() < 1e-12);
    }

    #[test]
    fn tiny_children_are_none() {
        let b = block();
        let tiny: HashSet<i64> = [0, 1].into_iter().collect();
        let errs = partition_errors(&b, &[tiny], &config());
        assert_eq!(errs[0], None);
    }

    #[test]
    fn absent_items_are_ignored() {
        let b = block();
        let ghost: HashSet<i64> = (100..120).collect();
        let errs = partition_errors(&b, &[ghost], &config());
        assert_eq!(errs[0], None);
    }
}
