//! End-to-end bit-identity and drift properties of the incremental
//! maintenance engine ([`StreamingBellwether`]).
//!
//! The contract under test: *stream-then-update is indistinguishable,
//! bit for bit, from a cold rebuild over the concatenated input* — for
//! the search state after every single append, for the on-disk blocks,
//! and for every model builder at every shards × threads combination.

use bellwether_core::basic::BasicSearchResult;
use bellwether_core::training::region_block;
use bellwether_core::{
    basic_search, basic_search_linear, build_naive_cube, build_naive_tree,
    build_optimized_cube, build_rainforest, build_single_scan_cube, BellwetherConfig,
    CubeConfig, ErrorMeasure, LinearCriterion, ModelBuilder, Parallelism, Recorder, Registry,
    StreamingBellwether, TreeConfig,
};
use bellwether_cube::{cube_pass, CostModel, UniformCellCost};
use bellwether_datagen::{build_stream_workload, StreamConfig, StreamWorkload};
use bellwether_storage::{even_shard_plan, ShardedSource, ShardedWriter, TrainingSource};
use std::path::PathBuf;
use std::sync::Arc;

fn tmp_dir(tag: &str) -> PathBuf {
    let dir = std::env::temp_dir().join(format!("bw_stream_test_{tag}"));
    std::fs::remove_dir_all(&dir).ok();
    dir
}

fn config_for(threads: usize, budget: f64) -> BellwetherConfig {
    BellwetherConfig::builder(budget)
        .min_coverage(0.0)
        .min_examples(10)
        .error_measure(ErrorMeasure::TrainingSet)
        .parallelism(Parallelism::fixed(threads))
        .build()
        .unwrap()
}

/// Cold rebuild: one CUBE pass over weeks `[0, upto)`, blocks written
/// to a fresh sharded layout, in the workload's canonical region order.
fn cold_layout(wl: &StreamWorkload, upto: u32, shards: usize, tag: &str) -> PathBuf {
    let input = wl.input_range(0, upto);
    let cube = cube_pass(&wl.region_space, &input);
    let targets = wl.target_map();
    let p = (1 + wl.items.numeric_attrs().len() + cube.measure_names.len()) as u32;
    let dir = tmp_dir(tag);
    std::fs::create_dir_all(&dir).unwrap();
    let plan = even_shard_plan(wl.regions.len(), shards);
    let mut writer =
        ShardedWriter::create(&dir, p, wl.region_space.arity() as u32, plan).unwrap();
    for region in &wl.regions {
        writer
            .write_region(&region_block(&cube, region, &wl.items, &targets))
            .unwrap();
    }
    writer.finish().unwrap();
    dir
}

/// Bit-level equality of two search results: every report field,
/// including float bits of cost / error / coefficients.
fn assert_same_result(got: &BasicSearchResult, want: &BasicSearchResult, ctx: &str) {
    assert_eq!(got.reports.len(), want.reports.len(), "{ctx}: report count");
    for (g, w) in got.reports.iter().zip(&want.reports) {
        assert_eq!(g.source_index, w.source_index, "{ctx}: source index");
        assert_eq!(g.region, w.region, "{ctx}: region");
        assert_eq!(g.label, w.label, "{ctx}: label");
        assert_eq!(g.cost.to_bits(), w.cost.to_bits(), "{ctx}: cost bits");
        assert_eq!(g.n_examples, w.n_examples, "{ctx}: n_examples");
        assert_eq!(
            g.error.value.to_bits(),
            w.error.value.to_bits(),
            "{ctx}: error bits ({})",
            g.label
        );
        assert_eq!(
            g.error.std_err.to_bits(),
            w.error.std_err.to_bits(),
            "{ctx}: std_err bits"
        );
        let (gc, wc) = (g.model.coefficients(), w.model.coefficients());
        assert_eq!(gc.len(), wc.len(), "{ctx}: model arity");
        for (a, b) in gc.iter().zip(wc) {
            assert_eq!(a.to_bits(), b.to_bits(), "{ctx}: coefficient bits");
        }
    }
    assert_eq!(got.best, want.best, "{ctx}: best index");
    assert_eq!(got.skipped_regions, want.skipped_regions, "{ctx}: skipped");
}

fn build_engine(
    wl: &StreamWorkload,
    base_weeks: u32,
    threads: usize,
    budget: f64,
    shards: usize,
    tag: &str,
) -> StreamingBellwether {
    StreamingBellwether::create(
        &tmp_dir(tag),
        &wl.region_space,
        &wl.input_range(0, base_weeks),
        &wl.item_universe(),
        wl.items.clone(),
        wl.target_map(),
        wl.regions.clone(),
        Arc::new(UniformCellCost { rate: 1.0 }),
        config_for(threads, budget),
        wl.items.len(),
        shards,
        1 << 20,
    )
    .unwrap()
}

/// Tentpole property: after *every* append, the engine's search state
/// and its on-disk blocks are bit-identical to a cold rebuild over the
/// concatenated input — across shard counts and an uneven append
/// schedule (single weeks and multi-week batches).
#[test]
fn every_append_matches_cold_rebuild_bit_for_bit() {
    let wl = build_stream_workload(&StreamConfig::default());
    let weeks = wl.config().weeks;
    let schedule: [u32; 5] = [1, 3, 4, 9, weeks]; // uneven batch ends
    for shards in [1usize, 2, 4] {
        let tag = format!("engine_{shards}");
        let mut engine = build_engine(&wl, 1, 2, f64::INFINITY, shards, &tag);
        let mut done = 1u32;
        for &upto in &schedule[1..] {
            engine.append(&wl.input_range(done, upto)).unwrap();
            done = upto;

            let cold_dir = cold_layout(&wl, upto, shards, &format!("cold_{shards}_{upto}"));
            let cold_src = ShardedSource::open(&cold_dir).unwrap();
            let cold = basic_search(
                &cold_src,
                &wl.region_space,
                &UniformCellCost { rate: 1.0 },
                &config_for(2, f64::INFINITY),
                wl.items.len(),
            )
            .unwrap();
            let ctx = format!("shards={shards} upto={upto}");
            assert_same_result(&engine.search_result(), &cold, &ctx);

            // On-disk blocks (through the overlay redirects) match the
            // cold layout region by region.
            for idx in 0..wl.regions.len() {
                let streamed = engine.source().read_region(idx).unwrap();
                let cold_block = cold_src.read_region(idx).unwrap();
                assert_eq!(*streamed, *cold_block, "{ctx}: block {idx}");
            }
            std::fs::remove_dir_all(&cold_dir).ok();
        }
        assert_eq!(done, weeks);
        assert!(engine.generation() > 0, "appends created generations");
        std::fs::remove_dir_all(engine.dir()).ok();
    }
}

/// The budget prefilter must behave identically incrementally: an
/// over-budget region is never read or evaluated, so it never gains a
/// report no matter how often it is dirtied.
#[test]
fn budget_prefilter_matches_cold_search() {
    let wl = build_stream_workload(&StreamConfig::default());
    let cost = UniformCellCost { rate: 1.0 };
    // Pick a budget that splits the candidates into both camps.
    let costs: Vec<f64> = wl
        .regions
        .iter()
        .map(|r| cost.cost(&wl.region_space, r))
        .collect();
    let mut sorted = costs.clone();
    sorted.sort_by(f64::total_cmp);
    let budget = sorted[sorted.len() / 2];
    assert!(costs.iter().any(|&c| c > budget), "some regions over budget");

    let mut engine = build_engine(&wl, 2, 1, budget, 2, "budget");
    for week in 2..wl.config().weeks {
        engine.append(&wl.input_range(week, week + 1)).unwrap();
    }
    let cold_dir = cold_layout(&wl, wl.config().weeks, 2, "budget_cold");
    let cold_src = ShardedSource::open(&cold_dir).unwrap();
    let cold = basic_search(
        &cold_src,
        &wl.region_space,
        &cost,
        &config_for(1, budget),
        wl.items.len(),
    )
    .unwrap();
    assert_same_result(&engine.search_result(), &cold, "budget");
    std::fs::remove_dir_all(engine.dir()).ok();
    std::fs::remove_dir_all(&cold_dir).ok();
}

/// Train one named builder over `src`; deterministic snapshot bytes.
fn snapshot_bytes(
    builder: &str,
    src: &dyn TrainingSource,
    wl: &StreamWorkload,
    threads: usize,
) -> Vec<u8> {
    let config = config_for(threads, f64::INFINITY);
    let cost = UniformCellCost { rate: 1.0 };
    let tc = TreeConfig {
        max_depth: 2,
        min_node_items: 20,
        max_numeric_splits: 4,
        ..TreeConfig::default()
    };
    let cc = CubeConfig { min_subset_size: 10 };
    let n_items = wl.items.len();
    let mb = ModelBuilder::new(src, wl.items.clone());
    let mb = match builder {
        "basic" => mb.basic(
            basic_search(src, &wl.region_space, &cost, &config, n_items)
                .unwrap()
                .report()
                .expect("basic search found a region"),
        ),
        "basic_linear" => mb.basic(
            basic_search_linear(
                src,
                &wl.region_space,
                &cost,
                &config,
                n_items,
                LinearCriterion {
                    cost_weight: 1.0,
                    coverage_weight: 10.0,
                },
            )
            .unwrap()
            .report()
            .expect("linear search found a region"),
        ),
        "tree_naive" => mb.tree(
            build_naive_tree(src, &wl.region_space, &wl.items, None, &config, &tc).unwrap(),
        ),
        "tree_rainforest" => mb.tree(
            build_rainforest(src, &wl.region_space, &wl.items, None, &config, &tc).unwrap(),
        ),
        "cube_naive" => mb.cube(
            build_naive_cube(
                src,
                &wl.region_space,
                &wl.item_space,
                &wl.item_coords,
                &config,
                &cc,
            )
            .unwrap(),
            0.95,
        ),
        "cube_single_scan" => mb.cube(
            build_single_scan_cube(
                src,
                &wl.region_space,
                &wl.item_space,
                &wl.item_coords,
                &config,
                &cc,
            )
            .unwrap(),
            0.95,
        ),
        "cube_optimized" => mb.cube(
            build_optimized_cube(
                src,
                &wl.region_space,
                &wl.item_space,
                &wl.item_coords,
                &config,
                &cc,
            )
            .unwrap(),
            0.95,
        ),
        other => panic!("unknown builder {other}"),
    };
    let model = mb.build().unwrap();
    let path = std::env::temp_dir().join(format!("bw_stream_snap_{builder}_{threads}.bwsn"));
    model.save(&path).unwrap();
    let bytes = std::fs::read(&path).unwrap();
    std::fs::remove_file(&path).ok();
    bytes
}

/// Satellite property: every one of the seven model builders produces
/// byte-identical snapshots from the streamed layout and from a cold
/// rebuild, at shards {1,2,4} × threads {1,2,4}.
#[test]
fn all_seven_builders_match_cold_rebuild() {
    const BUILDERS: [&str; 7] = [
        "basic",
        "basic_linear",
        "tree_naive",
        "tree_rainforest",
        "cube_naive",
        "cube_single_scan",
        "cube_optimized",
    ];
    let wl = build_stream_workload(&StreamConfig::default());
    let weeks = wl.config().weeks;
    for shards in [1usize, 2, 4] {
        let tag = format!("builders_{shards}");
        let mut engine = build_engine(&wl, 3, 1, f64::INFINITY, shards, &tag);
        for week in 3..weeks {
            engine.append(&wl.input_range(week, week + 1)).unwrap();
        }
        let streamed = ShardedSource::open(engine.dir()).unwrap();
        let cold_dir = cold_layout(&wl, weeks, shards, &format!("builders_cold_{shards}"));
        let cold = ShardedSource::open(&cold_dir).unwrap();
        for builder in BUILDERS {
            for threads in [1usize, 2, 4] {
                let a = snapshot_bytes(builder, &streamed, &wl, threads);
                let b = snapshot_bytes(builder, &cold, &wl, threads);
                assert_eq!(
                    a, b,
                    "snapshot mismatch: builder={builder} shards={shards} threads={threads}"
                );
            }
        }
        std::fs::remove_dir_all(engine.dir()).ok();
        std::fs::remove_dir_all(&cold_dir).ok();
    }
}

/// Satellite property: the drift report is deterministic — same seed
/// and append sequence produce the same flip events and the same
/// counter totals — and the planted late bellwether actually flips the
/// argmin when its week opens.
#[test]
fn drift_report_is_deterministic() {
    let cfg = StreamConfig::default();
    let run = |tag: &str| {
        let wl = build_stream_workload(&cfg);
        let registry = Arc::new(Registry::new());
        let config = BellwetherConfig::builder(f64::INFINITY)
            .min_coverage(0.0)
            .min_examples(10)
            .error_measure(ErrorMeasure::TrainingSet)
            .parallelism(Parallelism::fixed(2))
            .recorder(registry.clone() as Arc<dyn Recorder>)
            .build()
            .unwrap();
        let mut engine = StreamingBellwether::create(
            &tmp_dir(tag),
            &wl.region_space,
            &wl.input_range(0, 1),
            &wl.item_universe(),
            wl.items.clone(),
            wl.target_map(),
            wl.regions.clone(),
            Arc::new(UniformCellCost { rate: 1.0 }),
            config,
            wl.items.len(),
            2,
            1 << 20,
        )
        .unwrap();
        for week in 1..cfg.weeks {
            engine.append(&wl.input_range(week, week + 1)).unwrap();
        }
        let drift = engine.drift_log().to_vec();
        let snap = registry.snapshot();
        let mut counters = snap.counters;
        counters.sort_by(|a, b| a.0.cmp(&b.0));
        std::fs::remove_dir_all(engine.dir()).ok();
        (drift, counters)
    };
    let (drift_a, counters_a) = run("drift_a");
    let (drift_b, counters_b) = run("drift_b");
    assert_eq!(drift_a, drift_b, "drift log must be deterministic");
    assert_eq!(counters_a, counters_b, "counter totals must be deterministic");

    // The planted flip: a leaf-1 ("L1") region takes over once its
    // opening week enters the stream.
    assert!(!drift_a.is_empty(), "expected at least one drift event");
    let flip = drift_a
        .iter()
        .find(|e| e.to_label.as_deref().is_some_and(|l| l.contains("L1")))
        .expect("late bellwether must win the argmin");
    assert_eq!(
        flip.append_seq,
        cfg.open_week as u64,
        "flip lands on the append that opens the late bellwether"
    );
    let appends = counters_a
        .iter()
        .find(|(n, _)| n == "stream/appends")
        .map(|(_, v)| *v);
    assert_eq!(appends, Some((cfg.weeks - 1) as u64));
    let flips = counters_a
        .iter()
        .find(|(n, _)| n == "stream/drift_events")
        .map(|(_, v)| *v);
    assert_eq!(flips, Some(drift_a.len() as u64));
    assert!(
        counters_a.iter().any(|(n, v)| n == "stream/regions_rescored" && *v > 0),
        "re-scoring must be counted"
    );
    assert!(
        counters_a
            .iter()
            .any(|(n, v)| n == "storage/cache_invalidations" && *v > 0),
        "cache invalidations must be counted"
    );
}

/// A failed append (shape mismatch) leaves every layer untouched.
#[test]
fn failed_appends_leave_the_engine_unchanged() {
    let wl = build_stream_workload(&StreamConfig::default());
    let mut engine = build_engine(&wl, 4, 1, f64::INFINITY, 2, "failfast");
    let before = engine.search_result();
    let gen = engine.generation();

    let mut bad = wl.input_range(4, 5);
    bad.measures.truncate(1); // wrong measure count
    assert!(engine.append(&bad).is_err());
    assert_eq!(engine.appends(), 0, "failed append not counted");
    assert_eq!(engine.generation(), gen);
    assert_same_result(&engine.search_result(), &before, "after failed append");

    // The stream still works after the rejection.
    engine.append(&wl.input_range(4, 5)).unwrap();
    assert_eq!(engine.appends(), 1);
    std::fs::remove_dir_all(engine.dir()).ok();
}
