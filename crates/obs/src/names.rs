//! Canonical metric names shared across the workspace.
//!
//! Counters and spans are addressed by string name; these constants keep
//! the storage readers, the CUBE kernel and the search/tree/cube
//! builders pointing at the same entries so a single [`crate::Registry`]
//! sees the whole pipeline.

/// Region reads performed by a training source.
pub const STORAGE_REGIONS_READ: &str = "storage/regions_read";
/// Bytes read by a training source.
pub const STORAGE_BYTES_READ: &str = "storage/bytes_read";
/// Training examples read by a training source.
pub const STORAGE_EXAMPLES_READ: &str = "storage/examples_read";
/// Region blocks written by a training writer.
pub const STORAGE_REGIONS_WRITTEN: &str = "storage/regions_written";
/// Bytes written by a training writer.
pub const STORAGE_BYTES_WRITTEN: &str = "storage/bytes_written";
/// Region reads served from the decoded-block cache.
pub const STORAGE_CACHE_HITS: &str = "storage/cache_hits";
/// Region reads the decoded-block cache had to forward to its inner
/// source.
pub const STORAGE_CACHE_MISSES: &str = "storage/cache_misses";
/// Decoded blocks evicted by the cache's byte budget.
pub const STORAGE_CACHE_EVICTIONS: &str = "storage/cache_evictions";
/// Cached blocks dropped by an explicit `invalidate_regions` call
/// (dirty-region invalidation after an append).
pub const STORAGE_CACHE_INVALIDATIONS: &str = "storage/cache_invalidations";
/// Region reads retried after a transient failure.
pub const STORAGE_RETRIES: &str = "storage/retries";
/// Region blocks whose checksum (or structure) failed validation.
pub const STORAGE_CORRUPT_BLOCKS: &str = "storage/corrupt_blocks";
/// Faults injected by a `FaultySource` (transient errors, corruption,
/// latency).
pub const STORAGE_FAULTS_INJECTED: &str = "storage/faults_injected";

/// Region indices dropped by a `SkipUnreadable` scan policy.
pub const SCAN_REGIONS_SKIPPED: &str = "scan/regions_skipped";

/// Shard files opened through a sharded manifest.
pub const SHARD_SHARDS_OPENED: &str = "shard/shards_opened";
/// Region reads routed through a sharded source to one of its shards.
pub const SHARD_READS: &str = "shard/reads";
/// Sorted state runs the external CUBE pass spilled to temp files.
pub const SHARD_SPILLS: &str = "shard/spills";
/// Bytes written to external-CUBE spill files.
pub const SHARD_SPILL_BYTES: &str = "shard/spill_bytes";
/// Runs (spilled + resident) k-way-merged by the external CUBE pass.
pub const SHARD_RUNS_MERGED: &str = "shard/runs_merged";

/// Fact rows scanned by the CUBE pass (phase 1).
pub const CUBE_PASS_ROWS_SCANNED: &str = "cube_pass/rows_scanned";
/// Distinct base cells after phase-1 merging.
pub const CUBE_PASS_BASE_CELLS: &str = "cube_pass/base_cells";
/// Cell-state merge operations (phase 1b + phase 2).
pub const CUBE_PASS_CELL_MERGES: &str = "cube_pass/cell_merges";
/// Non-empty regions emitted by the rollup.
pub const CUBE_PASS_REGIONS_EMITTED: &str = "cube_pass/regions_emitted";

/// Candidate regions examined by the basic search.
pub const SEARCH_REGIONS_EVALUATED: &str = "search/regions_evaluated";
/// Regions that passed all constraints and fit a model.
pub const SEARCH_REPORTS: &str = "search/reports";

/// Linear-model fits performed by the algebraic error engine.
pub const LINREG_FITS: &str = "linreg/fits";
/// Cross-validation folds whose held-out RMSE was evaluated.
pub const LINREG_CV_FOLDS: &str = "linreg/cv_folds_evaluated";
/// Fits that needed a ridge to rescue a degenerate Gram matrix.
pub const LINREG_RIDGE_RESCUES: &str = "linreg/ridge_rescues";
/// Region evaluations served entirely from warm scratch buffers
/// (no heap allocation).
pub const LINREG_SCRATCH_REUSES: &str = "linreg/scratch_reuses";
/// Region evaluations that had to grow a scratch buffer (allocation;
/// expected only during warm-up).
pub const LINREG_SCRATCH_GROWS: &str = "linreg/scratch_grows";

/// Nodes constructed by a bellwether tree builder.
pub const TREE_NODES: &str = "tree/nodes";
/// Cells emitted by a bellwether cube builder.
pub const CUBE_CELLS: &str = "cube/cells_emitted";
/// CV folds that produced a usable predictor in `evaluate_method`.
pub const PREDICT_FOLDS: &str = "predict/folds";
/// Individual item predictions scored by `evaluate_method`.
pub const PREDICT_PREDICTIONS: &str = "predict/predictions";

/// HTTP requests handled by a prediction server (all endpoints).
pub const SERVE_REQUESTS: &str = "serve/requests";
/// Prediction batches (one `/predict` request = one batch).
pub const SERVE_BATCHES: &str = "serve/batches";
/// Individual predictions answered by `/predict` batches.
pub const SERVE_PREDICTIONS: &str = "serve/predictions";
/// Requests answered with an error status (4xx/5xx), plus connections
/// dropped mid-request.
pub const SERVE_ERRORS: &str = "serve/errors";
/// TCP connections accepted by a prediction server.
pub const SERVE_CONNECTIONS: &str = "serve/connections";
/// Gauge: p50 request latency in microseconds (set on `/metrics`).
pub const SERVE_LATENCY_P50_US: &str = "serve/latency_p50_us";
/// Gauge: p99 request latency in microseconds (set on `/metrics`).
pub const SERVE_LATENCY_P99_US: &str = "serve/latency_p99_us";
/// Gauge: connections queued for a worker right now.
pub const SERVE_QUEUE_DEPTH: &str = "serve/queue_depth";
/// Connections rejected with 503 because the worker queue was full.
pub const SERVE_REJECTED_BUSY: &str = "serve/rejected_busy";
/// Model snapshots hot-swapped into a live server via `POST /reload`.
pub const SERVE_RELOADS: &str = "serve/reloads";
/// Gauge: seconds since the server started (set on `/metrics`).
pub const SERVE_UPTIME_SECONDS: &str = "serve/uptime_seconds";

/// Fact-row append batches applied to a streaming engine.
pub const STREAM_APPENDS: &str = "stream/appends";
/// Candidate regions whose sufficient statistics changed under an
/// append (the dirty set).
pub const STREAM_REGIONS_DIRTIED: &str = "stream/regions_dirtied";
/// Dirty regions actually re-scored after an append (dirty minus the
/// over-budget candidates the search would never read).
pub const STREAM_REGIONS_RESCORED: &str = "stream/regions_rescored";
/// Bellwether drift events: appends after which the argmin region
/// flipped.
pub const STREAM_DRIFT_EVENTS: &str = "stream/drift_events";

/// Worker processes (or simulated workers) spawned by a coordinator,
/// including restarts.
pub const COORD_WORKERS_SPAWNED: &str = "coord/workers_spawned";
/// Workers respawned after a transport incident (crash, timeout,
/// corrupt frame).
pub const COORD_WORKER_RESTARTS: &str = "coord/worker_restarts";
/// Transport incidents classified as worker death (closed stream).
pub const COORD_WORKER_CRASHES: &str = "coord/worker_crashes";
/// Transport incidents classified as missed reply deadlines.
pub const COORD_WORKER_TIMEOUTS: &str = "coord/worker_timeouts";
/// Frames rejected by the coordinator's checksum/structure validation.
pub const COORD_CORRUPT_FRAMES: &str = "coord/corrupt_frames";
/// Request frames sent to workers.
pub const COORD_FRAMES_SENT: &str = "coord/frames_sent";
/// Response frames received and validated from workers.
pub const COORD_FRAMES_RECEIVED: &str = "coord/frames_received";
/// Region reads served through the coordinator.
pub const COORD_READS: &str = "coord/reads";
/// Shards declared dead after their restart budget was exhausted.
pub const COORD_SHARDS_DEAD: &str = "coord/shards_dead";
/// Heartbeat pings acknowledged by workers.
pub const COORD_HEARTBEATS: &str = "coord/heartbeats";
