//! Metric handles, the named registry and the `Recorder` sink trait.

use crate::snapshot::{MetricsSnapshot, SpanStat};
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, Mutex, MutexGuard};

/// A monotonic counter handle. Clones share the underlying atomic, so a
/// handle can be hoisted out of hot loops and incremented without any
/// name lookup or lock.
#[derive(Debug, Clone, Default)]
pub struct Counter(Arc<AtomicU64>);

impl Counter {
    /// A fresh, detached counter (not registered anywhere).
    pub fn new() -> Counter {
        Counter::default()
    }

    /// Add `n`.
    #[inline]
    pub fn add(&self, n: u64) {
        self.0.fetch_add(n, Ordering::Relaxed);
    }

    /// Add 1.
    #[inline]
    pub fn inc(&self) {
        self.add(1);
    }

    /// Current value.
    pub fn get(&self) -> u64 {
        self.0.load(Ordering::Relaxed)
    }

    /// Reset to zero (between experiment phases).
    pub fn reset(&self) {
        self.0.store(0, Ordering::Relaxed);
    }
}

/// A last-value-wins gauge holding an `f64` (stored as bits in an
/// atomic). Clones share the underlying value.
#[derive(Debug, Clone, Default)]
pub struct Gauge(Arc<AtomicU64>);

impl Gauge {
    /// A fresh, detached gauge.
    pub fn new() -> Gauge {
        Gauge::default()
    }

    /// Set the value.
    #[inline]
    pub fn set(&self, v: f64) {
        self.0.store(v.to_bits(), Ordering::Relaxed);
    }

    /// Current value.
    pub fn get(&self) -> f64 {
        f64::from_bits(self.0.load(Ordering::Relaxed))
    }
}

/// Per-path span aggregate.
#[derive(Debug, Default, Clone)]
struct SpanAgg {
    calls: u64,
    total_nanos: u64,
}

/// The dynamic metrics sink every instrumented algorithm writes to.
///
/// The contract that keeps instrumentation free when disabled: callers
/// gate span timing (and any `format!` path construction) on
/// [`Recorder::enabled`], and only publish counters at *phase*
/// granularity — workers accumulate locally and add once. The no-op
/// implementation therefore costs one branch per phase.
pub trait Recorder: Send + Sync + std::fmt::Debug {
    /// Whether this recorder keeps anything. `false` lets callers skip
    /// timing and path formatting entirely.
    fn enabled(&self) -> bool {
        true
    }

    /// Add `delta` to the named monotonic counter.
    fn add(&self, name: &str, delta: u64);

    /// Set the named gauge.
    fn set_gauge(&self, name: &str, value: f64);

    /// Record one completed span occurrence of `nanos` under `path`
    /// (hierarchical by `/` segments).
    fn record_span(&self, path: &str, nanos: u64);
}

/// The default recorder: keeps nothing, reports `enabled() == false`.
#[derive(Debug, Clone, Copy, Default)]
pub struct NoopRecorder;

impl Recorder for NoopRecorder {
    fn enabled(&self) -> bool {
        false
    }

    fn add(&self, _name: &str, _delta: u64) {}

    fn set_gauge(&self, _name: &str, _value: f64) {}

    fn record_span(&self, _path: &str, _nanos: u64) {}
}

/// A small first-seen-ordered name → value store. Metric cardinality is
/// tens of entries, so linear search beats a hash map here and the
/// registration order doubles as a stable report order.
#[derive(Debug, Default)]
struct NamedMap<T>(Vec<(String, T)>);

impl<T: Default> NamedMap<T> {
    fn get_or_create(&mut self, name: &str) -> &mut T {
        if let Some(i) = self.0.iter().position(|(n, _)| n == name) {
            return &mut self.0[i].1;
        }
        self.0.push((name.to_string(), T::default()));
        &mut self.0.last_mut().expect("just pushed").1
    }
}

/// The named metrics store: counters, gauges and span aggregates, each
/// in first-registration order. Cheap to share (`Arc`), thread-safe,
/// and a [`Recorder`] in its own right.
#[derive(Debug, Default)]
pub struct Registry {
    counters: Mutex<NamedMap<Counter>>,
    gauges: Mutex<NamedMap<Gauge>>,
    spans: Mutex<NamedMap<SpanAgg>>,
}

impl Registry {
    /// A fresh registry.
    pub fn new() -> Registry {
        Registry::default()
    }

    /// A fresh registry behind an `Arc`, for sharing across sources,
    /// kernels and configs.
    pub fn shared() -> Arc<Registry> {
        Arc::new(Registry::new())
    }

    fn lock<T>(m: &Mutex<T>) -> MutexGuard<'_, T> {
        m.lock().unwrap_or_else(|e| e.into_inner())
    }

    /// Get or create the named counter, returning a shared handle.
    pub fn counter(&self, name: &str) -> Counter {
        Self::lock(&self.counters).get_or_create(name).clone()
    }

    /// Get or create the named gauge, returning a shared handle.
    pub fn gauge(&self, name: &str) -> Gauge {
        Self::lock(&self.gauges).get_or_create(name).clone()
    }

    /// Point-in-time copy of every metric.
    pub fn snapshot(&self) -> MetricsSnapshot {
        let counters = Self::lock(&self.counters)
            .0
            .iter()
            .map(|(n, c)| (n.clone(), c.get()))
            .collect();
        let gauges = Self::lock(&self.gauges)
            .0
            .iter()
            .map(|(n, g)| (n.clone(), g.get()))
            .collect();
        let spans = Self::lock(&self.spans)
            .0
            .iter()
            .map(|(p, s)| SpanStat {
                path: p.clone(),
                calls: s.calls,
                total_nanos: s.total_nanos,
            })
            .collect();
        MetricsSnapshot {
            counters,
            gauges,
            spans,
        }
    }

    /// Zero every counter and drop all span aggregates (between
    /// experiment phases). Existing counter handles stay bound.
    pub fn reset(&self) {
        for (_, c) in &Self::lock(&self.counters).0 {
            c.reset();
        }
        Self::lock(&self.spans).0.clear();
    }
}

impl Recorder for Registry {
    fn add(&self, name: &str, delta: u64) {
        Self::lock(&self.counters).get_or_create(name).add(delta);
    }

    fn set_gauge(&self, name: &str, value: f64) {
        Self::lock(&self.gauges).get_or_create(name).set(value);
    }

    fn record_span(&self, path: &str, nanos: u64) {
        let mut spans = Self::lock(&self.spans);
        let agg = spans.get_or_create(path);
        agg.calls += 1;
        agg.total_nanos += nanos;
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn counter_handles_share_state() {
        let reg = Registry::new();
        let a = reg.counter("x");
        let b = reg.counter("x");
        a.add(3);
        b.inc();
        assert_eq!(reg.counter("x").get(), 4);
        assert_eq!(reg.snapshot().counter("x"), Some(4));
    }

    #[test]
    fn counter_atomic_under_scoped_fanout() {
        let reg = Registry::shared();
        let handle = reg.counter("fanout");
        std::thread::scope(|s| {
            for _ in 0..8 {
                let c = handle.clone();
                let reg = Arc::clone(&reg);
                s.spawn(move || {
                    for _ in 0..5_000 {
                        c.inc();
                    }
                    // half the traffic goes through the named path
                    reg.add("fanout", 5_000);
                });
            }
        });
        assert_eq!(reg.counter("fanout").get(), 8 * 10_000);
    }

    #[test]
    fn gauge_last_value_wins() {
        let reg = Registry::new();
        reg.set_gauge("g", 1.5);
        reg.set_gauge("g", -2.25);
        assert_eq!(reg.gauge("g").get(), -2.25);
        assert_eq!(reg.snapshot().gauge("g"), Some(-2.25));
    }

    #[test]
    fn reset_zeroes_but_keeps_bindings() {
        let reg = Registry::new();
        let c = reg.counter("c");
        c.add(9);
        reg.record_span("s", 100);
        reg.reset();
        assert_eq!(c.get(), 0);
        assert!(reg.snapshot().spans.is_empty());
        c.add(2); // handle still bound to the registry entry
        assert_eq!(reg.snapshot().counter("c"), Some(2));
    }

    #[test]
    fn noop_recorder_is_disabled_and_silent() {
        let n = NoopRecorder;
        assert!(!n.enabled());
        n.add("x", 1);
        n.set_gauge("y", 2.0);
        n.record_span("z", 3);
    }

    #[test]
    fn registration_order_is_first_seen() {
        let reg = Registry::new();
        reg.add("b", 1);
        reg.add("a", 1);
        reg.add("b", 1);
        let snap = reg.snapshot();
        let names: Vec<&str> = snap.counters.iter().map(|(n, _)| n.as_str()).collect();
        assert_eq!(names, vec!["b", "a"]);
    }
}
