//! Drop-guard span timer and the [`span!`] convenience macro.

use crate::registry::Recorder;
use std::time::Instant;

/// A scope timer: records elapsed wall-clock nanos under its path when
/// dropped. Construct via [`crate::span!`] (which skips timing entirely
/// when the recorder is disabled) or [`Span::start`].
#[derive(Debug)]
#[must_use = "a span records on drop; binding it to `_` drops it immediately"]
pub struct Span<'a> {
    rec: &'a dyn Recorder,
    path: String,
    start: Option<Instant>,
}

impl<'a> Span<'a> {
    /// Start timing a span that records under `path` on drop.
    pub fn start(rec: &'a dyn Recorder, path: String) -> Span<'a> {
        Span {
            rec,
            path,
            start: Some(Instant::now()),
        }
    }

    /// An inert span that records nothing (used when the recorder is
    /// disabled so both `span!` arms have the same type).
    pub fn disabled(rec: &'a dyn Recorder) -> Span<'a> {
        Span {
            rec,
            path: String::new(),
            start: None,
        }
    }

    /// The path this span records under (empty for disabled spans).
    pub fn path(&self) -> &str {
        &self.path
    }
}

impl Drop for Span<'_> {
    fn drop(&mut self) {
        if let Some(started) = self.start {
            let nanos = started.elapsed().as_nanos().min(u64::MAX as u128) as u64;
            self.rec.record_span(&self.path, nanos);
        }
    }
}

/// Time the enclosing scope under a formatted path:
///
/// ```
/// use bellwether_obs::{span, Registry};
///
/// let reg = Registry::shared();
/// {
///     let _guard = span!(reg, "tree/rainforest/level{}", 0);
/// }
/// assert_eq!(reg.snapshot().spans[0].path, "tree/rainforest/level0");
/// ```
///
/// The first argument is anything that derefs to a [`Recorder`]
/// (`&Registry`, `Arc<Registry>`, `&Arc<dyn Recorder>`, ...). When the
/// recorder is disabled the path is never formatted and no clock is
/// read — the whole macro is one branch.
#[macro_export]
macro_rules! span {
    ($rec:expr, $($fmt:tt)+) => {{
        let __rec: &dyn $crate::Recorder = &*$rec;
        if __rec.enabled() {
            $crate::Span::start(__rec, format!($($fmt)+))
        } else {
            $crate::Span::disabled(__rec)
        }
    }};
}

#[cfg(test)]
mod tests {
    use crate::{NoopRecorder, Recorder, Registry};

    #[test]
    fn span_records_on_drop_with_nesting_order() {
        let reg = Registry::shared();
        {
            let _outer = span!(reg, "a");
            {
                let _inner = span!(reg, "a/b");
                std::thread::sleep(std::time::Duration::from_millis(2));
            }
        }
        let snap = reg.snapshot();
        // Inner scope exits first, so it registers first.
        assert_eq!(snap.spans[0].path, "a/b");
        assert_eq!(snap.spans[1].path, "a");
        assert_eq!(snap.spans[0].calls, 1);
        assert_eq!(snap.spans[1].calls, 1);
        // The outer span strictly contains the inner one.
        assert!(snap.spans[1].total_nanos >= snap.spans[0].total_nanos);
        assert!(snap.spans[0].total_nanos > 0);
    }

    #[test]
    fn repeated_spans_aggregate_calls() {
        let reg = Registry::shared();
        for i in 0..3 {
            let _g = span!(reg, "loop/iter");
            let _ = i;
        }
        let snap = reg.snapshot();
        assert_eq!(snap.spans.len(), 1);
        assert_eq!(snap.spans[0].calls, 3);
    }

    #[test]
    fn disabled_recorder_skips_formatting_and_recording() {
        // The format arguments must not be evaluated when disabled.
        fn boom() -> String {
            panic!("formatted while disabled")
        }
        let noop = NoopRecorder;
        let g = span!(&noop, "never/{}", boom());
        assert_eq!(g.path(), "");
    }

    #[test]
    fn works_through_arc_dyn_recorder() {
        let reg = Registry::shared();
        let rec: std::sync::Arc<dyn Recorder> = reg.clone();
        {
            let _g = span!(rec, "dyn/path");
        }
        assert_eq!(reg.snapshot().spans[0].path, "dyn/path");
    }
}
