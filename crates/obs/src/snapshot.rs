//! Point-in-time metric snapshots: named accessors, JSON export and a
//! rendered span tree.

use crate::names;

/// Aggregate timing for one span path.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct SpanStat {
    /// Hierarchical path (`/`-separated), e.g. `cube_pass/phase1_scan`.
    pub path: String,
    /// Number of completed occurrences.
    pub calls: u64,
    /// Total wall-clock time across all occurrences, in nanoseconds.
    pub total_nanos: u64,
}

impl SpanStat {
    /// Total wall-clock time in seconds.
    pub fn total_secs(&self) -> f64 {
        self.total_nanos as f64 / 1e9
    }
}

/// A point-in-time copy of a [`crate::Registry`]: every counter, gauge
/// and span aggregate in first-registration order.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct MetricsSnapshot {
    /// Counter values by name.
    pub counters: Vec<(String, u64)>,
    /// Gauge values by name.
    pub gauges: Vec<(String, f64)>,
    /// Span aggregates by path (in first-completion order).
    pub spans: Vec<SpanStat>,
}

impl MetricsSnapshot {
    /// Look up a counter by name.
    pub fn counter(&self, name: &str) -> Option<u64> {
        self.counters
            .iter()
            .find(|(n, _)| n == name)
            .map(|(_, v)| *v)
    }

    /// Look up a gauge by name.
    pub fn gauge(&self, name: &str) -> Option<f64> {
        self.gauges
            .iter()
            .find(|(n, _)| n == name)
            .map(|(_, v)| *v)
    }

    /// Look up a span aggregate by exact path.
    pub fn span(&self, path: &str) -> Option<&SpanStat> {
        self.spans.iter().find(|s| s.path == path)
    }

    fn counter_or_zero(&self, name: &str) -> u64 {
        self.counter(name).unwrap_or(0)
    }

    /// Region reads performed by training sources
    /// ([`names::STORAGE_REGIONS_READ`]).
    pub fn regions_read(&self) -> u64 {
        self.counter_or_zero(names::STORAGE_REGIONS_READ)
    }

    /// Bytes read by training sources ([`names::STORAGE_BYTES_READ`]).
    pub fn bytes_read(&self) -> u64 {
        self.counter_or_zero(names::STORAGE_BYTES_READ)
    }

    /// Training examples read ([`names::STORAGE_EXAMPLES_READ`]).
    pub fn examples_read(&self) -> u64 {
        self.counter_or_zero(names::STORAGE_EXAMPLES_READ)
    }

    /// Region blocks written ([`names::STORAGE_REGIONS_WRITTEN`]).
    pub fn regions_written(&self) -> u64 {
        self.counter_or_zero(names::STORAGE_REGIONS_WRITTEN)
    }

    /// Bytes written ([`names::STORAGE_BYTES_WRITTEN`]).
    pub fn bytes_written(&self) -> u64 {
        self.counter_or_zero(names::STORAGE_BYTES_WRITTEN)
    }

    /// Region reads served from the decoded-block cache
    /// ([`names::STORAGE_CACHE_HITS`]).
    pub fn cache_hits(&self) -> u64 {
        self.counter_or_zero(names::STORAGE_CACHE_HITS)
    }

    /// Region reads the cache forwarded to its inner source
    /// ([`names::STORAGE_CACHE_MISSES`]).
    pub fn cache_misses(&self) -> u64 {
        self.counter_or_zero(names::STORAGE_CACHE_MISSES)
    }

    /// Decoded blocks evicted under the cache's byte budget
    /// ([`names::STORAGE_CACHE_EVICTIONS`]).
    pub fn cache_evictions(&self) -> u64 {
        self.counter_or_zero(names::STORAGE_CACHE_EVICTIONS)
    }

    /// Region reads retried after a transient failure
    /// ([`names::STORAGE_RETRIES`]).
    pub fn retries(&self) -> u64 {
        self.counter_or_zero(names::STORAGE_RETRIES)
    }

    /// Region blocks that failed checksum or structural validation
    /// ([`names::STORAGE_CORRUPT_BLOCKS`]).
    pub fn corrupt_blocks(&self) -> u64 {
        self.counter_or_zero(names::STORAGE_CORRUPT_BLOCKS)
    }

    /// Faults injected by a `FaultySource`
    /// ([`names::STORAGE_FAULTS_INJECTED`]).
    pub fn faults_injected(&self) -> u64 {
        self.counter_or_zero(names::STORAGE_FAULTS_INJECTED)
    }

    /// Region indices dropped by a `SkipUnreadable` scan policy
    /// ([`names::SCAN_REGIONS_SKIPPED`]).
    pub fn regions_skipped(&self) -> u64 {
        self.counter_or_zero(names::SCAN_REGIONS_SKIPPED)
    }

    /// Fraction of cache lookups served from memory
    /// (`hits / (hits + misses)`; `0.0` before any lookup).
    pub fn cache_hit_rate(&self) -> f64 {
        let hits = self.cache_hits();
        let total = hits + self.cache_misses();
        if total == 0 {
            return 0.0;
        }
        hits as f64 / total as f64
    }

    /// Linear-model fits performed by the algebraic error engine
    /// ([`names::LINREG_FITS`]).
    pub fn fits(&self) -> u64 {
        self.counter_or_zero(names::LINREG_FITS)
    }

    /// Cross-validation folds whose held-out RMSE was evaluated
    /// ([`names::LINREG_CV_FOLDS`]).
    pub fn cv_folds_evaluated(&self) -> u64 {
        self.counter_or_zero(names::LINREG_CV_FOLDS)
    }

    /// Fits that needed a ridge to rescue a degenerate Gram matrix
    /// ([`names::LINREG_RIDGE_RESCUES`]).
    pub fn ridge_rescues(&self) -> u64 {
        self.counter_or_zero(names::LINREG_RIDGE_RESCUES)
    }

    /// Fact rows scanned by the CUBE pass
    /// ([`names::CUBE_PASS_ROWS_SCANNED`]).
    pub fn rows_scanned(&self) -> u64 {
        self.counter_or_zero(names::CUBE_PASS_ROWS_SCANNED)
    }

    /// Distinct base cells after phase-1 merging
    /// ([`names::CUBE_PASS_BASE_CELLS`]).
    pub fn base_cells(&self) -> u64 {
        self.counter_or_zero(names::CUBE_PASS_BASE_CELLS)
    }

    /// Cell-state merge operations ([`names::CUBE_PASS_CELL_MERGES`]).
    pub fn cell_merges(&self) -> u64 {
        self.counter_or_zero(names::CUBE_PASS_CELL_MERGES)
    }

    /// Non-empty regions emitted by the rollup
    /// ([`names::CUBE_PASS_REGIONS_EMITTED`]).
    pub fn regions_emitted(&self) -> u64 {
        self.counter_or_zero(names::CUBE_PASS_REGIONS_EMITTED)
    }

    /// Number of full-dataset scan equivalents the recorded region reads
    /// amount to, given the dataset has `num_regions` regions. The unit
    /// Lemma 1 and Lemma 2 bound.
    pub fn scan_equivalents(&self, num_regions: usize) -> f64 {
        if num_regions == 0 {
            return 0.0;
        }
        self.regions_read() as f64 / num_regions as f64
    }

    /// Serialize to pretty-printed JSON in the bench-report style:
    /// `{"counters": [{"name", "value"}...], "gauges": [...],
    /// "spans": [{"path", "calls", "total_secs"}...]}`.
    pub fn to_json(&self) -> String {
        let mut out = String::from("{\n  \"counters\": [");
        for (i, (name, value)) in self.counters.iter().enumerate() {
            if i > 0 {
                out.push(',');
            }
            out.push_str(&format!(
                "\n    {{\"name\": \"{}\", \"value\": {}}}",
                json_escape(name),
                value
            ));
        }
        out.push_str(if self.counters.is_empty() { "],\n" } else { "\n  ],\n" });
        out.push_str("  \"gauges\": [");
        for (i, (name, value)) in self.gauges.iter().enumerate() {
            if i > 0 {
                out.push(',');
            }
            out.push_str(&format!(
                "\n    {{\"name\": \"{}\", \"value\": {}}}",
                json_escape(name),
                json_f64(*value)
            ));
        }
        out.push_str(if self.gauges.is_empty() { "],\n" } else { "\n  ],\n" });
        out.push_str("  \"spans\": [");
        for (i, s) in self.spans.iter().enumerate() {
            if i > 0 {
                out.push(',');
            }
            out.push_str(&format!(
                "\n    {{\"path\": \"{}\", \"calls\": {}, \"total_secs\": {}}}",
                json_escape(&s.path),
                s.calls,
                json_f64(s.total_secs())
            ));
        }
        out.push_str(if self.spans.is_empty() { "]\n}" } else { "\n  ]\n}" });
        out
    }

    /// Render the spans as an indented tree (two spaces per `/` depth),
    /// synthesizing un-timed parent rows so `tree/rainforest/level0`
    /// nests under `tree/rainforest` even if only the leaf was timed.
    ///
    /// ```text
    /// cube_pass                          2 calls   0.012s
    ///   phase1_scan                      2 calls   0.007s
    /// ```
    pub fn render_span_tree(&self) -> String {
        // Ordered list of rows: (full path, Some(stat) if timed).
        let mut rows: Vec<(String, Option<&SpanStat>)> = Vec::new();
        for s in &self.spans {
            // Ensure every ancestor prefix has a row before the leaf.
            let mut prefix = String::new();
            for seg in s.path.split('/') {
                if !prefix.is_empty() {
                    prefix.push('/');
                }
                prefix.push_str(seg);
                if !rows.iter().any(|(p, _)| p == &prefix) {
                    rows.push((prefix.clone(), None));
                }
            }
            let slot = rows
                .iter_mut()
                .find(|(p, _)| p == &s.path)
                .expect("prefix loop inserted the full path");
            slot.1 = Some(s);
        }
        // Children must directly follow their parent; group by sorting
        // each row under its parent chain while keeping first-seen order
        // among siblings (rows were inserted parent-before-child above,
        // so a stable pass that pulls children behind parents suffices).
        let mut ordered: Vec<(String, Option<&SpanStat>)> = Vec::new();
        fn emit<'s>(
            parent: &str,
            rows: &[(String, Option<&'s SpanStat>)],
            ordered: &mut Vec<(String, Option<&'s SpanStat>)>,
        ) {
            for (path, stat) in rows {
                let is_child = match path.rsplit_once('/') {
                    Some((pre, _)) => pre == parent,
                    None => parent.is_empty(),
                };
                if is_child {
                    ordered.push((path.clone(), *stat));
                    emit(path, rows, ordered);
                }
            }
        }
        emit("", &rows, &mut ordered);

        let mut out = String::new();
        for (path, stat) in &ordered {
            let depth = path.matches('/').count();
            let label = path.rsplit('/').next().unwrap_or(path);
            let indent = "  ".repeat(depth);
            let name_col = format!("{indent}{label}");
            match stat {
                Some(s) => out.push_str(&format!(
                    "{:<40} {:>6} calls {:>10.4}s\n",
                    name_col,
                    s.calls,
                    s.total_secs()
                )),
                None => out.push_str(&format!("{name_col}\n")),
            }
        }
        out
    }
}

impl From<&crate::Registry> for MetricsSnapshot {
    fn from(reg: &crate::Registry) -> MetricsSnapshot {
        reg.snapshot()
    }
}

/// Escape a string for embedding in a JSON string literal.
fn json_escape(s: &str) -> String {
    let mut out = String::with_capacity(s.len());
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => out.push_str(&format!("\\u{:04x}", c as u32)),
            c => out.push(c),
        }
    }
    out
}

/// Format an `f64` as a JSON number (`null` for non-finite values),
/// guaranteeing a decimal point so the value parses back as a float.
fn json_f64(v: f64) -> String {
    if !v.is_finite() {
        return "null".to_string();
    }
    let s = format!("{v}");
    if s.contains('.') || s.contains('e') || s.contains('E') {
        s
    } else {
        format!("{s}.0")
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{Recorder, Registry};

    #[test]
    fn named_accessors_default_to_zero() {
        let snap = MetricsSnapshot::default();
        assert_eq!(snap.regions_read(), 0);
        assert_eq!(snap.rows_scanned(), 0);
        assert_eq!(snap.scan_equivalents(10), 0.0);
        assert_eq!(snap.scan_equivalents(0), 0.0);
    }

    #[test]
    fn named_accessors_read_canonical_names() {
        let reg = Registry::new();
        reg.add(names::STORAGE_REGIONS_READ, 12);
        reg.add(names::CUBE_PASS_ROWS_SCANNED, 4096);
        let snap = reg.snapshot();
        assert_eq!(snap.regions_read(), 12);
        assert_eq!(snap.rows_scanned(), 4096);
        assert_eq!(snap.scan_equivalents(4), 3.0);
    }

    #[test]
    fn linreg_engine_accessors() {
        let reg = Registry::new();
        reg.add(names::LINREG_FITS, 55);
        reg.add(names::LINREG_CV_FOLDS, 50);
        reg.add(names::LINREG_RIDGE_RESCUES, 2);
        let snap = reg.snapshot();
        assert_eq!(snap.fits(), 55);
        assert_eq!(snap.cv_folds_evaluated(), 50);
        assert_eq!(snap.ridge_rescues(), 2);
        assert_eq!(MetricsSnapshot::default().fits(), 0);
    }

    #[test]
    fn json_shape_is_well_formed() {
        let reg = Registry::new();
        reg.add("a/b", 7);
        reg.set_gauge("speed", 1.25);
        reg.record_span("a", 1_500_000_000);
        let json = reg.snapshot().to_json();
        assert!(json.starts_with('{') && json.ends_with('}'));
        assert!(json.contains("\"counters\""));
        assert!(json.contains("{\"name\": \"a/b\", \"value\": 7}"));
        assert!(json.contains("{\"name\": \"speed\", \"value\": 1.25}"));
        assert!(json.contains("\"path\": \"a\""));
        assert!(json.contains("\"calls\": 1"));
        assert!(json.contains("\"total_secs\": 1.5"));
        // Balanced braces/brackets as a cheap well-formedness check.
        assert_eq!(json.matches('{').count(), json.matches('}').count());
        assert_eq!(json.matches('[').count(), json.matches(']').count());
    }

    #[test]
    fn empty_snapshot_json_is_well_formed() {
        let json = MetricsSnapshot::default().to_json();
        assert!(json.contains("\"counters\": []"));
        assert!(json.contains("\"gauges\": []"));
        assert!(json.contains("\"spans\": []"));
    }

    #[test]
    fn json_escapes_and_non_finite_gauges() {
        let reg = Registry::new();
        reg.add("quo\"te", 1);
        reg.set_gauge("bad", f64::NAN);
        let json = reg.snapshot().to_json();
        assert!(json.contains("quo\\\"te"));
        assert!(json.contains("{\"name\": \"bad\", \"value\": null}"));
    }

    #[test]
    fn span_tree_nests_and_synthesizes_parents() {
        let reg = Registry::new();
        reg.record_span("tree/rainforest/level0", 5_000_000);
        reg.record_span("tree/rainforest/level1", 3_000_000);
        reg.record_span("cube_pass", 10_000_000);
        let tree = reg.snapshot().render_span_tree();
        let lines: Vec<&str> = tree.lines().collect();
        // Synthesized parents come first, children indented beneath.
        assert_eq!(lines[0], "tree");
        assert!(lines[1].starts_with("  rainforest"));
        assert!(lines[2].starts_with("    level0"));
        assert!(lines[3].starts_with("    level1"));
        assert!(lines[4].starts_with("cube_pass"));
        assert!(lines[2].contains("1 calls"));
    }
}
