//! # bellwether-obs
//!
//! The workspace-wide observability layer: a zero-dependency metrics
//! registry with named monotonic [`Counter`]s, [`Gauge`]s and
//! hierarchical span timers, cheap enough to stay on in release builds.
//!
//! Three layers, from hot to cold:
//!
//! * **Handles** — [`Counter`] / [`Gauge`] are `Arc<AtomicU64>` wrappers;
//!   holding one makes an increment a single relaxed atomic op, with no
//!   name lookup. The storage crate's `IoStats`/`CubeStats` are bundles
//!   of these handles.
//! * **[`Recorder`]** — the dynamic sink the algorithms talk to. The
//!   default [`NoopRecorder`] reports `enabled() == false`, so an
//!   instrumented kernel pays one branch per *phase* (never per row)
//!   when observability is off. [`Registry`] implements `Recorder`.
//! * **[`Registry`] / [`MetricsSnapshot`]** — the named store and its
//!   point-in-time copy, with hand-rolled JSON export (the build is
//!   offline; the shape matches the bench harness reports) and a
//!   rendered span tree for profiles.
//!
//! Span paths are hierarchical by `/` segments — `cube_pass/phase1_scan`
//! nests under `cube_pass` — and the [`span!`] macro produces a drop
//! guard that records elapsed wall-clock time on scope exit:
//!
//! ```
//! use bellwether_obs::{span, Recorder, Registry};
//!
//! let reg = Registry::shared();
//! {
//!     let _outer = span!(reg, "cube_pass");
//!     let _inner = span!(reg, "cube_pass/phase{}", 1);
//! } // guards drop here, recording both spans
//! reg.add("cube_pass/rows_scanned", 4096);
//! let snap = reg.snapshot();
//! assert_eq!(snap.counter("cube_pass/rows_scanned"), Some(4096));
//! println!("{}", snap.render_span_tree());
//! ```

#![warn(missing_docs)]

pub mod names;
mod registry;
mod snapshot;
mod span;

pub use registry::{Counter, Gauge, NoopRecorder, Recorder, Registry};
pub use snapshot::{MetricsSnapshot, SpanStat};
pub use span::Span;
