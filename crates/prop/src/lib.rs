//! # bellwether-prop
//!
//! A tiny, dependency-free randomized property-testing harness. The
//! build environment has no network access to crates.io, so `proptest`
//! cannot be vendored; this crate supplies the subset the workspace
//! actually needs: a deterministic RNG, value generators, and a case
//! runner that reports the failing case seed for reproduction.
//!
//! ```
//! use bellwether_prop::{check, Rng};
//!
//! check("addition commutes", 64, |rng| {
//!     let a = rng.i64_in(-100, 100);
//!     let b = rng.i64_in(-100, 100);
//!     assert_eq!(a + b, b + a);
//! });
//! ```

#![warn(missing_docs)]

/// SplitMix64 — tiny deterministic RNG, one u64 of state. The same
/// construction the workspace already uses for cross-validation fold
/// shuffling; duplicated here so dev-only code never links into the
/// library crates.
#[derive(Debug, Clone)]
pub struct Rng {
    state: u64,
}

impl Rng {
    /// Seeded generator.
    pub fn new(seed: u64) -> Self {
        Rng { state: seed }
    }

    /// Next raw 64-bit value.
    pub fn next_u64(&mut self) -> u64 {
        self.state = self.state.wrapping_add(0x9E37_79B9_7F4A_7C15);
        let mut z = self.state;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^ (z >> 31)
    }

    /// Uniform f64 in `[0, 1)`.
    pub fn f64(&mut self) -> f64 {
        (self.next_u64() >> 11) as f64 / (1u64 << 53) as f64
    }

    /// Uniform f64 in `[lo, hi)`.
    pub fn f64_in(&mut self, lo: f64, hi: f64) -> f64 {
        lo + (hi - lo) * self.f64()
    }

    /// Uniform usize in `[0, n)`. Panics if `n == 0`.
    pub fn below(&mut self, n: usize) -> usize {
        assert!(n > 0, "below(0)");
        (self.next_u64() % n as u64) as usize
    }

    /// Uniform usize in `[lo, hi)`.
    pub fn usize_in(&mut self, lo: usize, hi: usize) -> usize {
        lo + self.below(hi - lo)
    }

    /// Uniform i64 in `[lo, hi)`.
    pub fn i64_in(&mut self, lo: i64, hi: i64) -> i64 {
        lo + (self.next_u64() % (hi - lo) as u64) as i64
    }

    /// Uniform u32 in `[lo, hi)`.
    pub fn u32_in(&mut self, lo: u32, hi: u32) -> u32 {
        lo + (self.next_u64() % (hi - lo) as u64) as u32
    }

    /// Bernoulli with probability `p`.
    pub fn flip(&mut self, p: f64) -> bool {
        self.f64() < p
    }

    /// Uniform choice from a non-empty slice.
    pub fn choice<'a, T>(&mut self, xs: &'a [T]) -> &'a T {
        &xs[self.below(xs.len())]
    }

    /// A vector of `len ∈ [min_len, max_len)` elements drawn by `gen`.
    pub fn vec_of<T>(
        &mut self,
        min_len: usize,
        max_len: usize,
        mut gen: impl FnMut(&mut Rng) -> T,
    ) -> Vec<T> {
        let len = self.usize_in(min_len, max_len);
        (0..len).map(|_| gen(self)).collect()
    }

    /// Shuffle a slice in place (Fisher–Yates).
    pub fn shuffle<T>(&mut self, xs: &mut [T]) {
        for i in (1..xs.len()).rev() {
            let j = self.below(i + 1);
            xs.swap(i, j);
        }
    }
}

/// Run `cases` random test cases of `body`, each with a per-case seeded
/// [`Rng`]. On panic, re-raises with the property name and case seed so
/// the failure reproduces with `Rng::new(seed)`.
pub fn check(name: &str, cases: u64, body: impl Fn(&mut Rng)) {
    // Derive per-case seeds from the property name so distinct
    // properties explore distinct streams.
    let name_hash = name
        .bytes()
        .fold(0xcbf2_9ce4_8422_2325u64, |h, b| {
            (h ^ b as u64).wrapping_mul(0x1000_0000_01b3)
        });
    for case in 0..cases {
        let seed = name_hash ^ (case.wrapping_mul(0x9E37_79B9_7F4A_7C15));
        let result = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
            let mut rng = Rng::new(seed);
            body(&mut rng);
        }));
        if let Err(payload) = result {
            let msg = payload
                .downcast_ref::<&str>()
                .map(|s| s.to_string())
                .or_else(|| payload.downcast_ref::<String>().cloned())
                .unwrap_or_else(|| "<non-string panic>".into());
            panic!("property {name:?} failed on case {case} (seed {seed:#x}): {msg}");
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn deterministic_per_seed() {
        let mut a = Rng::new(42);
        let mut b = Rng::new(42);
        for _ in 0..100 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
    }

    #[test]
    fn ranges_respected() {
        let mut r = Rng::new(7);
        for _ in 0..1000 {
            assert!((0.0..1.0).contains(&r.f64()));
            let x = r.f64_in(-3.0, 5.0);
            assert!((-3.0..5.0).contains(&x));
            assert!(r.below(7) < 7);
            let y = r.i64_in(-10, 10);
            assert!((-10..10).contains(&y));
            let z = r.u32_in(2, 9);
            assert!((2..9).contains(&z));
        }
    }

    #[test]
    fn check_runs_all_cases() {
        let counter = std::sync::atomic::AtomicU64::new(0);
        check("counting", 10, |_| {
            counter.fetch_add(1, std::sync::atomic::Ordering::Relaxed);
        });
        assert_eq!(counter.load(std::sync::atomic::Ordering::Relaxed), 10);
    }

    #[test]
    #[should_panic(expected = "property \"always fails\" failed on case 0")]
    fn check_reports_failing_seed() {
        check("always fails", 5, |_| panic!("boom"));
    }

    #[test]
    fn shuffle_permutes() {
        let mut r = Rng::new(3);
        let mut xs: Vec<u32> = (0..50).collect();
        r.shuffle(&mut xs);
        let mut sorted = xs.clone();
        sorted.sort_unstable();
        assert_eq!(sorted, (0..50).collect::<Vec<_>>());
    }
}
