//! Minimal JSON parsing for request bodies — the workspace is
//! dependency-free, so the few shapes the server accepts are parsed by
//! a small total recursive-descent parser rather than a serde stack.
//!
//! Accepts standard JSON with arbitrary nesting (bounded), rejects
//! trailing garbage, and never panics on malformed input.

use std::collections::BTreeMap;

/// A parsed JSON value.
#[derive(Debug, Clone, PartialEq)]
pub enum Value {
    /// `null`.
    Null,
    /// `true` / `false`.
    Bool(bool),
    /// A number that parsed exactly as a 64-bit integer.
    Int(i64),
    /// Any other number.
    Num(f64),
    /// A string.
    Str(String),
    /// An array.
    Arr(Vec<Value>),
    /// An object. BTreeMap: deterministic iteration, duplicate keys
    /// keep the last value (standard JSON behaviour).
    Obj(BTreeMap<String, Value>),
}

impl Value {
    /// The object's field, if this is an object holding it.
    pub fn get(&self, key: &str) -> Option<&Value> {
        match self {
            Value::Obj(m) => m.get(key),
            _ => None,
        }
    }

    /// The string payload, if this is a string.
    pub fn as_str(&self) -> Option<&str> {
        match self {
            Value::Str(s) => Some(s),
            _ => None,
        }
    }

    /// The integer payload, if this is an integral number.
    pub fn as_i64(&self) -> Option<i64> {
        match self {
            Value::Int(i) => Some(*i),
            _ => None,
        }
    }

    /// The array payload, if this is an array.
    pub fn as_arr(&self) -> Option<&[Value]> {
        match self {
            Value::Arr(v) => Some(v),
            _ => None,
        }
    }
}

/// Parse one JSON document; the whole input must be consumed (modulo
/// whitespace). Errors carry a byte offset for debuggability.
pub fn parse(input: &str) -> Result<Value, String> {
    let mut p = Parser {
        bytes: input.as_bytes(),
        at: 0,
        depth: 0,
    };
    p.skip_ws();
    let v = p.value()?;
    p.skip_ws();
    if p.at != p.bytes.len() {
        return Err(format!("trailing bytes at offset {}", p.at));
    }
    Ok(v)
}

const MAX_DEPTH: usize = 32;

struct Parser<'a> {
    bytes: &'a [u8],
    at: usize,
    depth: usize,
}

impl Parser<'_> {
    fn err(&self, msg: &str) -> String {
        format!("{msg} at offset {}", self.at)
    }

    fn peek(&self) -> Option<u8> {
        self.bytes.get(self.at).copied()
    }

    fn bump(&mut self) -> Option<u8> {
        let b = self.peek()?;
        self.at += 1;
        Some(b)
    }

    fn skip_ws(&mut self) {
        while matches!(self.peek(), Some(b' ' | b'\t' | b'\n' | b'\r')) {
            self.at += 1;
        }
    }

    fn expect(&mut self, b: u8) -> Result<(), String> {
        if self.peek() == Some(b) {
            self.at += 1;
            Ok(())
        } else {
            Err(self.err(&format!("expected {:?}", b as char)))
        }
    }

    fn literal(&mut self, word: &str, v: Value) -> Result<Value, String> {
        if self.bytes[self.at..].starts_with(word.as_bytes()) {
            self.at += word.len();
            Ok(v)
        } else {
            Err(self.err("invalid literal"))
        }
    }

    fn value(&mut self) -> Result<Value, String> {
        if self.depth >= MAX_DEPTH {
            return Err(self.err("nesting too deep"));
        }
        match self.peek() {
            Some(b'{') => self.object(),
            Some(b'[') => self.array(),
            Some(b'"') => Ok(Value::Str(self.string()?)),
            Some(b't') => self.literal("true", Value::Bool(true)),
            Some(b'f') => self.literal("false", Value::Bool(false)),
            Some(b'n') => self.literal("null", Value::Null),
            Some(b'-' | b'0'..=b'9') => self.number(),
            _ => Err(self.err("unexpected character")),
        }
    }

    fn object(&mut self) -> Result<Value, String> {
        self.expect(b'{')?;
        self.depth += 1;
        let mut out = BTreeMap::new();
        self.skip_ws();
        if self.peek() == Some(b'}') {
            self.at += 1;
            self.depth -= 1;
            return Ok(Value::Obj(out));
        }
        loop {
            self.skip_ws();
            let key = self.string()?;
            self.skip_ws();
            self.expect(b':')?;
            self.skip_ws();
            let v = self.value()?;
            out.insert(key, v);
            self.skip_ws();
            match self.bump() {
                Some(b',') => continue,
                Some(b'}') => break,
                _ => return Err(self.err("expected ',' or '}'")),
            }
        }
        self.depth -= 1;
        Ok(Value::Obj(out))
    }

    fn array(&mut self) -> Result<Value, String> {
        self.expect(b'[')?;
        self.depth += 1;
        let mut out = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b']') {
            self.at += 1;
            self.depth -= 1;
            return Ok(Value::Arr(out));
        }
        loop {
            self.skip_ws();
            out.push(self.value()?);
            self.skip_ws();
            match self.bump() {
                Some(b',') => continue,
                Some(b']') => break,
                _ => return Err(self.err("expected ',' or ']'")),
            }
        }
        self.depth -= 1;
        Ok(Value::Arr(out))
    }

    fn string(&mut self) -> Result<String, String> {
        self.expect(b'"')?;
        let mut out = String::new();
        loop {
            match self.bump() {
                None => return Err(self.err("unterminated string")),
                Some(b'"') => return Ok(out),
                Some(b'\\') => match self.bump() {
                    Some(b'"') => out.push('"'),
                    Some(b'\\') => out.push('\\'),
                    Some(b'/') => out.push('/'),
                    Some(b'b') => out.push('\u{0008}'),
                    Some(b'f') => out.push('\u{000C}'),
                    Some(b'n') => out.push('\n'),
                    Some(b'r') => out.push('\r'),
                    Some(b't') => out.push('\t'),
                    Some(b'u') => {
                        let cp = self.hex4()?;
                        // Surrogate pairs: a high surrogate must be
                        // followed by an escaped low surrogate.
                        let c = if (0xD800..0xDC00).contains(&cp) {
                            if self.bump() != Some(b'\\') || self.bump() != Some(b'u') {
                                return Err(self.err("lone high surrogate"));
                            }
                            let low = self.hex4()?;
                            if !(0xDC00..0xE000).contains(&low) {
                                return Err(self.err("invalid low surrogate"));
                            }
                            let combined =
                                0x10000 + ((cp - 0xD800) << 10) + (low - 0xDC00);
                            char::from_u32(combined)
                        } else {
                            char::from_u32(cp)
                        };
                        out.push(c.ok_or_else(|| self.err("invalid code point"))?);
                    }
                    _ => return Err(self.err("invalid escape")),
                },
                Some(b) if b < 0x20 => return Err(self.err("control character in string")),
                Some(b) => {
                    // Re-borrow multi-byte UTF-8 from the source slice.
                    if b < 0x80 {
                        out.push(b as char);
                    } else {
                        let start = self.at - 1;
                        let len = utf8_len(b).ok_or_else(|| self.err("invalid utf-8"))?;
                        let end = start + len;
                        let chunk = self
                            .bytes
                            .get(start..end)
                            .and_then(|s| std::str::from_utf8(s).ok())
                            .ok_or_else(|| self.err("invalid utf-8"))?;
                        out.push_str(chunk);
                        self.at = end;
                    }
                }
            }
        }
    }

    fn hex4(&mut self) -> Result<u32, String> {
        let mut v = 0u32;
        for _ in 0..4 {
            let b = self.bump().ok_or_else(|| self.err("truncated \\u escape"))?;
            let d = (b as char)
                .to_digit(16)
                .ok_or_else(|| self.err("invalid hex digit"))?;
            v = v * 16 + d;
        }
        Ok(v)
    }

    fn number(&mut self) -> Result<Value, String> {
        let start = self.at;
        if self.peek() == Some(b'-') {
            self.at += 1;
        }
        while matches!(self.peek(), Some(b'0'..=b'9')) {
            self.at += 1;
        }
        let mut integral = true;
        if self.peek() == Some(b'.') {
            integral = false;
            self.at += 1;
            while matches!(self.peek(), Some(b'0'..=b'9')) {
                self.at += 1;
            }
        }
        if matches!(self.peek(), Some(b'e' | b'E')) {
            integral = false;
            self.at += 1;
            if matches!(self.peek(), Some(b'+' | b'-')) {
                self.at += 1;
            }
            while matches!(self.peek(), Some(b'0'..=b'9')) {
                self.at += 1;
            }
        }
        let text = std::str::from_utf8(&self.bytes[start..self.at])
            .expect("number bytes are ascii");
        if integral {
            if let Ok(i) = text.parse::<i64>() {
                return Ok(Value::Int(i));
            }
        }
        text.parse::<f64>()
            .map(Value::Num)
            .map_err(|_| self.err("invalid number"))
    }
}

fn utf8_len(first: u8) -> Option<usize> {
    match first {
        0xC0..=0xDF => Some(2),
        0xE0..=0xEF => Some(3),
        0xF0..=0xF7 => Some(4),
        _ => None,
    }
}

/// Escape a string into a JSON string literal (without quotes).
pub fn escape_into(out: &mut String, s: &str) {
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => {
                out.push_str(&format!("\\u{:04x}", c as u32));
            }
            c => out.push(c),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parses_the_predict_request_shape() {
        let v = parse(r#"{"method":"cube","ids":[1, -2, 30]}"#).unwrap();
        assert_eq!(v.get("method").and_then(Value::as_str), Some("cube"));
        let ids: Vec<i64> = v
            .get("ids")
            .and_then(Value::as_arr)
            .unwrap()
            .iter()
            .map(|x| x.as_i64().unwrap())
            .collect();
        assert_eq!(ids, vec![1, -2, 30]);
    }

    #[test]
    fn parses_scalars_and_nesting() {
        assert_eq!(parse("null").unwrap(), Value::Null);
        assert_eq!(parse("true").unwrap(), Value::Bool(true));
        assert_eq!(parse("-17").unwrap(), Value::Int(-17));
        assert_eq!(parse("2.5e3").unwrap(), Value::Num(2500.0));
        assert_eq!(
            parse(r#""a\"b\u00e9\n""#).unwrap(),
            Value::Str("a\"bé\n".into())
        );
        let v = parse(r#"{"a":{"b":[{"c":1}]}}"#).unwrap();
        assert!(v.get("a").is_some());
    }

    #[test]
    fn surrogate_pairs_decode() {
        assert_eq!(
            parse(r#""\ud83d\ude00""#).unwrap(),
            Value::Str("😀".into())
        );
        assert!(parse(r#""\ud83d""#).is_err());
    }

    #[test]
    fn malformed_inputs_error_not_panic() {
        for bad in [
            "", "{", "[", "\"", "{\"a\"}", "{\"a\":}", "[1,]", "[1 2]", "tru", "01x",
            "{\"a\":1}x", "\u{0000}", "[\"\\q\"]", "1e", "--1", "nul",
        ] {
            assert!(parse(bad).is_err(), "{bad:?} should not parse");
        }
        // Deep nesting is bounded, not a stack overflow.
        let deep = "[".repeat(100) + &"]".repeat(100);
        assert!(parse(&deep).is_err());
    }

    #[test]
    fn escape_round_trips() {
        let mut out = String::new();
        escape_into(&mut out, "a\"b\\c\n\u{1}");
        let back = parse(&format!("\"{out}\"")).unwrap();
        assert_eq!(back, Value::Str("a\"b\\c\n\u{1}".into()));
    }
}
