//! # bellwether-serve
//!
//! A train-once / predict-at-QPS surface for bellwether models: a
//! dependency-free HTTP/1.1 server over `std::net` that answers item
//! predictions from an immutable [`BellwetherModel`] snapshot.
//!
//! The paper's economics only pay off when one training pass amortises
//! over many predictions; this crate is that serving side. A bounded
//! worker pool shares one `Arc<BellwetherModel>` (loaded via
//! [`BellwetherModel::load`] or built in-process); each worker owns a
//! reusable [`ServeScratch`] — buffers that warm up once and then serve
//! every request allocation-free on the framing path, the same
//! discipline as the scan engine's per-worker `RegionEvalScratch`.
//!
//! ## Endpoints
//!
//! * `POST /predict` — body `{"method":"basic|tree|cube","ids":[…]}`;
//!   answers `{"method":…,"predictions":[…],"count":N}` with one slot
//!   per id (`null` when the item is unknown or unroutable). The ids
//!   array is the batch: one request, one batch, many predictions.
//! * `GET /health` — liveness plus the installed methods.
//! * `GET /metrics` — the shared registry's `MetricsSnapshot` as JSON;
//!   `serve/latency_p50_us` / `serve/latency_p99_us` gauges are
//!   refreshed from a lock-free latency histogram on every call.
//! * `POST /reload` — re-load the model snapshot from the configured
//!   [`ServeConfigBuilder::model_path`] and swap it in atomically; 409
//!   when no path is configured, 500 (old model keeps serving) when the
//!   snapshot fails to load. In-process swaps go through
//!   [`ServerHandle::swap_model`]. Every request resolves the current
//!   model through one shared [`RwLock`]'d `Arc` handle, so a swap is
//!   one pointer exchange: in-flight batches finish on the snapshot
//!   they started with and the next request sees the new one, with no
//!   drop in service.
//!
//! ## Backpressure
//!
//! The acceptor never blocks on a full worker queue: accepted
//! connections are `try_send`-ed to the pool, the instantaneous depth
//! lands on the `serve/queue_depth` gauge, and when the bounded queue
//! (capacity [`ServeConfigBuilder::queue_capacity`]) is full the
//! connection is answered `503 Service Unavailable` on the spot and
//! counted on `serve/rejected_busy` — loaded clients get a fast, honest
//! retry signal instead of an unbounded backlog.
//!
//! Counters: `serve/requests`, `serve/batches`, `serve/predictions`,
//! `serve/errors`, `serve/connections`, `serve/rejected_busy`,
//! `serve/reloads`; per-request wall time also lands on the
//! `serve/request` span.
//!
//! Connections are keep-alive with per-request read timeouts; shutdown
//! is graceful — in-flight requests finish, then workers exit.

#![warn(missing_docs)]

pub mod http;
pub mod json;
pub mod latency;

pub use latency::LatencyHistogram;

use bellwether_core::model::{BellwetherModel, MethodKind};
use bellwether_obs::{names, Recorder, Registry};
use http::{read_request, write_response, ReadOutcome, Request};
use std::io;
use std::net::{SocketAddr, TcpListener, TcpStream};
use std::path::PathBuf;
use std::sync::atomic::{AtomicBool, AtomicI64, Ordering};
use std::sync::mpsc::{Receiver, SyncSender, TrySendError};
use std::sync::{Arc, Mutex, RwLock};
use std::thread::JoinHandle;
use std::time::{Duration, Instant};

/// Server tuning knobs. Build via [`ServeConfig::builder`].
#[derive(Clone)]
pub struct ServeConfig {
    /// Worker threads handling connections.
    pub workers: usize,
    /// Per-request socket read timeout (also the keep-alive idle bound).
    pub request_timeout: Duration,
    /// Maximum accepted request body size in bytes.
    pub max_body_bytes: usize,
    /// Maximum ids per `/predict` batch.
    pub max_batch: usize,
    /// Accepted connections waiting for a worker before the acceptor
    /// answers 503.
    pub queue_capacity: usize,
    /// Snapshot path `POST /reload` re-loads the model from; without
    /// one the endpoint answers 409.
    pub model_path: Option<PathBuf>,
    /// Registry receiving `serve/*` counters, gauges and spans.
    pub registry: Arc<Registry>,
}

impl Default for ServeConfig {
    fn default() -> Self {
        ServeConfig {
            workers: 4,
            request_timeout: Duration::from_secs(5),
            max_body_bytes: 1 << 20,
            max_batch: 10_000,
            queue_capacity: 8,
            model_path: None,
            registry: Registry::shared(),
        }
    }
}

impl ServeConfig {
    /// Start building from the defaults, with validation at
    /// [`ServeConfigBuilder::build`] time.
    pub fn builder() -> ServeConfigBuilder {
        ServeConfigBuilder(ServeConfig::default())
    }
}

/// Builder for [`ServeConfig`], matching the workspace's config style.
#[derive(Clone, Default)]
pub struct ServeConfigBuilder(ServeConfig);

impl ServeConfigBuilder {
    /// Worker threads (≥ 1).
    pub fn workers(mut self, n: usize) -> Self {
        self.0.workers = n;
        self
    }

    /// Per-request read timeout (> 0).
    pub fn request_timeout(mut self, t: Duration) -> Self {
        self.0.request_timeout = t;
        self
    }

    /// Maximum request body bytes (≥ 1).
    pub fn max_body_bytes(mut self, n: usize) -> Self {
        self.0.max_body_bytes = n;
        self
    }

    /// Maximum ids per batch (≥ 1).
    pub fn max_batch(mut self, n: usize) -> Self {
        self.0.max_batch = n;
        self
    }

    /// Connections allowed to wait for a worker (≥ 1); beyond this the
    /// acceptor answers 503 instead of queueing.
    pub fn queue_capacity(mut self, n: usize) -> Self {
        self.0.queue_capacity = n;
        self
    }

    /// Snapshot path for `POST /reload`.
    pub fn model_path(mut self, p: impl Into<PathBuf>) -> Self {
        self.0.model_path = Some(p.into());
        self
    }

    /// Metrics registry to bind the `serve/*` instruments into.
    pub fn registry(mut self, r: Arc<Registry>) -> Self {
        self.0.registry = r;
        self
    }

    /// Validate and produce the config.
    pub fn build(self) -> io::Result<ServeConfig> {
        let c = self.0;
        if c.workers == 0 {
            return Err(bad_config("workers must be at least 1"));
        }
        if c.request_timeout.is_zero() {
            return Err(bad_config("request_timeout must be positive"));
        }
        if c.max_body_bytes == 0 || c.max_batch == 0 {
            return Err(bad_config("size limits must be at least 1"));
        }
        if c.queue_capacity == 0 {
            return Err(bad_config("queue_capacity must be at least 1"));
        }
        Ok(c)
    }
}

fn bad_config(msg: &str) -> io::Error {
    io::Error::new(io::ErrorKind::InvalidInput, msg)
}

/// Per-worker reusable buffers: warm once, then the request framing
/// path allocates nothing per request.
#[derive(Default)]
pub struct ServeScratch {
    read_buf: Vec<u8>,
    body_out: String,
    ids: Vec<i64>,
}

/// The `serve/*` instruments, resolved once at startup.
struct ServeMetrics {
    registry: Arc<Registry>,
    requests: bellwether_obs::Counter,
    batches: bellwether_obs::Counter,
    predictions: bellwether_obs::Counter,
    errors: bellwether_obs::Counter,
    connections: bellwether_obs::Counter,
    rejected_busy: bellwether_obs::Counter,
    reloads: bellwether_obs::Counter,
    queue_depth: bellwether_obs::Gauge,
    uptime_seconds: bellwether_obs::Gauge,
    /// Instantaneous queued-connection count backing the gauge. Signed:
    /// a worker's pop can race ahead of the acceptor's push, so the
    /// count may dip below zero transiently.
    queued: AtomicI64,
    latency: LatencyHistogram,
    started: Instant,
}

impl ServeMetrics {
    fn new(registry: Arc<Registry>) -> Self {
        ServeMetrics {
            requests: registry.counter(names::SERVE_REQUESTS),
            batches: registry.counter(names::SERVE_BATCHES),
            predictions: registry.counter(names::SERVE_PREDICTIONS),
            errors: registry.counter(names::SERVE_ERRORS),
            connections: registry.counter(names::SERVE_CONNECTIONS),
            rejected_busy: registry.counter(names::SERVE_REJECTED_BUSY),
            reloads: registry.counter(names::SERVE_RELOADS),
            queue_depth: registry.gauge(names::SERVE_QUEUE_DEPTH),
            uptime_seconds: registry.gauge(names::SERVE_UPTIME_SECONDS),
            queued: AtomicI64::new(0),
            latency: LatencyHistogram::new(),
            started: Instant::now(),
            registry,
        }
    }

    fn queue_push(&self) {
        let d = self.queued.fetch_add(1, Ordering::SeqCst) + 1;
        self.queue_depth.set(d.max(0) as f64);
    }

    fn queue_pop(&self) {
        let d = self.queued.fetch_sub(1, Ordering::SeqCst) - 1;
        self.queue_depth.set(d.max(0) as f64);
    }
}

/// The swappable model slot all workers resolve per request: reads are
/// one `RwLock` read plus an `Arc` clone, swaps are one pointer
/// exchange. In-flight batches keep the snapshot they started with.
struct ModelSlot(RwLock<Arc<BellwetherModel>>);

impl ModelSlot {
    fn current(&self) -> Arc<BellwetherModel> {
        Arc::clone(&self.0.read().expect("model slot poisoned"))
    }

    fn swap(&self, model: Arc<BellwetherModel>) {
        *self.0.write().expect("model slot poisoned") = model;
    }
}

/// The prediction server: binds, spawns the pool, hands back a
/// [`ServerHandle`].
pub struct Server;

impl Server {
    /// Bind `addr` (e.g. `"127.0.0.1:0"`) and start serving `model`.
    pub fn bind(
        addr: &str,
        model: Arc<BellwetherModel>,
        config: ServeConfig,
    ) -> io::Result<ServerHandle> {
        let listener = TcpListener::bind(addr)?;
        let local_addr = listener.local_addr()?;
        let shutdown = Arc::new(AtomicBool::new(false));
        let metrics = Arc::new(ServeMetrics::new(config.registry.clone()));
        let slot = Arc::new(ModelSlot(RwLock::new(model)));

        let (tx, rx) = std::sync::mpsc::sync_channel::<TcpStream>(config.queue_capacity);
        let rx = Arc::new(Mutex::new(rx));

        let mut workers = Vec::with_capacity(config.workers);
        for i in 0..config.workers {
            let rx = Arc::clone(&rx);
            let slot = Arc::clone(&slot);
            let metrics = Arc::clone(&metrics);
            let config = config.clone();
            let shutdown = Arc::clone(&shutdown);
            workers.push(
                std::thread::Builder::new()
                    .name(format!("bw-serve-{i}"))
                    .spawn(move || worker_loop(&rx, &slot, &config, &metrics, &shutdown))?,
            );
        }

        let acceptor = {
            let shutdown = Arc::clone(&shutdown);
            let metrics = Arc::clone(&metrics);
            let timeout = config.request_timeout;
            std::thread::Builder::new()
                .name("bw-serve-accept".into())
                .spawn(move || accept_loop(listener, tx, &metrics, timeout, &shutdown))?
        };

        Ok(ServerHandle {
            addr: local_addr,
            shutdown,
            acceptor: Some(acceptor),
            workers,
            registry: config.registry,
            slot,
        })
    }
}

/// Handle to a running server: address, registry, graceful shutdown.
pub struct ServerHandle {
    addr: SocketAddr,
    shutdown: Arc<AtomicBool>,
    acceptor: Option<JoinHandle<()>>,
    workers: Vec<JoinHandle<()>>,
    registry: Arc<Registry>,
    slot: Arc<ModelSlot>,
}

impl ServerHandle {
    /// The bound address (resolves `:0` to the real port).
    pub fn local_addr(&self) -> SocketAddr {
        self.addr
    }

    /// The registry the server reports into.
    pub fn registry(&self) -> &Arc<Registry> {
        &self.registry
    }

    /// Swap the served model in-process; the next request sees it.
    /// Counted under `serve/reloads` alongside HTTP-triggered reloads,
    /// so a dashboard sees drift-driven swaps too.
    pub fn swap_model(&self, model: Arc<BellwetherModel>) {
        self.slot.swap(model);
        self.registry.counter(names::SERVE_RELOADS).inc();
    }

    /// The currently served model snapshot.
    pub fn model(&self) -> Arc<BellwetherModel> {
        self.slot.current()
    }

    /// Stop accepting, let in-flight requests finish, join every
    /// thread. Idempotent via `Drop` — calling this is just the
    /// deterministic way.
    pub fn shutdown(mut self) {
        self.stop();
    }

    fn stop(&mut self) {
        if self.shutdown.swap(true, Ordering::SeqCst) {
            return;
        }
        // Unblock the acceptor's blocking accept() with a no-op connect.
        let _ = TcpStream::connect(self.addr);
        if let Some(a) = self.acceptor.take() {
            let _ = a.join();
        }
        // The acceptor owned the only sender; once it exits, workers'
        // recv() errors out and they finish their current connections.
        for w in self.workers.drain(..) {
            let _ = w.join();
        }
    }
}

impl Drop for ServerHandle {
    fn drop(&mut self) {
        self.stop();
    }
}

fn accept_loop(
    listener: TcpListener,
    tx: SyncSender<TcpStream>,
    metrics: &ServeMetrics,
    timeout: Duration,
    shutdown: &AtomicBool,
) {
    loop {
        let conn = match listener.accept() {
            Ok((conn, _)) => conn,
            Err(_) => {
                if shutdown.load(Ordering::SeqCst) {
                    return;
                }
                continue;
            }
        };
        if shutdown.load(Ordering::SeqCst) {
            return; // the wake-up connect, or a late client
        }
        metrics.connections.inc();
        let _ = conn.set_read_timeout(Some(timeout));
        let _ = conn.set_nodelay(true);
        match tx.try_send(conn) {
            Ok(()) => metrics.queue_push(),
            Err(TrySendError::Full(mut conn)) => {
                // Shed load at the door: a fast 503 beats an unbounded
                // backlog, and the acceptor never blocks.
                metrics.rejected_busy.inc();
                let _ = write_response(
                    &mut conn,
                    503,
                    "Service Unavailable",
                    "{\"error\":\"server busy, retry later\"}",
                    true,
                );
            }
            Err(TrySendError::Disconnected(_)) => return,
        }
    }
}

fn worker_loop(
    rx: &Mutex<Receiver<TcpStream>>,
    slot: &ModelSlot,
    config: &ServeConfig,
    metrics: &ServeMetrics,
    shutdown: &AtomicBool,
) {
    let mut scratch = ServeScratch::default();
    loop {
        let conn = {
            let guard = match rx.lock() {
                Ok(g) => g,
                Err(_) => return,
            };
            match guard.recv() {
                Ok(c) => c,
                Err(_) => return, // acceptor gone: shutdown
            }
        };
        metrics.queue_pop();
        handle_connection(conn, slot, config, metrics, shutdown, &mut scratch);
    }
}

fn handle_connection(
    mut conn: TcpStream,
    slot: &ModelSlot,
    config: &ServeConfig,
    metrics: &ServeMetrics,
    shutdown: &AtomicBool,
    scratch: &mut ServeScratch,
) {
    scratch.read_buf.clear();
    loop {
        let outcome = match read_request(&mut conn, &mut scratch.read_buf, config.max_body_bytes)
        {
            Ok(o) => o,
            Err(_) => {
                metrics.errors.inc();
                return;
            }
        };
        let request = match outcome {
            ReadOutcome::Request(r) => r,
            ReadOutcome::Closed => return,
            ReadOutcome::TimedOut { started } => {
                if started {
                    metrics.errors.inc();
                    let _ = write_response(
                        &mut conn,
                        408,
                        "Request Timeout",
                        "{\"error\":\"request timed out\"}",
                        true,
                    );
                }
                return;
            }
            ReadOutcome::Bad(msg) => {
                metrics.errors.inc();
                scratch.body_out.clear();
                scratch.body_out.push_str("{\"error\":\"");
                json::escape_into(&mut scratch.body_out, msg);
                scratch.body_out.push_str("\"}");
                let _ =
                    write_response(&mut conn, 400, "Bad Request", &scratch.body_out, true);
                return;
            }
        };

        let started = Instant::now();
        metrics.requests.inc();
        // Resolve the model per request so reloads land between
        // requests, never inside a batch.
        let model = slot.current();
        let (status, reason) = dispatch(&request, &model, slot, config, metrics, scratch);
        let close = request.close || shutdown.load(Ordering::SeqCst);
        if status >= 400 {
            metrics.errors.inc();
        }
        let ok = write_response(&mut conn, status, reason, &scratch.body_out, close).is_ok();
        let elapsed = started.elapsed();
        metrics.latency.observe(elapsed.as_micros().min(u128::from(u64::MAX)) as u64);
        metrics
            .registry
            .record_span("serve/request", elapsed.as_nanos().min(u128::from(u64::MAX)) as u64);
        if !ok || close {
            return;
        }
    }
}

/// Route one request; the response body lands in `scratch.body_out`.
fn dispatch(
    request: &Request,
    model: &BellwetherModel,
    slot: &ModelSlot,
    config: &ServeConfig,
    metrics: &ServeMetrics,
    scratch: &mut ServeScratch,
) -> (u16, &'static str) {
    let path = request.path.split('?').next().unwrap_or("");
    match (request.method.as_str(), path) {
        ("POST", "/predict") => predict(request, model, config, metrics, scratch),
        ("POST", "/reload") => reload(slot, config, metrics, scratch),
        ("GET" | "HEAD", "/health") => {
            scratch.body_out.clear();
            scratch.body_out.push_str("{\"status\":\"ok\",\"methods\":[");
            for (i, m) in model.methods().iter().enumerate() {
                if i > 0 {
                    scratch.body_out.push(',');
                }
                scratch.body_out.push('"');
                scratch.body_out.push_str(m.name());
                scratch.body_out.push('"');
            }
            scratch.body_out.push_str("]}");
            (200, "OK")
        }
        ("GET" | "HEAD", "/metrics") => {
            // Refresh the percentile gauges from the histogram, then
            // snapshot the whole registry.
            if let Some(p50) = metrics.latency.quantile(0.5) {
                metrics
                    .registry
                    .gauge(names::SERVE_LATENCY_P50_US)
                    .set(p50 as f64);
            }
            if let Some(p99) = metrics.latency.quantile(0.99) {
                metrics
                    .registry
                    .gauge(names::SERVE_LATENCY_P99_US)
                    .set(p99 as f64);
            }
            metrics
                .uptime_seconds
                .set(metrics.started.elapsed().as_secs_f64());
            scratch.body_out.clear();
            scratch.body_out.push_str(&metrics.registry.snapshot().to_json());
            (200, "OK")
        }
        (_, "/predict" | "/health" | "/metrics" | "/reload") => {
            scratch.body_out.clear();
            scratch
                .body_out
                .push_str("{\"error\":\"method not allowed\"}");
            (405, "Method Not Allowed")
        }
        _ => {
            scratch.body_out.clear();
            scratch.body_out.push_str("{\"error\":\"not found\"}");
            (404, "Not Found")
        }
    }
}

/// `POST /reload`: load the configured snapshot and swap it in. The old
/// model keeps serving on any failure.
fn reload(
    slot: &ModelSlot,
    config: &ServeConfig,
    metrics: &ServeMetrics,
    scratch: &mut ServeScratch,
) -> (u16, &'static str) {
    scratch.body_out.clear();
    let Some(path) = &config.model_path else {
        scratch
            .body_out
            .push_str("{\"error\":\"no model_path configured\"}");
        return (409, "Conflict");
    };
    match BellwetherModel::load(path) {
        Ok(model) => {
            slot.swap(model);
            metrics.reloads.inc();
            let model = slot.current();
            scratch
                .body_out
                .push_str("{\"status\":\"reloaded\",\"methods\":[");
            for (i, m) in model.methods().iter().enumerate() {
                if i > 0 {
                    scratch.body_out.push(',');
                }
                scratch.body_out.push('"');
                scratch.body_out.push_str(m.name());
                scratch.body_out.push('"');
            }
            scratch.body_out.push_str("]}");
            (200, "OK")
        }
        Err(e) => {
            scratch.body_out.push_str("{\"error\":\"reload failed: ");
            json::escape_into(&mut scratch.body_out, &e.to_string());
            scratch.body_out.push_str("\"}");
            (500, "Internal Server Error")
        }
    }
}

fn predict(
    request: &Request,
    model: &BellwetherModel,
    config: &ServeConfig,
    metrics: &ServeMetrics,
    scratch: &mut ServeScratch,
) -> (u16, &'static str) {
    scratch.body_out.clear();
    let bad = |scratch: &mut ServeScratch, msg: &str| -> (u16, &'static str) {
        scratch.body_out.clear();
        scratch.body_out.push_str("{\"error\":\"");
        json::escape_into(&mut scratch.body_out, msg);
        scratch.body_out.push_str("\"}");
        (400, "Bad Request")
    };

    let Ok(text) = std::str::from_utf8(&request.body) else {
        return bad(scratch, "body is not utf-8");
    };
    let value = match json::parse(text) {
        Ok(v) => v,
        Err(e) => return bad(scratch, &format!("invalid json: {e}")),
    };
    let Some(method_name) = value.get("method").and_then(json::Value::as_str) else {
        return bad(scratch, "missing \"method\"");
    };
    let Some(method) = MethodKind::parse(method_name) else {
        return bad(scratch, "unknown method (want basic, tree or cube)");
    };
    if !model.methods().contains(&method) {
        return bad(scratch, "method not installed in this model");
    }
    let Some(raw_ids) = value.get("ids").and_then(json::Value::as_arr) else {
        return bad(scratch, "missing \"ids\" array");
    };
    if raw_ids.len() > config.max_batch {
        return bad(scratch, "batch too large");
    }
    scratch.ids.clear();
    for v in raw_ids {
        match v.as_i64() {
            Some(id) => scratch.ids.push(id),
            None => return bad(scratch, "ids must be integers"),
        }
    }

    metrics.batches.inc();
    metrics.predictions.add(scratch.ids.len() as u64);
    scratch.body_out.push_str("{\"method\":\"");
    scratch.body_out.push_str(method.name());
    scratch.body_out.push_str("\",\"predictions\":[");
    for (i, &id) in scratch.ids.iter().enumerate() {
        if i > 0 {
            scratch.body_out.push(',');
        }
        match model.predict(method, id) {
            // Rust's shortest-round-trip float display; non-finite
            // values have no JSON spelling, so they answer null too.
            Some(v) if v.is_finite() => {
                scratch.body_out.push_str(&format!("{v}"));
                if v.fract() == 0.0 && v.abs() < 1e15 {
                    // "42" parses as an integer downstream; keep the
                    // slot typed as a float.
                    if !scratch.body_out.ends_with(|c: char| c == '.' || c.is_ascii_alphabetic())
                    {
                        scratch.body_out.push_str(".0");
                    }
                }
            }
            _ => scratch.body_out.push_str("null"),
        }
    }
    scratch.body_out.push_str("],\"count\":");
    scratch.body_out.push_str(&scratch.ids.len().to_string());
    scratch.body_out.push('}');
    (200, "OK")
}

#[cfg(test)]
mod tests {
    use super::*;
    use bellwether_core::report::BellwetherReport;
    use bellwether_core::{ItemTable, ModelBuilder};
    use bellwether_cube::RegionId;
    use bellwether_linreg::LinearModel;
    use bellwether_storage::{MemorySource, RegionBlock};
    use std::io::{BufRead, BufReader, Read as _, Write as _};

    /// A tiny basic-method model: 8 items with data in the bellwether
    /// region fitted by y = intercept + slope·x, plus item 99 known to
    /// the table but without region data (falls back to the intercept),
    /// plus unknown ids answering null.
    fn fixture_model_with(intercept: f64, slope: f64) -> Arc<BellwetherModel> {
        let ids: Vec<i64> = (1..=8).collect();
        let xs: Vec<f64> = ids.iter().map(|&i| i as f64).collect();
        let ones = vec![1.0; ids.len()];
        let targets: Vec<f64> = xs.iter().map(|&x| intercept + slope * x).collect();
        let block =
            RegionBlock::from_columns(vec![0], 2, ids.clone(), vec![ones, xs], targets);
        let src = MemorySource::new(vec![block]);
        let items =
            ItemTable::from_parts((1..=8).chain([99]).collect(), vec![], vec![]).unwrap();
        let report = BellwetherReport {
            region: RegionId(vec![0]),
            label: "[test]".into(),
            region_index: 0,
            score: 0.0,
            error: 0.0,
            error_bounds: None,
            model: LinearModel::new(vec![intercept, slope]),
            n_examples: ids.len(),
            skipped_regions: Vec::new(),
        };
        Arc::new(
            ModelBuilder::new(&src, items)
                .basic(report)
                .build()
                .unwrap(),
        )
    }

    fn fixture_model() -> Arc<BellwetherModel> {
        fixture_model_with(3.0, 2.0)
    }

    fn start(config: ServeConfig) -> ServerHandle {
        Server::bind("127.0.0.1:0", fixture_model(), config).unwrap()
    }

    fn quick_config() -> ServeConfig {
        ServeConfig::builder()
            .workers(2)
            .request_timeout(Duration::from_millis(500))
            .registry(Arc::new(Registry::default()))
            .build()
            .unwrap()
    }

    /// Send one request on `stream` and read back (status, body).
    fn roundtrip(stream: &mut TcpStream, method: &str, path: &str, body: &str) -> (u16, String) {
        let req = format!(
            "{method} {path} HTTP/1.1\r\nhost: t\r\ncontent-length: {}\r\n\r\n{body}",
            body.len()
        );
        stream.write_all(req.as_bytes()).unwrap();
        read_response(stream)
    }

    fn read_response(stream: &mut TcpStream) -> (u16, String) {
        let mut reader = BufReader::new(stream);
        let mut status_line = String::new();
        reader.read_line(&mut status_line).unwrap();
        let status: u16 = status_line.split(' ').nth(1).unwrap().parse().unwrap();
        let mut len = 0usize;
        loop {
            let mut line = String::new();
            reader.read_line(&mut line).unwrap();
            let line = line.trim_end();
            if line.is_empty() {
                break;
            }
            if let Some(v) = line
                .to_ascii_lowercase()
                .strip_prefix("content-length:")
                .map(str::trim)
                .and_then(|v| v.parse().ok())
            {
                len = v;
            }
        }
        let mut body = vec![0u8; len];
        reader.read_exact(&mut body).unwrap();
        (status, String::from_utf8(body).unwrap())
    }

    fn connect(handle: &ServerHandle) -> TcpStream {
        TcpStream::connect(handle.local_addr()).unwrap()
    }

    #[test]
    fn predicts_over_a_real_socket() {
        let handle = start(quick_config());
        let mut conn = connect(&handle);
        let (status, body) = roundtrip(
            &mut conn,
            "POST",
            "/predict",
            r#"{"method":"basic","ids":[1,4,99,-5]}"#,
        );
        assert_eq!(status, 200, "{body}");
        // 3+2·1, 3+2·4, intercept-only for 99, null for unknown -5.
        assert_eq!(
            body,
            r#"{"method":"basic","predictions":[5.0,11.0,3.0,null],"count":4}"#
        );
        handle.shutdown();
    }

    #[test]
    fn keep_alive_serves_many_requests_per_connection() {
        let handle = start(quick_config());
        let mut conn = connect(&handle);
        for i in 1..=8 {
            let (status, body) = roundtrip(
                &mut conn,
                "POST",
                "/predict",
                &format!(r#"{{"method":"basic","ids":[{i}]}}"#),
            );
            assert_eq!(status, 200);
            let want = 3.0 + 2.0 * i as f64;
            assert!(body.contains(&format!("[{want:.1}]")), "{body}");
        }
        handle.shutdown();
    }

    #[test]
    fn health_and_metrics_report() {
        let handle = start(quick_config());
        let mut conn = connect(&handle);
        let (status, body) = roundtrip(&mut conn, "GET", "/health", "");
        assert_eq!(status, 200);
        assert_eq!(body, r#"{"status":"ok","methods":["basic"]}"#);

        roundtrip(&mut conn, "POST", "/predict", r#"{"method":"basic","ids":[1,2]}"#);
        let (status, body) = roundtrip(&mut conn, "GET", "/metrics", "");
        assert_eq!(status, 200);
        let snap = handle.registry().snapshot();
        assert_eq!(snap.counter(names::SERVE_CONNECTIONS), Some(1));
        assert!(snap.counter(names::SERVE_REQUESTS).unwrap_or(0) >= 3);
        assert_eq!(snap.counter(names::SERVE_BATCHES), Some(1));
        assert_eq!(snap.counter(names::SERVE_PREDICTIONS), Some(2));
        assert!(body.contains("serve/requests"), "{body}");
        assert!(body.contains("serve/latency_p50_us"), "{body}");
        assert!(body.contains("serve/uptime_seconds"), "{body}");
        assert!(
            snap.gauge(names::SERVE_UPTIME_SECONDS).unwrap_or(-1.0) >= 0.0,
            "uptime gauge set on scrape"
        );
        handle.shutdown();
    }

    #[test]
    fn bad_requests_answer_400_and_count_errors() {
        let handle = start(quick_config());
        for (body, want) in [
            ("{", 400),
            (r#"{"ids":[1]}"#, 400),
            (r#"{"method":"nope","ids":[1]}"#, 400),
            (r#"{"method":"tree","ids":[1]}"#, 400), // not installed
            (r#"{"method":"basic"}"#, 400),
            (r#"{"method":"basic","ids":[1.5]}"#, 400),
        ] {
            let mut conn = connect(&handle);
            let (status, msg) = roundtrip(&mut conn, "POST", "/predict", body);
            assert_eq!(status, want, "{body} -> {msg}");
        }
        let mut conn = connect(&handle);
        assert_eq!(roundtrip(&mut conn, "GET", "/nope", "").0, 404);
        assert_eq!(roundtrip(&mut conn, "DELETE", "/predict", "").0, 405);
        let snap = handle.registry().snapshot();
        assert_eq!(snap.counter(names::SERVE_ERRORS), Some(8));
        handle.shutdown();
    }

    #[test]
    fn oversized_batch_is_rejected() {
        let config = ServeConfig::builder()
            .workers(1)
            .max_batch(4)
            .request_timeout(Duration::from_millis(500))
            .registry(Arc::new(Registry::default()))
            .build()
            .unwrap();
        let handle = start(config);
        let mut conn = connect(&handle);
        let (status, body) = roundtrip(
            &mut conn,
            "POST",
            "/predict",
            r#"{"method":"basic","ids":[1,2,3,4,5]}"#,
        );
        assert_eq!(status, 400);
        assert!(body.contains("batch too large"), "{body}");
        handle.shutdown();
    }

    #[test]
    fn concurrent_clients_all_get_answers() {
        let config = ServeConfig::builder()
            .workers(4)
            .request_timeout(Duration::from_secs(2))
            .registry(Arc::new(Registry::default()))
            .build()
            .unwrap();
        let handle = start(config);
        let addr = handle.local_addr();
        let threads: Vec<_> = (0..4)
            .map(|_| {
                std::thread::spawn(move || {
                    let mut conn = TcpStream::connect(addr).unwrap();
                    for _ in 0..20 {
                        let (status, body) = roundtrip(
                            &mut conn,
                            "POST",
                            "/predict",
                            r#"{"method":"basic","ids":[1,2,3]}"#,
                        );
                        assert_eq!(status, 200, "{body}");
                        assert!(body.contains("[5.0,7.0,9.0]"), "{body}");
                    }
                })
            })
            .collect();
        for t in threads {
            t.join().unwrap();
        }
        let snap = handle.registry().snapshot();
        assert_eq!(snap.counter(names::SERVE_REQUESTS), Some(80));
        assert_eq!(snap.counter(names::SERVE_PREDICTIONS), Some(240));
        handle.shutdown();
    }

    #[test]
    fn shutdown_is_graceful_and_idempotent() {
        let handle = start(quick_config());
        let addr = handle.local_addr();
        let mut conn = connect(&handle);
        let (status, _) = roundtrip(&mut conn, "GET", "/health", "");
        assert_eq!(status, 200);
        handle.shutdown();
        // The listener is gone: new connections fail or are reset on use.
        match TcpStream::connect(addr) {
            Err(_) => {}
            Ok(mut c) => {
                let alive = c
                    .write_all(b"GET /health HTTP/1.1\r\n\r\n")
                    .and_then(|()| {
                        let mut buf = [0u8; 1];
                        c.read_exact(&mut buf)
                    })
                    .is_ok();
                assert!(!alive, "server still answering after shutdown");
            }
        }
    }

    #[test]
    fn config_validation_rejects_degenerate_values() {
        assert!(ServeConfig::builder().workers(0).build().is_err());
        assert!(ServeConfig::builder().max_batch(0).build().is_err());
        assert!(ServeConfig::builder().queue_capacity(0).build().is_err());
        assert!(ServeConfig::builder()
            .request_timeout(Duration::ZERO)
            .build()
            .is_err());
        assert!(ServeConfig::builder().build().is_ok());
    }

    #[test]
    fn reload_swaps_the_snapshot_without_restarting() {
        let dir = std::env::temp_dir().join("bw_serve_reload");
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("model.bwsn");
        fixture_model().save(&path).unwrap();
        let config = ServeConfig::builder()
            .workers(2)
            .request_timeout(Duration::from_millis(500))
            .model_path(&path)
            .registry(Arc::new(Registry::default()))
            .build()
            .unwrap();
        let handle = Server::bind("127.0.0.1:0", fixture_model(), config).unwrap();
        let mut conn = connect(&handle);
        let (status, body) =
            roundtrip(&mut conn, "POST", "/predict", r#"{"method":"basic","ids":[1]}"#);
        assert_eq!(status, 200);
        assert!(body.contains("[5.0]"), "{body}");

        // Publish a new snapshot (y = 1 + x) and reload — the same
        // keep-alive connection sees the new coefficients.
        fixture_model_with(1.0, 1.0).save(&path).unwrap();
        let (status, body) = roundtrip(&mut conn, "POST", "/reload", "");
        assert_eq!(status, 200, "{body}");
        assert!(body.contains("reloaded"), "{body}");
        let (status, body) =
            roundtrip(&mut conn, "POST", "/predict", r#"{"method":"basic","ids":[1]}"#);
        assert_eq!(status, 200);
        assert!(body.contains("[2.0]"), "{body}");

        // In-process swap through the handle works too.
        handle.swap_model(fixture_model());
        let (status, body) =
            roundtrip(&mut conn, "POST", "/predict", r#"{"method":"basic","ids":[1]}"#);
        assert_eq!(status, 200);
        assert!(body.contains("[5.0]"), "{body}");

        // Both the HTTP reload and the in-process swap are counted.
        let snap = handle.registry().snapshot();
        assert_eq!(snap.counter(names::SERVE_RELOADS), Some(2));
        handle.shutdown();
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn reload_without_model_path_answers_409() {
        let handle = start(quick_config());
        let mut conn = connect(&handle);
        let (status, body) = roundtrip(&mut conn, "POST", "/reload", "");
        assert_eq!(status, 409, "{body}");
        assert!(body.contains("no model_path"), "{body}");
        handle.shutdown();
    }

    #[test]
    fn failed_reload_keeps_the_old_model_serving() {
        let dir = std::env::temp_dir().join("bw_serve_reload_bad");
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("model.bwsn");
        std::fs::write(&path, b"not a snapshot").unwrap();
        let config = ServeConfig::builder()
            .workers(1)
            .request_timeout(Duration::from_millis(500))
            .model_path(&path)
            .registry(Arc::new(Registry::default()))
            .build()
            .unwrap();
        let handle = Server::bind("127.0.0.1:0", fixture_model(), config).unwrap();
        let mut conn = connect(&handle);
        let (status, _) = roundtrip(&mut conn, "POST", "/reload", "");
        assert_eq!(status, 500);
        let (status, body) =
            roundtrip(&mut conn, "POST", "/predict", r#"{"method":"basic","ids":[1]}"#);
        assert_eq!(status, 200);
        assert!(body.contains("[5.0]"), "{body}");
        assert_eq!(
            handle.registry().snapshot().counter(names::SERVE_RELOADS),
            Some(0)
        );
        handle.shutdown();
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn overloaded_server_answers_503_instead_of_queueing() {
        let config = ServeConfig::builder()
            .workers(1)
            .queue_capacity(1)
            .request_timeout(Duration::from_millis(800))
            .registry(Arc::new(Registry::default()))
            .build()
            .unwrap();
        let handle = start(config);

        // Park the only worker: a half-written request holds it in
        // read() until the request timeout.
        let mut parked = connect(&handle);
        parked
            .write_all(b"POST /predict HTTP/1.1\r\ncontent-length: 5\r\n\r\n")
            .unwrap();
        std::thread::sleep(Duration::from_millis(150));

        // Fill the one queue slot; this connection just waits.
        let mut queued = connect(&handle);
        std::thread::sleep(Duration::from_millis(100));

        // The next connection must be shed with a 503 by the acceptor.
        let mut shed = connect(&handle);
        let (status, body) = read_response(&mut shed);
        assert_eq!(status, 503, "{body}");
        assert!(body.contains("busy"), "{body}");

        let snap = handle.registry().snapshot();
        assert_eq!(snap.counter(names::SERVE_REJECTED_BUSY), Some(1));
        assert!(snap.gauge(names::SERVE_QUEUE_DEPTH).unwrap_or(0.0) >= 1.0);

        // Un-park the worker; the queued connection still gets served.
        parked.write_all(b"xxxxx").unwrap();
        let (status, body) = roundtrip(&mut queued, "GET", "/health", "");
        assert_eq!(status, 200, "{body}");
        handle.shutdown();
    }

    /// End-to-end drift wiring: a [`StreamingBellwether`] feeds the
    /// server — every argmin flip rebuilds the model from the live
    /// search state and hot-swaps it into the slot, counted under
    /// `serve/reloads` exactly like HTTP-triggered reloads.
    #[test]
    fn drift_events_hot_swap_the_served_model() {
        use bellwether_core::StreamingBellwether;
        use bellwether_cube::{Parallelism, UniformCellCost};
        use bellwether_datagen::{build_stream_workload, StreamConfig};

        let cfg = StreamConfig::default();
        let wl = build_stream_workload(&cfg);
        let dir = std::env::temp_dir().join("bw_serve_stream_test");
        std::fs::remove_dir_all(&dir).ok();
        let search_config = bellwether_core::BellwetherConfig::builder(f64::INFINITY)
            .min_coverage(0.0)
            .min_examples(10)
            .error_measure(bellwether_core::ErrorMeasure::TrainingSet)
            .parallelism(Parallelism::fixed(1))
            .build()
            .unwrap();
        let mut engine = StreamingBellwether::create(
            &dir,
            &wl.region_space,
            &wl.input_range(0, 1),
            &wl.item_universe(),
            wl.items.clone(),
            wl.target_map(),
            wl.regions.clone(),
            Arc::new(UniformCellCost { rate: 1.0 }),
            search_config,
            wl.items.len(),
            2,
            1 << 20,
        )
        .unwrap();

        let build_model = |engine: &StreamingBellwether| {
            let report = engine.search_result().report().expect("bellwether");
            Arc::new(
                ModelBuilder::new(engine.source(), wl.items.clone())
                    .basic(report)
                    .build()
                    .unwrap(),
            )
        };

        let handle =
            Server::bind("127.0.0.1:0", build_model(&engine), quick_config()).unwrap();
        let before = handle.model();
        let mut swaps = 0u64;
        for week in 1..cfg.weeks {
            let outcome = engine.append(&wl.input_range(week, week + 1)).unwrap();
            if outcome.drift.is_some() {
                handle.swap_model(build_model(&engine));
                swaps += 1;
            }
        }
        assert!(swaps >= 1, "planted drift must trigger a swap");
        assert!(
            !Arc::ptr_eq(&before, &handle.model()),
            "slot must serve the post-drift snapshot"
        );
        // The served model now predicts from the late bellwether.
        let mut conn = connect(&handle);
        let (status, body) = roundtrip(&mut conn, "POST", "/predict", r#"{"method":"basic","ids":[0]}"#);
        assert_eq!(status, 200, "{body}");
        let snap = handle.registry().snapshot();
        assert_eq!(snap.counter(names::SERVE_RELOADS), Some(swaps));
        handle.shutdown();
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn idle_keep_alive_timeout_closes_without_error() {
        let config = ServeConfig::builder()
            .workers(1)
            .request_timeout(Duration::from_millis(50))
            .registry(Arc::new(Registry::default()))
            .build()
            .unwrap();
        let handle = start(config);
        let mut conn = connect(&handle);
        let (status, _) = roundtrip(&mut conn, "GET", "/health", "");
        assert_eq!(status, 200);
        // Stay idle past the timeout: the server closes the connection
        // without recording an error.
        std::thread::sleep(Duration::from_millis(150));
        let mut buf = [0u8; 16];
        assert_eq!(conn.read(&mut buf).unwrap_or(0), 0);
        let snap = handle.registry().snapshot();
        assert_eq!(snap.counter(names::SERVE_ERRORS).unwrap_or(0), 0);
        handle.shutdown();
    }
}
