//! Blocking HTTP/1.1 framing over `std::net` — just enough protocol for
//! a keep-alive JSON prediction API: request-line + headers +
//! `Content-Length` bodies in, status + headers + body out. No chunked
//! encoding, no TLS, no upgrades; malformed input yields a structured
//! error, never a panic.

use std::io::{self, Read, Write};

/// Caps keeping a hostile peer from ballooning worker memory.
pub const MAX_HEAD_BYTES: usize = 16 * 1024;

/// One parsed request.
#[derive(Debug)]
pub struct Request {
    /// Request method, upper-case as sent (`GET`, `POST`, …).
    pub method: String,
    /// Request target path, e.g. `/predict` (query string included).
    pub path: String,
    /// Body bytes (empty when no `Content-Length`).
    pub body: Vec<u8>,
    /// True when the client asked to close the connection after this
    /// response (`Connection: close` or HTTP/1.0 without keep-alive).
    pub close: bool,
}

/// Why reading a request stopped.
#[derive(Debug)]
pub enum ReadOutcome {
    /// A complete request.
    Request(Request),
    /// The peer closed the connection cleanly between requests.
    Closed,
    /// The read timed out before a complete request arrived. `started`
    /// tells whether any request bytes had been read (mid-request
    /// timeouts are errors; idle keep-alive timeouts are not).
    TimedOut {
        /// True when the timeout hit mid-request.
        started: bool,
    },
    /// The request was malformed or over limits; the connection must be
    /// answered with the status and closed.
    Bad(&'static str),
}

/// Read one HTTP/1.1 request from `conn`. `buf` is the caller's
/// reusable scratch; leftover pipelined bytes stay in it between calls.
/// `max_body` bounds acceptable `Content-Length`.
pub fn read_request(
    conn: &mut impl Read,
    buf: &mut Vec<u8>,
    max_body: usize,
) -> io::Result<ReadOutcome> {
    let mut chunk = [0u8; 4096];
    // Accumulate until the blank line ending the head.
    let head_end = loop {
        if let Some(pos) = find_head_end(buf) {
            break pos;
        }
        if buf.len() > MAX_HEAD_BYTES {
            return Ok(ReadOutcome::Bad("request head too large"));
        }
        match conn.read(&mut chunk) {
            Ok(0) => {
                return Ok(if buf.is_empty() {
                    ReadOutcome::Closed
                } else {
                    ReadOutcome::Bad("connection closed mid-request")
                });
            }
            Ok(n) => buf.extend_from_slice(&chunk[..n]),
            Err(e) if is_timeout(&e) => {
                return Ok(ReadOutcome::TimedOut {
                    started: !buf.is_empty(),
                });
            }
            Err(e) => return Err(e),
        }
    };

    let head = match std::str::from_utf8(&buf[..head_end]) {
        Ok(h) => h,
        Err(_) => return Ok(ReadOutcome::Bad("non-utf8 request head")),
    };
    let mut lines = head.split("\r\n");
    let request_line = lines.next().unwrap_or("");
    let mut parts = request_line.split(' ');
    let (Some(method), Some(path), Some(version)) =
        (parts.next(), parts.next(), parts.next())
    else {
        return Ok(ReadOutcome::Bad("malformed request line"));
    };
    if parts.next().is_some() || method.is_empty() || !path.starts_with('/') {
        return Ok(ReadOutcome::Bad("malformed request line"));
    }

    let mut content_length = 0usize;
    let mut close = version.eq_ignore_ascii_case("HTTP/1.0");
    for line in lines {
        let Some((name, value)) = line.split_once(':') else {
            continue;
        };
        let value = value.trim();
        if name.eq_ignore_ascii_case("content-length") {
            match value.parse::<usize>() {
                Ok(n) => content_length = n,
                Err(_) => return Ok(ReadOutcome::Bad("bad content-length")),
            }
        } else if name.eq_ignore_ascii_case("connection") {
            if value.eq_ignore_ascii_case("close") {
                close = true;
            } else if value.eq_ignore_ascii_case("keep-alive") {
                close = false;
            }
        } else if name.eq_ignore_ascii_case("transfer-encoding") {
            return Ok(ReadOutcome::Bad("transfer-encoding unsupported"));
        }
    }
    if content_length > max_body {
        return Ok(ReadOutcome::Bad("body too large"));
    }
    // Own the head strings before the body loop grows `buf` again.
    let method = method.to_string();
    let path = path.to_string();

    let body_start = head_end + 4;
    while buf.len() < body_start + content_length {
        match conn.read(&mut chunk) {
            Ok(0) => return Ok(ReadOutcome::Bad("connection closed mid-body")),
            Ok(n) => buf.extend_from_slice(&chunk[..n]),
            Err(e) if is_timeout(&e) => return Ok(ReadOutcome::TimedOut { started: true }),
            Err(e) => return Err(e),
        }
    }

    let body = buf[body_start..body_start + content_length].to_vec();
    // Keep pipelined bytes of the next request.
    buf.drain(..body_start + content_length);
    Ok(ReadOutcome::Request(Request {
        method,
        path,
        body,
        close,
    }))
}

fn find_head_end(buf: &[u8]) -> Option<usize> {
    buf.windows(4).position(|w| w == b"\r\n\r\n")
}

fn is_timeout(e: &io::Error) -> bool {
    matches!(
        e.kind(),
        io::ErrorKind::WouldBlock | io::ErrorKind::TimedOut
    )
}

/// Write one response with a JSON body and flush it.
pub fn write_response(
    conn: &mut impl Write,
    status: u16,
    reason: &str,
    body: &str,
    close: bool,
) -> io::Result<()> {
    let head = format!(
        "HTTP/1.1 {status} {reason}\r\ncontent-type: application/json\r\ncontent-length: {}\r\nconnection: {}\r\n\r\n",
        body.len(),
        if close { "close" } else { "keep-alive" },
    );
    conn.write_all(head.as_bytes())?;
    conn.write_all(body.as_bytes())?;
    conn.flush()
}

#[cfg(test)]
mod tests {
    use super::*;

    fn read_all(raw: &[u8]) -> ReadOutcome {
        let mut cursor = io::Cursor::new(raw.to_vec());
        let mut buf = Vec::new();
        read_request(&mut cursor, &mut buf, 1024).unwrap()
    }

    #[test]
    fn parses_post_with_body() {
        let out = read_all(
            b"POST /predict HTTP/1.1\r\nHost: x\r\nContent-Length: 4\r\n\r\nabcd",
        );
        let ReadOutcome::Request(r) = out else {
            panic!("{out:?}")
        };
        assert_eq!(r.method, "POST");
        assert_eq!(r.path, "/predict");
        assert_eq!(r.body, b"abcd");
        assert!(!r.close);
    }

    #[test]
    fn pipelined_requests_stay_buffered() {
        let raw = b"GET /health HTTP/1.1\r\n\r\nGET /metrics HTTP/1.1\r\n\r\n";
        let mut cursor = io::Cursor::new(raw.to_vec());
        let mut buf = Vec::new();
        let ReadOutcome::Request(r1) = read_request(&mut cursor, &mut buf, 0).unwrap() else {
            panic!()
        };
        assert_eq!(r1.path, "/health");
        let ReadOutcome::Request(r2) = read_request(&mut cursor, &mut buf, 0).unwrap() else {
            panic!()
        };
        assert_eq!(r2.path, "/metrics");
        assert!(matches!(
            read_request(&mut cursor, &mut buf, 0).unwrap(),
            ReadOutcome::Closed
        ));
    }

    #[test]
    fn connection_close_and_http10_are_honoured() {
        let ReadOutcome::Request(r) =
            read_all(b"GET / HTTP/1.1\r\nConnection: close\r\n\r\n")
        else {
            panic!()
        };
        assert!(r.close);
        let ReadOutcome::Request(r) = read_all(b"GET / HTTP/1.0\r\n\r\n") else {
            panic!()
        };
        assert!(r.close);
    }

    #[test]
    fn malformed_heads_are_rejected() {
        for raw in [
            &b"GARBAGE\r\n\r\n"[..],
            b"GET nopath HTTP/1.1\r\n\r\n",
            b"POST / HTTP/1.1\r\nContent-Length: nan\r\n\r\n",
            b"POST / HTTP/1.1\r\nContent-Length: 99999\r\n\r\n",
            b"POST / HTTP/1.1\r\nTransfer-Encoding: chunked\r\n\r\n",
        ] {
            assert!(matches!(read_all(raw), ReadOutcome::Bad(_)), "{raw:?}");
        }
        assert!(matches!(
            read_all(b"GET / HTTP/1.1\r\nHo"),
            ReadOutcome::Bad(_)
        ));
    }

    #[test]
    fn response_has_framing_headers() {
        let mut out = Vec::new();
        write_response(&mut out, 200, "OK", "{\"a\":1}", false).unwrap();
        let s = String::from_utf8(out).unwrap();
        assert!(s.starts_with("HTTP/1.1 200 OK\r\n"));
        assert!(s.contains("content-length: 7\r\n"));
        assert!(s.ends_with("\r\n\r\n{\"a\":1}"));
    }
}
