//! Lock-free log-bucketed latency histogram.
//!
//! The obs crate's span accounting keeps only call count + total time,
//! which cannot answer "what is p99?". This histogram buckets request
//! latencies by power of two (microseconds), so concurrent workers
//! record with one relaxed atomic increment and `/metrics` reads
//! quantiles without coordination. Resolution is a factor of two —
//! coarse, but tail *orders of magnitude* are what a serving dashboard
//! watches, and the trade buys zero contention on the hot path.

use std::sync::atomic::{AtomicU64, Ordering};

/// Number of power-of-two buckets: covers 1 µs … ~2⁶² µs.
const BUCKETS: usize = 63;

/// Concurrent latency histogram over microsecond buckets.
#[derive(Debug)]
pub struct LatencyHistogram {
    /// `buckets[i]` counts observations with `floor(log2(µs)) == i`
    /// (bucket 0 also takes 0 µs).
    buckets: [AtomicU64; BUCKETS],
}

impl Default for LatencyHistogram {
    fn default() -> Self {
        Self::new()
    }
}

impl LatencyHistogram {
    /// An empty histogram.
    pub fn new() -> Self {
        LatencyHistogram {
            buckets: std::array::from_fn(|_| AtomicU64::new(0)),
        }
    }

    /// Record one observation of `micros` microseconds.
    pub fn observe(&self, micros: u64) {
        let idx = if micros == 0 {
            0
        } else {
            (micros.ilog2() as usize).min(BUCKETS - 1)
        };
        self.buckets[idx].fetch_add(1, Ordering::Relaxed);
    }

    /// Total observations recorded.
    pub fn count(&self) -> u64 {
        self.buckets.iter().map(|b| b.load(Ordering::Relaxed)).sum()
    }

    /// The `q`-quantile (`0 < q ≤ 1`) in microseconds, resolved to the
    /// upper edge of its bucket (a conservative latency bound). `None`
    /// when nothing was recorded.
    pub fn quantile(&self, q: f64) -> Option<u64> {
        let counts: Vec<u64> = self
            .buckets
            .iter()
            .map(|b| b.load(Ordering::Relaxed))
            .collect();
        let total: u64 = counts.iter().sum();
        if total == 0 {
            return None;
        }
        let target = ((q.clamp(0.0, 1.0) * total as f64).ceil() as u64).max(1);
        let mut seen = 0u64;
        for (i, &c) in counts.iter().enumerate() {
            seen += c;
            if seen >= target {
                // Upper edge of bucket i: 2^(i+1) − 1 µs.
                return Some(if i + 1 >= 64 { u64::MAX } else { (1 << (i + 1)) - 1 });
            }
        }
        None
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn quantiles_resolve_to_bucket_upper_edges() {
        let h = LatencyHistogram::new();
        for _ in 0..99 {
            h.observe(10); // bucket 3 → upper edge 15
        }
        h.observe(1000); // bucket 9 → upper edge 1023
        assert_eq!(h.count(), 100);
        assert_eq!(h.quantile(0.5), Some(15));
        assert_eq!(h.quantile(0.99), Some(15));
        assert_eq!(h.quantile(1.0), Some(1023));
    }

    #[test]
    fn empty_histogram_has_no_quantiles() {
        let h = LatencyHistogram::new();
        assert_eq!(h.quantile(0.5), None);
        assert_eq!(h.count(), 0);
    }

    #[test]
    fn zero_and_huge_observations_stay_in_range() {
        let h = LatencyHistogram::new();
        h.observe(0);
        h.observe(u64::MAX);
        assert_eq!(h.count(), 2);
        assert_eq!(h.quantile(0.25), Some(1));
        assert!(h.quantile(1.0).unwrap() > 1 << 62);
    }

    #[test]
    fn concurrent_observers_lose_nothing() {
        let h = std::sync::Arc::new(LatencyHistogram::new());
        let handles: Vec<_> = (0..4)
            .map(|t| {
                let h = h.clone();
                std::thread::spawn(move || {
                    for i in 0..1000u64 {
                        h.observe(t * 100 + i % 50);
                    }
                })
            })
            .collect();
        for j in handles {
            j.join().unwrap();
        }
        assert_eq!(h.count(), 4000);
    }
}
