//! Cholesky factorisation and solves for the symmetric positive
//! (semi-)definite Gram matrices `X'WX` arising in least squares.
//!
//! Tiny regions can yield rank-deficient Gram matrices (constant or
//! collinear features). [`solve_spd_ridged`] retries with a small ridge
//! proportional to the matrix trace, which is the standard regularised
//! fallback and keeps bellwether search total — a region never aborts the
//! search, it just gets an honest (usually poor) model.

// Triangular-solve loops index neighbouring rows; indexed form is the
// clearest here.
#![allow(clippy::needless_range_loop)]

use crate::matrix::Matrix;

/// Error from a failed factorisation.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct NotPositiveDefinite {
    /// Pivot index where factorisation broke down.
    pub pivot: usize,
}

impl std::fmt::Display for NotPositiveDefinite {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "matrix not positive definite at pivot {}", self.pivot)
    }
}

impl std::error::Error for NotPositiveDefinite {}

/// Lower-triangular Cholesky factor `L` with `L·L' = A`.
#[derive(Debug, Clone)]
pub struct Cholesky {
    l: Matrix,
}

impl Cholesky {
    /// Factor a symmetric positive definite matrix.
    pub fn factor(a: &Matrix) -> Result<Self, NotPositiveDefinite> {
        assert_eq!(a.rows(), a.cols(), "cholesky of non-square matrix");
        let n = a.rows();
        let mut l = Matrix::zeros(n, n);
        for i in 0..n {
            for j in 0..=i {
                let mut sum = a[(i, j)];
                for k in 0..j {
                    sum -= l[(i, k)] * l[(j, k)];
                }
                if i == j {
                    if sum <= 0.0 || !sum.is_finite() {
                        return Err(NotPositiveDefinite { pivot: i });
                    }
                    l[(i, j)] = sum.sqrt();
                } else {
                    l[(i, j)] = sum / l[(j, j)];
                }
            }
        }
        Ok(Cholesky { l })
    }

    /// Solve `A x = b` using the factorisation.
    pub fn solve(&self, b: &[f64]) -> Vec<f64> {
        let n = self.l.rows();
        assert_eq!(b.len(), n, "rhs length mismatch");
        // Forward substitution: L y = b
        let mut y = vec![0.0; n];
        for i in 0..n {
            let mut sum = b[i];
            for k in 0..i {
                sum -= self.l[(i, k)] * y[k];
            }
            y[i] = sum / self.l[(i, i)];
        }
        // Back substitution: L' x = y
        let mut x = vec![0.0; n];
        for i in (0..n).rev() {
            let mut sum = y[i];
            for k in (i + 1)..n {
                sum -= self.l[(k, i)] * x[k];
            }
            x[i] = sum / self.l[(i, i)];
        }
        x
    }

    /// The lower-triangular factor.
    pub fn l(&self) -> &Matrix {
        &self.l
    }
}

/// Relative ridge magnitude used by [`solve_spd_ridged`].
pub const RIDGE_EPS: f64 = 1e-9;

/// Diagnostics from a (possibly ridged) SPD solve.
#[derive(Debug, Clone, Copy, PartialEq, Default)]
pub struct FitDiagnostics {
    /// Relative ridge level `λ` the solve settled on: `0.0` when plain
    /// Cholesky succeeded, otherwise the multiplier of `trace(A)/n` that
    /// was added to the diagonal to rescue the factorisation.
    pub ridge_lambda: f64,
}

impl FitDiagnostics {
    /// True if the solve needed a ridge to go through.
    pub fn ridged(&self) -> bool {
        self.ridge_lambda > 0.0
    }
}

/// Number of entries in packed lower-triangular storage for `p` rows.
pub const fn packed_len(p: usize) -> usize {
    p * (p + 1) / 2
}

/// Index of entry `(i, j)` (`j ≤ i`) in packed lower-triangular
/// row-major storage: row `i` occupies `i(i+1)/2 .. i(i+1)/2 + i + 1`.
pub const fn packed_idx(i: usize, j: usize) -> usize {
    i * (i + 1) / 2 + j
}

/// In-place Cholesky of a packed lower-triangular SPD matrix: on success
/// `a` holds the packed factor `L` with `L·L' = A`. Loop order matches
/// [`Cholesky::factor`] exactly, so both produce bit-identical factors.
pub fn packed_cholesky_in_place(a: &mut [f64], p: usize) -> Result<(), NotPositiveDefinite> {
    debug_assert_eq!(a.len(), packed_len(p), "packed length mismatch");
    for i in 0..p {
        let row_i = packed_idx(i, 0);
        for j in 0..=i {
            let row_j = packed_idx(j, 0);
            let mut sum = a[row_i + j];
            for k in 0..j {
                sum -= a[row_i + k] * a[row_j + k];
            }
            if i == j {
                if sum <= 0.0 || !sum.is_finite() {
                    return Err(NotPositiveDefinite { pivot: i });
                }
                a[row_i + j] = sum.sqrt();
            } else {
                a[row_i + j] = sum / a[row_j + j];
            }
        }
    }
    Ok(())
}

/// Solve `L·L' x = b` from a packed factor, writing the solution into
/// `x` (used as the only workspace — forward substitution fills it, back
/// substitution overwrites it; the arithmetic matches
/// [`Cholesky::solve`] bit for bit).
pub fn packed_solve_in_place(l: &[f64], p: usize, b: &[f64], x: &mut [f64]) {
    debug_assert_eq!(l.len(), packed_len(p), "packed length mismatch");
    assert_eq!(b.len(), p, "rhs length mismatch");
    assert_eq!(x.len(), p, "solution buffer length mismatch");
    // Forward substitution: L y = b (y lands in x).
    for i in 0..p {
        let row_i = packed_idx(i, 0);
        let mut sum = b[i];
        for k in 0..i {
            sum -= l[row_i + k] * x[k];
        }
        x[i] = sum / l[row_i + i];
    }
    // Back substitution: L' x = y. Entry (k, i) of L lives at row k.
    for i in (0..p).rev() {
        let mut sum = x[i];
        for k in (i + 1)..p {
            sum -= l[packed_idx(k, i)] * x[k];
        }
        x[i] = sum / l[packed_idx(i, i)];
    }
}

/// Trace of a packed lower-triangular matrix.
pub fn packed_trace(a: &[f64], p: usize) -> f64 {
    (0..p).map(|i| a[packed_idx(i, i)]).sum()
}

/// Packed analogue of [`solve_spd_ridged`], reusing caller-provided
/// buffers so the hot path performs no heap allocation once `factor` and
/// `x` are warm: copies `a` into `factor`, factors in place (retrying
/// with the escalating ridge λ·(trace(A)/p)·I, λ = 1e-9, 1e-6, 1e-3) and
/// solves into `x`. Returns the settled ridge level, or `None` for
/// hopeless inputs.
pub fn packed_solve_spd_ridged(
    a: &[f64],
    p: usize,
    b: &[f64],
    factor: &mut Vec<f64>,
    x: &mut Vec<f64>,
) -> Option<FitDiagnostics> {
    debug_assert_eq!(a.len(), packed_len(p), "packed length mismatch");
    x.clear();
    x.resize(p, 0.0);
    factor.clear();
    factor.extend_from_slice(a);
    if packed_cholesky_in_place(factor, p).is_ok() {
        packed_solve_in_place(factor, p, b, x);
        return Some(FitDiagnostics { ridge_lambda: 0.0 });
    }
    let mean_diag = packed_trace(a, p) / p.max(1) as f64;
    let base = if mean_diag.abs() > 0.0 && mean_diag.is_finite() {
        mean_diag.abs()
    } else {
        1.0
    };
    for lambda in [RIDGE_EPS, 1e-6, 1e-3] {
        factor.clear();
        factor.extend_from_slice(a);
        for i in 0..p {
            factor[packed_idx(i, i)] += lambda * base;
        }
        if packed_cholesky_in_place(factor, p).is_ok() {
            packed_solve_in_place(factor, p, b, x);
            return Some(FitDiagnostics { ridge_lambda: lambda });
        }
    }
    None
}

/// [`solve_spd_ridged`] that also reports the ridge level it settled on
/// (previously discarded), so degenerate regions are debuggable.
pub fn solve_spd_ridged_diag(a: &Matrix, b: &[f64]) -> Option<(Vec<f64>, FitDiagnostics)> {
    let n = a.rows();
    assert_eq!(a.cols(), n, "ridged solve of non-square matrix");
    let mut packed = Vec::with_capacity(packed_len(n));
    for i in 0..n {
        for j in 0..=i {
            packed.push(a[(i, j)]);
        }
    }
    let mut factor = Vec::new();
    let mut x = Vec::new();
    let diag = packed_solve_spd_ridged(&packed, n, b, &mut factor, &mut x)?;
    Some((x, diag))
}

/// Solve `A x = b` for symmetric positive semi-definite `A`, adding an
/// escalating ridge `λ·(trace(A)/n)·I` (λ = 1e-9, 1e-6, 1e-3) when plain
/// Cholesky fails. Returns `None` only for hopeless inputs (e.g. all-zero
/// or non-finite matrices). See [`solve_spd_ridged_diag`] to learn which
/// ridge level the solve settled on.
pub fn solve_spd_ridged(a: &Matrix, b: &[f64]) -> Option<Vec<f64>> {
    solve_spd_ridged_diag(a, b).map(|(x, _)| x)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn spd3() -> Matrix {
        // A = M'M + I for a random-ish M, guaranteed SPD.
        Matrix::from_rows(
            3,
            3,
            vec![5.0, 2.0, 1.0, 2.0, 6.0, 2.0, 1.0, 2.0, 4.0],
        )
    }

    #[test]
    fn factor_reconstructs() {
        let a = spd3();
        let f = Cholesky::factor(&a).unwrap();
        let back = f.l().matmul(&f.l().transpose());
        assert!(a.max_abs_diff(&back) < 1e-12);
    }

    #[test]
    fn solve_matches_direct_check() {
        let a = spd3();
        let x_true = vec![1.0, -2.0, 0.5];
        let b = a.matvec(&x_true);
        let x = Cholesky::factor(&a).unwrap().solve(&b);
        for (xi, ti) in x.iter().zip(&x_true) {
            assert!((xi - ti).abs() < 1e-10, "{xi} vs {ti}");
        }
    }

    #[test]
    fn rejects_indefinite() {
        let a = Matrix::from_rows(2, 2, vec![1.0, 2.0, 2.0, 1.0]); // eigenvalues 3, -1
        assert!(Cholesky::factor(&a).is_err());
    }

    #[test]
    fn ridge_rescues_singular() {
        // Rank-1 matrix: plain Cholesky fails, ridge succeeds.
        let a = Matrix::from_rows(2, 2, vec![1.0, 1.0, 1.0, 1.0]);
        let x = solve_spd_ridged(&a, &[2.0, 2.0]).unwrap();
        // Ridged solution of a consistent system stays close to a valid
        // least-norm solution: x0 + x1 ≈ 2.
        assert!((x[0] + x[1] - 2.0).abs() < 1e-3);
    }

    #[test]
    fn ridge_gives_up_on_garbage() {
        let a = Matrix::from_rows(1, 1, vec![f64::NAN]);
        assert!(solve_spd_ridged(&a, &[1.0]).is_none());
    }

    #[test]
    fn one_by_one() {
        let a = Matrix::from_rows(1, 1, vec![4.0]);
        let x = Cholesky::factor(&a).unwrap().solve(&[8.0]);
        assert_eq!(x, vec![2.0]);
    }

    fn pack(a: &Matrix) -> Vec<f64> {
        let n = a.rows();
        let mut p = Vec::with_capacity(packed_len(n));
        for i in 0..n {
            for j in 0..=i {
                p.push(a[(i, j)]);
            }
        }
        p
    }

    #[test]
    fn packed_layout_indexing() {
        assert_eq!(packed_len(0), 0);
        assert_eq!(packed_len(3), 6);
        assert_eq!(packed_idx(0, 0), 0);
        assert_eq!(packed_idx(2, 1), 4);
        assert_eq!(packed_idx(3, 0), 6);
    }

    #[test]
    fn packed_factor_bit_identical_to_dense() {
        let a = spd3();
        let dense = Cholesky::factor(&a).unwrap();
        let mut packed = pack(&a);
        packed_cholesky_in_place(&mut packed, 3).unwrap();
        for i in 0..3 {
            for j in 0..=i {
                assert_eq!(
                    packed[packed_idx(i, j)].to_bits(),
                    dense.l()[(i, j)].to_bits(),
                    "factor entry ({i},{j})"
                );
            }
        }
    }

    #[test]
    fn packed_solve_bit_identical_to_dense() {
        let a = spd3();
        let b = [1.0, -2.0, 0.5];
        let dense = Cholesky::factor(&a).unwrap().solve(&b);
        let mut l = pack(&a);
        packed_cholesky_in_place(&mut l, 3).unwrap();
        let mut x = vec![0.0; 3];
        packed_solve_in_place(&l, 3, &b, &mut x);
        for (xi, di) in x.iter().zip(&dense) {
            assert_eq!(xi.to_bits(), di.to_bits());
        }
    }

    #[test]
    fn packed_ridged_reports_clean_solve() {
        let a = spd3();
        let (mut factor, mut x) = (Vec::new(), Vec::new());
        let diag =
            packed_solve_spd_ridged(&pack(&a), 3, &[1.0, 0.0, 2.0], &mut factor, &mut x).unwrap();
        assert_eq!(diag.ridge_lambda, 0.0);
        assert!(!diag.ridged());
    }

    #[test]
    fn ridged_diag_reports_settled_lambda() {
        // Rank-1 matrix: plain Cholesky fails, the first ridge rescues.
        let a = Matrix::from_rows(2, 2, vec![1.0, 1.0, 1.0, 1.0]);
        let (x, diag) = solve_spd_ridged_diag(&a, &[2.0, 2.0]).unwrap();
        assert_eq!(diag.ridge_lambda, RIDGE_EPS);
        assert!(diag.ridged());
        assert!((x[0] + x[1] - 2.0).abs() < 1e-3);
    }

    #[test]
    fn packed_ridged_reuses_buffers_without_realloc() {
        let a = pack(&spd3());
        let (mut factor, mut x) = (Vec::new(), Vec::new());
        packed_solve_spd_ridged(&a, 3, &[1.0, 2.0, 3.0], &mut factor, &mut x).unwrap();
        let (fc, xc) = (factor.capacity(), x.capacity());
        let (fp, xp) = (factor.as_ptr(), x.as_ptr());
        for _ in 0..10 {
            packed_solve_spd_ridged(&a, 3, &[3.0, 2.0, 1.0], &mut factor, &mut x).unwrap();
        }
        assert_eq!((factor.capacity(), x.capacity()), (fc, xc));
        assert_eq!((factor.as_ptr(), x.as_ptr()), (fp, xp));
    }
}
