//! Cholesky factorisation and solves for the symmetric positive
//! (semi-)definite Gram matrices `X'WX` arising in least squares.
//!
//! Tiny regions can yield rank-deficient Gram matrices (constant or
//! collinear features). [`solve_spd_ridged`] retries with a small ridge
//! proportional to the matrix trace, which is the standard regularised
//! fallback and keeps bellwether search total — a region never aborts the
//! search, it just gets an honest (usually poor) model.

// Triangular-solve loops index neighbouring rows; indexed form is the
// clearest here.
#![allow(clippy::needless_range_loop)]

use crate::matrix::Matrix;

/// Error from a failed factorisation.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct NotPositiveDefinite {
    /// Pivot index where factorisation broke down.
    pub pivot: usize,
}

impl std::fmt::Display for NotPositiveDefinite {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "matrix not positive definite at pivot {}", self.pivot)
    }
}

impl std::error::Error for NotPositiveDefinite {}

/// Lower-triangular Cholesky factor `L` with `L·L' = A`.
#[derive(Debug, Clone)]
pub struct Cholesky {
    l: Matrix,
}

impl Cholesky {
    /// Factor a symmetric positive definite matrix.
    pub fn factor(a: &Matrix) -> Result<Self, NotPositiveDefinite> {
        assert_eq!(a.rows(), a.cols(), "cholesky of non-square matrix");
        let n = a.rows();
        let mut l = Matrix::zeros(n, n);
        for i in 0..n {
            for j in 0..=i {
                let mut sum = a[(i, j)];
                for k in 0..j {
                    sum -= l[(i, k)] * l[(j, k)];
                }
                if i == j {
                    if sum <= 0.0 || !sum.is_finite() {
                        return Err(NotPositiveDefinite { pivot: i });
                    }
                    l[(i, j)] = sum.sqrt();
                } else {
                    l[(i, j)] = sum / l[(j, j)];
                }
            }
        }
        Ok(Cholesky { l })
    }

    /// Solve `A x = b` using the factorisation.
    pub fn solve(&self, b: &[f64]) -> Vec<f64> {
        let n = self.l.rows();
        assert_eq!(b.len(), n, "rhs length mismatch");
        // Forward substitution: L y = b
        let mut y = vec![0.0; n];
        for i in 0..n {
            let mut sum = b[i];
            for k in 0..i {
                sum -= self.l[(i, k)] * y[k];
            }
            y[i] = sum / self.l[(i, i)];
        }
        // Back substitution: L' x = y
        let mut x = vec![0.0; n];
        for i in (0..n).rev() {
            let mut sum = y[i];
            for k in (i + 1)..n {
                sum -= self.l[(k, i)] * x[k];
            }
            x[i] = sum / self.l[(i, i)];
        }
        x
    }

    /// The lower-triangular factor.
    pub fn l(&self) -> &Matrix {
        &self.l
    }
}

/// Relative ridge magnitude used by [`solve_spd_ridged`].
pub const RIDGE_EPS: f64 = 1e-9;

/// Solve `A x = b` for symmetric positive semi-definite `A`, adding an
/// escalating ridge `λ·(trace(A)/n)·I` (λ = 1e-9, 1e-6, 1e-3) when plain
/// Cholesky fails. Returns `None` only for hopeless inputs (e.g. all-zero
/// or non-finite matrices).
pub fn solve_spd_ridged(a: &Matrix, b: &[f64]) -> Option<Vec<f64>> {
    if let Ok(f) = Cholesky::factor(a) {
        return Some(f.solve(b));
    }
    let n = a.rows();
    let mean_diag = a.trace() / n.max(1) as f64;
    let base = if mean_diag.abs() > 0.0 && mean_diag.is_finite() {
        mean_diag.abs()
    } else {
        1.0
    };
    for lambda in [RIDGE_EPS, 1e-6, 1e-3] {
        let mut ridged = a.clone();
        for i in 0..n {
            ridged[(i, i)] += lambda * base;
        }
        if let Ok(f) = Cholesky::factor(&ridged) {
            return Some(f.solve(b));
        }
    }
    None
}

#[cfg(test)]
mod tests {
    use super::*;

    fn spd3() -> Matrix {
        // A = M'M + I for a random-ish M, guaranteed SPD.
        Matrix::from_rows(
            3,
            3,
            vec![5.0, 2.0, 1.0, 2.0, 6.0, 2.0, 1.0, 2.0, 4.0],
        )
    }

    #[test]
    fn factor_reconstructs() {
        let a = spd3();
        let f = Cholesky::factor(&a).unwrap();
        let back = f.l().matmul(&f.l().transpose());
        assert!(a.max_abs_diff(&back) < 1e-12);
    }

    #[test]
    fn solve_matches_direct_check() {
        let a = spd3();
        let x_true = vec![1.0, -2.0, 0.5];
        let b = a.matvec(&x_true);
        let x = Cholesky::factor(&a).unwrap().solve(&b);
        for (xi, ti) in x.iter().zip(&x_true) {
            assert!((xi - ti).abs() < 1e-10, "{xi} vs {ti}");
        }
    }

    #[test]
    fn rejects_indefinite() {
        let a = Matrix::from_rows(2, 2, vec![1.0, 2.0, 2.0, 1.0]); // eigenvalues 3, -1
        assert!(Cholesky::factor(&a).is_err());
    }

    #[test]
    fn ridge_rescues_singular() {
        // Rank-1 matrix: plain Cholesky fails, ridge succeeds.
        let a = Matrix::from_rows(2, 2, vec![1.0, 1.0, 1.0, 1.0]);
        let x = solve_spd_ridged(&a, &[2.0, 2.0]).unwrap();
        // Ridged solution of a consistent system stays close to a valid
        // least-norm solution: x0 + x1 ≈ 2.
        assert!((x[0] + x[1] - 2.0).abs() < 1e-3);
    }

    #[test]
    fn ridge_gives_up_on_garbage() {
        let a = Matrix::from_rows(1, 1, vec![f64::NAN]);
        assert!(solve_spd_ridged(&a, &[1.0]).is_none());
    }

    #[test]
    fn one_by_one() {
        let a = Matrix::from_rows(1, 1, vec![4.0]);
        let x = Cholesky::factor(&a).unwrap().solve(&[8.0]);
        assert_eq!(x, vec![2.0]);
    }
}
