//! k-fold cross-validation for linear models (§2 of the paper).
//!
//! The dataset is shuffled deterministically by seed, split into `k`
//! near-equal folds, and for each fold a model is trained on the
//! complement and evaluated (RMSE) on the fold. The cross-validation
//! error is the mean fold RMSE, with a standard error from the fold
//! spread — exactly the estimate Figures 7–9 are built on.

use crate::confint::ErrorEstimate;
use crate::dataset::RegressionData;
use crate::model::fit_wls;
use crate::stats::SplitMix64;
use crate::suffstats::RegSuffStats;

/// Assign each of `n` rows to one of `k` folds, shuffled by `seed`.
/// Fold sizes differ by at most one. `k` is clamped to `n`.
pub fn fold_assignment(n: usize, k: usize, seed: u64) -> Vec<usize> {
    let mut order = Vec::new();
    let mut folds = Vec::new();
    fold_assignment_into(n, k, seed, &mut order, &mut folds);
    folds
}

/// [`fold_assignment`] writing into caller-provided buffers (both are
/// overwritten and end with length `n`; `order` is the shuffle
/// workspace). No heap allocation once the buffers are warm — the
/// algebraic CV engine calls this once per region.
pub fn fold_assignment_into(
    n: usize,
    k: usize,
    seed: u64,
    order: &mut Vec<usize>,
    folds: &mut Vec<usize>,
) {
    let k = k.max(1).min(n.max(1));
    order.clear();
    order.extend(0..n);
    SplitMix64::new(seed).shuffle(order);
    folds.clear();
    folds.resize(n, 0);
    for (pos, &row) in order.iter().enumerate() {
        folds[row] = pos % k;
    }
}

/// The result of a cross-validation run.
#[derive(Debug, Clone)]
pub struct CvResult {
    /// RMSE per fold (folds that could not fit a model are skipped).
    pub fold_rmses: Vec<f64>,
    /// Folds requested.
    pub k: usize,
}

impl CvResult {
    /// The cross-validation error estimate (mean fold RMSE ± spread).
    pub fn estimate(&self) -> ErrorEstimate {
        ErrorEstimate::from_folds(&self.fold_rmses)
    }
}

/// k-fold cross-validated RMSE of a WLS linear model on `data`.
///
/// Returns `None` when no fold could train a model (dataset smaller than
/// the feature count), mirroring how the search treats unfittable regions
/// as infeasible.
pub fn cross_validate(data: &RegressionData, k: usize, seed: u64) -> Option<CvResult> {
    let n = data.n();
    if n < 2 {
        return None;
    }
    let assignment = fold_assignment(n, k, seed);
    let k = assignment.iter().copied().max().map_or(1, |m| m + 1);

    // Fold-complement training via sufficient statistics: accumulate the
    // full-data statistic once, then subtract each fold — O(n·p²) total
    // instead of O(k·n·p²). Subtraction is exact because the statistic is
    // a sum of per-example terms.
    let full = RegSuffStats::from_dataset(data);
    let mut fold_stats: Vec<RegSuffStats> = (0..k).map(|_| RegSuffStats::new(data.p())).collect();
    for (i, &f) in assignment.iter().enumerate() {
        fold_stats[f].add_from_cols(data.cols(), i, data.y(i), data.w(i));
    }

    let mut fold_rmses = Vec::with_capacity(k);
    #[allow(clippy::needless_range_loop)] // fold id is also the label
    for fold in 0..k {
        let mut train = full.clone();
        train.subtract(&fold_stats[fold]);
        let Some(model) = train.fit() else { continue };
        // Evaluate on the held-out fold.
        let beta = model.coefficients();
        let mut sse = 0.0;
        let mut count = 0usize;
        for (i, &f) in assignment.iter().enumerate() {
            if f == fold {
                let r = data.y(i) - data.predict_at(i, beta);
                sse += r * r;
                count += 1;
            }
        }
        if count > 0 {
            fold_rmses.push((sse / count as f64).sqrt());
        }
    }
    if fold_rmses.is_empty() {
        return None;
    }
    Some(CvResult { fold_rmses, k })
}

/// Convenience: cross-validated error estimate, or `None` if unfittable.
pub fn cross_val_estimate(data: &RegressionData, k: usize, seed: u64) -> Option<ErrorEstimate> {
    cross_validate(data, k, seed).map(|r| r.estimate())
}

/// Training-set error estimate: fit on all of `data`, report RMSE on the
/// same data with `n − p` degrees of freedom (§2 "training-set error").
pub fn training_set_estimate(data: &RegressionData) -> Option<ErrorEstimate> {
    let stats = RegSuffStats::from_dataset(data);
    let rmse = stats.rmse()?;
    // A linear model's training-set RMSE has a standard error; estimate it
    // with the delta method from the spread of squared residuals so that
    // confidence-based analyses (Fig. 7b) remain usable in training-set
    // mode. Falls back to a point estimate for degenerate fits.
    let model = fit_wls(data)?;
    let sq: Vec<f64> = (0..data.n())
        .map(|i| {
            let r = data.y(i) - data.predict_at(i, model.coefficients());
            r * r
        })
        .collect();
    let std_err = if rmse > 0.0 && sq.len() > 1 {
        crate::stats::sample_std(&sq) / (2.0 * rmse * (sq.len() as f64).sqrt())
    } else {
        0.0
    };
    Some(ErrorEstimate {
        value: rmse,
        std_err,
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    fn noisy_line(n: usize, noise: f64, seed: u64) -> RegressionData {
        let mut rng = SplitMix64::new(seed);
        let mut d = RegressionData::new(2);
        for i in 0..n {
            let x = i as f64 / 10.0;
            let e = (rng.next_u64() as f64 / u64::MAX as f64 - 0.5) * 2.0 * noise;
            d.push(&[1.0, x], 1.0 + 2.0 * x + e);
        }
        d
    }

    #[test]
    fn folds_are_balanced_and_deterministic() {
        let a = fold_assignment(103, 10, 42);
        let b = fold_assignment(103, 10, 42);
        assert_eq!(a, b);
        let mut sizes = [0usize; 10];
        for &f in &a {
            sizes[f] += 1;
        }
        assert_eq!(sizes.iter().sum::<usize>(), 103);
        assert!(sizes.iter().all(|&s| s == 10 || s == 11));
        assert_ne!(a, fold_assignment(103, 10, 43));
    }

    #[test]
    fn cv_error_tracks_noise() {
        let quiet = cross_validate(&noisy_line(200, 0.01, 1), 10, 7).unwrap();
        let loud = cross_validate(&noisy_line(200, 5.0, 1), 10, 7).unwrap();
        assert_eq!(quiet.fold_rmses.len(), 10);
        assert!(quiet.estimate().value < loud.estimate().value);
        assert!(quiet.estimate().value < 0.02);
    }

    #[test]
    fn cv_close_to_training_error_for_linear_models() {
        // The Fig. 7(c) claim: training-set error ≈ CV error for linear
        // models on reasonable data.
        let d = noisy_line(500, 1.0, 3);
        let cv = cross_val_estimate(&d, 10, 7).unwrap().value;
        let tr = training_set_estimate(&d).unwrap().value;
        assert!(
            (cv - tr).abs() / tr < 0.1,
            "cv {cv} should be within 10% of training {tr}"
        );
    }

    #[test]
    fn too_small_data_returns_none() {
        let mut d = RegressionData::new(3);
        d.push(&[1.0, 2.0, 3.0], 1.0);
        assert!(cross_validate(&d, 10, 0).is_none());
        assert!(training_set_estimate(&d).is_none());
    }

    #[test]
    fn k_clamped_to_n() {
        let d = noisy_line(5, 0.1, 2);
        let r = cross_validate(&d, 10, 0).unwrap();
        assert!(r.fold_rmses.len() <= 5);
    }

    #[test]
    fn deterministic_given_seed() {
        let d = noisy_line(100, 1.0, 4);
        let a = cross_val_estimate(&d, 10, 11).unwrap();
        let b = cross_val_estimate(&d, 10, 11).unwrap();
        assert_eq!(a.value, b.value);
    }
}
