//! Fitted linear models and the convenience OLS/WLS entry points.

use crate::dataset::RegressionData;
use crate::suffstats::RegSuffStats;

/// A fitted linear model `ŷ = x'β`. The intercept, if any, is the
/// coefficient of a constant-1 feature column supplied by the caller.
#[derive(Debug, Clone, PartialEq)]
pub struct LinearModel {
    beta: Vec<f64>,
}

impl LinearModel {
    /// Wrap a coefficient vector.
    pub fn new(beta: Vec<f64>) -> Self {
        LinearModel { beta }
    }

    /// The coefficients β.
    pub fn coefficients(&self) -> &[f64] {
        &self.beta
    }

    /// Number of features the model expects.
    pub fn p(&self) -> usize {
        self.beta.len()
    }

    /// Predict one example.
    pub fn predict(&self, x: &[f64]) -> f64 {
        debug_assert_eq!(x.len(), self.beta.len(), "feature width mismatch");
        x.iter().zip(&self.beta).map(|(a, b)| a * b).sum()
    }

    /// Root mean squared prediction error over a dataset (unweighted,
    /// the evaluation metric used throughout the paper's figures).
    pub fn rmse_on(&self, data: &RegressionData) -> f64 {
        if data.is_empty() {
            return 0.0;
        }
        let sse: f64 = (0..data.n())
            .map(|i| {
                let r = data.y(i) - data.predict_at(i, &self.beta);
                r * r
            })
            .sum();
        (sse / data.n() as f64).sqrt()
    }
}

/// Fit ordinary least squares on `data` (weights ignored — all treated
/// as 1, per the reduction noted in §6.4 of the paper).
pub fn fit_ols(data: &RegressionData) -> Option<LinearModel> {
    let mut stats = RegSuffStats::new(data.p());
    stats.add_rows_unweighted(data);
    stats.fit()
}

/// Fit weighted least squares using the dataset's weights.
pub fn fit_wls(data: &RegressionData) -> Option<LinearModel> {
    RegSuffStats::from_dataset(data).fit()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn predict_is_dot_product() {
        let m = LinearModel::new(vec![2.0, -1.0]);
        assert_eq!(m.predict(&[3.0, 4.0]), 2.0);
        assert_eq!(m.p(), 2);
    }

    #[test]
    fn ols_ignores_weights_wls_uses_them() {
        let mut d = RegressionData::new(1);
        d.push_weighted(&[1.0], 0.0, 1.0);
        d.push_weighted(&[1.0], 10.0, 3.0);
        let ols = fit_ols(&d).unwrap();
        let wls = fit_wls(&d).unwrap();
        assert!((ols.coefficients()[0] - 5.0).abs() < 1e-9);
        assert!((wls.coefficients()[0] - 7.5).abs() < 1e-9);
    }

    #[test]
    fn rmse_on_exact_fit_is_zero() {
        let mut d = RegressionData::new(2);
        for i in 0..4 {
            d.push(&[1.0, i as f64], 1.0 + 2.0 * i as f64);
        }
        let m = fit_ols(&d).unwrap();
        assert!(m.rmse_on(&d) < 1e-9);
    }

    #[test]
    fn rmse_on_empty_is_zero() {
        let m = LinearModel::new(vec![1.0]);
        assert_eq!(m.rmse_on(&RegressionData::new(1)), 0.0);
    }
}
