//! Flat row-major regression datasets: the `(X, Y, W)` triples that
//! region training sets reduce to once features are generated.


/// A regression training set: `n` examples of `p` features each, with
/// targets and per-example weights (all 1.0 for ordinary least squares).
///
/// Rows are stored row-major in one flat buffer for cache-friendly scans;
/// `p` includes the intercept column if the caller added one (see
/// [`RegressionData::push_with_intercept`]).
#[derive(Debug, Clone, PartialEq)]
pub struct RegressionData {
    p: usize,
    xs: Vec<f64>,
    ys: Vec<f64>,
    ws: Vec<f64>,
}

impl RegressionData {
    /// Empty dataset with `p` feature columns.
    pub fn new(p: usize) -> Self {
        RegressionData {
            p,
            xs: Vec::new(),
            ys: Vec::new(),
            ws: Vec::new(),
        }
    }

    /// Empty dataset with capacity hints.
    pub fn with_capacity(p: usize, n: usize) -> Self {
        RegressionData {
            p,
            xs: Vec::with_capacity(p * n),
            ys: Vec::with_capacity(n),
            ws: Vec::with_capacity(n),
        }
    }

    /// Features per example.
    pub fn p(&self) -> usize {
        self.p
    }

    /// Number of examples.
    pub fn n(&self) -> usize {
        self.ys.len()
    }

    /// True if no examples.
    pub fn is_empty(&self) -> bool {
        self.ys.is_empty()
    }

    /// Drop all examples and (re)set the feature width, keeping the
    /// allocated buffers — the reuse hook for zero-allocation scan
    /// scratch.
    pub fn reset(&mut self, p: usize) {
        self.p = p;
        self.xs.clear();
        self.ys.clear();
        self.ws.clear();
    }

    /// Reserve room for `n` examples at the current width. Returns `true`
    /// if any buffer had to grow (scratch-reuse accounting).
    pub fn ensure_capacity(&mut self, n: usize) -> bool {
        let grew = self.ys.capacity() < n
            || self.ws.capacity() < n
            || self.xs.capacity() < n * self.p;
        let extra = n.saturating_sub(self.ys.len());
        self.xs.reserve(extra * self.p);
        self.ys.reserve(extra);
        self.ws.reserve(extra);
        grew
    }

    /// Append an example with explicit weight. Panics if `x.len() != p`.
    pub fn push_weighted(&mut self, x: &[f64], y: f64, w: f64) {
        assert_eq!(x.len(), self.p, "feature vector length mismatch");
        debug_assert!(w > 0.0, "weights must be positive");
        self.xs.extend_from_slice(x);
        self.ys.push(y);
        self.ws.push(w);
    }

    /// Append an example with weight 1.
    pub fn push(&mut self, x: &[f64], y: f64) {
        self.push_weighted(x, y, 1.0);
    }

    /// Append an example prefixing the constant intercept feature, so the
    /// stored row is `[1, x...]`. The dataset must have `p = x.len() + 1`.
    pub fn push_with_intercept(&mut self, x: &[f64], y: f64) {
        assert_eq!(x.len() + 1, self.p, "feature vector length mismatch");
        self.xs.push(1.0);
        self.xs.extend_from_slice(x);
        self.ys.push(y);
        self.ws.push(1.0);
    }

    /// Feature row `i`.
    pub fn x(&self, i: usize) -> &[f64] {
        &self.xs[i * self.p..(i + 1) * self.p]
    }

    /// Target `i`.
    pub fn y(&self, i: usize) -> f64 {
        self.ys[i]
    }

    /// Weight `i`.
    pub fn w(&self, i: usize) -> f64 {
        self.ws[i]
    }

    /// All targets.
    pub fn ys(&self) -> &[f64] {
        &self.ys
    }

    /// New dataset with the rows at `indices` (duplicates allowed).
    pub fn subset(&self, indices: &[usize]) -> RegressionData {
        let mut out = RegressionData::with_capacity(self.p, indices.len());
        for &i in indices {
            out.push_weighted(self.x(i), self.y(i), self.w(i));
        }
        out
    }

    /// Iterate `(x, y, w)` rows.
    pub fn iter(&self) -> impl Iterator<Item = (&[f64], f64, f64)> + '_ {
        (0..self.n()).map(move |i| (self.x(i), self.y(i), self.w(i)))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn push_and_read() {
        let mut d = RegressionData::new(2);
        d.push(&[1.0, 2.0], 3.0);
        d.push_weighted(&[4.0, 5.0], 6.0, 2.0);
        assert_eq!(d.n(), 2);
        assert_eq!(d.x(1), &[4.0, 5.0]);
        assert_eq!(d.y(0), 3.0);
        assert_eq!(d.w(1), 2.0);
        assert_eq!(d.ys(), &[3.0, 6.0]);
    }

    #[test]
    fn intercept_prefix() {
        let mut d = RegressionData::new(3);
        d.push_with_intercept(&[7.0, 8.0], 9.0);
        assert_eq!(d.x(0), &[1.0, 7.0, 8.0]);
    }

    #[test]
    fn subset_gathers() {
        let mut d = RegressionData::new(1);
        for i in 0..5 {
            d.push(&[i as f64], i as f64 * 10.0);
        }
        let s = d.subset(&[4, 0, 4]);
        assert_eq!(s.n(), 3);
        assert_eq!(s.y(0), 40.0);
        assert_eq!(s.y(1), 0.0);
        assert_eq!(s.y(2), 40.0);
    }

    #[test]
    #[should_panic(expected = "length mismatch")]
    fn wrong_width_panics() {
        let mut d = RegressionData::new(2);
        d.push(&[1.0], 0.0);
    }

    #[test]
    fn iter_yields_rows() {
        let mut d = RegressionData::new(1);
        d.push(&[1.0], 2.0);
        let rows: Vec<_> = d.iter().collect();
        assert_eq!(rows, vec![(&[1.0][..], 2.0, 1.0)]);
    }
}
