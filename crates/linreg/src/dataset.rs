//! Columnar regression datasets: the `(X, Y, W)` triples that region
//! training sets reduce to once features are generated.

/// A regression training set: `n` examples of `p` features each, with
/// targets and per-example weights (all 1.0 for ordinary least squares).
///
/// Features are stored in *structure-of-arrays* form — one contiguous
/// `f64` lane per feature column — so the batched accumulation kernels
/// ([`crate::suffstats::RegSuffStats::add_rows`]) stream whole columns
/// instead of strided rows. `p` includes the intercept column if the
/// caller added one (see [`RegressionData::push_with_intercept`]).
#[derive(Debug, Clone, PartialEq)]
pub struct RegressionData {
    p: usize,
    /// `p` feature lanes of `n` values each.
    cols: Vec<Vec<f64>>,
    ys: Vec<f64>,
    ws: Vec<f64>,
    /// True while every stored weight is exactly 1.0 — lets the kernels
    /// take the unweighted fast path. Conservative: a false flag only
    /// costs multiplies by 1.0, which are bitwise identity, so the two
    /// paths always agree bit for bit.
    unit_w: bool,
}

impl RegressionData {
    /// Empty dataset with `p` feature columns.
    pub fn new(p: usize) -> Self {
        RegressionData {
            p,
            cols: vec![Vec::new(); p],
            ys: Vec::new(),
            ws: Vec::new(),
            unit_w: true,
        }
    }

    /// Empty dataset with capacity hints.
    pub fn with_capacity(p: usize, n: usize) -> Self {
        RegressionData {
            p,
            cols: (0..p).map(|_| Vec::with_capacity(n)).collect(),
            ys: Vec::with_capacity(n),
            ws: Vec::with_capacity(n),
            unit_w: true,
        }
    }

    /// Features per example.
    pub fn p(&self) -> usize {
        self.p
    }

    /// Number of examples.
    pub fn n(&self) -> usize {
        self.ys.len()
    }

    /// True if no examples.
    pub fn is_empty(&self) -> bool {
        self.ys.is_empty()
    }

    /// True while every stored weight is exactly 1.0.
    pub fn unit_weights(&self) -> bool {
        self.unit_w
    }

    /// Drop all examples and (re)set the feature width, keeping the
    /// allocated buffers — the reuse hook for zero-allocation scan
    /// scratch.
    pub fn reset(&mut self, p: usize) {
        self.p = p;
        if self.cols.len() != p {
            self.cols.resize_with(p, Vec::new);
        }
        for c in &mut self.cols {
            c.clear();
        }
        self.ys.clear();
        self.ws.clear();
        self.unit_w = true;
    }

    /// Reserve room for `n` examples at the current width. Returns `true`
    /// if any buffer had to grow (scratch-reuse accounting).
    pub fn ensure_capacity(&mut self, n: usize) -> bool {
        let mut grew = self.ys.capacity() < n || self.ws.capacity() < n;
        for c in &self.cols {
            grew |= c.capacity() < n;
        }
        let extra = n.saturating_sub(self.ys.len());
        for c in &mut self.cols {
            c.reserve(extra);
        }
        self.ys.reserve(extra);
        self.ws.reserve(extra);
        grew
    }

    /// Append an example with explicit weight. Panics if `x.len() != p`.
    pub fn push_weighted(&mut self, x: &[f64], y: f64, w: f64) {
        assert_eq!(x.len(), self.p, "feature vector length mismatch");
        debug_assert!(w > 0.0, "weights must be positive");
        for (col, &v) in self.cols.iter_mut().zip(x) {
            col.push(v);
        }
        self.ys.push(y);
        self.ws.push(w);
        self.unit_w &= w == 1.0;
    }

    /// Append an example with weight 1.
    pub fn push(&mut self, x: &[f64], y: f64) {
        self.push_weighted(x, y, 1.0);
    }

    /// Append an example prefixing the constant intercept feature, so the
    /// stored row is `[1, x...]`. The dataset must have `p = x.len() + 1`.
    pub fn push_with_intercept(&mut self, x: &[f64], y: f64) {
        assert_eq!(x.len() + 1, self.p, "feature vector length mismatch");
        self.cols[0].push(1.0);
        for (col, &v) in self.cols[1..].iter_mut().zip(x) {
            col.push(v);
        }
        self.ys.push(y);
        self.ws.push(1.0);
    }

    /// Bulk-append unit-weight examples given as feature columns (e.g. a
    /// region block's lanes): lane-by-lane `memcpy`s, no per-row work.
    pub fn extend_from_cols(&mut self, cols: &[Vec<f64>], ys: &[f64]) {
        if ys.is_empty() {
            return;
        }
        assert_eq!(cols.len(), self.p, "feature arity mismatch");
        for (dst, src) in self.cols.iter_mut().zip(cols) {
            assert_eq!(src.len(), ys.len(), "ragged feature lane");
            dst.extend_from_slice(src);
        }
        self.ys.extend_from_slice(ys);
        self.ws.resize(self.ws.len() + ys.len(), 1.0);
    }

    /// Bulk-append the unit-weight examples at `rows` (in order, duplicates
    /// allowed) from feature columns — the filtered-gather counterpart of
    /// [`RegressionData::extend_from_cols`].
    pub fn extend_from_cols_gather(&mut self, cols: &[Vec<f64>], ys: &[f64], rows: &[usize]) {
        if rows.is_empty() {
            return;
        }
        assert_eq!(cols.len(), self.p, "feature arity mismatch");
        for (dst, src) in self.cols.iter_mut().zip(cols) {
            dst.extend(rows.iter().map(|&r| src[r]));
        }
        self.ys.extend(rows.iter().map(|&r| ys[r]));
        self.ws.resize(self.ws.len() + rows.len(), 1.0);
    }

    /// Feature column `j` (all `n` values of feature `j`).
    pub fn col(&self, j: usize) -> &[f64] {
        &self.cols[j]
    }

    /// All feature columns.
    pub fn cols(&self) -> &[Vec<f64>] {
        &self.cols
    }

    /// Feature `j` of example `i`.
    pub fn feature(&self, i: usize, j: usize) -> f64 {
        self.cols[j][i]
    }

    /// Feature row `i`, gathered into a fresh vector (a strided read
    /// across all lanes — convenience for tests and cold call sites,
    /// not for hot loops).
    pub fn row(&self, i: usize) -> Vec<f64> {
        assert!(i < self.n(), "example index out of range");
        self.cols.iter().map(|c| c[i]).collect()
    }

    /// Target `i`.
    pub fn y(&self, i: usize) -> f64 {
        self.ys[i]
    }

    /// Weight `i`.
    pub fn w(&self, i: usize) -> f64 {
        self.ws[i]
    }

    /// All targets.
    pub fn ys(&self) -> &[f64] {
        &self.ys
    }

    /// All weights.
    pub fn ws(&self) -> &[f64] {
        &self.ws
    }

    /// `x_i · β` for example `i`: the model prediction, read straight
    /// from the lanes in ascending feature order (single accumulator —
    /// bitwise identical to the row-major `x.iter().zip(beta)` dot
    /// product it replaces).
    pub fn predict_at(&self, i: usize, beta: &[f64]) -> f64 {
        let mut acc = 0.0;
        for (col, &b) in self.cols.iter().zip(beta) {
            acc += col[i] * b;
        }
        acc
    }

    /// New dataset with the rows at `indices` (duplicates allowed).
    pub fn subset(&self, indices: &[usize]) -> RegressionData {
        let mut out = RegressionData::with_capacity(self.p, indices.len());
        for &i in indices {
            for (dst, src) in out.cols.iter_mut().zip(&self.cols) {
                dst.push(src[i]);
            }
            out.ys.push(self.ys[i]);
            out.ws.push(self.ws[i]);
        }
        out.unit_w = self.unit_w;
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn push_and_read() {
        let mut d = RegressionData::new(2);
        d.push(&[1.0, 2.0], 3.0);
        d.push_weighted(&[4.0, 5.0], 6.0, 2.0);
        assert_eq!(d.n(), 2);
        assert_eq!(d.row(1), &[4.0, 5.0]);
        assert_eq!(d.col(0), &[1.0, 4.0]);
        assert_eq!(d.col(1), &[2.0, 5.0]);
        assert_eq!(d.feature(1, 0), 4.0);
        assert_eq!(d.y(0), 3.0);
        assert_eq!(d.w(1), 2.0);
        assert_eq!(d.ys(), &[3.0, 6.0]);
        assert_eq!(d.ws(), &[1.0, 2.0]);
        assert!(!d.unit_weights());
    }

    #[test]
    fn intercept_prefix() {
        let mut d = RegressionData::new(3);
        d.push_with_intercept(&[7.0, 8.0], 9.0);
        assert_eq!(d.row(0), &[1.0, 7.0, 8.0]);
        assert!(d.unit_weights());
    }

    #[test]
    fn subset_gathers() {
        let mut d = RegressionData::new(1);
        for i in 0..5 {
            d.push(&[i as f64], i as f64 * 10.0);
        }
        let s = d.subset(&[4, 0, 4]);
        assert_eq!(s.n(), 3);
        assert_eq!(s.y(0), 40.0);
        assert_eq!(s.y(1), 0.0);
        assert_eq!(s.y(2), 40.0);
        assert_eq!(s.col(0), &[4.0, 0.0, 4.0]);
    }

    #[test]
    #[should_panic(expected = "length mismatch")]
    fn wrong_width_panics() {
        let mut d = RegressionData::new(2);
        d.push(&[1.0], 0.0);
    }

    #[test]
    fn extend_from_cols_matches_pushes() {
        let cols = vec![vec![1.0, 3.0, 5.0], vec![2.0, 4.0, 6.0]];
        let ys = vec![10.0, 20.0, 30.0];
        let mut bulk = RegressionData::new(2);
        bulk.extend_from_cols(&cols, &ys);
        let mut pushed = RegressionData::new(2);
        for i in 0..3 {
            pushed.push(&[cols[0][i], cols[1][i]], ys[i]);
        }
        assert_eq!(bulk, pushed);
        assert!(bulk.unit_weights());
    }

    #[test]
    fn extend_from_cols_gather_selects_rows() {
        let cols = vec![vec![1.0, 3.0, 5.0], vec![2.0, 4.0, 6.0]];
        let ys = vec![10.0, 20.0, 30.0];
        let mut d = RegressionData::new(2);
        d.extend_from_cols_gather(&cols, &ys, &[2, 0]);
        assert_eq!(d.n(), 2);
        assert_eq!(d.row(0), &[5.0, 6.0]);
        assert_eq!(d.row(1), &[1.0, 2.0]);
        assert_eq!(d.ys(), &[30.0, 10.0]);
    }

    #[test]
    fn predict_at_matches_row_dot() {
        let mut d = RegressionData::new(3);
        d.push(&[1.0, 2.0, -3.0], 0.0);
        let beta = [0.5, -1.5, 2.0];
        let by_row: f64 = d.row(0).iter().zip(&beta).map(|(a, b)| a * b).sum();
        assert_eq!(d.predict_at(0, &beta).to_bits(), by_row.to_bits());
    }

    #[test]
    fn reset_reuses_lanes() {
        let mut d = RegressionData::new(2);
        d.push(&[1.0, 2.0], 3.0);
        d.reset(2);
        assert!(d.is_empty());
        assert!(d.unit_weights());
        assert!(!d.ensure_capacity(1), "warm buffers must not grow");
        d.reset(4);
        assert_eq!(d.cols().len(), 4);
    }
}
