//! Error estimates with confidence intervals.
//!
//! The paper uses P% confidence intervals twice: Figures 7(b)/9(b) count
//! regions whose error falls inside the bellwether's interval
//! ("indistinguishable" regions), and bellwether-cube prediction picks
//! the ancestor subset whose model has the lowest *upper* confidence
//! bound. Both reduce to an estimate `mean ± z·stderr` where the spread
//! comes from the variance of the per-fold cross-validation errors (§2).

use crate::stats::{mean, normal_quantile, sample_std};

/// An error estimate: a point value plus a standard error of that value.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct ErrorEstimate {
    /// Point estimate of the error (e.g. mean fold RMSE).
    pub value: f64,
    /// Standard error of the point estimate (0 when unknowable).
    pub std_err: f64,
}

impl ErrorEstimate {
    /// An estimate with no spread information (training-set error on a
    /// single fit).
    pub fn point(value: f64) -> Self {
        ErrorEstimate {
            value,
            std_err: 0.0,
        }
    }

    /// Estimate from per-fold error values: mean ± sd/√k.
    pub fn from_folds(fold_errors: &[f64]) -> Self {
        let value = mean(fold_errors);
        let std_err = if fold_errors.len() > 1 {
            sample_std(fold_errors) / (fold_errors.len() as f64).sqrt()
        } else {
            0.0
        };
        ErrorEstimate { value, std_err }
    }

    /// Two-sided confidence interval `(lo, hi)` at `confidence` ∈ (0,1),
    /// e.g. 0.95. Lower bound clamped at 0 (errors are non-negative).
    pub fn interval(&self, confidence: f64) -> (f64, f64) {
        let z = normal_quantile(0.5 + confidence / 2.0);
        let half = z * self.std_err;
        ((self.value - half).max(0.0), self.value + half)
    }

    /// Upper bound of the two-sided interval — the cube-prediction
    /// selection score (§6.2: "lowest upper confidence bound of error").
    pub fn upper_bound(&self, confidence: f64) -> f64 {
        self.interval(confidence).1
    }

    /// True if `other`'s point error lies within this estimate's
    /// `confidence` interval — the Figure 7(b) indistinguishability test.
    pub fn contains(&self, other_value: f64, confidence: f64) -> bool {
        let (lo, hi) = self.interval(confidence);
        other_value >= lo && other_value <= hi
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn point_estimate_has_degenerate_interval() {
        let e = ErrorEstimate::point(5.0);
        assert_eq!(e.interval(0.95), (5.0, 5.0));
        assert!(e.contains(5.0, 0.95));
        assert!(!e.contains(5.0001, 0.95));
    }

    #[test]
    fn folds_produce_spread() {
        let e = ErrorEstimate::from_folds(&[1.0, 2.0, 3.0, 2.0]);
        assert!((e.value - 2.0).abs() < 1e-12);
        assert!(e.std_err > 0.0);
        let (lo, hi) = e.interval(0.95);
        assert!(lo < 2.0 && hi > 2.0);
        assert!(e.upper_bound(0.99) > e.upper_bound(0.95));
    }

    #[test]
    fn wider_confidence_widens_interval() {
        let e = ErrorEstimate::from_folds(&[1.0, 3.0]);
        let (lo95, hi95) = e.interval(0.95);
        let (lo99, hi99) = e.interval(0.99);
        assert!(lo99 <= lo95 && hi99 >= hi95);
    }

    #[test]
    fn lower_bound_clamped_at_zero() {
        let e = ErrorEstimate {
            value: 0.1,
            std_err: 10.0,
        };
        assert_eq!(e.interval(0.95).0, 0.0);
    }

    #[test]
    fn single_fold_collapses() {
        let e = ErrorEstimate::from_folds(&[4.0]);
        assert_eq!(e.std_err, 0.0);
        assert_eq!(e.value, 4.0);
    }
}
