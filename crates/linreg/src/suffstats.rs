//! The Theorem-1 sufficient statistic for weighted least squares.
//!
//! For an item subset `S` with design matrix `X`, targets `Y` and diagonal
//! weights `W`, the tuple
//!
//! ```text
//! g(S) = ⟨ Y'WY,  X'WX,  X'WY,  n ⟩
//! ```
//!
//! is *mergeable*: `g(S1 ∪ S2) = g(S1) + g(S2)` componentwise for disjoint
//! subsets. From the merged tuple we recover both the WLS coefficients
//! `β = (X'WX)⁻¹ X'WY` and the weighted sum of squared errors
//! `SSE = Y'WY − (X'WY)'(X'WX)⁻¹(X'WY)` without revisiting examples. This
//! is exactly what makes SSE an *algebraic* aggregate (Theorem 1), the key
//! to the optimized bellwether-cube algorithm: compute `g` once per base
//! subset, then roll up the item-hierarchy lattice by merging.

use crate::cholesky::solve_spd_ridged;
use crate::dataset::RegressionData;
use crate::matrix::Matrix;
use crate::model::LinearModel;

/// Accumulated `⟨Y'WY, X'WX, X'WY, n, Σw⟩` for one example subset.
#[derive(Debug, Clone, PartialEq)]
pub struct RegSuffStats {
    p: usize,
    n: usize,
    sum_w: f64,
    ytwy: f64,
    xtwx: Matrix,
    xtwy: Vec<f64>,
}

impl RegSuffStats {
    /// Empty statistic for `p` features.
    pub fn new(p: usize) -> Self {
        RegSuffStats {
            p,
            n: 0,
            sum_w: 0.0,
            ytwy: 0.0,
            xtwx: Matrix::zeros(p, p),
            xtwy: vec![0.0; p],
        }
    }

    /// Number of features.
    pub fn p(&self) -> usize {
        self.p
    }

    /// Number of accumulated examples.
    pub fn n(&self) -> usize {
        self.n
    }

    /// Total weight.
    pub fn sum_w(&self) -> f64 {
        self.sum_w
    }

    /// Fold in one weighted example.
    #[allow(clippy::needless_range_loop)] // symmetric i/j indexing
    pub fn add(&mut self, x: &[f64], y: f64, w: f64) {
        assert_eq!(x.len(), self.p, "feature vector length mismatch");
        debug_assert!(w > 0.0, "weights must be positive");
        self.n += 1;
        self.sum_w += w;
        self.ytwy += w * y * y;
        for i in 0..self.p {
            let wxi = w * x[i];
            self.xtwy[i] += wxi * y;
            // X'WX is symmetric; fill the full matrix to keep solves simple.
            for j in 0..self.p {
                self.xtwx[(i, j)] += wxi * x[j];
            }
        }
    }

    /// Accumulate an entire dataset.
    pub fn add_dataset(&mut self, data: &RegressionData) {
        for (x, y, w) in data.iter() {
            self.add(x, y, w);
        }
    }

    /// Build the statistic for a dataset in one pass.
    pub fn from_dataset(data: &RegressionData) -> Self {
        let mut s = RegSuffStats::new(data.p());
        s.add_dataset(data);
        s
    }

    /// Merge a disjoint subset's statistic (the `q` of Theorem 1 sums the
    /// components; both operands must describe the same feature space).
    pub fn merge(&mut self, other: &RegSuffStats) {
        assert_eq!(self.p, other.p, "merging stats of different widths");
        self.n += other.n;
        self.sum_w += other.sum_w;
        self.ytwy += other.ytwy;
        self.xtwx += &other.xtwx;
        for (a, b) in self.xtwy.iter_mut().zip(&other.xtwy) {
            *a += *b;
        }
    }

    /// Merged copy (non-destructive convenience for rollups).
    pub fn merged(&self, other: &RegSuffStats) -> RegSuffStats {
        let mut out = self.clone();
        out.merge(other);
        out
    }

    /// Remove a previously merged subset's statistic (exact, because the
    /// statistic is a sum of per-example terms). Used to train each
    /// cross-validation fold's complement in O(1) after one full pass.
    /// Panics if `other` contains more examples than `self`.
    pub fn subtract(&mut self, other: &RegSuffStats) {
        assert_eq!(self.p, other.p, "subtracting stats of different widths");
        assert!(self.n >= other.n, "subtracting more examples than present");
        self.n -= other.n;
        self.sum_w -= other.sum_w;
        self.ytwy -= other.ytwy;
        self.xtwx -= &other.xtwx;
        for (a, b) in self.xtwy.iter_mut().zip(&other.xtwy) {
            *a -= *b;
        }
    }

    /// Fit the WLS model `β = (X'WX)⁻¹(X'WY)`. `None` if fewer examples
    /// than features or the Gram matrix is irreparably singular.
    pub fn fit(&self) -> Option<LinearModel> {
        if self.n < self.p {
            return None;
        }
        let beta = solve_spd_ridged(&self.xtwx, &self.xtwy)?;
        if beta.iter().any(|b| !b.is_finite()) {
            return None;
        }
        Some(LinearModel::new(beta))
    }

    /// Weighted sum of squared errors of the fitted model on the
    /// accumulated examples: `Y'WY − (X'WY)'β`. Clamped at 0 to absorb
    /// floating-point cancellation. `None` when no model can be fit.
    pub fn sse(&self) -> Option<f64> {
        let beta = self.fit()?;
        let explained: f64 = self
            .xtwy
            .iter()
            .zip(beta.coefficients())
            .map(|(a, b)| a * b)
            .sum();
        Some((self.ytwy - explained).max(0.0))
    }

    /// Weighted SSE of an *arbitrary* model β on the accumulated
    /// examples, from the statistic alone:
    ///
    /// ```text
    /// Σ w (y − x'β)² = Y'WY − 2 β'(X'WY) + β'(X'WX)β
    /// ```
    ///
    /// This extends Theorem 1 to *cross-validation*: a fold's test error
    /// under the complement's model needs only the fold's statistic —
    /// no examples are revisited. Clamped at 0 against cancellation.
    pub fn sse_of_model(&self, model: &LinearModel) -> f64 {
        assert_eq!(model.p(), self.p, "model width mismatch");
        let beta = model.coefficients();
        let cross: f64 = self
            .xtwy
            .iter()
            .zip(beta)
            .map(|(a, b)| a * b)
            .sum();
        let quad: f64 = {
            let xb = self.xtwx.matvec(beta);
            xb.iter().zip(beta).map(|(a, b)| a * b).sum()
        };
        (self.ytwy - 2.0 * cross + quad).max(0.0)
    }

    /// Weighted mean squared error with `n − p` degrees of freedom, the
    /// paper's training-set error for WLS models. `None` when `n ≤ p`.
    pub fn mse(&self) -> Option<f64> {
        if self.n <= self.p {
            return None;
        }
        Some(self.sse()? / (self.n - self.p) as f64)
    }

    /// Root of [`RegSuffStats::mse`].
    pub fn rmse(&self) -> Option<f64> {
        self.mse().map(f64::sqrt)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// y = 2 + 3x exactly, with intercept column.
    fn exact_line() -> RegressionData {
        let mut d = RegressionData::new(2);
        for i in 0..10 {
            let x = i as f64;
            d.push(&[1.0, x], 2.0 + 3.0 * x);
        }
        d
    }

    #[test]
    fn fits_exact_line() {
        let s = RegSuffStats::from_dataset(&exact_line());
        let m = s.fit().unwrap();
        assert!((m.coefficients()[0] - 2.0).abs() < 1e-9);
        assert!((m.coefficients()[1] - 3.0).abs() < 1e-9);
        assert!(s.sse().unwrap() < 1e-9);
        assert!(s.rmse().unwrap() < 1e-5);
    }

    #[test]
    fn merge_equals_bulk() {
        let d = exact_line();
        let first = d.subset(&[0, 1, 2, 3]);
        let second = d.subset(&[4, 5, 6, 7, 8, 9]);
        let mut merged = RegSuffStats::from_dataset(&first);
        merged.merge(&RegSuffStats::from_dataset(&second));
        let bulk = RegSuffStats::from_dataset(&d);
        assert_eq!(merged.n(), bulk.n());
        assert!((merged.sse().unwrap() - bulk.sse().unwrap()).abs() < 1e-9);
        let mb = merged.fit().unwrap();
        let bb = bulk.fit().unwrap();
        for (a, b) in mb.coefficients().iter().zip(bb.coefficients()) {
            assert!((a - b).abs() < 1e-9);
        }
    }

    #[test]
    fn sse_matches_residual_sum() {
        // Noisy data: check SSE against the definition Σ w(y - x'β)².
        let mut d = RegressionData::new(2);
        let ys = [1.0, 2.0, 2.5, 4.2, 4.9];
        for (i, &y) in ys.iter().enumerate() {
            d.push_weighted(&[1.0, i as f64], y, 1.0 + i as f64 * 0.1);
        }
        let s = RegSuffStats::from_dataset(&d);
        let m = s.fit().unwrap();
        let direct: f64 = d
            .iter()
            .map(|(x, y, w)| {
                let r = y - m.predict(x);
                w * r * r
            })
            .sum();
        assert!((s.sse().unwrap() - direct).abs() < 1e-9);
    }

    #[test]
    fn underdetermined_returns_none() {
        let mut d = RegressionData::new(3);
        d.push(&[1.0, 2.0, 3.0], 1.0);
        let s = RegSuffStats::from_dataset(&d);
        assert!(s.fit().is_none());
        assert!(s.mse().is_none());
    }

    #[test]
    fn n_equals_p_fits_but_has_no_mse() {
        let mut d = RegressionData::new(2);
        d.push(&[1.0, 0.0], 1.0);
        d.push(&[1.0, 1.0], 2.0);
        let s = RegSuffStats::from_dataset(&d);
        assert!(s.fit().is_some());
        assert!(s.mse().is_none(), "zero degrees of freedom");
    }

    #[test]
    fn weights_shift_the_fit() {
        // Two inconsistent points; weights pull the constant fit around.
        let mut d = RegressionData::new(1);
        d.push_weighted(&[1.0], 0.0, 1.0);
        d.push_weighted(&[1.0], 10.0, 3.0);
        let m = RegSuffStats::from_dataset(&d).fit().unwrap();
        assert!((m.coefficients()[0] - 7.5).abs() < 1e-9); // (0·1+10·3)/4
    }

    #[test]
    fn sse_of_model_matches_direct_evaluation() {
        let mut d = RegressionData::new(2);
        let ys = [1.0, 2.5, 2.0, 4.8, 5.1, 7.0];
        for (i, &y) in ys.iter().enumerate() {
            d.push_weighted(&[1.0, i as f64], y, 1.0 + 0.2 * i as f64);
        }
        let stats = RegSuffStats::from_dataset(&d);
        // An arbitrary (not fitted) model.
        let model = LinearModel::new(vec![0.3, 1.1]);
        let direct: f64 = d
            .iter()
            .map(|(x, y, w)| {
                let r = y - model.predict(x);
                w * r * r
            })
            .sum();
        assert!((stats.sse_of_model(&model) - direct).abs() < 1e-9);
        // For the fitted model it coincides with sse().
        let fitted = stats.fit().unwrap();
        assert!((stats.sse_of_model(&fitted) - stats.sse().unwrap()).abs() < 1e-9);
    }

    #[test]
    fn sse_of_model_supports_fold_complement_cv() {
        // Train on folds 1..k, evaluate fold 0 purely algebraically.
        let mut all = RegressionData::new(2);
        for i in 0..30 {
            let x = i as f64;
            all.push(&[1.0, x], 2.0 + 0.5 * x + if i % 3 == 0 { 0.3 } else { -0.1 });
        }
        let fold: Vec<usize> = (0..30).filter(|i| i % 5 == 0).collect();
        let rest: Vec<usize> = (0..30).filter(|i| i % 5 != 0).collect();
        let fold_stats = RegSuffStats::from_dataset(&all.subset(&fold));
        let rest_stats = RegSuffStats::from_dataset(&all.subset(&rest));
        let model = rest_stats.fit().unwrap();
        let direct: f64 = fold
            .iter()
            .map(|&i| {
                let r = all.y(i) - model.predict(all.x(i));
                r * r
            })
            .sum();
        assert!((fold_stats.sse_of_model(&model) - direct).abs() < 1e-9);
    }

    #[test]
    fn collinear_features_survive_via_ridge() {
        let mut d = RegressionData::new(2);
        for i in 0..5 {
            let x = i as f64;
            d.push(&[x, x], 2.0 * x); // perfectly collinear
        }
        let s = RegSuffStats::from_dataset(&d);
        let m = s.fit().expect("ridge fallback should fit");
        // Predictions are still right even though β is not unique.
        assert!((m.predict(&[3.0, 3.0]) - 6.0).abs() < 1e-3);
    }
}
