//! The Theorem-1 sufficient statistic for weighted least squares.
//!
//! For an item subset `S` with design matrix `X`, targets `Y` and diagonal
//! weights `W`, the tuple
//!
//! ```text
//! g(S) = ⟨ Y'WY,  X'WX,  X'WY,  n ⟩
//! ```
//!
//! is *mergeable*: `g(S1 ∪ S2) = g(S1) + g(S2)` componentwise for disjoint
//! subsets. From the merged tuple we recover both the WLS coefficients
//! `β = (X'WX)⁻¹ X'WY` and the weighted sum of squared errors
//! `SSE = Y'WY − (X'WY)'(X'WX)⁻¹(X'WY)` without revisiting examples. This
//! is exactly what makes SSE an *algebraic* aggregate (Theorem 1), the key
//! to the optimized bellwether-cube algorithm: compute `g` once per base
//! subset, then roll up the item-hierarchy lattice by merging.

use crate::cholesky::{packed_idx, packed_len, packed_solve_spd_ridged, FitDiagnostics};
use crate::dataset::RegressionData;
use crate::model::LinearModel;

/// Accumulated `⟨Y'WY, X'WX, X'WY, n, Σw⟩` for one example subset.
///
/// The Gram matrix `X'WX` is symmetric and stored packed (lower triangle,
/// row-major, `p(p+1)/2` floats) — half the memory and accumulation work
/// of a full matrix, factored by the in-place packed Cholesky whose
/// arithmetic order matches the dense one bit for bit.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct RegSuffStats {
    p: usize,
    n: usize,
    sum_w: f64,
    ytwy: f64,
    /// `X'WX`, packed lower-triangular (`crate::cholesky::packed_idx`).
    gram: Vec<f64>,
    xtwy: Vec<f64>,
}

impl RegSuffStats {
    /// Empty statistic for `p` features.
    pub fn new(p: usize) -> Self {
        RegSuffStats {
            p,
            n: 0,
            sum_w: 0.0,
            ytwy: 0.0,
            gram: vec![0.0; packed_len(p)],
            xtwy: vec![0.0; p],
        }
    }

    /// Zero the statistic (possibly changing its width) while reusing the
    /// existing buffers. Returns `true` if a buffer had to grow — the
    /// scratch-reuse accounting hook for zero-allocation hot loops.
    pub fn reset(&mut self, p: usize) -> bool {
        let grew = self.gram.capacity() < packed_len(p) || self.xtwy.capacity() < p;
        self.p = p;
        self.n = 0;
        self.sum_w = 0.0;
        self.ytwy = 0.0;
        self.gram.clear();
        self.gram.resize(packed_len(p), 0.0);
        self.xtwy.clear();
        self.xtwy.resize(p, 0.0);
        grew
    }

    /// Overwrite `self` with a copy of `other`, reusing buffers (no
    /// allocation when `self` already has `other`'s width).
    pub fn copy_from(&mut self, other: &RegSuffStats) {
        self.p = other.p;
        self.n = other.n;
        self.sum_w = other.sum_w;
        self.ytwy = other.ytwy;
        self.gram.clone_from(&other.gram);
        self.xtwy.clone_from(&other.xtwy);
    }

    /// Number of features.
    pub fn p(&self) -> usize {
        self.p
    }

    /// Number of accumulated examples.
    pub fn n(&self) -> usize {
        self.n
    }

    /// Total weight.
    pub fn sum_w(&self) -> f64 {
        self.sum_w
    }

    /// Fold in one weighted example.
    #[allow(clippy::needless_range_loop)] // symmetric i/j indexing
    pub fn add(&mut self, x: &[f64], y: f64, w: f64) {
        assert_eq!(x.len(), self.p, "feature vector length mismatch");
        debug_assert!(w > 0.0, "weights must be positive");
        self.n += 1;
        self.sum_w += w;
        self.ytwy += w * y * y;
        for i in 0..self.p {
            let wxi = w * x[i];
            self.xtwy[i] += wxi * y;
            // X'WX is symmetric; accumulate only the packed lower triangle.
            let row = packed_idx(i, 0);
            for j in 0..=i {
                self.gram[row + j] += wxi * x[j];
            }
        }
    }

    /// Fold in one example read from SoA feature columns (lane `j`,
    /// entry `row`). Same floating-point operations in the same order
    /// as [`RegSuffStats::add`] — bitwise identical — for call sites
    /// that must add single rows out of columnar storage.
    #[allow(clippy::needless_range_loop)] // symmetric i/j indexing
    pub fn add_from_cols(&mut self, cols: &[Vec<f64>], row: usize, y: f64, w: f64) {
        assert_eq!(cols.len(), self.p, "feature vector length mismatch");
        debug_assert!(w > 0.0, "weights must be positive");
        self.n += 1;
        self.sum_w += w;
        self.ytwy += w * y * y;
        for i in 0..self.p {
            let wxi = w * cols[i][row];
            self.xtwy[i] += wxi * y;
            let start = packed_idx(i, 0);
            for j in 0..=i {
                self.gram[start + j] += wxi * cols[j][row];
            }
        }
    }

    /// Accumulate an entire dataset with the batched columnar kernels.
    ///
    /// # Canonical summation order
    ///
    /// Every accumulated scalar (each packed Gram entry, each `X'WY`
    /// entry, `Y'WY`, `Σw`) is an independent reduction over the `n`
    /// examples, computed by [`dot4`]-family kernels: four partial
    /// accumulators with example `r` folded into lane `r mod 4`, the
    /// remainder (`n mod 4` examples) folded into lanes `0..n mod 4`,
    /// and the lanes combined as `(s0 + s1) + (s2 + s3)`. This order is
    /// a *fixed function of `n` alone* — independent of thread count,
    /// block boundaries or batching — so results are reproducible
    /// bit-for-bit anywhere the same rows are accumulated in the same
    /// order. The scalar [`RegSuffStats::add`] fold remains the
    /// reference oracle (property-tested to agree within 1e-12) and the
    /// path for single-example updates.
    ///
    /// The unit-weight fast path skips the weight loads; since
    /// `1.0 * x` is bitwise identity and summing `n` ones is exact, it
    /// produces exactly the bits of the weighted path fed all-ones.
    pub fn add_rows(&mut self, data: &RegressionData) {
        if data.unit_weights() {
            self.add_rows_unweighted(data);
            return;
        }
        assert_eq!(data.p(), self.p, "feature vector length mismatch");
        let n = data.n();
        if n == 0 {
            return;
        }
        self.n += n;
        let cols = data.cols();
        let ys = data.ys();
        let ws = data.ws();
        self.sum_w += sum4(ws);
        self.ytwy += wdot4(ws, ys, ys);
        for i in 0..self.p {
            let xi = &cols[i];
            self.xtwy[i] += wdot4(ws, xi, ys);
            let start = packed_idx(i, 0);
            for (j, g) in self.gram[start..start + i + 1].iter_mut().enumerate() {
                *g += wdot4(ws, xi, &cols[j]);
            }
        }
    }

    /// Accumulate an entire dataset with the batched kernels, treating
    /// every weight as exactly 1 regardless of the stored weights (the
    /// OLS reduction of §6.4). On a unit-weight dataset this is the
    /// path [`RegSuffStats::add_rows`] takes.
    pub fn add_rows_unweighted(&mut self, data: &RegressionData) {
        assert_eq!(data.p(), self.p, "feature vector length mismatch");
        let n = data.n();
        if n == 0 {
            return;
        }
        self.n += n;
        let cols = data.cols();
        let ys = data.ys();
        self.sum_w += n as f64;
        self.ytwy += dot4(ys, ys);
        for i in 0..self.p {
            let xi = &cols[i];
            self.xtwy[i] += dot4(xi, ys);
            let start = packed_idx(i, 0);
            for (j, g) in self.gram[start..start + i + 1].iter_mut().enumerate() {
                *g += dot4(xi, &cols[j]);
            }
        }
    }

    /// Accumulate an entire dataset (batched; see
    /// [`RegSuffStats::add_rows`] for the summation order).
    pub fn add_dataset(&mut self, data: &RegressionData) {
        self.add_rows(data);
    }

    /// Build the statistic for a dataset in one pass.
    pub fn from_dataset(data: &RegressionData) -> Self {
        let mut s = RegSuffStats::new(data.p());
        s.add_dataset(data);
        s
    }

    /// Merge a disjoint subset's statistic (the `q` of Theorem 1 sums the
    /// components; both operands must describe the same feature space).
    pub fn merge(&mut self, other: &RegSuffStats) {
        assert_eq!(self.p, other.p, "merging stats of different widths");
        self.n += other.n;
        self.sum_w += other.sum_w;
        self.ytwy += other.ytwy;
        for (a, b) in self.gram.iter_mut().zip(&other.gram) {
            *a += *b;
        }
        for (a, b) in self.xtwy.iter_mut().zip(&other.xtwy) {
            *a += *b;
        }
    }

    /// Merged copy (non-destructive convenience for rollups).
    pub fn merged(&self, other: &RegSuffStats) -> RegSuffStats {
        let mut out = self.clone();
        out.merge(other);
        out
    }

    /// Remove a previously merged subset's statistic (exact, because the
    /// statistic is a sum of per-example terms). Used to train each
    /// cross-validation fold's complement in O(1) after one full pass.
    /// Panics if `other` contains more examples than `self`.
    pub fn subtract(&mut self, other: &RegSuffStats) {
        assert_eq!(self.p, other.p, "subtracting stats of different widths");
        assert!(self.n >= other.n, "subtracting more examples than present");
        self.n -= other.n;
        self.sum_w -= other.sum_w;
        self.ytwy -= other.ytwy;
        for (a, b) in self.gram.iter_mut().zip(&other.gram) {
            *a -= *b;
        }
        for (a, b) in self.xtwy.iter_mut().zip(&other.xtwy) {
            *a -= *b;
        }
    }

    /// Fit the WLS model `β = (X'WX)⁻¹(X'WY)`. `None` if fewer examples
    /// than features or the Gram matrix is irreparably singular.
    pub fn fit(&self) -> Option<LinearModel> {
        self.fit_diagnosed().map(|(m, _)| m)
    }

    /// [`RegSuffStats::fit`] that also reports which ridge level (if any)
    /// the solve needed — the debuggability hook for degenerate regions.
    pub fn fit_diagnosed(&self) -> Option<(LinearModel, FitDiagnostics)> {
        let mut factor = Vec::new();
        let mut beta = Vec::new();
        let diag = self.fit_into(&mut factor, &mut beta)?;
        Some((LinearModel::new(beta), diag))
    }

    /// Fit into caller-provided scratch: `factor` receives the packed
    /// Cholesky workspace, `beta` the coefficients. No heap allocation
    /// once both buffers are warm. Returns `None` if fewer examples than
    /// features, the solve fails, or β is non-finite.
    pub fn fit_into(&self, factor: &mut Vec<f64>, beta: &mut Vec<f64>) -> Option<FitDiagnostics> {
        if self.n < self.p {
            return None;
        }
        let diag = packed_solve_spd_ridged(&self.gram, self.p, &self.xtwy, factor, beta)?;
        if beta.iter().any(|b| !b.is_finite()) {
            return None;
        }
        Some(diag)
    }

    /// Weighted sum of squared errors of the fitted model on the
    /// accumulated examples: `Y'WY − (X'WY)'β`. Clamped at 0 to absorb
    /// floating-point cancellation. `None` when no model can be fit.
    pub fn sse(&self) -> Option<f64> {
        let beta = self.fit()?;
        Some(self.sse_given_fit(beta.coefficients()))
    }

    /// SSE of *this statistic's own least-squares solution* `β` via
    /// `Y'WY − (X'WY)'β` (the one-dot-product shortcut, valid only for
    /// coefficients fitted from this statistic — see
    /// [`RegSuffStats::sse_of_coeffs`] for arbitrary models). Clamped at 0.
    pub fn sse_given_fit(&self, beta: &[f64]) -> f64 {
        assert_eq!(beta.len(), self.p, "model width mismatch");
        let explained: f64 = self.xtwy.iter().zip(beta).map(|(a, b)| a * b).sum();
        (self.ytwy - explained).max(0.0)
    }

    /// Weighted SSE of an *arbitrary* model β on the accumulated
    /// examples, from the statistic alone:
    ///
    /// ```text
    /// Σ w (y − x'β)² = Y'WY − 2 β'(X'WY) + β'(X'WX)β
    /// ```
    ///
    /// This extends Theorem 1 to *cross-validation*: a fold's test error
    /// under the complement's model needs only the fold's statistic —
    /// no examples are revisited. Clamped at 0 against cancellation.
    pub fn sse_of_model(&self, model: &LinearModel) -> f64 {
        self.sse_of_coeffs(model.coefficients())
    }

    /// [`RegSuffStats::sse_of_model`] on a bare coefficient slice, so hot
    /// loops can evaluate fold models without wrapping them in a
    /// [`LinearModel`] (which owns its vector).
    #[allow(clippy::needless_range_loop)] // symmetric i/j indexing
    pub fn sse_of_coeffs(&self, beta: &[f64]) -> f64 {
        assert_eq!(beta.len(), self.p, "model width mismatch");
        let cross: f64 = self.xtwy.iter().zip(beta).map(|(a, b)| a * b).sum();
        // β'(X'WX)β via the symmetric packed matvec: entry (i,j) with
        // j > i reads the stored (j,i).
        let mut quad = 0.0;
        for i in 0..self.p {
            let mut sum = 0.0;
            for j in 0..self.p {
                let e = if j <= i {
                    self.gram[packed_idx(i, j)]
                } else {
                    self.gram[packed_idx(j, i)]
                };
                sum += e * beta[j];
            }
            quad += sum * beta[i];
        }
        (self.ytwy - 2.0 * cross + quad).max(0.0)
    }

    /// Weighted mean squared error with `n − p` degrees of freedom, the
    /// paper's training-set error for WLS models. `None` when `n ≤ p`.
    pub fn mse(&self) -> Option<f64> {
        if self.n <= self.p {
            return None;
        }
        Some(self.sse()? / (self.n - self.p) as f64)
    }

    /// Root of [`RegSuffStats::mse`].
    pub fn rmse(&self) -> Option<f64> {
        self.mse().map(f64::sqrt)
    }
}

/// Canonical 4-lane dot product `Σ a[r]·b[r]`: element `r` folds into
/// lane `r mod 4`, lanes combine as `(s0 + s1) + (s2 + s3)`. This is
/// *the* canonical summation order for every batched reduction in this
/// crate (see [`RegSuffStats::add_rows`]); the manual unroll gives the
/// compiler four independent dependency chains to vectorize while
/// keeping the order fixed and documentable.
#[inline]
fn dot4(a: &[f64], b: &[f64]) -> f64 {
    debug_assert_eq!(a.len(), b.len());
    let (mut s0, mut s1, mut s2, mut s3) = (0.0f64, 0.0f64, 0.0f64, 0.0f64);
    let mut ac = a.chunks_exact(4);
    let mut bc = b.chunks_exact(4);
    for (ca, cb) in (&mut ac).zip(&mut bc) {
        s0 += ca[0] * cb[0];
        s1 += ca[1] * cb[1];
        s2 += ca[2] * cb[2];
        s3 += ca[3] * cb[3];
    }
    let (ra, rb) = (ac.remainder(), bc.remainder());
    if !ra.is_empty() {
        s0 += ra[0] * rb[0];
    }
    if ra.len() > 1 {
        s1 += ra[1] * rb[1];
    }
    if ra.len() > 2 {
        s2 += ra[2] * rb[2];
    }
    (s0 + s1) + (s2 + s3)
}

/// Weighted canonical dot product `Σ (w[r]·a[r])·b[r]` — the term shape
/// matches the scalar fold's `(w * x_i) * x_j`, so a unit-weight input
/// reproduces [`dot4`] bit for bit. Same lane order as [`dot4`].
#[inline]
fn wdot4(w: &[f64], a: &[f64], b: &[f64]) -> f64 {
    debug_assert_eq!(a.len(), b.len());
    debug_assert_eq!(a.len(), w.len());
    let (mut s0, mut s1, mut s2, mut s3) = (0.0f64, 0.0f64, 0.0f64, 0.0f64);
    let mut wc = w.chunks_exact(4);
    let mut ac = a.chunks_exact(4);
    let mut bc = b.chunks_exact(4);
    for ((cw, ca), cb) in (&mut wc).zip(&mut ac).zip(&mut bc) {
        s0 += (cw[0] * ca[0]) * cb[0];
        s1 += (cw[1] * ca[1]) * cb[1];
        s2 += (cw[2] * ca[2]) * cb[2];
        s3 += (cw[3] * ca[3]) * cb[3];
    }
    let (rw, ra, rb) = (wc.remainder(), ac.remainder(), bc.remainder());
    if !ra.is_empty() {
        s0 += (rw[0] * ra[0]) * rb[0];
    }
    if ra.len() > 1 {
        s1 += (rw[1] * ra[1]) * rb[1];
    }
    if ra.len() > 2 {
        s2 += (rw[2] * ra[2]) * rb[2];
    }
    (s0 + s1) + (s2 + s3)
}

/// Canonical 4-lane sum `Σ w[r]` (same lane order as [`dot4`]).
#[inline]
fn sum4(w: &[f64]) -> f64 {
    let (mut s0, mut s1, mut s2, mut s3) = (0.0f64, 0.0f64, 0.0f64, 0.0f64);
    let mut wc = w.chunks_exact(4);
    for cw in &mut wc {
        s0 += cw[0];
        s1 += cw[1];
        s2 += cw[2];
        s3 += cw[3];
    }
    let rw = wc.remainder();
    if !rw.is_empty() {
        s0 += rw[0];
    }
    if rw.len() > 1 {
        s1 += rw[1];
    }
    if rw.len() > 2 {
        s2 += rw[2];
    }
    (s0 + s1) + (s2 + s3)
}

#[cfg(test)]
mod tests {
    use super::*;

    /// y = 2 + 3x exactly, with intercept column.
    fn exact_line() -> RegressionData {
        let mut d = RegressionData::new(2);
        for i in 0..10 {
            let x = i as f64;
            d.push(&[1.0, x], 2.0 + 3.0 * x);
        }
        d
    }

    #[test]
    fn fits_exact_line() {
        let s = RegSuffStats::from_dataset(&exact_line());
        let m = s.fit().unwrap();
        assert!((m.coefficients()[0] - 2.0).abs() < 1e-9);
        assert!((m.coefficients()[1] - 3.0).abs() < 1e-9);
        assert!(s.sse().unwrap() < 1e-9);
        assert!(s.rmse().unwrap() < 1e-5);
    }

    #[test]
    fn merge_equals_bulk() {
        let d = exact_line();
        let first = d.subset(&[0, 1, 2, 3]);
        let second = d.subset(&[4, 5, 6, 7, 8, 9]);
        let mut merged = RegSuffStats::from_dataset(&first);
        merged.merge(&RegSuffStats::from_dataset(&second));
        let bulk = RegSuffStats::from_dataset(&d);
        assert_eq!(merged.n(), bulk.n());
        assert!((merged.sse().unwrap() - bulk.sse().unwrap()).abs() < 1e-9);
        let mb = merged.fit().unwrap();
        let bb = bulk.fit().unwrap();
        for (a, b) in mb.coefficients().iter().zip(bb.coefficients()) {
            assert!((a - b).abs() < 1e-9);
        }
    }

    #[test]
    fn sse_matches_residual_sum() {
        // Noisy data: check SSE against the definition Σ w(y - x'β)².
        let mut d = RegressionData::new(2);
        let ys = [1.0, 2.0, 2.5, 4.2, 4.9];
        for (i, &y) in ys.iter().enumerate() {
            d.push_weighted(&[1.0, i as f64], y, 1.0 + i as f64 * 0.1);
        }
        let s = RegSuffStats::from_dataset(&d);
        let m = s.fit().unwrap();
        let direct: f64 = (0..d.n())
            .map(|i| {
                let r = d.y(i) - d.predict_at(i, m.coefficients());
                d.w(i) * r * r
            })
            .sum();
        assert!((s.sse().unwrap() - direct).abs() < 1e-9);
    }

    #[test]
    fn underdetermined_returns_none() {
        let mut d = RegressionData::new(3);
        d.push(&[1.0, 2.0, 3.0], 1.0);
        let s = RegSuffStats::from_dataset(&d);
        assert!(s.fit().is_none());
        assert!(s.mse().is_none());
    }

    #[test]
    fn n_equals_p_fits_but_has_no_mse() {
        let mut d = RegressionData::new(2);
        d.push(&[1.0, 0.0], 1.0);
        d.push(&[1.0, 1.0], 2.0);
        let s = RegSuffStats::from_dataset(&d);
        assert!(s.fit().is_some());
        assert!(s.mse().is_none(), "zero degrees of freedom");
    }

    #[test]
    fn weights_shift_the_fit() {
        // Two inconsistent points; weights pull the constant fit around.
        let mut d = RegressionData::new(1);
        d.push_weighted(&[1.0], 0.0, 1.0);
        d.push_weighted(&[1.0], 10.0, 3.0);
        let m = RegSuffStats::from_dataset(&d).fit().unwrap();
        assert!((m.coefficients()[0] - 7.5).abs() < 1e-9); // (0·1+10·3)/4
    }

    #[test]
    fn sse_of_model_matches_direct_evaluation() {
        let mut d = RegressionData::new(2);
        let ys = [1.0, 2.5, 2.0, 4.8, 5.1, 7.0];
        for (i, &y) in ys.iter().enumerate() {
            d.push_weighted(&[1.0, i as f64], y, 1.0 + 0.2 * i as f64);
        }
        let stats = RegSuffStats::from_dataset(&d);
        // An arbitrary (not fitted) model.
        let model = LinearModel::new(vec![0.3, 1.1]);
        let direct: f64 = (0..d.n())
            .map(|i| {
                let r = d.y(i) - d.predict_at(i, model.coefficients());
                d.w(i) * r * r
            })
            .sum();
        assert!((stats.sse_of_model(&model) - direct).abs() < 1e-9);
        // For the fitted model it coincides with sse().
        let fitted = stats.fit().unwrap();
        assert!((stats.sse_of_model(&fitted) - stats.sse().unwrap()).abs() < 1e-9);
    }

    #[test]
    fn sse_of_model_supports_fold_complement_cv() {
        // Train on folds 1..k, evaluate fold 0 purely algebraically.
        let mut all = RegressionData::new(2);
        for i in 0..30 {
            let x = i as f64;
            all.push(&[1.0, x], 2.0 + 0.5 * x + if i % 3 == 0 { 0.3 } else { -0.1 });
        }
        let fold: Vec<usize> = (0..30).filter(|i| i % 5 == 0).collect();
        let rest: Vec<usize> = (0..30).filter(|i| i % 5 != 0).collect();
        let fold_stats = RegSuffStats::from_dataset(&all.subset(&fold));
        let rest_stats = RegSuffStats::from_dataset(&all.subset(&rest));
        let model = rest_stats.fit().unwrap();
        let direct: f64 = fold
            .iter()
            .map(|&i| {
                let r = all.y(i) - all.predict_at(i, model.coefficients());
                r * r
            })
            .sum();
        assert!((fold_stats.sse_of_model(&model) - direct).abs() < 1e-9);
    }

    #[test]
    fn collinear_features_survive_via_ridge() {
        let mut d = RegressionData::new(2);
        for i in 0..5 {
            let x = i as f64;
            d.push(&[x, x], 2.0 * x); // perfectly collinear
        }
        let s = RegSuffStats::from_dataset(&d);
        let m = s.fit().expect("ridge fallback should fit");
        // Predictions are still right even though β is not unique.
        assert!((m.predict(&[3.0, 3.0]) - 6.0).abs() < 1e-3);
        // And the diagnosed fit reports that a ridge was needed.
        let (_, diag) = s.fit_diagnosed().unwrap();
        assert!(diag.ridged());
    }

    #[test]
    fn clean_fit_reports_no_ridge() {
        let s = RegSuffStats::from_dataset(&exact_line());
        let (_, diag) = s.fit_diagnosed().unwrap();
        assert_eq!(diag.ridge_lambda, 0.0);
    }

    #[test]
    fn reset_and_copy_reuse_buffers() {
        let mut s = RegSuffStats::from_dataset(&exact_line());
        let bulk = RegSuffStats::from_dataset(&exact_line());
        assert!(!s.reset(2), "same width must not grow");
        assert_eq!(s.n(), 0);
        s.add_dataset(&exact_line());
        assert_eq!(s, bulk);
        let mut copy = RegSuffStats::new(2);
        copy.copy_from(&bulk);
        assert_eq!(copy, bulk);
    }

    #[test]
    fn fit_into_matches_fit_bitwise() {
        let mut d = RegressionData::new(2);
        let ys = [1.0, 2.5, 2.0, 4.8, 5.1, 7.0];
        for (i, &y) in ys.iter().enumerate() {
            d.push_weighted(&[1.0, i as f64], y, 1.0 + 0.2 * i as f64);
        }
        let s = RegSuffStats::from_dataset(&d);
        let via_fit = s.fit().unwrap();
        let (mut factor, mut beta) = (Vec::new(), Vec::new());
        s.fit_into(&mut factor, &mut beta).unwrap();
        for (a, b) in beta.iter().zip(via_fit.coefficients()) {
            assert_eq!(a.to_bits(), b.to_bits());
        }
    }

    /// Random dataset whose size sweeps every `n mod 4` remainder class.
    fn random_data(rng: &mut bellwether_prop::Rng, unit_weights: bool) -> RegressionData {
        let p = rng.usize_in(1, 6);
        let n = rng.usize_in(0, 23); // covers all chunk tails n % 4 ∈ {0,1,2,3}
        let mut d = RegressionData::new(p);
        for _ in 0..n {
            let x: Vec<f64> = (0..p).map(|_| rng.f64_in(-10.0, 10.0)).collect();
            let w = if unit_weights { 1.0 } else { rng.f64_in(0.1, 5.0) };
            d.push_weighted(&x, rng.f64_in(-5.0, 5.0), w);
        }
        d
    }

    fn assert_stats_close(a: &RegSuffStats, b: &RegSuffStats, tol: f64) {
        assert_eq!(a.n(), b.n());
        let rel = |x: f64, y: f64| (x - y).abs() <= tol * (1.0 + x.abs().max(y.abs()));
        assert!(rel(a.sum_w, b.sum_w), "sum_w {} vs {}", a.sum_w, b.sum_w);
        assert!(rel(a.ytwy, b.ytwy), "ytwy {} vs {}", a.ytwy, b.ytwy);
        for (i, (x, y)) in a.gram.iter().zip(&b.gram).enumerate() {
            assert!(rel(*x, *y), "gram[{i}] {x} vs {y}");
        }
        for (i, (x, y)) in a.xtwy.iter().zip(&b.xtwy).enumerate() {
            assert!(rel(*x, *y), "xtwy[{i}] {x} vs {y}");
        }
    }

    #[test]
    fn add_rows_matches_scalar_oracle_within_1e12() {
        use bellwether_prop::check;
        check("suffstats/add_rows_vs_scalar_add", 400, |rng| {
            let unit = rng.flip(0.5);
            let d = random_data(rng, unit);
            let mut batched = RegSuffStats::new(d.p());
            batched.add_rows(&d);
            // The scalar fold is the reference oracle.
            let mut scalar = RegSuffStats::new(d.p());
            for i in 0..d.n() {
                let x = d.row(i);
                scalar.add(&x, d.y(i), d.w(i));
            }
            assert_stats_close(&batched, &scalar, 1e-12);
        });
    }

    #[test]
    fn add_rows_is_deterministic_and_batch_invariant_bits() {
        // The canonical order depends only on the rows themselves: the
        // same dataset accumulated twice, or into a reused scratch,
        // gives the same bits.
        use bellwether_prop::check;
        check("suffstats/add_rows_bit_determinism", 200, |rng| {
            let unit = rng.flip(0.5);
            let d = random_data(rng, unit);
            let mut a = RegSuffStats::new(d.p());
            a.add_rows(&d);
            let mut b = RegSuffStats::new(d.p());
            b.add_rows(&d);
            assert_eq!(a, b);
            let mut reused = RegSuffStats::new(d.p() + 1);
            reused.reset(d.p());
            reused.add_rows(&d);
            assert_eq!(a, reused);
        });
    }

    #[test]
    fn unit_weight_path_bitwise_equals_weighted_all_ones() {
        // `1.0 * x` is bitwise identity and summing n ones is exact, so
        // the unit fast path must reproduce the weighted kernels fed
        // all-ones weights bit for bit.
        use bellwether_prop::check;
        check("suffstats/unit_vs_all_ones_weights", 200, |rng| {
            let d = random_data(rng, true);
            let cols = d.cols();
            let ones = vec![1.0; d.n()];
            for i in 0..d.p() {
                assert_eq!(
                    dot4(&cols[i], d.ys()).to_bits(),
                    wdot4(&ones, &cols[i], d.ys()).to_bits()
                );
                for j in 0..=i {
                    assert_eq!(
                        dot4(&cols[i], &cols[j]).to_bits(),
                        wdot4(&ones, &cols[i], &cols[j]).to_bits()
                    );
                }
            }
            assert_eq!(sum4(&ones).to_bits(), (d.n() as f64).to_bits());
        });
    }

    #[test]
    fn add_from_cols_bitwise_equals_scalar_add() {
        use bellwether_prop::check;
        check("suffstats/add_from_cols_vs_add", 200, |rng| {
            let unit = rng.flip(0.5);
            let d = random_data(rng, unit);
            let mut by_cols = RegSuffStats::new(d.p());
            let mut by_rows = RegSuffStats::new(d.p());
            for i in 0..d.n() {
                by_cols.add_from_cols(d.cols(), i, d.y(i), d.w(i));
                by_rows.add(&d.row(i), d.y(i), d.w(i));
            }
            assert_eq!(by_cols, by_rows, "scalar folds must agree bitwise");
        });
    }

    #[test]
    fn sse_of_coeffs_matches_sse_of_model() {
        let mut d = RegressionData::new(2);
        for i in 0..6 {
            d.push(&[1.0, i as f64], 0.5 + 1.5 * i as f64 + (i % 2) as f64);
        }
        let s = RegSuffStats::from_dataset(&d);
        let model = LinearModel::new(vec![0.3, 1.1]);
        assert_eq!(
            s.sse_of_model(&model).to_bits(),
            s.sse_of_coeffs(&[0.3, 1.1]).to_bits()
        );
    }
}
