//! The Theorem-1 sufficient statistic for weighted least squares.
//!
//! For an item subset `S` with design matrix `X`, targets `Y` and diagonal
//! weights `W`, the tuple
//!
//! ```text
//! g(S) = ⟨ Y'WY,  X'WX,  X'WY,  n ⟩
//! ```
//!
//! is *mergeable*: `g(S1 ∪ S2) = g(S1) + g(S2)` componentwise for disjoint
//! subsets. From the merged tuple we recover both the WLS coefficients
//! `β = (X'WX)⁻¹ X'WY` and the weighted sum of squared errors
//! `SSE = Y'WY − (X'WY)'(X'WX)⁻¹(X'WY)` without revisiting examples. This
//! is exactly what makes SSE an *algebraic* aggregate (Theorem 1), the key
//! to the optimized bellwether-cube algorithm: compute `g` once per base
//! subset, then roll up the item-hierarchy lattice by merging.

use crate::cholesky::{packed_idx, packed_len, packed_solve_spd_ridged, FitDiagnostics};
use crate::dataset::RegressionData;
use crate::model::LinearModel;

/// Accumulated `⟨Y'WY, X'WX, X'WY, n, Σw⟩` for one example subset.
///
/// The Gram matrix `X'WX` is symmetric and stored packed (lower triangle,
/// row-major, `p(p+1)/2` floats) — half the memory and accumulation work
/// of a full matrix, factored by the in-place packed Cholesky whose
/// arithmetic order matches the dense one bit for bit.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct RegSuffStats {
    p: usize,
    n: usize,
    sum_w: f64,
    ytwy: f64,
    /// `X'WX`, packed lower-triangular (`crate::cholesky::packed_idx`).
    gram: Vec<f64>,
    xtwy: Vec<f64>,
}

impl RegSuffStats {
    /// Empty statistic for `p` features.
    pub fn new(p: usize) -> Self {
        RegSuffStats {
            p,
            n: 0,
            sum_w: 0.0,
            ytwy: 0.0,
            gram: vec![0.0; packed_len(p)],
            xtwy: vec![0.0; p],
        }
    }

    /// Zero the statistic (possibly changing its width) while reusing the
    /// existing buffers. Returns `true` if a buffer had to grow — the
    /// scratch-reuse accounting hook for zero-allocation hot loops.
    pub fn reset(&mut self, p: usize) -> bool {
        let grew = self.gram.capacity() < packed_len(p) || self.xtwy.capacity() < p;
        self.p = p;
        self.n = 0;
        self.sum_w = 0.0;
        self.ytwy = 0.0;
        self.gram.clear();
        self.gram.resize(packed_len(p), 0.0);
        self.xtwy.clear();
        self.xtwy.resize(p, 0.0);
        grew
    }

    /// Overwrite `self` with a copy of `other`, reusing buffers (no
    /// allocation when `self` already has `other`'s width).
    pub fn copy_from(&mut self, other: &RegSuffStats) {
        self.p = other.p;
        self.n = other.n;
        self.sum_w = other.sum_w;
        self.ytwy = other.ytwy;
        self.gram.clone_from(&other.gram);
        self.xtwy.clone_from(&other.xtwy);
    }

    /// Number of features.
    pub fn p(&self) -> usize {
        self.p
    }

    /// Number of accumulated examples.
    pub fn n(&self) -> usize {
        self.n
    }

    /// Total weight.
    pub fn sum_w(&self) -> f64 {
        self.sum_w
    }

    /// Fold in one weighted example.
    #[allow(clippy::needless_range_loop)] // symmetric i/j indexing
    pub fn add(&mut self, x: &[f64], y: f64, w: f64) {
        assert_eq!(x.len(), self.p, "feature vector length mismatch");
        debug_assert!(w > 0.0, "weights must be positive");
        self.n += 1;
        self.sum_w += w;
        self.ytwy += w * y * y;
        for i in 0..self.p {
            let wxi = w * x[i];
            self.xtwy[i] += wxi * y;
            // X'WX is symmetric; accumulate only the packed lower triangle.
            let row = packed_idx(i, 0);
            for j in 0..=i {
                self.gram[row + j] += wxi * x[j];
            }
        }
    }

    /// Accumulate an entire dataset.
    pub fn add_dataset(&mut self, data: &RegressionData) {
        for (x, y, w) in data.iter() {
            self.add(x, y, w);
        }
    }

    /// Build the statistic for a dataset in one pass.
    pub fn from_dataset(data: &RegressionData) -> Self {
        let mut s = RegSuffStats::new(data.p());
        s.add_dataset(data);
        s
    }

    /// Merge a disjoint subset's statistic (the `q` of Theorem 1 sums the
    /// components; both operands must describe the same feature space).
    pub fn merge(&mut self, other: &RegSuffStats) {
        assert_eq!(self.p, other.p, "merging stats of different widths");
        self.n += other.n;
        self.sum_w += other.sum_w;
        self.ytwy += other.ytwy;
        for (a, b) in self.gram.iter_mut().zip(&other.gram) {
            *a += *b;
        }
        for (a, b) in self.xtwy.iter_mut().zip(&other.xtwy) {
            *a += *b;
        }
    }

    /// Merged copy (non-destructive convenience for rollups).
    pub fn merged(&self, other: &RegSuffStats) -> RegSuffStats {
        let mut out = self.clone();
        out.merge(other);
        out
    }

    /// Remove a previously merged subset's statistic (exact, because the
    /// statistic is a sum of per-example terms). Used to train each
    /// cross-validation fold's complement in O(1) after one full pass.
    /// Panics if `other` contains more examples than `self`.
    pub fn subtract(&mut self, other: &RegSuffStats) {
        assert_eq!(self.p, other.p, "subtracting stats of different widths");
        assert!(self.n >= other.n, "subtracting more examples than present");
        self.n -= other.n;
        self.sum_w -= other.sum_w;
        self.ytwy -= other.ytwy;
        for (a, b) in self.gram.iter_mut().zip(&other.gram) {
            *a -= *b;
        }
        for (a, b) in self.xtwy.iter_mut().zip(&other.xtwy) {
            *a -= *b;
        }
    }

    /// Fit the WLS model `β = (X'WX)⁻¹(X'WY)`. `None` if fewer examples
    /// than features or the Gram matrix is irreparably singular.
    pub fn fit(&self) -> Option<LinearModel> {
        self.fit_diagnosed().map(|(m, _)| m)
    }

    /// [`RegSuffStats::fit`] that also reports which ridge level (if any)
    /// the solve needed — the debuggability hook for degenerate regions.
    pub fn fit_diagnosed(&self) -> Option<(LinearModel, FitDiagnostics)> {
        let mut factor = Vec::new();
        let mut beta = Vec::new();
        let diag = self.fit_into(&mut factor, &mut beta)?;
        Some((LinearModel::new(beta), diag))
    }

    /// Fit into caller-provided scratch: `factor` receives the packed
    /// Cholesky workspace, `beta` the coefficients. No heap allocation
    /// once both buffers are warm. Returns `None` if fewer examples than
    /// features, the solve fails, or β is non-finite.
    pub fn fit_into(&self, factor: &mut Vec<f64>, beta: &mut Vec<f64>) -> Option<FitDiagnostics> {
        if self.n < self.p {
            return None;
        }
        let diag = packed_solve_spd_ridged(&self.gram, self.p, &self.xtwy, factor, beta)?;
        if beta.iter().any(|b| !b.is_finite()) {
            return None;
        }
        Some(diag)
    }

    /// Weighted sum of squared errors of the fitted model on the
    /// accumulated examples: `Y'WY − (X'WY)'β`. Clamped at 0 to absorb
    /// floating-point cancellation. `None` when no model can be fit.
    pub fn sse(&self) -> Option<f64> {
        let beta = self.fit()?;
        Some(self.sse_given_fit(beta.coefficients()))
    }

    /// SSE of *this statistic's own least-squares solution* `β` via
    /// `Y'WY − (X'WY)'β` (the one-dot-product shortcut, valid only for
    /// coefficients fitted from this statistic — see
    /// [`RegSuffStats::sse_of_coeffs`] for arbitrary models). Clamped at 0.
    pub fn sse_given_fit(&self, beta: &[f64]) -> f64 {
        assert_eq!(beta.len(), self.p, "model width mismatch");
        let explained: f64 = self.xtwy.iter().zip(beta).map(|(a, b)| a * b).sum();
        (self.ytwy - explained).max(0.0)
    }

    /// Weighted SSE of an *arbitrary* model β on the accumulated
    /// examples, from the statistic alone:
    ///
    /// ```text
    /// Σ w (y − x'β)² = Y'WY − 2 β'(X'WY) + β'(X'WX)β
    /// ```
    ///
    /// This extends Theorem 1 to *cross-validation*: a fold's test error
    /// under the complement's model needs only the fold's statistic —
    /// no examples are revisited. Clamped at 0 against cancellation.
    pub fn sse_of_model(&self, model: &LinearModel) -> f64 {
        self.sse_of_coeffs(model.coefficients())
    }

    /// [`RegSuffStats::sse_of_model`] on a bare coefficient slice, so hot
    /// loops can evaluate fold models without wrapping them in a
    /// [`LinearModel`] (which owns its vector).
    #[allow(clippy::needless_range_loop)] // symmetric i/j indexing
    pub fn sse_of_coeffs(&self, beta: &[f64]) -> f64 {
        assert_eq!(beta.len(), self.p, "model width mismatch");
        let cross: f64 = self.xtwy.iter().zip(beta).map(|(a, b)| a * b).sum();
        // β'(X'WX)β via the symmetric packed matvec: entry (i,j) with
        // j > i reads the stored (j,i).
        let mut quad = 0.0;
        for i in 0..self.p {
            let mut sum = 0.0;
            for j in 0..self.p {
                let e = if j <= i {
                    self.gram[packed_idx(i, j)]
                } else {
                    self.gram[packed_idx(j, i)]
                };
                sum += e * beta[j];
            }
            quad += sum * beta[i];
        }
        (self.ytwy - 2.0 * cross + quad).max(0.0)
    }

    /// Weighted mean squared error with `n − p` degrees of freedom, the
    /// paper's training-set error for WLS models. `None` when `n ≤ p`.
    pub fn mse(&self) -> Option<f64> {
        if self.n <= self.p {
            return None;
        }
        Some(self.sse()? / (self.n - self.p) as f64)
    }

    /// Root of [`RegSuffStats::mse`].
    pub fn rmse(&self) -> Option<f64> {
        self.mse().map(f64::sqrt)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// y = 2 + 3x exactly, with intercept column.
    fn exact_line() -> RegressionData {
        let mut d = RegressionData::new(2);
        for i in 0..10 {
            let x = i as f64;
            d.push(&[1.0, x], 2.0 + 3.0 * x);
        }
        d
    }

    #[test]
    fn fits_exact_line() {
        let s = RegSuffStats::from_dataset(&exact_line());
        let m = s.fit().unwrap();
        assert!((m.coefficients()[0] - 2.0).abs() < 1e-9);
        assert!((m.coefficients()[1] - 3.0).abs() < 1e-9);
        assert!(s.sse().unwrap() < 1e-9);
        assert!(s.rmse().unwrap() < 1e-5);
    }

    #[test]
    fn merge_equals_bulk() {
        let d = exact_line();
        let first = d.subset(&[0, 1, 2, 3]);
        let second = d.subset(&[4, 5, 6, 7, 8, 9]);
        let mut merged = RegSuffStats::from_dataset(&first);
        merged.merge(&RegSuffStats::from_dataset(&second));
        let bulk = RegSuffStats::from_dataset(&d);
        assert_eq!(merged.n(), bulk.n());
        assert!((merged.sse().unwrap() - bulk.sse().unwrap()).abs() < 1e-9);
        let mb = merged.fit().unwrap();
        let bb = bulk.fit().unwrap();
        for (a, b) in mb.coefficients().iter().zip(bb.coefficients()) {
            assert!((a - b).abs() < 1e-9);
        }
    }

    #[test]
    fn sse_matches_residual_sum() {
        // Noisy data: check SSE against the definition Σ w(y - x'β)².
        let mut d = RegressionData::new(2);
        let ys = [1.0, 2.0, 2.5, 4.2, 4.9];
        for (i, &y) in ys.iter().enumerate() {
            d.push_weighted(&[1.0, i as f64], y, 1.0 + i as f64 * 0.1);
        }
        let s = RegSuffStats::from_dataset(&d);
        let m = s.fit().unwrap();
        let direct: f64 = d
            .iter()
            .map(|(x, y, w)| {
                let r = y - m.predict(x);
                w * r * r
            })
            .sum();
        assert!((s.sse().unwrap() - direct).abs() < 1e-9);
    }

    #[test]
    fn underdetermined_returns_none() {
        let mut d = RegressionData::new(3);
        d.push(&[1.0, 2.0, 3.0], 1.0);
        let s = RegSuffStats::from_dataset(&d);
        assert!(s.fit().is_none());
        assert!(s.mse().is_none());
    }

    #[test]
    fn n_equals_p_fits_but_has_no_mse() {
        let mut d = RegressionData::new(2);
        d.push(&[1.0, 0.0], 1.0);
        d.push(&[1.0, 1.0], 2.0);
        let s = RegSuffStats::from_dataset(&d);
        assert!(s.fit().is_some());
        assert!(s.mse().is_none(), "zero degrees of freedom");
    }

    #[test]
    fn weights_shift_the_fit() {
        // Two inconsistent points; weights pull the constant fit around.
        let mut d = RegressionData::new(1);
        d.push_weighted(&[1.0], 0.0, 1.0);
        d.push_weighted(&[1.0], 10.0, 3.0);
        let m = RegSuffStats::from_dataset(&d).fit().unwrap();
        assert!((m.coefficients()[0] - 7.5).abs() < 1e-9); // (0·1+10·3)/4
    }

    #[test]
    fn sse_of_model_matches_direct_evaluation() {
        let mut d = RegressionData::new(2);
        let ys = [1.0, 2.5, 2.0, 4.8, 5.1, 7.0];
        for (i, &y) in ys.iter().enumerate() {
            d.push_weighted(&[1.0, i as f64], y, 1.0 + 0.2 * i as f64);
        }
        let stats = RegSuffStats::from_dataset(&d);
        // An arbitrary (not fitted) model.
        let model = LinearModel::new(vec![0.3, 1.1]);
        let direct: f64 = d
            .iter()
            .map(|(x, y, w)| {
                let r = y - model.predict(x);
                w * r * r
            })
            .sum();
        assert!((stats.sse_of_model(&model) - direct).abs() < 1e-9);
        // For the fitted model it coincides with sse().
        let fitted = stats.fit().unwrap();
        assert!((stats.sse_of_model(&fitted) - stats.sse().unwrap()).abs() < 1e-9);
    }

    #[test]
    fn sse_of_model_supports_fold_complement_cv() {
        // Train on folds 1..k, evaluate fold 0 purely algebraically.
        let mut all = RegressionData::new(2);
        for i in 0..30 {
            let x = i as f64;
            all.push(&[1.0, x], 2.0 + 0.5 * x + if i % 3 == 0 { 0.3 } else { -0.1 });
        }
        let fold: Vec<usize> = (0..30).filter(|i| i % 5 == 0).collect();
        let rest: Vec<usize> = (0..30).filter(|i| i % 5 != 0).collect();
        let fold_stats = RegSuffStats::from_dataset(&all.subset(&fold));
        let rest_stats = RegSuffStats::from_dataset(&all.subset(&rest));
        let model = rest_stats.fit().unwrap();
        let direct: f64 = fold
            .iter()
            .map(|&i| {
                let r = all.y(i) - model.predict(all.x(i));
                r * r
            })
            .sum();
        assert!((fold_stats.sse_of_model(&model) - direct).abs() < 1e-9);
    }

    #[test]
    fn collinear_features_survive_via_ridge() {
        let mut d = RegressionData::new(2);
        for i in 0..5 {
            let x = i as f64;
            d.push(&[x, x], 2.0 * x); // perfectly collinear
        }
        let s = RegSuffStats::from_dataset(&d);
        let m = s.fit().expect("ridge fallback should fit");
        // Predictions are still right even though β is not unique.
        assert!((m.predict(&[3.0, 3.0]) - 6.0).abs() < 1e-3);
        // And the diagnosed fit reports that a ridge was needed.
        let (_, diag) = s.fit_diagnosed().unwrap();
        assert!(diag.ridged());
    }

    #[test]
    fn clean_fit_reports_no_ridge() {
        let s = RegSuffStats::from_dataset(&exact_line());
        let (_, diag) = s.fit_diagnosed().unwrap();
        assert_eq!(diag.ridge_lambda, 0.0);
    }

    #[test]
    fn reset_and_copy_reuse_buffers() {
        let mut s = RegSuffStats::from_dataset(&exact_line());
        let bulk = RegSuffStats::from_dataset(&exact_line());
        assert!(!s.reset(2), "same width must not grow");
        assert_eq!(s.n(), 0);
        s.add_dataset(&exact_line());
        assert_eq!(s, bulk);
        let mut copy = RegSuffStats::new(2);
        copy.copy_from(&bulk);
        assert_eq!(copy, bulk);
    }

    #[test]
    fn fit_into_matches_fit_bitwise() {
        let mut d = RegressionData::new(2);
        let ys = [1.0, 2.5, 2.0, 4.8, 5.1, 7.0];
        for (i, &y) in ys.iter().enumerate() {
            d.push_weighted(&[1.0, i as f64], y, 1.0 + 0.2 * i as f64);
        }
        let s = RegSuffStats::from_dataset(&d);
        let via_fit = s.fit().unwrap();
        let (mut factor, mut beta) = (Vec::new(), Vec::new());
        s.fit_into(&mut factor, &mut beta).unwrap();
        for (a, b) in beta.iter().zip(via_fit.coefficients()) {
            assert_eq!(a.to_bits(), b.to_bits());
        }
    }

    #[test]
    fn sse_of_coeffs_matches_sse_of_model() {
        let mut d = RegressionData::new(2);
        for i in 0..6 {
            d.push(&[1.0, i as f64], 0.5 + 1.5 * i as f64 + (i % 2) as f64);
        }
        let s = RegSuffStats::from_dataset(&d);
        let model = LinearModel::new(vec![0.3, 1.1]);
        assert_eq!(
            s.sse_of_model(&model).to_bits(),
            s.sse_of_coeffs(&[0.3, 1.1]).to_bits()
        );
    }
}
