//! The algebraic k-fold cross-validation engine (Theorem 1, extended to
//! error *estimation*).
//!
//! Every bellwether builder has to answer the same question thousands of
//! times: "how well does a linear model trained on this region predict
//! the global aggregate?". The refit answer copies rows and solves k
//! Cholesky systems from scratch per region. This module answers it
//! algebraically instead:
//!
//! 1. **One pass** over the region's rows accumulates the total
//!    [`RegSuffStats`] *and* one per fold ([`FoldedSuffStats`]).
//! 2. Each fold's training model is obtained by **downdating** the total
//!    (`total − fold = complement`, exact because the statistic is a sum
//!    of per-example terms) and solving one packed `O(p³)` Cholesky.
//! 3. A second pass over the rows accumulates each fold's held-out SSE
//!    under its complement model — in the same row order as the refit
//!    path, so fold RMSEs are **bit-identical** to
//!    [`crate::crossval::cross_validate`].
//!
//! All workspace lives in a reusable [`EvalScratch`]: after the first
//! (warm-up) evaluation at a given shape, a scratch performs **zero heap
//! allocations** per region, which [`EvalStats`]'s
//! `scratch_grows`/`scratch_reuses` counters make checkable from tests.

use crate::cholesky::packed_len;
use crate::confint::ErrorEstimate;
use crate::crossval::fold_assignment_into;
use crate::dataset::RegressionData;
use crate::model::LinearModel;
use crate::suffstats::RegSuffStats;

/// One [`RegSuffStats`] per cross-validation fold plus their total,
/// built in a single pass. Mergeable fold-wise (for lattice rollups in
/// the optimized cube) and downdatable fold-wise (for CV training sets).
#[derive(Debug, Clone)]
pub struct FoldedSuffStats {
    k: usize,
    total: RegSuffStats,
    /// First `k` entries are active; extras are kept for buffer reuse.
    folds: Vec<RegSuffStats>,
}

impl FoldedSuffStats {
    /// Empty statistic for `p` features and `k` folds.
    pub fn new(p: usize, k: usize) -> Self {
        let mut s = FoldedSuffStats {
            k: 0,
            total: RegSuffStats::new(p),
            folds: Vec::new(),
        };
        s.reset(p, k);
        s
    }

    /// Zero everything (possibly changing shape) while reusing buffers.
    /// Returns `true` if any buffer had to grow.
    pub fn reset(&mut self, p: usize, k: usize) -> bool {
        let mut grew = self.total.reset(p);
        while self.folds.len() < k {
            self.folds.push(RegSuffStats::new(p));
            grew = true;
        }
        for f in &mut self.folds[..k] {
            grew |= f.reset(p);
        }
        self.k = k;
        grew
    }

    /// Feature width.
    pub fn p(&self) -> usize {
        self.total.p()
    }

    /// Number of folds.
    pub fn k(&self) -> usize {
        self.k
    }

    /// Total number of accumulated examples across all folds.
    pub fn n(&self) -> usize {
        self.total.n()
    }

    /// The all-folds total statistic.
    pub fn total(&self) -> &RegSuffStats {
        &self.total
    }

    /// Fold `f`'s statistic. Panics if `f ≥ k`.
    pub fn fold(&self, f: usize) -> &RegSuffStats {
        assert!(f < self.k, "fold index out of range");
        &self.folds[f]
    }

    /// Fold in one weighted example assigned to fold `fold`.
    pub fn add(&mut self, x: &[f64], y: f64, w: f64, fold: usize) {
        assert!(fold < self.k, "fold index out of range");
        self.total.add(x, y, w);
        self.folds[fold].add(x, y, w);
    }

    /// Fold in one example read from SoA feature columns, assigned to
    /// fold `fold` (the columnar counterpart of [`FoldedSuffStats::add`],
    /// bit-identical to it).
    pub fn add_from_cols(&mut self, cols: &[Vec<f64>], row: usize, y: f64, w: f64, fold: usize) {
        assert!(fold < self.k, "fold index out of range");
        self.total.add_from_cols(cols, row, y, w);
        self.folds[fold].add_from_cols(cols, row, y, w);
    }

    /// Accumulate an entire dataset: the total via the batched
    /// [`RegSuffStats::add_rows`] kernels (its canonical order matches
    /// `RegSuffStats::from_dataset` bit for bit), each fold via the
    /// scalar columnar fold in ascending row order (matching the refit
    /// path's per-fold accumulation).
    pub fn add_dataset(&mut self, data: &RegressionData, assignment: &[usize]) {
        assert_eq!(assignment.len(), data.n(), "one fold per example");
        self.total.add_rows(data);
        let cols = data.cols();
        for (i, &f) in assignment.iter().enumerate() {
            assert!(f < self.k, "fold index out of range");
            self.folds[f].add_from_cols(cols, i, data.y(i), data.w(i));
        }
    }

    /// Merge a disjoint subset's folded statistic fold-wise (both
    /// operands must share shape) — the lattice rollup of the optimized
    /// CV cube.
    pub fn merge(&mut self, other: &FoldedSuffStats) {
        assert_eq!(self.k, other.k, "merging different fold counts");
        self.total.merge(&other.total);
        for (a, b) in self.folds[..self.k].iter_mut().zip(&other.folds[..other.k]) {
            a.merge(b);
        }
    }
}

/// Counters for the algebraic engine's work, carried inside each
/// [`EvalScratch`] and merged across scan workers so totals are
/// deterministic regardless of thread count.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct EvalStats {
    /// Cholesky model fits performed (one per CV fold plus finals).
    pub fits: u64,
    /// Held-out folds whose RMSE was evaluated.
    pub cv_folds_evaluated: u64,
    /// Fits that needed a ridge to rescue a degenerate Gram matrix.
    pub ridge_rescues: u64,
    /// Evaluations served entirely from warm scratch buffers.
    pub scratch_reuses: u64,
    /// Evaluations that had to grow at least one scratch buffer.
    pub scratch_grows: u64,
}

impl EvalStats {
    /// Fold another worker's counters into this one.
    pub fn absorb(&mut self, other: &EvalStats) {
        self.fits += other.fits;
        self.cv_folds_evaluated += other.cv_folds_evaluated;
        self.ridge_rescues += other.ridge_rescues;
        self.scratch_reuses += other.scratch_reuses;
        self.scratch_grows += other.scratch_grows;
    }

    /// Take the counters, leaving zeros behind.
    pub fn take(&mut self) -> EvalStats {
        std::mem::take(self)
    }
}

/// Which buffer, if any, holds the full-data total statistic of the
/// most recent estimate — the cache [`EvalScratch::fit_model_cached`]
/// fits from without re-scanning the rows.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
enum CachedTotal {
    #[default]
    None,
    /// `folded.total()` holds the totals for data of this shape
    /// (written by `cv_estimate`'s Pass A).
    Folded { n: usize, p: usize },
    /// `train` holds the totals for data of this shape (written by
    /// `training_estimate`).
    Train { n: usize, p: usize },
}

/// Reusable workspace for the algebraic error engine: folded statistics,
/// the downdated training statistic, fold assignment buffers, per-fold
/// coefficients, and the packed Cholesky factor/solution buffers. One
/// scratch per scan worker makes per-region evaluation allocation-free
/// after warm-up.
#[derive(Debug, Clone, Default)]
pub struct EvalScratch {
    folded: FoldedSuffStats,
    train: RegSuffStats,
    cached_total: CachedTotal,
    order: Vec<usize>,
    assignment: Vec<usize>,
    /// Per-fold coefficients, flattened `k × p`.
    betas: Vec<f64>,
    beta_ok: Vec<bool>,
    fold_sse: Vec<f64>,
    fold_rmses: Vec<f64>,
    factor: Vec<f64>,
    beta_buf: Vec<f64>,
    sq: Vec<f64>,
    /// Work counters, merged across workers by the scan engine.
    pub stats: EvalStats,
}

impl Default for FoldedSuffStats {
    fn default() -> Self {
        FoldedSuffStats::new(0, 0)
    }
}

fn ensure_buf<T: Clone + Default>(v: &mut Vec<T>, len: usize) -> bool {
    let grew = v.capacity() < len;
    v.clear();
    v.resize(len, T::default());
    grew
}

impl EvalScratch {
    /// Fresh, empty scratch (buffers grow on first use).
    pub fn new() -> Self {
        EvalScratch::default()
    }

    /// Fold RMSEs of the most recent evaluation, in ascending fold order
    /// (folds that could not fit a model are skipped).
    pub fn fold_rmses(&self) -> &[f64] {
        &self.fold_rmses
    }

    fn note_shape(&mut self, grew: bool) {
        if grew {
            self.stats.scratch_grows += 1;
        } else {
            self.stats.scratch_reuses += 1;
        }
    }

    /// k-fold cross-validated error of a WLS model on `data`, computed
    /// algebraically (one statistics pass, k downdated packed solves,
    /// one held-out evaluation pass). Fold RMSEs and the resulting
    /// estimate are bit-identical to
    /// [`crate::crossval::cross_val_estimate`]; `None` under the same
    /// conditions.
    pub fn cv_estimate(&mut self, data: &RegressionData, k: usize, seed: u64) -> Option<ErrorEstimate> {
        self.cached_total = CachedTotal::None;
        let n = data.n();
        if n < 2 {
            return None;
        }
        let p = data.p();

        let mut grew = ensure_buf(&mut self.order, n);
        grew |= ensure_buf(&mut self.assignment, n);
        fold_assignment_into(n, k, seed, &mut self.order, &mut self.assignment);
        let k = self.assignment.iter().copied().max().map_or(1, |m| m + 1);

        grew |= self.folded.reset(p, k);
        grew |= self.train.reset(p);
        grew |= ensure_buf(&mut self.betas, k * p);
        grew |= ensure_buf(&mut self.beta_ok, k);
        grew |= ensure_buf(&mut self.fold_sse, k);
        grew |= ensure_buf(&mut self.factor, packed_len(p));
        grew |= ensure_buf(&mut self.beta_buf, p);
        self.note_shape(grew);

        // Pass A: total + per-fold statistics in one sweep (the total via
        // the batched kernels, so it matches the refit path's
        // `RegSuffStats::from_dataset` bit for bit).
        self.folded.add_dataset(data, &self.assignment);
        // Pass A's total is exactly what a final full-data fit needs —
        // remember it so `fit_model_cached` can skip its own row pass.
        self.cached_total = CachedTotal::Folded { n, p };

        // Fold-complement fits by downdating the total — k packed O(p³)
        // solves, no dataset copies.
        for f in 0..k {
            self.beta_ok[f] = false;
            if self.folded.fold(f).n() == 0 {
                continue;
            }
            self.train.copy_from(self.folded.total());
            self.train.subtract(self.folded.fold(f));
            let Some(diag) = self.train.fit_into(&mut self.factor, &mut self.beta_buf) else {
                continue;
            };
            self.stats.fits += 1;
            if diag.ridged() {
                self.stats.ridge_rescues += 1;
            }
            self.betas[f * p..(f + 1) * p].copy_from_slice(&self.beta_buf);
            self.beta_ok[f] = true;
        }

        // Pass B: held-out SSE per fold. Rows are visited in ascending
        // order, so each fold's accumulation order — and hence its RMSE —
        // is bit-identical to the refit path's per-fold sweeps.
        for s in &mut self.fold_sse[..k] {
            *s = 0.0;
        }
        for (i, &f) in self.assignment.iter().enumerate() {
            if self.beta_ok[f] {
                let beta = &self.betas[f * p..(f + 1) * p];
                let r = data.y(i) - data.predict_at(i, beta);
                self.fold_sse[f] += r * r;
            }
        }

        self.fold_rmses.clear();
        for f in 0..k {
            if self.beta_ok[f] {
                let nf = self.folded.fold(f).n();
                self.fold_rmses.push((self.fold_sse[f] / nf as f64).sqrt());
            }
        }
        self.stats.cv_folds_evaluated += self.fold_rmses.len() as u64;
        if self.fold_rmses.is_empty() {
            None
        } else {
            Some(ErrorEstimate::from_folds(&self.fold_rmses))
        }
    }

    /// Training-set error of a WLS model on `data` (one fit, residual
    /// spread for the standard error). Values bit-identical to
    /// [`crate::crossval::training_set_estimate`], without its second
    /// statistics pass and per-call allocations.
    pub fn training_estimate(&mut self, data: &RegressionData) -> Option<ErrorEstimate> {
        self.cached_total = CachedTotal::None;
        let p = data.p();
        let n = data.n();
        let mut grew = self.train.reset(p);
        grew |= ensure_buf(&mut self.factor, packed_len(p));
        grew |= ensure_buf(&mut self.beta_buf, p);
        grew |= ensure_buf(&mut self.sq, n);
        self.note_shape(grew);

        if n <= p {
            return None;
        }
        self.train.add_dataset(data);
        self.cached_total = CachedTotal::Train { n, p };
        let diag = self.train.fit_into(&mut self.factor, &mut self.beta_buf)?;
        self.stats.fits += 1;
        if diag.ridged() {
            self.stats.ridge_rescues += 1;
        }
        let sse = self.train.sse_given_fit(&self.beta_buf);
        let rmse = (sse / (n - p) as f64).sqrt();
        // Delta-method standard error from the spread of squared
        // residuals, as in the refit path.
        for i in 0..n {
            let r = data.y(i) - data.predict_at(i, &self.beta_buf);
            self.sq[i] = r * r;
        }
        let std_err = if rmse > 0.0 && n > 1 {
            crate::stats::sample_std(&self.sq[..n]) / (2.0 * rmse * (n as f64).sqrt())
        } else {
            0.0
        };
        Some(ErrorEstimate {
            value: rmse,
            std_err,
        })
    }

    /// Algebraic k-fold CV **purely from folded statistics** — no row
    /// access at all, for callers that only hold rolled-up statistics
    /// (the optimized CV cube). Fold `f`'s model is fit on the downdated
    /// total and its test SSE comes from
    /// [`RegSuffStats::sse_of_coeffs`]. Returns the fold RMSEs (empty if
    /// no fold could fit a model); also retrievable via
    /// [`EvalScratch::fold_rmses`].
    pub fn algebraic_fold_rmses(&mut self, folded: &FoldedSuffStats) -> &[f64] {
        self.cached_total = CachedTotal::None;
        let p = folded.p();
        let mut grew = self.train.reset(p);
        grew |= ensure_buf(&mut self.factor, packed_len(p));
        grew |= ensure_buf(&mut self.beta_buf, p);
        self.note_shape(grew);

        self.fold_rmses.clear();
        for f in 0..folded.k() {
            let fold = folded.fold(f);
            let nf = fold.n();
            if nf == 0 {
                continue;
            }
            self.train.copy_from(folded.total());
            self.train.subtract(fold);
            let Some(diag) = self.train.fit_into(&mut self.factor, &mut self.beta_buf) else {
                continue;
            };
            self.stats.fits += 1;
            if diag.ridged() {
                self.stats.ridge_rescues += 1;
            }
            let sse = fold.sse_of_coeffs(&self.beta_buf);
            self.fold_rmses.push((sse / nf as f64).sqrt());
        }
        self.stats.cv_folds_evaluated += self.fold_rmses.len() as u64;
        &self.fold_rmses
    }

    /// Fit a WLS model on `data` through the scratch (one statistics
    /// pass, one packed solve; the only allocation is the returned
    /// coefficient vector). Coefficients are bit-identical to
    /// [`crate::model::fit_wls`].
    pub fn fit_model(&mut self, data: &RegressionData) -> Option<LinearModel> {
        self.cached_total = CachedTotal::None;
        let p = data.p();
        let mut grew = self.train.reset(p);
        grew |= ensure_buf(&mut self.factor, packed_len(p));
        grew |= ensure_buf(&mut self.beta_buf, p);
        self.note_shape(grew);

        self.train.add_dataset(data);
        self.cached_total = CachedTotal::Train {
            n: data.n(),
            p,
        };
        let diag = self.train.fit_into(&mut self.factor, &mut self.beta_buf)?;
        self.stats.fits += 1;
        if diag.ridged() {
            self.stats.ridge_rescues += 1;
        }
        Some(LinearModel::new(self.beta_buf.clone()))
    }

    /// Like [`EvalScratch::fit_model`], but when the most recent
    /// estimate on this scratch accumulated the total statistic for rows
    /// of the same shape, that total is fitted directly — one packed
    /// `O(p³)` solve instead of an `O(n·p²)` statistics pass, with
    /// coefficients **bit-identical** to the fresh pass (both accumulate
    /// the rows in the same order). Only the shape is checked, so callers
    /// must pass the same `data` the estimate saw;
    /// [`EvalScratch::forget_data`] drops the cache whenever a reused
    /// buffer is refilled with different rows.
    pub fn fit_model_cached(&mut self, data: &RegressionData) -> Option<LinearModel> {
        let (n, p) = (data.n(), data.p());
        let use_folded =
            matches!(self.cached_total, CachedTotal::Folded { n: cn, p: cp } if cn == n && cp == p);
        let use_train =
            matches!(self.cached_total, CachedTotal::Train { n: cn, p: cp } if cn == n && cp == p);
        if !use_folded && !use_train {
            return self.fit_model(data);
        }
        let mut grew = ensure_buf(&mut self.factor, packed_len(p));
        grew |= ensure_buf(&mut self.beta_buf, p);
        self.note_shape(grew);
        let diag = {
            let EvalScratch {
                folded,
                train,
                factor,
                beta_buf,
                ..
            } = &mut *self;
            let total = if use_folded { folded.total() } else { &*train };
            total.fit_into(factor, beta_buf)?
        };
        self.stats.fits += 1;
        if diag.ridged() {
            self.stats.ridge_rescues += 1;
        }
        Some(LinearModel::new(self.beta_buf.clone()))
    }

    /// Drop the fit-from-total cache. Call before refilling a data
    /// buffer that a previous estimate ran over — a shape collision must
    /// not let [`EvalScratch::fit_model_cached`] serve another region's
    /// statistics.
    pub fn forget_data(&mut self) {
        self.cached_total = CachedTotal::None;
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::crossval::{cross_val_estimate, cross_validate, training_set_estimate};
    use crate::model::fit_wls;
    use crate::stats::SplitMix64;

    fn noisy_line(n: usize, noise: f64, seed: u64) -> RegressionData {
        let mut rng = SplitMix64::new(seed);
        let mut d = RegressionData::new(2);
        for i in 0..n {
            let x = i as f64 / 10.0;
            let e = (rng.next_u64() as f64 / u64::MAX as f64 - 0.5) * 2.0 * noise;
            d.push(&[1.0, x], 1.0 + 2.0 * x + e);
        }
        d
    }

    #[test]
    fn cv_bit_identical_to_refit_path() {
        let mut scratch = EvalScratch::new();
        for (n, noise, k, seed) in [
            (50usize, 1.0, 5usize, 7u64),
            (103, 0.3, 10, 42),
            (30, 2.5, 2, 9),
            (5, 0.1, 10, 0), // k clamped to n
        ] {
            let d = noisy_line(n, noise, seed);
            let refit = cross_validate(&d, k, seed).unwrap();
            let alg = scratch.cv_estimate(&d, k, seed).unwrap();
            assert_eq!(scratch.fold_rmses().len(), refit.fold_rmses.len());
            for (a, b) in scratch.fold_rmses().iter().zip(&refit.fold_rmses) {
                assert_eq!(a.to_bits(), b.to_bits(), "n={n} k={k}");
            }
            let est = refit.estimate();
            assert_eq!(alg.value.to_bits(), est.value.to_bits());
            assert_eq!(alg.std_err.to_bits(), est.std_err.to_bits());
        }
    }

    #[test]
    fn cv_exact_data_stays_exact() {
        // The catastrophic-cancellation trap: a near-perfect fit must
        // still report ~0 error (the row-wise pass B guarantees it; a
        // pure sse_of_model evaluation would not).
        let mut d = RegressionData::new(2);
        for i in 0..100 {
            let x = i as f64;
            d.push(&[1.0, x], 5.0 + 2.0 * x);
        }
        let mut scratch = EvalScratch::new();
        let e = scratch.cv_estimate(&d, 10, 0xBE11).unwrap();
        assert!(e.value < 1e-6, "exact line must stay exact, got {}", e.value);
    }

    #[test]
    fn cv_degenerate_cases_match_refit() {
        let mut scratch = EvalScratch::new();
        let mut tiny = RegressionData::new(3);
        tiny.push(&[1.0, 2.0, 3.0], 1.0);
        assert!(scratch.cv_estimate(&tiny, 10, 0).is_none());
        assert!(cross_val_estimate(&tiny, 10, 0).is_none());
        assert!(scratch.training_estimate(&tiny).is_none());
    }

    #[test]
    fn training_bit_identical_to_refit_path() {
        let mut scratch = EvalScratch::new();
        for seed in [1u64, 2, 3] {
            let d = noisy_line(80, 1.5, seed);
            let refit = training_set_estimate(&d).unwrap();
            let alg = scratch.training_estimate(&d).unwrap();
            assert_eq!(alg.value.to_bits(), refit.value.to_bits());
            assert_eq!(alg.std_err.to_bits(), refit.std_err.to_bits());
        }
    }

    #[test]
    fn fit_model_matches_fit_wls() {
        let d = noisy_line(40, 0.7, 11);
        let mut scratch = EvalScratch::new();
        let a = scratch.fit_model(&d).unwrap();
        let b = fit_wls(&d).unwrap();
        for (x, y) in a.coefficients().iter().zip(b.coefficients()) {
            assert_eq!(x.to_bits(), y.to_bits());
        }
    }

    #[test]
    fn fit_model_cached_matches_fit_wls_bitwise() {
        let d = noisy_line(55, 0.4, 21);
        let expect = fit_wls(&d).unwrap();
        let mut scratch = EvalScratch::new();

        // After a CV estimate the cached total serves the fit.
        scratch.cv_estimate(&d, 5, 9).unwrap();
        let fits_before = scratch.stats.fits;
        let via_cv = scratch.fit_model_cached(&d).unwrap();
        assert_eq!(scratch.stats.fits, fits_before + 1);
        for (x, y) in via_cv.coefficients().iter().zip(expect.coefficients()) {
            assert_eq!(x.to_bits(), y.to_bits());
        }

        // After a training estimate, likewise.
        scratch.training_estimate(&d).unwrap();
        let via_train = scratch.fit_model_cached(&d).unwrap();
        for (x, y) in via_train.coefficients().iter().zip(expect.coefficients()) {
            assert_eq!(x.to_bits(), y.to_bits());
        }

        // With the cache dropped it falls back to the fresh pass and
        // still agrees.
        scratch.cv_estimate(&d, 5, 9).unwrap();
        scratch.forget_data();
        let fresh = scratch.fit_model_cached(&d).unwrap();
        for (x, y) in fresh.coefficients().iter().zip(expect.coefficients()) {
            assert_eq!(x.to_bits(), y.to_bits());
        }

        // A different same-shape dataset must not be served stale
        // coefficients when the caller forgets properly — and the cache
        // key alone already rejects shape changes.
        let d2 = noisy_line(54, 0.4, 22);
        scratch.cv_estimate(&d, 5, 9).unwrap();
        let other = scratch.fit_model_cached(&d2).unwrap();
        let expect2 = fit_wls(&d2).unwrap();
        for (x, y) in other.coefficients().iter().zip(expect2.coefficients()) {
            assert_eq!(x.to_bits(), y.to_bits());
        }
    }

    #[test]
    fn scratch_is_allocation_free_after_warm_up() {
        let mut scratch = EvalScratch::new();
        let d = noisy_line(60, 1.0, 5);
        scratch.cv_estimate(&d, 10, 3).unwrap(); // warm-up both paths
        scratch.training_estimate(&d).unwrap();
        let grows = scratch.stats.scratch_grows;
        for seed in 0..20 {
            scratch.cv_estimate(&d, 10, seed).unwrap();
            scratch.training_estimate(&d).unwrap();
        }
        assert_eq!(
            scratch.stats.scratch_grows, grows,
            "warm scratch must not grow"
        );
        assert!(scratch.stats.scratch_reuses >= 40);
    }

    #[test]
    fn folded_merge_equals_bulk() {
        let d = noisy_line(30, 0.5, 8);
        let assign: Vec<usize> = (0..30).map(|i| i % 3).collect();
        let mut bulk = FoldedSuffStats::new(2, 3);
        let mut left = FoldedSuffStats::new(2, 3);
        let mut right = FoldedSuffStats::new(2, 3);
        for (i, &fold) in assign.iter().enumerate() {
            let (x, y, w) = (d.row(i), d.y(i), d.w(i));
            bulk.add(&x, y, w, fold);
            if i < 15 {
                left.add(&x, y, w, fold);
            } else {
                right.add(&x, y, w, fold);
            }
        }
        left.merge(&right);
        assert_eq!(left.n(), bulk.n());
        for f in 0..3 {
            assert_eq!(left.fold(f).n(), bulk.fold(f).n());
            let a = left.fold(f).fit().unwrap();
            let b = bulk.fold(f).fit().unwrap();
            for (x, y) in a.coefficients().iter().zip(b.coefficients()) {
                assert!((x - y).abs() < 1e-9);
            }
        }
    }

    #[test]
    fn algebraic_fold_rmses_close_to_row_wise_cv() {
        // The pure-statistics path (no rows) agrees with the row-wise
        // engine to fine tolerance on well-conditioned data.
        let d = noisy_line(90, 1.0, 13);
        let k = 5;
        let seed = 21;
        let mut scratch = EvalScratch::new();
        let row_wise = scratch.cv_estimate(&d, k, seed).unwrap();
        let row_rmses = scratch.fold_rmses().to_vec();

        let assignment = crate::crossval::fold_assignment(d.n(), k, seed);
        let mut folded = FoldedSuffStats::new(d.p(), k);
        folded.add_dataset(&d, &assignment);
        let mut scratch2 = EvalScratch::new();
        let alg = scratch2.algebraic_fold_rmses(&folded).to_vec();
        assert_eq!(alg.len(), row_rmses.len());
        for (a, b) in alg.iter().zip(&row_rmses) {
            assert!((a - b).abs() / b.max(1e-12) < 1e-8, "{a} vs {b}");
        }
        let est = ErrorEstimate::from_folds(&alg);
        assert!((est.value - row_wise.value).abs() / row_wise.value < 1e-8);
    }

    #[test]
    fn counters_accumulate_and_absorb() {
        let mut a = EvalScratch::new();
        let d = noisy_line(50, 1.0, 2);
        a.cv_estimate(&d, 5, 1).unwrap();
        assert_eq!(a.stats.fits, 5);
        assert_eq!(a.stats.cv_folds_evaluated, 5);
        let mut total = EvalStats::default();
        total.absorb(&a.stats);
        total.absorb(&a.stats.take());
        assert_eq!(total.fits, 10);
        assert_eq!(a.stats, EvalStats::default());
    }
}
