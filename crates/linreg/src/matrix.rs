//! A small dense row-major matrix — just enough linear algebra for
//! weighted least squares over the handful of features bellwether
//! models use (p is typically < 20, while n may be large).

use std::fmt;
use std::ops::{Add, AddAssign};

/// Dense row-major `rows × cols` matrix of `f64`.
#[derive(Debug, Clone, PartialEq)]
pub struct Matrix {
    rows: usize,
    cols: usize,
    data: Vec<f64>,
}

impl Matrix {
    /// All-zeros matrix.
    pub fn zeros(rows: usize, cols: usize) -> Self {
        Matrix {
            rows,
            cols,
            data: vec![0.0; rows * cols],
        }
    }

    /// Identity matrix of order `n`.
    pub fn identity(n: usize) -> Self {
        let mut m = Matrix::zeros(n, n);
        for i in 0..n {
            m[(i, i)] = 1.0;
        }
        m
    }

    /// Matrix from row-major data; panics if the length is wrong.
    pub fn from_rows(rows: usize, cols: usize, data: Vec<f64>) -> Self {
        assert_eq!(
            data.len(),
            rows * cols,
            "data length {} != {rows}x{cols}",
            data.len()
        );
        Matrix { rows, cols, data }
    }

    /// Number of rows.
    pub fn rows(&self) -> usize {
        self.rows
    }

    /// Number of columns.
    pub fn cols(&self) -> usize {
        self.cols
    }

    /// Borrow one row as a slice.
    pub fn row(&self, r: usize) -> &[f64] {
        &self.data[r * self.cols..(r + 1) * self.cols]
    }

    /// Borrow one row mutably.
    pub fn row_mut(&mut self, r: usize) -> &mut [f64] {
        &mut self.data[r * self.cols..(r + 1) * self.cols]
    }

    /// Raw row-major data.
    pub fn data(&self) -> &[f64] {
        &self.data
    }

    /// Transpose.
    pub fn transpose(&self) -> Matrix {
        let mut out = Matrix::zeros(self.cols, self.rows);
        for r in 0..self.rows {
            for c in 0..self.cols {
                out[(c, r)] = self[(r, c)];
            }
        }
        out
    }

    /// Matrix product `self * other`; panics on shape mismatch.
    pub fn matmul(&self, other: &Matrix) -> Matrix {
        assert_eq!(
            self.cols, other.rows,
            "matmul shape mismatch {}x{} * {}x{}",
            self.rows, self.cols, other.rows, other.cols
        );
        let mut out = Matrix::zeros(self.rows, other.cols);
        for r in 0..self.rows {
            for k in 0..self.cols {
                let a = self[(r, k)];
                if a == 0.0 {
                    continue;
                }
                for c in 0..other.cols {
                    out[(r, c)] += a * other[(k, c)];
                }
            }
        }
        out
    }

    /// Matrix–vector product; panics on shape mismatch.
    pub fn matvec(&self, v: &[f64]) -> Vec<f64> {
        assert_eq!(self.cols, v.len(), "matvec shape mismatch");
        (0..self.rows)
            .map(|r| self.row(r).iter().zip(v).map(|(a, b)| a * b).sum())
            .collect()
    }

    /// Scale every entry in place.
    pub fn scale_inplace(&mut self, s: f64) {
        for v in &mut self.data {
            *v *= s;
        }
    }

    /// Sum of diagonal entries (square matrices).
    pub fn trace(&self) -> f64 {
        assert_eq!(self.rows, self.cols, "trace of non-square matrix");
        (0..self.rows).map(|i| self[(i, i)]).sum()
    }

    /// Max absolute difference against another matrix of the same shape.
    pub fn max_abs_diff(&self, other: &Matrix) -> f64 {
        assert_eq!((self.rows, self.cols), (other.rows, other.cols));
        self.data
            .iter()
            .zip(&other.data)
            .map(|(a, b)| (a - b).abs())
            .fold(0.0, f64::max)
    }
}

impl std::ops::Index<(usize, usize)> for Matrix {
    type Output = f64;
    #[inline]
    fn index(&self, (r, c): (usize, usize)) -> &f64 {
        debug_assert!(r < self.rows && c < self.cols);
        &self.data[r * self.cols + c]
    }
}

impl std::ops::IndexMut<(usize, usize)> for Matrix {
    #[inline]
    fn index_mut(&mut self, (r, c): (usize, usize)) -> &mut f64 {
        debug_assert!(r < self.rows && c < self.cols);
        &mut self.data[r * self.cols + c]
    }
}

impl Add for &Matrix {
    type Output = Matrix;
    fn add(self, other: &Matrix) -> Matrix {
        assert_eq!((self.rows, self.cols), (other.rows, other.cols));
        let data = self
            .data
            .iter()
            .zip(&other.data)
            .map(|(a, b)| a + b)
            .collect();
        Matrix {
            rows: self.rows,
            cols: self.cols,
            data,
        }
    }
}

impl AddAssign<&Matrix> for Matrix {
    fn add_assign(&mut self, other: &Matrix) {
        assert_eq!((self.rows, self.cols), (other.rows, other.cols));
        for (a, b) in self.data.iter_mut().zip(&other.data) {
            *a += *b;
        }
    }
}

impl std::ops::SubAssign<&Matrix> for Matrix {
    fn sub_assign(&mut self, other: &Matrix) {
        assert_eq!((self.rows, self.cols), (other.rows, other.cols));
        for (a, b) in self.data.iter_mut().zip(&other.data) {
            *a -= *b;
        }
    }
}

impl fmt::Display for Matrix {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        for r in 0..self.rows {
            let cells: Vec<String> = self.row(r).iter().map(|v| format!("{v:.4}")).collect();
            writeln!(f, "[{}]", cells.join(", "))?;
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn identity_is_neutral() {
        let a = Matrix::from_rows(2, 2, vec![1.0, 2.0, 3.0, 4.0]);
        let i = Matrix::identity(2);
        assert_eq!(a.matmul(&i), a);
        assert_eq!(i.matmul(&a), a);
    }

    #[test]
    fn matmul_known_product() {
        let a = Matrix::from_rows(2, 3, vec![1.0, 2.0, 3.0, 4.0, 5.0, 6.0]);
        let b = Matrix::from_rows(3, 2, vec![7.0, 8.0, 9.0, 10.0, 11.0, 12.0]);
        let c = a.matmul(&b);
        assert_eq!(c, Matrix::from_rows(2, 2, vec![58.0, 64.0, 139.0, 154.0]));
    }

    #[test]
    fn transpose_involution() {
        let a = Matrix::from_rows(2, 3, vec![1.0, 2.0, 3.0, 4.0, 5.0, 6.0]);
        assert_eq!(a.transpose().transpose(), a);
        assert_eq!(a.transpose()[(2, 1)], 6.0);
    }

    #[test]
    fn matvec_matches_matmul() {
        let a = Matrix::from_rows(2, 2, vec![1.0, 2.0, 3.0, 4.0]);
        let v = vec![5.0, 6.0];
        assert_eq!(a.matvec(&v), vec![17.0, 39.0]);
    }

    #[test]
    fn add_and_scale() {
        let a = Matrix::from_rows(1, 2, vec![1.0, 2.0]);
        let mut b = &a + &a;
        assert_eq!(b, Matrix::from_rows(1, 2, vec![2.0, 4.0]));
        b.scale_inplace(0.5);
        assert_eq!(b, a);
        let mut c = a.clone();
        c += &a;
        assert_eq!(c, Matrix::from_rows(1, 2, vec![2.0, 4.0]));
    }

    #[test]
    fn trace_and_diff() {
        let a = Matrix::from_rows(2, 2, vec![1.0, 9.0, 9.0, 3.0]);
        assert_eq!(a.trace(), 4.0);
        let b = Matrix::from_rows(2, 2, vec![1.0, 9.5, 9.0, 3.0]);
        assert!((a.max_abs_diff(&b) - 0.5).abs() < 1e-12);
    }

    #[test]
    #[should_panic(expected = "shape mismatch")]
    fn matmul_shape_checked() {
        let a = Matrix::zeros(2, 3);
        let b = Matrix::zeros(2, 3);
        let _ = a.matmul(&b);
    }
}
