//! # bellwether-linreg
//!
//! The regression substrate of the bellwether reproduction: dense linear
//! algebra sized for small feature counts, ordinary and weighted least
//! squares, the Theorem-1 sufficient statistic (`⟨Y'WY, X'WX, X'WY⟩`)
//! with exact merge/subtract, k-fold cross-validation, and error
//! estimates with confidence intervals.
//!
//! Everything downstream — basic bellwether search, bellwether trees and
//! cubes — measures model quality through [`ErrorEstimate`]s produced
//! here, and the optimized cube algorithm rolls [`RegSuffStats`] up the
//! item-hierarchy lattice instead of refitting models.
//!
//! ```
//! use bellwether_linreg::{RegressionData, RegSuffStats, cross_val_estimate};
//!
//! let mut data = RegressionData::new(2);
//! for i in 0..50 {
//!     let x = i as f64;
//!     data.push(&[1.0, x], 3.0 + 2.0 * x);
//! }
//! let model = RegSuffStats::from_dataset(&data).fit().unwrap();
//! assert!((model.predict(&[1.0, 10.0]) - 23.0).abs() < 1e-6);
//! let err = cross_val_estimate(&data, 10, 42).unwrap();
//! assert!(err.value < 1e-6);
//! ```

#![warn(missing_docs)]

pub mod cholesky;
pub mod confint;
pub mod crossval;
pub mod dataset;
pub mod folded;
pub mod matrix;
pub mod model;
pub mod stats;
pub mod suffstats;

pub use cholesky::{
    packed_idx, packed_len, packed_solve_spd_ridged, solve_spd_ridged, solve_spd_ridged_diag,
    Cholesky, FitDiagnostics,
};
pub use confint::ErrorEstimate;
pub use crossval::{
    cross_val_estimate, cross_validate, fold_assignment, fold_assignment_into,
    training_set_estimate, CvResult,
};
pub use folded::{EvalScratch, EvalStats, FoldedSuffStats};
pub use dataset::RegressionData;
pub use matrix::Matrix;
pub use model::{fit_ols, fit_wls, LinearModel};
pub use stats::{mean, normal_quantile, sample_std, sample_variance, SplitMix64};
pub use suffstats::RegSuffStats;
