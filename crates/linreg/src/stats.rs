//! Scalar statistics helpers: mean/variance, quantiles of the standard
//! normal, and a deterministic splittable RNG for fold shuffling (kept
//! local so this crate stays dependency-free).

/// Arithmetic mean; 0 for an empty slice.
pub fn mean(xs: &[f64]) -> f64 {
    if xs.is_empty() {
        0.0
    } else {
        xs.iter().sum::<f64>() / xs.len() as f64
    }
}

/// Unbiased sample variance; 0 with fewer than two points.
pub fn sample_variance(xs: &[f64]) -> f64 {
    if xs.len() < 2 {
        return 0.0;
    }
    let m = mean(xs);
    xs.iter().map(|x| (x - m) * (x - m)).sum::<f64>() / (xs.len() - 1) as f64
}

/// Unbiased sample standard deviation.
pub fn sample_std(xs: &[f64]) -> f64 {
    sample_variance(xs).sqrt()
}

/// Inverse CDF of the standard normal (Acklam's rational approximation,
/// absolute error < 1.2e-9 over (0, 1)). Panics outside (0, 1).
pub fn normal_quantile(p: f64) -> f64 {
    assert!(p > 0.0 && p < 1.0, "quantile probability must be in (0,1)");

    const A: [f64; 6] = [
        -3.969683028665376e+01,
        2.209460984245205e+02,
        -2.759285104469687e+02,
        1.383_577_518_672_69e2,
        -3.066479806614716e+01,
        2.506628277459239e+00,
    ];
    const B: [f64; 5] = [
        -5.447609879822406e+01,
        1.615858368580409e+02,
        -1.556989798598866e+02,
        6.680131188771972e+01,
        -1.328068155288572e+01,
    ];
    const C: [f64; 6] = [
        -7.784894002430293e-03,
        -3.223964580411365e-01,
        -2.400758277161838e+00,
        -2.549732539343734e+00,
        4.374664141464968e+00,
        2.938163982698783e+00,
    ];
    const D: [f64; 4] = [
        7.784695709041462e-03,
        3.224671290700398e-01,
        2.445134137142996e+00,
        3.754408661907416e+00,
    ];
    const P_LOW: f64 = 0.02425;

    if p < P_LOW {
        let q = (-2.0 * p.ln()).sqrt();
        (((((C[0] * q + C[1]) * q + C[2]) * q + C[3]) * q + C[4]) * q + C[5])
            / ((((D[0] * q + D[1]) * q + D[2]) * q + D[3]) * q + 1.0)
    } else if p <= 1.0 - P_LOW {
        let q = p - 0.5;
        let r = q * q;
        (((((A[0] * r + A[1]) * r + A[2]) * r + A[3]) * r + A[4]) * r + A[5]) * q
            / (((((B[0] * r + B[1]) * r + B[2]) * r + B[3]) * r + B[4]) * r + 1.0)
    } else {
        -normal_quantile(1.0 - p)
    }
}

/// SplitMix64: tiny deterministic RNG used only for fold shuffling.
#[derive(Debug, Clone)]
pub struct SplitMix64 {
    state: u64,
}

impl SplitMix64 {
    /// Seeded generator.
    pub fn new(seed: u64) -> Self {
        SplitMix64 { state: seed }
    }

    /// Next raw 64-bit output.
    pub fn next_u64(&mut self) -> u64 {
        self.state = self.state.wrapping_add(0x9E3779B97F4A7C15);
        let mut z = self.state;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58476D1CE4E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D049BB133111EB);
        z ^ (z >> 31)
    }

    /// Uniform index in `[0, n)`; panics if `n == 0`.
    pub fn next_below(&mut self, n: usize) -> usize {
        assert!(n > 0);
        (self.next_u64() % n as u64) as usize
    }

    /// Fisher–Yates shuffle.
    pub fn shuffle<T>(&mut self, xs: &mut [T]) {
        for i in (1..xs.len()).rev() {
            let j = self.next_below(i + 1);
            xs.swap(i, j);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn mean_and_variance() {
        let xs = [2.0, 4.0, 4.0, 4.0, 5.0, 5.0, 7.0, 9.0];
        assert!((mean(&xs) - 5.0).abs() < 1e-12);
        assert!((sample_variance(&xs) - 32.0 / 7.0).abs() < 1e-12);
        assert_eq!(mean(&[]), 0.0);
        assert_eq!(sample_variance(&[1.0]), 0.0);
    }

    #[test]
    fn normal_quantile_known_points() {
        assert!(normal_quantile(0.5).abs() < 1e-9);
        assert!((normal_quantile(0.975) - 1.959964).abs() < 1e-5);
        assert!((normal_quantile(0.995) - 2.575829).abs() < 1e-5);
        assert!((normal_quantile(0.025) + 1.959964).abs() < 1e-5);
        // extreme tails stay finite and monotone
        assert!(normal_quantile(1e-10) < normal_quantile(1e-9));
    }

    #[test]
    fn quantile_symmetry() {
        for p in [0.01, 0.1, 0.3, 0.45] {
            let lo = normal_quantile(p);
            let hi = normal_quantile(1.0 - p);
            assert!((lo + hi).abs() < 1e-9, "asymmetry at {p}");
        }
    }

    #[test]
    fn shuffle_is_deterministic_permutation() {
        let mut a: Vec<u32> = (0..100).collect();
        let mut b = a.clone();
        SplitMix64::new(7).shuffle(&mut a);
        SplitMix64::new(7).shuffle(&mut b);
        assert_eq!(a, b);
        let mut sorted = a.clone();
        sorted.sort_unstable();
        assert_eq!(sorted, (0..100).collect::<Vec<_>>());
        assert_ne!(a, sorted, "seed 7 should actually permute");
    }
}
