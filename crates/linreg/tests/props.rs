//! Property tests of the numerical core: Cholesky solves, least-squares
//! optimality, and cross-validation sanity.

use bellwether_linreg::{
    cross_validate, fit_ols, normal_quantile, solve_spd_ridged, Cholesky, Matrix,
    RegSuffStats, RegressionData,
};
use bellwether_prop::{check, Rng};

/// A random SPD matrix A = M'M + I.
fn spd(rng: &mut Rng, n: usize) -> Matrix {
    let data: Vec<f64> = (0..n * n).map(|_| rng.f64_in(-3.0, 3.0)).collect();
    let m = Matrix::from_rows(n, n, data);
    let mut a = m.transpose().matmul(&m);
    for i in 0..n {
        a[(i, i)] += 1.0;
    }
    a
}

#[test]
fn cholesky_solves_spd_systems() {
    check("cholesky_solves_spd_systems", 64, |rng| {
        let a = spd(rng, 4);
        let x: Vec<f64> = (0..4).map(|_| rng.f64_in(-10.0, 10.0)).collect();
        let b = a.matvec(&x);
        let solved = Cholesky::factor(&a).unwrap().solve(&b);
        for (s, t) in solved.iter().zip(&x) {
            assert!((s - t).abs() < 1e-6, "{s} vs {t}");
        }
        // Ridged solve agrees on well-conditioned systems.
        let ridged = solve_spd_ridged(&a, &b).unwrap();
        for (s, t) in ridged.iter().zip(&x) {
            assert!((s - t).abs() < 1e-4);
        }
    });
}

#[test]
fn ols_residuals_are_orthogonal_to_features() {
    check("ols_residuals_are_orthogonal_to_features", 64, |rng| {
        let rows = rng.vec_of(8, 60, |r| (r.f64_in(-5.0, 5.0), r.f64_in(-100.0, 100.0)));
        // Least-squares optimality: X'(y − Xβ) ≈ 0.
        let mut d = RegressionData::new(2);
        for (x, y) in &rows {
            d.push(&[1.0, *x], *y);
        }
        let Some(model) = fit_ols(&d) else { return };
        let mut g0 = 0.0;
        let mut g1 = 0.0;
        for i in 0..d.n() {
            let r = d.y(i) - d.predict_at(i, model.coefficients());
            g0 += r * d.feature(i, 0);
            g1 += r * d.feature(i, 1);
        }
        let scale = rows.len() as f64 * 100.0;
        assert!(g0.abs() < 1e-6 * scale, "intercept gradient {g0}");
        assert!(g1.abs() < 1e-6 * scale, "slope gradient {g1}");
    });
}

#[test]
fn suffstats_sse_is_minimal_at_fit() {
    check("suffstats_sse_is_minimal_at_fit", 64, |rng| {
        let rows = rng.vec_of(6, 40, |r| (r.f64_in(-5.0, 5.0), r.f64_in(-50.0, 50.0)));
        let db0 = rng.f64_in(-1.0, 1.0);
        let db1 = rng.f64_in(-1.0, 1.0);
        let mut d = RegressionData::new(2);
        for (x, y) in &rows {
            d.push(&[1.0, *x], *y);
        }
        let stats = RegSuffStats::from_dataset(&d);
        let Some(model) = stats.fit() else { return };
        let fitted_sse = stats.sse_of_model(&model);
        // Any perturbed model can't do better.
        let perturbed = bellwether_linreg::LinearModel::new(vec![
            model.coefficients()[0] + db0,
            model.coefficients()[1] + db1,
        ]);
        assert!(stats.sse_of_model(&perturbed) >= fitted_sse - 1e-6);
    });
}

#[test]
fn cv_error_nonnegative_and_finite() {
    check("cv_error_nonnegative_and_finite", 64, |rng| {
        let rows = rng.vec_of(12, 80, |r| (r.f64_in(-5.0, 5.0), r.f64_in(-50.0, 50.0)));
        let k = rng.usize_in(2, 10);
        let seed = rng.next_u64() % 100;
        let mut d = RegressionData::new(2);
        for (x, y) in &rows {
            d.push(&[1.0, *x], *y);
        }
        if let Some(result) = cross_validate(&d, k, seed) {
            for e in &result.fold_rmses {
                assert!(e.is_finite() && *e >= 0.0);
            }
            let est = result.estimate();
            assert!(est.value >= 0.0);
            assert!(est.std_err >= 0.0);
        }
    });
}

#[test]
fn normal_quantile_is_monotone() {
    check("normal_quantile_is_monotone", 128, |rng| {
        let a = rng.f64_in(0.001, 0.999);
        let b = rng.f64_in(0.001, 0.999);
        if a < b {
            assert!(normal_quantile(a) <= normal_quantile(b));
        }
    });
}
