//! Property tests of the numerical core: Cholesky solves, least-squares
//! optimality, and cross-validation sanity.

use bellwether_linreg::{
    cross_validate, fit_ols, normal_quantile, solve_spd_ridged, Cholesky, Matrix,
    RegSuffStats, RegressionData,
};
use proptest::prelude::*;

/// A random SPD matrix A = M'M + I.
fn spd_strategy(n: usize) -> impl Strategy<Value = Matrix> {
    prop::collection::vec(-3.0..3.0f64, n * n).prop_map(move |data| {
        let m = Matrix::from_rows(n, n, data);
        let mut a = m.transpose().matmul(&m);
        for i in 0..n {
            a[(i, i)] += 1.0;
        }
        a
    })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    #[test]
    fn cholesky_solves_spd_systems(a in spd_strategy(4), x in prop::collection::vec(-10.0..10.0f64, 4)) {
        let b = a.matvec(&x);
        let solved = Cholesky::factor(&a).unwrap().solve(&b);
        for (s, t) in solved.iter().zip(&x) {
            prop_assert!((s - t).abs() < 1e-6, "{s} vs {t}");
        }
        // Ridged solve agrees on well-conditioned systems.
        let ridged = solve_spd_ridged(&a, &b).unwrap();
        for (s, t) in ridged.iter().zip(&x) {
            prop_assert!((s - t).abs() < 1e-4);
        }
    }

    #[test]
    fn ols_residuals_are_orthogonal_to_features(
        rows in prop::collection::vec((-5.0..5.0f64, -100.0..100.0f64), 8..60)
    ) {
        // Least-squares optimality: X'(y − Xβ) ≈ 0.
        let mut d = RegressionData::new(2);
        for (x, y) in &rows {
            d.push(&[1.0, *x], *y);
        }
        let Some(model) = fit_ols(&d) else { return Ok(()); };
        let mut g0 = 0.0;
        let mut g1 = 0.0;
        for (x, y, _) in d.iter() {
            let r = y - model.predict(x);
            g0 += r * x[0];
            g1 += r * x[1];
        }
        let scale = rows.len() as f64 * 100.0;
        prop_assert!(g0.abs() < 1e-6 * scale, "intercept gradient {g0}");
        prop_assert!(g1.abs() < 1e-6 * scale, "slope gradient {g1}");
    }

    #[test]
    fn suffstats_sse_is_minimal_at_fit(
        rows in prop::collection::vec((-5.0..5.0f64, -50.0..50.0f64), 6..40),
        db0 in -1.0..1.0f64,
        db1 in -1.0..1.0f64,
    ) {
        let mut d = RegressionData::new(2);
        for (x, y) in &rows {
            d.push(&[1.0, *x], *y);
        }
        let stats = RegSuffStats::from_dataset(&d);
        let Some(model) = stats.fit() else { return Ok(()); };
        let fitted_sse = stats.sse_of_model(&model);
        // Any perturbed model can't do better.
        let perturbed = bellwether_linreg::LinearModel::new(vec![
            model.coefficients()[0] + db0,
            model.coefficients()[1] + db1,
        ]);
        prop_assert!(stats.sse_of_model(&perturbed) >= fitted_sse - 1e-6);
    }

    #[test]
    fn cv_error_nonnegative_and_finite(
        rows in prop::collection::vec((-5.0..5.0f64, -50.0..50.0f64), 12..80),
        k in 2usize..10,
        seed in 0u64..100,
    ) {
        let mut d = RegressionData::new(2);
        for (x, y) in &rows {
            d.push(&[1.0, *x], *y);
        }
        if let Some(result) = cross_validate(&d, k, seed) {
            for e in &result.fold_rmses {
                prop_assert!(e.is_finite() && *e >= 0.0);
            }
            let est = result.estimate();
            prop_assert!(est.value >= 0.0);
            prop_assert!(est.std_err >= 0.0);
        }
    }

    #[test]
    fn normal_quantile_is_monotone(a in 0.001..0.999f64, b in 0.001..0.999f64) {
        if a < b {
            prop_assert!(normal_quantile(a) <= normal_quantile(b));
        }
    }
}
