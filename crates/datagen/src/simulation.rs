//! The §7.3 controlled simulation: item-table features drive a hidden
//! decision tree whose leaves carry planted bellwether regions and
//! linear models.
//!
//! "For an n node decision tree, we first randomly create a tree with n
//! nodes, and then randomly choose a bellwether region and a bellwether
//! model for each leaf node. … The target value of i is then generated
//! by a linear regression model, Σ β_k X_k + ε, with different degrees
//! of error ε." Varying the node count changes concept complexity
//! (Figure 10(b)); varying σ(ε) changes noise (Figure 10(a)).

use crate::rng::Gen;
use bellwether_core::items::ItemTable;
use bellwether_cube::{Dimension, Hierarchy, RegionSpace};
use bellwether_storage::{MemorySource, RegionBlock};
use bellwether_table::{Column, DataType, Schema, Table};
use std::collections::HashMap;

/// Simulation parameters.
#[derive(Debug, Clone)]
pub struct SimulationConfig {
    /// Number of items (paper: 1,000).
    pub n_items: usize,
    /// Number of binary item-table features (paper: 8).
    pub n_features: usize,
    /// Total nodes of the hidden concept tree (paper: 3–63, odd).
    pub tree_nodes: usize,
    /// Standard deviation of the target noise ε.
    pub noise: f64,
    /// Number of candidate regions.
    pub n_regions: usize,
    /// Regional features per region (paper: 4).
    pub regional_features: usize,
    /// How many of the binary features double as item hierarchies for
    /// the bellwether cube (kept ≤ 4 to bound the lattice).
    pub cube_hierarchies: usize,
    /// RNG seed.
    pub seed: u64,
}

impl SimulationConfig {
    /// Paper-shaped defaults with the given complexity/noise. All eight
    /// binary features double as item hierarchies, so the cube's lattice
    /// contains every concept leaf as a subset (the optimized algorithm
    /// keeps this tractable).
    pub fn paper(tree_nodes: usize, noise: f64, seed: u64) -> Self {
        SimulationConfig {
            n_items: 1000,
            n_features: 8,
            tree_nodes,
            noise,
            n_regions: 24,
            regional_features: 4,
            cube_hierarchies: 8,
            seed,
        }
    }
}

/// The hidden concept: a decision tree over binary item features.
#[derive(Debug)]
struct ConceptNode {
    /// Feature tested; leaves use `usize::MAX`.
    feature: usize,
    /// Children for feature = 0 / 1 (empty at leaves).
    children: Vec<usize>,
    /// Leaf payload: (bellwether region index, β of length 1+k).
    leaf: Option<(usize, Vec<f64>)>,
}

/// A generated simulation dataset.
pub struct Simulation {
    /// Entire training data (one block per region).
    pub source: MemorySource,
    /// The candidate-region space (flat hierarchy).
    pub region_space: RegionSpace,
    /// Item table with the binary features (numeric 0/1 for tree
    /// splits, categorical "0"/"1" for the cube hierarchies).
    pub items: ItemTable,
    /// Item space over the first `cube_hierarchies` features.
    pub item_space: RegionSpace,
    /// Per-item leaf coordinates in the item space.
    pub item_coords: HashMap<i64, Vec<u32>>,
    /// Per-item targets.
    pub targets: HashMap<i64, f64>,
    /// Planted leaf count of the concept tree (for diagnostics).
    pub concept_leaves: usize,
}

/// Grow a random concept tree with exactly `nodes` nodes (odd ≥ 1) by
/// splitting random leaves on random unused-on-path features.
fn grow_concept(
    cfg: &SimulationConfig,
    rng: &mut Gen,
) -> (Vec<ConceptNode>, Vec<usize>) {
    assert!(cfg.tree_nodes % 2 == 1, "binary trees have odd node counts");
    let mut nodes = vec![ConceptNode {
        feature: usize::MAX,
        children: Vec::new(),
        leaf: None,
    }];
    let mut path_features: Vec<Vec<usize>> = vec![Vec::new()];
    let mut leaves: Vec<usize> = vec![0];
    while nodes.len() < cfg.tree_nodes {
        // pick a splittable leaf (one with an unused feature left)
        let splittable: Vec<usize> = leaves
            .iter()
            .copied()
            .filter(|&l| path_features[l].len() < cfg.n_features)
            .collect();
        let Some(&leaf) = splittable.get(rng.below(splittable.len().max(1))) else {
            break;
        };
        let used = &path_features[leaf];
        let free: Vec<usize> =
            (0..cfg.n_features).filter(|f| !used.contains(f)).collect();
        let feature = free[rng.below(free.len())];
        let mut children = Vec::with_capacity(2);
        for _ in 0..2 {
            let id = nodes.len();
            nodes.push(ConceptNode {
                feature: usize::MAX,
                children: Vec::new(),
                leaf: None,
            });
            let mut pf = path_features[leaf].clone();
            pf.push(feature);
            path_features.push(pf);
            children.push(id);
        }
        nodes[leaf].feature = feature;
        nodes[leaf].children = children.clone();
        leaves.retain(|&l| l != leaf);
        leaves.extend(children);
    }
    (nodes, leaves)
}

/// Route an item's binary features down the concept tree to its leaf.
fn concept_leaf(nodes: &[ConceptNode], features: &[u8]) -> usize {
    let mut at = 0;
    while nodes[at].leaf.is_none() && !nodes[at].children.is_empty() {
        let f = nodes[at].feature;
        at = nodes[at].children[features[f] as usize];
    }
    at
}

/// Generate the simulation dataset.
pub fn generate_simulation(cfg: &SimulationConfig) -> Simulation {
    let mut rng = Gen::new(cfg.seed);
    let k = cfg.regional_features;

    // Concept tree with leaf payloads.
    let (mut concept, leaves) = grow_concept(cfg, &mut rng);
    for &leaf in &leaves {
        let region = rng.below(cfg.n_regions);
        let beta: Vec<f64> = (0..=k).map(|_| rng.uniform(-5.0, 5.0)).collect();
        concept[leaf].leaf = Some((region, beta));
    }

    // Items and their binary features.
    let feats: Vec<Vec<u8>> = (0..cfg.n_items)
        .map(|_| (0..cfg.n_features).map(|_| rng.flip(0.5) as u8).collect())
        .collect();

    // Regional features: x[item][region][k] ~ U(0, 10).
    let x: Vec<Vec<Vec<f64>>> = (0..cfg.n_items)
        .map(|_| {
            (0..cfg.n_regions)
                .map(|_| (0..k).map(|_| rng.uniform(0.0, 10.0)).collect())
                .collect()
        })
        .collect();

    // Targets from each item's leaf model over its leaf's region.
    let mut targets = HashMap::with_capacity(cfg.n_items);
    for i in 0..cfg.n_items {
        let leaf = concept_leaf(&concept, &feats[i]);
        let (region, beta) = concept[leaf].leaf.as_ref().expect("leaf payload");
        let mut y = beta[0];
        for (j, &b) in beta[1..].iter().enumerate() {
            y += b * x[i][*region][j];
        }
        y += rng.normal(0.0, cfg.noise);
        targets.insert(i as i64, y);
    }

    // Entire training data: one block per region, layout [1, x1..xk].
    let region_space = RegionSpace::new(vec![Dimension::Hierarchy(Hierarchy::flat(
        "Region",
        "All",
        &(0..cfg.n_regions)
            .map(|r| format!("r{r}"))
            .collect::<Vec<_>>()
            .iter()
            .map(String::as_str)
            .collect::<Vec<_>>(),
    ))]);
    let blocks: Vec<RegionBlock> = (0..cfg.n_regions)
        .map(|r| {
            // leaf node ids start at 1 (0 is the root "All")
            let mut b = RegionBlock::new(vec![(r + 1) as u32], (1 + k) as u32);
            let mut row = Vec::with_capacity(1 + k);
            for i in 0..cfg.n_items {
                row.clear();
                row.push(1.0);
                row.extend_from_slice(&x[i][r]);
                b.push(i as i64, &row, targets[&(i as i64)]);
            }
            b
        })
        .collect();
    let source = MemorySource::new(blocks);

    // Item table: numeric 0/1 plus categorical strings per feature.
    let mut fields = vec![("id", DataType::Int)];
    let num_names: Vec<String> = (0..cfg.n_features).map(|f| format!("f{f}")).collect();
    let cat_names: Vec<String> = (0..cfg.n_features).map(|f| format!("c{f}")).collect();
    for n in &num_names {
        fields.push((n.as_str(), DataType::Float));
    }
    for n in &cat_names {
        fields.push((n.as_str(), DataType::Str));
    }
    let schema = Schema::from_pairs(&fields).expect("item schema");
    let mut columns: Vec<Column> =
        vec![Column::from_ints((0..cfg.n_items as i64).collect())];
    #[allow(clippy::needless_range_loop)] // f indexes per-item inner vectors
    for f in 0..cfg.n_features {
        columns.push(Column::from_floats(
            (0..cfg.n_items).map(|i| feats[i][f] as f64).collect(),
        ));
    }
    #[allow(clippy::needless_range_loop)]
    for f in 0..cfg.n_features {
        columns.push(Column::from_strs(
            &(0..cfg.n_items)
                .map(|i| if feats[i][f] == 1 { "1" } else { "0" })
                .collect::<Vec<_>>(),
        ));
    }
    let table = Table::new(schema, columns).expect("item table");
    let numeric_refs: Vec<&str> = num_names.iter().map(String::as_str).collect();
    let cat_refs: Vec<&str> = cat_names.iter().map(String::as_str).collect();
    let items =
        ItemTable::from_table(&table, "id", &numeric_refs, &cat_refs).expect("items");

    // Item space over the first `cube_hierarchies` binary features.
    let h_count = cfg.cube_hierarchies.min(cfg.n_features);
    let hierarchies: Vec<Hierarchy> = (0..h_count)
        .map(|f| Hierarchy::flat(format!("c{f}"), &format!("any{f}"), &["0", "1"]))
        .collect();
    let attr_refs: Vec<&str> = cat_names[..h_count]
        .iter()
        .map(String::as_str)
        .collect();
    let item_coords = items
        .leaf_coords(&hierarchies, &attr_refs)
        .expect("item coords");
    let item_space = RegionSpace::new(
        hierarchies.into_iter().map(Dimension::Hierarchy).collect(),
    );

    Simulation {
        source,
        region_space,
        items,
        item_space,
        item_coords,
        targets,
        concept_leaves: leaves.len(),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use bellwether_storage::TrainingSource;

    fn small() -> SimulationConfig {
        SimulationConfig {
            n_items: 80,
            n_features: 6,
            tree_nodes: 7,
            noise: 0.1,
            n_regions: 6,
            regional_features: 3,
            cube_hierarchies: 3,
            seed: 42,
        }
    }

    #[test]
    fn shapes() {
        let s = generate_simulation(&small());
        assert_eq!(s.source.num_regions(), 6);
        assert_eq!(s.source.feature_arity(), 4);
        assert_eq!(s.targets.len(), 80);
        assert_eq!(s.item_coords.len(), 80);
        assert_eq!(s.item_space.arity(), 3);
        // 7-node binary tree has 4 leaves
        assert_eq!(s.concept_leaves, 4);
        let block = s.source.read_region(0).unwrap();
        assert_eq!(block.n(), 80);
    }

    #[test]
    fn deterministic() {
        let a = generate_simulation(&small());
        let b = generate_simulation(&small());
        assert_eq!(a.targets, b.targets);
        assert_eq!(
            a.source.read_region(2).unwrap(),
            b.source.read_region(2).unwrap()
        );
    }

    #[test]
    fn noise_increases_target_scatter() {
        let quiet = generate_simulation(&SimulationConfig {
            noise: 0.0,
            ..small()
        });
        let loud = generate_simulation(&SimulationConfig {
            noise: 0.0,
            seed: 42,
            ..small()
        });
        // Same seed, same noise → identical.
        assert_eq!(quiet.targets, loud.targets);
    }

    #[test]
    fn node_count_one_is_a_single_leaf() {
        let s = generate_simulation(&SimulationConfig {
            tree_nodes: 1,
            ..small()
        });
        assert_eq!(s.concept_leaves, 1);
    }

    #[test]
    #[should_panic(expected = "odd node counts")]
    fn even_node_counts_rejected() {
        generate_simulation(&SimulationConfig {
            tree_nodes: 4,
            ..small()
        });
    }

    #[test]
    fn planted_structure_is_learnable() {
        // With zero noise, the region of some concept leaf must fit its
        // items perfectly.
        use bellwether_core::problem::{BellwetherConfig, ErrorMeasure};
        use bellwether_core::tree::subset_bellwether;
        let s = generate_simulation(&SimulationConfig {
            noise: 0.0,
            tree_nodes: 3,
            n_items: 200,
            ..small()
        });
        // Split items by the concept root feature's value — approximate
        // the two concept leaves by item feature 0..n splits and check
        // at least one side is perfectly modelled somewhere.
        let cfg = BellwetherConfig::builder(1.0)
            .min_examples(5)
            .error_measure(ErrorMeasure::TrainingSet)
            .build()
            .unwrap();
        let ids: std::collections::HashSet<i64> = (0..200).collect();
        let info = subset_bellwether(&s.source, &s.region_space, &ids, &cfg)
            .unwrap()
            .unwrap();
        // The full mixture is generally NOT perfect (two leaves).
        assert!(info.error >= 0.0);
    }
}
