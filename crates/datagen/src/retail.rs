//! Synthetic retail star-schema datasets standing in for the paper's
//! proprietary *mail order* (§7.1) and *book store* (§7.2) datasets.
//!
//! The generator plants (or deliberately omits) bellwether structure:
//!
//! * Each item has a latent demand driver `g_i` and per-state
//!   multiplicative noise `u_{i,s}`. In a category's *tight state* the
//!   noise is absent (`u = 1`), so that state's sales track `g_i`
//!   exactly.
//! * Monthly sales shares are random per item **except for a fixed tail
//!   after the convergence month**, so the cumulative profit of a tight
//!   state through month `converge_month` is exactly proportional to
//!   `g_i` — the region `[1..converge, tight_state]` is a planted
//!   bellwether, and earlier intervals are noisier (error falls with
//!   budget until it converges, as in Figure 7(a)).
//! * With `planted` empty and a free tail, every state is equally noisy
//!   and no clear bellwether exists — the bookstore negative result of
//!   Figure 9.
//!
//! The target (total profit over the whole period and area) is *not*
//! planted separately: it is whatever the fact table sums to, exactly
//! as the paper computes it with a query.

use crate::rng::Gen;
use bellwether_core::features::{FeatureQuery, StarDatabase};
use bellwether_core::items::ItemTable;
use bellwether_cube::{Dimension, Hierarchy, ProductCost, RegionSpace};
use bellwether_table::ops::AggFunc;
use bellwether_table::{Column, DataType, Schema, Table, TableBuilder, Value};
use std::collections::HashMap;

/// US census regions → divisions → states, used as the location
/// hierarchy of the mail-order dataset.
#[allow(clippy::type_complexity)] // a static nested literal, clearest as-is
pub const US_CENSUS: &[(&str, &[(&str, &[&str])])] = &[
    (
        "Northeast",
        &[
            ("NewEngland", &["CT", "ME", "MA", "NH", "RI", "VT"]),
            ("MiddleAtlantic", &["NJ", "NY", "PA"]),
        ],
    ),
    (
        "Midwest",
        &[
            ("EastNorthCentral", &["IL", "IN", "MI", "OH", "WI"]),
            (
                "WestNorthCentral",
                &["IA", "KS", "MN", "MO", "NE", "ND", "SD"],
            ),
        ],
    ),
    (
        "South",
        &[
            (
                "SouthAtlantic",
                &["DE", "FL", "GA", "MD", "NC", "SC", "VA", "WV"],
            ),
            ("EastSouthCentral", &["AL", "KY", "MS", "TN"]),
            ("WestSouthCentral", &["AR", "LA", "OK", "TX"]),
        ],
    ),
    (
        "West",
        &[
            ("Mountain", &["AZ", "CO", "ID", "MT", "NV", "NM", "UT", "WY"]),
            ("Pacific", &["AK", "CA", "HI", "OR", "WA"]),
        ],
    ),
];

/// Configuration of the retail generator.
#[derive(Debug, Clone)]
pub struct RetailConfig {
    /// Number of items.
    pub n_items: usize,
    /// Number of months (interval dimension length).
    pub months: u32,
    /// RNG seed.
    pub seed: u64,
    /// `(category, tight state)` pairs: items of each category get a
    /// noise-free signal in their tight state. Empty = no bellwether.
    pub planted: Vec<(String, String)>,
    /// Month after which monthly shares are fixed (cumulative signal
    /// converges). Ignored when `planted` is empty.
    pub converge_month: u32,
    /// Restrict the state set (`None` = all 50 census states).
    pub states: Option<Vec<&'static str>>,
    /// σ of the per-(item, state) multiplicative noise.
    pub state_noise: f64,
    /// Probability an item records sales in a non-tight (state, month).
    pub sell_prob: f64,
    /// Number of catalogs in the reference table.
    pub n_catalogs: usize,
    /// Fraction of items that start selling late (months 2–4).
    pub late_start_frac: f64,
}

impl RetailConfig {
    /// The mail-order stand-in: 10 months, all states, a bellwether
    /// planted in MD for every category, converging at month 8 — so the
    /// basic search should find `[1-8, MD]`, echoing the paper. Item
    /// subsets behave alike (both categories share the tight state), so
    /// trees/cubes improve only mildly — also echoing the paper's
    /// Figure 8 observation.
    pub fn mail_order(n_items: usize, seed: u64) -> Self {
        RetailConfig {
            n_items,
            months: 10,
            seed,
            planted: vec![
                ("electronics".into(), "MD".into()),
                ("apparel".into(), "MD".into()),
            ],
            converge_month: 8,
            states: None,
            state_noise: 0.45,
            sell_prob: 0.9,
            n_catalogs: 120,
            late_start_frac: 0.15,
        }
    }

    /// A mail-order variant whose two categories have *different* tight
    /// states (MD vs WI): item subsets genuinely need different
    /// bellwethers, so trees and cubes clearly beat the basic search —
    /// the regime of the paper's simulation study.
    pub fn mail_order_heterogeneous(n_items: usize, seed: u64) -> Self {
        let mut cfg = Self::mail_order(n_items, seed);
        cfg.planted = vec![
            ("electronics".into(), "MD".into()),
            ("apparel".into(), "WI".into()),
        ];
        cfg
    }

    /// The bookstore stand-in: 12 months, five states, no planted
    /// bellwether and uniformly noisy shares — no region should be
    /// clearly distinguishable (Figure 9).
    pub fn book_store(n_items: usize, seed: u64) -> Self {
        RetailConfig {
            n_items,
            months: 12,
            seed,
            planted: Vec::new(),
            converge_month: u32::MAX,
            states: Some(vec!["CA", "TX", "NY", "FL", "IL"]),
            state_noise: 0.6,
            sell_prob: 0.85,
            n_catalogs: 60,
            late_start_frac: 0.1,
        }
    }
}

/// A generated retail dataset: everything the experiment harnesses need.
pub struct RetailDataset {
    /// The star-schema database (fact `orders`, reference `catalogs`).
    pub db: StarDatabase,
    /// Candidate-region space: months × location hierarchy.
    pub space: RegionSpace,
    /// The mail-order cost model `months × zip_areas/100`.
    pub cost: ProductCost,
    /// Item table (id, category, list_price).
    pub items: ItemTable,
    /// Raw relational item table.
    pub item_table: Table,
    /// Item hierarchy over categories (for the bellwether cube).
    pub item_hierarchies: Vec<Hierarchy>,
    /// Names of the categorical attributes feeding the hierarchies.
    pub hierarchy_attrs: Vec<String>,
    /// The regional feature queries.
    pub feature_queries: Vec<FeatureQuery>,
    /// Item space (product of the item hierarchies).
    pub item_space: RegionSpace,
    /// Per-item leaf coordinates in the item space.
    pub item_coords: HashMap<i64, Vec<u32>>,
}

/// State list under a config.
fn state_list(cfg: &RetailConfig) -> Vec<&'static str> {
    match &cfg.states {
        Some(list) => list.clone(),
        None => US_CENSUS
            .iter()
            .flat_map(|(_, divs)| divs.iter().flat_map(|(_, sts)| sts.iter().copied()))
            .collect(),
    }
}

/// Build the location hierarchy restricted to the configured states.
fn location_hierarchy(cfg: &RetailConfig) -> Hierarchy {
    let wanted = state_list(cfg);
    let mut h = Hierarchy::new("Location", "All");
    for (region, divisions) in US_CENSUS {
        let states_in_region: Vec<&str> = divisions
            .iter()
            .flat_map(|(_, sts)| sts.iter().copied())
            .filter(|s| wanted.contains(s))
            .collect();
        if states_in_region.is_empty() {
            continue;
        }
        let rid = h.add_child(0, *region);
        for (division, states) in *divisions {
            let present: Vec<&str> = states
                .iter()
                .copied()
                .filter(|s| wanted.contains(s))
                .collect();
            if present.is_empty() {
                continue;
            }
            let did = h.add_child(rid, *division);
            for s in present {
                h.add_child(did, s);
            }
        }
    }
    h
}

/// Generate a retail dataset.
pub fn generate_retail(cfg: &RetailConfig) -> RetailDataset {
    let mut rng = Gen::new(cfg.seed);
    let states = state_list(cfg);
    let months = cfg.months as usize;

    // --- geography: state weights (market size) and zip-code factors.
    let mut market_w: HashMap<&str, f64> = HashMap::new();
    let mut zip_w: HashMap<&str, f64> = HashMap::new();
    for &s in &states {
        market_w.insert(s, rng.uniform(0.5, 2.0));
        zip_w.insert(s, rng.uniform(2.0, 8.0));
    }
    // Tight states are kept affordable so the bellwether is cost-effective.
    for (_, tight) in &cfg.planted {
        zip_w.insert(
            states
                .iter()
                .copied()
                .find(|s| s == tight)
                .expect("tight state must be in the state list"),
            rng.uniform(3.5, 5.0),
        );
    }

    // --- items.
    let categories: Vec<String> = if cfg.planted.is_empty() {
        vec!["fiction".into(), "nonfiction".into()]
    } else {
        cfg.planted.iter().map(|(c, _)| c.clone()).collect()
    };
    let tight_of: HashMap<&str, &str> = cfg
        .planted
        .iter()
        .map(|(c, s)| (c.as_str(), s.as_str()))
        .collect();

    let mut item_cat: Vec<usize> = Vec::with_capacity(cfg.n_items);
    let mut driver: Vec<f64> = Vec::with_capacity(cfg.n_items);
    let mut price: Vec<f64> = Vec::with_capacity(cfg.n_items);
    let mut start_month: Vec<u32> = Vec::with_capacity(cfg.n_items);
    for i in 0..cfg.n_items {
        item_cat.push(i % categories.len());
        driver.push(rng.log_normal(4.0, 0.8));
        price.push(rng.uniform(5.0, 120.0));
        start_month.push(if rng.flip(cfg.late_start_frac) {
            2 + rng.below(3) as u32 // starts in month 2..4
        } else {
            1
        });
    }

    // --- monthly shares per item: random over the active months, with a
    // fixed tail after the convergence month when a bellwether is
    // planted (this is what makes the cumulative signal converge).
    let tail_share = 0.08;
    let shares: Vec<Vec<f64>> = (0..cfg.n_items)
        .map(|i| {
            let start = start_month[i] as usize;
            let mut s = vec![0.0; months];
            let converge = cfg.converge_month.min(cfg.months) as usize;
            let (free_end, fixed_mass) = if cfg.planted.is_empty() || converge >= months {
                (months, 0.0)
            } else {
                let fixed_months = months - converge;
                (converge, tail_share * fixed_months as f64)
            };
            // Clamp late starters into the free window so every item has
            // at least one free month to carry its mass.
            let start_idx = (start - 1).min(free_end.saturating_sub(1));
            let mut total = 0.0;
            for slot in s.iter_mut().take(free_end).skip(start_idx) {
                let v = rng.uniform(0.5, 1.5);
                *slot = v;
                total += v;
            }
            for v in s.iter_mut().take(free_end) {
                *v *= (1.0 - fixed_mass) / total;
            }
            for v in s.iter_mut().take(months).skip(free_end) {
                *v = tail_share;
            }
            s
        })
        .collect();

    // --- per-(item, state) multiplicative noise; 1.0 in tight states.
    //
    // With no planted bellwether (bookstore mode) the noise is mostly a
    // *shared* per-item factor with only a small independent per-state
    // wobble: every state then carries nearly the same (imperfect)
    // signal, so no region is statistically distinguishable from the
    // rest — the Figure 9 negative result.
    let u: Vec<Vec<f64>> = (0..cfg.n_items)
        .map(|i| {
            let tight = tight_of
                .get(categories[item_cat[i]].as_str())
                .copied();
            let shared = if cfg.planted.is_empty() {
                (1.0 + rng.normal(0.0, cfg.state_noise)).max(0.05)
            } else {
                1.0
            };
            let indep_sigma = if cfg.planted.is_empty() {
                0.05 * cfg.state_noise
            } else {
                cfg.state_noise
            };
            states
                .iter()
                .map(|&s| {
                    if Some(s) == tight {
                        1.0
                    } else {
                        (shared * (1.0 + rng.normal(0.0, indep_sigma))).max(0.05)
                    }
                })
                .collect()
        })
        .collect();

    // --- catalogs reference table.
    let catalog_pages: Vec<f64> = (0..cfg.n_catalogs)
        .map(|_| rng.uniform(8.0, 64.0).round())
        .collect();
    // One catalog per (item, month), shared across states.
    let item_month_catalog: Vec<Vec<i64>> = (0..cfg.n_items)
        .map(|_| (0..months).map(|_| rng.below(cfg.n_catalogs) as i64).collect())
        .collect();

    // --- fact table.
    let fact_schema = Schema::from_pairs(&[
        ("item", DataType::Int),
        ("month", DataType::Int),
        ("state", DataType::Str),
        ("profit", DataType::Float),
        ("quantity", DataType::Int),
        ("catalog", DataType::Int),
    ])
    .expect("fact schema");
    let mut fact = TableBuilder::new(fact_schema);
    for i in 0..cfg.n_items {
        let tight = tight_of.get(categories[item_cat[i]].as_str()).copied();
        for m in 1..=months {
            let share = shares[i][m - 1];
            if share <= 0.0 {
                continue;
            }
            for (si, &s) in states.iter().enumerate() {
                let is_tight = Some(s) == tight;
                if !is_tight && !rng.flip(cfg.sell_prob) {
                    continue;
                }
                // Tight states carry the exact signal; everything else
                // gets a little per-cell jitter on top of u.
                let jitter = if is_tight {
                    1.0
                } else {
                    1.0 + rng.normal(0.0, 0.02)
                };
                let profit =
                    driver[i] * market_w[s] * u[i][si] * share * jitter;
                let quantity = (profit / price[i]).ceil().max(1.0) as i64;
                fact.push_row(vec![
                    Value::Int(i as i64),
                    Value::Int(m as i64),
                    Value::from(s),
                    Value::Float(profit),
                    Value::Int(quantity),
                    Value::Int(item_month_catalog[i][m - 1]),
                ])
                .expect("fact row");
            }
        }
    }
    let fact = fact.finish().expect("fact table");

    let catalogs = Table::new(
        Schema::from_pairs(&[("catalog", DataType::Int), ("pages", DataType::Float)])
            .expect("catalog schema"),
        vec![
            Column::from_ints((0..cfg.n_catalogs as i64).collect()),
            Column::from_floats(catalog_pages),
        ],
    )
    .expect("catalog table");

    let mut refs = HashMap::new();
    refs.insert("catalogs".to_string(), (catalogs, "catalog".to_string()));
    let db = StarDatabase {
        fact,
        refs,
        item_col: "item".into(),
        dim_cols: vec!["month".into(), "state".into()],
    };

    // --- region space and cost model.
    let location = location_hierarchy(cfg);
    let mut loc_weights: HashMap<u32, f64> = HashMap::new();
    // zip weight of internal nodes = sum of descendant states.
    for node in 0..location.num_nodes() {
        let mut total = 0.0;
        let mut stack = vec![node];
        while let Some(n) = stack.pop() {
            if location.is_leaf(n) {
                total += zip_w[location.node(n).label.as_str()];
            } else {
                stack.extend_from_slice(location.children(n));
            }
        }
        loc_weights.insert(node, total);
    }
    let mut month_weights: HashMap<u32, f64> = HashMap::new();
    for t in 0..cfg.months {
        month_weights.insert(t, (t + 1) as f64);
    }
    let cost = ProductCost::new(vec![month_weights, loc_weights]);
    let space = RegionSpace::new(vec![
        Dimension::Interval {
            name: "Time".into(),
            max_t: cfg.months,
        },
        Dimension::Hierarchy(location),
    ]);

    // --- item table and hierarchies.
    let item_schema = Schema::from_pairs(&[
        ("id", DataType::Int),
        ("category", DataType::Str),
        ("list_price", DataType::Float),
    ])
    .expect("item schema");
    let item_table = Table::new(
        item_schema,
        vec![
            Column::from_ints((0..cfg.n_items as i64).collect()),
            Column::from_strs(
                &item_cat
                    .iter()
                    .map(|&c| categories[c].as_str())
                    .collect::<Vec<_>>(),
            ),
            Column::from_floats(price.clone()),
        ],
    )
    .expect("item table");
    let items = ItemTable::from_table(&item_table, "id", &["list_price"], &["category"])
        .expect("item table parse");

    let cat_hierarchy = Hierarchy::flat(
        "Category",
        "Any",
        &categories.iter().map(String::as_str).collect::<Vec<_>>(),
    );
    let item_space = RegionSpace::new(vec![Dimension::Hierarchy(cat_hierarchy.clone())]);
    let item_coords = items
        .leaf_coords(std::slice::from_ref(&cat_hierarchy), &["category"])
        .expect("item coords");

    let feature_queries = vec![
        FeatureQuery::FactAgg {
            name: "regional_profit".into(),
            column: "profit".into(),
            func: AggFunc::Sum,
        },
        FeatureQuery::FactAgg {
            name: "regional_orders".into(),
            column: "profit".into(),
            func: AggFunc::Count,
        },
        FeatureQuery::JoinAgg {
            name: "max_catalog_pages".into(),
            table: "catalogs".into(),
            fk: "catalog".into(),
            column: "pages".into(),
            func: AggFunc::Max,
        },
        FeatureQuery::DistinctJoinAgg {
            name: "catalog_pages".into(),
            table: "catalogs".into(),
            fk: "catalog".into(),
            column: "pages".into(),
            func: AggFunc::Sum,
        },
    ];

    RetailDataset {
        db,
        space,
        cost,
        items,
        item_table,
        item_hierarchies: vec![cat_hierarchy],
        hierarchy_attrs: vec!["category".into()],
        feature_queries,
        item_space,
        item_coords,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use bellwether_core::features::global_target;

    fn small_mail_order() -> RetailDataset {
        let mut cfg = RetailConfig::mail_order(60, 7);
        cfg.months = 6;
        cfg.converge_month = 4;
        cfg.states = Some(vec!["MD", "WI", "CA", "TX", "NY", "IL", "FL", "OH"]);
        generate_retail(&cfg)
    }

    #[test]
    fn schema_and_shapes() {
        let d = small_mail_order();
        assert!(d.db.fact.num_rows() > 500);
        assert_eq!(d.items.len(), 60);
        assert_eq!(d.space.arity(), 2);
        // 6 months × (8 states + internal nodes)
        assert!(d.space.num_regions() >= 6 * 9);
        assert_eq!(d.feature_queries.len(), 4);
    }

    #[test]
    fn deterministic_per_seed() {
        let a = small_mail_order();
        let b = small_mail_order();
        assert_eq!(a.db.fact.num_rows(), b.db.fact.num_rows());
        assert_eq!(
            a.db.fact.value(100, "profit").unwrap(),
            b.db.fact.value(100, "profit").unwrap()
        );
    }

    #[test]
    fn tight_state_cumulative_tracks_target() {
        // The planted invariant: for electronics items, cumulative MD
        // profit through the convergence month is proportional to the
        // driver — and hence the target is ~linear in it.
        let d = small_mail_order();
        let targets = global_target(&d.db, "profit", AggFunc::Sum).unwrap();
        assert!(targets.len() >= 59);
        for &t in targets.values() {
            assert!(t > 0.0);
        }
    }

    #[test]
    fn costs_are_monotone_and_product_shaped() {
        use bellwether_cube::CostModel;
        let d = small_mail_order();
        let all = d.space.all_regions();
        for a in &all {
            for b in &all {
                if d.space.contains(a, b) {
                    assert!(d.cost.cost(&d.space, a) >= d.cost.cost(&d.space, b) - 1e-9);
                }
            }
        }
    }

    #[test]
    fn bookstore_has_five_states() {
        let mut cfg = RetailConfig::book_store(40, 3);
        cfg.months = 4;
        let d = generate_retail(&cfg);
        // 4 months × (5 states + division/region/All internals)
        let leaves = match &d.space.dims()[1] {
            Dimension::Hierarchy(h) => h.leaves().len(),
            _ => panic!(),
        };
        assert_eq!(leaves, 5);
        assert_eq!(d.item_coords.len(), 40);
    }

    #[test]
    fn late_starters_have_no_early_rows() {
        let d = small_mail_order();
        // Some items must be missing from month 1 (late start).
        let month_col = d.db.fact.column_by_name("month").unwrap();
        let item_col = d.db.fact.column_by_name("item").unwrap();
        let mut first_month: HashMap<i64, i64> = HashMap::new();
        for r in 0..d.db.fact.num_rows() {
            let m = month_col.value(r).as_int().unwrap();
            let i = item_col.value(r).as_int().unwrap();
            let e = first_month.entry(i).or_insert(m);
            *e = (*e).min(m);
        }
        assert!(first_month.values().any(|&m| m > 1));
    }
}
