//! # bellwether-datagen
//!
//! Deterministic synthetic workload generators standing in for the
//! resources the paper used but we cannot obtain:
//!
//! * [`retail`] — star-schema sales generators replacing the
//!   proprietary **mail order** (planted bellwether, Fig. 7/8) and
//!   **book store** (no clear bellwether, Fig. 9) datasets;
//! * [`simulation`] — the §7.3 controlled simulation (hidden decision
//!   tree over binary item features with per-leaf bellwether regions,
//!   Fig. 10);
//! * [`scale`] — the §7.4 scalability workload (2,500 items × as many
//!   regions as the experiment needs, streamed to disk, Fig. 11/12).
//!
//! All generators take explicit seeds and regenerate byte-identical
//! datasets, so every number in EXPERIMENTS.md is reproducible.

#![warn(missing_docs)]

pub mod retail;
pub mod rng;
pub mod scale;
pub mod simulation;
pub mod stream;

pub use retail::{generate_retail, RetailConfig, RetailDataset, US_CENSUS};
pub use rng::Gen;
pub use scale::{build_scale_workload, ScaleConfig, ScaleWorkload};
pub use simulation::{generate_simulation, Simulation, SimulationConfig};
pub use stream::{build_stream_workload, StreamConfig, StreamWorkload};
