//! The §7.4 scalability generator.
//!
//! "The item table contains 2,500 randomly generated items, and has
//! three item hierarchies and several numeric attributes. … The fact
//! table has two tree-structured hierarchical dimensions. … We generate
//! one transaction for each item in each region. As a result, each
//! region has 2,500 transactions, and the size of the fact table is the
//! total number of regions times 2,500. The target values are generated
//! based on four predefined bellwether regions with small errors, and
//! regional features are randomly generated."
//!
//! The entire training data is emitted region by region, so multi-
//! million-example datasets stream straight to a
//! [`bellwether_storage::TrainingWriter`] without living in memory.

use crate::rng::Gen;
use bellwether_core::items::ItemTable;
use bellwether_cube::{Dimension, Hierarchy, RegionSpace};
use bellwether_storage::{
    even_shard_plan, MemorySource, RegionBlock, ShardManifest, ShardedWriter, TrainingWriter,
};
use bellwether_table::{Column, DataType, Schema, Table};
use std::collections::HashMap;
use std::path::Path;

/// Scalability-workload parameters.
#[derive(Debug, Clone)]
pub struct ScaleConfig {
    /// Items (paper: 2,500).
    pub n_items: usize,
    /// Leaves of each of the two fact-table dimensions; the region
    /// count is `(leaves+1)²` (flat hierarchies), so this controls the
    /// entire-training-data size: `regions × n_items` examples.
    pub fact_dim_leaves: [usize; 2],
    /// Leaves of each of the three item hierarchies.
    pub item_hierarchy_leaves: [usize; 3],
    /// Extra numeric item attributes (the RF tree's split features).
    pub n_numeric_attrs: usize,
    /// Regional features per example (paper-style: 4).
    pub regional_features: usize,
    /// Noise of the planted bellwether regions.
    pub bellwether_noise: f64,
    /// RNG seed.
    pub seed: u64,
}

impl ScaleConfig {
    /// Paper-shaped defaults sized to roughly `target_examples` total
    /// training examples.
    pub fn sized_for(target_examples: usize, seed: u64) -> Self {
        let n_items = 2500;
        let regions = target_examples.div_ceil(n_items).max(4);
        // (l+1)² ≈ regions
        let l = ((regions as f64).sqrt().ceil() as usize).max(2) - 1;
        ScaleConfig {
            n_items,
            fact_dim_leaves: [l, l],
            item_hierarchy_leaves: [4, 4, 4],
            n_numeric_attrs: 4,
            regional_features: 4,
            bellwether_noise: 0.05,
            seed,
        }
    }
}

/// Static description of the generated workload (no blocks yet).
pub struct ScaleWorkload {
    /// The candidate-region space.
    pub region_space: RegionSpace,
    /// All regions in scan order.
    pub regions: Vec<bellwether_cube::RegionId>,
    /// The item table.
    pub items: ItemTable,
    /// Item space over the three hierarchies.
    pub item_space: RegionSpace,
    /// Per-item leaf coordinates.
    pub item_coords: HashMap<i64, Vec<u32>>,
    /// Per-item targets.
    pub targets: Vec<f64>,
    /// Scan indices of the four planted bellwether regions.
    pub planted_regions: Vec<usize>,
    cfg: ScaleConfig,
    /// β of the planted linear relation (length 1 + k).
    beta: Vec<f64>,
}

fn flat_hierarchy(name: &str, prefix: &str, leaves: usize) -> Hierarchy {
    let labels: Vec<String> = (0..leaves).map(|i| format!("{prefix}{i}")).collect();
    Hierarchy::flat(
        name,
        &format!("{prefix}_all"),
        &labels.iter().map(String::as_str).collect::<Vec<_>>(),
    )
}

/// Build the static workload (items, spaces, targets, planted regions).
pub fn build_scale_workload(cfg: &ScaleConfig) -> ScaleWorkload {
    let mut rng = Gen::new(cfg.seed);

    let region_space = RegionSpace::new(vec![
        Dimension::Hierarchy(flat_hierarchy("D1", "a", cfg.fact_dim_leaves[0])),
        Dimension::Hierarchy(flat_hierarchy("D2", "b", cfg.fact_dim_leaves[1])),
    ]);
    let regions = region_space.all_regions();

    // Four planted bellwether regions, spread across the scan order.
    let planted_regions: Vec<usize> = (0..4)
        .map(|i| (regions.len() * (2 * i + 1)) / 8)
        .collect();

    // Items: hierarchies + numeric attributes.
    let hier_labels: Vec<Vec<String>> = cfg
        .item_hierarchy_leaves
        .iter()
        .map(|&l| (0..l).map(|i| format!("v{i}")).collect())
        .collect();
    let mut columns: Vec<Column> =
        vec![Column::from_ints((0..cfg.n_items as i64).collect())];
    let mut fields: Vec<(String, DataType)> = vec![("id".into(), DataType::Int)];
    let mut cat_values: Vec<Vec<String>> = Vec::new();
    for (h, labels) in hier_labels.iter().enumerate() {
        let vals: Vec<String> = (0..cfg.n_items)
            .map(|_| labels[rng.below(labels.len())].clone())
            .collect();
        fields.push((format!("h{h}"), DataType::Str));
        columns.push(Column::from_strs(
            &vals.iter().map(String::as_str).collect::<Vec<_>>(),
        ));
        cat_values.push(vals);
    }
    for a in 0..cfg.n_numeric_attrs {
        fields.push((format!("n{a}"), DataType::Float));
        columns.push(Column::from_floats(
            (0..cfg.n_items).map(|_| rng.uniform(0.0, 100.0)).collect(),
        ));
    }
    let schema = Schema::from_pairs(
        &fields
            .iter()
            .map(|(n, t)| (n.as_str(), *t))
            .collect::<Vec<_>>(),
    )
    .expect("item schema");
    let table = Table::new(schema, columns).expect("item table");
    let numeric_names: Vec<String> =
        (0..cfg.n_numeric_attrs).map(|a| format!("n{a}")).collect();
    let cat_names: Vec<String> = (0..3).map(|h| format!("h{h}")).collect();
    let items = ItemTable::from_table(
        &table,
        "id",
        &numeric_names.iter().map(String::as_str).collect::<Vec<_>>(),
        &cat_names.iter().map(String::as_str).collect::<Vec<_>>(),
    )
    .expect("items");

    let hierarchies: Vec<Hierarchy> = (0..3)
        .map(|h| {
            let labels: Vec<&str> = hier_labels[h].iter().map(String::as_str).collect();
            Hierarchy::flat(format!("h{h}"), &format!("any{h}"), &labels)
        })
        .collect();
    let item_coords = items
        .leaf_coords(
            &hierarchies,
            &cat_names.iter().map(String::as_str).collect::<Vec<_>>(),
        )
        .expect("coords");
    let item_space = RegionSpace::new(
        hierarchies.into_iter().map(Dimension::Hierarchy).collect(),
    );

    // Planted relation: y = β·[1, x…] exactly in the planted regions.
    // The last coefficient stays away from zero because region blocks
    // solve for the last feature by dividing by it.
    let k = cfg.regional_features;
    let mut beta: Vec<f64> = (0..=k).map(|_| rng.uniform(-3.0, 3.0)).collect();
    while beta[k].abs() < 0.5 {
        beta[k] = rng.uniform(-3.0, 3.0);
    }
    let targets: Vec<f64> = (0..cfg.n_items).map(|_| rng.uniform(-50.0, 50.0)).collect();

    ScaleWorkload {
        region_space,
        regions,
        items,
        item_space,
        item_coords,
        targets,
        planted_regions,
        cfg: cfg.clone(),
        beta,
    }
}

impl ScaleWorkload {
    /// Feature arity of the emitted blocks.
    pub fn feature_arity(&self) -> usize {
        1 + self.cfg.regional_features
    }

    /// Total examples the workload will emit.
    pub fn total_examples(&self) -> usize {
        self.regions.len() * self.cfg.n_items
    }

    /// Per-item targets as a map (for harness use).
    pub fn target_map(&self) -> HashMap<i64, f64> {
        self.targets
            .iter()
            .enumerate()
            .map(|(i, &t)| (i as i64, t))
            .collect()
    }

    /// Generate the block of one region. Blocks are generated from a
    /// per-region seed, so streaming and in-memory materialisation
    /// produce identical data.
    pub fn region_block(&self, region_idx: usize) -> RegionBlock {
        let cfg = &self.cfg;
        let k = cfg.regional_features;
        let mut rng = Gen::new(cfg.seed ^ (0x5eed_0000 + region_idx as u64));
        let planted = self.planted_regions.contains(&region_idx);
        let mut block =
            RegionBlock::new(self.regions[region_idx].0.clone(), (1 + k) as u32);
        let mut x = vec![0.0; 1 + k];
        for i in 0..cfg.n_items {
            x[0] = 1.0;
            for slot in x.iter_mut().take(k).skip(1) {
                *slot = rng.uniform(0.0, 10.0);
            }
            if planted {
                // Solve the last feature so that β·x = target (+ noise).
                let partial: f64 = self.beta[..k]
                    .iter()
                    .zip(x.iter().take(k))
                    .map(|(b, v)| b * v)
                    .sum();
                let noise = rng.normal(0.0, cfg.bellwether_noise);
                let bk = self.beta[k];
                x[k] = (self.targets[i] + noise - partial) / bk;
            } else {
                x[k] = rng.uniform(0.0, 10.0);
            }
            block.push(i as i64, &x, self.targets[i]);
        }
        block
    }

    /// Materialise the whole training data in memory (moderate sizes).
    pub fn memory_source(&self) -> MemorySource {
        MemorySource::new(
            (0..self.regions.len())
                .map(|r| self.region_block(r))
                .collect(),
        )
    }

    /// Stream the training data to disk, block by block.
    pub fn write_to_disk(&self, path: &Path) -> std::io::Result<()> {
        let mut writer = TrainingWriter::create(
            path,
            self.feature_arity() as u32,
            self.region_space.arity() as u32,
        )?;
        for r in 0..self.regions.len() {
            writer.write_region(&self.region_block(r))?;
        }
        writer.finish()
    }

    /// Stream the training data into a region-partitioned sharded
    /// layout under `dir`: `n_shards` block files plus a checksummed
    /// manifest ([`bellwether_storage::MANIFEST_NAME`]). Regions are
    /// split evenly and contiguously in scan order, so a
    /// [`bellwether_storage::ShardedSource`] over the result reads
    /// region `r` from exactly the same bytes `write_to_disk` would
    /// have produced for it — one region block at a time, never holding
    /// a shard in memory.
    pub fn write_sharded(
        &self,
        dir: &Path,
        n_shards: usize,
    ) -> std::io::Result<ShardManifest> {
        let plan = even_shard_plan(self.regions.len(), n_shards);
        let mut writer = ShardedWriter::create(
            dir,
            self.feature_arity() as u32,
            self.region_space.arity() as u32,
            plan,
        )?;
        for r in 0..self.regions.len() {
            writer.write_region(&self.region_block(r))?;
        }
        writer.finish()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use bellwether_storage::{DiskSource, TrainingSource};

    fn small() -> ScaleConfig {
        ScaleConfig {
            n_items: 50,
            fact_dim_leaves: [3, 3],
            item_hierarchy_leaves: [2, 2, 2],
            n_numeric_attrs: 2,
            regional_features: 3,
            bellwether_noise: 0.01,
            seed: 77,
        }
    }

    #[test]
    fn shapes_and_counts() {
        let w = build_scale_workload(&small());
        assert_eq!(w.regions.len(), 16); // (3+1)²
        assert_eq!(w.total_examples(), 16 * 50);
        assert_eq!(w.feature_arity(), 4);
        assert_eq!(w.planted_regions.len(), 4);
        assert_eq!(w.items.len(), 50);
        assert_eq!(w.item_space.arity(), 3);
    }

    #[test]
    fn planted_regions_fit_well_others_do_not() {
        use bellwether_linreg::{training_set_estimate, RegressionData};
        let w = build_scale_workload(&small());
        let errs: Vec<f64> = (0..w.regions.len())
            .map(|r| {
                let b = w.region_block(r);
                let mut d = RegressionData::new(4);
                d.extend_from_cols(b.cols(), &b.targets);
                training_set_estimate(&d).unwrap().value
            })
            .collect();
        for &p in &w.planted_regions {
            assert!(errs[p] < 0.1, "planted region {p} err {}", errs[p]);
        }
        let unplanted_min = errs
            .iter()
            .enumerate()
            .filter(|(i, _)| !w.planted_regions.contains(i))
            .map(|(_, &e)| e)
            .fold(f64::INFINITY, f64::min);
        assert!(unplanted_min > 1.0, "unplanted min err {unplanted_min}");
    }

    #[test]
    fn disk_and_memory_agree() {
        let w = build_scale_workload(&small());
        let mem = w.memory_source();
        let path = std::env::temp_dir().join("bw_scale_rt.bwtd");
        w.write_to_disk(&path).unwrap();
        let disk = DiskSource::open(&path).unwrap();
        assert_eq!(disk.num_regions(), mem.num_regions());
        for r in [0, 5, 15] {
            assert_eq!(disk.read_region(r).unwrap(), mem.read_region(r).unwrap());
        }
        std::fs::remove_file(&path).ok();
    }

    #[test]
    fn sharded_and_flat_layouts_agree_region_by_region() {
        use bellwether_storage::ShardedSource;
        let w = build_scale_workload(&small());
        let mem = w.memory_source();
        for shards in [1, 3, 5] {
            let dir = std::env::temp_dir().join(format!("bw_scale_sharded_{shards}"));
            std::fs::remove_dir_all(&dir).ok();
            std::fs::create_dir_all(&dir).unwrap();
            let manifest = w.write_sharded(&dir, shards).unwrap();
            assert_eq!(manifest.shards.len(), shards);
            assert_eq!(manifest.total_regions(), w.regions.len() as u64);
            assert_eq!(manifest.total_examples(), w.total_examples() as u64);
            let src = ShardedSource::open(&dir).unwrap();
            assert_eq!(src.num_regions(), mem.num_regions());
            for r in 0..src.num_regions() {
                assert_eq!(src.read_region(r).unwrap(), mem.read_region(r).unwrap());
            }
            std::fs::remove_dir_all(&dir).ok();
        }
    }

    #[test]
    fn sized_for_hits_target() {
        let cfg = ScaleConfig::sized_for(100_000, 1);
        let w = build_scale_workload(&cfg);
        let total = w.total_examples();
        assert!(
            (100_000..=160_000).contains(&total),
            "sized {total} for 100k"
        );
    }

    #[test]
    fn beta_last_coefficient_nonzero() {
        // region_block divides by beta[k]; the generator must keep it
        // away from zero or planted regions degenerate.
        let w = build_scale_workload(&small());
        assert!(w.beta[w.cfg.regional_features].abs() > 1e-6);
    }
}
