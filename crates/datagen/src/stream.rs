//! Fact-stream workload for the incremental-maintenance engine.
//!
//! Unlike [`crate::scale`], which plants training *blocks* directly,
//! this generator emits raw **fact rows** in strict time order, so any
//! split of the timeline into `[0,k)` + `[k,weeks)` concatenates to the
//! exact full input — the property the delta CUBE's bit-identity
//! contract is tested against.
//!
//! The region space is `Interval(weeks) × Location` with a flat
//! location hierarchy. Every `(week, leaf, item)` triple carries one
//! fact row whose measures are seeded per-triple, so generation is
//! O(1)-seekable and independent of how the stream is sliced.
//!
//! # Planted drift
//!
//! Leaf 0 is the *early bellwether*: its per-row values track a planted
//! per-item signal with noise `bellwether_noise`, so regions over leaf
//! 0 predict the targets well from week one. Leaf 1 is the *late
//! bellwether*: its noise is `late_noise` (much smaller) but it has
//! **no rows at all** before `open_week` — its regions have zero
//! coverage and stay infeasible until the stream crosses that week, at
//! which point they surface, win the argmin, and deterministically
//! flip the bellwether. Every other leaf is background noise.

use crate::rng::Gen;
use bellwether_core::items::ItemTable;
use bellwether_cube::{CubeInput, Dimension, Hierarchy, Measure, RegionId, RegionSpace};
use bellwether_table::ops::AggFunc;
use bellwether_table::{Column, DataType, Schema, Table};
use std::collections::HashMap;

/// Stream-workload parameters.
#[derive(Debug, Clone)]
pub struct StreamConfig {
    /// Items in the catalogue.
    pub n_items: usize,
    /// Weeks of history (`Interval { max_t: weeks }`).
    pub weeks: u32,
    /// Leaves of the flat location hierarchy (≥ 3: early bellwether,
    /// late bellwether, background).
    pub leaves: usize,
    /// Leaves of the single item hierarchy (for cube builders).
    pub item_hierarchy_leaves: usize,
    /// Numeric item attributes (static features).
    pub n_numeric_attrs: usize,
    /// Noise of the early bellwether (leaf 0).
    pub bellwether_noise: f64,
    /// Noise of the late bellwether (leaf 1); should be ≪
    /// `bellwether_noise` so the flip is unambiguous.
    pub late_noise: f64,
    /// First week (0-based) with any leaf-1 rows.
    pub open_week: u32,
    /// RNG seed.
    pub seed: u64,
}

impl Default for StreamConfig {
    fn default() -> Self {
        StreamConfig {
            n_items: 60,
            weeks: 12,
            leaves: 5,
            item_hierarchy_leaves: 3,
            n_numeric_attrs: 2,
            bellwether_noise: 0.05,
            late_noise: 0.0005,
            open_week: 8,
            seed: 7,
        }
    }
}

/// Static description of the stream workload.
pub struct StreamWorkload {
    /// Candidate-region space: `Interval(weeks) × Location`.
    pub region_space: RegionSpace,
    /// All regions in scan order.
    pub regions: Vec<RegionId>,
    /// The item table (one hierarchy + numeric attributes).
    pub items: ItemTable,
    /// Item space over the item hierarchy.
    pub item_space: RegionSpace,
    /// Per-item leaf coordinates in `item_space`.
    pub item_coords: HashMap<i64, Vec<u32>>,
    /// Per-item targets (linear in the planted per-item signal).
    pub targets: Vec<f64>,
    /// Per-item planted signal `f(i)`.
    signal: Vec<f64>,
    cfg: StreamConfig,
}

/// Build the static workload (items, spaces, signal, targets).
pub fn build_stream_workload(cfg: &StreamConfig) -> StreamWorkload {
    assert!(cfg.leaves >= 3, "need early/late/background leaves");
    assert!(cfg.open_week < cfg.weeks, "late bellwether must open");
    let mut rng = Gen::new(cfg.seed);

    let loc_labels: Vec<String> = (0..cfg.leaves).map(|l| format!("L{l}")).collect();
    let region_space = RegionSpace::new(vec![
        Dimension::Interval {
            name: "Week".into(),
            max_t: cfg.weeks,
        },
        Dimension::Hierarchy(Hierarchy::flat(
            "Location",
            "All",
            &loc_labels.iter().map(String::as_str).collect::<Vec<_>>(),
        )),
    ]);
    let regions = region_space.all_regions();

    // Per-item planted signal and a linear target on it.
    let signal: Vec<f64> = (0..cfg.n_items).map(|_| rng.uniform(-40.0, 40.0)).collect();
    let targets: Vec<f64> = signal.iter().map(|&f| 3.0 + 2.0 * f).collect();

    // Item table: id + one hierarchy label + numeric attributes.
    let hier_labels: Vec<String> = (0..cfg.item_hierarchy_leaves)
        .map(|i| format!("g{i}"))
        .collect();
    let item_cats: Vec<String> = (0..cfg.n_items)
        .map(|_| hier_labels[rng.below(hier_labels.len())].clone())
        .collect();
    let mut columns: Vec<Column> = vec![
        Column::from_ints((0..cfg.n_items as i64).collect()),
        Column::from_strs(&item_cats.iter().map(String::as_str).collect::<Vec<_>>()),
    ];
    let mut fields: Vec<(String, DataType)> =
        vec![("id".into(), DataType::Int), ("h0".into(), DataType::Str)];
    for a in 0..cfg.n_numeric_attrs {
        fields.push((format!("n{a}"), DataType::Float));
        columns.push(Column::from_floats(
            (0..cfg.n_items).map(|_| rng.uniform(0.0, 10.0)).collect(),
        ));
    }
    let schema = Schema::from_pairs(
        &fields
            .iter()
            .map(|(n, t)| (n.as_str(), *t))
            .collect::<Vec<_>>(),
    )
    .expect("item schema");
    let table = Table::new(schema, columns).expect("item table");
    let numeric_names: Vec<String> =
        (0..cfg.n_numeric_attrs).map(|a| format!("n{a}")).collect();
    let items = ItemTable::from_table(
        &table,
        "id",
        &numeric_names.iter().map(String::as_str).collect::<Vec<_>>(),
        &["h0"],
    )
    .expect("items");

    let item_hier = Hierarchy::flat(
        "h0",
        "any",
        &hier_labels.iter().map(String::as_str).collect::<Vec<_>>(),
    );
    let item_coords = items
        .leaf_coords(std::slice::from_ref(&item_hier), &["h0"])
        .expect("item coords");
    let item_space = RegionSpace::new(vec![Dimension::Hierarchy(item_hier)]);

    StreamWorkload {
        region_space,
        regions,
        items,
        item_space,
        item_coords,
        targets,
        signal,
        cfg: cfg.clone(),
    }
}

impl StreamWorkload {
    /// Per-leaf noise amplitude.
    fn noise_of(&self, leaf: usize) -> f64 {
        match leaf {
            0 => self.cfg.bellwether_noise,
            1 => self.cfg.late_noise,
            _ => 8.0,
        }
    }

    /// Fact rows for weeks `[week_lo, week_hi)`, in the canonical
    /// (week, leaf, item) order. Concatenating consecutive ranges is
    /// byte-for-byte the same input as generating the union directly.
    pub fn input_range(&self, week_lo: u32, week_hi: u32) -> CubeInput {
        assert!(week_lo <= week_hi && week_hi <= self.cfg.weeks);
        let mut item_ids = Vec::new();
        let mut coords = Vec::new();
        let mut values: Vec<Option<f64>> = Vec::new();
        let mut volumes: Vec<Option<f64>> = Vec::new();
        for w in week_lo..week_hi {
            for leaf in 0..self.cfg.leaves {
                if leaf == 1 && w < self.cfg.open_week {
                    continue;
                }
                let noise = self.noise_of(leaf);
                for i in 0..self.cfg.n_items {
                    // Seed per (week, leaf, item) so slicing the stream
                    // anywhere reproduces identical rows.
                    let mut g = Gen::new(
                        self.cfg
                            .seed
                            .wrapping_mul(0x9e37_79b9_7f4a_7c15)
                            .wrapping_add((w as u64) << 40)
                            .wrapping_add((leaf as u64) << 20)
                            .wrapping_add(i as u64),
                    );
                    item_ids.push(i as i64);
                    // Interval leaf coord for week w is w; location
                    // leaf l is hierarchy node l+1 (0 = All).
                    coords.push(w);
                    coords.push((leaf + 1) as u32);
                    values.push(Some(self.signal[i] + g.normal(0.0, noise)));
                    volumes.push(Some(g.uniform(0.0, 5.0)));
                }
            }
        }
        CubeInput {
            item_ids,
            coords,
            measures: vec![
                Measure::Numeric {
                    name: "avg_v".into(),
                    func: AggFunc::Avg,
                    values,
                },
                Measure::Numeric {
                    name: "volume".into(),
                    func: AggFunc::Sum,
                    values: volumes,
                },
            ],
        }
    }

    /// The full timeline as one input.
    pub fn full_input(&self) -> CubeInput {
        self.input_range(0, self.cfg.weeks)
    }

    /// Pinned item universe for the delta cube.
    pub fn item_universe(&self) -> Vec<i64> {
        (0..self.cfg.n_items as i64).collect()
    }

    /// Per-item targets as a map.
    pub fn target_map(&self) -> HashMap<i64, f64> {
        self.targets
            .iter()
            .enumerate()
            .map(|(i, &t)| (i as i64, t))
            .collect()
    }

    /// The workload's configuration.
    pub fn config(&self) -> &StreamConfig {
        &self.cfg
    }

    /// Fact rows in the full timeline.
    pub fn total_rows(&self) -> usize {
        let full_weeks = self.cfg.weeks as usize * self.cfg.leaves;
        let gated = self.cfg.open_week as usize; // leaf 1 closed weeks
        (full_weeks - gated) * self.cfg.n_items
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn slices_concatenate_to_the_full_input() {
        let wl = build_stream_workload(&StreamConfig::default());
        let full = wl.full_input();
        assert_eq!(full.item_ids.len(), wl.total_rows());
        let mut ids = Vec::new();
        let mut coords = Vec::new();
        let mut vals: Vec<Vec<Option<f64>>> = vec![Vec::new(), Vec::new()];
        for (lo, hi) in [(0, 3), (3, 4), (4, 9), (9, 12)] {
            let part = wl.input_range(lo, hi);
            ids.extend(part.item_ids);
            coords.extend(part.coords);
            for (m, out) in part.measures.iter().zip(vals.iter_mut()) {
                let Measure::Numeric { values, .. } = m else { panic!() };
                out.extend(values.iter().cloned());
            }
        }
        assert_eq!(ids, full.item_ids);
        assert_eq!(coords, full.coords);
        for (m, got) in full.measures.iter().zip(vals.iter()) {
            let Measure::Numeric { values, .. } = m else { panic!() };
            assert_eq!(values, got);
        }
    }

    #[test]
    fn late_bellwether_opens_at_open_week() {
        let cfg = StreamConfig::default();
        let wl = build_stream_workload(&cfg);
        let before = wl.input_range(0, cfg.open_week);
        assert!(!before.coords.chunks(2).any(|c| c[1] == 2));
        let after = wl.input_range(cfg.open_week, cfg.weeks);
        assert!(after.coords.chunks(2).any(|c| c[1] == 2));
    }
}
