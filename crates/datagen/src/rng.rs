//! Seeded random helpers shared by all generators.
//!
//! Everything is driven by an explicit-seeded SplitMix64 stream so each
//! experiment in EXPERIMENTS.md regenerates byte-identical datasets.
//! (The generator is self-contained: the build environment has no
//! crates.io access, so `rand` cannot be a dependency.)

/// Deterministic random source with the distributions the generators
/// need (uniform, normal via Box–Muller, log-normal).
pub struct Gen {
    state: u64,
    spare_normal: Option<f64>,
}

impl Gen {
    /// Seeded generator.
    pub fn new(seed: u64) -> Self {
        Gen {
            state: seed,
            spare_normal: None,
        }
    }

    /// Next raw 64-bit value (SplitMix64).
    fn next_u64(&mut self) -> u64 {
        self.state = self.state.wrapping_add(0x9E37_79B9_7F4A_7C15);
        let mut z = self.state;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^ (z >> 31)
    }

    /// Uniform f64 in `[0, 1)` with 53 random mantissa bits.
    fn unit(&mut self) -> f64 {
        (self.next_u64() >> 11) as f64 / (1u64 << 53) as f64
    }

    /// Uniform in `[lo, hi)`.
    pub fn uniform(&mut self, lo: f64, hi: f64) -> f64 {
        assert!(lo < hi, "empty uniform range");
        lo + (hi - lo) * self.unit()
    }

    /// Uniform integer in `[0, n)`.
    pub fn below(&mut self, n: usize) -> usize {
        assert!(n > 0, "below(0)");
        (self.next_u64() % n as u64) as usize
    }

    /// Bernoulli with probability `p`.
    pub fn flip(&mut self, p: f64) -> bool {
        self.unit() < p.clamp(0.0, 1.0)
    }

    /// Standard normal via Box–Muller (cached pair).
    pub fn std_normal(&mut self) -> f64 {
        if let Some(z) = self.spare_normal.take() {
            return z;
        }
        let u1: f64 = self.unit().max(f64::MIN_POSITIVE);
        let u2: f64 = self.unit();
        let r = (-2.0 * u1.ln()).sqrt();
        let theta = 2.0 * std::f64::consts::PI * u2;
        self.spare_normal = Some(r * theta.sin());
        r * theta.cos()
    }

    /// Normal with the given mean and standard deviation.
    pub fn normal(&mut self, mean: f64, std: f64) -> f64 {
        mean + std * self.std_normal()
    }

    /// Log-normal: `exp(N(mu, sigma))`.
    pub fn log_normal(&mut self, mu: f64, sigma: f64) -> f64 {
        self.normal(mu, sigma).exp()
    }

    /// Shuffle a slice in place.
    pub fn shuffle<T>(&mut self, xs: &mut [T]) {
        for i in (1..xs.len()).rev() {
            let j = self.below(i + 1);
            xs.swap(i, j);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn deterministic_per_seed() {
        let mut a = Gen::new(5);
        let mut b = Gen::new(5);
        for _ in 0..100 {
            assert_eq!(a.uniform(0.0, 1.0), b.uniform(0.0, 1.0));
            assert_eq!(a.std_normal(), b.std_normal());
        }
    }

    #[test]
    fn normal_moments_are_plausible() {
        let mut g = Gen::new(11);
        let n = 20_000;
        let xs: Vec<f64> = (0..n).map(|_| g.normal(3.0, 2.0)).collect();
        let mean = xs.iter().sum::<f64>() / n as f64;
        let var = xs.iter().map(|x| (x - mean) * (x - mean)).sum::<f64>() / n as f64;
        assert!((mean - 3.0).abs() < 0.1, "mean {mean}");
        assert!((var - 4.0).abs() < 0.3, "var {var}");
    }

    #[test]
    fn uniform_stays_in_range() {
        let mut g = Gen::new(2);
        for _ in 0..1000 {
            let x = g.uniform(-1.0, 2.0);
            assert!((-1.0..2.0).contains(&x));
            assert!(g.below(7) < 7);
        }
    }

    #[test]
    fn log_normal_is_positive() {
        let mut g = Gen::new(3);
        for _ in 0..100 {
            assert!(g.log_normal(0.0, 1.0) > 0.0);
        }
    }

    #[test]
    fn shuffle_is_a_permutation() {
        let mut g = Gen::new(4);
        let mut xs: Vec<u32> = (0..50).collect();
        g.shuffle(&mut xs);
        let mut sorted = xs.clone();
        sorted.sort_unstable();
        assert_eq!(sorted, (0..50).collect::<Vec<_>>());
    }
}
