//! Binary on-disk format for the entire training data.
//!
//! Layout:
//!
//! ```text
//! ┌──────────────────────────────────────────────────────────┐
//! │ header: magic "BWTD" | version u32 | p u32 | arity u32   │
//! │ region block 0 … region block R-1 (see encode_block)     │
//! │ index: R × (offset u64, len u64, coords arity×u32)       │
//! │ footer: index_offset u64 | region_count u64 | magic      │
//! └──────────────────────────────────────────────────────────┘
//! ```
//!
//! All integers little-endian. The index lives at the end so the writer
//! can stream blocks without knowing their sizes in advance; the reader
//! loads the index once and then reads regions randomly or sequentially.

use crate::block::RegionBlock;
use std::io;

/// Minimal little-endian cursor over a byte slice (stand-in for the
/// `bytes` crate, which the offline build environment cannot fetch).
/// Length checks are the callers' job — exactly as with `bytes::Buf`,
/// reads past the end panic.
struct Cursor<'a> {
    buf: &'a [u8],
}

impl<'a> Cursor<'a> {
    fn new(buf: &'a [u8]) -> Self {
        Cursor { buf }
    }

    fn remaining(&self) -> usize {
        self.buf.len()
    }

    fn take<const N: usize>(&mut self) -> [u8; N] {
        let (head, tail) = self.buf.split_at(N);
        self.buf = tail;
        head.try_into().expect("split_at returned N bytes")
    }

    fn copy_to_slice(&mut self, out: &mut [u8]) {
        let (head, tail) = self.buf.split_at(out.len());
        out.copy_from_slice(head);
        self.buf = tail;
    }

    fn get_u32_le(&mut self) -> u32 {
        u32::from_le_bytes(self.take())
    }

    fn get_u64_le(&mut self) -> u64 {
        u64::from_le_bytes(self.take())
    }

    fn get_i64_le(&mut self) -> i64 {
        i64::from_le_bytes(self.take())
    }

    fn get_f64_le(&mut self) -> f64 {
        f64::from_le_bytes(self.take())
    }
}

/// Little-endian append helpers mirroring `bytes::BufMut`.
trait PutLe {
    fn put_slice(&mut self, s: &[u8]);
    fn put_u32_le(&mut self, v: u32);
    fn put_u64_le(&mut self, v: u64);
    fn put_i64_le(&mut self, v: i64);
    fn put_f64_le(&mut self, v: f64);
}

impl PutLe for Vec<u8> {
    fn put_slice(&mut self, s: &[u8]) {
        self.extend_from_slice(s);
    }

    fn put_u32_le(&mut self, v: u32) {
        self.extend_from_slice(&v.to_le_bytes());
    }

    fn put_u64_le(&mut self, v: u64) {
        self.extend_from_slice(&v.to_le_bytes());
    }

    fn put_i64_le(&mut self, v: i64) {
        self.extend_from_slice(&v.to_le_bytes());
    }

    fn put_f64_le(&mut self, v: f64) {
        self.extend_from_slice(&v.to_le_bytes());
    }
}

/// File magic.
pub const MAGIC: &[u8; 4] = b"BWTD";
/// Format version.
pub const VERSION: u32 = 1;

/// Fixed-size file header.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Header {
    /// Feature arity shared by all blocks.
    pub p: u32,
    /// Number of region coordinates per block.
    pub arity: u32,
}

/// One index entry: where a region block lives.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct IndexEntry {
    /// Byte offset of the block.
    pub offset: u64,
    /// Encoded length in bytes.
    pub len: u64,
    /// Region coordinates (so the index alone answers "which regions").
    pub coords: Vec<u32>,
}

/// Encode the header.
pub fn encode_header(h: &Header, out: &mut Vec<u8>) {
    out.put_slice(MAGIC);
    out.put_u32_le(VERSION);
    out.put_u32_le(h.p);
    out.put_u32_le(h.arity);
}

/// Header byte length.
pub const HEADER_LEN: usize = 4 + 4 + 4 + 4;

/// Decode and validate the header.
pub fn decode_header(buf: &[u8]) -> io::Result<Header> {
    if buf.len() < HEADER_LEN {
        return Err(bad("truncated header"));
    }
    let mut buf = Cursor::new(buf);
    let mut magic = [0u8; 4];
    buf.copy_to_slice(&mut magic);
    if &magic != MAGIC {
        return Err(bad("bad magic"));
    }
    let version = buf.get_u32_le();
    if version != VERSION {
        return Err(bad("unsupported version"));
    }
    Ok(Header {
        p: buf.get_u32_le(),
        arity: buf.get_u32_le(),
    })
}

/// Encode one region block.
pub fn encode_block(block: &RegionBlock, out: &mut Vec<u8>) {
    out.put_u32_le(block.region.len() as u32);
    for &c in &block.region {
        out.put_u32_le(c);
    }
    out.put_u64_le(block.n() as u64);
    out.put_u32_le(block.p);
    for &id in &block.item_ids {
        out.put_i64_le(id);
    }
    for &f in &block.features {
        out.put_f64_le(f);
    }
    for &t in &block.targets {
        out.put_f64_le(t);
    }
}

/// Decode one region block from its exact byte span.
pub fn decode_block(buf: &[u8]) -> io::Result<RegionBlock> {
    let mut buf = Cursor::new(buf);
    if buf.remaining() < 4 {
        return Err(bad("truncated block"));
    }
    let arity = buf.get_u32_le() as usize;
    if buf.remaining() < arity * 4 + 12 {
        return Err(bad("truncated block header"));
    }
    let region: Vec<u32> = (0..arity).map(|_| buf.get_u32_le()).collect();
    let n = buf.get_u64_le() as usize;
    let p = buf.get_u32_le();
    let need = n * 8 + n * (p as usize) * 8 + n * 8;
    if buf.remaining() < need {
        return Err(bad("truncated block payload"));
    }
    let item_ids: Vec<i64> = (0..n).map(|_| buf.get_i64_le()).collect();
    let features: Vec<f64> = (0..n * p as usize).map(|_| buf.get_f64_le()).collect();
    let targets: Vec<f64> = (0..n).map(|_| buf.get_f64_le()).collect();
    Ok(RegionBlock {
        region,
        item_ids,
        features,
        targets,
        p,
    })
}

/// Encode the index + footer.
pub fn encode_index(entries: &[IndexEntry], arity: u32, index_offset: u64, out: &mut Vec<u8>) {
    for e in entries {
        out.put_u64_le(e.offset);
        out.put_u64_le(e.len);
        debug_assert_eq!(e.coords.len() as u32, arity);
        for &c in &e.coords {
            out.put_u32_le(c);
        }
    }
    out.put_u64_le(index_offset);
    out.put_u64_le(entries.len() as u64);
    out.put_slice(MAGIC);
}

/// Footer byte length.
pub const FOOTER_LEN: usize = 8 + 8 + 4;

/// Decode the footer: `(index_offset, region_count)`.
pub fn decode_footer(buf: &[u8]) -> io::Result<(u64, u64)> {
    if buf.len() < FOOTER_LEN {
        return Err(bad("truncated footer"));
    }
    let mut buf = Cursor::new(buf);
    let index_offset = buf.get_u64_le();
    let count = buf.get_u64_le();
    let mut magic = [0u8; 4];
    buf.copy_to_slice(&mut magic);
    if &magic != MAGIC {
        return Err(bad("bad footer magic"));
    }
    Ok((index_offset, count))
}

/// Decode `count` index entries of the given arity.
pub fn decode_index(buf: &[u8], count: u64, arity: u32) -> io::Result<Vec<IndexEntry>> {
    let entry_len = 16 + arity as usize * 4;
    if buf.len() < count as usize * entry_len {
        return Err(bad("truncated index"));
    }
    let mut buf = Cursor::new(buf);
    let mut out = Vec::with_capacity(count as usize);
    for _ in 0..count {
        let offset = buf.get_u64_le();
        let len = buf.get_u64_le();
        let coords = (0..arity).map(|_| buf.get_u32_le()).collect();
        out.push(IndexEntry {
            offset,
            len,
            coords,
        });
    }
    Ok(out)
}

fn bad(msg: &str) -> io::Error {
    io::Error::new(io::ErrorKind::InvalidData, msg)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn block() -> RegionBlock {
        let mut b = RegionBlock::new(vec![3, 1], 2);
        b.push(10, &[1.5, -2.0], 7.0);
        b.push(11, &[0.0, 4.0], -1.0);
        b
    }

    #[test]
    fn header_round_trip() {
        let h = Header { p: 5, arity: 2 };
        let mut buf = Vec::new();
        encode_header(&h, &mut buf);
        assert_eq!(buf.len(), HEADER_LEN);
        assert_eq!(decode_header(&buf).unwrap(), h);
    }

    #[test]
    fn header_rejects_garbage() {
        assert!(decode_header(b"nope").is_err());
        let mut buf = Vec::new();
        encode_header(&Header { p: 1, arity: 1 }, &mut buf);
        buf[0] = b'X';
        assert!(decode_header(&buf).is_err());
    }

    #[test]
    fn block_round_trip() {
        let b = block();
        let mut buf = Vec::new();
        encode_block(&b, &mut buf);
        assert_eq!(buf.len(), b.encoded_len());
        let back = decode_block(&buf).unwrap();
        assert_eq!(back, b);
    }

    #[test]
    fn truncated_block_rejected() {
        let b = block();
        let mut buf = Vec::new();
        encode_block(&b, &mut buf);
        assert!(decode_block(&buf[..buf.len() - 1]).is_err());
        assert!(decode_block(&buf[..3]).is_err());
    }

    #[test]
    fn index_round_trip() {
        let entries = vec![
            IndexEntry {
                offset: 16,
                len: 100,
                coords: vec![0, 5],
            },
            IndexEntry {
                offset: 116,
                len: 64,
                coords: vec![1, 2],
            },
        ];
        let mut buf = Vec::new();
        encode_index(&entries, 2, 999, &mut buf);
        let footer_start = buf.len() - FOOTER_LEN;
        let (index_offset, count) = decode_footer(&buf[footer_start..]).unwrap();
        assert_eq!((index_offset, count), (999, 2));
        let back = decode_index(&buf[..footer_start], count, 2).unwrap();
        assert_eq!(back, entries);
    }

    #[test]
    fn empty_block_round_trip() {
        let b = RegionBlock::new(vec![7], 3);
        let mut buf = Vec::new();
        encode_block(&b, &mut buf);
        assert_eq!(decode_block(&buf).unwrap(), b);
    }
}
